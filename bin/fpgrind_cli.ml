(* fpgrind: command-line driver for the Herbgrind reproduction.

     fpgrind analyze prog.mc --inputs 1.0,2.0 --precision 1000
     fpgrind analyze bench:nmse-3-1 --iterations 16
     fpgrind run prog.mc
     fpgrind suite -j 4 --timeout 30 --json results.jsonl
     fpgrind validate results.jsonl
     fpgrind list-benchmarks
     fpgrind improve "(FPCore (x) (- (sqrt (+ x 1)) (sqrt x)))" --lo 1e8 --hi 1e15
*)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load_program ~wrap_libm ~vectorize ~iterations path : Vex.Ir.prog * float array =
  if Filename.check_suffix path ".fpcore" then begin
    let core = Fpcore.Parse.parse_core (read_file path) in
    let prog = Fpcore.Compile.compile ~wrap_libm ~n_inputs:iterations core in
    (prog, [||])
  end
  else if String.length path > 6 && String.sub path 0 6 = "bench:" then begin
    let name = String.sub path 6 (String.length path - 6) in
    let bench = Fpcore.Suite.find name in
    let core = Fpcore.Suite.core_of bench in
    let prog =
      Fpcore.Compile.compile ~wrap_libm ~n_inputs:iterations ~name core
    in
    let inputs = Fpcore.Suite.inputs_for bench ~n:iterations in
    (prog, inputs)
  end
  else (Minic.compile_file ~wrap_libm ~vectorize path, [||])

(* ---------- common options ---------- *)

let path_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"PROGRAM"
        ~doc:
          "A MiniC source file (.mc), an FPCore file (.fpcore), or \
           bench:NAME for a suite benchmark.")

let inputs_arg =
  Arg.(
    value & opt (list float) []
    & info [ "inputs" ] ~docv:"FLOATS"
        ~doc:"Comma-separated values returned by the __arg builtin.")

let iterations_arg =
  Arg.(
    value & opt int 16
    & info [ "iterations" ] ~docv:"N"
        ~doc:"Input tuples to run for FPCore programs.")

let precision_arg =
  Arg.(
    value & opt int Core.Config.default.Core.Config.precision
    & info [ "precision" ] ~docv:"BITS" ~doc:"Shadow real precision in bits.")

let threshold_arg =
  Arg.(
    value & opt float Core.Config.default.Core.Config.error_threshold
    & info [ "threshold" ] ~docv:"BITS"
        ~doc:"Bits of local error that taint an operation.")

let depth_arg =
  Arg.(
    value & opt int Core.Config.default.Core.Config.equiv_depth
    & info [ "equiv-depth" ] ~docv:"D"
        ~doc:"Depth of exact value-equivalence tracking (paper default 5).")

let vectorize_arg =
  Arg.(
    value & flag
    & info [ "vectorize" ]
        ~doc:"Auto-vectorize elementwise double loops to SSE operations.")

let no_wrap_arg =
  Arg.(
    value & flag
    & info [ "no-wrap-libm" ]
        ~doc:
          "Compile math calls to the MiniC math library instead of \
           intercepted library calls (section 8.2 ablation).")

let no_reals_arg =
  Arg.(value & flag & info [ "no-reals" ] ~doc:"Disable the shadow real execution.")

let no_exprs_arg =
  Arg.(value & flag & info [ "no-expressions" ] ~doc:"Disable expression building.")

let no_typeinfer_arg =
  Arg.(
    value & flag
    & info [ "no-type-inference" ] ~doc:"Disable superblock type inference.")

let classic_arg =
  Arg.(
    value & flag
    & info [ "classic-antiunify" ]
        ~doc:"Use classical most-specific generalization (no internal pruning).")

let all_spots_arg =
  Arg.(
    value & flag
    & info [ "all-spots" ] ~doc:"Report spots with no observed error too.")

let engine_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("full", Core.Config.Full);
             ("sanitize", Core.Config.Sanitize);
             ("tiered", Core.Config.Tiered);
           ])
        Core.Config.Full
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Analysis engine: $(b,full) is the Herbgrind-style shadow-real \
           analysis; $(b,sanitize) is the fast NSan-style double-double \
           sanitizer; $(b,tiered) triages with the sanitizer and escalates \
           only the flagged slices to the full analysis.")

(* ---------- running the sanitizer engine (analyze/sanitize commands) ---------- *)

let run_sanitizer ~cfg ~fatal ~all_checks ~inputs prog : int =
  match
    Sanitize.Sexec.run ~max_steps:1_000_000_000 ~inputs ~fatal cfg prog
  with
  | r ->
      let rep = Sanitize.Report.build ~report_all:all_checks r in
      print_string (Sanitize.Report.to_string rep);
      let st = r.Sanitize.Sexec.sx_stats in
      Printf.printf
        "\n--- statistics ---\n\
         superblocks run:          %d\n\
         statements run:           %d\n\
         statements instrumented:  %d\n\
         shadowed ops:             %d\n\
         checks run:               %d\n"
        st.Sanitize.Sexec.blocks_run st.Sanitize.Sexec.stmts_run
        st.Sanitize.Sexec.stmts_instrumented st.Sanitize.Sexec.shadow_ops
        st.Sanitize.Sexec.checks_run;
      0
  | exception Sanitize.Sexec.Fatal_finding f ->
      Printf.printf "FATAL: %s\n" (Sanitize.Report.finding_to_string f);
      2

(* ---------- running the tiered engine (analyze/sanitize commands) ---------- *)

let run_tiered ~cfg ~inputs prog : int =
  let r = Tiered.analyze ~cfg ~max_steps:1_000_000_000 ~inputs prog in
  print_string (Tiered.report_string r);
  let sst = r.Tiered.t_san.Sanitize.Sexec.sx_stats in
  Printf.printf
    "\n--- statistics ---\n\
     triage superblocks run:   %d\n\
     triage checks run:        %d\n\
     escalation seeds:         %d\n\
     slice statements:         %d\n"
    sst.Sanitize.Sexec.blocks_run sst.Sanitize.Sexec.checks_run
    (List.length r.Tiered.t_seeds)
    r.Tiered.t_slice_stmts;
  (match r.Tiered.t_full with
  | None -> Printf.printf "escalation:               none\n"
  | Some full ->
      let st = full.Core.Analysis.raw.Core.Exec.r_stats in
      Printf.printf
        "escalated fp ops:         %d\n\
         escalated compensations:  %d\n"
        st.Core.Exec.fp_ops st.Core.Exec.compensations);
  0

(* ---------- analyze ---------- *)

let analyze_cmd =
  let run path inputs iterations vectorize precision threshold depth no_wrap
      no_reals no_exprs no_ti classic all_spots engine =
    let cfg =
      {
        Core.Config.default with
        Core.Config.precision;
        error_threshold = threshold;
        equiv_depth = depth;
        enable_reals = not no_reals;
        enable_expressions = not no_exprs;
        type_inference = not no_ti;
        classic_antiunify = classic;
        report_all_spots = all_spots;
        engine;
      }
    in
    try
      let prog, bench_inputs =
        load_program ~wrap_libm:(not no_wrap) ~vectorize ~iterations path
      in
      let inputs = if inputs <> [] then Array.of_list inputs else bench_inputs in
      match engine with
      | Core.Config.Sanitize ->
          run_sanitizer ~cfg ~fatal:false ~all_checks:all_spots ~inputs prog
      | Core.Config.Tiered -> run_tiered ~cfg ~inputs prog
      | Core.Config.Full ->
          let r =
            Core.Analysis.analyze ~cfg ~max_steps:1_000_000_000 ~inputs prog
          in
          print_string (Core.Analysis.report_string r);
          let st = r.Core.Analysis.raw.Core.Exec.r_stats in
          Printf.printf
            "\n--- statistics ---\n\
             superblocks run:          %d\n\
             statements run:           %d\n\
             statements instrumented:  %d\n\
             floating-point ops:       %d\n\
             compensations detected:   %d\n"
            st.Core.Exec.blocks_run st.Core.Exec.stmts_run
            st.Core.Exec.stmts_instrumented st.Core.Exec.fp_ops
            st.Core.Exec.compensations;
          0
    with
    | Minic.Compile_error msg | Fpcore.Parse.Error msg | Sys_error msg ->
        Printf.eprintf "error: %s\n" msg;
        1
  in
  let term =
    Term.(
      const run $ path_arg $ inputs_arg $ iterations_arg $ vectorize_arg
      $ precision_arg $ threshold_arg $ depth_arg $ no_wrap_arg $ no_reals_arg
      $ no_exprs_arg $ no_typeinfer_arg $ classic_arg $ all_spots_arg
      $ engine_arg)
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Run a program under the full Herbgrind analysis (or, with --engine \
          sanitize / --engine tiered, the NSan-style sanitizer or the \
          two-pass tiered engine) and print the report.")
    term

(* ---------- sanitize (the NSan-style dual-precision engine) ---------- *)

let sanitize_cmd =
  let path_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"PROGRAM"
          ~doc:
            "A MiniC source file (.mc), an FPCore file (.fpcore), or \
             bench:NAME for a suite benchmark. Optional with --bench-kernel.")
  in
  let fatal_arg =
    Arg.(
      value & flag
      & info [ "fatal" ]
          ~doc:
            "Stop at the first firing check (exit 2) instead of resuming \
             and aggregating findings.")
  in
  let all_checks_arg =
    Arg.(
      value & flag
      & info [ "all-checks" ]
          ~doc:"Report every check point, including ones that never fired.")
  in
  let bench_kernel_arg =
    Arg.(
      value & flag
      & info [ "bench-kernel" ]
          ~doc:
            "Measure the double-double kernel (ns per operation) instead of \
             running a program; used by scripts/bench.sh.")
  in
  (* ns/op of the twofloat kernel, measured over a dependent chain so the
     work cannot be dead-code-eliminated; deterministic operands *)
  let bench_kernel () =
    let module TF = Sanitize.Twofloat in
    let n = 5_000_000 in
    let time name f =
      let t0 = Unix.gettimeofday () in
      let acc = f n in
      let t1 = Unix.gettimeofday () in
      Printf.printf "%-6s %8.2f ns/op   (sink %h)\n" name
        (1e9 *. (t1 -. t0) /. float_of_int n)
        (TF.to_float acc)
    in
    let x = TF.of_float 1.000000123 in
    time "add" (fun n ->
        let acc = ref (TF.of_float 0.1) in
        for _ = 1 to n do
          acc := TF.add !acc x
        done;
        !acc);
    time "mul" (fun n ->
        let acc = ref (TF.of_float 1.0) in
        for _ = 1 to n do
          acc := TF.mul !acc x
        done;
        !acc);
    time "div" (fun n ->
        let acc = ref (TF.of_float 1.0) in
        for _ = 1 to n do
          acc := TF.div !acc x
        done;
        !acc);
    time "sqrt" (fun n ->
        let acc = ref (TF.of_float 2.0) in
        for _ = 1 to n do
          acc := TF.sqrt (TF.add_d !acc 1.5)
        done;
        !acc);
    time "fma" (fun n ->
        let acc = ref (TF.of_float 0.5) in
        for _ = 1 to n do
          acc := TF.fma !acc x (TF.of_float 1e-9)
        done;
        !acc);
    0
  in
  let engine_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("sanitize", Core.Config.Sanitize);
               ("tiered", Core.Config.Tiered);
             ])
          Core.Config.Sanitize
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:
            "$(b,sanitize) (the default) runs the dual-precision sanitizer \
             alone; $(b,tiered) escalates its findings to the full analysis.")
  in
  let run path inputs iterations vectorize threshold no_wrap fatal all_checks
      bench_kernel_flag engine =
    if bench_kernel_flag then bench_kernel ()
    else
      match path with
      | None ->
          Printf.eprintf "error: sanitize needs a PROGRAM argument\n";
          1
      | Some path -> (
          let cfg =
            {
              Core.Config.default with
              Core.Config.error_threshold = threshold;
              engine;
            }
          in
          try
            let prog, bench_inputs =
              load_program ~wrap_libm:(not no_wrap) ~vectorize ~iterations path
            in
            let inputs =
              if inputs <> [] then Array.of_list inputs else bench_inputs
            in
            match engine with
            | Core.Config.Tiered ->
                if fatal || all_checks then begin
                  Printf.eprintf
                    "error: --fatal and --all-checks apply to the sanitize \
                     engine only\n";
                  1
                end
                else run_tiered ~cfg ~inputs prog
            | Core.Config.Sanitize | Core.Config.Full ->
                run_sanitizer ~cfg ~fatal ~all_checks ~inputs prog
          with
          | Minic.Compile_error msg | Fpcore.Parse.Error msg | Sys_error msg ->
              Printf.eprintf "error: %s\n" msg;
              1)
  in
  let term =
    Term.(
      const run $ path_arg $ inputs_arg $ iterations_arg $ vectorize_arg
      $ threshold_arg $ no_wrap_arg $ fatal_arg $ all_checks_arg
      $ bench_kernel_arg $ engine_arg)
  in
  Cmd.v
    (Cmd.info "sanitize"
       ~doc:
         "Run a program under the NSan-style dual-precision shadow \
          sanitizer: every float is shadowed by a double-double, and checks \
          fire at stores, float-to-int casts, flipped comparisons and \
          outputs.")
    term

(* ---------- run (uninstrumented) ---------- *)

let run_cmd =
  let run path inputs iterations vectorize no_wrap =
    try
      let prog, bench_inputs =
        load_program ~wrap_libm:(not no_wrap) ~vectorize ~iterations path
      in
      let inputs = if inputs <> [] then Array.of_list inputs else bench_inputs in
      let st = Vex.Machine.run ~max_steps:1_000_000_000 ~inputs prog in
      List.iter
        (fun (o : Vex.Machine.output) ->
          Printf.printf "%s\n" (Vex.Value.to_string o.Vex.Machine.value))
        (Vex.Machine.outputs st);
      0
    with
    | Minic.Compile_error msg | Fpcore.Parse.Error msg | Sys_error msg ->
        Printf.eprintf "error: %s\n" msg;
        1
  in
  let term =
    Term.(
      const run $ path_arg $ inputs_arg $ iterations_arg $ vectorize_arg
      $ no_wrap_arg)
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Run a program natively (no instrumentation) and print its outputs.")
    term

(* ---------- suite (batch analysis over the fleet) ---------- *)

let suite_cmd =
  let names_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"NAME"
          ~doc:
            "Benchmarks to analyze (default: the whole vendored FPBench \
             suite).")
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Worker domains to run jobs on.")
  in
  let timeout_arg =
    Arg.(
      value & opt (some float) None
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Per-job wall-clock deadline; an overrunning job is marked \
                timeout instead of stalling the fleet.")
  in
  let json_arg =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write per-benchmark results as JSON lines to $(docv). If the \
             file already exists it also serves as a result cache: jobs \
             whose content hash (source, sampling, config) is unchanged \
             are skipped.")
  in
  let no_cache_arg =
    Arg.(
      value & flag
      & info [ "no-cache" ]
          ~doc:"Re-analyze every benchmark even if --json holds results.")
  in
  let group_arg =
    Arg.(
      value & opt (some (enum [ ("straight", `Straight); ("loop", `Loop) ])) None
      & info [ "group" ] ~docv:"GROUP"
          ~doc:"Restrict to one benchmark group (straight|loop).")
  in
  let seed_arg =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"N" ~doc:"Input sampling seed.")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress per-job progress lines.")
  in
  let strict_arg =
    Arg.(
      value & flag
      & info [ "strict" ] ~doc:"Exit nonzero if any job failed or timed out.")
  in
  let dir_arg =
    Arg.(
      value & opt_all string []
      & info [ "dir" ] ~docv:"DIR"
          ~doc:
            "Ingest an external corpus: every .fpcore file (FPCore form \
             stream) and .json file (Herbie-style datafile) in $(docv) \
             becomes a suite job. Malformed inputs become structured \
             failed records, not crashes. Repeatable.")
  in
  let datafile_arg =
    Arg.(
      value & opt_all string []
      & info [ "datafile" ] ~docv:"FILE"
          ~doc:
            "Ingest a Herbie-style JSON datafile: each test entry's FPCore \
             input becomes a suite job. Repeatable.")
  in
  let run names jobs timeout iterations precision threshold json_path no_cache
      group seed quiet strict engine dirs datafiles =
    let cfg =
      {
        Core.Config.default with
        Core.Config.precision;
        error_threshold = threshold;
        engine;
      }
    in
    try
      (* external corpora replace the vendored suite unless benchmarks
         are also named explicitly *)
      let vendored =
        if (dirs = [] && datafiles = []) || names <> [] then
          Fpcore.Suite.enumerate ~iterations ~seed ~names ?group ()
        else []
      in
      let loaded =
        Fpcore.Suite.dedup_loaded
          (Fpcore.Suite.merge_loaded
             (List.map Fpcore.Suite.load_path dirs
             @ List.map Fpcore.Suite.load_datafile datafiles))
      in
      let engine_name = Core.Config.engine_name engine in
      let failed_specs =
        List.map
          (fun (e : Fpcore.Suite.load_error) ->
            {
              Fleet.sp_name = e.Fpcore.Suite.le_name;
              sp_group = "ingest";
              sp_key = "";
              sp_engine = engine_name;
              sp_work =
                (fun ~tick:_ ->
                  failwith
                    (Printf.sprintf "%s: %s" e.Fpcore.Suite.le_file
                       e.Fpcore.Suite.le_reason));
            })
          loaded.Fpcore.Suite.l_failures
      in
      let specs =
        List.map (Fleet.bench_spec ~cfg)
          (vendored
          @ Fpcore.Suite.jobs_of_loaded ~iterations ~seed loaded)
        @ failed_specs
      in
      let cache =
        match json_path with
        | Some path when not no_cache -> Some (Fleet.Store.cache_of_file path)
        | _ -> None
      in
      let on_progress =
        if quiet then None
        else
          Some
            (fun (p : Fleet.progress) ->
              Printf.eprintf "[%3d/%3d] %-8s %-24s %6.2fs\n%!" p.Fleet.pr_done
                p.Fleet.pr_total
                (Fleet.Store.status_to_string p.Fleet.pr_last.Fleet.o_status)
                p.Fleet.pr_last.Fleet.o_name p.Fleet.pr_last.Fleet.o_wall_s)
      in
      (* benchmark/CI hooks, env-gated so the flag surface stays stable:
         FPGRIND_SUITE_PASSES=N re-runs the same spec list N times in
         this one process (pass p > 1 writes to <json>.passP), which is
         how ci.sh proves the second pass is served by the compile
         cache; FPGRIND_COMPILE_STATS=1 prints one JSON line per pass
         with the process-wide compile counters for jq. *)
      let passes =
        match Sys.getenv_opt "FPGRIND_SUITE_PASSES" with
        | Some s -> ( try max 1 (int_of_string (String.trim s)) with _ -> 1)
        | None -> 1
      in
      let compile_stats = Sys.getenv_opt "FPGRIND_COMPILE_STATS" = Some "1" in
      let last = ref [] in
      for p = 1 to passes do
        let outcomes = Fleet.run ~jobs ?timeout ?cache ?on_progress specs in
        (match json_path with
        | Some path ->
            let path =
              if p = 1 then path else path ^ ".pass" ^ string_of_int p
            in
            Fleet.Store.save path outcomes
        | None -> ());
        if compile_stats then
          Printf.eprintf "{\"pass\":%d,\"blocks_compiled\":%d,\"cache_hits\":%d}\n%!"
            p
            (Vex.Compile.blocks_compiled_total ())
            (Vex.Compile.cache_hits_total ());
        last := outcomes
      done;
      let outcomes = !last in
      print_string (Fleet.Store.summary_table outcomes);
      let bad =
        List.exists
          (fun (o : Fleet.outcome) ->
            match o.Fleet.o_status with
            | Fleet.Failed _ | Fleet.Timed_out -> true
            | Fleet.Done | Fleet.Cached -> false)
          outcomes
      in
      if strict && bad then 1 else 0
    with
    | Invalid_argument msg | Sys_error msg | Failure msg ->
        Printf.eprintf "error: %s\n" msg;
        1
    | Fleet.Json.Parse_error msg ->
        Printf.eprintf
          "error: corrupt results store (%s); pass --no-cache or delete the \
           file\n"
          msg;
        1
  in
  let term =
    Term.(
      const run $ names_arg $ jobs_arg $ timeout_arg $ iterations_arg
      $ precision_arg $ threshold_arg $ json_arg $ no_cache_arg $ group_arg
      $ seed_arg $ quiet_arg $ strict_arg $ engine_arg $ dir_arg
      $ datafile_arg)
  in
  Cmd.v
    (Cmd.info "suite"
       ~doc:
         "Batch-analyze FPBench benchmarks on a parallel, fault-isolated \
          worker pool, with JSONL results and caching.")
    term

(* ---------- validate (check a JSONL results store) ---------- *)

let validate_cmd =
  let path_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"A JSONL results file written by suite --json.")
  in
  let expect_engine_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:
            "Require every record to come from this engine (full, sanitize \
             or tiered); any other record fails validation.")
  in
  let run path expect_engine =
    match Fleet.Store.load_lenient path with
    | outcomes, skipped ->
        let count pred = List.length (List.filter pred outcomes) in
        let ok =
          count (fun (o : Fleet.outcome) -> o.Fleet.o_status = Fleet.Done)
        in
        let cached =
          count (fun (o : Fleet.outcome) -> o.Fleet.o_status = Fleet.Cached)
        in
        let timeout =
          count (fun (o : Fleet.outcome) -> o.Fleet.o_status = Fleet.Timed_out)
        in
        let failed =
          count (fun (o : Fleet.outcome) ->
              match o.Fleet.o_status with Fleet.Failed _ -> true | _ -> false)
        in
        Printf.printf
          "%s: %d record%s (%d ok, %d cached, %d failed, %d timeout%s)\n" path
          (List.length outcomes)
          (if List.length outcomes = 1 then "" else "s")
          ok cached failed timeout
          (if skipped = 0 then ""
           else Printf.sprintf ", %d truncated record skipped" skipped);
        let engines =
          List.sort_uniq compare
            (List.map (fun (o : Fleet.outcome) -> o.Fleet.o_engine) outcomes)
        in
        let engines =
          List.filter (fun e -> e = "full") engines
          @ List.filter (fun e -> e <> "full") engines
        in
        if engines <> [] then
          Printf.printf "engines: %s\n"
            (String.concat ", "
               (List.map
                  (fun e ->
                    Printf.sprintf "%s %d" e
                      (count (fun (o : Fleet.outcome) -> o.Fleet.o_engine = e)))
                  engines));
        (* records from an engine this binary does not know are always
           invalid: they cannot be compared against anything *)
        let unknown =
          List.filter
            (fun (o : Fleet.outcome) ->
              Core.Config.engine_of_name o.Fleet.o_engine = None)
            outcomes
        in
        List.iter
          (fun (o : Fleet.outcome) ->
            Printf.eprintf "error: record %s has unknown engine %S\n"
              o.Fleet.o_name o.Fleet.o_engine)
          unknown;
        let mismatched =
          match expect_engine with
          | None -> []
          | Some want ->
              if Core.Config.engine_of_name want = None then begin
                Printf.eprintf
                  "error: unknown engine %S (expected full, sanitize or \
                   tiered)\n"
                  want;
                exit 1
              end;
              List.filter
                (fun (o : Fleet.outcome) -> o.Fleet.o_engine <> want)
                outcomes
        in
        (match (mismatched, expect_engine) with
        | _ :: _, Some want ->
            List.iter
              (fun (o : Fleet.outcome) ->
                Printf.eprintf
                  "error: record %s came from the %s engine, expected %s\n"
                  o.Fleet.o_name o.Fleet.o_engine want)
              mismatched
        | _ -> ());
        if
          failed > 0 || timeout > 0 || skipped > 0
          || mismatched <> [] || unknown <> []
        then begin
          Printf.eprintf
            "error: store has %d failed, %d timeout, %d truncated, %d \
             engine-mismatched record(s)\n"
            failed timeout skipped
            (List.length mismatched + List.length unknown);
          1
        end
        else 0
    | exception Fleet.Json.Parse_error msg | exception Failure msg ->
        Printf.eprintf "error: %s\n" msg;
        1
    | exception Sys_error msg ->
        Printf.eprintf "error: %s\n" msg;
        1
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:
         "Parse a JSONL results store, report per-status counts, and exit \
          nonzero if any record is failed, timed out, engine-mismatched, or \
          invalid.")
    Term.(const run $ path_arg $ expect_engine_arg)

(* ---------- list-benchmarks ---------- *)

let list_cmd =
  let run () =
    List.iter
      (fun (b : Fpcore.Suite.bench) ->
        Printf.printf "%-24s %s\n" b.Fpcore.Suite.name
          (match b.Fpcore.Suite.group with
          | `Straight -> "straight-line"
          | `Loop -> "looping"))
      Fpcore.Suite.all;
    0
  in
  Cmd.v
    (Cmd.info "list-benchmarks" ~doc:"List the vendored FPBench suite.")
    Term.(const run $ const ())

(* ---------- improve ---------- *)

(* "bench:NAME" resolves to a suite benchmark with its sampling ranges;
   raw FPCore source gets a synthetic bench whose every variable samples
   [lo, hi] independently (log-uniformly when positive). Both paths draw
   the point context from the suite's seeded xorshift stream — the old
   diagonal sampling (every variable at the same value per point)
   amounted to scoring candidates on a single representative axis and
   was exactly the overfit the soundiness oracle kept flagging. *)
let improve_bench_of ~lo ~hi (src : string) : Fpcore.Suite.bench =
  if String.length src > 6 && String.sub src 0 6 = "bench:" then
    Fpcore.Suite.find (String.sub src 6 (String.length src - 6))
  else
    let core = Fpcore.Parse.parse_core src in
    Regime.Sampler.bench_of_ranges ~name:"<request>" ~src
      (List.map (fun v -> (v, lo, hi)) core.Fpcore.Ast.args)

let improve_cmd =
  let expr_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"FPCORE"
          ~doc:
            "An FPCore expression to improve, or bench:NAME for a suite \
             benchmark (sampled over its own input ranges). Unused with \
             --sweep.")
  in
  let lo_arg =
    Arg.(value & opt float 1.0 & info [ "lo" ] ~doc:"Sample range low end.")
  in
  let hi_arg =
    Arg.(value & opt float 1e9 & info [ "hi" ] ~doc:"Sample range high end.")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Context seed.")
  in
  let points_arg =
    Arg.(
      value & opt int 24
      & info [ "points" ] ~docv:"N" ~doc:"Points per sampled context.")
  in
  let beam_arg =
    Arg.(value & opt int 8 & info [ "beam" ] ~docv:"N" ~doc:"Beam width.")
  in
  let depth_arg =
    Arg.(
      value & opt int 3 & info [ "depth" ] ~docv:"N" ~doc:"Rewrite depth.")
  in
  let regimes_arg =
    Arg.(
      value & flag
      & info [ "regimes" ]
          ~doc:
            "Infer input regimes: branch between beam candidates along a \
             single-variable threshold when that lowers total predicted \
             error past an MDL penalty, then re-validate the branched fix \
             on a disjoint resampled context. Prints the actual-vs-\
             predicted error table; exits 1 if the fix is unsound.")
  in
  let penalty_arg =
    Arg.(
      value & opt float 0.5
      & info [ "penalty" ] ~docv:"BITS"
          ~doc:"MDL penalty per context point per extra regime.")
  in
  let sweep_arg =
    Arg.(
      value & flag
      & info [ "sweep" ]
          ~doc:
            "Run --regimes over every straight-line suite benchmark \
             (ignoring FPCORE), one JSON line per benchmark on --json.")
  in
  let json_arg =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the regime report(s) as JSON(L) to $(docv); - is stdout.")
  in
  let minic_arg =
    Arg.(
      value & flag
      & info [ "minic" ] ~doc:"Also print the branched fix as MiniC.")
  in
  let run src lo hi seed points beam depth regimes penalty sweep json minic =
    let opts = { Regime.Search.default_options with Regime.Search.penalty_bits = penalty } in
    let json_out lines =
      match json with
      | None -> ()
      | Some "-" -> List.iter print_endline lines
      | Some path ->
          let oc = open_out path in
          List.iter (fun l -> output_string oc (l ^ "\n")) lines;
          close_out oc
    in
    let with_wall f =
      let t0 = Unix.gettimeofday () in
      let r = f () in
      (r, Unix.gettimeofday () -. t0)
    in
    let report_line (r : Regime.report) wall =
      match Regime.to_json r with
      | Fleet.Json.Obj kvs ->
          Fleet.Json.to_string
            (Fleet.Json.Obj (kvs @ [ ("wall_s", Fleet.Json.Num wall) ]))
      | j -> Fleet.Json.to_string j
    in
    try
      if sweep then begin
        let benches =
          List.filter
            (fun b -> b.Fpcore.Suite.group = `Straight)
            Fpcore.Suite.all
        in
        let lines =
          List.map
            (fun b ->
              let r, wall =
                with_wall (fun () ->
                    Regime.infer ~beam ~depth ~points ~seed ~opts b)
              in
              let act_after =
                match r.Regime.re_selected with
                | "branched" -> r.Regime.re_act_branched
                | "single" -> r.Regime.re_act_single
                | _ -> r.Regime.re_act_before
              in
              Printf.eprintf
                "%-20s %d regimes  %-8s  %s -> %s bits on resample%s\n%!"
                b.Fpcore.Suite.name
                (Regime.selected_regimes r.Regime.re_selected
                   r.Regime.re_regimes)
                r.Regime.re_selected
                (Rewrite.Soundness.fmt_bits r.Regime.re_act_before)
                (Rewrite.Soundness.fmt_bits act_after)
                (if r.Regime.re_soundness.Rewrite.Soundness.r_sound then ""
                 else "  UNSOUND");
              report_line r wall)
            benches
        in
        json_out lines;
        0
      end
      else begin
        let src =
          match src with
          | Some s -> s
          | None ->
              Printf.eprintf "error: FPCORE argument required without --sweep\n";
              raise Exit
        in
        let bench = improve_bench_of ~lo ~hi src in
        if regimes then begin
          let r, wall =
            with_wall (fun () ->
                Regime.infer ~beam ~depth ~points ~seed ~opts bench)
          in
          print_endline (Regime.table r);
          if minic then begin
            match
              Regime.Emit.minic_program ~args:r.Regime.re_args
                r.Regime.re_fix
            with
            | src -> Printf.printf "--- minic ---\n%s" src
            | exception Regime.Emit.Unsupported what ->
                Printf.printf "--- minic: unsupported (%s) ---\n" what
          end;
          json_out [ report_line r wall ];
          if r.Regime.re_soundness.Rewrite.Soundness.r_sound then 0 else 1
        end
        else begin
          let core = Fpcore.Suite.core_of bench in
          let samples = Regime.Sampler.context ~seed ~n:points bench in
          let r =
            Rewrite.Improve.improve ~beam ~depth core.Fpcore.Ast.body samples
          in
          Printf.printf "error before: %.2f bits\nerror after:  %.2f bits\n"
            r.Rewrite.Improve.error_before r.Rewrite.Improve.error_after;
          Printf.printf "improved: %s\n"
            (Regime.Emit.render_core ~args:core.Fpcore.Ast.args
               r.Rewrite.Improve.improved);
          0
        end
      end
    with
    | Fpcore.Parse.Error msg | Fpcore.Sexp.Parse_error msg ->
        Printf.eprintf "error: %s\n" msg;
        1
    | Invalid_argument msg ->
        Printf.eprintf "error: %s\n" msg;
        1
    | Exit -> 1
  in
  Cmd.v
    (Cmd.info "improve"
       ~doc:
         "Search for a more accurate equivalent of an FPCore expression, \
          optionally with regime inference (--regimes).")
    Term.(
      const run $ expr_arg $ lo_arg $ hi_arg $ seed_arg $ points_arg
      $ beam_arg $ depth_arg $ regimes_arg $ penalty_arg $ sweep_arg
      $ json_arg $ minic_arg)

(* ---------- fuzz (differential campaigns) ---------- *)

let fuzz_cmd =
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Campaign seed.")
  in
  let iters_arg =
    Arg.(
      value & opt int 1000
      & info [ "iters" ] ~docv:"N"
          ~doc:
            "Programs to generate and check. 0 skips generation (useful \
             with --corpus to replay only).")
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains. The transcript is identical for any value: \
             program i depends only on (seed, i).")
  in
  let timeout_arg =
    Arg.(
      value & opt (some float) None
      & info [ "timeout" ] ~docv:"SECONDS" ~doc:"Per-chunk wall-clock deadline.")
  in
  let corpus_arg =
    Arg.(
      value & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:
            "Replay every .mc reproducer in $(docv) before the campaign, \
             and write newly shrunken counterexamples there.")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress progress lines.")
  in
  let consistency_arg =
    Arg.(
      value & flag
      & info [ "consistency" ]
          ~doc:
            "Run the engine-consistency oracle on every program (sanitizer \
             findings vs full-analysis spots), not just the deep slice.")
  in
  let tiered_consistency_arg =
    Arg.(
      value & flag
      & info [ "tiered-consistency" ]
          ~doc:
            "Run the tiered-consistency oracle on every program: every \
             spot the tiered engine reports must be bit-identical to the \
             full engine's record for it, and its outputs must match.")
  in
  let soundiness_arg =
    Arg.(
      value & flag
      & info [ "soundiness" ]
          ~doc:
            "Run the soundiness oracle instead of the differential \
             campaign: iteration i runs Rewrite.Improve on suite \
             benchmark (i mod 82) over a seeded search context and \
             asserts the accepted rewrite is error-non-increasing on a \
             disjoint resampled context. Violations print an actual-vs-\
             predicted error table and exit nonzero.")
  in
  let run seed iters jobs timeout corpus quiet consistency tiered_consistency
      soundiness =
    if soundiness then begin
      let benches = Fpcore.Suite.all in
      let nbench = List.length benches in
      let violations = ref 0 in
      for i = 0 to iters - 1 do
        let bench = List.nth benches (i mod nbench) in
        let r =
          Rewrite.Soundness.check_bench
            ~seed:((seed * 1_000_003) + i)
            bench
        in
        if not r.Rewrite.Soundness.r_sound then begin
          incr violations;
          print_endline (Rewrite.Soundness.table r)
        end
        else if not quiet then
          Printf.eprintf "[%3d/%3d] sound    %s\n%!" (i + 1) iters
            bench.Fpcore.Suite.name
      done;
      Printf.printf "fuzz: seed %d, %d soundiness checks, %d violations\n"
        seed iters !violations;
      if !violations > 0 then 1 else 0
    end
    else begin
    let checks =
      {
        Fuzz.Oracle.default_checks with
        Fuzz.Oracle.c_consistency = consistency;
        c_tiered = tiered_consistency;
      }
    in
    let bad = ref false in
    (* replay the corpus first: every past counterexample must stay fixed *)
    (match corpus with
    | Some dir when Sys.file_exists dir ->
        List.iter
          (fun (file, result) ->
            match result with
            | Fuzz.Oracle.Pass ->
                if not quiet then Printf.eprintf "replay %-40s ok\n%!" file
            | Fuzz.Oracle.Skip why ->
                if not quiet then
                  Printf.eprintf "replay %-40s skip (%s)\n%!" file why
            | Fuzz.Oracle.Fail d ->
                bad := true;
                Printf.printf "replay %s: DIVERGENT (%s) %s\n" file
                  d.Fuzz.Oracle.d_oracle d.Fuzz.Oracle.d_detail)
          (Fuzz.Campaign.replay_dir dir)
    | Some dir -> Printf.eprintf "warning: corpus dir %s does not exist\n" dir
    | None -> ());
    if iters > 0 then begin
      let on_progress =
        if quiet then None
        else
          Some
            (fun (p : Fleet.progress) ->
              Printf.eprintf "[%3d/%3d] %-8s %s\n%!" p.Fleet.pr_done
                p.Fleet.pr_total
                (Fleet.Store.status_to_string p.Fleet.pr_last.Fleet.o_status)
                p.Fleet.pr_last.Fleet.o_name)
      in
      let t =
        Fuzz.Campaign.run ~checks ~jobs ?timeout ?on_progress ~seed ~iters ()
      in
      let failures = Fuzz.Campaign.failed t in
      let skips = List.length (Fuzz.Campaign.skipped t) in
      Printf.printf "fuzz: seed %d, %d programs, %d divergent%s\n" seed iters
        (List.length failures)
        (if skips = 0 then ""
         else Printf.sprintf ", %d skipped (step budget)" skips);
      List.iter
        (fun (e : Fuzz.Campaign.entry) ->
          bad := true;
          match e.Fuzz.Campaign.e_status with
          | Fuzz.Campaign.Error msg ->
              Printf.printf "program %d: ERROR %s\n" e.Fuzz.Campaign.e_index msg
          | Fuzz.Campaign.Divergent d0 -> begin
              Printf.printf "program %d: DIVERGENT (%s) %s\n"
                e.Fuzz.Campaign.e_index d0.Fuzz.Oracle.d_oracle
                d0.Fuzz.Oracle.d_detail;
              (* shrink to a minimal reproducer *)
              match
                Fuzz.Campaign.shrink_entry ~checks ~seed
                  e.Fuzz.Campaign.e_index
              with
              | Some (small, inputs, d) ->
                  let src = Fuzz.Printer.program small in
                  (match corpus with
                  | Some dir when Sys.file_exists dir ->
                      let path =
                        Fuzz.Campaign.save_repro ~dir ~seed
                          ~index:e.Fuzz.Campaign.e_index ~d ~inputs src
                      in
                      Printf.printf "  reproducer written to %s\n" path
                  | _ -> ());
                  print_string
                    (String.concat "\n"
                       (List.map (fun l -> "  | " ^ l)
                          (String.split_on_char '\n' src)));
                  print_newline ()
              | None ->
                  Printf.printf "  (divergence did not reproduce on re-run)\n"
            end
          | Fuzz.Campaign.Passed | Fuzz.Campaign.Skipped _ -> ())
        failures
    end;
    if !bad then 1 else 0
    end
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: generate seeded random MiniC programs and \
          check the reference evaluator, the VEX machine and the \
          instrumented analysis agree bit-for-bit; shrink and record any \
          counterexample. With --soundiness, check Rewrite.Improve results \
          on resampled point contexts instead.")
    Term.(
      const run $ seed_arg $ iters_arg $ jobs_arg $ timeout_arg $ corpus_arg
      $ quiet_arg $ consistency_arg $ tiered_consistency_arg $ soundiness_arg)

(* ---------- campaign (long-running resumable fuzz) ---------- *)

let campaign_cmd =
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Campaign seed.")
  in
  let iters_arg =
    Arg.(
      value & opt int 2000
      & info [ "iters" ] ~docv:"N" ~doc:"Stream length (total tasks).")
  in
  let state_arg =
    Arg.(
      value & opt string "campaign.state.json"
      & info [ "state" ] ~docv:"FILE"
          ~doc:
            "Checkpoint file. If it exists and matches this campaign's \
             config fingerprint, the campaign resumes from the recorded \
             stream index; a mismatched file is refused.")
  in
  let findings_arg =
    Arg.(
      value & opt string "findings.jsonl"
      & info [ "findings" ] ~docv:"FILE"
          ~doc:
            "Append-only findings feed (JSON lines). Serve it live with \
             $(b,fpgrind serve --findings) $(docv).")
  in
  let soundiness_every_arg =
    Arg.(
      value & opt int 0
      & info [ "soundiness-every" ] ~docv:"N"
          ~doc:
            "Make every Nth stream index a soundiness check over the \
             benchmark suite (0 disables the soundiness slice).")
  in
  let regimes_every_arg =
    Arg.(
      value & opt int 0
      & info [ "regimes-every" ] ~docv:"N"
          ~doc:
            "Make every Nth stream index a regime-inference task over the \
             straight-line suite; fixes and unsound candidates land in the \
             findings feed with a regime_candidate verdict (0 disables the \
             regime slice; soundiness wins when both slices hit one index).")
  in
  let checkpoint_every_arg =
    Arg.(
      value & opt int 50
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:"Checkpoint the state file every N completed tasks.")
  in
  let no_shrink_arg =
    Arg.(
      value & flag
      & info [ "no-shrink" ]
          ~doc:"Skip corpus minimization of divergent programs.")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress progress lines.")
  in
  let run seed iters state_path findings_path soundiness_every regimes_every
      checkpoint_every no_shrink quiet =
    let cfg =
      {
        (Campaign.Runner.default_config ~state_path ~findings_path) with
        Campaign.Runner.cfg_seed = seed;
        cfg_iters = iters;
        cfg_soundness_every = soundiness_every;
        cfg_regimes_every = regimes_every;
        cfg_checkpoint_every = max 1 checkpoint_every;
        cfg_shrink = not no_shrink;
      }
    in
    (* SIGINT/SIGTERM request a stop; the loop finishes the task in
       flight, appends its findings, checkpoints, and exits 3 so a
       supervisor can tell "interrupted, resume me" from "done". *)
    let stop = ref false in
    let on_signal _ = stop := true in
    Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
    let on_progress st =
      if not quiet then
        Printf.eprintf "%s\n%!" (Campaign.Runner.summary_line st)
    in
    try
      match
        Campaign.Runner.run ~should_stop:(fun () -> !stop) ~on_progress cfg
      with
      | Campaign.Runner.Completed st ->
          Printf.printf "%s\n" (Campaign.Runner.summary_line st);
          0
      | Campaign.Runner.Interrupted st ->
          Printf.printf "interrupted; %s\n" (Campaign.Runner.summary_line st);
          3
    with Campaign.Runner.Resume_mismatch msg ->
      Printf.eprintf "error: %s\n" msg;
      1
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:
         "Run a long-running, resumable fuzz campaign: differential + \
          engine-consistency oracles over seeded random programs, an \
          optional soundiness slice over the benchmark suite, periodic \
          checkpoints, and an append-only findings JSONL feed. SIGINT or \
          SIGTERM checkpoints and exits 3; rerunning with the same flags \
          resumes and the merged findings feed is byte-identical to an \
          uninterrupted run.")
    Term.(
      const run $ seed_arg $ iters_arg $ state_arg $ findings_arg
      $ soundiness_every_arg $ regimes_every_arg $ checkpoint_every_arg
      $ no_shrink_arg $ quiet_arg)

(* ---------- serve (the network analysis service) ---------- *)

let serve_cmd =
  let port_arg =
    Arg.(
      value & opt int 8080
      & info [ "port" ] ~docv:"PORT"
          ~doc:"TCP port to listen on; 0 picks an ephemeral port (printed).")
  in
  let host_arg =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"ADDR" ~doc:"Address to bind.")
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Worker domains for analysis jobs.")
  in
  let queue_arg =
    Arg.(
      value & opt int 16
      & info [ "queue" ] ~docv:"N"
          ~doc:
            "Bounded job-queue depth. When $(docv) jobs are already \
             waiting, new work is refused with 503 and a Retry-After \
             hint instead of queueing unboundedly.")
  in
  let timeout_arg =
    Arg.(
      value & opt (some float) None
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Default per-request analysis deadline.")
  in
  let max_body_arg =
    Arg.(
      value & opt int Serve.Http.default_max_body
      & info [ "max-body" ] ~docv:"BYTES"
          ~doc:"Largest accepted request body; larger submissions get 413.")
  in
  let store_arg =
    Arg.(
      value & opt (some string) None
      & info [ "store" ] ~docv:"FILE"
          ~doc:
            "JSONL results store: warm the result cache from $(docv) at \
             startup and flush all outcomes to it on shutdown.")
  in
  let findings_arg =
    Arg.(
      value & opt (some string) None
      & info [ "findings" ] ~docv:"FILE"
          ~doc:
            "Campaign findings JSONL feed to serve verbatim on GET \
             /findings (typically the --findings file of a running \
             $(b,fpgrind campaign)). Also populates the \
             fpgrind_campaign_* metrics.")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress per-request log lines.")
  in
  let shards_arg =
    Arg.(
      value & opt int 0
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Pre-fork $(docv) worker processes sharing one listening \
             socket. Each shard is a full server (own pool, cache, \
             metrics); a crashed or OOM-killed shard is respawned by the \
             parent and results are shared through an advisory-locked \
             JSONL cache (the --store file). 0 runs the classic \
             single-process server.")
  in
  let keep_alive_arg =
    Arg.(
      value & opt int 100
      & info [ "keep-alive-requests" ] ~docv:"N"
          ~doc:
            "Requests served per connection before it is closed \
             (Connection: close on the last response).")
  in
  let idle_timeout_arg =
    Arg.(
      value & opt float 5.0
      & info [ "idle-timeout" ] ~docv:"SECONDS"
          ~doc:"Tear down a keep-alive connection idle for $(docv).")
  in
  let rate_limit_arg =
    Arg.(
      value & opt (some float) None
      & info [ "rate-limit" ] ~docv:"RPS"
          ~doc:
            "Per-client token-bucket rate limit on POST requests, in \
             requests/second; over-limit clients get 503 with Retry-After.")
  in
  let rate_burst_arg =
    Arg.(
      value & opt int 16
      & info [ "rate-burst" ] ~docv:"N"
          ~doc:"Token-bucket capacity for --rate-limit.")
  in
  let run port host jobs queue timeout max_body store_path findings_path quiet
      shards keep_alive_requests idle_timeout rate_limit rate_burst =
    try
      let cfg =
        {
          Serve.Server.port;
          host;
          jobs;
          queue;
          timeout;
          max_body;
          store_path;
          findings_path;
          quiet;
          keep_alive_requests;
          idle_timeout;
          rate_limit;
          rate_burst;
          shared_cache_path = None;
          shard_status_path = None;
          listen_fd = None;
        }
      in
      if shards > 0 then begin
        (* Shard mode: workers publish every fresh result to the shared
           cache file incrementally, which *is* the durable store —
           per-worker truncate-and-save flushes would clobber each other,
           so the workers run with store_path = None. *)
        let status_path =
          match store_path with
          | Some p -> p ^ ".status.json"
          | None -> Filename.temp_file "fpgrind-shard-status" ".json"
        in
        let worker_cfg =
          {
            cfg with
            Serve.Server.store_path = None;
            shared_cache_path = store_path;
          }
        in
        let shard_cfg =
          {
            (Shard.default_config ~serve:worker_cfg ~status_path) with
            Shard.sh_shards = shards;
          }
        in
        Shard.run
          ~on_listen:(fun bound ->
            Printf.printf
              "fpgrind serve: listening on http://%s:%d (shards=%d jobs=%d \
               queue=%d)\n%!"
              host bound shards jobs queue)
          shard_cfg
      end
      else begin
        let srv = Serve.Server.create cfg in
        (* graceful shutdown: stop accepting, drain in-flight and queued
           jobs, flush the store, then exit 0 *)
        let on_signal _ = Serve.Server.stop srv in
        Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
        Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
        (* the pipe is handled inline; a dying client must not kill us *)
        Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
        Printf.printf
          "fpgrind serve: listening on http://%s:%d (jobs=%d queue=%d)\n%!"
          host (Serve.Server.port srv) jobs queue;
        Serve.Server.run srv;
        0
      end
    with Unix.Unix_error (e, fn, _) ->
      Printf.eprintf "error: %s: %s\n" fn (Unix.error_message e);
      1
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the HTTP analysis service: keep-alive HTTP/1.1 with POST \
          /analyze and /fuzz behind a bounded queue with 503 backpressure, \
          optional pre-forked shards (--shards) with crash respawn and a \
          shared result cache, per-client rate limiting, GET /healthz, GET \
          /findings for a campaign feed, and GET /metrics in Prometheus \
          text format.")
    Term.(
      const run $ port_arg $ host_arg $ jobs_arg $ queue_arg $ timeout_arg
      $ max_body_arg $ store_arg $ findings_arg $ quiet_arg $ shards_arg
      $ keep_alive_arg $ idle_timeout_arg $ rate_limit_arg $ rate_burst_arg)

(* ---------- client (talk to a running fpgrind serve) ---------- *)

let client_cmd =
  let action_arg =
    Arg.(
      required
      & pos 0
          (some
             (enum
                [
                  ("analyze", `Analyze); ("sanitize", `Sanitize);
                  ("fuzz", `Fuzz); ("health", `Health); ("metrics", `Metrics);
                  ("findings", `Findings);
                ]))
          None
      & info [] ~docv:"ACTION"
          ~doc:"One of analyze, sanitize, fuzz, health, metrics, findings.")
  in
  let target_arg =
    Arg.(
      value & pos 1 (some string) None
      & info [] ~docv:"PROGRAM"
          ~doc:
            "For analyze: a MiniC (.mc) or FPCore (.fpcore) source file, \
             or bench:NAME for a suite benchmark.")
  in
  let port_arg =
    Arg.(
      value & opt int 8080
      & info [ "port" ] ~docv:"PORT" ~doc:"Server port.")
  in
  let host_arg =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"ADDR" ~doc:"Server address.")
  in
  let match_arg =
    Arg.(
      value & opt (some string) None
      & info [ "match" ] ~docv:"FILE"
          ~doc:
            "After an analyze request, assert the response equals the \
             record with the same benchmark name in the JSONL store \
             $(docv) on every field except wall_s; exit nonzero on \
             mismatch.")
  in
  let iters_arg =
    Arg.(
      value & opt int 100
      & info [ "iters" ] ~docv:"N" ~doc:"Fuzz campaign length.")
  in
  let fuzz_seed_arg =
    Arg.(
      value & opt int 42 & info [ "fuzz-seed" ] ~docv:"N" ~doc:"Fuzz seed.")
  in
  let client_timeout_arg =
    Arg.(
      value & opt (some float) None
      & info [ "timeout" ] ~docv:"SECONDS" ~doc:"Per-request analysis deadline.")
  in
  let client_engine_arg =
    Arg.(
      value & opt (some string) None
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:
            "Analysis engine for the analyze action: $(b,full), \
             $(b,sanitize) or $(b,tiered). Sent to the server as the \
             $(b,engine) query parameter.")
  in
  let client_regimes_arg =
    Arg.(
      value & flag
      & info [ "regimes" ]
          ~doc:
            "For analyze on a bench:NAME target: ask the server to run \
             regime inference and annotate the record with the branch \
             structure (sent as the $(b,regimes=1) query parameter).")
  in
  let repeat_arg =
    Arg.(
      value & opt int 1
      & info [ "repeat" ] ~docv:"N"
          ~doc:
            "Send the request $(docv) times over a single keep-alive \
             connection; only the last response is printed (and compared \
             by --match). Useful for warming the server cache and for \
             eyeballing keep-alive behaviour.")
  in
  (* A cached record is by construction a copy of an ok record, so the
     comparison normalises "cached" to "ok"; everything else but the
     wall-time is compared strictly. *)
  let strip_wall (j : Fleet.Json.t) : Fleet.Json.t =
    match j with
    | Fleet.Json.Obj kvs ->
        Fleet.Json.Obj
          (List.filter_map
             (fun (k, v) ->
               if k = "wall_s" then None
               else if k = "status" && v = Fleet.Json.Str "cached" then
                 Some (k, Fleet.Json.Str "ok")
               else Some (k, v))
             kvs)
    | j -> j
  in
  let run action target port host inputs iterations seed precision threshold
      match_store iters fuzz_seed timeout engine regimes repeat =
    let enc = Serve.Http.percent_encode in
    let repeat = max 1 repeat in
    (* all requests of one invocation share one keep-alive connection;
       the connection is opened lazily so argument errors never dial *)
    let conn = lazy (Serve.Client.connect ~host ~port ()) in
    let send ~meth ~path ?body () =
      let c = Lazy.force conn in
      let r = ref (Serve.Client.request_conn c ~meth ~path ?body ()) in
      for _ = 2 to repeat do
        r := Serve.Client.request_conn c ~meth ~path ?body ()
      done;
      !r
    in
    let finish code =
      if Lazy.is_val conn then Serve.Client.close (Lazy.force conn);
      code
    in
    try
      (match engine with
      | Some e when Core.Config.engine_of_name e = None ->
          Printf.eprintf
            "error: unknown engine %S (expected full, sanitize or tiered)\n" e;
          raise Exit
      | _ -> ());
      finish
      @@
      match action with
      | `Health ->
          let r = send ~meth:"GET" ~path:"/healthz" () in
          print_string r.Serve.Client.c_body;
          if r.Serve.Client.c_status / 100 = 2 then 0 else 1
      | `Metrics ->
          let r = send ~meth:"GET" ~path:"/metrics" () in
          print_string r.Serve.Client.c_body;
          if r.Serve.Client.c_status / 100 = 2 then 0 else 1
      | `Findings ->
          let r = send ~meth:"GET" ~path:"/findings" () in
          print_string r.Serve.Client.c_body;
          if r.Serve.Client.c_status / 100 = 2 then 0 else 1
      | `Fuzz ->
          let path =
            Printf.sprintf "/fuzz?seed=%d&iters=%d%s" fuzz_seed iters
              (match timeout with
              | None -> ""
              | Some s -> "&timeout=" ^ enc (Printf.sprintf "%g" s))
          in
          let r = send ~meth:"POST" ~path () in
          print_string r.Serve.Client.c_body;
          if r.Serve.Client.c_status / 100 = 2 then 0 else 1
      | (`Analyze | `Sanitize) as action -> (
          let endpoint =
            match action with `Analyze -> "/analyze" | `Sanitize -> "/sanitize"
          in
          let target =
            match target with
            | Some t -> t
            | None ->
                Printf.eprintf "error: client %s needs a PROGRAM argument\n"
                  (match action with
                  | `Analyze -> "analyze"
                  | `Sanitize -> "sanitize");
                raise Exit
          in
          let body =
            if String.length target > 6 && String.sub target 0 6 = "bench:"
            then target
            else read_file target
          in
          let path =
            Printf.sprintf
              "%s?iterations=%d&seed=%d&precision=%d&threshold=%s%s%s"
              endpoint iterations seed precision
              (enc (Printf.sprintf "%.17g" threshold))
              (match inputs with
              | [] -> ""
              | fs ->
                  "&inputs="
                  ^ enc (String.concat "," (List.map (Printf.sprintf "%h") fs)))
              (match timeout with
              | None -> ""
              | Some s -> "&timeout=" ^ enc (Printf.sprintf "%g" s))
          in
          let path =
            match engine with
            | Some e -> path ^ "&engine=" ^ enc e
            | None -> path
          in
          let path = if regimes then path ^ "&regimes=1" else path in
          let r = send ~meth:"POST" ~path ~body () in
          print_string r.Serve.Client.c_body;
          if r.Serve.Client.c_status / 100 <> 2 then 1
          else
            match match_store with
            | None -> 0
            | Some store_path ->
                let got =
                  strip_wall
                    (Fleet.Json.of_string (String.trim r.Serve.Client.c_body))
                in
                let resp_json =
                  Fleet.Json.of_string (String.trim r.Serve.Client.c_body)
                in
                let name = Fleet.Json.get_str "name" resp_json in
                let resp_engine =
                  match Fleet.Json.member "engine" resp_json with
                  | Some (Fleet.Json.Str s) -> s
                  | _ -> "full"
                in
                let expected =
                  match
                    List.find_opt
                      (fun (o : Fleet.outcome) -> o.Fleet.o_name = name)
                      (Fleet.Store.load store_path)
                  with
                  | Some o ->
                      (* a full-engine record says nothing about the
                         sanitizer (and vice versa): comparing them would
                         only ever report a meaningless mismatch *)
                      if o.Fleet.o_engine <> resp_engine then
                        failwith
                          (Printf.sprintf
                             "refusing to --match across engines: the \
                              response for %s came from the %s engine but \
                              the record in %s came from the %s engine"
                             name resp_engine store_path o.Fleet.o_engine);
                      strip_wall (Fleet.Store.outcome_to_json o)
                  | None ->
                      failwith
                        (Printf.sprintf "no record named %s in %s" name
                           store_path)
                in
                if Fleet.Json.to_string got = Fleet.Json.to_string expected
                then begin
                  Printf.eprintf
                    "match: response equals the stored record for %s (modulo \
                     wall_s)\n"
                    name;
                  0
                end
                else begin
                  Printf.eprintf
                    "MISMATCH for %s\n  server: %s\n  store:  %s\n" name
                    (Fleet.Json.to_string got)
                    (Fleet.Json.to_string expected);
                  1
                end)
    with
    | Exit -> 1
    | Unix.Unix_error (e, fn, _) ->
        Printf.eprintf "error: %s: %s\n" fn (Unix.error_message e);
        1
    | Sys_error msg | Failure msg ->
        Printf.eprintf "error: %s\n" msg;
        1
    | Fleet.Json.Parse_error msg | Serve.Http.Error (_, msg) ->
        Printf.eprintf "error: %s\n" msg;
        1
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Talk to a running fpgrind serve: submit an analysis or fuzz \
          campaign, or fetch /healthz or /metrics.")
    Term.(
      const run $ action_arg $ target_arg $ port_arg $ host_arg $ inputs_arg
      $ iterations_arg $ Arg.(
        value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Input sampling seed.")
      $ precision_arg $ threshold_arg $ match_arg $ iters_arg $ fuzz_seed_arg
      $ client_timeout_arg $ client_engine_arg $ client_regimes_arg
      $ repeat_arg)

let loadgen_cmd =
  let url_arg =
    Arg.(
      value & opt string "http://127.0.0.1:8080"
      & info [ "url" ] ~docv:"URL"
          ~doc:"Server base URL, $(b,http://HOST:PORT).")
  in
  let rate_arg =
    Arg.(
      value & opt float 50.0
      & info [ "rate" ] ~docv:"RPS"
          ~doc:
            "Open-loop arrival rate in requests/second. Request i is due \
             at start + i/RATE regardless of earlier completions, and its \
             latency is charged from that due time.")
  in
  let duration_arg =
    Arg.(
      value & opt float 5.0
      & info [ "duration" ] ~docv:"SECONDS" ~doc:"Seconds of offered load.")
  in
  let lg_seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"N"
          ~doc:
            "Request-stream seed; the body of request i is a pure \
             function of (seed, i, mix), so the same seed offers the \
             same bodies regardless of timing or concurrency.")
  in
  let mix_arg =
    Arg.(
      value & opt string "bench=1,minic=1"
      & info [ "mix" ] ~docv:"SPEC"
          ~doc:
            "Weighted request mix, e.g. $(b,bench=3,minic=1): \
             $(b,bench) requests repeat suite benchmarks (cache-friendly), \
             $(b,minic) requests carry fresh generated programs \
             (cache-cold).")
  in
  let conns_arg =
    Arg.(
      value & opt int 4
      & info [ "conns" ] ~docv:"N"
          ~doc:"Concurrent keep-alive connections carrying the stream.")
  in
  let lg_engine_arg =
    Arg.(
      value & opt string "sanitize"
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:"Analysis engine query parameter sent with every request.")
  in
  let lg_iterations_arg =
    Arg.(
      value & opt int 8
      & info [ "iterations" ] ~docv:"N"
          ~doc:"Sampled inputs per analysis request.")
  in
  let json_arg =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Also write the report JSON to $(docv).")
  in
  (* http://HOST:PORT — no path/userinfo, this is a bench driver not a
     general HTTP client *)
  let parse_url (u : string) : (string * int, string) result =
    let prefix = "http://" in
    let plen = String.length prefix in
    if String.length u <= plen || String.sub u 0 plen <> prefix then
      Error (Printf.sprintf "expected http://HOST:PORT, got %s" u)
    else
      let rest = String.sub u plen (String.length u - plen) in
      let rest =
        if String.length rest > 0 && rest.[String.length rest - 1] = '/' then
          String.sub rest 0 (String.length rest - 1)
        else rest
      in
      match String.rindex_opt rest ':' with
      | None -> Ok (rest, 80)
      | Some i -> (
          let host = String.sub rest 0 i in
          let port = String.sub rest (i + 1) (String.length rest - i - 1) in
          match int_of_string_opt port with
          | Some p when p > 0 && host <> "" -> Ok (host, p)
          | _ -> Error (Printf.sprintf "bad port in %s" u))
  in
  let run url rate duration seed mix conns engine iterations json_path =
    try
      let host, port =
        match parse_url url with Ok hp -> hp | Error msg -> failwith msg
      in
      if rate <= 0.0 then failwith "loadgen: --rate must be positive";
      if duration <= 0.0 then failwith "loadgen: --duration must be positive";
      let cfg =
        {
          Loadgen.lg_host = host;
          lg_port = port;
          lg_rate = rate;
          lg_duration = duration;
          lg_conns = max 1 conns;
          lg_seed = seed;
          lg_mix = Loadgen.mix_of_string mix;
          lg_engine = engine;
          lg_iterations = max 1 iterations;
        }
      in
      let report = Loadgen.run cfg in
      let j = Fleet.Json.to_string (Loadgen.to_json cfg report) in
      print_endline j;
      (match json_path with
      | None -> ()
      | Some p ->
          let oc = open_out p in
          output_string oc j;
          output_char oc '\n';
          close_out oc);
      (* 503s are the server keeping its latency promise under overload;
         other 5xx (or transport failures) mean it broke *)
      if report.Loadgen.r_errors_5xx > 0 || report.Loadgen.r_conn_errors > 0
      then 1
      else 0
    with
    | Failure msg | Sys_error msg ->
        Printf.eprintf "error: %s\n" msg;
        1
    | Unix.Unix_error (e, fn, _) ->
        Printf.eprintf "error: %s: %s\n" fn (Unix.error_message e);
        1
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Offer seeded open-loop load to a running fpgrind serve and \
          report p50/p90/p99 latency, throughput and error rates as JSON. \
          The request stream is a pure function of --seed and --mix; \
          latency is measured from each request's scheduled arrival time, \
          so server stalls show up as queueing delay instead of silently \
          slowing the generator (no coordinated omission).")
    Term.(
      const run $ url_arg $ rate_arg $ duration_arg $ lg_seed_arg $ mix_arg
      $ conns_arg $ lg_engine_arg $ lg_iterations_arg $ json_arg)

let () =
  let doc = "find root causes of floating-point error (Herbgrind reproduction)" in
  let info = Cmd.info "fpgrind" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            analyze_cmd; sanitize_cmd; run_cmd; suite_cmd; validate_cmd;
            list_cmd; improve_cmd; fuzz_cmd; campaign_cmd; serve_cmd;
            client_cmd; loadgen_cmd;
          ]))
