(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (sections 3, 7 and 8). See DESIGN.md's experiment
   index (E1-E17) for the mapping. Overheads are measured as
   (instrumented run time) / (uninstrumented VEX run time), the
   reproduction's analogue of Herbgrind-vs-native.

     dune exec bench/main.exe                 # everything (slow-ish)
     dune exec bench/main.exe -- fig9 fig10   # chosen experiments
     dune exec bench/main.exe -- --quick      # smaller sweeps
     dune exec bench/main.exe -- micro        # bechamel microbenchmarks

   Absolute times depend on this machine; the reproduction targets the
   paper's *shapes*: which configuration is slower, by roughly what
   factor, and where the crossovers fall. *)

let quick = ref false

(* ---------- timing helpers ---------- *)

let now () = Unix.gettimeofday ()

let time_run f =
  let t0 = now () in
  let r = f () in
  let t = now () -. t0 in
  (r, t)

(* Median of a few repetitions, after one untimed warm-up run. The major
   collection keeps GC debt from earlier (allocation-heavy) analysis runs
   from being paid during later cheap native timings. *)
let timed ?(reps = 3) f =
  Gc.major ();
  ignore (time_run f);
  let times =
    List.init reps (fun _ ->
        let _, t = time_run f in
        t)
  in
  List.nth (List.sort compare times) (reps / 2)

let pr fmt = Printf.printf fmt

let header title =
  pr "\n=== %s ===\n" title

let quartiles (xs : float list) =
  let a = Array.of_list (List.sort compare xs) in
  let n = Array.length a in
  if n = 0 then (0.0, 0.0, 0.0)
  else (a.(n / 4), a.(n / 2), a.(3 * n / 4))

(* ---------- common drivers ---------- *)

let native_time prog inputs =
  timed (fun () -> ignore (Vex.Machine.run ~max_steps:1_000_000_000 ~inputs prog))

let analysis_time ?(cfg = Core.Config.default) ?(reps = 3) prog inputs =
  timed ~reps (fun () ->
      ignore (Core.Analysis.analyze ~cfg ~max_steps:1_000_000_000 ~inputs prog))

let _overhead ?cfg prog inputs =
  let tn = native_time prog inputs in
  let ta = analysis_time ?cfg prog inputs in
  ta /. Float.max 1e-9 tn

let bench_prog (b : Fpcore.Suite.bench) ~n =
  let core = Fpcore.Suite.core_of b in
  let prog = Fpcore.Compile.compile ~n_inputs:n ~name:b.Fpcore.Suite.name core in
  let inputs = Fpcore.Suite.inputs_for ~seed:1 b ~n in
  (prog, inputs)

let suite_subset () =
  if !quick then
    List.map Fpcore.Suite.find
      [ "intro-example"; "doppler1"; "verhulst"; "nmse-3-1"; "kepler0";
        "himmilbeau"; "logexp"; "sine-taylor"; "logistic-map"; "pid-controller";
        "newton-sqrt"; "step-counter" ]
  else Fpcore.Suite.all

let iterations_for (b : Fpcore.Suite.bench) =
  match b.Fpcore.Suite.group with `Straight -> 16 | `Loop -> 2

(* ---------- E4 / figure 8 (left): Tetgen overhead vs input ---------- *)

let fig8_tetgen () =
  header "Figure 8 (left): Tetgen-style overhead across inputs (E4)";
  pr "%-8s %-12s %12s %14s %10s\n" "input" "degeneracy" "native (s)" "analysis (s)"
    "overhead";
  let trials = if !quick then 6 else 12 in
  List.iteri
    (fun i degeneracy ->
      let prog = Workloads.Predicates.compile_orient3d ~trials in
      let inputs =
        Workloads.Predicates.orient3d_inputs ~trials ~degeneracy ~seed:(3 + i)
      in
      let tn = native_time prog inputs in
      let ta = analysis_time prog inputs in
      pr "%-8d %-12.2f %12.4f %14.4f %9.0fx\n" (i + 1) degeneracy tn ta
        (ta /. Float.max 1e-9 tn))
    [ 0.0; 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9; 1.0 ]

(* ---------- E5 / figure 8 (right): Polybench overhead ---------- *)

let fig8_polybench () =
  header "Figure 8 (right): Polybench overhead per kernel (E5)";
  pr "%-14s %12s %14s %10s\n" "kernel" "native (s)" "analysis (s)" "overhead";
  let n = if !quick then 5 else 8 in
  List.iter
    (fun (k : Workloads.Polybench.kernel) ->
      let prog = Workloads.Polybench.compile ~n k in
      let tn = native_time prog [||] in
      let ta = analysis_time prog [||] in
      pr "%-14s %12.4f %14.4f %9.0fx\n" k.Workloads.Polybench.k_name tn ta
        (ta /. Float.max 1e-9 tn))
    Workloads.Polybench.kernels

(* ---------- E6: the Gram-Schmidt NaN finding ---------- *)

let gramschmidt_nan () =
  header "Section 7: Gram-Schmidt on rank-deficient input (E6)";
  let prog = Workloads.Polybench.compile_gramschmidt_rank_deficient ~n:6 () in
  let r = Core.Analysis.analyze ~cfg:Core.Config.default ~max_steps:200_000_000 prog in
  let outs = Core.Analysis.output_floats r in
  let nans = List.length (List.filter Float.is_nan outs) in
  let spots = Core.Analysis.output_spots r in
  let errmax =
    List.fold_left
      (fun m (s : Core.Exec.spot_info) -> Float.max m s.Core.Exec.s_err_max)
      0.0 spots
  in
  pr "outputs: %d, NaN outputs: %d, max output error: %.0f bits (paper: 64)\n"
    (List.length outs) nans errmax

(* ---------- E7: Gromacs-style scale run ---------- *)

let gromacs () =
  header "Section 7: Gromacs-style MD kernel (E7)";
  let particles = if !quick then 16 else 32 in
  let steps = 3 in
  let prog = Workloads.Gromacs.compile ~particles ~steps () in
  let tn = native_time prog [||] in
  let ta = analysis_time prog [||] in
  pr "particles=%d steps=%d native=%.4fs analysis=%.4fs overhead=%.0fx\n"
    particles steps tn ta
    (ta /. Float.max 1e-9 tn)

(* ---------- E8 / figure 9: FPBench overhead with component shading ---------- *)

let fig9 () =
  header "Figure 9: FPBench overhead, by component (E8)";
  pr "%-24s %6s | %9s %9s %9s %9s | %9s\n" "benchmark" "group" "tool-base"
    "+reals" "+infl" "+exprs" "overhead";
  let rows = suite_subset () in
  List.iter
    (fun (b : Fpcore.Suite.bench) ->
      let n = iterations_for b in
      match bench_prog b ~n with
      | prog, inputs ->
          let tn = native_time prog inputs in
          let base_cfg =
            {
              Core.Config.default with
              Core.Config.enable_reals = false;
              enable_influences = false;
              enable_expressions = false;
            }
          in
          let t_base = analysis_time ~cfg:base_cfg prog inputs in
          let t_reals =
            analysis_time
              ~cfg:{ base_cfg with Core.Config.enable_reals = true }
              prog inputs
          in
          let t_infl =
            analysis_time
              ~cfg:
                {
                  base_cfg with
                  Core.Config.enable_reals = true;
                  enable_influences = true;
                }
              prog inputs
          in
          let t_full = analysis_time prog inputs in
          let ov t = t /. Float.max 1e-9 tn in
          pr "%-24s %6s | %8.1fx %8.1fx %8.1fx %8.1fx | %8.1fx\n"
            b.Fpcore.Suite.name
            (match b.Fpcore.Suite.group with `Straight -> "sline" | `Loop -> "loop")
            (ov t_base) (ov t_reals) (ov t_infl) (ov t_full) (ov t_full)
      | exception e ->
          pr "%-24s FAILED: %s\n" b.Fpcore.Suite.name (Printexc.to_string e))
    rows

(* ---------- E9 / section 8.1: recovery and size histogram ---------- *)

let table_sizes () =
  header "Section 8.1: recovered-expression size histogram (E9)";
  let sizes = ref [] in
  List.iter
    (fun (b : Fpcore.Suite.bench) ->
      let n = iterations_for b in
      match bench_prog b ~n with
      | prog, inputs ->
          let cfg = { Core.Config.default with Core.Config.precision = 256 } in
          let r = Core.Analysis.analyze ~cfg ~max_steps:500_000_000 ~inputs prog in
          List.iter
            (fun (e, _, _) -> sizes := Core.Antiunify.sym_op_count e :: !sizes)
            (Core.Analysis.all_expressions r)
      | exception _ -> ())
    (suite_subset ());
  let count p = List.length (List.filter p !sizes) in
  pr "total recovered expressions: %d\n" (List.length !sizes);
  pr "  <= 5 ops:  %d\n" (count (fun s -> s <= 5));
  pr "  5-10 ops:  %d\n" (count (fun s -> s > 5 && s <= 10));
  pr "  10-20 ops: %d\n" (count (fun s -> s > 10 && s <= 20));
  pr "  20-40 ops: %d\n" (count (fun s -> s > 20 && s <= 40));
  pr "  > 40 ops:  %d (paper's largest: 67)\n" (count (fun s -> s > 40));
  pr "(paper: 77 <=5; 30 in 5-10; 24 in 10-20; 8 in 20-40; 2 at 67)\n"

(* ---------- E10: the step-counter loop surprise ---------- *)

let step_counter () =
  header "Section 8.1: step-counter loop condition (E10)";
  let b = Fpcore.Suite.find "step-counter" in
  let prog, inputs = bench_prog b ~n:1 in
  let r = Core.Analysis.analyze ~cfg:Core.Config.default ~inputs prog in
  let branches = Core.Analysis.branch_spots r in
  List.iter
    (fun (s : Core.Exec.spot_info) ->
      if s.Core.Exec.s_incorrect > 0 then
        pr "loop condition at %s: %d incorrect of %d instances (paper: 1)\n"
          (Vex.Ir.loc_to_string s.Core.Exec.s_loc)
          s.Core.Exec.s_incorrect s.Core.Exec.s_total)
    branches

(* ---------- E11-E13 / figure 10: the three CDFs ---------- *)

let relative_runtime_cdf title variants =
  header title;
  let rows = suite_subset () in
  let results =
    List.filter_map
      (fun (b : Fpcore.Suite.bench) ->
        let n = iterations_for b in
        match bench_prog b ~n with
        | prog, inputs ->
            let ts =
              List.map (fun (_, cfg) -> analysis_time ~cfg prog inputs) variants
            in
            Some (b.Fpcore.Suite.name, ts)
        | exception _ -> None)
      rows
  in
  (* normalize against the first (default) variant *)
  let names = List.map fst variants in
  pr "%-24s" "benchmark";
  List.iter (fun n -> pr " %10s" n) names;
  pr "\n";
  let ratio_lists = Array.make (List.length variants) [] in
  List.iter
    (fun (bname, ts) ->
      let base = List.nth ts 0 in
      pr "%-24s" bname;
      List.iteri
        (fun i t ->
          let ratio = t /. Float.max 1e-9 base in
          ratio_lists.(i) <- ratio :: ratio_lists.(i);
          pr " %9.2fx" ratio)
        ts;
      pr "\n")
    results;
  pr "%-24s" "IQR (q1/med/q3)";
  Array.iter
    (fun rs ->
      let q1, med, q3 = quartiles rs in
      pr " %s" (Printf.sprintf "%.2f/%.2f/%.2f" q1 med q3))
    ratio_lists;
  pr "\n"

let fig10_depth () =
  let mk d = { Core.Config.default with Core.Config.equiv_depth = d } in
  relative_runtime_cdf
    "Figure 10a: equivalence depth 5 vs 2 vs 10 (E11, relative runtime)"
    [ ("depth5", mk 5); ("depth2", mk 2); ("depth10", mk 10) ]

let fig10_precision () =
  let mk p = { Core.Config.default with Core.Config.precision = p } in
  relative_runtime_cdf
    "Figure 10b: precision 1000 vs 128 vs 4000 bits (E12, relative runtime)"
    [ ("p1000", mk 1000); ("p128", mk 128); ("p4000", mk 4000) ]

let fig10_typeinfer () =
  relative_runtime_cdf
    "Figure 10c: type inference on vs off (E13, relative runtime)"
    [
      ("ti-on", Core.Config.default);
      ("ti-off", { Core.Config.default with Core.Config.type_inference = false });
    ];
  (* FPBench minimizes non-float operations, so the paper's FPBench result
     is ambiguous there ("10% faster to 200% slower" when removed); the
     big wins come from looping programs dominated by integer indexing --
     measured here on Polybench kernels, as in the paper's closing claim *)
  pr "\n%-14s %10s %10s %10s\n" "kernel" "ti-on (s)" "ti-off (s)" "off/on";
  let ti_off = { Core.Config.default with Core.Config.type_inference = false } in
  List.iter
    (fun name ->
      let k = Workloads.Polybench.find name in
      let prog = Workloads.Polybench.compile ~n:(if !quick then 5 else 8) k in
      let t_on = analysis_time prog [||] in
      let t_off = analysis_time ~cfg:ti_off prog [||] in
      pr "%-14s %10.4f %10.4f %9.2fx\n" name t_on t_off (t_off /. Float.max 1e-9 t_on))
    [ "gemm"; "atax"; "trisolv"; "jacobi-1d" ]

(* ---------- E14/E15: expression and reals ablations ---------- *)

let ablate_expr () =
  relative_runtime_cdf
    "Section 8.2: expression building on vs off (E14; paper: off is 13-230% faster)"
    [
      ("exprs-on", Core.Config.default);
      ( "exprs-off",
        { Core.Config.default with Core.Config.enable_expressions = false } );
    ]

let ablate_real () =
  relative_runtime_cdf
    "Section 8.2: shadow reals on vs off (E15; paper: reals are 40-80% of overhead)"
    [
      ("reals-on", Core.Config.default);
      ("reals-off", { Core.Config.default with Core.Config.enable_reals = false });
    ]

(* ---------- E16: error-threshold sweep ---------- *)

let threshold_sweep () =
  let mk t = { Core.Config.default with Core.Config.error_threshold = t } in
  relative_runtime_cdf
    "Section 8.2: error threshold sweep (E16; paper: overhead unaffected)"
    [
      ("t5", mk 5.0); ("t2", mk 2.0); ("t10", mk 10.0); ("t29", mk 29.0);
      ("t53", mk 53.0);
    ]

(* ---------- E17: libm wrapping ablation ---------- *)

let ablate_wrap () =
  header "Section 8.2: libm wrapping on vs off (E17)";
  let benches =
    List.map Fpcore.Suite.find
      [ "expm1-naive"; "logexp"; "nmse-3-4"; "nmse-p336"; "nmse-ex39" ]
  in
  pr "%-16s %14s %14s %16s %16s\n" "benchmark" "exprs(wrap)" "exprs(nowrap)"
    "maxops(wrap)" "maxops(nowrap)";
  List.iter
    (fun (b : Fpcore.Suite.bench) ->
      let core = Fpcore.Suite.core_of b in
      let n = 4 in
      let inputs = Fpcore.Suite.inputs_for ~seed:1 b ~n in
      let stats wrap_libm =
        let prog = Fpcore.Compile.compile ~wrap_libm ~n_inputs:n core in
        let cfg = { Core.Config.default with Core.Config.precision = 256 } in
        let r = Core.Analysis.analyze ~cfg ~max_steps:500_000_000 ~inputs prog in
        let exprs = Core.Analysis.all_expressions r in
        let maxops =
          List.fold_left
            (fun m (e, _, _) -> max m (Core.Antiunify.sym_op_count e))
            0 exprs
        in
        (List.length exprs, maxops)
      in
      let n1, m1 = stats true in
      let n2, m2 = stats false in
      pr "%-16s %14d %14d %16d %16d\n" b.Fpcore.Suite.name n1 n2 m1 m2)
    benches;
  pr "(paper: wrapping off inflates the largest expression from 67 to 586 ops)\n"

(* ---------- E1/E2/E3: case-study rows ---------- *)

let plotter_row () =
  header "Section 3.1: complex plotter (E1)";
  let w = if !quick then 16 else 24 in
  let naive = Workloads.Plotter.render ~width:w ~height:w ~repaired:false () in
  let fixed = Workloads.Plotter.render ~width:w ~height:w ~repaired:true () in
  pr "image: %dx%d, pixels differing naive vs repaired: %d\n" w w
    (Workloads.Plotter.diff_count naive fixed);
  let prog = Workloads.Plotter.compile ~width:10 ~height:10 ~repaired:false () in
  let r = Core.Analysis.analyze ~cfg:Core.Config.default ~max_steps:500_000_000 prog in
  let csqrt_cause =
    List.exists
      (fun (_, _, (o : Core.Exec.op_info)) ->
        o.Core.Exec.o_loc.Vex.Ir.func = "csqrt")
      (Core.Analysis.erroneous_expressions r)
  in
  pr "root cause reported inside csqrt: %b (expected true)\n" csqrt_cause

let calculix_row () =
  header "Section 3.2: CalculiX DVdot (E2)";
  let trials = if !quick then 40 else 120 in
  let r =
    Workloads.Calculix.analyze ~cfg:Core.Config.default ~n:20 ~trials ~seed:5 ()
  in
  let branches = Core.Analysis.branch_spots r in
  List.iter
    (fun (s : Core.Exec.spot_info) ->
      if s.Core.Exec.s_total >= trials then
        pr "comparison at %s: %d incorrect of %d instances (paper: 65 of 2758)\n"
          (Vex.Ir.loc_to_string s.Core.Exec.s_loc)
          s.Core.Exec.s_incorrect s.Core.Exec.s_total)
    branches;
  let dvdot =
    List.filter
      (fun (_, _, (o : Core.Exec.op_info)) ->
        o.Core.Exec.o_loc.Vex.Ir.func = "DVdot")
      (Core.Analysis.erroneous_expressions r)
  in
  (match dvdot with
  | (_, fp, o) :: _ ->
      pr "root cause: %s in DVdot, aggregated over %d instances\n" fp
        o.Core.Exec.o_count
  | [] -> pr "no DVdot root cause found (unexpected)\n")

let triangle_row () =
  header "Section 7: Triangle compensation detection (E3)";
  let trials = if !quick then 30 else 60 in
  let prog = Workloads.Predicates.compile_orient2d ~trials in
  let inputs =
    Workloads.Predicates.orient2d_inputs ~trials ~degeneracy:0.8 ~seed:11
  in
  let r =
    Core.Analysis.analyze ~cfg:Core.Config.default ~max_steps:500_000_000 ~inputs
      prog
  in
  let st = r.Core.Analysis.raw.Core.Exec.r_stats in
  pr "compensating operations detected: %d (paper: 211 of 225 in Triangle)\n"
    st.Core.Exec.compensations;
  let spots = Core.Analysis.output_spots r in
  let eft_blamed =
    List.exists
      (fun (s : Core.Exec.spot_info) ->
        Core.Shadow.IntSet.exists
          (fun id ->
            match Hashtbl.find_opt r.Core.Analysis.raw.Core.Exec.r_ops id with
            | Some o ->
                let f = o.Core.Exec.o_loc.Vex.Ir.func in
                f = "two_sum" || f = "two_diff" || f = "two_product"
            | None -> false)
          s.Core.Exec.s_infl)
      spots
  in
  pr "error-free transformations blamed at outputs: %b (expected false)\n"
    eft_blamed;
  (* the paper's control-flow caveat: stage-A comparisons on compensated
     values can go the "wrong way" relative to the reals *)
  let flow =
    List.fold_left
      (fun a (s : Core.Exec.spot_info) -> a + s.Core.Exec.s_incorrect)
      0
    (Core.Analysis.branch_spots r)
  in
  pr "adaptive-filter branches diverging from the reals: %d\n" flow;
  (* the incircle predicate, Triangle's other workhorse *)
  let prog = Workloads.Predicates.compile_incircle ~trials in
  let inputs =
    Workloads.Predicates.incircle_inputs ~trials ~degeneracy:0.8 ~seed:11
  in
  let r =
    Core.Analysis.analyze ~cfg:Core.Config.default ~max_steps:500_000_000 ~inputs
      prog
  in
  pr "incircle: %d compensations, %d candidate root causes\n"
    r.Core.Analysis.raw.Core.Exec.r_stats.Core.Exec.compensations
    (List.length (Core.Analysis.erroneous_expressions r))

(* ---------- mini-Triangle: Delaunay mesh generation ---------- *)

let minitriangle () =
  header "Mini-Triangle: Delaunay overhead vs cocircular degeneracy (E3/E4)";
  pr "%-12s %12s %14s %10s %10s\n" "cocircular" "native (s)" "analysis (s)"
    "overhead" "triangles";
  let points = if !quick then 10 else 14 in
  List.iter
    (fun cocircular ->
      let prog = Workloads.Delaunay.compile ~points () in
      let inputs = Workloads.Delaunay.inputs ~points ~cocircular ~seed:3 in
      let tn = native_time prog inputs in
      let ta = analysis_time prog inputs in
      let st = Vex.Machine.run ~max_steps:1_000_000_000 ~inputs prog in
      let count =
        match Vex.Machine.outputs st with
        | { Vex.Machine.value = Vex.Value.VI64 i; _ } :: _ -> Int64.to_int i
        | _ -> -1
      in
      pr "%-12.2f %12.4f %14.4f %9.0fx %10d\n" cocircular tn ta
        (ta /. Float.max 1e-9 tn)
        count)
    [ 0.0; 0.25; 0.5; 0.75; 0.9 ]

(* ---------- bechamel microbenchmarks ---------- *)

let micro () =
  header "Microbenchmarks (bechamel)";
  let open Bechamel in
  let open Toolkit in
  let b = Bignum.Bigfloat.of_float 1.234567890123456789 in
  let c = Bignum.Bigfloat.of_float 7.654321098765432109 in
  let prog =
    Minic.compile ~file:"micro.mc"
      {| int main() {
           double s = 0.0;
           int i;
           for (i = 1; i < 100; i = i + 1) {
             s = s + 1.0 / (double) i;
           }
           print(s);
           return 0;
         } |}
  in
  let tests =
    [
      Test.make ~name:"bigfloat-mul-1000bit" (Staged.stage (fun () ->
          ignore (Bignum.Bigfloat.mul ~prec:1000 b c)));
      Test.make ~name:"bigfloat-exp-128bit" (Staged.stage (fun () ->
          ignore (Bignum.Bigfloat_math.exp ~prec:128 b)));
      Test.make ~name:"vex-native-run" (Staged.stage (fun () ->
          ignore (Vex.Machine.run prog)));
      Test.make ~name:"vex-analysis-run-128bit" (Staged.stage (fun () ->
          ignore
            (Core.Analysis.analyze ~cfg:Core.Config.fast prog)));
    ]
  in
  let benchmark test =
    let instances = [ Instance.monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
    Benchmark.all cfg instances test
  in
  List.iter
    (fun test ->
      let raw = benchmark (Test.make_grouped ~name:"g" [ test ]) in
      let ols =
        Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
      in
      let results = Analyze.all ols Instance.monotonic_clock raw in
      Hashtbl.iter
        (fun name r ->
          match Bechamel.Analyze.OLS.estimates r with
          | Some [ est ] -> pr "%-32s %12.1f ns/run\n" name est
          | _ -> pr "%-32s (no estimate)\n" name)
        results)
    tests

(* ---------- main ---------- *)

let experiments =
  [
    ("plotter", plotter_row);
    ("calculix", calculix_row);
    ("triangle", triangle_row);
    ("fig8_tetgen", fig8_tetgen);
    ("minitriangle", minitriangle);
    ("fig8_polybench", fig8_polybench);
    ("gramschmidt_nan", gramschmidt_nan);
    ("gromacs", gromacs);
    ("fig9", fig9);
    ("table_sizes", table_sizes);
    ("step_counter", step_counter);
    ("fig10_depth", fig10_depth);
    ("fig10_precision", fig10_precision);
    ("fig10_typeinfer", fig10_typeinfer);
    ("ablate_expr", ablate_expr);
    ("ablate_real", ablate_real);
    ("threshold_sweep", threshold_sweep);
    ("ablate_wrap", ablate_wrap);
    ("micro", micro);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let args =
    List.filter
      (fun a ->
        if a = "--quick" then begin
          quick := true;
          false
        end
        else true)
      args
  in
  let chosen =
    if args = [] then List.map fst experiments
    else begin
      List.iter
        (fun a ->
          if not (List.mem_assoc a experiments) then begin
            Printf.eprintf "unknown experiment %s; available:\n" a;
            List.iter (fun (n, _) -> Printf.eprintf "  %s\n" n) experiments;
            exit 1
          end)
        args;
      args
    end
  in
  pr "fpgrind benchmark harness (%s mode)\n"
    (if !quick then "quick" else "full");
  List.iter
    (fun name ->
      let f = List.assoc name experiments in
      try f ()
      with e ->
        pr "experiment %s FAILED: %s\n" name (Printexc.to_string e))
    chosen
