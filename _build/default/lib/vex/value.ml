(* Runtime values of the VEX machine. Integers are kept as int64 (narrower
   widths are stored sign-extended with the width recorded by the
   expression type); singles are stored as the double with the same value,
   mirroring how SSE registers hold them. *)

type t =
  | VBool of bool
  | VI64 of int64
  | VI32 of int32
  | VF64 of float
  | VF32 of float  (* always exactly representable in binary32 *)
  | VV128 of int64 * int64  (* raw bits: lo, hi *)

let of_const : Ir.const -> t = function
  | Ir.CBool b -> VBool b
  | Ir.CI64 i -> VI64 i
  | Ir.CI32 i -> VI32 i
  | Ir.CF64 f -> VF64 f
  | Ir.CF32 f -> VF32 (Ieee.Single.of_double f)
  | Ir.CV128 (lo, hi) -> VV128 (lo, hi)

let ty_of : t -> Ir.ty = function
  | VBool _ -> Ir.I1
  | VI64 _ -> Ir.I64
  | VI32 _ -> Ir.I32
  | VF64 _ -> Ir.F64
  | VF32 _ -> Ir.F32
  | VV128 _ -> Ir.V128

let to_string = function
  | VBool b -> string_of_bool b
  | VI64 i -> Int64.to_string i
  | VI32 i -> Int32.to_string i
  | VF64 f -> Printf.sprintf "%.17g" f
  | VF32 f -> Printf.sprintf "%.9gf" f
  | VV128 (lo, hi) -> Printf.sprintf "v128(%Lx,%Lx)" lo hi

exception Type_error of string

let type_error ctx v =
  raise (Type_error (Printf.sprintf "%s: got %s" ctx (to_string v)))

let as_bool = function VBool b -> b | v -> type_error "expected I1" v
let as_i64 = function VI64 i -> i | v -> type_error "expected I64" v
let as_i32 = function VI32 i -> i | v -> type_error "expected I32" v
let as_f64 = function VF64 f -> f | v -> type_error "expected F64" v
let as_f32 = function VF32 f -> f | v -> type_error "expected F32" v

let as_v128 = function
  | VV128 (lo, hi) -> (lo, hi)
  | v -> type_error "expected V128" v

(* ---------- byte-level encoding, little endian ---------- *)

let write_bytes (buf : Bytes.t) (off : int) (v : t) : unit =
  match v with
  | VBool b -> Bytes.set_uint8 buf off (if b then 1 else 0)
  | VI32 i -> Bytes.set_int32_le buf off i
  | VI64 i -> Bytes.set_int64_le buf off i
  | VF64 f -> Bytes.set_int64_le buf off (Int64.bits_of_float f)
  | VF32 f -> Bytes.set_int32_le buf off (Int32.bits_of_float f)
  | VV128 (lo, hi) ->
      Bytes.set_int64_le buf off lo;
      Bytes.set_int64_le buf (off + 8) hi

let read_bytes (buf : Bytes.t) (off : int) (ty : Ir.ty) : t =
  match ty with
  | Ir.I1 -> VBool (Bytes.get_uint8 buf off <> 0)
  | Ir.I8 -> VI64 (Int64.of_int (Bytes.get_int8 buf off))
  | Ir.I16 -> VI64 (Int64.of_int (Bytes.get_int16_le buf off))
  | Ir.I32 -> VI32 (Bytes.get_int32_le buf off)
  | Ir.I64 -> VI64 (Bytes.get_int64_le buf off)
  | Ir.F64 -> VF64 (Int64.float_of_bits (Bytes.get_int64_le buf off))
  | Ir.F32 -> VF32 (Int32.float_of_bits (Bytes.get_int32_le buf off))
  | Ir.V128 ->
      VV128 (Bytes.get_int64_le buf off, Bytes.get_int64_le buf (off + 8))

(* lane views over a V128 *)

let v128_f64_lanes (lo, hi) =
  (Int64.float_of_bits lo, Int64.float_of_bits hi)

let v128_of_f64_lanes (a, b) =
  VV128 (Int64.bits_of_float a, Int64.bits_of_float b)

let v128_f32_lanes (lo, hi) =
  let f32 bits = Int32.float_of_bits bits in
  ( f32 (Int64.to_int32 lo),
    f32 (Int64.to_int32 (Int64.shift_right_logical lo 32)),
    f32 (Int64.to_int32 hi),
    f32 (Int64.to_int32 (Int64.shift_right_logical hi 32)) )

let v128_of_f32_lanes (a, b, c, d) =
  let bits f = Int64.logand (Int64.of_int32 (Int32.bits_of_float f)) 0xFFFFFFFFL in
  VV128
    ( Int64.logor (bits a) (Int64.shift_left (bits b) 32),
      Int64.logor (bits c) (Int64.shift_left (bits d) 32) )
