lib/vex/typeinfer.ml: Array Hashtbl Ir
