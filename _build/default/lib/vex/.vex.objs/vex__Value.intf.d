lib/vex/value.mli: Bytes Ir
