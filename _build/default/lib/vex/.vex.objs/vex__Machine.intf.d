lib/vex/machine.mli: Ir Value
