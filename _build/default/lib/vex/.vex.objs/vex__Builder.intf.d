lib/vex/builder.mli: Ir
