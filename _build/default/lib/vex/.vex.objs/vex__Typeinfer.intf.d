lib/vex/typeinfer.mli: Ir
