lib/vex/builder.ml: Array Ir List Printf
