lib/vex/eval.ml: Array Bignum Float Ieee Int32 Int64 Ir Printf Value
