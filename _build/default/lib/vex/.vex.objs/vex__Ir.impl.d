lib/vex/ir.ml: Array Format Hashtbl Int32 Int64 List Printf String
