lib/vex/machine.ml: Array Bytes Eval Int64 Ir List Printf Value
