lib/vex/value.ml: Bytes Ieee Int32 Int64 Ir Printf
