lib/vex/eval.mli: Bignum Ir Value
