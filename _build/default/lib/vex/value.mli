(** Runtime values of the VEX machine.

    Integers are kept as [int64]/[int32]; singles are stored as the double
    with the same value (as in SSE registers); V128 vectors are raw bit
    pairs with lane views for the packed float operations. *)

type t =
  | VBool of bool
  | VI64 of int64
  | VI32 of int32
  | VF64 of float
  | VF32 of float  (** always exactly representable in binary32 *)
  | VV128 of int64 * int64  (** raw bits: lo, hi *)

val of_const : Ir.const -> t
val ty_of : t -> Ir.ty
val to_string : t -> string

exception Type_error of string

val type_error : string -> t -> 'a

val as_bool : t -> bool
val as_i64 : t -> int64
val as_i32 : t -> int32
val as_f64 : t -> float
val as_f32 : t -> float
val as_v128 : t -> int64 * int64

val write_bytes : Bytes.t -> int -> t -> unit
(** Little-endian store at a byte offset. *)

val read_bytes : Bytes.t -> int -> Ir.ty -> t
(** Little-endian load of a value of the given type. *)

val v128_f64_lanes : int64 * int64 -> float * float
val v128_of_f64_lanes : float * float -> t
val v128_f32_lanes : int64 * int64 -> float * float * float * float
val v128_of_f32_lanes : float * float * float * float -> t
