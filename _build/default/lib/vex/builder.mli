(** Imperative convenience layer for emitting VEX blocks, used by the
    MiniC code generator, the FPCore compiler, and tests. *)

type t
(** A superblock under construction. *)

val create : string -> t
(** Start a block with the given label. *)

val new_temp : t -> Ir.ty -> Ir.tmp
val emit : t -> Ir.stmt -> unit

val assign : t -> Ir.ty -> Ir.expr -> Ir.expr
(** Write the expression into a fresh temporary; returns [RdTmp] of it. *)

val finish : t -> Ir.jump -> Ir.block

type prog_builder

val create_prog : unit -> prog_builder
val fresh_label : prog_builder -> string -> string
val add_block : prog_builder -> Ir.block -> unit
val finish_prog : ?entry:string -> prog_builder -> Ir.prog
