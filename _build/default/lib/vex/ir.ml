(* A VEX-style intermediate representation: the target of the MiniC code
   generator and the language executed by the machine in [Machine]. It
   mirrors the properties of Valgrind's VEX that the Herbgrind analysis
   depends on (paper section 5): typed temporaries local to a superblock,
   untyped byte-addressed thread state and memory, SIMD vector operations,
   bitwise tricks on float values, and "dirty" calls to math library
   functions. *)

type ty = I1 | I8 | I16 | I32 | I64 | F32 | F64 | V128

let ty_size = function
  | I1 | I8 -> 1
  | I16 -> 2
  | I32 -> 4
  | I64 -> 8
  | F32 -> 4
  | F64 -> 8
  | V128 -> 16

let ty_to_string = function
  | I1 -> "I1"
  | I8 -> "I8"
  | I16 -> "I16"
  | I32 -> "I32"
  | I64 -> "I64"
  | F32 -> "F32"
  | F64 -> "F64"
  | V128 -> "V128"

type const =
  | CBool of bool
  | CI64 of int64
  | CI32 of int32
  | CF64 of float
  | CF32 of float  (* must be exactly representable in binary32 *)
  | CV128 of int64 * int64  (* lo, hi raw bits *)

type unop =
  (* integer *)
  | Not1
  | Neg64
  | Not64
  (* integer width changes *)
  | I32toI64s  (* sign extend *)
  | I32toI64u
  | I64toI32
  (* float precision changes *)
  | F32toF64
  | F64toF32
  (* float <-> integer conversions: spots in the analysis *)
  | I64toF64
  | I64toF32
  | F64toI64tz  (* truncate toward zero, cvttsd2si *)
  | F64toI64rn  (* round to nearest *)
  | F32toI64tz
  (* scalar float ops implemented in hardware *)
  | NegF64
  | AbsF64
  | SqrtF64
  | NegF32
  | AbsF32
  | SqrtF32
  (* bit-level reinterpretation *)
  | ReinterpF64asI64
  | ReinterpI64asF64
  | ReinterpF32asI32
  | ReinterpI32asF32
  (* vector lane access *)
  | V128to64    (* low 64 bits *)
  | V128HIto64  (* high 64 bits *)
  | Sqrt64Fx2

type binop =
  (* 64-bit integer *)
  | Add64
  | Sub64
  | Mul64
  | DivS64
  | ModS64
  | And64
  | Or64
  | Xor64
  | Shl64
  | Shr64
  | Sar64
  | CmpEQ64
  | CmpNE64
  | CmpLT64S
  | CmpLE64S
  (* scalar double *)
  | AddF64
  | SubF64
  | MulF64
  | DivF64
  | MinF64
  | MaxF64
  | CmpEQF64
  | CmpNEF64
  | CmpLTF64
  | CmpLEF64
  (* scalar single *)
  | AddF32
  | SubF32
  | MulF32
  | DivF32
  | CmpEQF32
  | CmpLTF32
  | CmpLEF32
  (* SSE-style packed vectors *)
  | Add64Fx2
  | Sub64Fx2
  | Mul64Fx2
  | Div64Fx2
  | Add32Fx4
  | Sub32Fx4
  | Mul32Fx4
  | Div32Fx4
  | AndV128
  | OrV128
  | XorV128
  | I64HLtoV128 (* (hi, lo) -> V128 *)

type tmp = int

type expr =
  | RdTmp of tmp
  | Const of const
  | LabelAddr of string
    (* I64 index of a block, used as a return address by the calling
       convention; resolved against the program's label table *)
  | Get of int * ty  (* thread-state offset *)
  | Load of ty * expr
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | ITE of expr * expr * expr
    (* guard I1, then, else; evaluated lazily like a branch *)

(* Where the real analysis gets a source position from debug info, ours
   gets it from IMark statements emitted by the MiniC compiler. *)
type loc = { file : string; line : int; func : string }

let no_loc = { file = "<unknown>"; line = 0; func = "<unknown>" }
let loc_to_string l = Printf.sprintf "%s at %s:%d" l.func l.file l.line

type out_kind =
  | OutFloat
  | OutInt
  | OutMark
      (* a user-requested spot (the paper's footnote 9 manual spot marks):
         watched by the analysis but not part of the program's output *)

type stmt =
  | IMark of loc
  | WrTmp of tmp * expr
  | Put of int * expr  (* thread-state write *)
  | Store of expr * expr  (* address, value *)
  | Dirty of tmp * string * expr list
    (* call into a math library: destination temp, function name, F64 args *)
  | Exit of expr * string  (* conditional jump: I1 guard, target label *)
  | Out of out_kind * expr  (* program output: a spot *)

type jump =
  | Goto of string
  | IndirectGoto of expr  (* I64 block index, for returns *)
  | Halt

type block = {
  label : string;
  temp_tys : ty array;  (* types of this superblock's temporaries *)
  stmts : stmt array;
  next : jump;
}

type prog = {
  blocks : block array;
  entry : int;
  label_index : (string, int) Hashtbl.t;
}

let make_prog ?(entry = "entry") blocks =
  let arr = Array.of_list blocks in
  let index = Hashtbl.create (Array.length arr * 2) in
  Array.iteri
    (fun i b ->
      if Hashtbl.mem index b.label then
        invalid_arg ("Ir.make_prog: duplicate label " ^ b.label);
      Hashtbl.add index b.label i)
    arr;
  let entry_idx =
    match Hashtbl.find_opt index entry with
    | Some i -> i
    | None -> invalid_arg ("Ir.make_prog: no entry block " ^ entry)
  in
  { blocks = arr; entry = entry_idx; label_index = index }

let block_index prog label =
  match Hashtbl.find_opt prog.label_index label with
  | Some i -> i
  | None -> invalid_arg ("Ir.block_index: unknown label " ^ label)

(* Unique statement identity across the program, used as the "pc" of the
   abstract machine in the analysis (spot and op keys). *)
let stmt_id ~block ~stmt = (block lsl 16) lor stmt
let stmt_id_block id = id lsr 16
let stmt_id_stmt id = id land 0xFFFF

(* ---------- result types of operators ---------- *)

let unop_result_ty = function
  | Not1 -> I1
  | Neg64 | Not64 | I32toI64s | I32toI64u -> I64
  | I64toI32 -> I32
  | F32toF64 -> F64
  | F64toF32 -> F32
  | I64toF64 -> F64
  | I64toF32 -> F32
  | F64toI64tz | F64toI64rn | F32toI64tz -> I64
  | NegF64 | AbsF64 | SqrtF64 -> F64
  | NegF32 | AbsF32 | SqrtF32 -> F32
  | ReinterpF64asI64 -> I64
  | ReinterpI64asF64 -> F64
  | ReinterpF32asI32 -> I32
  | ReinterpI32asF32 -> F32
  | V128to64 | V128HIto64 -> I64
  | Sqrt64Fx2 -> V128

let binop_result_ty = function
  | Add64 | Sub64 | Mul64 | DivS64 | ModS64 | And64 | Or64 | Xor64 | Shl64
  | Shr64 | Sar64 ->
      I64
  | CmpEQ64 | CmpNE64 | CmpLT64S | CmpLE64S -> I1
  | AddF64 | SubF64 | MulF64 | DivF64 | MinF64 | MaxF64 -> F64
  | CmpEQF64 | CmpNEF64 | CmpLTF64 | CmpLEF64 -> I1
  | AddF32 | SubF32 | MulF32 | DivF32 -> F32
  | CmpEQF32 | CmpLTF32 | CmpLEF32 -> I1
  | Add64Fx2 | Sub64Fx2 | Mul64Fx2 | Div64Fx2 | Add32Fx4 | Sub32Fx4
  | Mul32Fx4 | Div32Fx4 | AndV128 | OrV128 | XorV128 | I64HLtoV128 ->
      V128

let const_ty = function
  | CBool _ -> I1
  | CI64 _ -> I64
  | CI32 _ -> I32
  | CF64 _ -> F64
  | CF32 _ -> F32
  | CV128 _ -> V128

(* ---------- pretty printing ---------- *)

let const_to_string = function
  | CBool b -> string_of_bool b
  | CI64 i -> Int64.to_string i
  | CI32 i -> Int32.to_string i ^ ":I32"
  | CF64 f -> Printf.sprintf "%h" f
  | CF32 f -> Printf.sprintf "%h:F32" f
  | CV128 (lo, hi) -> Printf.sprintf "V128(%Lx,%Lx)" lo hi

let unop_to_string = function
  | Not1 -> "Not1"
  | Neg64 -> "Neg64"
  | Not64 -> "Not64"
  | I32toI64s -> "I32toI64s"
  | I32toI64u -> "I32toI64u"
  | I64toI32 -> "I64toI32"
  | F32toF64 -> "F32toF64"
  | F64toF32 -> "F64toF32"
  | I64toF64 -> "I64toF64"
  | I64toF32 -> "I64toF32"
  | F64toI64tz -> "F64toI64tz"
  | F64toI64rn -> "F64toI64rn"
  | F32toI64tz -> "F32toI64tz"
  | NegF64 -> "NegF64"
  | AbsF64 -> "AbsF64"
  | SqrtF64 -> "SqrtF64"
  | NegF32 -> "NegF32"
  | AbsF32 -> "AbsF32"
  | SqrtF32 -> "SqrtF32"
  | ReinterpF64asI64 -> "ReinterpF64asI64"
  | ReinterpI64asF64 -> "ReinterpI64asF64"
  | ReinterpF32asI32 -> "ReinterpF32asI32"
  | ReinterpI32asF32 -> "ReinterpI32asF32"
  | V128to64 -> "V128to64"
  | V128HIto64 -> "V128HIto64"
  | Sqrt64Fx2 -> "Sqrt64Fx2"

let binop_to_string = function
  | Add64 -> "Add64"
  | Sub64 -> "Sub64"
  | Mul64 -> "Mul64"
  | DivS64 -> "DivS64"
  | ModS64 -> "ModS64"
  | And64 -> "And64"
  | Or64 -> "Or64"
  | Xor64 -> "Xor64"
  | Shl64 -> "Shl64"
  | Shr64 -> "Shr64"
  | Sar64 -> "Sar64"
  | CmpEQ64 -> "CmpEQ64"
  | CmpNE64 -> "CmpNE64"
  | CmpLT64S -> "CmpLT64S"
  | CmpLE64S -> "CmpLE64S"
  | AddF64 -> "AddF64"
  | SubF64 -> "SubF64"
  | MulF64 -> "MulF64"
  | DivF64 -> "DivF64"
  | MinF64 -> "MinF64"
  | MaxF64 -> "MaxF64"
  | CmpEQF64 -> "CmpEQF64"
  | CmpNEF64 -> "CmpNEF64"
  | CmpLTF64 -> "CmpLTF64"
  | CmpLEF64 -> "CmpLEF64"
  | AddF32 -> "AddF32"
  | SubF32 -> "SubF32"
  | MulF32 -> "MulF32"
  | DivF32 -> "DivF32"
  | CmpEQF32 -> "CmpEQF32"
  | CmpLTF32 -> "CmpLTF32"
  | CmpLEF32 -> "CmpLEF32"
  | Add64Fx2 -> "Add64Fx2"
  | Sub64Fx2 -> "Sub64Fx2"
  | Mul64Fx2 -> "Mul64Fx2"
  | Div64Fx2 -> "Div64Fx2"
  | Add32Fx4 -> "Add32Fx4"
  | Sub32Fx4 -> "Sub32Fx4"
  | Mul32Fx4 -> "Mul32Fx4"
  | Div32Fx4 -> "Div32Fx4"
  | AndV128 -> "AndV128"
  | OrV128 -> "OrV128"
  | XorV128 -> "XorV128"
  | I64HLtoV128 -> "I64HLtoV128"

let rec expr_to_string = function
  | RdTmp t -> Printf.sprintf "t%d" t
  | Const c -> const_to_string c
  | LabelAddr l -> "&" ^ l
  | Get (off, ty) -> Printf.sprintf "GET(%d):%s" off (ty_to_string ty)
  | Load (ty, a) -> Printf.sprintf "LD%s[%s]" (ty_to_string ty) (expr_to_string a)
  | Unop (op, a) -> Printf.sprintf "%s(%s)" (unop_to_string op) (expr_to_string a)
  | Binop (op, a, b) ->
      Printf.sprintf "%s(%s, %s)" (binop_to_string op) (expr_to_string a)
        (expr_to_string b)
  | ITE (g, t, e) ->
      Printf.sprintf "ITE(%s, %s, %s)" (expr_to_string g) (expr_to_string t)
        (expr_to_string e)

let stmt_to_string = function
  | IMark l -> Printf.sprintf "------ IMark(%s) ------" (loc_to_string l)
  | WrTmp (t, e) -> Printf.sprintf "t%d = %s" t (expr_to_string e)
  | Put (off, e) -> Printf.sprintf "PUT(%d) = %s" off (expr_to_string e)
  | Store (a, v) ->
      Printf.sprintf "ST[%s] = %s" (expr_to_string a) (expr_to_string v)
  | Dirty (t, name, args) ->
      Printf.sprintf "t%d = DIRTY %s(%s)" t name
        (String.concat ", " (List.map expr_to_string args))
  | Exit (g, l) -> Printf.sprintf "if (%s) goto %s" (expr_to_string g) l
  | Out (k, e) ->
      let ks = match k with OutFloat -> "F" | OutInt -> "I" | OutMark -> "M" in
      Printf.sprintf "OUT%s %s" ks (expr_to_string e)

let jump_to_string = function
  | Goto l -> "goto " ^ l
  | IndirectGoto e -> "goto *" ^ expr_to_string e
  | Halt -> "halt"

let pp_block fmt b =
  Format.fprintf fmt "%s:  (%d temps)@." b.label (Array.length b.temp_tys);
  Array.iter (fun s -> Format.fprintf fmt "  %s@." (stmt_to_string s)) b.stmts;
  Format.fprintf fmt "  %s@." (jump_to_string b.next)

let pp_prog fmt p = Array.iter (pp_block fmt) p.blocks
