(* Imperative convenience layer for emitting VEX blocks, used by the MiniC
   code generator, the FPCore compiler, and tests. *)

type t = {
  mutable temp_tys : Ir.ty list;  (* reversed *)
  mutable n_temps : int;
  mutable stmts : Ir.stmt list;  (* reversed *)
  label : string;
}

let create label = { temp_tys = []; n_temps = 0; stmts = []; label }

let new_temp b ty =
  let t = b.n_temps in
  b.temp_tys <- ty :: b.temp_tys;
  b.n_temps <- b.n_temps + 1;
  t

let emit b s = b.stmts <- s :: b.stmts

(* Evaluate an expression into a fresh temp and return RdTmp of it; the
   result type must be supplied for consts/loads. *)
let assign b ty e =
  let t = new_temp b ty in
  emit b (Ir.WrTmp (t, e));
  Ir.RdTmp t

let finish b next : Ir.block =
  {
    Ir.label = b.label;
    temp_tys = Array.of_list (List.rev b.temp_tys);
    stmts = Array.of_list (List.rev b.stmts);
    next;
  }

(* ---------- whole-program builder ---------- *)

type prog_builder = {
  mutable blocks : Ir.block list;  (* reversed *)
  mutable counter : int;
}

let create_prog () = { blocks = []; counter = 0 }

let fresh_label pb prefix =
  pb.counter <- pb.counter + 1;
  Printf.sprintf "%s_%d" prefix pb.counter

let add_block pb block = pb.blocks <- block :: pb.blocks

let finish_prog ?(entry = "entry") pb =
  Ir.make_prog ~entry (List.rev pb.blocks)
