(** Pure operational semantics of VEX operators, shared between the fast
    uninstrumented interpreter ({!Machine}) and the instrumented analysis
    interpreter ({!Core.Exec}) so the two can never disagree on client
    behaviour. *)

val eval_unop : Ir.unop -> Value.t -> Value.t
val eval_binop : Ir.binop -> Value.t -> Value.t -> Value.t

val libm_arity : string -> int
(** Argument count of a math-library function (1 unless known binary or
    ternary). *)

val libm_known : string -> bool
(** Is this a recognized library call (including the [__arg] input
    builtin)? *)

val libm_apply : string -> float array -> float
(** The concrete double answer the client sees for a dirty call (the role
    of OpenLibm in the original implementation). *)

val libm_apply_real :
  prec:int -> string -> Bignum.Bigfloat.t array -> Bignum.Bigfloat.t
(** The exact (shadow) semantics of the same call. *)
