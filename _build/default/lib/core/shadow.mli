(** Shadow values (paper sections 4 and 5.1-5.2).

    A shadowed float carries the three analyses at once: the exact real
    value (standing in for MPFR), the concrete trace of the computation
    that produced it, and the influence set of high-local-error
    operations it depends on. Shadows are immutable and freely shared
    between copies in temporaries, thread state and memory (6.2). *)

module IntSet : Set.S with type elt = int

type t = {
  real : Bignum.Bigfloat.t;  (** the exact value *)
  trace : Trace.node;  (** how it was computed *)
  infl : IntSet.t;  (** stmt ids of tainting operations *)
  single : bool;  (** lives on the binary32 grid *)
}

(** The shadow of a boolean produced by a float comparison: whether the
    real-number comparison agrees with the client's. *)
type sbool = { client_b : bool; shadow_b : bool; binfl : IntSet.t }

(** What a VEX temporary or storage slot holds. *)
type slot =
  | SNone  (** nothing shadowed *)
  | SVal of t  (** one scalar shadow (possibly riding in an integer) *)
  | SBool of sbool
  | SVec of slot array  (** SIMD lanes, 2 (F64) or 4 (F32) *)

val fresh_leaf : ?single:bool -> float -> t
(** Lazily shadow a client value with no recorded provenance (paper 6.1).
    The trace key hashes the exact value, consistent with computed
    nodes. *)

val client_value : t -> float
(** The client double this shadow accompanies. *)
