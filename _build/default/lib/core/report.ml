(* Rendering analysis results in the paper's report format:

     Compare in run(int, int) at main.cpp:26
       734 incorrect values
       1520 total instances
       Influenced by erroneous expressions:
         20.0 bits average error
         an FPCore expression such as "(FPCore (x y) (- (sqrt y) x))"
           in csqrt at plotter.mc:12
         Aggregated over 1600 instances
*)

type influence_entry = {
  i_op : Exec.op_info;
  i_expr : Antiunify.sym;
  i_fpcore : string;
}

type entry = {
  e_spot : Exec.spot_info;
  e_influences : influence_entry list;
}

type t = {
  entries : entry list;
  total_ops : int;
  total_spots : int;
  compensations : int;
}

let spot_kind_name = function
  | Exec.Spot_output -> "Output"
  | Exec.Spot_branch -> "Compare"
  | Exec.Spot_convert -> "Convert"

let spot_has_error (s : Exec.spot_info) threshold =
  match s.Exec.s_kind with
  | Exec.Spot_output -> s.Exec.s_err_max > threshold
  | Exec.Spot_branch | Exec.Spot_convert -> s.Exec.s_incorrect > 0

let build ?(cfg = Config.default) (r : Exec.result) : t =
  let classic = cfg.Config.classic_antiunify in
  let influence_of op_id =
    match Hashtbl.find_opt r.Exec.r_ops op_id with
    | None -> None
    | Some o ->
        let expr =
          if Antiunify.count o.Exec.o_agg = 0 then Antiunify.Svar 0
          else Antiunify.finalize ~classic o.Exec.o_agg
        in
        Some { i_op = o; i_expr = expr; i_fpcore = Antiunify.to_fpcore expr }
  in
  let entries =
    Hashtbl.fold
      (fun _ spot acc ->
        if
          spot_has_error spot cfg.Config.error_threshold
          || cfg.Config.report_all_spots
        then begin
          let infl =
            Shadow.IntSet.elements spot.Exec.s_infl
            |> List.filter_map influence_of
            |> List.sort (fun a b ->
                   compare b.i_op.Exec.o_local_err_max a.i_op.Exec.o_local_err_max)
          in
          { e_spot = spot; e_influences = infl } :: acc
        end
        else acc)
      r.Exec.r_spots []
    |> List.sort (fun a b -> compare a.e_spot.Exec.s_id b.e_spot.Exec.s_id)
  in
  {
    entries;
    total_ops = Hashtbl.length r.Exec.r_ops;
    total_spots = Hashtbl.length r.Exec.r_spots;
    compensations = r.Exec.r_stats.Exec.compensations;
  }

let entry_to_string (e : entry) : string =
  let buf = Buffer.create 256 in
  let spot = e.e_spot in
  Buffer.add_string buf
    (Printf.sprintf "%s in %s\n"
       (spot_kind_name spot.Exec.s_kind)
       (Vex.Ir.loc_to_string spot.Exec.s_loc));
  (match spot.Exec.s_kind with
  | Exec.Spot_branch | Exec.Spot_convert ->
      Buffer.add_string buf
        (Printf.sprintf "  %d incorrect values\n  %d total instances\n"
           spot.Exec.s_incorrect spot.Exec.s_total)
  | Exec.Spot_output ->
      Buffer.add_string buf
        (Printf.sprintf
           "  %.1f bits max error, %.1f bits average error\n  %d total instances\n"
           spot.Exec.s_err_max
           (spot.Exec.s_err_sum /. float_of_int (max 1 spot.Exec.s_total))
           spot.Exec.s_total));
  if e.e_influences <> [] then begin
    Buffer.add_string buf "  Influenced by erroneous expressions:\n";
    List.iter
      (fun inf ->
        let o = inf.i_op in
        Buffer.add_string buf
          (Printf.sprintf "    %.1f bits average local error (max %.1f)\n"
             (o.Exec.o_local_err_sum /. float_of_int (max 1 o.Exec.o_count))
             o.Exec.o_local_err_max);
        Buffer.add_string buf (Printf.sprintf "    %s\n" inf.i_fpcore);
        Buffer.add_string buf
          (Printf.sprintf "      in %s\n" (Vex.Ir.loc_to_string o.Exec.o_loc));
        Buffer.add_string buf
          (Printf.sprintf "      Aggregated over %d instances\n" o.Exec.o_count))
      e.e_influences
  end;
  Buffer.contents buf

let to_string (t : t) : string =
  if t.entries = [] then "No floating-point problems found.\n"
  else String.concat "\n" (List.map entry_to_string t.entries)
