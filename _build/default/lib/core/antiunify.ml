(* Incremental anti-unification of concrete traces into symbolic
   expressions (paper sections 4.4 and 6.3/6.4).

   Each operation (pc) owns an [agg]: the running generalization of every
   concrete trace seen at that operation. Aggregation is associative, so
   folding traces in one at a time gives the same result as collecting
   them all (section 6.3), and old concrete traces become garbage.

   Herbgrind's two changes to Plotkin's algorithm are implemented here:

   1. a generalized position whose runtime value was identical in every
      instance becomes a *constant*, not a variable;
   2. positions (including internal ones) whose runtime values were equal
      in every instance are candidates for merging into one variable,
      guarded by the two criteria of section 4.4 (the class has more than
      one member; no other class straddles its boundary). Setting
      [classic] skips change 2, restoring most-specific generalization.

   Value equality across instances is tracked exactly up to [equiv_depth]
   by hashing the per-instance values of each position; deeper positions
   keep only the cheap constant check (section 6.4). *)

type shape = SOp of string * shape array | SHole

type psig = {
  mutable cval : float;  (* candidate constant value, for display *)
  mutable ckey : int;  (* exact-value key of the candidate constant *)
  mutable const : bool;  (* value identical in all instances so far *)
  mutable h : int;  (* running hash of the exact-value sequence *)
  mutable live : bool;
}

type agg = {
  mutable shape : shape;
  mutable count : int;
  sigs : (int list, psig) Hashtbl.t;  (* key: path from root, outer first *)
  equiv_depth : int;
}

let create ~equiv_depth =
  { shape = SHole; count = 0; sigs = Hashtbl.create 16; equiv_depth }

(* ---------- adding one concrete trace ---------- *)

let rec lift (t : Trace.node) : shape =
  if Trace.is_leaf t then SHole
  else SOp (t.Trace.op, Array.map lift t.Trace.args)

let rec antiunify_shape (s : shape) (t : Trace.node) : shape =
  match s with
  | SHole -> SHole
  | SOp (f, args) ->
      if
        (not (Trace.is_leaf t))
        && t.Trace.op = f
        && Array.length t.Trace.args = Array.length args
      then SOp (f, Array.mapi (fun i a -> antiunify_shape a t.Trace.args.(i)) args)
      else SHole

(* record the exact-value key at every position still present in the shape *)
let update_sigs agg (t : Trace.node) =
  let rec go s (t : Trace.node) path depth =
    let v = t.Trace.value and k = t.Trace.key in
    (match Hashtbl.find_opt agg.sigs path with
    | Some ps ->
        if ps.const && ps.ckey <> k then ps.const <- false;
        if depth <= agg.equiv_depth then ps.h <- (ps.h * 1000003) + k
    | None ->
        if agg.count = 0 then
          Hashtbl.replace agg.sigs path
            { cval = v; ckey = k; const = true; h = k; live = true });
    match s with
    | SHole -> ()
    | SOp (_, args) ->
        Array.iteri
          (fun i a -> go a t.Trace.args.(i) (path @ [ i ]) (depth + 1))
          args
  in
  go agg.shape t [] 1

(* positions that fell out of the shape stop being tracked *)
let kill_dead_sigs agg =
  let alive = Hashtbl.create 16 in
  let rec collect s path =
    Hashtbl.replace alive path ();
    match s with
    | SHole -> ()
    | SOp (_, args) -> Array.iteri (fun i a -> collect a (path @ [ i ])) args
  in
  collect agg.shape [];
  Hashtbl.iter
    (fun path ps -> if not (Hashtbl.mem alive path) then ps.live <- false)
    agg.sigs

let add agg (t : Trace.node) =
  if agg.count = 0 then begin
    agg.shape <- lift t;
    update_sigs agg t
  end
  else begin
    let s' = antiunify_shape agg.shape t in
    let changed = s' <> agg.shape in
    agg.shape <- s';
    update_sigs agg t;
    if changed then kill_dead_sigs agg
  end;
  agg.count <- agg.count + 1

let count agg = agg.count

(* ---------- finalization to a symbolic expression ---------- *)

type sym = Svar of int | Sconst of float | Sop of string * sym array

let is_prefix pre path =
  let rec go a b =
    match (a, b) with
    | [], _ :: _ -> true
    | [], [] -> false (* strict *)
    | _ :: _, [] -> false
    | x :: xs, y :: ys -> x = y && go xs ys
  in
  go pre path

let finalize ?(classic = false) agg : sym =
  let depth_of path = 1 + List.length path in
  (* Group live positions within the equivalence depth by signature.
     Constant positions are excluded: a position whose value never varies
     renders as a constant (modification 1), and pruning it to a variable
     would destroy structure -- including the root, whose exact value is
     often a constant precisely when the computation is erroneous. *)
  let groups : (int, int list list) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.iter
    (fun path ps ->
      if ps.live && (not ps.const) && depth_of path <= agg.equiv_depth then begin
        let key = ps.h in
        let cur = Option.value ~default:[] (Hashtbl.find_opt groups key) in
        Hashtbl.replace groups key (path :: cur)
      end)
    agg.sigs;
  let classes =
    Hashtbl.fold (fun h paths acc -> (h, paths) :: acc) groups []
    |> List.filter (fun (_, paths) -> List.length paths > 1)
  in
  (* internal-node pruning: choose classes satisfying the two criteria *)
  let pruned : (int list, int) Hashtbl.t = Hashtbl.create 8 in
  (* path -> class id to replace with *)
  let class_id = Hashtbl.create 8 in
  let next_class = ref 0 in
  if not classic then begin
    let is_internal path =
      let rec at s p =
        match (s, p) with
        | s, [] -> ( match s with SOp _ -> true | SHole -> false)
        | SOp (_, args), i :: rest ->
            if i < Array.length args then at args.(i) rest else false
        | SHole, _ :: _ -> false
      in
      at agg.shape path
    in
    (* consider classes with at least one internal member, outermost first;
       the root is never a candidate (pruning it would erase the report) *)
    let candidates =
      List.filter
        (fun (_, paths) ->
          List.exists is_internal paths && not (List.mem [] paths))
        classes
      |> List.sort (fun (_, a) (_, b) ->
             compare
               (List.fold_left (fun m p -> min m (List.length p)) max_int a)
               (List.fold_left (fun m p -> min m (List.length p)) max_int b))
    in
    List.iter
      (fun (h, paths) ->
        (* skip if any member is inside an already-pruned region *)
        let inside_pruned p =
          Hashtbl.fold (fun q _ acc -> acc || is_prefix q p || q = p) pruned false
        in
        if not (List.exists inside_pruned paths) then begin
          (* criterion 2: no other class straddles this class's subtrees *)
          let inside p = List.exists (fun m -> is_prefix m p) paths in
          let ok =
            List.for_all
              (fun (h', paths') ->
                h' = h
                ||
                let ins = List.filter inside paths' in
                ins = [] || List.length ins = List.length paths')
              classes
          in
          if ok then begin
            let id = !next_class in
            incr next_class;
            List.iter (fun p -> Hashtbl.replace pruned p id) paths;
            Hashtbl.replace class_id h id
          end
        end)
      candidates
  end;
  (* leaf-hole variable grouping by signature *)
  let hole_group : (int list, int) Hashtbl.t = Hashtbl.create 8 in
  let rec collect_holes s path =
    match s with
    | SHole -> begin
        match Hashtbl.find_opt agg.sigs path with
        | Some ps when ps.live && (not ps.const) && depth_of path <= agg.equiv_depth
          -> begin
            match Hashtbl.find_opt class_id ps.h with
            | Some id -> Hashtbl.replace hole_group path id
            | None ->
                (* share a class with equal-signature holes *)
                let id =
                  match
                    Hashtbl.fold
                      (fun p' id' acc ->
                        match acc with
                        | Some _ -> acc
                        | None -> (
                            match Hashtbl.find_opt agg.sigs p' with
                            | Some ps' when ps'.h = ps.h && ps'.live -> Some id'
                            | _ -> None))
                      hole_group None
                  with
                  | Some id -> id
                  | None ->
                      let id = !next_class in
                      incr next_class;
                      Hashtbl.replace class_id ps.h id;
                      id
                in
                Hashtbl.replace hole_group path id
          end
        | _ -> ()
      end
    | SOp (_, args) -> Array.iteri (fun i a -> collect_holes a (path @ [ i ])) args
  in
  collect_holes agg.shape [];
  (* build the symbolic tree *)
  let fresh_var = ref 10_000 in
  let rec build s path =
    match Hashtbl.find_opt pruned path with
    | Some id -> Svar id
    | None -> (
        match s with
        | SOp (f, args) ->
            Sop (f, Array.mapi (fun i a -> build a (path @ [ i ])) args)
        | SHole -> (
            match Hashtbl.find_opt agg.sigs path with
            | Some ps when ps.const -> Sconst ps.cval
            | _ -> (
                match Hashtbl.find_opt hole_group path with
                | Some id -> Svar id
                | None ->
                    incr fresh_var;
                    Svar !fresh_var)))
  in
  build agg.shape []

(* ---------- rendering ---------- *)

let var_names =
  [| "x"; "y"; "z"; "a"; "b"; "c"; "d"; "e"; "f"; "g"; "h"; "i"; "j"; "k" |]

(* canonical left-to-right variable naming *)
let rename (s : sym) : sym * string list =
  let mapping = Hashtbl.create 8 in
  let order = ref [] in
  let next = ref 0 in
  let rec go = function
    | Svar id ->
        let id' =
          match Hashtbl.find_opt mapping id with
          | Some i -> i
          | None ->
              let i = !next in
              incr next;
              Hashtbl.replace mapping id i;
              let name =
                if i < Array.length var_names then var_names.(i)
                else Printf.sprintf "v%d" i
              in
              order := name :: !order;
              i
        in
        Svar id'
    | Sconst c -> Sconst c
    | Sop (f, args) -> Sop (f, Array.map go args)
  in
  let s' = go s in
  (s', List.rev !order)

let const_to_string c =
  if Float.is_integer c && Float.abs c < 1e18 then
    Printf.sprintf "%.0f" c
  else Printf.sprintf "%.17g" c

let rec sym_body_to_string = function
  | Svar i ->
      if i < Array.length var_names then var_names.(i) else Printf.sprintf "v%d" i
  | Sconst c -> const_to_string c
  | Sop (f, args) ->
      Printf.sprintf "(%s %s)" f
        (String.concat " " (Array.to_list (Array.map sym_body_to_string args)))

(* FPCore rendering, the format the paper reports and that feeds Herbie *)
let to_fpcore (s : sym) : string =
  let s', vars = rename s in
  Printf.sprintf "(FPCore (%s) %s)" (String.concat " " vars)
    (sym_body_to_string s')

let rec sym_op_count = function
  | Svar _ | Sconst _ -> 0
  | Sop (_, args) -> 1 + Array.fold_left (fun a s -> a + sym_op_count s) 0 args

let sym_vars (s : sym) : int list =
  let rec go acc = function
    | Svar i -> i :: acc
    | Sconst _ -> acc
    | Sop (_, args) -> Array.fold_left go acc args
  in
  List.sort_uniq compare (go [] s)
