(* Shadow values (paper sections 4 and 5.1-5.2).

   A shadowed float carries three analyses at once: the exact real value
   (Bigfloat, standing in for MPFR), the concrete trace of the computation
   that produced it, and the influence set of high-local-error operations
   it depends on. Shadows are immutable and freely shared between copies
   in temporaries, thread state, and memory (section 6.2); OCaml's GC
   replaces the reference counting of the C implementation.

   Shadow *locations* describe what a VEX temporary or storage slot
   holds: nothing, one scalar shadow, a float-comparison boolean, or the
   lanes of a SIMD vector. *)

module IntSet = Set.Make (Int)

type t = {
  real : Bignum.Bigfloat.t;
  trace : Trace.node;
  infl : IntSet.t;
  single : bool;  (* true when this value lives on the binary32 grid *)
}

(* the shadow of a boolean produced by a float comparison: tracks whether
   the real-number comparison agrees with the client's *)
type sbool = { client_b : bool; shadow_b : bool; binfl : IntSet.t }

type slot =
  | SNone
  | SVal of t
  | SBool of sbool
  | SVec of slot array  (* 2 (F64) or 4 (F32) lanes, each SNone/SVal *)

(* lazily shadow a client value that has no recorded provenance; trace keys
   always hash the exact value so equivalence inference is consistent
   between leaves and computed nodes *)
let fresh_leaf ?(single = false) (v : float) : t =
  let real = Bignum.Bigfloat.of_float v in
  {
    real;
    trace = Trace.leaf ~key:(Bignum.Bigfloat.hash real) v;
    infl = IntSet.empty;
    single;
  }

let client_value (s : t) : float = s.trace.Trace.value
