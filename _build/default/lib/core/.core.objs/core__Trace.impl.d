lib/core/trace.ml: Array Hashtbl Int64 List Printf String
