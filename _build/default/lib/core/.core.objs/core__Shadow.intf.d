lib/core/shadow.mli: Bignum Set Trace
