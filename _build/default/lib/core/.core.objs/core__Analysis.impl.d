lib/core/analysis.ml: Antiunify Config Exec Hashtbl List Report Vex
