lib/core/report.mli: Antiunify Config Exec
