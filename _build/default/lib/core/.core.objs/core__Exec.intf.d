lib/core/exec.mli: Antiunify Config Hashtbl Shadow Vex
