lib/core/antiunify.mli: Trace
