lib/core/trace.mli:
