lib/core/analysis.mli: Antiunify Config Exec Report Vex
