lib/core/config.mli:
