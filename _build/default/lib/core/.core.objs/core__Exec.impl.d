lib/core/exec.ml: Antiunify Array Bignum Bytes Config Float Hashtbl Ieee Int64 List Printf Shadow Trace Vex
