lib/core/report.ml: Antiunify Buffer Config Exec Hashtbl List Printf Shadow String Vex
