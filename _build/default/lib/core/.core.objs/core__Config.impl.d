lib/core/config.ml:
