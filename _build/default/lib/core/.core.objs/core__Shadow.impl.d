lib/core/shadow.ml: Bignum Int Set Trace
