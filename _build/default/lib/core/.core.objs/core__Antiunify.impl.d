lib/core/antiunify.ml: Array Float Hashtbl List Option Printf String Trace
