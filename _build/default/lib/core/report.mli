(** Rendering analysis results in the paper's report format: one entry
    per erroneous spot, listing instance counts and the influencing
    operations with their FPCore-formatted symbolic expressions. *)

type influence_entry = {
  i_op : Exec.op_info;
  i_expr : Antiunify.sym;
  i_fpcore : string;
}

type entry = { e_spot : Exec.spot_info; e_influences : influence_entry list }

type t = {
  entries : entry list;  (** erroneous spots, in program order *)
  total_ops : int;
  total_spots : int;
  compensations : int;
}

val spot_kind_name : Exec.spot_kind -> string

val spot_has_error : Exec.spot_info -> float -> bool
(** Did the spot observe error above the threshold (outputs) or any
    divergence (branches, conversions)? *)

val build : ?cfg:Config.t -> Exec.result -> t
val entry_to_string : entry -> string
val to_string : t -> string
