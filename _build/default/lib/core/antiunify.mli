(** Incremental anti-unification of concrete traces into symbolic
    expressions (paper sections 4.4 and 6.3/6.4).

    Each operation (pc) owns an [agg]: the running generalization of every
    concrete trace seen at that operation. Aggregation is associative, so
    folding traces one at a time matches collecting them all (6.3) while
    letting old traces become garbage.

    Herbgrind's two changes to Plotkin's algorithm are implemented:
    + a generalized position whose runtime value was identical in every
      instance becomes a {e constant}, not a variable;
    + positions (internal ones included) whose runtime values were equal
      in every instance merge into one variable, guarded by the two
      criteria of 4.4 (more than one member; no other class straddles the
      boundary). [classic] restores most-specific generalization.

    Value equality across instances is tracked exactly up to
    [equiv_depth] by hashing per-instance exact values; deeper positions
    keep only the constant check (6.4). *)

type agg

val create : equiv_depth:int -> agg

val add : agg -> Trace.node -> unit
(** Fold one concrete trace into the aggregation. *)

val count : agg -> int
(** Number of traces folded in so far. *)

(** Symbolic expressions: variables, real constants, operations. *)
type sym = Svar of int | Sconst of float | Sop of string * sym array

val finalize : ?classic:bool -> agg -> sym
(** The symbolic expression generalizing every added trace. *)

val rename : sym -> sym * string list
(** Canonical left-to-right variable numbering; returns the variable names
    in order. *)

val var_names : string array
(** Display names for the first variables: x, y, z, a, ... *)

val to_fpcore : sym -> string
(** Render as an FPCore form, e.g. ["(FPCore (x) (- (+ x 1) x))"]. *)

val sym_op_count : sym -> int
val sym_vars : sym -> int list
val sym_body_to_string : sym -> string
