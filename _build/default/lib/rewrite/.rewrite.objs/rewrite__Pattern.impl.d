lib/rewrite/pattern.ml: Fpcore Int64 List String
