lib/rewrite/improve.ml: Array Bignum Core Float Fpcore Hashtbl Ieee List Marshal Pattern Printf Rules
