lib/rewrite/rules.ml: Pattern
