(* First-order patterns over FPCore expressions, for the rewrite rules of
   the accuracy improver. Metavariables match any subexpression; repeated
   metavariables must match structurally equal subexpressions. *)

type pat =
  | Pmeta of string  (* matches anything; repeated names must agree *)
  | Pnum of float
  | Pop of string * pat list

type bindings = (string * Fpcore.Ast.expr) list

let rec expr_equal (a : Fpcore.Ast.expr) (b : Fpcore.Ast.expr) : bool =
  match (a, b) with
  | Fpcore.Ast.Num x, Fpcore.Ast.Num y ->
      Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | Fpcore.Ast.Var x, Fpcore.Ast.Var y -> x = y
  | Fpcore.Ast.Const x, Fpcore.Ast.Const y -> x = y
  | Fpcore.Ast.Op (f, xs), Fpcore.Ast.Op (g, ys) ->
      f = g && List.length xs = List.length ys && List.for_all2 expr_equal xs ys
  | _, _ -> false

let rec matches (p : pat) (e : Fpcore.Ast.expr) (env : bindings) :
    bindings option =
  match (p, e) with
  | Pmeta name, _ -> begin
      match List.assoc_opt name env with
      | Some bound -> if expr_equal bound e then Some env else None
      | None -> Some ((name, e) :: env)
    end
  | Pnum f, Fpcore.Ast.Num g ->
      if Int64.equal (Int64.bits_of_float f) (Int64.bits_of_float g) then
        Some env
      else None
  | Pop (f, ps), Fpcore.Ast.Op (g, es)
    when f = g && List.length ps = List.length es ->
      List.fold_left2
        (fun acc p e -> match acc with None -> None | Some env -> matches p e env)
        (Some env) ps es
  | _, _ -> None

let rec instantiate (p : pat) (env : bindings) : Fpcore.Ast.expr =
  match p with
  | Pmeta name -> begin
      match List.assoc_opt name env with
      | Some e -> e
      | None -> invalid_arg ("Pattern.instantiate: unbound " ^ name)
    end
  | Pnum f -> Fpcore.Ast.Num f
  | Pop (f, ps) -> Fpcore.Ast.Op (f, List.map (fun p -> instantiate p env) ps)

(* parse a pattern from a compact sexp string: metavariables are ?a, ?b *)
let of_string (src : string) : pat =
  let rec conv (s : Fpcore.Sexp.t) : pat =
    match s with
    | Fpcore.Sexp.Atom a ->
        if String.length a > 1 && a.[0] = '?' then
          Pmeta (String.sub a 1 (String.length a - 1))
        else begin
          match float_of_string_opt a with
          | Some f -> Pnum f
          | None -> invalid_arg ("Pattern.of_string: bad atom " ^ a)
        end
    | Fpcore.Sexp.List (Fpcore.Sexp.Atom op :: args) ->
        Pop (op, List.map conv args)
    | Fpcore.Sexp.List _ -> invalid_arg "Pattern.of_string: bad pattern"
  in
  conv (Fpcore.Sexp.parse src)
