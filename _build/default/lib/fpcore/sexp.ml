(* Minimal s-expression reader for the FPCore format. *)

type t = Atom of string | List of t list

exception Parse_error of string

let tokenize (src : string) : string list =
  let tokens = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      tokens := Buffer.contents buf :: !tokens;
      Buffer.clear buf
    end
  in
  let n = String.length src in
  let i = ref 0 in
  while !i < n do
    (match src.[!i] with
    | '(' | '[' ->
        flush ();
        tokens := "(" :: !tokens
    | ')' | ']' ->
        flush ();
        tokens := ")" :: !tokens
    | ' ' | '\t' | '\n' | '\r' -> flush ()
    | ';' ->
        flush ();
        while !i < n && src.[!i] <> '\n' do
          incr i
        done
    | '"' ->
        (* string literal: kept as a single atom including quotes *)
        flush ();
        Buffer.add_char buf '"';
        incr i;
        while !i < n && src.[!i] <> '"' do
          Buffer.add_char buf src.[!i];
          incr i
        done;
        Buffer.add_char buf '"';
        flush ()
    | c -> Buffer.add_char buf c);
    incr i
  done;
  flush ();
  List.rev !tokens

let parse_many (src : string) : t list =
  let tokens = tokenize src in
  let rec parse_one = function
    | [] -> raise (Parse_error "unexpected end of input")
    | "(" :: rest ->
        let items, rest = parse_list rest [] in
        (List items, rest)
    | ")" :: _ -> raise (Parse_error "unexpected )")
    | atom :: rest -> (Atom atom, rest)
  and parse_list tokens acc =
    match tokens with
    | [] -> raise (Parse_error "unterminated list")
    | ")" :: rest -> (List.rev acc, rest)
    | _ ->
        let item, rest = parse_one tokens in
        parse_list rest (item :: acc)
  in
  let rec go tokens acc =
    match tokens with
    | [] -> List.rev acc
    | _ ->
        let item, rest = parse_one tokens in
        go rest (item :: acc)
  in
  go tokens []

let parse (src : string) : t =
  match parse_many src with
  | [ s ] -> s
  | [] -> raise (Parse_error "empty input")
  | _ -> raise (Parse_error "expected a single s-expression")

let rec to_string = function
  | Atom a -> a
  | List items -> "(" ^ String.concat " " (List.map to_string items) ^ ")"
