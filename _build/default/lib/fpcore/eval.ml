(* Direct evaluators for FPCore: in IEEE doubles (what a compiled
   benchmark computes) and in high-precision reals (ground truth). The
   double evaluator provides the test oracle for the MiniC compilation
   path; the real evaluator measures true benchmark error. *)

module B = Bignum.Bigfloat

exception Eval_error of string

let lookup env x =
  match List.assoc_opt x env with
  | Some v -> v
  | None -> raise (Eval_error ("unbound variable " ^ x))

(* ---------- doubles ---------- *)

let rec eval_f (env : (string * float) list) (e : Ast.expr) : float =
  match e with
  | Ast.Num f -> f
  | Ast.Const c -> List.assoc c Ast.constants
  | Ast.Var x -> lookup env x
  | Ast.Op ("-", [ a ]) -> -.eval_f env a
  | Ast.Op ("+", [ a ]) -> eval_f env a
  | Ast.Op (op, args) -> apply_f op (List.map (eval_f env) args)
  | Ast.If (c, t, e2) -> if eval_b env c then eval_f env t else eval_f env e2
  | Ast.Let (binds, body) ->
      let vals = List.map (fun (x, e) -> (x, eval_f env e)) binds in
      eval_f (vals @ env) body
  | Ast.LetStar (binds, body) ->
      let env =
        List.fold_left (fun env (x, e) -> (x, eval_f env e) :: env) env binds
      in
      eval_f env body
  | Ast.While (c, binds, res) ->
      let state = List.map (fun (x, i, _) -> (x, eval_f env i)) binds in
      let rec go state steps =
        if steps > 10_000_000 then raise (Eval_error "while: too many steps");
        let env' = state @ env in
        if eval_b env' c then begin
          let state' = List.map (fun (x, _, u) -> (x, eval_f env' u)) binds in
          go state' (steps + 1)
        end
        else eval_f env' res
      in
      go state 0
  | Ast.WhileStar (c, binds, res) ->
      let state = List.map (fun (x, i, _) -> (x, eval_f env i)) binds in
      let rec go state steps =
        if steps > 10_000_000 then raise (Eval_error "while*: too many steps");
        let env' = state @ env in
        if eval_b env' c then begin
          let _, state' =
            List.fold_left
              (fun (env_acc, out) (x, _, u) ->
                let v = eval_f env_acc u in
                ((x, v) :: env_acc, out @ [ (x, v) ]))
              (env', []) binds
          in
          go state' (steps + 1)
        end
        else eval_f env' res
      in
      go state 0
  | Ast.Cmp _ | Ast.AndE _ | Ast.OrE _ | Ast.NotE _ ->
      raise (Eval_error "boolean in numeric position")

and eval_b env (e : Ast.expr) : bool =
  match e with
  | Ast.Cmp (op, args) ->
      let vals = List.map (eval_f env) args in
      let rec chain f = function
        | a :: b :: rest -> f a b && chain f (b :: rest)
        | _ -> true
      in
      let f =
        match op with
        | "<" -> ( < )
        | "<=" -> ( <= )
        | ">" -> ( > )
        | ">=" -> ( >= )
        | "==" -> ( = )
        | "!=" -> ( <> )
        | _ -> raise (Eval_error ("bad comparison " ^ op))
      in
      chain f vals
  | Ast.AndE args -> List.for_all (eval_b env) args
  | Ast.OrE args -> List.exists (eval_b env) args
  | Ast.NotE a -> not (eval_b env a)
  | _ -> raise (Eval_error "numeric in boolean position")

and apply_f op (args : float list) : float =
  match (op, args) with
  | "+", a :: (_ :: _ as rest) -> List.fold_left ( +. ) a rest
  | "-", [ a; b ] -> a -. b
  | "*", a :: (_ :: _ as rest) -> List.fold_left ( *. ) a rest
  | "/", [ a; b ] -> a /. b
  | "sqrt", [ a ] -> Float.sqrt a
  | _, _ -> Vex.Eval.libm_apply op (Array.of_list args)

(* ---------- reals ---------- *)

let rec eval_r ~prec (env : (string * B.t) list) (e : Ast.expr) : B.t =
  match e with
  | Ast.Num f -> B.of_float f
  | Ast.Const "PI" -> Bignum.Bigfloat_math.pi ~prec
  | Ast.Const "E" -> Bignum.Bigfloat_math.exp ~prec B.one
  | Ast.Const "LN2" -> Bignum.Bigfloat_math.ln2 ~prec
  | Ast.Const c -> raise (Eval_error ("unknown constant " ^ c))
  | Ast.Var x -> lookup env x
  | Ast.Op ("-", [ a ]) -> B.neg (eval_r ~prec env a)
  | Ast.Op ("+", [ a ]) -> eval_r ~prec env a
  | Ast.Op (op, args) ->
      let vals = List.map (eval_r ~prec env) args in
      begin
        match (op, vals) with
        | "+", a :: (_ :: _ as rest) -> List.fold_left (B.add ~prec) a rest
        | "-", [ a; b ] -> B.sub ~prec a b
        | "*", a :: (_ :: _ as rest) -> List.fold_left (B.mul ~prec) a rest
        | "/", [ a; b ] -> B.div ~prec a b
        | _ -> Vex.Eval.libm_apply_real ~prec op (Array.of_list vals)
      end
  | Ast.If (c, t, e2) ->
      if eval_rb ~prec env c then eval_r ~prec env t else eval_r ~prec env e2
  | Ast.Let (binds, body) ->
      let vals = List.map (fun (x, e) -> (x, eval_r ~prec env e)) binds in
      eval_r ~prec (vals @ env) body
  | Ast.LetStar (binds, body) ->
      let env =
        List.fold_left (fun env (x, e) -> (x, eval_r ~prec env e) :: env) env binds
      in
      eval_r ~prec env body
  | Ast.While (c, binds, res) ->
      let state = List.map (fun (x, i, _) -> (x, eval_r ~prec env i)) binds in
      let rec go state steps =
        if steps > 1_000_000 then raise (Eval_error "while: too many steps");
        let env' = state @ env in
        if eval_rb ~prec env' c then begin
          let state' =
            List.map (fun (x, _, u) -> (x, eval_r ~prec env' u)) binds
          in
          go state' (steps + 1)
        end
        else eval_r ~prec env' res
      in
      go state 0
  | Ast.WhileStar (c, binds, res) ->
      let state = List.map (fun (x, i, _) -> (x, eval_r ~prec env i)) binds in
      let rec go state steps =
        if steps > 1_000_000 then raise (Eval_error "while*: too many steps");
        let env' = state @ env in
        if eval_rb ~prec env' c then begin
          let _, state' =
            List.fold_left
              (fun (env_acc, out) (x, _, u) ->
                let v = eval_r ~prec env_acc u in
                ((x, v) :: env_acc, out @ [ (x, v) ]))
              (env', []) binds
          in
          go state' (steps + 1)
        end
        else eval_r ~prec env' res
      in
      go state 0
  | Ast.Cmp _ | Ast.AndE _ | Ast.OrE _ | Ast.NotE _ ->
      raise (Eval_error "boolean in numeric position")

and eval_rb ~prec env (e : Ast.expr) : bool =
  match e with
  | Ast.Cmp (op, args) ->
      let vals = List.map (eval_r ~prec env) args in
      let rec chain f = function
        | a :: b :: rest -> f a b && chain f (b :: rest)
        | _ -> true
      in
      let f =
        match op with
        | "<" -> B.lt
        | "<=" -> B.le
        | ">" -> B.gt
        | ">=" -> B.ge
        | "==" -> B.equal
        | "!=" -> fun a b -> not (B.equal a b)
        | _ -> raise (Eval_error ("bad comparison " ^ op))
      in
      chain f vals
  | Ast.AndE args -> List.for_all (eval_rb ~prec env) args
  | Ast.OrE args -> List.exists (eval_rb ~prec env) args
  | Ast.NotE a -> not (eval_rb ~prec env a)
  | _ -> raise (Eval_error "numeric in boolean position")

(* run an FPCore on a list of input tuples, returning per-input
   (double result, bits of error against the real evaluation) *)
let error_on_inputs ?(prec = 256) (core : Ast.core) (inputs : float array list)
    : (float * float) list =
  List.map
    (fun tuple ->
      let fenv = List.mapi (fun i x -> (x, tuple.(i))) core.Ast.args in
      let renv = List.mapi (fun i x -> (x, B.of_float tuple.(i))) core.Ast.args in
      let f = eval_f fenv core.Ast.body in
      let r = eval_r ~prec renv core.Ast.body in
      (f, Ieee.bits_of_error f (B.to_float r)))
    inputs
