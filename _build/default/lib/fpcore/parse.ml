(* Sexp -> FPCore. Properties (:name, :pre, :precision, ...) are parsed;
   unknown properties and (! ...) annotations are skipped. *)

exception Error of string

let err msg = raise (Error msg)

let parse_number (a : string) : float option =
  match float_of_string_opt a with
  | Some f -> Some f
  | None -> (
      (* rational literals like 17/3 *)
      match String.index_opt a '/' with
      | Some i when i > 0 && i < String.length a - 1 -> (
          let n = String.sub a 0 i
          and d = String.sub a (i + 1) (String.length a - i - 1) in
          match (float_of_string_opt n, float_of_string_opt d) with
          | Some n, Some d -> Some (n /. d)
          | _ -> None)
      | _ -> None)

let rec expr_of_sexp (s : Sexp.t) : Ast.expr =
  match s with
  | Sexp.Atom a -> begin
      match parse_number a with
      | Some f -> Ast.Num f
      | None ->
          if List.mem_assoc a Ast.constants then Ast.Const a else Ast.Var a
    end
  | Sexp.List (Sexp.Atom "if" :: rest) -> begin
      match rest with
      | [ c; t; e ] -> Ast.If (expr_of_sexp c, expr_of_sexp t, expr_of_sexp e)
      | _ -> err "if expects 3 arguments"
    end
  | Sexp.List [ Sexp.Atom ("let" as kw); Sexp.List binds; body ]
  | Sexp.List [ Sexp.Atom ("let*" as kw); Sexp.List binds; body ] ->
      let parse_bind = function
        | Sexp.List [ Sexp.Atom x; e ] -> (x, expr_of_sexp e)
        | _ -> err "malformed let binding"
      in
      let binds = List.map parse_bind binds in
      if kw = "let" then Ast.Let (binds, expr_of_sexp body)
      else Ast.LetStar (binds, expr_of_sexp body)
  | Sexp.List [ Sexp.Atom ("while" as kw); cond; Sexp.List binds; res ]
  | Sexp.List [ Sexp.Atom ("while*" as kw); cond; Sexp.List binds; res ] ->
      let parse_bind = function
        | Sexp.List [ Sexp.Atom x; init; update ] ->
            (x, expr_of_sexp init, expr_of_sexp update)
        | _ -> err "malformed while binding"
      in
      let binds = List.map parse_bind binds in
      if kw = "while" then Ast.While (expr_of_sexp cond, binds, expr_of_sexp res)
      else Ast.WhileStar (expr_of_sexp cond, binds, expr_of_sexp res)
  | Sexp.List (Sexp.Atom "!" :: rest) -> begin
      (* annotation: skip the properties, keep the expression *)
      let rec skip = function
        | [ e ] -> expr_of_sexp e
        | Sexp.Atom p :: _ :: rest when String.length p > 0 && p.[0] = ':' ->
            skip rest
        | _ -> err "malformed annotation"
      in
      skip rest
    end
  | Sexp.List (Sexp.Atom "and" :: args) -> Ast.AndE (List.map expr_of_sexp args)
  | Sexp.List (Sexp.Atom "or" :: args) -> Ast.OrE (List.map expr_of_sexp args)
  | Sexp.List [ Sexp.Atom "not"; a ] -> Ast.NotE (expr_of_sexp a)
  | Sexp.List (Sexp.Atom op :: args) when Ast.is_comparison op ->
      Ast.Cmp (op, List.map expr_of_sexp args)
  | Sexp.List (Sexp.Atom op :: args) ->
      if List.mem op Ast.arith_ops then Ast.Op (op, List.map expr_of_sexp args)
      else err ("unknown operator " ^ op)
  | Sexp.List _ -> err "malformed expression"

let core_of_sexp (s : Sexp.t) : Ast.core =
  match s with
  | Sexp.List (Sexp.Atom "FPCore" :: rest) -> begin
      let args, rest =
        match rest with
        | Sexp.List args :: rest ->
            ( List.map
                (function
                  | Sexp.Atom a -> a
                  | Sexp.List (Sexp.Atom "!" :: tail) -> begin
                      (* annotated argument: last atom is the name *)
                      match List.rev tail with
                      | Sexp.Atom name :: _ -> name
                      | _ -> err "malformed annotated argument"
                    end
                  | Sexp.List _ -> err "malformed argument")
                args,
              rest )
        | Sexp.Atom fname :: Sexp.List args :: rest ->
            ignore fname;
            ( List.map
                (function Sexp.Atom a -> a | Sexp.List _ -> err "bad arg")
                args,
              rest )
        | _ -> err "FPCore expects an argument list"
      in
      let name = ref None and pre = ref None in
      let rec props = function
        | [ body ] -> body
        | Sexp.Atom ":name" :: Sexp.Atom n :: rest ->
            let n =
              if String.length n >= 2 && n.[0] = '"' then
                String.sub n 1 (String.length n - 2)
              else n
            in
            name := Some n;
            props rest
        | Sexp.Atom ":pre" :: p :: rest ->
            pre := Some (expr_of_sexp p);
            props rest
        | Sexp.Atom p :: _ :: rest when String.length p > 0 && p.[0] = ':' ->
            props rest
        | _ -> err "malformed FPCore properties"
      in
      let body = props rest in
      { Ast.name = !name; args; pre = !pre; body = expr_of_sexp body }
    end
  | _ -> err "not an FPCore form"

let parse_core (src : string) : Ast.core = core_of_sexp (Sexp.parse src)
