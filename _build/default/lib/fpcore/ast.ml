(* FPCore abstract syntax (Damouche et al. 2016), covering the fragment
   used by the FPBench benchmarks vendored in [Suite]. *)

type expr =
  | Num of float
  | Const of string  (* PI, E, ... *)
  | Var of string
  | Op of string * expr list  (* arithmetic and math functions *)
  | If of expr * expr * expr
  | Let of (string * expr) list * expr  (* simultaneous *)
  | LetStar of (string * expr) list * expr
  | While of expr * (string * expr * expr) list * expr
    (* cond, (var, init, update) list (simultaneous updates), result *)
  | WhileStar of expr * (string * expr * expr) list * expr
  | Cmp of string * expr list  (* <, <=, >, >=, ==, != *)
  | AndE of expr list
  | OrE of expr list
  | NotE of expr

type core = {
  name : string option;
  args : string list;
  pre : expr option;
  body : expr;
}

let constants = [ ("PI", Float.pi); ("E", Float.exp 1.0); ("LN2", Float.log 2.0) ]

let is_comparison = function
  | "<" | "<=" | ">" | ">=" | "==" | "!=" -> true
  | _ -> false

let arith_ops =
  [ "+"; "-"; "*"; "/"; "sqrt"; "fabs"; "exp"; "expm1"; "exp2"; "log";
    "log1p"; "log2"; "log10"; "pow"; "sin"; "cos"; "tan"; "asin"; "acos";
    "atan"; "atan2"; "sinh"; "cosh"; "tanh"; "fma"; "hypot"; "fmax"; "fmin";
    "floor"; "ceil"; "trunc"; "round"; "fmod"; "cbrt"; "copysign"; "fdim" ]

let rec free_vars_expr bound (e : expr) : string list =
  match e with
  | Num _ | Const _ -> []
  | Var v -> if List.mem v bound then [] else [ v ]
  | Op (_, args) | Cmp (_, args) | AndE args | OrE args ->
      List.concat_map (free_vars_expr bound) args
  | NotE a -> free_vars_expr bound a
  | If (c, t, e2) ->
      free_vars_expr bound c @ free_vars_expr bound t @ free_vars_expr bound e2
  | Let (binds, body) ->
      let init_vars = List.concat_map (fun (_, e) -> free_vars_expr bound e) binds in
      let bound' = List.map fst binds @ bound in
      init_vars @ free_vars_expr bound' body
  | LetStar (binds, body) ->
      let rec go bound acc = function
        | [] -> (bound, acc)
        | (x, e) :: rest -> go (x :: bound) (acc @ free_vars_expr bound e) rest
      in
      let bound', acc = go bound [] binds in
      acc @ free_vars_expr bound' body
  | While (c, binds, res) | WhileStar (c, binds, res) ->
      let inits = List.concat_map (fun (_, i, _) -> free_vars_expr bound i) binds in
      let bound' = List.map (fun (x, _, _) -> x) binds @ bound in
      inits
      @ List.concat_map (fun (_, _, u) -> free_vars_expr bound' u) binds
      @ free_vars_expr bound' c @ free_vars_expr bound' res

let rec op_count = function
  | Num _ | Const _ | Var _ -> 0
  | Op (_, args) -> 1 + List.fold_left (fun a e -> a + op_count e) 0 args
  | Cmp (_, args) | AndE args | OrE args ->
      1 + List.fold_left (fun a e -> a + op_count e) 0 args
  | NotE a -> 1 + op_count a
  | If (c, t, e) -> op_count c + op_count t + op_count e
  | Let (binds, body) | LetStar (binds, body) ->
      List.fold_left (fun a (_, e) -> a + op_count e) 0 binds + op_count body
  | While (c, binds, res) | WhileStar (c, binds, res) ->
      op_count c
      + List.fold_left (fun a (_, i, u) -> a + op_count i + op_count u) 0 binds
      + op_count res

let rec has_loop = function
  | Num _ | Const _ | Var _ -> false
  | Op (_, args) | Cmp (_, args) | AndE args | OrE args ->
      List.exists has_loop args
  | NotE a -> has_loop a
  | If (c, t, e) -> has_loop c || has_loop t || has_loop e
  | Let (binds, body) | LetStar (binds, body) ->
      List.exists (fun (_, e) -> has_loop e) binds || has_loop body
  | While _ | WhileStar _ -> true
