lib/fpcore/sexp.ml: Buffer List String
