lib/fpcore/compile.ml: Ast Buffer Float List Minic Printf String Vex
