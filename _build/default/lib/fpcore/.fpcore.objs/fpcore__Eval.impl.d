lib/fpcore/eval.ml: Array Ast Bignum Float Ieee List Vex
