lib/fpcore/suite.ml: Array Ast Float Int64 List Parse
