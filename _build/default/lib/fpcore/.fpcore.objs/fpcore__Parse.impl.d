lib/fpcore/parse.ml: Ast List Sexp String
