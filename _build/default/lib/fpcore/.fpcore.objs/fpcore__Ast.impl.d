lib/fpcore/ast.ml: Float List
