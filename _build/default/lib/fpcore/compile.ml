(* FPCore -> MiniC source. This plays the role of the FPBench-to-C
   compilation used by the paper's section 8 harness: each benchmark
   becomes a MiniC program whose main() reads input tuples through the
   __arg builtin, evaluates the benchmark in a loop, and prints the
   result (which becomes an output spot for the analysis). *)

exception Error of string

let buf_add = Buffer.add_string

(* sanitize FPCore identifiers into MiniC identifiers *)
let sanitize name =
  let b = Buffer.create (String.length name) in
  String.iter
    (fun c ->
      if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
      then Buffer.add_char b c
      else Buffer.add_char b '_')
    name;
  let s = Buffer.contents b in
  if s = "" || (s.[0] >= '0' && s.[0] <= '9') then "v_" ^ s else s

let float_lit f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

type ctx = {
  buf : Buffer.t;
  mutable indent : int;
  mutable counter : int;
  mutable renames : (string * string) list;  (* FPCore var -> MiniC var *)
}

let fresh ctx prefix =
  ctx.counter <- ctx.counter + 1;
  Printf.sprintf "%s%d" prefix ctx.counter

let line ctx s =
  buf_add ctx.buf (String.make (2 * ctx.indent) ' ');
  buf_add ctx.buf s;
  buf_add ctx.buf "\n"

let rename ctx x =
  match List.assoc_opt x ctx.renames with
  | Some m -> m
  | None -> raise (Error ("unbound FPCore variable " ^ x))

(* Generate statements computing [e]; returns a MiniC expression string
   for its value. Statement-level constructs (if/let/while) emit code. *)
let rec gen ctx (e : Ast.expr) : string =
  match e with
  | Ast.Num f -> "(" ^ float_lit f ^ ")"
  | Ast.Const c -> "(" ^ float_lit (List.assoc c Ast.constants) ^ ")"
  | Ast.Var x -> rename ctx x
  | Ast.Op ("-", [ a ]) -> Printf.sprintf "(-%s)" (gen ctx a)
  | Ast.Op ("+", [ a ]) -> gen ctx a
  | Ast.Op (("+" | "-" | "*" | "/") as op, args) -> begin
      match List.map (gen ctx) args with
      | [ a; b ] -> Printf.sprintf "(%s %s %s)" a op b
      | a :: (_ :: _ as rest) when op = "+" || op = "*" ->
          List.fold_left (fun acc x -> Printf.sprintf "(%s %s %s)" acc op x) a rest
      | _ -> raise (Error ("bad arity for " ^ op))
    end
  | Ast.Op (fn, args) ->
      Printf.sprintf "%s(%s)" fn (String.concat ", " (List.map (gen ctx) args))
  | Ast.If (c, t, e2) ->
      let tmp = fresh ctx "t" in
      line ctx (Printf.sprintf "double %s = 0.0;" tmp);
      let cs = gen_cond ctx c in
      line ctx (Printf.sprintf "if (%s) {" cs);
      ctx.indent <- ctx.indent + 1;
      let tv = gen ctx t in
      line ctx (Printf.sprintf "%s = %s;" tmp tv);
      ctx.indent <- ctx.indent - 1;
      line ctx "} else {";
      ctx.indent <- ctx.indent + 1;
      let ev = gen ctx e2 in
      line ctx (Printf.sprintf "%s = %s;" tmp ev);
      ctx.indent <- ctx.indent - 1;
      line ctx "}";
      tmp
  | Ast.Let (binds, body) ->
      (* simultaneous: evaluate all inits in the outer scope first *)
      let saved = ctx.renames in
      let evaluated =
        List.map
          (fun (x, e) ->
            let v = gen ctx e in
            let m = fresh ctx (sanitize x ^ "_") in
            line ctx (Printf.sprintf "double %s = %s;" m v);
            (x, m))
          binds
      in
      ctx.renames <- evaluated @ saved;
      let r = gen ctx body in
      ctx.renames <- saved;
      r
  | Ast.LetStar (binds, body) ->
      let saved = ctx.renames in
      List.iter
        (fun (x, e) ->
          let v = gen ctx e in
          let m = fresh ctx (sanitize x ^ "_") in
          line ctx (Printf.sprintf "double %s = %s;" m v);
          ctx.renames <- (x, m) :: ctx.renames)
        binds;
      let r = gen ctx body in
      ctx.renames <- saved;
      r
  | Ast.While (c, binds, res) ->
      let saved = ctx.renames in
      (* initialize state variables *)
      let state =
        List.map
          (fun (x, init, _) ->
            let v = gen ctx init in
            let m = fresh ctx (sanitize x ^ "_") in
            line ctx (Printf.sprintf "double %s = %s;" m v);
            (x, m))
          binds
      in
      ctx.renames <- state @ saved;
      let cs = gen_cond ctx c in
      line ctx (Printf.sprintf "while (%s) {" cs);
      ctx.indent <- ctx.indent + 1;
      (* simultaneous updates via temporaries *)
      let temps =
        List.map
          (fun (x, _, update) ->
            let v = gen ctx update in
            let tmp = fresh ctx "u" in
            line ctx (Printf.sprintf "double %s = %s;" tmp v);
            (x, tmp))
          binds
      in
      List.iter
        (fun (x, tmp) -> line ctx (Printf.sprintf "%s = %s;" (rename ctx x) tmp))
        temps;
      ctx.indent <- ctx.indent - 1;
      line ctx "}";
      let r = gen ctx res in
      ctx.renames <- saved;
      r
  | Ast.WhileStar (c, binds, res) ->
      let saved = ctx.renames in
      let state =
        List.map
          (fun (x, init, _) ->
            let v = gen ctx init in
            let m = fresh ctx (sanitize x ^ "_") in
            line ctx (Printf.sprintf "double %s = %s;" m v);
            (x, m))
          binds
      in
      ctx.renames <- state @ saved;
      let cs = gen_cond ctx c in
      line ctx (Printf.sprintf "while (%s) {" cs);
      ctx.indent <- ctx.indent + 1;
      List.iter
        (fun (x, _, update) ->
          let v = gen ctx update in
          line ctx (Printf.sprintf "%s = %s;" (rename ctx x) v))
        binds;
      ctx.indent <- ctx.indent - 1;
      line ctx "}";
      let r = gen ctx res in
      ctx.renames <- saved;
      r
  | Ast.Cmp _ | Ast.AndE _ | Ast.OrE _ | Ast.NotE _ ->
      raise (Error "boolean expression in numeric position")

and gen_cond ctx (e : Ast.expr) : string =
  match e with
  | Ast.Cmp (op, args) -> begin
      let vals = List.map (gen ctx) args in
      match vals with
      | [ a; b ] -> Printf.sprintf "%s %s %s" a op b
      | _ ->
          (* chained comparison: a < b < c *)
          let rec chain = function
            | a :: b :: rest ->
                Printf.sprintf "%s %s %s" a op b
                :: (if rest = [] then [] else chain (b :: rest))
            | _ -> []
          in
          String.concat " && " (chain vals)
    end
  | Ast.AndE args ->
      String.concat " && " (List.map (fun a -> "(" ^ gen_cond ctx a ^ ")") args)
  | Ast.OrE args ->
      String.concat " || " (List.map (fun a -> "(" ^ gen_cond ctx a ^ ")") args)
  | Ast.NotE a -> "!(" ^ gen_cond ctx a ^ ")"
  | _ ->
      (* numeric truthiness *)
      Printf.sprintf "%s != 0.0" (gen ctx e)

(* The whole harness program: iterate over [n_inputs] tuples. *)
let to_minic ?(n_inputs = 16) (core : Ast.core) : string =
  let ctx = { buf = Buffer.create 1024; indent = 0; counter = 0; renames = [] } in
  let nvars = List.length core.Ast.args in
  line ctx "int main() {";
  ctx.indent <- 1;
  line ctx "int __i;";
  line ctx (Printf.sprintf "for (__i = 0; __i < %d; __i = __i + 1) {" n_inputs);
  ctx.indent <- 2;
  List.iteri
    (fun k x ->
      let m = sanitize x in
      line ctx
        (Printf.sprintf "double %s = __arg(__i * %d + %d);" m nvars k);
      ctx.renames <- (x, m) :: ctx.renames)
    core.Ast.args;
  let result = gen ctx core.Ast.body in
  line ctx (Printf.sprintf "print(%s);" result);
  ctx.indent <- 1;
  line ctx "}";
  line ctx "return 0;";
  ctx.indent <- 0;
  line ctx "}";
  Buffer.contents ctx.buf

let compile ?(wrap_libm = true) ?n_inputs ?name (core : Ast.core) : Vex.Ir.prog =
  let src = to_minic ?n_inputs core in
  let name =
    match (name, core.Ast.name) with
    | Some n, _ -> n
    | None, Some n -> n
    | None, None -> "fpcore"
  in
  Minic.compile ~wrap_libm ~file:(sanitize name ^ ".mc") src
