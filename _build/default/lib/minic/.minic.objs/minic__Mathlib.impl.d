lib/minic/mathlib.ml:
