lib/minic/normalize.ml: Ast List Printf Typecheck Vex
