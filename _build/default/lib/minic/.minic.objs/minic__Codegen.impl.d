lib/minic/codegen.ml: Ast Hashtbl Ieee Int64 List Normalize Printf String Typecheck Vex
