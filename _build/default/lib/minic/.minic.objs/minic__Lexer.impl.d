lib/minic/lexer.ml: Int64 Printf String
