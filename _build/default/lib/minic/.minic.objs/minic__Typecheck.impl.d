lib/minic/typecheck.ml: Ast Hashtbl List Printf String Vex
