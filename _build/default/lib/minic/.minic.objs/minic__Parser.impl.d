lib/minic/parser.ml: Ast Int64 Lexer List
