lib/minic/minic.ml: Ast Codegen Filename Lexer List Mathlib Normalize Parser Printf Typecheck Vex
