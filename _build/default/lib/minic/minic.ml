(* Front-end driver: MiniC source text to a VEX program.

   [wrap_libm] mirrors Herbgrind's math-library wrapping (paper 5.4): when
   true (the default), transcendental calls compile to Dirty library calls
   that the analysis intercepts; when false, they compile to the MiniC
   implementations in [Mathlib], whose internals the analysis then
   traces. *)

module Ast = Ast
module Lexer = Lexer
module Parser = Parser
module Typecheck = Typecheck
module Normalize = Normalize
module Codegen = Codegen
module Mathlib = Mathlib

exception Compile_error of string

let parse ~file src =
  try Parser.parse_program ~file src with
  | Lexer.Lex_error (msg, line) ->
      raise (Compile_error (Printf.sprintf "%s:%d: lexical error: %s" file line msg))
  | Parser.Parse_error (msg, line) ->
      raise (Compile_error (Printf.sprintf "%s:%d: parse error: %s" file line msg))

let compile ?(wrap_libm = true) ?vectorize ~file src : Vex.Ir.prog =
  let prog = parse ~file src in
  let prog =
    if wrap_libm then prog
    else begin
      (* link in the MiniC math library *)
      let mathlib = parse ~file:"<mathlib>" Mathlib.source in
      let user_names = List.map (fun f -> f.Ast.fname) prog.Ast.funcs in
      let lib_funcs =
        List.filter
          (fun f -> not (List.mem f.Ast.fname user_names))
          mathlib.Ast.funcs
      in
      { prog with Ast.funcs = prog.Ast.funcs @ lib_funcs }
    end
  in
  let mathlib_names = if wrap_libm then [] else Mathlib.names in
  try
    let env = Typecheck.check prog in
    let cfg = { Normalize.wrap_libm; mathlib_names } in
    let prog = Normalize.normalize cfg env prog in
    Codegen.generate ~wrap_libm ~mathlib_names ?vectorize env prog
  with
  | Typecheck.Type_error (msg, line) ->
      raise (Compile_error (Printf.sprintf "%s:%d: type error: %s" file line msg))
  | Codegen.Codegen_error msg ->
      raise (Compile_error (Printf.sprintf "%s: codegen error: %s" file msg))

let compile_file ?wrap_libm ?vectorize path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  compile ?wrap_libm ?vectorize ~file:(Filename.basename path) src

(* convenience for tests and examples: run and return printed outputs *)
let run ?wrap_libm ?vectorize ?mem_size ?max_steps ~file src =
  let prog = compile ?wrap_libm ?vectorize ~file src in
  let st = Vex.Machine.run ?mem_size ?max_steps prog in
  Vex.Machine.outputs st
