(* Abstract syntax of MiniC, the small C-like language that plays the role
   of the paper's C/C++/Fortran client programs. Programs are compiled to
   VEX superblocks by [Codegen], which is the analogue of gcc producing the
   binaries that Valgrind instruments. *)

type ty =
  | Tint  (* 64-bit signed *)
  | Tdouble
  | Tfloat  (* binary32 *)
  | Tarray of ty * int  (* fixed-size local/global array *)
  | Tptr of ty  (* array parameter, e.g. double a[] *)

let rec ty_to_string = function
  | Tint -> "int"
  | Tdouble -> "double"
  | Tfloat -> "float"
  | Tarray (t, n) -> Printf.sprintf "%s[%d]" (ty_to_string t) n
  | Tptr t -> ty_to_string t ^ "[]"

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | And  (* && with lazy right operand *)
  | Or

type unop = Neg | Not

type pos = { line : int }

type expr = { desc : expr_desc; pos : pos }

and expr_desc =
  | Int_lit of int64
  | Float_lit of float * string
    (* value and original spelling (kept so "0.1f" can stay a single) *)
  | Var of string
  | Index of expr * expr
  | Call of string * expr list
  | Unary of unop * expr
  | Binary of binop * expr * expr
  | Cast of ty * expr

type stmt = { sdesc : stmt_desc; spos : pos }

and stmt_desc =
  | Decl of ty * string * expr option
  | Assign of string * expr
  | Store of string * expr * expr  (* a[i] = e *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of stmt option * expr option * stmt option * stmt list
  | Return of expr option
  | Expr of expr  (* expression statement, e.g. a call *)
  | Print of expr  (* program output: becomes an Out spot *)
  | Mark of expr
    (* __mark(e): a user-requested analysis spot that is not a program
       output (Herbgrind's manual spot marks, paper footnote 9) *)
  | Break
  | Continue

type func = {
  fname : string;
  ret : ty option;  (* None = void *)
  params : (ty * string) list;
  body : stmt list;
  fpos : pos;
}

type global = { gty : ty; gname : string; ginit : expr option; gpos : pos }

type program = { globals : global list; funcs : func list; source_file : string }
