(* A double-precision math library written in MiniC itself. When libm
   wrapping is turned off (the paper's section 8.2 ablation), calls to
   exp/log/sin/cos/tan/atan/atan2/pow compile to ordinary MiniC calls into
   these implementations, so the analysis traces their internals --
   including the 6755399441055744 round-to-nearest magic constant the
   paper shows leaking into recovered expressions.

   Accuracy is a few ulps, which is all the client execution needs: the
   shadow real execution never runs this code (with wrapping on it is
   bypassed entirely; with wrapping off the point is precisely that the
   analysis sees these internals). *)

let names =
  [ "exp"; "log"; "sin"; "cos"; "tan"; "atan"; "atan2"; "pow"; "asin";
    "acos"; "sinh"; "cosh"; "tanh"; "expm1"; "log1p"; "cbrt"; "hypot" ]

let source =
  {|
// ---- MiniC math library (used when libm wrapping is off) ----

double __mc_two_to(int k) {
  double p = 1.0;
  double b = 2.0;
  int n = k;
  if (n < 0) {
    n = -n;
    b = 0.5;
  }
  while (n > 0) {
    if (n % 2 == 1) {
      p = p * b;
    }
    b = b * b;
    n = n / 2;
  }
  return p;
}

double exp(double x) {
  if (x > 710.0) { return 1.0 / 0.0; }
  if (x < -745.0) { return 0.0; }
  // round(x / ln 2) via the add-magic-constant trick
  double kd = (x * 1.4426950408889634 + 6755399441055744.0) - 6755399441055744.0;
  double r = x - kd * 0.6931471805599453;
  r = r - kd * 2.3190468138462996e-17;
  // straight-line Horner polynomial for exp on [-ln2/2, ln2/2], like the
  // unrolled minimax kernels of a real libm
  double s = 1.0 + r * (1.0 + r * (0.5 + r * (0.16666666666666666
    + r * (0.041666666666666664 + r * (0.008333333333333333
    + r * (0.001388888888888889 + r * (0.0001984126984126984
    + r * (2.48015873015873e-05 + r * (2.7557319223985893e-06
    + r * (2.755731922398589e-07 + r * (2.505210838544172e-08
    + r * (2.08767569878681e-09 + r * (1.6059043836821613e-10
    + r * (1.1470745597729725e-11))))))))))))));
  return s * __mc_two_to((int) kd);
}

double log(double x) {
  if (x < 0.0) { return 0.0 / 0.0; }
  if (x == 0.0) { return -1.0 / 0.0; }
  // normalize x = m * 2^e with m in [1, 2)
  int e = 0;
  double m = x;
  while (m >= 2.0) {
    m = m * 0.5;
    e = e + 1;
  }
  while (m < 1.0) {
    m = m * 2.0;
    e = e - 1;
  }
  // atanh kernel, straight-line Horner:
  // ln m = 2 z (1 + z^2/3 + z^4/5 + ...), z = (m-1)/(m+1), |z| <= 1/3
  double z = (m - 1.0) / (m + 1.0);
  double z2 = z * z;
  double s = z * (1.0 + z2 * (0.3333333333333333 + z2 * (0.2
    + z2 * (0.14285714285714285 + z2 * (0.1111111111111111
    + z2 * (0.09090909090909091 + z2 * (0.07692307692307693
    + z2 * (0.06666666666666667 + z2 * (0.058823529411764705
    + z2 * (0.05263157894736842 + z2 * (0.047619047619047616
    + z2 * (0.043478260869565216 + z2 * (0.04 + z2 * (0.037037037037037035
    + z2 * (0.034482758620689655 + z2 * (0.03225806451612903
    + z2 * (0.030303030303030304
    + z2 * (0.02857142857142857))))))))))))))))));
  return 2.0 * s + (double) e * 0.6931471805599453;
}

double __mc_sin_poly(double r) {
  // straight-line Taylor/Horner kernel for |r| <= pi/4
  double r2 = r * r;
  return r * (1.0 + r2 * (-0.16666666666666666 + r2 * (0.008333333333333333
    + r2 * (-0.0001984126984126984 + r2 * (2.7557319223985893e-06
    + r2 * (-2.505210838544172e-08 + r2 * (1.6059043836821613e-10
    + r2 * (-7.647163731819816e-13))))))));
}

double __mc_cos_poly(double r) {
  double r2 = r * r;
  return 1.0 + r2 * (-0.5 + r2 * (0.041666666666666664
    + r2 * (-0.001388888888888889 + r2 * (2.48015873015873e-05
    + r2 * (-2.755731922398589e-07 + r2 * (2.08767569878681e-09
    + r2 * (-1.1470745597729725e-11)))))));
}

double sin(double x) {
  // reduce modulo pi/2 with the magic-constant rounding trick
  double nd = (x * 0.6366197723675814 + 6755399441055744.0) - 6755399441055744.0;
  double r = x - nd * 1.5707963267948966;
  r = r + nd * 2.4492935982947064e-17;
  int q = (int) nd;
  int m = q % 4;
  if (m < 0) { m = m + 4; }
  if (m == 0) { return __mc_sin_poly(r); }
  if (m == 1) { return __mc_cos_poly(r); }
  if (m == 2) { return -__mc_sin_poly(r); }
  return -__mc_cos_poly(r);
}

double cos(double x) {
  double nd = (x * 0.6366197723675814 + 6755399441055744.0) - 6755399441055744.0;
  double r = x - nd * 1.5707963267948966;
  r = r + nd * 2.4492935982947064e-17;
  int q = (int) nd;
  int m = q % 4;
  if (m < 0) { m = m + 4; }
  if (m == 0) { return __mc_cos_poly(r); }
  if (m == 1) { return -__mc_sin_poly(r); }
  if (m == 2) { return -__mc_cos_poly(r); }
  return __mc_sin_poly(r);
}

double tan(double x) {
  return sin(x) / cos(x);
}

double atan(double x) {
  double ax = fabs(x);
  int flip = 0;
  if (ax > 1.0) {
    ax = 1.0 / ax;
    flip = 1;
  }
  // three angle halvings, then a straight-line Gregory kernel
  ax = ax / (1.0 + sqrt(1.0 + ax * ax));
  ax = ax / (1.0 + sqrt(1.0 + ax * ax));
  ax = ax / (1.0 + sqrt(1.0 + ax * ax));
  double z2 = ax * ax;
  double s = ax * (1.0 + z2 * (-0.3333333333333333 + z2 * (0.2
    + z2 * (-0.14285714285714285 + z2 * (0.1111111111111111
    + z2 * (-0.09090909090909091 + z2 * (0.07692307692307693
    + z2 * (-0.06666666666666667 + z2 * (0.058823529411764705
    + z2 * (-0.05263157894736842 + z2 * (0.047619047619047616
    + z2 * (-0.043478260869565216 + z2 * (0.04)))))))))))));
  s = s * 8.0;
  if (flip == 1) {
    s = 1.5707963267948966 - s;
  }
  if (x < 0.0) {
    s = -s;
  }
  return s;
}

double atan2(double y, double x) {
  if (x > 0.0) {
    return atan(y / x);
  }
  if (x < 0.0) {
    if (y >= 0.0) {
      return atan(y / x) + 3.141592653589793;
    }
    return atan(y / x) - 3.141592653589793;
  }
  if (y > 0.0) { return 1.5707963267948966; }
  if (y < 0.0) { return -1.5707963267948966; }
  return 0.0;
}

double pow(double x, double y) {
  if (y == 0.0) { return 1.0; }
  if (x == 0.0) { return 0.0; }
  int yi = (int) y;
  if ((double) yi == y) {
    // integer exponent: repeated squaring keeps negative bases exact
    double p = 1.0;
    double b = x;
    int n = yi;
    if (n < 0) { n = -n; }
    while (n > 0) {
      if (n % 2 == 1) { p = p * b; }
      b = b * b;
      n = n / 2;
    }
    if (yi < 0) { p = 1.0 / p; }
    return p;
  }
  return exp(y * log(x));
}

double asin(double x) {
  if (x > 1.0) { return 0.0 / 0.0; }
  if (x < -1.0) { return 0.0 / 0.0; }
  if (x == 1.0) { return 1.5707963267948966; }
  if (x == -1.0) { return -1.5707963267948966; }
  return atan(x / sqrt((1.0 - x) * (1.0 + x)));
}

double acos(double x) {
  if (x > 1.0) { return 0.0 / 0.0; }
  if (x < -1.0) { return 0.0 / 0.0; }
  if (x == 1.0) { return 0.0; }
  if (x == -1.0) { return 3.141592653589793; }
  return atan2(sqrt((1.0 - x) * (1.0 + x)), x);
}

double expm1(double x) {
  double ax = fabs(x);
  if (ax < 0.5) {
    // straight-line Taylor kernel, no cancellation
    return x * (1.0 + x * (0.5 + x * (0.16666666666666666
      + x * (0.041666666666666664 + x * (0.008333333333333333
      + x * (0.001388888888888889 + x * (0.0001984126984126984
      + x * (0.0000248015873015873 + x * (0.0000027557319223985893
      + x * 0.00000027557319223985888)))))))));
  }
  return exp(x) - 1.0;
}

double log1p(double x) {
  double ax = fabs(x);
  if (ax < 0.5) {
    // 2 atanh(x / (x + 2)) via the straight-line atanh kernel
    double z = x / (x + 2.0);
    double z2 = z * z;
    return 2.0 * z * (1.0 + z2 * (0.3333333333333333 + z2 * (0.2
      + z2 * (0.14285714285714285 + z2 * (0.1111111111111111
      + z2 * (0.09090909090909091 + z2 * (0.07692307692307693
      + z2 * 0.06666666666666667)))))));
  }
  return log(1.0 + x);
}

double sinh(double x) {
  double ax = fabs(x);
  if (ax < 0.5) {
    double x2 = x * x;
    return x * (1.0 + x2 * (0.16666666666666666 + x2 * (0.008333333333333333
      + x2 * (0.0001984126984126984 + x2 * 0.0000027557319223985893))));
  }
  double e = exp(x);
  return 0.5 * (e - 1.0 / e);
}

double cosh(double x) {
  double e = exp(x);
  return 0.5 * (e + 1.0 / e);
}

double tanh(double x) {
  if (x > 20.0) { return 1.0; }
  if (x < -20.0) { return -1.0; }
  double e = expm1(2.0 * x);
  return e / (e + 2.0);
}

double cbrt(double x) {
  if (x == 0.0) { return x; }
  double ax = fabs(x);
  // seed from exp(log/3), then one Newton step
  double r = exp(log(ax) / 3.0);
  r = (2.0 * r + ax / (r * r)) / 3.0;
  if (x < 0.0) { r = -r; }
  return r;
}

double hypot(double x, double y) {
  double ax = fabs(x);
  double ay = fabs(y);
  double hi = fmax(ax, ay);
  double lo = fmin(ax, ay);
  if (hi == 0.0) { return 0.0; }
  double ratio = lo / hi;
  return hi * sqrt(1.0 + ratio * ratio);
}
|}

let helper_names = [ "__mc_two_to"; "__mc_sin_poly"; "__mc_cos_poly" ]