(* Type checking for MiniC. Also exports the environment and the
   expression-typing function that [Codegen] reuses, so the two phases
   cannot disagree about promotions. *)

open Ast

exception Type_error of string * int

let err pos msg = raise (Type_error (msg, pos.line))

type fsig = { fs_ret : ty option; fs_params : ty list }

type env = {
  globals : (string, ty) Hashtbl.t;
  funcs : (string, fsig) Hashtbl.t;
  mutable locals : (string * ty) list;  (* innermost first *)
}

let lookup_var env pos name =
  match List.assoc_opt name env.locals with
  | Some t -> t
  | None -> (
      match Hashtbl.find_opt env.globals name with
      | Some t -> t
      | None -> err pos ("unbound variable " ^ name))

let is_arith = function
  | Tint | Tdouble | Tfloat -> true
  | Tarray _ | Tptr _ -> false

(* usual arithmetic conversions, restricted to our three scalar types *)
let promote pos a b =
  match (a, b) with
  | Tdouble, (Tdouble | Tfloat | Tint) | (Tfloat | Tint), Tdouble -> Tdouble
  | Tfloat, (Tfloat | Tint) | Tint, Tfloat -> Tfloat
  | Tint, Tint -> Tint
  | _ -> err pos "arithmetic on non-scalar type"

let rec expr_ty env (e : expr) : ty =
  match e.desc with
  | Int_lit _ -> Tint
  | Float_lit (_, s) ->
      if String.length s > 0 && s.[String.length s - 1] = 'f' then Tfloat
      else Tdouble
  | Var name -> lookup_var env e.pos name
  | Index (a, i) -> begin
      (match expr_ty env i with
      | Tint -> ()
      | t -> err e.pos ("array index must be int, got " ^ ty_to_string t));
      match expr_ty env a with
      | Tarray (t, _) | Tptr t -> t
      | t -> err e.pos ("cannot index " ^ ty_to_string t)
    end
  | Call (name, args) -> begin
      let arg_tys = List.map (expr_ty env) args in
      if Vex.Eval.libm_known name then begin
        let arity = Vex.Eval.libm_arity name in
        if List.length args <> arity then
          err e.pos (Printf.sprintf "%s expects %d arguments" name arity);
        List.iter
          (fun t -> if not (is_arith t) then err e.pos (name ^ ": non-scalar argument"))
          arg_tys;
        Tdouble
      end
      else
        match Hashtbl.find_opt env.funcs name with
        | None -> err e.pos ("unknown function " ^ name)
        | Some fs ->
            if List.length fs.fs_params <> List.length args then
              err e.pos ("wrong number of arguments to " ^ name);
            List.iter2
              (fun expected got ->
                match (expected, got) with
                | t1, t2 when t1 = t2 -> ()
                | (Tint | Tdouble | Tfloat), (Tint | Tdouble | Tfloat) -> ()
                | Tptr t1, (Tarray (t2, _) | Tptr t2) when t1 = t2 -> ()
                | _ ->
                    err e.pos
                      (Printf.sprintf "argument type mismatch in call to %s: %s vs %s"
                         name (ty_to_string expected) (ty_to_string got)))
              fs.fs_params arg_tys;
            (match fs.fs_ret with
            | Some t -> t
            | None -> err e.pos (name ^ " returns void; cannot use its value"))
    end
  | Unary (Neg, a) -> begin
      match expr_ty env a with
      | t when is_arith t -> t
      | t -> err e.pos ("cannot negate " ^ ty_to_string t)
    end
  | Unary (Not, a) -> begin
      match expr_ty env a with
      | t when is_arith t -> Tint
      | t -> err e.pos ("cannot apply ! to " ^ ty_to_string t)
    end
  | Binary ((Add | Sub | Mul | Div), a, b) ->
      promote e.pos (expr_ty env a) (expr_ty env b)
  | Binary (Mod, a, b) -> begin
      match (expr_ty env a, expr_ty env b) with
      | Tint, Tint -> Tint
      | _ -> err e.pos "% requires int operands"
    end
  | Binary ((Lt | Le | Gt | Ge | Eq | Ne), a, b) ->
      ignore (promote e.pos (expr_ty env a) (expr_ty env b));
      Tint
  | Binary ((And | Or), a, b) ->
      let ta = expr_ty env a and tb = expr_ty env b in
      if is_arith ta && is_arith tb then Tint
      else err e.pos "&&/|| require scalar operands"
  | Cast (t, a) ->
      let ta = expr_ty env a in
      if is_arith t && is_arith ta then t
      else err e.pos "invalid cast"

let rec check_stmt env (ret : ty option) (s : stmt) : unit =
  match s.sdesc with
  | Decl (t, name, init) ->
      (match init with
      | Some e ->
          let te = expr_ty env e in
          if not (is_arith te && is_arith t) then
            err s.spos ("cannot initialize " ^ name)
      | None -> ());
      env.locals <- (name, t) :: env.locals
  | Assign (name, e) ->
      let tv = lookup_var env s.spos name and te = expr_ty env e in
      if not (is_arith tv && is_arith te) then
        err s.spos ("cannot assign to " ^ name)
  | Store (name, idx, e) -> begin
      (match expr_ty env idx with
      | Tint -> ()
      | _ -> err s.spos "array index must be int");
      let te = expr_ty env e in
      match lookup_var env s.spos name with
      | Tarray (t, _) | Tptr t ->
          if not (is_arith t && is_arith te) then err s.spos "bad element store"
      | t -> err s.spos ("cannot index " ^ ty_to_string t)
    end
  | If (c, then_, else_) ->
      if not (is_arith (expr_ty env c)) then err s.spos "condition must be scalar";
      check_block env ret then_;
      check_block env ret else_
  | While (c, body) ->
      if not (is_arith (expr_ty env c)) then err s.spos "condition must be scalar";
      check_block env ret body
  | For (init, cond, step, body) ->
      let saved = env.locals in
      (match init with Some st -> check_stmt env ret st | None -> ());
      (match cond with
      | Some c ->
          if not (is_arith (expr_ty env c)) then err s.spos "condition must be scalar"
      | None -> ());
      (match step with Some st -> check_stmt env ret st | None -> ());
      check_block env ret body;
      env.locals <- saved
  | Return None ->
      if ret <> None then err s.spos "missing return value"
  | Return (Some e) -> begin
      let te = expr_ty env e in
      match ret with
      | None -> err s.spos "returning a value from void function"
      | Some t ->
          if not (is_arith t && is_arith te) then err s.spos "bad return type"
    end
  | Expr e -> ignore (expr_ty_allow_void env e)
  | Print e ->
      if not (is_arith (expr_ty env e)) then err s.spos "print needs a scalar"
  | Mark e ->
      if not (is_arith (expr_ty env e)) then err s.spos "__mark needs a scalar"
  | Break | Continue -> ()

and expr_ty_allow_void env (e : expr) : ty option =
  match e.desc with
  | Call (name, args) when not (Vex.Eval.libm_known name) -> begin
      match Hashtbl.find_opt env.funcs name with
      | Some { fs_ret = None; fs_params } ->
          if List.length fs_params <> List.length args then
            err e.pos ("wrong number of arguments to " ^ name);
          List.iter (fun a -> ignore (expr_ty env a)) args;
          None
      | _ -> Some (expr_ty env e)
    end
  | _ -> Some (expr_ty env e)

and check_block env ret stmts =
  let saved = env.locals in
  List.iter (check_stmt env ret) stmts;
  env.locals <- saved

let build_env (p : program) : env =
  let env =
    { globals = Hashtbl.create 16; funcs = Hashtbl.create 16; locals = [] }
  in
  List.iter
    (fun g ->
      if Hashtbl.mem env.globals g.gname then
        err g.gpos ("duplicate global " ^ g.gname);
      Hashtbl.add env.globals g.gname g.gty)
    p.globals;
  List.iter
    (fun f ->
      if Hashtbl.mem env.funcs f.fname then
        err f.fpos ("duplicate function " ^ f.fname);
      Hashtbl.add env.funcs f.fname
        { fs_ret = f.ret; fs_params = List.map fst f.params })
    p.funcs;
  env

let check (p : program) : env =
  let env = build_env p in
  List.iter
    (fun g ->
      match g.ginit with
      | Some e ->
          if not (is_arith (expr_ty env e)) then
            err g.gpos ("bad initializer for " ^ g.gname)
      | None -> ())
    p.globals;
  List.iter
    (fun f ->
      env.locals <- List.map (fun (t, n) -> (n, t)) f.params;
      check_block env f.ret f.body;
      env.locals <- [])
    p.funcs;
  if not (Hashtbl.mem env.funcs "main") then
    raise (Type_error ("program has no main function", 0));
  env
