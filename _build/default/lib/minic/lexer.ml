(* Hand-written lexer for MiniC. *)

type token =
  | INT_LIT of int64
  | FLOAT_LIT of float * string  (* value, original spelling *)
  | IDENT of string
  | KW_INT
  | KW_DOUBLE
  | KW_FLOAT
  | KW_VOID
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_FOR
  | KW_RETURN
  | KW_BREAK
  | KW_CONTINUE
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | ASSIGN
  | LT
  | LE
  | GT
  | GE
  | EQ
  | NE
  | ANDAND
  | OROR
  | BANG
  | EOF

exception Lex_error of string * int  (* message, line *)

type t = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable tok : token;
  mutable tok_line : int;
}

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident c = is_ident_start c || is_digit c

let keyword_of = function
  | "int" -> Some KW_INT
  | "double" -> Some KW_DOUBLE
  | "float" -> Some KW_FLOAT
  | "void" -> Some KW_VOID
  | "if" -> Some KW_IF
  | "else" -> Some KW_ELSE
  | "while" -> Some KW_WHILE
  | "for" -> Some KW_FOR
  | "return" -> Some KW_RETURN
  | "break" -> Some KW_BREAK
  | "continue" -> Some KW_CONTINUE
  | _ -> None

let rec skip_ws lx =
  if lx.pos >= String.length lx.src then ()
  else
    match lx.src.[lx.pos] with
    | ' ' | '\t' | '\r' ->
        lx.pos <- lx.pos + 1;
        skip_ws lx
    | '\n' ->
        lx.pos <- lx.pos + 1;
        lx.line <- lx.line + 1;
        skip_ws lx
    | '/' when lx.pos + 1 < String.length lx.src && lx.src.[lx.pos + 1] = '/' ->
        while lx.pos < String.length lx.src && lx.src.[lx.pos] <> '\n' do
          lx.pos <- lx.pos + 1
        done;
        skip_ws lx
    | '/' when lx.pos + 1 < String.length lx.src && lx.src.[lx.pos + 1] = '*' ->
        lx.pos <- lx.pos + 2;
        let rec find () =
          if lx.pos + 1 >= String.length lx.src then
            raise (Lex_error ("unterminated comment", lx.line))
          else if lx.src.[lx.pos] = '*' && lx.src.[lx.pos + 1] = '/' then
            lx.pos <- lx.pos + 2
          else begin
            if lx.src.[lx.pos] = '\n' then lx.line <- lx.line + 1;
            lx.pos <- lx.pos + 1;
            find ()
          end
        in
        find ();
        skip_ws lx
    | _ -> ()

let scan_number lx =
  let start = lx.pos in
  while lx.pos < String.length lx.src && is_digit lx.src.[lx.pos] do
    lx.pos <- lx.pos + 1
  done;
  let is_float = ref false in
  if lx.pos < String.length lx.src && lx.src.[lx.pos] = '.' then begin
    is_float := true;
    lx.pos <- lx.pos + 1;
    while lx.pos < String.length lx.src && is_digit lx.src.[lx.pos] do
      lx.pos <- lx.pos + 1
    done
  end;
  if
    lx.pos < String.length lx.src
    && (lx.src.[lx.pos] = 'e' || lx.src.[lx.pos] = 'E')
  then begin
    is_float := true;
    lx.pos <- lx.pos + 1;
    if
      lx.pos < String.length lx.src
      && (lx.src.[lx.pos] = '+' || lx.src.[lx.pos] = '-')
    then lx.pos <- lx.pos + 1;
    while lx.pos < String.length lx.src && is_digit lx.src.[lx.pos] do
      lx.pos <- lx.pos + 1
    done
  end;
  let has_f_suffix =
    lx.pos < String.length lx.src
    && (lx.src.[lx.pos] = 'f' || lx.src.[lx.pos] = 'F')
  in
  let text = String.sub lx.src start (lx.pos - start) in
  if has_f_suffix then lx.pos <- lx.pos + 1;
  if !is_float || has_f_suffix then
    FLOAT_LIT (float_of_string text, text ^ if has_f_suffix then "f" else "")
  else INT_LIT (Int64.of_string text)

let next_token lx =
  skip_ws lx;
  lx.tok_line <- lx.line;
  if lx.pos >= String.length lx.src then EOF
  else begin
    let c = lx.src.[lx.pos] in
    let two s tok1 tok2 =
      if lx.pos + 1 < String.length lx.src && lx.src.[lx.pos + 1] = s then begin
        lx.pos <- lx.pos + 2;
        tok2
      end
      else begin
        lx.pos <- lx.pos + 1;
        tok1
      end
    in
    if is_digit c then scan_number lx
    else if is_ident_start c then begin
      let start = lx.pos in
      while lx.pos < String.length lx.src && is_ident lx.src.[lx.pos] do
        lx.pos <- lx.pos + 1
      done;
      let name = String.sub lx.src start (lx.pos - start) in
      match keyword_of name with Some k -> k | None -> IDENT name
    end
    else
      match c with
      | '(' -> lx.pos <- lx.pos + 1; LPAREN
      | ')' -> lx.pos <- lx.pos + 1; RPAREN
      | '{' -> lx.pos <- lx.pos + 1; LBRACE
      | '}' -> lx.pos <- lx.pos + 1; RBRACE
      | '[' -> lx.pos <- lx.pos + 1; LBRACKET
      | ']' -> lx.pos <- lx.pos + 1; RBRACKET
      | ';' -> lx.pos <- lx.pos + 1; SEMI
      | ',' -> lx.pos <- lx.pos + 1; COMMA
      | '+' -> lx.pos <- lx.pos + 1; PLUS
      | '-' -> lx.pos <- lx.pos + 1; MINUS
      | '*' -> lx.pos <- lx.pos + 1; STAR
      | '/' -> lx.pos <- lx.pos + 1; SLASH
      | '%' -> lx.pos <- lx.pos + 1; PERCENT
      | '=' -> two '=' ASSIGN EQ
      | '<' -> two '=' LT LE
      | '>' -> two '=' GT GE
      | '!' -> two '=' BANG NE
      | '&' ->
          if lx.pos + 1 < String.length lx.src && lx.src.[lx.pos + 1] = '&'
          then begin
            lx.pos <- lx.pos + 2;
            ANDAND
          end
          else raise (Lex_error ("unexpected '&'", lx.line))
      | '|' ->
          if lx.pos + 1 < String.length lx.src && lx.src.[lx.pos + 1] = '|'
          then begin
            lx.pos <- lx.pos + 2;
            OROR
          end
          else raise (Lex_error ("unexpected '|'", lx.line))
      | c -> raise (Lex_error (Printf.sprintf "unexpected character %C" c, lx.line))
  end

let create src =
  let lx = { src; pos = 0; line = 1; tok = EOF; tok_line = 1 } in
  lx.tok <- next_token lx;
  lx

let peek lx = lx.tok
let token_line lx = lx.tok_line
let advance lx = lx.tok <- next_token lx

let token_to_string = function
  | INT_LIT i -> Int64.to_string i
  | FLOAT_LIT (_, s) -> s
  | IDENT s -> s
  | KW_INT -> "int"
  | KW_DOUBLE -> "double"
  | KW_FLOAT -> "float"
  | KW_VOID -> "void"
  | KW_IF -> "if"
  | KW_ELSE -> "else"
  | KW_WHILE -> "while"
  | KW_FOR -> "for"
  | KW_RETURN -> "return"
  | KW_BREAK -> "break"
  | KW_CONTINUE -> "continue"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | SEMI -> ";"
  | COMMA -> ","
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PERCENT -> "%"
  | ASSIGN -> "="
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | EQ -> "=="
  | NE -> "!="
  | ANDAND -> "&&"
  | OROR -> "||"
  | BANG -> "!"
  | EOF -> "<eof>"
