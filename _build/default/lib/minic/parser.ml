(* Recursive-descent parser for MiniC. *)

open Ast

exception Parse_error of string * int

let error lx msg =
  raise (Parse_error (msg ^ " (got " ^ Lexer.token_to_string (Lexer.peek lx) ^ ")",
                      Lexer.token_line lx))

let expect lx tok what =
  if Lexer.peek lx = tok then Lexer.advance lx else error lx ("expected " ^ what)

let pos_of lx = { line = Lexer.token_line lx }

let parse_base_ty lx : ty option =
  match Lexer.peek lx with
  | Lexer.KW_INT -> Lexer.advance lx; Some Tint
  | Lexer.KW_DOUBLE -> Lexer.advance lx; Some Tdouble
  | Lexer.KW_FLOAT -> Lexer.advance lx; Some Tfloat
  | _ -> None

(* precedence climbing: level 0 lowest (||) *)
let binop_of_token = function
  | Lexer.OROR -> Some (Or, 0)
  | Lexer.ANDAND -> Some (And, 1)
  | Lexer.EQ -> Some (Eq, 2)
  | Lexer.NE -> Some (Ne, 2)
  | Lexer.LT -> Some (Lt, 3)
  | Lexer.LE -> Some (Le, 3)
  | Lexer.GT -> Some (Gt, 3)
  | Lexer.GE -> Some (Ge, 3)
  | Lexer.PLUS -> Some (Add, 4)
  | Lexer.MINUS -> Some (Sub, 4)
  | Lexer.STAR -> Some (Mul, 5)
  | Lexer.SLASH -> Some (Div, 5)
  | Lexer.PERCENT -> Some (Mod, 5)
  | _ -> None

let rec parse_expr lx = parse_binary lx 0

and parse_binary lx min_prec =
  let lhs = ref (parse_unary lx) in
  let continue = ref true in
  while !continue do
    match binop_of_token (Lexer.peek lx) with
    | Some (op, prec) when prec >= min_prec ->
        let pos = pos_of lx in
        Lexer.advance lx;
        let rhs = parse_binary lx (prec + 1) in
        lhs := { desc = Binary (op, !lhs, rhs); pos }
    | Some _ | None -> continue := false
  done;
  !lhs

and parse_unary lx =
  let pos = pos_of lx in
  match Lexer.peek lx with
  | Lexer.MINUS ->
      Lexer.advance lx;
      { desc = Unary (Neg, parse_unary lx); pos }
  | Lexer.BANG ->
      Lexer.advance lx;
      { desc = Unary (Not, parse_unary lx); pos }
  | Lexer.LPAREN -> begin
      (* either a cast or a parenthesized expression: look for a type *)
      Lexer.advance lx;
      match parse_base_ty lx with
      | Some t ->
          expect lx Lexer.RPAREN ")";
          { desc = Cast (t, parse_unary lx); pos }
      | None ->
          let e = parse_expr lx in
          expect lx Lexer.RPAREN ")";
          parse_postfix lx e
    end
  | _ -> parse_primary lx

and parse_postfix lx e =
  match Lexer.peek lx with
  | Lexer.LBRACKET ->
      let pos = pos_of lx in
      Lexer.advance lx;
      let idx = parse_expr lx in
      expect lx Lexer.RBRACKET "]";
      parse_postfix lx { desc = Index (e, idx); pos }
  | _ -> e

and parse_primary lx =
  let pos = pos_of lx in
  match Lexer.peek lx with
  | Lexer.INT_LIT i ->
      Lexer.advance lx;
      { desc = Int_lit i; pos }
  | Lexer.FLOAT_LIT (f, s) ->
      Lexer.advance lx;
      { desc = Float_lit (f, s); pos }
  | Lexer.IDENT name -> begin
      Lexer.advance lx;
      match Lexer.peek lx with
      | Lexer.LPAREN ->
          Lexer.advance lx;
          let args = parse_args lx in
          expect lx Lexer.RPAREN ")";
          parse_postfix lx { desc = Call (name, args); pos }
      | _ -> parse_postfix lx { desc = Var name; pos }
    end
  | _ -> error lx "expected expression"

and parse_args lx =
  if Lexer.peek lx = Lexer.RPAREN then []
  else begin
    let rec more acc =
      if Lexer.peek lx = Lexer.COMMA then begin
        Lexer.advance lx;
        more (parse_expr lx :: acc)
      end
      else List.rev acc
    in
    more [ parse_expr lx ]
  end

let rec parse_stmt lx : stmt =
  let spos = pos_of lx in
  match Lexer.peek lx with
  | Lexer.KW_IF ->
      Lexer.advance lx;
      expect lx Lexer.LPAREN "(";
      let cond = parse_expr lx in
      expect lx Lexer.RPAREN ")";
      let then_ = parse_block_or_stmt lx in
      let else_ =
        if Lexer.peek lx = Lexer.KW_ELSE then begin
          Lexer.advance lx;
          parse_block_or_stmt lx
        end
        else []
      in
      { sdesc = If (cond, then_, else_); spos }
  | Lexer.KW_WHILE ->
      Lexer.advance lx;
      expect lx Lexer.LPAREN "(";
      let cond = parse_expr lx in
      expect lx Lexer.RPAREN ")";
      let body = parse_block_or_stmt lx in
      { sdesc = While (cond, body); spos }
  | Lexer.KW_FOR ->
      Lexer.advance lx;
      expect lx Lexer.LPAREN "(";
      let init =
        if Lexer.peek lx = Lexer.SEMI then None else Some (parse_simple_stmt lx)
      in
      expect lx Lexer.SEMI ";";
      let cond = if Lexer.peek lx = Lexer.SEMI then None else Some (parse_expr lx) in
      expect lx Lexer.SEMI ";";
      let step =
        if Lexer.peek lx = Lexer.RPAREN then None else Some (parse_simple_stmt lx)
      in
      expect lx Lexer.RPAREN ")";
      let body = parse_block_or_stmt lx in
      { sdesc = For (init, cond, step, body); spos }
  | Lexer.KW_BREAK ->
      Lexer.advance lx;
      expect lx Lexer.SEMI ";";
      { sdesc = Break; spos }
  | Lexer.KW_CONTINUE ->
      Lexer.advance lx;
      expect lx Lexer.SEMI ";";
      { sdesc = Continue; spos }
  | Lexer.KW_RETURN ->
      Lexer.advance lx;
      if Lexer.peek lx = Lexer.SEMI then begin
        Lexer.advance lx;
        { sdesc = Return None; spos }
      end
      else begin
        let e = parse_expr lx in
        expect lx Lexer.SEMI ";";
        { sdesc = Return (Some e); spos }
      end
  | _ ->
      let s = parse_simple_stmt lx in
      expect lx Lexer.SEMI ";";
      s

(* declaration / assignment / call, without the trailing semicolon *)
and parse_simple_stmt lx : stmt =
  let spos = pos_of lx in
  match parse_base_ty lx with
  | Some base -> begin
      match Lexer.peek lx with
      | Lexer.IDENT name -> begin
          Lexer.advance lx;
          match Lexer.peek lx with
          | Lexer.LBRACKET ->
              Lexer.advance lx;
              let size =
                match Lexer.peek lx with
                | Lexer.INT_LIT i ->
                    Lexer.advance lx;
                    Int64.to_int i
                | _ -> error lx "expected array size"
              in
              expect lx Lexer.RBRACKET "]";
              { sdesc = Decl (Tarray (base, size), name, None); spos }
          | Lexer.ASSIGN ->
              Lexer.advance lx;
              let e = parse_expr lx in
              { sdesc = Decl (base, name, Some e); spos }
          | _ -> { sdesc = Decl (base, name, None); spos }
        end
      | _ -> error lx "expected identifier after type"
    end
  | None -> begin
      match Lexer.peek lx with
      | Lexer.IDENT name -> begin
          Lexer.advance lx;
          match Lexer.peek lx with
          | Lexer.ASSIGN ->
              Lexer.advance lx;
              let e = parse_expr lx in
              { sdesc = Assign (name, e); spos }
          | Lexer.LBRACKET ->
              Lexer.advance lx;
              let idx = parse_expr lx in
              expect lx Lexer.RBRACKET "]";
              if Lexer.peek lx = Lexer.ASSIGN then begin
                Lexer.advance lx;
                let e = parse_expr lx in
                { sdesc = Store (name, idx, e); spos }
              end
              else error lx "expected = after a[i]"
          | Lexer.LPAREN ->
              Lexer.advance lx;
              let args = parse_args lx in
              expect lx Lexer.RPAREN ")";
              if name = "print" then begin
                match args with
                | [ e ] -> { sdesc = Print e; spos }
                | _ -> error lx "print takes one argument"
              end
              else if name = "__mark" then begin
                match args with
                | [ e ] -> { sdesc = Mark e; spos }
                | _ -> error lx "__mark takes one argument"
              end
              else { sdesc = Expr { desc = Call (name, args); pos = spos }; spos }
          | _ -> error lx "expected statement"
        end
      | _ -> error lx "expected statement"
    end

and parse_block_or_stmt lx : stmt list =
  if Lexer.peek lx = Lexer.LBRACE then begin
    Lexer.advance lx;
    let rec go acc =
      if Lexer.peek lx = Lexer.RBRACE then begin
        Lexer.advance lx;
        List.rev acc
      end
      else go (parse_stmt lx :: acc)
    in
    go []
  end
  else [ parse_stmt lx ]

(* top level: globals and functions *)
let parse_program ~file src : program =
  let lx = Lexer.create src in
  let globals = ref [] and funcs = ref [] in
  let rec top () =
    if Lexer.peek lx = Lexer.EOF then ()
    else begin
      let fpos = pos_of lx in
      let ret =
        match Lexer.peek lx with
        | Lexer.KW_VOID ->
            Lexer.advance lx;
            None
        | _ -> (
            match parse_base_ty lx with
            | Some t -> Some t
            | None -> error lx "expected type at top level")
      in
      let name =
        match Lexer.peek lx with
        | Lexer.IDENT n ->
            Lexer.advance lx;
            n
        | _ -> error lx "expected name at top level"
      in
      match Lexer.peek lx with
      | Lexer.LPAREN ->
          (* function definition *)
          Lexer.advance lx;
          let params = parse_params lx in
          expect lx Lexer.RPAREN ")";
          expect lx Lexer.LBRACE "{";
          let rec body acc =
            if Lexer.peek lx = Lexer.RBRACE then begin
              Lexer.advance lx;
              List.rev acc
            end
            else body (parse_stmt lx :: acc)
          in
          let body = body [] in
          funcs := { fname = name; ret; params; body; fpos } :: !funcs;
          top ()
      | Lexer.LBRACKET ->
          Lexer.advance lx;
          let size =
            match Lexer.peek lx with
            | Lexer.INT_LIT i ->
                Lexer.advance lx;
                Int64.to_int i
            | _ -> error lx "expected array size"
          in
          expect lx Lexer.RBRACKET "]";
          expect lx Lexer.SEMI ";";
          let base = match ret with Some t -> t | None -> error lx "void array" in
          globals :=
            { gty = Tarray (base, size); gname = name; ginit = None; gpos = fpos }
            :: !globals;
          top ()
      | Lexer.ASSIGN ->
          Lexer.advance lx;
          let e = parse_expr lx in
          expect lx Lexer.SEMI ";";
          let base = match ret with Some t -> t | None -> error lx "void global" in
          globals :=
            { gty = base; gname = name; ginit = Some e; gpos = fpos } :: !globals;
          top ()
      | Lexer.SEMI ->
          Lexer.advance lx;
          let base = match ret with Some t -> t | None -> error lx "void global" in
          globals :=
            { gty = base; gname = name; ginit = None; gpos = fpos } :: !globals;
          top ()
      | _ -> error lx "expected (, [, = or ; at top level"
    end
  and parse_params lx =
    if Lexer.peek lx = Lexer.RPAREN then []
    else begin
      let rec one () =
        let t =
          match parse_base_ty lx with
          | Some t -> t
          | None -> error lx "expected parameter type"
        in
        let n =
          match Lexer.peek lx with
          | Lexer.IDENT n ->
              Lexer.advance lx;
              n
          | _ -> error lx "expected parameter name"
        in
        let t =
          if Lexer.peek lx = Lexer.LBRACKET then begin
            Lexer.advance lx;
            expect lx Lexer.RBRACKET "]";
            Tptr t
          end
          else t
        in
        if Lexer.peek lx = Lexer.COMMA then begin
          Lexer.advance lx;
          (t, n) :: one ()
        end
        else [ (t, n) ]
      in
      one ()
    end
  in
  top ();
  { globals = List.rev !globals; funcs = List.rev !funcs; source_file = file }
