(* MiniC -> VEX code generation. The produced code deliberately mirrors
   what gcc -O0/-O1 emits for x86-64 and what Valgrind then sees:

   - every named variable lives in the memory stack frame, with VEX
     temporaries only carrying values within one superblock;
   - calls push a return block index and the caller's frame pointer, so
     control returns through an indirect jump (as through a return
     address);
   - unary minus and fabs on doubles compile to XOR/AND bit tricks on the
     reinterpreted value, which the analysis must recognize (paper 5.4);
   - transcendental math goes through Dirty "library calls" when libm
     wrapping is on, and through the MiniC math library when off. *)

open Ast

let sp_off = 0 (* I64: stack pointer *)
let fp_off = 8 (* I64: frame pointer *)
let ret_off = 16 (* untyped 8-byte return-value register *)
let global_base = 64

exception Codegen_error of string

type layout = {
  l_params : (string * ty * int) list; (* name, type, frame offset *)
  l_frame : int; (* total frame size in bytes *)
}

type ctx = {
  env : Typecheck.env;
  pb : Vex.Builder.prog_builder;
  mutable b : Vex.Builder.t;
  file : string;
  mutable fname : string;
  mutable scope : (string * (ty * int)) list; (* local -> (type, frame offset) *)
  mutable alloc : int; (* next free frame offset *)
  layouts : (string, layout) Hashtbl.t;
  global_addrs : (string, int * ty) Hashtbl.t;
  cfg : Normalize.config;
  vectorize : bool;  (* auto-vectorize elementwise double loops to SSE *)
  mutable terminated : bool;
  mutable loop_labels : (string * string) list;
      (* innermost first: (continue target = loop head, break target) *)
  stack_base : int;
}

let scalar_vex_ty = function
  | Tint -> Vex.Ir.I64
  | Tdouble -> Vex.Ir.F64
  | Tfloat -> Vex.Ir.F32
  | Tarray _ | Tptr _ -> Vex.Ir.I64 (* an address *)

let elem_size = function
  | Tfloat -> 4
  | Tint | Tdouble -> 8
  | Tarray _ | Tptr _ -> raise (Codegen_error "nested arrays unsupported")

let slot_size = function
  | Tarray (elt, n) -> ((n * elem_size elt) + 7) / 8 * 8
  | Tint | Tdouble | Tfloat | Tptr _ -> 8

(* ---------- frame layout ---------- *)

let rec stmt_frame_bytes (s : stmt) : int =
  match s.sdesc with
  | Decl (t, _, _) -> slot_size t
  | If (_, a, b) -> block_frame_bytes a + block_frame_bytes b
  | While (_, body) -> block_frame_bytes body
  | For (i, _, st, body) ->
      (match i with Some x -> stmt_frame_bytes x | None -> 0)
      + (match st with Some x -> stmt_frame_bytes x | None -> 0)
      + block_frame_bytes body
  | Assign _ | Store _ | Return _ | Expr _ | Print _ | Mark _ | Break
  | Continue ->
      0

and block_frame_bytes stmts =
  List.fold_left (fun acc s -> acc + stmt_frame_bytes s) 0 stmts

let compute_layout (f : func) : layout =
  let off = ref 16 in
  let params =
    List.map
      (fun (t, n) ->
        let o = !off in
        off := !off + slot_size t;
        (n, t, o))
      f.params
  in
  let frame = !off + block_frame_bytes f.body in
  { l_params = params; l_frame = ((frame + 15) / 16 * 16) + 16 }

(* ---------- emission helpers ---------- *)

let emit ctx s = Vex.Builder.emit ctx.b s

let assign ctx ty e = Vex.Builder.assign ctx.b ty e

let imark ctx line =
  emit ctx (Vex.Ir.IMark { Vex.Ir.file = ctx.file; line; func = ctx.fname })

(* finish the current block with [next] and start a new one *)
let cut ctx next new_label =
  Vex.Builder.add_block ctx.pb (Vex.Builder.finish ctx.b next);
  ctx.b <- Vex.Builder.create new_label

let fn_label name = "fn_" ^ name

let fresh ctx prefix = Vex.Builder.fresh_label ctx.pb prefix

let read_fp ctx = assign ctx Vex.Ir.I64 (Vex.Ir.Get (fp_off, Vex.Ir.I64))
let read_sp ctx = assign ctx Vex.Ir.I64 (Vex.Ir.Get (sp_off, Vex.Ir.I64))

let addr_add ctx base off =
  if off = 0 then base
  else
    assign ctx Vex.Ir.I64
      (Vex.Ir.Binop (Vex.Ir.Add64, base, Vex.Ir.Const (Vex.Ir.CI64 (Int64.of_int off))))

let lookup_local ctx name = List.assoc_opt name ctx.scope

let lookup_global ctx name = Hashtbl.find_opt ctx.global_addrs name

let var_ty ctx pos name : ty =
  match lookup_local ctx name with
  | Some (t, _) -> t
  | None -> (
      match lookup_global ctx name with
      | Some (_, t) -> t
      | None ->
          raise (Codegen_error (Printf.sprintf "line %d: unbound %s" pos.line name)))

(* the address expression of a named variable's storage *)
let var_addr ctx pos name : Vex.Ir.expr * ty =
  match lookup_local ctx name with
  | Some (t, off) ->
      let fp = read_fp ctx in
      (addr_add ctx fp off, t)
  | None -> (
      match lookup_global ctx name with
      | Some (addr, t) -> (Vex.Ir.Const (Vex.Ir.CI64 (Int64.of_int addr)), t)
      | None ->
          raise (Codegen_error (Printf.sprintf "line %d: unbound %s" pos.line name)))

(* ---------- conversions ---------- *)

let convert ctx (e : Vex.Ir.expr) (from_ty : ty) (to_ty : ty) : Vex.Ir.expr =
  if from_ty = to_ty then e
  else
    match (from_ty, to_ty) with
    | Tint, Tdouble -> assign ctx Vex.Ir.F64 (Vex.Ir.Unop (Vex.Ir.I64toF64, e))
    | Tint, Tfloat -> assign ctx Vex.Ir.F32 (Vex.Ir.Unop (Vex.Ir.I64toF32, e))
    | Tdouble, Tint -> assign ctx Vex.Ir.I64 (Vex.Ir.Unop (Vex.Ir.F64toI64tz, e))
    | Tfloat, Tint -> assign ctx Vex.Ir.I64 (Vex.Ir.Unop (Vex.Ir.F32toI64tz, e))
    | Tfloat, Tdouble -> assign ctx Vex.Ir.F64 (Vex.Ir.Unop (Vex.Ir.F32toF64, e))
    | Tdouble, Tfloat -> assign ctx Vex.Ir.F32 (Vex.Ir.Unop (Vex.Ir.F64toF32, e))
    | _ -> raise (Codegen_error "invalid conversion")

(* gcc-style bit tricks for sign manipulation *)
let negate_double ctx e =
  let bits = assign ctx Vex.Ir.I64 (Vex.Ir.Unop (Vex.Ir.ReinterpF64asI64, e)) in
  let flipped =
    assign ctx Vex.Ir.I64
      (Vex.Ir.Binop
         (Vex.Ir.Xor64, bits, Vex.Ir.Const (Vex.Ir.CI64 Ieee.Bits.sign_flip_mask64)))
  in
  assign ctx Vex.Ir.F64 (Vex.Ir.Unop (Vex.Ir.ReinterpI64asF64, flipped))

let abs_double ctx e =
  let bits = assign ctx Vex.Ir.I64 (Vex.Ir.Unop (Vex.Ir.ReinterpF64asI64, e)) in
  let masked =
    assign ctx Vex.Ir.I64
      (Vex.Ir.Binop
         (Vex.Ir.And64, bits, Vex.Ir.Const (Vex.Ir.CI64 Ieee.Bits.abs_mask64)))
  in
  assign ctx Vex.Ir.F64 (Vex.Ir.Unop (Vex.Ir.ReinterpI64asF64, masked))

(* ---------- expressions ---------- *)

let arith_binop op ty : Vex.Ir.binop =
  match (op, ty) with
  | Add, Tint -> Vex.Ir.Add64
  | Sub, Tint -> Vex.Ir.Sub64
  | Mul, Tint -> Vex.Ir.Mul64
  | Div, Tint -> Vex.Ir.DivS64
  | Mod, Tint -> Vex.Ir.ModS64
  | Add, Tdouble -> Vex.Ir.AddF64
  | Sub, Tdouble -> Vex.Ir.SubF64
  | Mul, Tdouble -> Vex.Ir.MulF64
  | Div, Tdouble -> Vex.Ir.DivF64
  | Add, Tfloat -> Vex.Ir.AddF32
  | Sub, Tfloat -> Vex.Ir.SubF32
  | Mul, Tfloat -> Vex.Ir.MulF32
  | Div, Tfloat -> Vex.Ir.DivF32
  | _ -> raise (Codegen_error "bad arithmetic operator/type")

let rec gen_expr ctx (e : expr) : Vex.Ir.expr * ty =
  match e.desc with
  | Int_lit i -> (Vex.Ir.Const (Vex.Ir.CI64 i), Tint)
  | Float_lit (f, s) ->
      if String.length s > 0 && s.[String.length s - 1] = 'f' then
        (Vex.Ir.Const (Vex.Ir.CF32 f), Tfloat)
      else (Vex.Ir.Const (Vex.Ir.CF64 f), Tdouble)
  | Var name -> begin
      let t = var_ty ctx e.pos name in
      match t with
      | Tarray _ ->
          let addr, _ = var_addr ctx e.pos name in
          (addr, t)
      | Tptr _ ->
          let addr, _ = var_addr ctx e.pos name in
          (assign ctx Vex.Ir.I64 (Vex.Ir.Load (Vex.Ir.I64, addr)), t)
      | Tint | Tdouble | Tfloat ->
          let addr, _ = var_addr ctx e.pos name in
          let vty = scalar_vex_ty t in
          (assign ctx vty (Vex.Ir.Load (vty, addr)), t)
    end
  | Index (a, i) -> begin
      let base, aty = gen_expr ctx a in
      let idx, _ = gen_expr ctx i in
      let elt =
        match aty with
        | Tarray (t, _) | Tptr t -> t
        | _ -> raise (Codegen_error "indexing a non-array")
      in
      let scaled =
        assign ctx Vex.Ir.I64
          (Vex.Ir.Binop
             ( Vex.Ir.Mul64,
               idx,
               Vex.Ir.Const (Vex.Ir.CI64 (Int64.of_int (elem_size elt))) ))
      in
      let addr = assign ctx Vex.Ir.I64 (Vex.Ir.Binop (Vex.Ir.Add64, base, scaled)) in
      let vty = scalar_vex_ty elt in
      (assign ctx vty (Vex.Ir.Load (vty, addr)), elt)
    end
  | Call (name, args) -> gen_inline_call ctx e.pos name args
  | Unary (Neg, a) -> begin
      let v, t = gen_expr ctx a in
      match t with
      | Tint -> (assign ctx Vex.Ir.I64 (Vex.Ir.Unop (Vex.Ir.Neg64, v)), Tint)
      | Tdouble -> (negate_double ctx v, Tdouble)
      | Tfloat ->
          let bits = assign ctx Vex.Ir.I32 (Vex.Ir.Unop (Vex.Ir.ReinterpF32asI32, v)) in
          let wide = assign ctx Vex.Ir.I64 (Vex.Ir.Unop (Vex.Ir.I32toI64u, bits)) in
          let flipped =
            assign ctx Vex.Ir.I64
              (Vex.Ir.Binop
                 (Vex.Ir.Xor64, wide, Vex.Ir.Const (Vex.Ir.CI64 0x80000000L)))
          in
          let narrow = assign ctx Vex.Ir.I32 (Vex.Ir.Unop (Vex.Ir.I64toI32, flipped)) in
          (assign ctx Vex.Ir.F32 (Vex.Ir.Unop (Vex.Ir.ReinterpI32asF32, narrow)), Tfloat)
      | Tarray _ | Tptr _ -> raise (Codegen_error "negating a non-scalar")
    end
  | Unary (Not, a) ->
      let g = gen_cond ctx a in
      let ng = assign ctx Vex.Ir.I1 (Vex.Ir.Unop (Vex.Ir.Not1, g)) in
      (bool_to_int ctx ng, Tint)
  | Binary ((Add | Sub | Mul | Div | Mod) as op, a, b) ->
      let va, ta = gen_expr ctx a in
      let vb, tb = gen_expr ctx b in
      let t = Typecheck.promote e.pos ta tb in
      let va = convert ctx va ta t and vb = convert ctx vb tb t in
      (assign ctx (scalar_vex_ty t) (Vex.Ir.Binop (arith_binop op t, va, vb)), t)
  | Binary ((Lt | Le | Gt | Ge | Eq | Ne | And | Or), _, _) ->
      let g = gen_cond ctx e in
      (bool_to_int ctx g, Tint)
  | Cast (t, a) ->
      let v, ta = gen_expr ctx a in
      (convert ctx v ta t, t)

and bool_to_int ctx (g : Vex.Ir.expr) : Vex.Ir.expr =
  assign ctx Vex.Ir.I64
    (Vex.Ir.ITE (g, Vex.Ir.Const (Vex.Ir.CI64 1L), Vex.Ir.Const (Vex.Ir.CI64 0L)))

(* generate an I1-valued condition *)
and gen_cond ctx (e : expr) : Vex.Ir.expr =
  match e.desc with
  | Binary ((Lt | Le | Gt | Ge | Eq | Ne) as op, a, b) -> begin
      let va, ta = gen_expr ctx a in
      let vb, tb = gen_expr ctx b in
      let t = Typecheck.promote e.pos ta tb in
      let va = convert ctx va ta t and vb = convert ctx vb tb t in
      (* Gt/Ge are lowered by swapping operands, like compilers do *)
      let cmp, x, y =
        match (op, t) with
        | Lt, Tint -> (Vex.Ir.CmpLT64S, va, vb)
        | Le, Tint -> (Vex.Ir.CmpLE64S, va, vb)
        | Gt, Tint -> (Vex.Ir.CmpLT64S, vb, va)
        | Ge, Tint -> (Vex.Ir.CmpLE64S, vb, va)
        | Eq, Tint -> (Vex.Ir.CmpEQ64, va, vb)
        | Ne, Tint -> (Vex.Ir.CmpNE64, va, vb)
        | Lt, Tdouble -> (Vex.Ir.CmpLTF64, va, vb)
        | Le, Tdouble -> (Vex.Ir.CmpLEF64, va, vb)
        | Gt, Tdouble -> (Vex.Ir.CmpLTF64, vb, va)
        | Ge, Tdouble -> (Vex.Ir.CmpLEF64, vb, va)
        | Eq, Tdouble -> (Vex.Ir.CmpEQF64, va, vb)
        | Ne, Tdouble -> (Vex.Ir.CmpNEF64, va, vb)
        | Lt, Tfloat -> (Vex.Ir.CmpLTF32, va, vb)
        | Le, Tfloat -> (Vex.Ir.CmpLEF32, va, vb)
        | Gt, Tfloat -> (Vex.Ir.CmpLTF32, vb, va)
        | Ge, Tfloat -> (Vex.Ir.CmpLEF32, vb, va)
        | Eq, Tfloat -> (Vex.Ir.CmpEQF32, va, vb)
        | Ne, Tfloat ->
            (* no CmpNEF32 op: negate the equality *)
            (Vex.Ir.CmpEQF32, va, vb)
        | _ -> raise (Codegen_error "bad comparison type")
      in
      let g = assign ctx Vex.Ir.I1 (Vex.Ir.Binop (cmp, x, y)) in
      if op = Ne && t = Tfloat then
        assign ctx Vex.Ir.I1 (Vex.Ir.Unop (Vex.Ir.Not1, g))
      else g
    end
  | Binary (And, a, b) ->
      let ga = gen_cond ctx a in
      let gb = gen_cond ctx b in
      assign ctx Vex.Ir.I1 (Vex.Ir.ITE (ga, gb, Vex.Ir.Const (Vex.Ir.CBool false)))
  | Binary (Or, a, b) ->
      let ga = gen_cond ctx a in
      let gb = gen_cond ctx b in
      assign ctx Vex.Ir.I1 (Vex.Ir.ITE (ga, Vex.Ir.Const (Vex.Ir.CBool true), gb))
  | Unary (Not, a) ->
      let g = gen_cond ctx a in
      assign ctx Vex.Ir.I1 (Vex.Ir.Unop (Vex.Ir.Not1, g))
  | _ -> begin
      (* scalar truth test: e != 0 *)
      let v, t = gen_expr ctx e in
      match t with
      | Tint ->
          assign ctx Vex.Ir.I1
            (Vex.Ir.Binop (Vex.Ir.CmpNE64, v, Vex.Ir.Const (Vex.Ir.CI64 0L)))
      | Tdouble ->
          assign ctx Vex.Ir.I1
            (Vex.Ir.Binop (Vex.Ir.CmpNEF64, v, Vex.Ir.Const (Vex.Ir.CF64 0.0)))
      | Tfloat ->
          let g =
            assign ctx Vex.Ir.I1
              (Vex.Ir.Binop (Vex.Ir.CmpEQF32, v, Vex.Ir.Const (Vex.Ir.CF32 0.0)))
          in
          assign ctx Vex.Ir.I1 (Vex.Ir.Unop (Vex.Ir.Not1, g))
      | Tarray _ | Tptr _ -> raise (Codegen_error "non-scalar condition")
    end

(* inline (non-block-breaking) builtin calls: hardware float ops and Dirty
   library calls *)
and gen_inline_call ctx pos name args : Vex.Ir.expr * ty =
  if not (Vex.Eval.libm_known name) then
    raise
      (Codegen_error
         (Printf.sprintf "line %d: call to %s survived normalization" pos.line name));
  let gen_double a =
    let v, t = gen_expr ctx a in
    convert ctx v t Tdouble
  in
  match (name, args) with
  | "sqrt", [ a ] ->
      (assign ctx Vex.Ir.F64 (Vex.Ir.Unop (Vex.Ir.SqrtF64, gen_double a)), Tdouble)
  | "fabs", [ a ] -> (abs_double ctx (gen_double a), Tdouble)
  | _ ->
      let vargs = List.map gen_double args in
      let t = Vex.Builder.new_temp ctx.b Vex.Ir.F64 in
      emit ctx (Vex.Ir.Dirty (t, name, vargs));
      (Vex.Ir.RdTmp t, Tdouble)

(* ---------- calls ---------- *)

(* Generate a call to user function [name]; afterwards the current block is
   the continuation block. Returns the return-value expression (reading the
   return register) unless the callee is void. *)
let gen_call ctx pos name (args : expr list) : (Vex.Ir.expr * ty) option =
  let layout =
    match Hashtbl.find_opt ctx.layouts name with
    | Some l -> l
    | None ->
        raise (Codegen_error (Printf.sprintf "line %d: unknown function %s" pos.line name))
  in
  let fsig = Hashtbl.find ctx.env.Typecheck.funcs name in
  let base = read_sp ctx in
  let cont = fresh ctx ("ret_" ^ name) in
  (* return address and saved frame pointer *)
  emit ctx (Vex.Ir.Store (base, Vex.Ir.LabelAddr cont));
  let fp = read_fp ctx in
  emit ctx (Vex.Ir.Store (addr_add ctx base 8, fp));
  (* arguments into the callee frame *)
  List.iter2
    (fun (_, pty, poff) arg ->
      let v, t = gen_expr ctx arg in
      let v =
        match (pty, t) with
        | Tptr _, (Tarray _ | Tptr _) -> v
        | (Tint | Tdouble | Tfloat), (Tint | Tdouble | Tfloat) ->
            convert ctx v t pty
        | _ -> raise (Codegen_error "bad argument")
      in
      emit ctx (Vex.Ir.Store (addr_add ctx base poff, v)))
    layout.l_params args;
  emit ctx (Vex.Ir.Put (sp_off, addr_add ctx base layout.l_frame));
  emit ctx (Vex.Ir.Put (fp_off, base));
  cut ctx (Vex.Ir.Goto (fn_label name)) cont;
  match fsig.Typecheck.fs_ret with
  | None -> None
  | Some rt ->
      let vty = scalar_vex_ty rt in
      Some (assign ctx vty (Vex.Ir.Get (ret_off, vty)), rt)

(* ---------- statements ---------- *)

let alloc_slot ctx t name =
  let off = ctx.alloc in
  ctx.alloc <- ctx.alloc + slot_size t;
  ctx.scope <- (name, (t, off)) :: ctx.scope;
  off

let store_scalar ctx addr (v : Vex.Ir.expr) = emit ctx (Vex.Ir.Store (addr, v))

let gen_return ctx (v : (Vex.Ir.expr * ty) option) ret_ty =
  (match (v, ret_ty) with
  | Some (e, t), Some rt ->
      let e = convert ctx e t rt in
      emit ctx (Vex.Ir.Put (ret_off, e))
  | None, _ -> ()
  | Some _, None -> raise (Codegen_error "value return from void function"));
  let fp = read_fp ctx in
  let ret_idx = assign ctx Vex.Ir.I64 (Vex.Ir.Load (Vex.Ir.I64, fp)) in
  let saved_fp = assign ctx Vex.Ir.I64 (Vex.Ir.Load (Vex.Ir.I64, addr_add ctx fp 8)) in
  emit ctx (Vex.Ir.Put (fp_off, saved_fp));
  emit ctx (Vex.Ir.Put (sp_off, fp));
  ctx.terminated <- true;
  cut ctx (Vex.Ir.IndirectGoto ret_idx) (fresh ctx "dead")

(* ---------- auto-vectorization ----------

   Recognizes the canonical elementwise loop left by desugaring

     for (i = 0; i < N; i = i + 1) { c[i] = a[i] OP b[i]; }

   over double arrays and emits an SSE main loop that processes two
   elements per iteration (packed V128 loads, a 64Fx2 operation, a V128
   store) followed by the ordinary scalar loop as the tail -- the code
   shape gcc -O2 produces, and the reason the analysis must shadow SIMD
   lanes (paper section 5.2). Elementwise same-index accesses cannot
   overlap across lanes, so the transformation needs no alias check. *)

type vector_loop = {
  vl_index : string;
  vl_bound : expr;
  vl_dst : string;
  vl_a : string;
  vl_b : string;
  vl_op : binop;
}

let is_double_array ctx name =
  match lookup_local ctx name with
  | Some ((Tarray (Tdouble, _) | Tptr Tdouble), _) -> true
  | Some _ -> false
  | None -> (
      match lookup_global ctx name with
      | Some (_, Tarray (Tdouble, _)) -> true
      | Some _ | None -> false)

let match_vector_loop ctx (cond : expr) (body : stmt list) : vector_loop option =
  match (cond.desc, body) with
  | ( Binary (Lt, { desc = Var i; _ }, bound),
      [
        {
          sdesc =
            Store
              ( dst,
                { desc = Var i1; _ },
                {
                  desc =
                    Binary
                      ( ((Add | Sub | Mul | Div) as op),
                        { desc = Index ({ desc = Var a; _ }, { desc = Var i2; _ }); _ },
                        { desc = Index ({ desc = Var b; _ }, { desc = Var i3; _ }); _ }
                      );
                  _;
                } );
          _;
        };
        {
          sdesc =
            Assign
              ( i4,
                {
                  desc = Binary (Add, { desc = Var i5; _ }, { desc = Int_lit 1L; _ });
                  _;
                } );
          _;
        };
      ] )
    when i1 = i && i2 = i && i3 = i && i4 = i && i5 = i
         && is_double_array ctx dst && is_double_array ctx a
         && is_double_array ctx b ->
      Some { vl_index = i; vl_bound = bound; vl_dst = dst; vl_a = a; vl_b = b; vl_op = op }
  | _ -> None

let simd_binop = function
  | Add -> Vex.Ir.Add64Fx2
  | Sub -> Vex.Ir.Sub64Fx2
  | Mul -> Vex.Ir.Mul64Fx2
  | Div -> Vex.Ir.Div64Fx2
  | Mod | Lt | Le | Gt | Ge | Eq | Ne | And | Or ->
      raise (Codegen_error "not a vectorizable operator")

(* the base address of a double array variable (decayed) *)
let array_base ctx pos name : Vex.Ir.expr =
  let t = var_ty ctx pos name in
  let addr, _ = var_addr ctx pos name in
  match t with
  | Tarray _ -> addr
  | Tptr _ -> assign ctx Vex.Ir.I64 (Vex.Ir.Load (Vex.Ir.I64, addr))
  | Tint | Tdouble | Tfloat -> raise (Codegen_error "not an array")

(* Emit the packed main loop; the caller then emits the ordinary scalar
   loop which consumes any remaining iterations. *)
let emit_vector_loop ctx (s : stmt) (vl : vector_loop) : unit =
  let pos = s.spos in
  let l_vhead = fresh ctx "vhead"
  and l_vbody = fresh ctx "vbody"
  and l_vexit = fresh ctx "vexit" in
  cut ctx (Vex.Ir.Goto l_vhead) l_vhead;
  imark ctx pos.line;
  (* guard: i + 1 < bound *)
  let iv, _ = gen_expr ctx { desc = Var vl.vl_index; pos } in
  let i1 =
    assign ctx Vex.Ir.I64
      (Vex.Ir.Binop (Vex.Ir.Add64, iv, Vex.Ir.Const (Vex.Ir.CI64 1L)))
  in
  let bv, _ = gen_expr ctx vl.vl_bound in
  let g = assign ctx Vex.Ir.I1 (Vex.Ir.Binop (Vex.Ir.CmpLT64S, i1, bv)) in
  emit ctx (Vex.Ir.Exit (g, l_vbody));
  cut ctx (Vex.Ir.Goto l_vexit) l_vbody;
  imark ctx pos.line;
  (* packed body *)
  let iv, _ = gen_expr ctx { desc = Var vl.vl_index; pos } in
  let byte_off =
    assign ctx Vex.Ir.I64
      (Vex.Ir.Binop (Vex.Ir.Mul64, iv, Vex.Ir.Const (Vex.Ir.CI64 8L)))
  in
  let addr_of name =
    let base = array_base ctx pos name in
    assign ctx Vex.Ir.I64 (Vex.Ir.Binop (Vex.Ir.Add64, base, byte_off))
  in
  let va =
    assign ctx Vex.Ir.V128 (Vex.Ir.Load (Vex.Ir.V128, addr_of vl.vl_a))
  in
  let vb =
    assign ctx Vex.Ir.V128 (Vex.Ir.Load (Vex.Ir.V128, addr_of vl.vl_b))
  in
  let vr =
    assign ctx Vex.Ir.V128 (Vex.Ir.Binop (simd_binop vl.vl_op, va, vb))
  in
  emit ctx (Vex.Ir.Store (addr_of vl.vl_dst, vr));
  (* i = i + 2 *)
  let iv, _ = gen_expr ctx { desc = Var vl.vl_index; pos } in
  let inext =
    assign ctx Vex.Ir.I64
      (Vex.Ir.Binop (Vex.Ir.Add64, iv, Vex.Ir.Const (Vex.Ir.CI64 2L)))
  in
  let iaddr, _ = var_addr ctx pos vl.vl_index in
  emit ctx (Vex.Ir.Store (iaddr, inext));
  cut ctx (Vex.Ir.Goto l_vhead) l_vexit

let rec gen_stmt ctx ret_ty (s : stmt) : unit =
  if ctx.terminated then () (* unreachable code after return *)
  else begin
    imark ctx s.spos.line;
    match s.sdesc with
    | Decl (t, name, init) -> begin
        let off = alloc_slot ctx t name in
        match init with
        | None -> ()
        | Some ({ desc = Call (cname, args); _ } as e)
          when not (Normalize.is_inline_call ctx.cfg cname) -> begin
            match gen_call ctx e.pos cname args with
            | Some (v, vt) ->
                let v = convert ctx v vt t in
                let fp = read_fp ctx in
                store_scalar ctx (addr_add ctx fp off) v
            | None -> raise (Codegen_error "void call used as initializer")
          end
        | Some e ->
            let v, vt = gen_expr ctx e in
            let v = convert ctx v vt t in
            let fp = read_fp ctx in
            store_scalar ctx (addr_add ctx fp off) v
      end
    | Assign (name, e) -> begin
        let t = var_ty ctx s.spos name in
        match e.desc with
        | Call (cname, args) when not (Normalize.is_inline_call ctx.cfg cname) -> begin
            match gen_call ctx e.pos cname args with
            | Some (v, vt) ->
                let v = convert ctx v vt t in
                let addr, _ = var_addr ctx s.spos name in
                store_scalar ctx addr v
            | None -> raise (Codegen_error "void call used as value")
          end
        | _ ->
            let v, vt = gen_expr ctx e in
            let v = convert ctx v vt t in
            let addr, _ = var_addr ctx s.spos name in
            store_scalar ctx addr v
      end
    | Store (name, idx, e) ->
        let base, aty = gen_expr ctx { desc = Var name; pos = { line = s.spos.line } } in
        let elt =
          match aty with
          | Tarray (t, _) | Tptr t -> t
          | _ -> raise (Codegen_error "storing into a non-array")
        in
        let iv, _ = gen_expr ctx idx in
        let scaled =
          assign ctx Vex.Ir.I64
            (Vex.Ir.Binop
               ( Vex.Ir.Mul64,
                 iv,
                 Vex.Ir.Const (Vex.Ir.CI64 (Int64.of_int (elem_size elt))) ))
        in
        let addr = assign ctx Vex.Ir.I64 (Vex.Ir.Binop (Vex.Ir.Add64, base, scaled)) in
        let v, vt = gen_expr ctx e in
        let v = convert ctx v vt elt in
        store_scalar ctx addr v
    | If (c, then_, else_) ->
        let g = gen_cond ctx c in
        let l_then = fresh ctx "then"
        and l_else = fresh ctx "else"
        and l_join = fresh ctx "join" in
        emit ctx (Vex.Ir.Exit (g, l_then));
        cut ctx (Vex.Ir.Goto l_else) l_then;
        (* then branch *)
        let saved_scope = ctx.scope in
        List.iter (gen_stmt ctx ret_ty) then_;
        ctx.scope <- saved_scope;
        let then_terminated = ctx.terminated in
        ctx.terminated <- false;
        cut ctx (if then_terminated then Vex.Ir.Halt else Vex.Ir.Goto l_join) l_else;
        (* else branch *)
        let saved_scope = ctx.scope in
        List.iter (gen_stmt ctx ret_ty) else_;
        ctx.scope <- saved_scope;
        let else_terminated = ctx.terminated in
        ctx.terminated <- false;
        cut ctx (if else_terminated then Vex.Ir.Halt else Vex.Ir.Goto l_join) l_join
    | While (c, body) ->
        (if ctx.vectorize then
           match match_vector_loop ctx c body with
           | Some vl -> emit_vector_loop ctx s vl
           | None -> ());
        let l_head = fresh ctx "head"
        and l_body = fresh ctx "body"
        and l_exit = fresh ctx "exit" in
        cut ctx (Vex.Ir.Goto l_head) l_head;
        imark ctx s.spos.line;
        let g = gen_cond ctx c in
        emit ctx (Vex.Ir.Exit (g, l_body));
        cut ctx (Vex.Ir.Goto l_exit) l_body;
        let saved_scope = ctx.scope in
        ctx.loop_labels <- (l_head, l_exit) :: ctx.loop_labels;
        List.iter (gen_stmt ctx ret_ty) body;
        ctx.loop_labels <- List.tl ctx.loop_labels;
        ctx.scope <- saved_scope;
        let body_terminated = ctx.terminated in
        ctx.terminated <- false;
        cut ctx (if body_terminated then Vex.Ir.Halt else Vex.Ir.Goto l_head) l_exit
    | For _ -> raise (Codegen_error "for loop survived normalization")
    | Return None -> gen_return ctx None ret_ty
    | Return (Some e) ->
        let v = gen_expr ctx e in
        gen_return ctx (Some v) ret_ty
    | Expr ({ desc = Call (cname, args); pos } as _e)
      when not (Normalize.is_inline_call ctx.cfg cname) ->
        ignore (gen_call ctx pos cname args)
    | Expr e -> ignore (gen_expr ctx e)
    | Print e -> begin
        let v, t = gen_expr ctx e in
        match t with
        | Tint -> emit ctx (Vex.Ir.Out (Vex.Ir.OutInt, v))
        | Tdouble -> emit ctx (Vex.Ir.Out (Vex.Ir.OutFloat, v))
        | Tfloat ->
            let v64 = convert ctx v Tfloat Tdouble in
            emit ctx (Vex.Ir.Out (Vex.Ir.OutFloat, v64))
        | Tarray _ | Tptr _ -> raise (Codegen_error "cannot print a non-scalar")
      end
    | Break -> begin
        match ctx.loop_labels with
        | (_, l_exit) :: _ ->
            ctx.terminated <- true;
            cut ctx (Vex.Ir.Goto l_exit) (fresh ctx "dead")
        | [] -> raise (Codegen_error "break outside a loop")
      end
    | Continue -> begin
        match ctx.loop_labels with
        | (l_head, _) :: _ ->
            ctx.terminated <- true;
            cut ctx (Vex.Ir.Goto l_head) (fresh ctx "dead")
        | [] -> raise (Codegen_error "continue outside a loop")
      end
    | Mark e -> begin
        let v, t = gen_expr ctx e in
        match t with
        | Tdouble -> emit ctx (Vex.Ir.Out (Vex.Ir.OutMark, v))
        | Tfloat | Tint ->
            let v64 = convert ctx v t Tdouble in
            emit ctx (Vex.Ir.Out (Vex.Ir.OutMark, v64))
        | Tarray _ | Tptr _ -> raise (Codegen_error "cannot mark a non-scalar")
      end
  end

(* ---------- functions and the whole program ---------- *)

let gen_func ctx (f : func) : unit =
  ctx.fname <- f.fname;
  ctx.terminated <- false;
  ctx.loop_labels <- [];
  let layout = Hashtbl.find ctx.layouts f.fname in
  ctx.scope <- List.map (fun (n, t, off) -> (n, (t, off))) layout.l_params;
  ctx.alloc <- 16 + List.fold_left (fun a (_, t, _) -> a + slot_size t) 0 layout.l_params;
  ctx.b <- Vex.Builder.create (fn_label f.fname);
  imark ctx f.fpos.line;
  List.iter (gen_stmt ctx f.ret) f.body;
  if not ctx.terminated then begin
    (* implicit return; non-void functions return zero *)
    (match f.ret with
    | None -> gen_return ctx None f.ret
    | Some Tint -> gen_return ctx (Some (Vex.Ir.Const (Vex.Ir.CI64 0L), Tint)) f.ret
    | Some Tdouble ->
        gen_return ctx (Some (Vex.Ir.Const (Vex.Ir.CF64 0.0), Tdouble)) f.ret
    | Some Tfloat ->
        gen_return ctx (Some (Vex.Ir.Const (Vex.Ir.CF32 0.0), Tfloat)) f.ret
    | Some _ -> raise (Codegen_error "bad return type"))
  end;
  (* the trailing dead block left by gen_return *)
  Vex.Builder.add_block ctx.pb (Vex.Builder.finish ctx.b Vex.Ir.Halt);
  ctx.terminated <- false

let generate ?(wrap_libm = true) ?(mathlib_names = []) ?(vectorize = false)
    (env : Typecheck.env) (p : program) : Vex.Ir.prog =
  let cfg = { Normalize.wrap_libm; mathlib_names } in
  let pb = Vex.Builder.create_prog () in
  let global_addrs = Hashtbl.create 16 in
  let next_addr = ref global_base in
  List.iter
    (fun g ->
      Hashtbl.replace global_addrs g.gname (!next_addr, g.gty);
      next_addr := !next_addr + slot_size g.gty)
    p.globals;
  let stack_base = ((!next_addr + 63) / 64 * 64) + 64 in
  let ctx =
    {
      env;
      pb;
      b = Vex.Builder.create "entry";
      file = p.source_file;
      fname = "<startup>";
      scope = [];
      alloc = 0;
      layouts = Hashtbl.create 16;
      global_addrs;
      cfg;
      vectorize;
      terminated = false;
      loop_labels = [];
      stack_base;
    }
  in
  List.iter
    (fun (f : func) -> Hashtbl.replace ctx.layouts f.fname (compute_layout f))
    p.funcs;
  (* entry: set up the stack, run global initializers, call main, halt *)
  imark ctx 0;
  emit ctx
    (Vex.Ir.Put (sp_off, Vex.Ir.Const (Vex.Ir.CI64 (Int64.of_int stack_base))));
  emit ctx (Vex.Ir.Put (fp_off, Vex.Ir.Const (Vex.Ir.CI64 0L)));
  List.iter
    (fun g ->
      match g.ginit with
      | None -> ()
      | Some e ->
          let v, vt = gen_expr ctx e in
          let v = convert ctx v vt g.gty in
          let a, _ = Hashtbl.find ctx.global_addrs g.gname in
          let addr = Vex.Ir.Const (Vex.Ir.CI64 (Int64.of_int a)) in
          emit ctx (Vex.Ir.Store (addr, v)))
    p.globals;
  ignore (gen_call ctx { line = 0 } "main" []);
  Vex.Builder.add_block ctx.pb (Vex.Builder.finish ctx.b Vex.Ir.Halt);
  List.iter (gen_func ctx) p.funcs;
  Vex.Builder.finish_prog ~entry:"entry" pb
