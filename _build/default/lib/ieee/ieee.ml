module B = Bignum.Bigfloat

(* Sign-magnitude to two's-complement-style monotone mapping. *)
let ordinal_of_double f =
  let bits = Int64.bits_of_float f in
  if Int64.compare bits 0L >= 0 then bits else Int64.sub Int64.min_int bits

let double_of_ordinal o =
  if Int64.compare o 0L >= 0 then Int64.float_of_bits o
  else Int64.float_of_bits (Int64.sub Int64.min_int o)

let ulps_between a b =
  match (Float.is_nan a, Float.is_nan b) with
  | true, true -> 0L
  | true, false | false, true -> Int64.max_int
  | false, false ->
      let oa = ordinal_of_double a and ob = ordinal_of_double b in
      let d = Int64.sub (Int64.max oa ob) (Int64.min oa ob) in
      if Int64.compare d 0L < 0 then Int64.max_int else d

let bits_of_error computed correct =
  let u = ulps_between computed correct in
  if Int64.equal u 0L then 0.0
  else if Int64.equal u Int64.max_int then 64.0
  else Float.min 64.0 (Float.log2 (Int64.to_float u +. 1.0))

let error_against_real ~prec computed real =
  ignore prec;
  bits_of_error computed (B.to_float real)

let is_negative_zero f = f = 0.0 && 1.0 /. f = neg_infinity

let double_total_compare a b =
  Int64.compare (ordinal_of_double a) (ordinal_of_double b)

module Bits = struct
  let double_to_int64 = Int64.bits_of_float
  let double_of_int64 = Int64.float_of_bits
  let single_to_int32 f = Int32.bits_of_float f
  let single_of_int32 = Int32.float_of_bits
  let sign_flip_mask64 = 0x8000_0000_0000_0000L
  let abs_mask64 = 0x7FFF_FFFF_FFFF_FFFFL
  let sign_flip_mask32 = 0x8000_0000l
  let abs_mask32 = 0x7FFF_FFFFl
end

module Single = struct
  let of_double f = Int32.float_of_bits (Int32.bits_of_float f)

  (* Rounding the double result to binary32 computes the correctly rounded
     single operation for +,-,*,/,sqrt: the double result carries more than
     2x the significand bits plus a sticky, so no double rounding occurs
     for these ops (Figueroa's theorem). *)
  let add a b = of_double (a +. b)
  let sub a b = of_double (a -. b)
  let mul a b = of_double (a *. b)
  let div a b = of_double (a /. b)
  let sqrt a = of_double (Float.sqrt a)
  let neg a = -.a

  let ordinal f =
    let bits = Int32.bits_of_float f in
    if Int32.compare bits 0l >= 0 then bits else Int32.sub Int32.min_int bits

  let ulps_between a b =
    match (Float.is_nan a, Float.is_nan b) with
    | true, true -> 0l
    | true, false | false, true -> Int32.max_int
    | false, false ->
        let oa = ordinal a and ob = ordinal b in
        let d = Int32.sub (Int32.max oa ob) (Int32.min oa ob) in
        if Int32.compare d 0l < 0 then Int32.max_int else d

  let bits_of_error computed correct =
    let u = ulps_between computed correct in
    if Int32.equal u 0l then 0.0
    else if Int32.equal u Int32.max_int then 32.0
    else Float.min 32.0 (Float.log2 (Int32.to_float u +. 1.0))

  let is_representable f = Float.is_nan f || of_double f = f
end
