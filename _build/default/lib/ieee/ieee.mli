(** IEEE-754 bit-level utilities.

    Provides the ordinal encoding of doubles and singles (mapping the
    floats, in order, onto consecutive integers), ULP distances, and the
    bits-of-error metric ℰ used throughout the Herbgrind analysis: the
    error between a computed float and the correct real answer is the log2
    of their distance in ulps, between 0 (exact) and 64 (wildly wrong).
    Also emulates single-precision arithmetic on top of OCaml's doubles,
    which the VEX machine uses for 32-bit float operations. *)

val ordinal_of_double : float -> int64
(** Monotone encoding: if [a < b] (both non-NaN) then
    [ordinal_of_double a < ordinal_of_double b]. The two zeros share an
    ordinal (they are 0 ulps apart); NaN maps above all. *)

val double_of_ordinal : int64 -> float

val ulps_between : float -> float -> int64
(** Absolute ordinal distance; saturates at [Int64.max_int] when a NaN is
    involved and the other value is not NaN. Returns 0 for two NaNs. *)

val bits_of_error : float -> float -> float
(** [bits_of_error computed correct] = log2(ulps + 1), clamped to
    [0, 64.]; this is ℰ from the paper (following Herbie). *)

val error_against_real : prec:int -> float -> Bignum.Bigfloat.t -> float
(** [error_against_real ~prec computed real] rounds [real] to the nearest
    double and measures {!bits_of_error} against it. *)

val is_negative_zero : float -> bool

val double_total_compare : float -> float -> int
(** Ordinal comparison: -inf < ... < +inf < NaN, with the two zeros
    comparing equal. *)

(** Single-precision (binary32) emulation. A single is represented as the
    double with the same value; every operation rounds through binary32. *)
module Single : sig
  val of_double : float -> float
  (** Round a double to the nearest representable single. *)

  val add : float -> float -> float
  val sub : float -> float -> float
  val mul : float -> float -> float
  val div : float -> float -> float
  val sqrt : float -> float
  val neg : float -> float

  val ordinal : float -> int32
  val ulps_between : float -> float -> int32
  val bits_of_error : float -> float -> float
  (** Like the double version but against the binary32 grid; clamped to
      [0, 32.]. *)

  val is_representable : float -> bool
end

(** Bit-pattern helpers used by the VEX machine for raw loads/stores. *)
module Bits : sig
  val double_to_int64 : float -> int64
  val double_of_int64 : int64 -> float
  val single_to_int32 : float -> int32
  (** Bits of the binary32 nearest to the given value. *)

  val single_of_int32 : int32 -> float

  val sign_flip_mask64 : int64
  (** 0x8000000000000000: XOR negates a double (the gcc trick the analysis
      must recognize, paper section 5.4). *)

  val abs_mask64 : int64
  val sign_flip_mask32 : int32
  val abs_mask32 : int32
end
