(** Arbitrary-precision natural numbers.

    Values are immutable. The representation uses base-[2^31] limbs stored
    little-endian in an [int array] with no leading zero limbs, so every
    mathematical natural has exactly one representation. All operations are
    exact. This module is the foundation of the {!Bigfloat} shadow
    arithmetic that replaces MPFR in this reproduction. *)

type t

val zero : t
val one : t
val two : t

val of_int : int -> t
(** [of_int n] converts a non-negative [int]. Raises [Invalid_argument] on
    negative input. *)

val to_int_opt : t -> int option
(** [to_int_opt n] is [Some i] when [n] fits in a non-negative OCaml [int]. *)

val is_zero : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

val add : t -> t -> t
val sub : t -> t -> t
(** [sub a b] requires [a >= b]; raises [Invalid_argument] otherwise. *)

val mul : t -> t -> t
val mul_int : t -> int -> t
(** [mul_int a k] multiplies by a small non-negative int. *)

val divmod : t -> t -> t * t
(** [divmod a b] is [(q, r)] with [a = q*b + r] and [0 <= r < b]. Raises
    [Division_by_zero] when [b] is zero. *)

val divmod_int : t -> int -> t * int
(** [divmod_int a k] divides by a small positive int. *)

val shift_left : t -> int -> t
val shift_right : t -> int -> t

val bit_length : t -> int
(** [bit_length n] is the position of the highest set bit plus one; 0 for
    zero. *)

val testbit : t -> int -> bool
(** [testbit n i] is bit [i] (little-endian) of [n]. *)

val is_even : t -> bool

val trailing_zeros : t -> int
(** Number of low zero bits; raises [Invalid_argument] on zero. *)

val isqrt : t -> t
(** [isqrt n] is the integer square root, the largest [s] with [s*s <= n]. *)

val pow_int : t -> int -> t
(** [pow_int b e] is [b] raised to the non-negative power [e]. *)

val of_string : string -> t
(** Parse a decimal string of digits. *)

val to_string : t -> string
(** Render in decimal. *)

val to_float : t -> float
(** Nearest [float] (round to nearest even); may be [infinity]. *)

val pp : Format.formatter -> t -> unit
