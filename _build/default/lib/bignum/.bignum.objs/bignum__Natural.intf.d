lib/bignum/natural.mli: Format
