lib/bignum/bigint.ml: Format Natural Stdlib String
