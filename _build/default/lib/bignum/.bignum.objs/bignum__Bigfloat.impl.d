lib/bignum/bigfloat.ml: Bigint Float Format Hashtbl Int64 Natural Stdlib String
