lib/bignum/bigfloat_math.ml: Bigfloat Bigint Float Hashtbl Natural Stdlib
