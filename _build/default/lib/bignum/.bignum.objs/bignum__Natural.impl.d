lib/bignum/natural.ml: Array Buffer Char Format List Printf Stdlib String
