lib/bignum/bigint.mli: Format Natural
