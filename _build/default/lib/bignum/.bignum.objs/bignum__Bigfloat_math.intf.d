lib/bignum/bigfloat_math.mli: Bigfloat
