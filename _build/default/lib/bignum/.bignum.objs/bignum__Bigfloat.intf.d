lib/bignum/bigfloat.mli: Bigint Format Natural
