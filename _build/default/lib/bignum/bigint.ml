type t = { neg : bool; mag : Natural.t }

let make ~neg mag = { neg = neg && not (Natural.is_zero mag); mag }
let zero = make ~neg:false Natural.zero
let one = make ~neg:false Natural.one
let minus_one = make ~neg:true Natural.one
let of_natural mag = make ~neg:false mag

let of_int n =
  if n >= 0 then make ~neg:false (Natural.of_int n)
  else if n = min_int then
    (* -min_int overflows; build it as 2 * (min_int / -2) *)
    make ~neg:true (Natural.shift_left (Natural.of_int (n / -2)) 1)
  else make ~neg:true (Natural.of_int (-n))

let to_int_opt a =
  match Natural.to_int_opt a.mag with
  | Some m -> Some (if a.neg then -m else m)
  | None -> None

let to_natural_opt a = if a.neg then None else Some a.mag
let sign a = if Natural.is_zero a.mag then 0 else if a.neg then -1 else 1
let magnitude a = a.mag
let is_negative a = a.neg
let neg a = make ~neg:(not a.neg) a.mag
let abs a = make ~neg:false a.mag

let add a b =
  if a.neg = b.neg then make ~neg:a.neg (Natural.add a.mag b.mag)
  else begin
    let c = Natural.compare a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then make ~neg:a.neg (Natural.sub a.mag b.mag)
    else make ~neg:b.neg (Natural.sub b.mag a.mag)
  end

let sub a b = add a (neg b)
let mul a b = make ~neg:(a.neg <> b.neg) (Natural.mul a.mag b.mag)

let divmod a b =
  let q, r = Natural.divmod a.mag b.mag in
  (make ~neg:(a.neg <> b.neg) q, make ~neg:a.neg r)

let fdiv a b =
  let q, r = divmod a b in
  if sign r <> 0 && (a.neg <> b.neg) then sub q one else q

let equal a b = a.neg = b.neg && Natural.equal a.mag b.mag

let compare a b =
  match (sign a, sign b) with
  | sa, sb when sa <> sb -> Stdlib.compare sa sb
  | -1, _ -> Natural.compare b.mag a.mag
  | _ -> Natural.compare a.mag b.mag

let of_string s =
  if String.length s > 0 && s.[0] = '-' then
    make ~neg:true (Natural.of_string (String.sub s 1 (String.length s - 1)))
  else Natural.of_string s |> of_natural

let to_string a =
  if a.neg then "-" ^ Natural.to_string a.mag else Natural.to_string a.mag

let to_float a =
  let f = Natural.to_float a.mag in
  if a.neg then -.f else f

let pp fmt a = Format.pp_print_string fmt (to_string a)
