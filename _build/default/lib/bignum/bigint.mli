(** Arbitrary-precision signed integers built on {!Natural}.

    Canonical form: zero carries a positive sign, so structural equality
    coincides with numeric equality. *)

type t

val zero : t
val one : t
val minus_one : t

val of_int : int -> t
val of_natural : Natural.t -> t
val make : neg:bool -> Natural.t -> t

val to_int_opt : t -> int option
val to_natural_opt : t -> Natural.t option

val sign : t -> int
(** -1, 0 or 1. *)

val magnitude : t -> Natural.t
val is_negative : t -> bool
val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val divmod : t -> t -> t * t
(** Euclidean division: remainder has the sign of the dividend, truncating
    toward zero (matching C semantics used by the MiniC front-end). *)

val fdiv : t -> t -> t
(** Floor division (quotient rounded toward negative infinity). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val of_string : string -> t
val to_string : t -> string
val to_float : t -> float
val pp : Format.formatter -> t -> unit
