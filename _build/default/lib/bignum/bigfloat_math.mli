(** Transcendental functions on {!Bigfloat} values.

    Every function takes a target precision [prec] and returns a result
    faithful to within a few ulps at that precision (computed internally
    with 32 or more guard bits; see DESIGN.md for the precision contract).
    Together with {!Bigfloat} this covers the libm surface that Herbgrind
    wraps (paper section 5.4): the shadow real execution calls these to get
    the exact result of client math-library calls.

    Special values follow C99/IEEE-754 conventions (e.g. [log 0 = -inf],
    [atan2 0 0 = 0], [pow 0 0 = 1]). *)

val pi : prec:int -> Bigfloat.t
val ln2 : prec:int -> Bigfloat.t
val exp : prec:int -> Bigfloat.t -> Bigfloat.t
val expm1 : prec:int -> Bigfloat.t -> Bigfloat.t
val exp2 : prec:int -> Bigfloat.t -> Bigfloat.t
val log : prec:int -> Bigfloat.t -> Bigfloat.t
val log1p : prec:int -> Bigfloat.t -> Bigfloat.t
val log2 : prec:int -> Bigfloat.t -> Bigfloat.t
val log10 : prec:int -> Bigfloat.t -> Bigfloat.t
val sin : prec:int -> Bigfloat.t -> Bigfloat.t
val cos : prec:int -> Bigfloat.t -> Bigfloat.t
val tan : prec:int -> Bigfloat.t -> Bigfloat.t
val asin : prec:int -> Bigfloat.t -> Bigfloat.t
val acos : prec:int -> Bigfloat.t -> Bigfloat.t
val atan : prec:int -> Bigfloat.t -> Bigfloat.t
val atan2 : prec:int -> Bigfloat.t -> Bigfloat.t -> Bigfloat.t
val sinh : prec:int -> Bigfloat.t -> Bigfloat.t
val cosh : prec:int -> Bigfloat.t -> Bigfloat.t
val tanh : prec:int -> Bigfloat.t -> Bigfloat.t
val pow : prec:int -> Bigfloat.t -> Bigfloat.t -> Bigfloat.t
val cbrt : prec:int -> Bigfloat.t -> Bigfloat.t
val hypot : prec:int -> Bigfloat.t -> Bigfloat.t -> Bigfloat.t

val fma : prec:int -> Bigfloat.t -> Bigfloat.t -> Bigfloat.t -> Bigfloat.t
(** Correctly rounded [x*y + z] with a single rounding. *)

val fmod : Bigfloat.t -> Bigfloat.t -> Bigfloat.t
(** Exact C [fmod] (remainder of truncating division). *)

val copysign : Bigfloat.t -> Bigfloat.t -> Bigfloat.t
val fdim : prec:int -> Bigfloat.t -> Bigfloat.t -> Bigfloat.t
