(* The CalculiX case study of paper section 3.2 (E2).

   The original is a 105 KLOC finite-element program; the numerical story
   centers on its DVdot routine, a dot product over vectors that vary in
   magnitude and sign (so the running sum suffers catastrophic
   cancellation), and an output comparison in write_float that sometimes
   goes the wrong way as a result. This workload reproduces exactly that
   structure: DVdot kernels feeding a tolerance comparison, with inputs
   provided by the harness. *)

let source ~n ~trials =
  Printf.sprintf
    {|
double va[%d];
double vb[%d];

double DVdot(double a[], double b[], int n) {
  double s = 0.0;
  int i;
  for (i = 0; i < n; i = i + 1) {
    s = s + a[i] * b[i];
  }
  return s;
}

void load_vectors(int trial, int n) {
  int i;
  for (i = 0; i < n; i = i + 1) {
    va[i] = __arg(trial * 2 * n + 2 * i);
    vb[i] = __arg(trial * 2 * n + 2 * i + 1);
  }
}

int main() {
  int t;
  int converged = 0;
  for (t = 0; t < %d; t = t + 1) {
    load_vectors(t, %d);
    double dot = DVdot(va, vb, %d);
    // write_float: the residual's sign decides the branch; cancellation
    // error in the dot product occasionally flips it
    if (dot > 0.0) {
      converged = converged + 1;
    }
    print(dot);
  }
  print(converged);
  return 0;
}
|}
    n n trials n n

(* Inputs engineered like the CalculiX residuals: consecutive products
   nearly cancel in pairs (large stiffness terms of both signs), leaving a
   true residual some fifteen orders of magnitude below the largest term,
   so the running sum cancels catastrophically and the sign of the result
   is occasionally wrong. *)
let inputs ~n ~trials ~seed : float array =
  let state = ref (Int64.of_int ((seed * 2654435761) + 7)) in
  let rand () =
    let x = !state in
    let x = Int64.logxor x (Int64.shift_left x 13) in
    let x = Int64.logxor x (Int64.shift_right_logical x 7) in
    let x = Int64.logxor x (Int64.shift_left x 17) in
    state := x;
    Int64.to_float (Int64.shift_right_logical (Int64.mul x 0x2545F4914F6CDD1DL) 11)
    /. 9007199254740992.0
  in
  let arr = Array.make (trials * 2 * n) 0.0 in
  for t = 0 to trials - 1 do
    let base = t * 2 * n in
    let k = ref 0 in
    while !k < n do
      let a0 = Float.exp (rand () *. 18.4) *. if rand () < 0.5 then 1.0 else -1.0 in
      let b0 = 1.0 +. rand () in
      arr.(base + (2 * !k)) <- a0;
      arr.(base + (2 * !k) + 1) <- b0;
      if !k + 1 < n then begin
        (* the next product cancels this one to ~1e-10 relative *)
        let b1 = 1.0 +. rand () in
        let residual = a0 *. b0 *. 2e-15 *. (rand () -. 0.5) in
        arr.(base + (2 * (!k + 1))) <- (-.(a0 *. b0) +. residual) /. b1;
        arr.(base + (2 * (!k + 1)) + 1) <- b1
      end;
      k := !k + 2
    done
  done;
  arr

let compile ~n ~trials = Minic.compile ~file:"calculix.mc" (source ~n ~trials)

let analyze ?(cfg = Core.Config.default) ~n ~trials ~seed () =
  let prog = compile ~n ~trials in
  Core.Analysis.analyze ~cfg ~max_steps:100_000_000
    ~inputs:(inputs ~n ~trials ~seed)
    prog
