(* Polybench kernels in MiniC (paper section 7, E5/E6).

   Polybench is a suite of static-control numerical kernels; the paper
   runs Herbgrind over all of them to measure how overhead varies between
   independent programs in one style. These are faithful (small-N)
   transcriptions: same loop structure and initialization style, with 2-D
   arrays flattened to 1-D with manual index arithmetic, as the C
   originals are after lowering. Each kernel prints its result array (or a
   row) as output spots.

   The gramschmidt kernel on a rank-deficient input reproduces the paper's
   division-by-zero NaN finding (E6). *)

type kernel = { k_name : string; k_source : int -> string }

let k name f = { k_name = name; k_source = f }

let gemm n =
  Printf.sprintf
    {|
double A[%d];
double B[%d];
double C[%d];
int main() {
  int i; int j; int p;
  int n = %d;
  for (i = 0; i < n; i = i + 1) {
    for (j = 0; j < n; j = j + 1) {
      A[i*n+j] = (double) (i * j %% 7 + 1) / 7.0;
      B[i*n+j] = (double) (i + j %% 5 + 1) / 5.0;
      C[i*n+j] = 0.0;
    }
  }
  for (i = 0; i < n; i = i + 1) {
    for (j = 0; j < n; j = j + 1) {
      C[i*n+j] = C[i*n+j] * 1.2;
      for (p = 0; p < n; p = p + 1) {
        C[i*n+j] = C[i*n+j] + 1.5 * A[i*n+p] * B[p*n+j];
      }
    }
  }
  for (i = 0; i < n; i = i + 1) { print(C[i*n+i]); }
  return 0;
}
|}
    (n * n) (n * n) (n * n) n

let atax n =
  Printf.sprintf
    {|
double A[%d];
double x[%d];
double y[%d];
double tmp[%d];
int main() {
  int i; int j;
  int n = %d;
  for (i = 0; i < n; i = i + 1) {
    x[i] = 1.0 + (double) i / (double) n;
    y[i] = 0.0;
    for (j = 0; j < n; j = j + 1) {
      A[i*n+j] = (double) ((i + j) %% n) / (double) n;
    }
  }
  for (i = 0; i < n; i = i + 1) {
    tmp[i] = 0.0;
    for (j = 0; j < n; j = j + 1) { tmp[i] = tmp[i] + A[i*n+j] * x[j]; }
  }
  for (i = 0; i < n; i = i + 1) {
    for (j = 0; j < n; j = j + 1) { y[j] = y[j] + A[i*n+j] * tmp[i]; }
  }
  for (i = 0; i < n; i = i + 1) { print(y[i]); }
  return 0;
}
|}
    (n * n) n n n n

let bicg n =
  Printf.sprintf
    {|
double A[%d];
double s[%d];
double q[%d];
double p[%d];
double r[%d];
int main() {
  int i; int j;
  int n = %d;
  for (i = 0; i < n; i = i + 1) {
    p[i] = (double) (i %% n) / (double) n;
    r[i] = (double) (i %% n) / (double) n + 0.5;
    s[i] = 0.0;
    q[i] = 0.0;
    for (j = 0; j < n; j = j + 1) {
      A[i*n+j] = (double) (i * (j + 1) %% n) / (double) n;
    }
  }
  for (i = 0; i < n; i = i + 1) {
    for (j = 0; j < n; j = j + 1) {
      s[j] = s[j] + r[i] * A[i*n+j];
      q[i] = q[i] + A[i*n+j] * p[j];
    }
  }
  for (i = 0; i < n; i = i + 1) { print(s[i]); print(q[i]); }
  return 0;
}
|}
    (n * n) n n n n n

let mvt n =
  Printf.sprintf
    {|
double A[%d];
double x1[%d];
double x2[%d];
double y1[%d];
double y2[%d];
int main() {
  int i; int j;
  int n = %d;
  for (i = 0; i < n; i = i + 1) {
    x1[i] = (double) (i %% n) / (double) n;
    x2[i] = (double) ((i + 1) %% n) / (double) n;
    y1[i] = (double) ((i + 3) %% n) / (double) n;
    y2[i] = (double) ((i + 4) %% n) / (double) n;
    for (j = 0; j < n; j = j + 1) {
      A[i*n+j] = (double) (i * j %% n) / (double) n;
    }
  }
  for (i = 0; i < n; i = i + 1) {
    for (j = 0; j < n; j = j + 1) { x1[i] = x1[i] + A[i*n+j] * y1[j]; }
  }
  for (i = 0; i < n; i = i + 1) {
    for (j = 0; j < n; j = j + 1) { x2[i] = x2[i] + A[j*n+i] * y2[j]; }
  }
  for (i = 0; i < n; i = i + 1) { print(x1[i]); print(x2[i]); }
  return 0;
}
|}
    (n * n) n n n n n

let gesummv n =
  Printf.sprintf
    {|
double A[%d];
double B[%d];
double x[%d];
double y[%d];
double tmp[%d];
int main() {
  int i; int j;
  int n = %d;
  for (i = 0; i < n; i = i + 1) {
    x[i] = (double) (i %% n) / (double) n;
    for (j = 0; j < n; j = j + 1) {
      A[i*n+j] = (double) (i * j %% n) / (double) n;
      B[i*n+j] = (double) ((i * j + 1) %% n) / (double) n;
    }
  }
  for (i = 0; i < n; i = i + 1) {
    tmp[i] = 0.0;
    y[i] = 0.0;
    for (j = 0; j < n; j = j + 1) {
      tmp[i] = A[i*n+j] * x[j] + tmp[i];
      y[i] = B[i*n+j] * x[j] + y[i];
    }
    y[i] = 1.5 * tmp[i] + 1.2 * y[i];
  }
  for (i = 0; i < n; i = i + 1) { print(y[i]); }
  return 0;
}
|}
    (n * n) (n * n) n n n n

let trisolv n =
  Printf.sprintf
    {|
double L[%d];
double x[%d];
double bb[%d];
int main() {
  int i; int j;
  int n = %d;
  for (i = 0; i < n; i = i + 1) {
    bb[i] = (double) i / (double) n / 2.0 + 4.0;
    for (j = 0; j < n; j = j + 1) {
      L[i*n+j] = (double) (i + n - j + 1) * 2.0 / (double) n;
    }
  }
  for (i = 0; i < n; i = i + 1) {
    x[i] = bb[i];
    for (j = 0; j < i; j = j + 1) {
      x[i] = x[i] - L[i*n+j] * x[j];
    }
    x[i] = x[i] / L[i*n+i];
  }
  for (i = 0; i < n; i = i + 1) { print(x[i]); }
  return 0;
}
|}
    (n * n) n n n

let cholesky n =
  Printf.sprintf
    {|
double A[%d];
int main() {
  int i; int j; int p;
  int n = %d;
  // positive-definite input: A = I*n + small symmetric part
  for (i = 0; i < n; i = i + 1) {
    for (j = 0; j < n; j = j + 1) {
      double v = 1.0 / (double) (i + j + 1);
      A[i*n+j] = v;
    }
    A[i*n+i] = A[i*n+i] + (double) n;
  }
  for (i = 0; i < n; i = i + 1) {
    for (j = 0; j < i; j = j + 1) {
      for (p = 0; p < j; p = p + 1) {
        A[i*n+j] = A[i*n+j] - A[i*n+p] * A[j*n+p];
      }
      A[i*n+j] = A[i*n+j] / A[j*n+j];
    }
    for (p = 0; p < i; p = p + 1) {
      A[i*n+i] = A[i*n+i] - A[i*n+p] * A[i*n+p];
    }
    A[i*n+i] = sqrt(A[i*n+i]);
  }
  for (i = 0; i < n; i = i + 1) { print(A[i*n+i]); }
  return 0;
}
|}
    (n * n) n

let lu n =
  Printf.sprintf
    {|
double A[%d];
int main() {
  int i; int j; int p;
  int n = %d;
  for (i = 0; i < n; i = i + 1) {
    for (j = 0; j < n; j = j + 1) {
      A[i*n+j] = (double) ((i * j) %% n) / (double) n + 0.02;
    }
    A[i*n+i] = A[i*n+i] + (double) n;
  }
  for (i = 0; i < n; i = i + 1) {
    for (j = 0; j < i; j = j + 1) {
      for (p = 0; p < j; p = p + 1) {
        A[i*n+j] = A[i*n+j] - A[i*n+p] * A[p*n+j];
      }
      A[i*n+j] = A[i*n+j] / A[j*n+j];
    }
    for (j = i; j < n; j = j + 1) {
      for (p = 0; p < i; p = p + 1) {
        A[i*n+j] = A[i*n+j] - A[i*n+p] * A[p*n+j];
      }
    }
  }
  for (i = 0; i < n; i = i + 1) { print(A[i*n+i]); }
  return 0;
}
|}
    (n * n) n

let durbin n =
  Printf.sprintf
    {|
double r[%d];
double y[%d];
double z[%d];
int main() {
  int i; int p;
  int n = %d;
  for (i = 0; i < n; i = i + 1) {
    r[i] = (double) (n + 1 - i) / (double) (2 * n);
  }
  y[0] = -r[0];
  double beta = 1.0;
  double alpha = -r[0];
  for (p = 1; p < n; p = p + 1) {
    beta = (1.0 - alpha * alpha) * beta;
    double sum = 0.0;
    for (i = 0; i < p; i = i + 1) {
      sum = sum + r[p - i - 1] * y[i];
    }
    alpha = -(r[p] + sum) / beta;
    for (i = 0; i < p; i = i + 1) {
      z[i] = y[i] + alpha * y[p - i - 1];
    }
    for (i = 0; i < p; i = i + 1) {
      y[i] = z[i];
    }
    y[p] = alpha;
  }
  for (i = 0; i < n; i = i + 1) { print(y[i]); }
  return 0;
}
|}
    n n n n

let jacobi_1d n =
  Printf.sprintf
    {|
double A[%d];
double B[%d];
int main() {
  int i; int t;
  int n = %d;
  for (i = 0; i < n; i = i + 1) {
    A[i] = ((double) i + 2.0) / (double) n;
    B[i] = ((double) i + 3.0) / (double) n;
  }
  for (t = 0; t < 10; t = t + 1) {
    for (i = 1; i < n - 1; i = i + 1) {
      B[i] = 0.33333 * (A[i-1] + A[i] + A[i+1]);
    }
    for (i = 1; i < n - 1; i = i + 1) {
      A[i] = 0.33333 * (B[i-1] + B[i] + B[i+1]);
    }
  }
  for (i = 0; i < n; i = i + 1) { print(A[i]); }
  return 0;
}
|}
    n n n

(* gramschmidt: [rank_deficient] makes two columns linearly dependent,
   which drives a column norm to zero and the normalization to 0/0 = NaN
   (the paper's finding, E6) *)
let gramschmidt ?(rank_deficient = false) n =
  let init_col =
    if rank_deficient then
      (* column 1 = 2 * column 0 *)
      {|
      if (j == 1) { A[i*n+j] = 2.0 * A[i*n+0]; }
|}
    else ""
  in
  Printf.sprintf
    {|
double A[%d];
double R[%d];
double Q[%d];
int main() {
  int i; int j; int p;
  int n = %d;
  for (i = 0; i < n; i = i + 1) {
    for (j = 0; j < n; j = j + 1) {
      A[i*n+j] = (double) ((i * j %% n) + 1) / (double) n;
      %s
      R[i*n+j] = 0.0;
      Q[i*n+j] = 0.0;
    }
  }
  for (p = 0; p < n; p = p + 1) {
    double nrm = 0.0;
    for (i = 0; i < n; i = i + 1) {
      nrm = nrm + A[i*n+p] * A[i*n+p];
    }
    R[p*n+p] = sqrt(nrm);
    for (i = 0; i < n; i = i + 1) {
      Q[i*n+p] = A[i*n+p] / R[p*n+p];
    }
    for (j = p + 1; j < n; j = j + 1) {
      R[p*n+j] = 0.0;
      for (i = 0; i < n; i = i + 1) {
        R[p*n+j] = R[p*n+j] + Q[i*n+p] * A[i*n+j];
      }
      for (i = 0; i < n; i = i + 1) {
        A[i*n+j] = A[i*n+j] - Q[i*n+p] * R[p*n+j];
      }
    }
  }
  for (i = 0; i < n; i = i + 1) { print(R[i*n+i]); }
  return 0;
}
|}
    (n * n) (n * n) (n * n) n init_col

let two_mm n =
  Printf.sprintf
    {|
double A[%d];
double B[%d];
double C[%d];
double D[%d];
double tmp[%d];
int main() {
  int i; int j; int p;
  int n = %d;
  for (i = 0; i < n; i = i + 1) {
    for (j = 0; j < n; j = j + 1) {
      A[i*n+j] = (double) ((i * j + 1) %% n) / (double) n;
      B[i*n+j] = (double) ((i * (j + 1)) %% n) / (double) n;
      C[i*n+j] = (double) ((i * (j + 3) + 1) %% n) / (double) n;
      D[i*n+j] = (double) ((i * (j + 2)) %% n) / (double) n;
      tmp[i*n+j] = 0.0;
    }
  }
  // D := alpha*A*B*C + beta*D
  for (i = 0; i < n; i = i + 1) {
    for (j = 0; j < n; j = j + 1) {
      for (p = 0; p < n; p = p + 1) {
        tmp[i*n+j] = tmp[i*n+j] + 1.5 * A[i*n+p] * B[p*n+j];
      }
    }
  }
  for (i = 0; i < n; i = i + 1) {
    for (j = 0; j < n; j = j + 1) {
      D[i*n+j] = D[i*n+j] * 1.2;
      for (p = 0; p < n; p = p + 1) {
        D[i*n+j] = D[i*n+j] + tmp[i*n+p] * C[p*n+j];
      }
    }
  }
  for (i = 0; i < n; i = i + 1) { print(D[i*n+i]); }
  return 0;
}
|}
    (n * n) (n * n) (n * n) (n * n) (n * n) n

let syrk n =
  Printf.sprintf
    {|
double A[%d];
double C[%d];
int main() {
  int i; int j; int p;
  int n = %d;
  for (i = 0; i < n; i = i + 1) {
    for (j = 0; j < n; j = j + 1) {
      A[i*n+j] = (double) ((i * j) %% n) / (double) n;
      C[i*n+j] = (double) ((i + j) %% n) / (double) n;
    }
  }
  // C := alpha*A*A^T + beta*C (lower triangle)
  for (i = 0; i < n; i = i + 1) {
    for (j = 0; j <= i; j = j + 1) {
      C[i*n+j] = C[i*n+j] * 1.2;
      for (p = 0; p < n; p = p + 1) {
        C[i*n+j] = C[i*n+j] + 1.5 * A[i*n+p] * A[j*n+p];
      }
    }
  }
  for (i = 0; i < n; i = i + 1) { print(C[i*n+i]); }
  return 0;
}
|}
    (n * n) (n * n) n

let seidel_1d n =
  Printf.sprintf
    {|
double A[%d];
int main() {
  int i; int t;
  int n = %d;
  for (i = 0; i < n; i = i + 1) {
    A[i] = ((double) i + 2.0) / (double) n;
  }
  for (t = 0; t < 12; t = t + 1) {
    for (i = 1; i < n - 1; i = i + 1) {
      A[i] = (A[i-1] + A[i] + A[i+1]) / 3.0;
    }
  }
  for (i = 0; i < n; i = i + 1) { print(A[i]); }
  return 0;
}
|}
    n n

let nussinov_like n =
  (* a dynamic-programming triangle with max accumulation, exercising
     fmax through the analysis *)
  Printf.sprintf
    {|
double S[%d];
int main() {
  int i; int j; int p;
  int n = %d;
  for (i = 0; i < n; i = i + 1) {
    for (j = 0; j < n; j = j + 1) {
      S[i*n+j] = 0.0;
    }
  }
  for (i = n - 1; i >= 0; i = i - 1) {
    for (j = i + 1; j < n; j = j + 1) {
      double best = S[(i+1)*n+(j-1)] + (double) ((i + j) %% 3) * 0.5;
      if (j - 1 >= 0) {
        best = fmax(best, S[i*n+(j-1)]);
      }
      if (i + 1 < n) {
        best = fmax(best, S[(i+1)*n+j]);
      }
      for (p = i + 1; p < j; p = p + 1) {
        best = fmax(best, S[i*n+p] + S[(p+1)*n+j]);
      }
      S[i*n+j] = best;
    }
  }
  print(S[0*n+(n-1)]);
  return 0;
}
|}
    (n * n) n

let covariance n =
  Printf.sprintf
    {|
double data[%d];
double cov[%d];
double mean[%d];
int main() {
  int i; int j; int p;
  int n = %d;
  for (i = 0; i < n; i = i + 1) {
    for (j = 0; j < n; j = j + 1) {
      data[i*n+j] = (double) (i * j %% n) / (double) n + (double) i * 0.1;
    }
  }
  for (j = 0; j < n; j = j + 1) {
    mean[j] = 0.0;
    for (i = 0; i < n; i = i + 1) {
      mean[j] = mean[j] + data[i*n+j];
    }
    mean[j] = mean[j] / (double) n;
  }
  for (i = 0; i < n; i = i + 1) {
    for (j = 0; j < n; j = j + 1) {
      data[i*n+j] = data[i*n+j] - mean[j];
    }
  }
  for (i = 0; i < n; i = i + 1) {
    for (j = i; j < n; j = j + 1) {
      cov[i*n+j] = 0.0;
      for (p = 0; p < n; p = p + 1) {
        cov[i*n+j] = cov[i*n+j] + data[p*n+i] * data[p*n+j];
      }
      cov[i*n+j] = cov[i*n+j] / ((double) n - 1.0);
      cov[j*n+i] = cov[i*n+j];
    }
  }
  for (i = 0; i < n; i = i + 1) { print(cov[i*n+i]); }
  return 0;
}
|}
    (n * n) (n * n) n n

let correlation n =
  Printf.sprintf
    {|
double data[%d];
double corr[%d];
double mean[%d];
double stddev[%d];
int main() {
  int i; int j; int p;
  int n = %d;
  for (i = 0; i < n; i = i + 1) {
    for (j = 0; j < n; j = j + 1) {
      data[i*n+j] = (double) ((i * j + 2) %% n) / (double) n + (double) j * 0.05;
    }
  }
  for (j = 0; j < n; j = j + 1) {
    mean[j] = 0.0;
    for (i = 0; i < n; i = i + 1) { mean[j] = mean[j] + data[i*n+j]; }
    mean[j] = mean[j] / (double) n;
    stddev[j] = 0.0;
    for (i = 0; i < n; i = i + 1) {
      stddev[j] = stddev[j] + (data[i*n+j] - mean[j]) * (data[i*n+j] - mean[j]);
    }
    stddev[j] = sqrt(stddev[j] / (double) n);
    // guard against constant columns, as the original does
    if (stddev[j] <= 0.1) { stddev[j] = 1.0; }
  }
  for (i = 0; i < n; i = i + 1) {
    for (j = 0; j < n; j = j + 1) {
      data[i*n+j] = (data[i*n+j] - mean[j]) / (sqrt((double) n) * stddev[j]);
    }
  }
  for (i = 0; i < n; i = i + 1) {
    corr[i*n+i] = 1.0;
    for (j = i + 1; j < n; j = j + 1) {
      corr[i*n+j] = 0.0;
      for (p = 0; p < n; p = p + 1) {
        corr[i*n+j] = corr[i*n+j] + data[p*n+i] * data[p*n+j];
      }
      corr[j*n+i] = corr[i*n+j];
    }
  }
  for (i = 0; i < n - 1; i = i + 1) { print(corr[i*n+i+1]); }
  return 0;
}
|}
    (n * n) (n * n) n n n

let symm n =
  Printf.sprintf
    {|
double A[%d];
double B[%d];
double C[%d];
int main() {
  int i; int j; int p;
  int n = %d;
  for (i = 0; i < n; i = i + 1) {
    for (j = 0; j < n; j = j + 1) {
      A[i*n+j] = (double) ((i + j) %% n) / (double) n;
      B[i*n+j] = (double) ((i * 2 + j) %% n) / (double) n;
      C[i*n+j] = (double) ((i + j * 3) %% n) / (double) n;
    }
  }
  // C := alpha*A*B + beta*C with A symmetric (lower stored)
  for (i = 0; i < n; i = i + 1) {
    for (j = 0; j < n; j = j + 1) {
      double temp = 0.0;
      for (p = 0; p < i; p = p + 1) {
        C[p*n+j] = C[p*n+j] + 1.5 * B[i*n+j] * A[i*n+p];
        temp = temp + B[p*n+j] * A[i*n+p];
      }
      C[i*n+j] = 1.2 * C[i*n+j] + 1.5 * B[i*n+j] * A[i*n+i] + 1.5 * temp;
    }
  }
  for (i = 0; i < n; i = i + 1) { print(C[i*n+i]); }
  return 0;
}
|}
    (n * n) (n * n) (n * n) n

let kernels =
  [
    k "gemm" gemm;
    k "covariance" covariance;
    k "correlation" correlation;
    k "symm" symm;
    k "2mm" two_mm;
    k "syrk" syrk;
    k "seidel-1d" seidel_1d;
    k "nussinov" nussinov_like;
    k "atax" atax;
    k "bicg" bicg;
    k "mvt" mvt;
    k "gesummv" gesummv;
    k "trisolv" trisolv;
    k "cholesky" cholesky;
    k "lu" lu;
    k "durbin" durbin;
    k "jacobi-1d" jacobi_1d;
    k "gramschmidt" (fun n -> gramschmidt n);
  ]

let find name =
  match List.find_opt (fun k -> k.k_name = name) kernels with
  | Some k -> k
  | None -> invalid_arg ("Polybench.find: unknown kernel " ^ name)

let compile ?(n = 8) (kernel : kernel) =
  Minic.compile ~file:(kernel.k_name ^ ".mc") (kernel.k_source n)

let compile_gramschmidt_rank_deficient ?(n = 8) () =
  Minic.compile ~file:"gramschmidt-defective.mc"
    (gramschmidt ~rank_deficient:true n)
