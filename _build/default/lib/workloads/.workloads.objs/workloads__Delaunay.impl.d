lib/workloads/delaunay.ml: Array Float Minic Predicates Printf
