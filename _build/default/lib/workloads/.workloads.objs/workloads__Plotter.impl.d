lib/workloads/plotter.ml: Array Int64 List Minic Printf Vex
