lib/workloads/gromacs.ml: Minic Printf
