lib/workloads/calculix.ml: Array Core Float Int64 Minic Printf
