lib/workloads/predicates.ml: Array Float Int64 Minic Printf
