lib/workloads/polybench.ml: List Minic Printf
