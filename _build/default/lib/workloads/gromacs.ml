(* A Gromacs-style molecular dynamics inner loop (paper section 7, E7).

   Gromacs spends ~95% of its time in nonbonded-interaction inner loops:
   for each particle pair within a cutoff, accumulate Lennard-Jones and
   Coulomb forces, then integrate. This workload reproduces that loop
   nest at laptop scale: N particles on a perturbed lattice, all-pairs
   LJ+Coulomb force accumulation with 1/r and r^-6 kernels (inverse sqrt
   included, as in the Fortran inner loops), leapfrog integration, and
   energy reporting per step. *)

let source ~particles ~steps =
  Printf.sprintf
    {|
double px[%d];
double py[%d];
double pz[%d];
double vx[%d];
double vy[%d];
double vz[%d];
double fx[%d];
double fy[%d];
double fz[%d];

int main() {
  int n = %d;
  int steps = %d;
  int i; int j; int s;

  // perturbed-lattice initial positions, zero velocities
  for (i = 0; i < n; i = i + 1) {
    int gx = i %% 4;
    int gy = (i / 4) %% 4;
    int gz = i / 16;
    px[i] = (double) gx * 1.2 + 0.1 * sin((double) i * 12.9898);
    py[i] = (double) gy * 1.2 + 0.1 * sin((double) i * 78.233);
    pz[i] = (double) gz * 1.2 + 0.1 * sin((double) i * 37.719);
    vx[i] = 0.0;
    vy[i] = 0.0;
    vz[i] = 0.0;
  }

  for (s = 0; s < steps; s = s + 1) {
    double epot = 0.0;
    for (i = 0; i < n; i = i + 1) {
      fx[i] = 0.0;
      fy[i] = 0.0;
      fz[i] = 0.0;
    }
    // all-pairs nonbonded kernel
    for (i = 0; i < n; i = i + 1) {
      for (j = i + 1; j < n; j = j + 1) {
        double dx = px[i] - px[j];
        double dy = py[i] - py[j];
        double dz = pz[i] - pz[j];
        double r2 = dx * dx + dy * dy + dz * dz;
        double rinv = 1.0 / sqrt(r2);
        double rinv2 = rinv * rinv;
        double rinv6 = rinv2 * rinv2 * rinv2;
        // LJ with epsilon = sigma = 1, plus a weak Coulomb term
        double vlj = 4.0 * (rinv6 * rinv6 - rinv6);
        double vc = 0.1 * rinv;
        epot = epot + vlj + vc;
        double fscale = (24.0 * (2.0 * rinv6 * rinv6 - rinv6) + 0.1 * rinv) * rinv2;
        fx[i] = fx[i] + fscale * dx;
        fy[i] = fy[i] + fscale * dy;
        fz[i] = fz[i] + fscale * dz;
        fx[j] = fx[j] - fscale * dx;
        fy[j] = fy[j] - fscale * dy;
        fz[j] = fz[j] - fscale * dz;
      }
    }
    // leapfrog integration and kinetic energy
    double ekin = 0.0;
    for (i = 0; i < n; i = i + 1) {
      vx[i] = vx[i] + 0.0005 * fx[i];
      vy[i] = vy[i] + 0.0005 * fy[i];
      vz[i] = vz[i] + 0.0005 * fz[i];
      px[i] = px[i] + 0.0005 * vx[i];
      py[i] = py[i] + 0.0005 * vy[i];
      pz[i] = pz[i] + 0.0005 * vz[i];
      ekin = ekin + 0.5 * (vx[i] * vx[i] + vy[i] * vy[i] + vz[i] * vz[i]);
    }
    print(epot + ekin);
  }
  return 0;
}
|}
    particles particles particles particles particles particles particles
    particles particles particles steps

let compile ?(particles = 32) ?(steps = 4) () =
  Minic.compile ~file:"gromacs.mc" (source ~particles ~steps)
