(* The complex function plotter of paper section 3.1 (E1).

   Plots f(z) = 1 / (sqrt(Re z) - csqrt(Re z + i exp(-20 z))) over the
   region [0, 1/4] x [-3, 3] by evaluating f at each pixel center and
   coloring by arg(f). The naive complex square root

     sqrt(x+iy) = (sqrt(sqrt(x^2+y^2)+x) + i sqrt(sqrt(x^2+y^2)-x))/sqrt(2)

   catastrophically cancels in sqrt(x^2+y^2) - x when x > 0 and |y| << x,
   which speckles the image; the repaired version (the output of passing
   Herbgrind's report through an accuracy rewriter, section 3.1) computes
   the cancelling branch as y^2 / (sqrt(x^2+y^2) + x). *)

(* Complex numbers are 2-element arrays [re, im]; helpers write through an
   out-parameter array, matching how C code threads structs by pointer. *)
let common_source =
  {|
double g_re[1];
double g_im[1];

void cmul(double ar, double ai, double br, double bi) {
  g_re[0] = ar * br - ai * bi;
  g_im[0] = ar * bi + ai * br;
}

void cdiv(double ar, double ai, double br, double bi) {
  double d = br * br + bi * bi;
  g_re[0] = (ar * br + ai * bi) / d;
  g_im[0] = (ai * br - ar * bi) / d;
}

void cexp(double ar, double ai) {
  double m = exp(ar);
  g_re[0] = m * cos(ai);
  g_im[0] = m * sin(ai);
}
|}

let naive_csqrt =
  {|
void csqrt(double x, double y) {
  double m = sqrt(x * x + y * y);
  double rp = sqrt((m + x) / 2.0);
  double rm = sqrt((m - x) / 2.0);
  if (y < 0.0) { rm = -rm; }
  g_re[0] = rp;
  g_im[0] = rm;
}
|}

let repaired_csqrt =
  {|
void csqrt(double x, double y) {
  double m = sqrt(x * x + y * y);
  double rp = 0.0;
  double rm = 0.0;
  if (x <= 0.0) {
    rm = sqrt((m - x) / 2.0);
    rp = fabs(y) / (2.0 * rm);
    if (rm == 0.0) { rp = 0.0; }
  } else {
    rp = sqrt((m + x) / 2.0);
    rm = fabs(y) / (2.0 * rp);
  }
  if (y < 0.0) { rm = -rm; }
  g_re[0] = rp;
  g_im[0] = rm;
}
|}

(* main: iterate the pixel grid, evaluate f, print the color bucket.

   The perturbation term is scaled by 1e-13 relative to the paper's f so
   that the csqrt instability dominates arg(f) at this rendering
   resolution (40x40 pixels, 8 hue buckets) the way it dominated the
   original's 1000x1000 24-bit rendering; the erroneous computation and
   Herbgrind's report are unchanged (see DESIGN.md, E1). *)
let main_source ~width ~height =
  Printf.sprintf
    {|
int main() {
  int px;
  int py;
  for (py = 0; py < %d; py = py + 1) {
    for (px = 0; px < %d; px = px + 1) {
      double x = 0.02 + 0.23 * ((double) px + 0.5) / %d.0;
      double y = -3.0 + 6.0 * ((double) py + 0.5) / %d.0;

      // w = x + i * 1e-13 * exp(-20 z), computed in complex arithmetic
      cexp(-20.0 * x, -20.0 * y);
      double wr = x - 0.0000000000001 * g_im[0];
      double wi = 0.0000000000001 * g_re[0];

      // d = sqrt(Re z) - csqrt(w)
      csqrt(wr, wi);
      double dr = sqrt(x) - g_re[0];
      double di = -g_im[0];

      // f = 1 / d
      cdiv(1.0, 0.0, dr, di);

      // color by the argument of f: 8 hue buckets
      double ang = atan2(g_im[0], g_re[0]);
      int color = (int) ((ang + 3.14159265358979312) * 1.27323954473516276);
      if (color > 7) { color = 7; }
      if (color < 0) { color = 0; }
      print(color);
    }
  }
  return 0;
}
|}
    height width width height

let source ?(width = 40) ?(height = 40) ~(repaired : bool) () =
  common_source
  ^ (if repaired then repaired_csqrt else naive_csqrt)
  ^ main_source ~width ~height

let compile ?width ?height ~repaired () =
  Minic.compile ~file:(if repaired then "plotter-fixed.mc" else "plotter.mc")
    (source ?width ?height ~repaired ())

(* run the plotter and return the pixel grid of color buckets *)
let render ?(width = 40) ?(height = 40) ~repaired () : int array array =
  let prog = compile ~width ~height ~repaired () in
  let st = Vex.Machine.run ~max_steps:100_000_000 prog in
  let colors =
    List.filter_map
      (fun (o : Vex.Machine.output) ->
        match o.Vex.Machine.value with
        | Vex.Value.VI64 i -> Some (Int64.to_int i)
        | _ -> None)
      (Vex.Machine.outputs st)
  in
  let grid = Array.make_matrix height width 0 in
  List.iteri
    (fun i c -> if i < width * height then grid.(i / width).(i mod width) <- c)
    colors;
  grid

(* number of pixels at which two renderings disagree *)
let diff_count (a : int array array) (b : int array array) : int =
  let count = ref 0 in
  Array.iteri
    (fun y row ->
      Array.iteri (fun x c -> if b.(y).(x) <> c then incr count) row)
    a;
  !count

(* speckle metric: pixels whose color differs from 3+ of their 4 neighbours
   are likely numerical noise rather than a feature boundary *)
let speckle_count (grid : int array array) : int =
  let h = Array.length grid and w = Array.length grid.(0) in
  let count = ref 0 in
  for y = 1 to h - 2 do
    for x = 1 to w - 2 do
      let c = grid.(y).(x) in
      let diff = ref 0 in
      List.iter
        (fun (dy, dx) -> if grid.(y + dy).(x + dx) <> c then incr diff)
        [ (-1, 0); (1, 0); (0, -1); (0, 1) ];
      if !diff >= 3 then incr count
    done
  done;
  !count

let write_ppm (grid : int array array) (path : string) : unit =
  let palette =
    [| (230, 25, 75); (245, 130, 48); (255, 225, 25); (60, 180, 75);
       (70, 240, 240); (0, 130, 200); (145, 30, 180); (240, 50, 230) |]
  in
  let h = Array.length grid and w = Array.length grid.(0) in
  let oc = open_out path in
  Printf.fprintf oc "P3\n%d %d\n255\n" w h;
  Array.iter
    (fun row ->
      Array.iter
        (fun c ->
          let r, g, b = palette.(c land 7) in
          Printf.fprintf oc "%d %d %d " r g b)
        row;
      output_char oc '\n')
    grid;
  close_out oc
