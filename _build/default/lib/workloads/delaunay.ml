(* A miniature Triangle: Bowyer-Watson Delaunay triangulation in MiniC,
   built on the adaptive orient2d/incircle predicates of [Predicates].

   This is the shape of the paper's Triangle case study: a mesh generator
   whose correctness hinges on exact geometric predicates, run under the
   analysis to confirm that (a) the compensated predicate arithmetic is
   not reported as a root cause and (b) overhead tracks the input's
   degeneracy (cocircular point sets force the compensated fallbacks).

   The algorithm is the standard one: seed with a super-triangle, insert
   points one at a time, collect the "bad" triangles whose circumcircle
   contains the new point, carve the cavity, and retriangulate its
   boundary fan. Everything lives in flat global arrays. *)

let delaunay_source ~max_points =
  let max_tri = (4 * max_points) + 16 in
  Printf.sprintf
    {|
double ptx[%d];
double pty[%d];
int tri_a[%d];
int tri_b[%d];
int tri_c[%d];
int alive[%d];
int n_tri[1];

int edge_u[%d];
int edge_v[%d];
int edge_dup[%d];

// make triangle (a, b, c) counterclockwise and record it
void add_triangle(int a, int b, int c) {
  int t = n_tri[0];
  double d = orient2d(ptx[a], pty[a], ptx[b], pty[b], ptx[c], pty[c]);
  if (d < 0.0) {
    int tmp = b;
    b = c;
    c = tmp;
  }
  tri_a[t] = a;
  tri_b[t] = b;
  tri_c[t] = c;
  alive[t] = 1;
  n_tri[0] = t + 1;
}

int build(int n) {
  int i; int t; int e; int k;
  n_tri[0] = 0;
  // super-triangle enclosing the unit box
  ptx[n] = -100.0;  pty[n] = -100.0;
  ptx[n + 1] = 200.0;  pty[n + 1] = -100.0;
  ptx[n + 2] = 0.0;  pty[n + 2] = 200.0;
  add_triangle(n, n + 1, n + 2);

  for (i = 0; i < n; i = i + 1) {
    // collect boundary edges of the cavity
    int n_edges = 0;
    for (t = 0; t < n_tri[0]; t = t + 1) {
      if (alive[t] == 1) {
        double d = incircle(ptx[tri_a[t]], pty[tri_a[t]],
                            ptx[tri_b[t]], pty[tri_b[t]],
                            ptx[tri_c[t]], pty[tri_c[t]],
                            ptx[i], pty[i]);
        if (d > 0.0) {
          alive[t] = 0;
          edge_u[n_edges] = tri_a[t];
          edge_v[n_edges] = tri_b[t];
          edge_u[n_edges + 1] = tri_b[t];
          edge_v[n_edges + 1] = tri_c[t];
          edge_u[n_edges + 2] = tri_c[t];
          edge_v[n_edges + 2] = tri_a[t];
          n_edges = n_edges + 3;
        }
      }
    }
    // an edge shared by two removed triangles is interior: drop both copies
    for (e = 0; e < n_edges; e = e + 1) { edge_dup[e] = 0; }
    for (e = 0; e < n_edges; e = e + 1) {
      for (k = e + 1; k < n_edges; k = k + 1) {
        if (edge_u[e] == edge_v[k] && edge_v[e] == edge_u[k]) {
          edge_dup[e] = 1;
          edge_dup[k] = 1;
        }
      }
    }
    // fan the cavity boundary around the new point
    for (e = 0; e < n_edges; e = e + 1) {
      if (edge_dup[e] == 0) {
        add_triangle(edge_u[e], edge_v[e], i);
      }
    }
  }
  // count triangles that survive and touch no super-triangle vertex
  int count = 0;
  for (t = 0; t < n_tri[0]; t = t + 1) {
    if (alive[t] == 1 && tri_a[t] < n && tri_b[t] < n && tri_c[t] < n) {
      count = count + 1;
    }
  }
  return count;
}

double mesh_quality(int n) {
  // smallest angle proxy: min over triangles of area / (longest edge)^2
  int t;
  double worst = 1000.0;
  for (t = 0; t < n_tri[0]; t = t + 1) {
    if (alive[t] == 1 && tri_a[t] < n && tri_b[t] < n && tri_c[t] < n) {
      double ax = ptx[tri_a[t]];
      double ay = pty[tri_a[t]];
      double bx = ptx[tri_b[t]];
      double by = pty[tri_b[t]];
      double cx = ptx[tri_c[t]];
      double cy = pty[tri_c[t]];
      double area = fabs(orient2d(ax, ay, bx, by, cx, cy)) * 0.5;
      double e1 = (bx - ax) * (bx - ax) + (by - ay) * (by - ay);
      double e2 = (cx - bx) * (cx - bx) + (cy - by) * (cy - by);
      double e3 = (ax - cx) * (ax - cx) + (ay - cy) * (ay - cy);
      double longest = fmax(e1, fmax(e2, e3));
      double q = area / longest;
      if (q < worst) { worst = q; }
    }
  }
  return worst;
}
|}
    (max_points + 3) (max_points + 3) max_tri max_tri max_tri max_tri
    (3 * max_tri) (3 * max_tri) (3 * max_tri)

let main_source ~points ~emit_triangles =
  let emit =
    if emit_triangles then
      {|
  int t;
  for (t = 0; t < n_tri[0]; t = t + 1) {
    if (alive[t] == 1 && tri_a[t] < n && tri_b[t] < n && tri_c[t] < n) {
      print(tri_a[t]);
      print(tri_b[t]);
      print(tri_c[t]);
    }
  }
|}
    else ""
  in
  Printf.sprintf
    {|
int main() {
  int i;
  int n = %d;
  for (i = 0; i < n; i = i + 1) {
    ptx[i] = __arg(2 * i);
    pty[i] = __arg(2 * i + 1);
  }
  int triangles = build(n);
  print(triangles);
  print(mesh_quality(n));
%s
  return 0;
}
|}
    points emit

let source ?(emit_triangles = false) ~points () =
  Predicates.predicates_source ^ Predicates.incircle_source
  ^ delaunay_source ~max_points:points
  ^ main_source ~points ~emit_triangles

let compile ?emit_triangles ~points () =
  Minic.compile ~file:"mini-triangle.mc" (source ?emit_triangles ~points ())

(* [cocircular] fraction of the points are placed EXACTLY on one common
   circle, the classic degenerate input for Delaunay: every incircle test
   among those points is an exact tie that only the compensated fallback
   decides consistently. Exactness comes from integer points on
   x^2 + y^2 = 25, scaled by a power of two, so every intermediate value
   of the stage-B incircle computation is exact in doubles. At most 12
   such points exist; any excess falls back to random placement. *)
let circle12 =
  [| (3, 4); (4, 3); (5, 0); (0, 5); (-3, 4); (4, -3); (0, -5); (-5, 0);
     (-4, 3); (3, -4); (-4, -3); (-3, -4) |]

let inputs ~points ~cocircular ~seed : float array =
  let rand = Predicates.rng seed in
  let n_circle = min 12 (int_of_float (Float.of_int points *. cocircular)) in
  Array.init (2 * points) (fun i ->
      let p = i / 2 in
      if p < n_circle then begin
        let x, y = circle12.(p) in
        if i land 1 = 0 then 0.5 +. (float_of_int x /. 16.0)
        else 0.5 +. (float_of_int y /. 16.0)
      end
      else rand ())
