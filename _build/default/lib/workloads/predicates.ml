(* Triangle/Tetgen-style geometric predicates (paper section 7, E3/E4).

   Shewchuk's Triangle won the Wilkinson prize partly for its adaptive
   exact predicates, built from "compensating" error-free transformations:
   two_sum, two_diff and two_product compute both a float result and its
   exact rounding error. Each compensating term has enormous local error
   in isolation (its exact value is 0 relative to the real computation of
   the sum), which is exactly the false-positive hazard Herbgrind's
   compensation detection addresses (section 5.4).

   This workload implements orient2d with Shewchuk's stage-A filter plus a
   compensated fallback, and a Tetgen-style orient3d, over input point
   sets whose degeneracy is a parameter (E4 sweeps it to vary how much
   floating-point work each run does). *)

let predicates_source =
  {|
// error-free transformations; results returned through globals
double g_hi[1];
double g_lo[1];

void two_sum(double a, double b) {
  double x = a + b;
  double bv = x - a;
  double av = x - bv;
  double br = b - bv;
  double ar = a - av;
  g_hi[0] = x;
  g_lo[0] = ar + br;
}

void two_diff(double a, double b) {
  double x = a - b;
  double bv = a - x;
  double av = x + bv;
  double br = bv - b;
  double ar = a - av;
  g_hi[0] = x;
  g_lo[0] = ar + br;
}

void split(double a) {
  double c = 134217729.0 * a;
  double abig = c - a;
  g_hi[0] = c - abig;
  g_lo[0] = a - g_hi[0];
}

double gp_x[1];
double gp_y[1];

void two_product(double a, double b) {
  double x = a * b;
  split(a);
  double ahi = g_hi[0];
  double alo = g_lo[0];
  split(b);
  double bhi = g_hi[0];
  double blo = g_lo[0];
  double err1 = x - ahi * bhi;
  double err2 = err1 - alo * bhi;
  double err3 = err2 - ahi * blo;
  gp_x[0] = x;
  gp_y[0] = alo * blo - err3;
}

// orient2d: sign of the 2x2 determinant | ax-cx  ay-cy ; bx-cx  by-cy |
double orient2d(double ax, double ay, double bx, double by,
                double cx, double cy) {
  double acx = ax - cx;
  double bcx = bx - cx;
  double acy = ay - cy;
  double bcy = by - cy;
  double detleft = acx * bcy;
  double detright = acy * bcx;
  double det = detleft - detright;

  // stage A: accept when the floating-point result is certainly right
  double detsum = fabs(detleft) + fabs(detright);
  double errbound = 0.00000000000000035527 * detsum;
  if (det > errbound) { return det; }
  if (-det > errbound) { return det; }

  // adaptive stage B (after Shewchuk): exact products of the difference
  // heads, plus first-order corrections from the difference tails
  two_diff(ax, cx);
  double acxtail = g_lo[0];
  two_diff(bx, cx);
  double bcxtail = g_lo[0];
  two_diff(ay, cy);
  double acytail = g_lo[0];
  two_diff(by, cy);
  double bcytail = g_lo[0];

  two_product(acx, bcy);
  double l_hi = gp_x[0];
  double l_lo = gp_y[0];
  two_product(acy, bcx);
  double r_hi = gp_x[0];
  double r_lo = gp_y[0];
  two_diff(l_hi, r_hi);
  double d_hi = g_hi[0];
  double d_lo = g_lo[0];
  double det_b = d_hi + (d_lo + (l_lo - r_lo));
  double tails = (acx * bcytail + bcy * acxtail)
               - (acy * bcxtail + bcx * acytail);
  return det_b + tails;
}

// orient3d: sign of the 3x3 determinant of the edge vectors
double orient3d(double ax, double ay, double az, double bx, double by,
                double bz, double cx, double cy, double cz, double dx,
                double dy, double dz) {
  double adx = ax - dx;
  double ady = ay - dy;
  double adz = az - dz;
  double bdx = bx - dx;
  double bdy = by - dy;
  double bdz = bz - dz;
  double cdx = cx - dx;
  double cdy = cy - dy;
  double cdz = cz - dz;

  double bdxcdy = bdx * cdy;
  double cdxbdy = cdx * bdy;
  double cdxady = cdx * ady;
  double adxcdy = adx * cdy;
  double adxbdy = adx * bdy;
  double bdxady = bdx * ady;

  double det = adz * (bdxcdy - cdxbdy) + bdz * (cdxady - adxcdy)
             + cdz * (adxbdy - bdxady);

  double permanent = (fabs(bdxcdy) + fabs(cdxbdy)) * fabs(adz)
                   + (fabs(cdxady) + fabs(adxcdy)) * fabs(bdz)
                   + (fabs(adxbdy) + fabs(bdxady)) * fabs(cdz);
  double errbound = 0.0000000000000007771 * permanent;
  if (det > errbound) { return det; }
  if (-det > errbound) { return det; }

  // compensated fallback on the three 2x2 minors
  two_product(bdx, cdy);
  double m1 = gp_x[0];
  double e1 = gp_y[0];
  two_product(cdx, bdy);
  double m2 = gp_x[0];
  double e2 = gp_y[0];
  two_diff(m1, m2);
  double minor1 = g_hi[0] + (g_lo[0] + (e1 - e2));

  two_product(cdx, ady);
  m1 = gp_x[0];
  e1 = gp_y[0];
  two_product(adx, cdy);
  m2 = gp_x[0];
  e2 = gp_y[0];
  two_diff(m1, m2);
  double minor2 = g_hi[0] + (g_lo[0] + (e1 - e2));

  two_product(adx, bdy);
  m1 = gp_x[0];
  e1 = gp_y[0];
  two_product(bdx, ady);
  m2 = gp_x[0];
  e2 = gp_y[0];
  two_diff(m1, m2);
  double minor3 = g_hi[0] + (g_lo[0] + (e1 - e2));

  return adz * minor1 + bdz * minor2 + cdz * minor3;
}
|}

let incircle_source =
  {|
// incircle: is point d inside the circle through a, b, c?
// (sign of Shewchuk's 4x4 lifted determinant)
double incircle(double ax, double ay, double bx, double by, double cx,
                double cy, double dx, double dy) {
  double adx = ax - dx;
  double ady = ay - dy;
  double bdx = bx - dx;
  double bdy = by - dy;
  double cdx = cx - dx;
  double cdy = cy - dy;

  double bdxcdy = bdx * cdy;
  double cdxbdy = cdx * bdy;
  double alift = adx * adx + ady * ady;

  double cdxady = cdx * ady;
  double adxcdy = adx * cdy;
  double blift = bdx * bdx + bdy * bdy;

  double adxbdy = adx * bdy;
  double bdxady = bdx * ady;
  double clift = cdx * cdx + cdy * cdy;

  double det = alift * (bdxcdy - cdxbdy) + blift * (cdxady - adxcdy)
             + clift * (adxbdy - bdxady);

  double permanent = (fabs(bdxcdy) + fabs(cdxbdy)) * alift
                   + (fabs(cdxady) + fabs(adxcdy)) * blift
                   + (fabs(adxbdy) + fabs(bdxady)) * clift;
  double errbound = 0.00000000000000111 * permanent;
  if (det > errbound) { return det; }
  if (-det > errbound) { return det; }

  // compensated fallback on the three 2x2 minors (stage B flavor)
  two_product(bdx, cdy);
  double m1 = gp_x[0];
  double e1 = gp_y[0];
  two_product(cdx, bdy);
  double m2 = gp_x[0];
  double e2 = gp_y[0];
  two_diff(m1, m2);
  double minor_a = g_hi[0] + (g_lo[0] + (e1 - e2));

  two_product(cdx, ady);
  m1 = gp_x[0];
  e1 = gp_y[0];
  two_product(adx, cdy);
  m2 = gp_x[0];
  e2 = gp_y[0];
  two_diff(m1, m2);
  double minor_b = g_hi[0] + (g_lo[0] + (e1 - e2));

  two_product(adx, bdy);
  m1 = gp_x[0];
  e1 = gp_y[0];
  two_product(bdx, ady);
  m2 = gp_x[0];
  e2 = gp_y[0];
  two_diff(m1, m2);
  double minor_c = g_hi[0] + (g_lo[0] + (e1 - e2));

  return alift * minor_a + blift * minor_b + clift * minor_c;
}
|}

let incircle_main ~trials =
  Printf.sprintf
    {|
int main() {
  int t;
  int inside = 0;
  for (t = 0; t < %d; t = t + 1) {
    double d = incircle(__arg(t * 8), __arg(t * 8 + 1), __arg(t * 8 + 2),
                        __arg(t * 8 + 3), __arg(t * 8 + 4), __arg(t * 8 + 5),
                        __arg(t * 8 + 6), __arg(t * 8 + 7));
    if (d > 0.0) { inside = inside + 1; }
    print(d);
  }
  print(inside);
  return 0;
}
|}
    trials

let orient2d_main ~trials =
  Printf.sprintf
    {|
int main() {
  int t;
  int left = 0;
  for (t = 0; t < %d; t = t + 1) {
    double ax = __arg(t * 6);
    double ay = __arg(t * 6 + 1);
    double bx = __arg(t * 6 + 2);
    double by = __arg(t * 6 + 3);
    double cx = __arg(t * 6 + 4);
    double cy = __arg(t * 6 + 5);
    double d = orient2d(ax, ay, bx, by, cx, cy);
    if (d > 0.0) { left = left + 1; }
    print(d);
  }
  print(left);
  return 0;
}
|}
    trials

let orient3d_main ~trials =
  Printf.sprintf
    {|
int main() {
  int t;
  int above = 0;
  for (t = 0; t < %d; t = t + 1) {
    double d = orient3d(__arg(t * 12), __arg(t * 12 + 1), __arg(t * 12 + 2),
                        __arg(t * 12 + 3), __arg(t * 12 + 4), __arg(t * 12 + 5),
                        __arg(t * 12 + 6), __arg(t * 12 + 7), __arg(t * 12 + 8),
                        __arg(t * 12 + 9), __arg(t * 12 + 10), __arg(t * 12 + 11));
    if (d > 0.0) { above = above + 1; }
    print(d);
  }
  print(above);
  return 0;
}
|}
    trials

let orient2d_source ~trials = predicates_source ^ orient2d_main ~trials
let orient3d_source ~trials = predicates_source ^ orient3d_main ~trials

let incircle_full_source ~trials =
  predicates_source ^ incircle_source ^ incircle_main ~trials

(* ---------- input generation ----------

   [degeneracy] in [0, 1] controls how close the inputs sit to the
   predicate's zero set: 0 gives generic points (stage A almost always
   suffices, little FP work); near 1, most queries are nearly degenerate
   and take the compensated fallback. This is the axis that makes
   Herbgrind's overhead vary with input (paper figure 8, left). *)

let rng seed =
  let state = ref (Int64.of_int ((seed * 2654435761) + 13)) in
  fun () ->
    let x = !state in
    let x = Int64.logxor x (Int64.shift_left x 13) in
    let x = Int64.logxor x (Int64.shift_right_logical x 7) in
    let x = Int64.logxor x (Int64.shift_left x 17) in
    state := x;
    Int64.to_float (Int64.shift_right_logical (Int64.mul x 0x2545F4914F6CDD1DL) 11)
    /. 9007199254740992.0

let orient2d_inputs ~trials ~degeneracy ~seed : float array =
  let rand = rng seed in
  Array.init (trials * 6) (fun i ->
      let t = i / 6 and k = i mod 6 in
      let degenerate =
        float_of_int ((t * 7919) mod 100) /. 100.0 < degeneracy
      in
      if not degenerate then (rand () *. 20.0) -. 10.0
      else begin
        (* a, b random; c = a + s*(b-a) + tiny perpendicular offset; the
           components are generated coherently from the trial index *)
        let r = rng ((seed * 31) + t) in
        let ax = r () and ay = r () and bx = r () +. 1.0 and by = r () in
        let s = 2.0 *. r () in
        let eps = (r () -. 0.5) *. 1e-16 in
        match k with
        | 0 -> ax
        | 1 -> ay
        | 2 -> bx
        | 3 -> by
        | 4 -> ax +. (s *. (bx -. ax)) -. (eps *. (by -. ay))
        | _ -> ay +. (s *. (by -. ay)) +. (eps *. (bx -. ax))
      end)

let orient3d_inputs ~trials ~degeneracy ~seed : float array =
  let rand = rng (seed + 77) in
  Array.init (trials * 12) (fun i ->
      let t = i / 12 and k = i mod 12 in
      let degenerate =
        float_of_int ((t * 7919) mod 100) /. 100.0 < degeneracy
      in
      if not degenerate then (rand () *. 20.0) -. 10.0
      else begin
        (* d lies in the plane of a, b, c up to a tiny offset *)
        let r = rng ((seed * 17) + t) in
        let pt = Array.init 9 (fun _ -> r () *. 4.0) in
        let u = r () and v = r () in
        let coord j =
          pt.(j)
          +. (u *. (pt.(3 + j) -. pt.(j)))
          +. (v *. (pt.(6 + j) -. pt.(j)))
          +. ((r () -. 0.5) *. 1e-16)
        in
        if k < 9 then pt.(k) else coord (k - 9)
      end)

(* points on a circle through a,b,c, with d displaced radially by a small
   controlled amount: degeneracy pushes d onto the circle itself *)
let incircle_inputs ~trials ~degeneracy ~seed : float array =
  Array.init (trials * 8) (fun i ->
      let t = i / 8 and k = i mod 8 in
      let r = rng ((seed * 23) + t) in
      let cx0 = r () *. 4.0 and cy0 = r () *. 4.0 in
      let radius = 1.0 +. r () in
      let angle j = r () *. 6.283185307179586 *. float_of_int (j + 1) /. 3.0 in
      let a1 = angle 0 and a2 = angle 1 and a3 = angle 2 and a4 = angle 3 in
      let degenerate = float_of_int (t mod 100) /. 100.0 < degeneracy in
      let d_radius =
        if degenerate then radius *. (1.0 +. ((r () -. 0.5) *. 1e-15))
        else radius *. (0.5 +. r ())
      in
      match k with
      | 0 -> cx0 +. (radius *. Float.cos a1)
      | 1 -> cy0 +. (radius *. Float.sin a1)
      | 2 -> cx0 +. (radius *. Float.cos a2)
      | 3 -> cy0 +. (radius *. Float.sin a2)
      | 4 -> cx0 +. (radius *. Float.cos a3)
      | 5 -> cy0 +. (radius *. Float.sin a3)
      | 6 -> cx0 +. (d_radius *. Float.cos a4)
      | _ -> cy0 +. (d_radius *. Float.sin a4))

let compile_orient2d ~trials =
  Minic.compile ~file:"triangle.mc" (orient2d_source ~trials)

let compile_orient3d ~trials =
  Minic.compile ~file:"tetgen.mc" (orient3d_source ~trials)

let compile_incircle ~trials =
  Minic.compile ~file:"triangle-incircle.mc" (incircle_full_source ~trials)
