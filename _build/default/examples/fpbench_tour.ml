(* A tour of the FPBench suite (paper section 8).

   For each vendored benchmark: compile to VEX through MiniC, run under
   the analysis on sampled inputs, and print a one-line summary -- the
   maximum output error observed and whether the benchmark's own
   expression was recovered as a root cause.

     dune exec examples/fpbench_tour.exe            # quick subset
     dune exec examples/fpbench_tour.exe -- --all   # whole suite
*)

let analyze_bench (b : Fpcore.Suite.bench) =
  let core = Fpcore.Suite.core_of b in
  let n = 8 in
  let inputs = Fpcore.Suite.inputs_for ~seed:1 b ~n in
  let prog = Fpcore.Compile.compile ~n_inputs:n core in
  let cfg = { Core.Config.default with Core.Config.precision = 256 } in
  Core.Analysis.analyze ~cfg ~max_steps:200_000_000 ~inputs prog

let summarize (b : Fpcore.Suite.bench) =
  match analyze_bench b with
  | r ->
      let spots = Core.Analysis.output_spots r in
      let errmax =
        List.fold_left
          (fun m (s : Core.Exec.spot_info) -> Float.max m s.Core.Exec.s_err_max)
          0.0 spots
      in
      let causes = List.length (Core.Analysis.erroneous_expressions r) in
      Printf.printf "%-24s %13s  max output error %5.1f bits, %d root cause%s\n"
        b.Fpcore.Suite.name
        (match b.Fpcore.Suite.group with
        | `Straight -> "straight-line"
        | `Loop -> "looping")
        errmax causes
        (if causes = 1 then "" else "s")
  | exception e ->
      Printf.printf "%-24s FAILED: %s\n" b.Fpcore.Suite.name (Printexc.to_string e)

let quick_subset =
  [ "intro-example"; "nmse-3-1"; "nmse-p331"; "doppler1"; "verhulst";
    "quadratic-p"; "expm1-naive"; "hypot-naive"; "logistic-map";
    "step-counter"; "newton-sqrt"; "harmonic-sum" ]

let () =
  let all = Array.exists (( = ) "--all") Sys.argv in
  let benches =
    if all then Fpcore.Suite.all
    else List.map Fpcore.Suite.find quick_subset
  in
  Printf.printf "analyzing %d FPBench benchmarks at 256-bit shadow precision\n\n"
    (List.length benches);
  List.iter summarize benches
