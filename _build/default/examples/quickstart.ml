(* Quickstart: the whole pipeline on ten lines of client code.

   A MiniC program computes (x + 1) - x for large x -- silently wrong in
   doubles. We compile it to VEX, run it under the analysis, print the
   Herbgrind-style report, and feed the recovered expression to the
   accuracy improver.

     dune exec examples/quickstart.exe
*)

let client_source =
  {| int main() {
       int i;
       for (i = 0; i < 8; i = i + 1) {
         double x = __arg(i);
         double y = (x + 1.0) - x;   // should be 1.0
         print(y);
       }
       return 0;
     } |}

let () =
  print_endline "=== client program ===";
  print_endline client_source;

  (* compile MiniC -> VEX, like gcc producing the binary Valgrind sees *)
  let prog = Minic.compile ~file:"quickstart.mc" client_source in
  let inputs = Array.init 8 (fun i -> 1e16 +. (float_of_int i *. 3e15)) in

  (* run natively first: the client output is silently wrong *)
  let st = Vex.Machine.run ~inputs prog in
  print_endline "=== native outputs (should all be 1) ===";
  List.iter (Printf.printf "  %g\n") (Vex.Machine.output_floats st);

  (* run under the analysis *)
  let r = Core.Analysis.analyze ~cfg:Core.Config.default ~inputs prog in
  print_endline "\n=== fpgrind report ===";
  print_string (Core.Analysis.report_string r);

  (* close the loop: improve the reported root cause *)
  match Core.Analysis.erroneous_expressions r with
  | (sym, fpcore, _) :: _ ->
      Printf.printf "\n=== improving %s ===\n" fpcore;
      let samples = List.map (fun v -> [| v |]) (Array.to_list inputs) in
      let res = Rewrite.Improve.improve_sym sym samples in
      Printf.printf "error before: %.1f bits, after: %.1f bits\n"
        res.Rewrite.Improve.error_before res.Rewrite.Improve.error_after
  | [] -> print_endline "no erroneous expressions found"
