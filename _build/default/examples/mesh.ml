(* Mini-Triangle: Delaunay mesh generation over adaptive predicates.

   The closest thing in this reproduction to running Herbgrind on
   Triangle itself: a Bowyer-Watson triangulator whose correctness hinges
   on the orient2d/incircle predicates, analyzed end to end. Shows (a)
   the triangulation result, (b) how overhead responds to degenerate
   (exactly cocircular) input points, and (c) that the compensated
   predicate arithmetic is never reported as a root cause.

     dune exec examples/mesh.exe
*)

let () =
  let points = 14 in
  print_endline "Bowyer-Watson Delaunay triangulation (mini-Triangle)\n";
  List.iter
    (fun cocircular ->
      let prog = Workloads.Delaunay.compile ~points () in
      let inputs = Workloads.Delaunay.inputs ~points ~cocircular ~seed:3 in
      let t0 = Unix.gettimeofday () in
      let st = Vex.Machine.run ~max_steps:1_000_000_000 ~inputs prog in
      let t_native = Unix.gettimeofday () -. t0 in
      let count =
        match Vex.Machine.outputs st with
        | { Vex.Machine.value = Vex.Value.VI64 i; _ } :: _ -> Int64.to_int i
        | _ -> -1
      in
      let t0 = Unix.gettimeofday () in
      let r =
        Core.Analysis.analyze ~cfg:Core.Config.default
          ~max_steps:1_000_000_000 ~inputs prog
      in
      let t_analysis = Unix.gettimeofday () -. t0 in
      let st = r.Core.Analysis.raw.Core.Exec.r_stats in
      Printf.printf
        "cocircular %.0f%%: %2d triangles, %6d FP ops shadowed, %4d \
         compensations, overhead %.0fx\n"
        (cocircular *. 100.0) count st.Core.Exec.fp_ops
        st.Core.Exec.compensations
        (t_analysis /. Float.max 1e-9 t_native))
    [ 0.0; 0.5; 0.9 ];
  print_endline "\n=== analysis report at 90% cocircular points ===";
  let prog = Workloads.Delaunay.compile ~points () in
  let inputs = Workloads.Delaunay.inputs ~points ~cocircular:0.9 ~seed:3 in
  let r =
    Core.Analysis.analyze ~cfg:Core.Config.default ~max_steps:1_000_000_000
      ~inputs prog
  in
  print_string (Core.Analysis.report_string r)
