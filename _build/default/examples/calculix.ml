(* The CalculiX case study (paper section 3.2).

   A DVdot dot-product kernel runs over vectors whose terms vary in
   magnitude and sign, feeding a write_float-style tolerance comparison.
   The analysis report shows (a) the dot-product addition as the root
   cause, with its symbolic expression, and (b) how often the comparison
   actually went the wrong way -- the paper's "65 incorrect of 2758"
   measurement of what error is negligible.

     dune exec examples/calculix.exe
*)

let () =
  let n = 20 and trials = 60 in
  Printf.printf "running DVdot over %d trials of %d-element vectors...\n\n"
    trials n;
  let r =
    Workloads.Calculix.analyze ~cfg:Core.Config.default ~n ~trials ~seed:5 ()
  in
  print_string (Core.Analysis.report_string r);
  let branches = Core.Analysis.branch_spots r in
  print_endline "\n=== branch spots (the write_float comparison) ===";
  List.iter
    (fun (s : Core.Exec.spot_info) ->
      Printf.printf "  %s: %d incorrect of %d instances\n"
        (Vex.Ir.loc_to_string s.Core.Exec.s_loc)
        s.Core.Exec.s_incorrect s.Core.Exec.s_total)
    branches
