(* The complex plotter case study, end to end (paper section 3.1 / figure 1).

   Renders the plot with the naive complex square root (speckled), runs the
   analysis to find the root cause, improves the reported expression with
   the rewriter, and renders the repaired plot. Writes plotter-naive.ppm
   and plotter-fixed.ppm into the working directory.

     dune exec examples/plotter.exe
*)

let () =
  let width = 40 and height = 40 in

  print_endline "rendering with the naive complex square root...";
  let naive = Workloads.Plotter.render ~width ~height ~repaired:false () in
  Workloads.Plotter.write_ppm naive "plotter-naive.ppm";

  print_endline "rendering with the repaired complex square root...";
  let fixed = Workloads.Plotter.render ~width ~height ~repaired:true () in
  Workloads.Plotter.write_ppm fixed "plotter-fixed.ppm";

  Printf.printf "images differ on %d of %d pixels (see plotter-*.ppm)\n\n"
    (Workloads.Plotter.diff_count naive fixed)
    (width * height);

  print_endline "=== fpgrind report on the naive plotter (16x16 sample) ===";
  let prog = Workloads.Plotter.compile ~width:16 ~height:16 ~repaired:false () in
  let r =
    Core.Analysis.analyze ~cfg:Core.Config.default ~max_steps:1_000_000_000 prog
  in
  print_string (Core.Analysis.report_string r);

  (* the paper's fix: pass the reported expression, for example
     "(- (sqrt (+ (sq x) (sq y))) x)", to an accuracy rewriter, which
     produces the y^2 / (m + x) form for positive x *)
  print_endline "\n=== improving the reported csqrt expression ===";
  let candidates =
    List.filter
      (fun (_, _, (o : Core.Exec.op_info)) ->
        o.Core.Exec.o_loc.Vex.Ir.func = "csqrt")
      (Core.Analysis.erroneous_expressions r)
  in
  match candidates with
  | (sym, fpcore, _) :: _ ->
      Printf.printf "reported: %s\n" fpcore;
      let samples =
        List.init 10 (fun i ->
            let x = 0.05 +. (0.02 *. float_of_int i) in
            [| x; 1e-13 *. Float.exp (-20.0 *. x) |])
      in
      let res = Rewrite.Improve.improve_sym sym samples in
      Printf.printf "error before: %.1f bits, after: %.1f bits\n"
        res.Rewrite.Improve.error_before res.Rewrite.Improve.error_after
  | [] -> print_endline "(no csqrt expression in this sample)"
