(* Triangle-style adaptive geometric predicates (paper section 7).

   Runs orient2d over a mix of generic and nearly-degenerate point sets.
   The compensated ("error-free transformation") arithmetic in the exact
   fallback has enormous local error by construction, yet makes the result
   MORE accurate -- the false-positive hazard Herbgrind's compensation
   detection exists to suppress.

     dune exec examples/predicates.exe
*)

let () =
  let trials = 40 in
  let prog = Workloads.Predicates.compile_orient2d ~trials in
  let inputs =
    Workloads.Predicates.orient2d_inputs ~trials ~degeneracy:0.7 ~seed:11
  in
  Printf.printf "orient2d over %d queries (70%% nearly degenerate)...\n\n" trials;
  let r =
    Core.Analysis.analyze ~cfg:Core.Config.default ~max_steps:1_000_000_000
      ~inputs prog
  in
  let st = r.Core.Analysis.raw.Core.Exec.r_stats in
  Printf.printf "floating-point operations shadowed: %d\n" st.Core.Exec.fp_ops;
  Printf.printf "compensating operations detected:   %d\n\n"
    st.Core.Exec.compensations;
  print_endline "=== report ===";
  print_string (Core.Analysis.report_string r);
  print_endline "";
  (* confirm the error-free transformations were not blamed *)
  let spots = Core.Analysis.output_spots r in
  let eft_blamed =
    List.exists
      (fun (s : Core.Exec.spot_info) ->
        Core.Shadow.IntSet.exists
          (fun id ->
            match Hashtbl.find_opt r.Core.Analysis.raw.Core.Exec.r_ops id with
            | Some o ->
                let f = o.Core.Exec.o_loc.Vex.Ir.func in
                f = "two_sum" || f = "two_diff" || f = "two_product"
            | None -> false)
          s.Core.Exec.s_infl)
      spots
  in
  Printf.printf
    "error-free transformations blamed for output error: %b (expected false)\n"
    eft_blamed
