examples/quickstart.mli:
