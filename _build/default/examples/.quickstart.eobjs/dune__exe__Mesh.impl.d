examples/mesh.ml: Core Float Int64 List Printf Unix Vex Workloads
