examples/mesh.mli:
