examples/predicates.ml: Core Hashtbl List Printf Vex Workloads
