examples/fpbench_tour.ml: Array Core Float Fpcore List Printexc Printf Sys
