examples/plotter.ml: Core Float List Printf Rewrite Vex Workloads
