examples/predicates.mli:
