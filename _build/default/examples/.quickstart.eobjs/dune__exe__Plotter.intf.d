examples/plotter.mli:
