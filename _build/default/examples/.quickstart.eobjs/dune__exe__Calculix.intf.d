examples/calculix.mli:
