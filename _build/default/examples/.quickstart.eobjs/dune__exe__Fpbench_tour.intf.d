examples/fpbench_tour.mli:
