examples/quickstart.ml: Array Core List Minic Printf Rewrite Vex
