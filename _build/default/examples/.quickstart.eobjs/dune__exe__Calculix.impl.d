examples/calculix.ml: Core List Printf Vex Workloads
