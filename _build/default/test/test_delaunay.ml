(* Tests for the mini-Triangle Delaunay workload: the triangulation is
   validated against the empty-circumcircle property using exact
   (Bigfloat) arithmetic, on both generic and cocircular inputs, and the
   analysis confirms the Triangle story at mesh-generator scale. *)

module B = Bignum.Bigfloat

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let run ~points ~cocircular ~seed =
  let prog = Workloads.Delaunay.compile ~emit_triangles:true ~points () in
  let inputs = Workloads.Delaunay.inputs ~points ~cocircular ~seed in
  let st = Vex.Machine.run ~max_steps:1_000_000_000 ~inputs prog in
  let outs = Vex.Machine.outputs st in
  let ints =
    List.filter_map
      (fun (o : Vex.Machine.output) ->
        match o.Vex.Machine.value with
        | Vex.Value.VI64 i -> Some (Int64.to_int i)
        | _ -> None)
      outs
  in
  match ints with
  | count :: rest ->
      let rec triples = function
        | a :: b :: c :: more -> (a, b, c) :: triples more
        | _ -> []
      in
      (inputs, count, triples rest)
  | [] -> Alcotest.fail "no outputs"

(* exact incircle via 4096-bit arithmetic: positive iff d strictly inside
   the circumcircle of ccw triangle (a, b, c) *)
let exact_incircle pts (a, b, c) d =
  let p = 4096 in
  let sub x y = B.sub ~prec:p x y
  and mul x y = B.mul ~prec:p x y
  and add x y = B.add ~prec:p x y in
  let px i = B.of_float (fst pts.(i)) and py i = B.of_float (snd pts.(i)) in
  let adx = sub (px a) (px d) and ady = sub (py a) (py d) in
  let bdx = sub (px b) (px d) and bdy = sub (py b) (py d) in
  let cdx = sub (px c) (px d) and cdy = sub (py c) (py d) in
  let alift = add (mul adx adx) (mul ady ady) in
  let blift = add (mul bdx bdx) (mul bdy bdy) in
  let clift = add (mul cdx cdx) (mul cdy cdy) in
  let det =
    add
      (add
         (mul alift (sub (mul bdx cdy) (mul cdx bdy)))
         (mul blift (sub (mul cdx ady) (mul adx cdy))))
      (mul clift (sub (mul adx bdy) (mul bdx ady)))
  in
  det

let exact_orient pts (a, b, c) =
  let p = 4096 in
  let sub x y = B.sub ~prec:p x y and mul x y = B.mul ~prec:p x y in
  let px i = B.of_float (fst pts.(i)) and py i = B.of_float (snd pts.(i)) in
  B.sub ~prec:p
    (mul (sub (px a) (px c)) (sub (py b) (py c)))
    (mul (sub (py a) (py c)) (sub (px b) (px c)))

let delaunay_property ~points ~cocircular ~seed =
  let inputs, count, tris = run ~points ~cocircular ~seed in
  let pts = Array.init points (fun i -> (inputs.(2 * i), inputs.((2 * i) + 1))) in
  checki "count matches triangle list" count (List.length tris);
  checkb "nonempty" true (count > 0);
  (* Every reported triangle is non-degenerate, and its circumcircle is
     empty up to near-tie margin: the workload's predicates are adaptive
     stage-B (first-order tail corrections), so exact ties below ~1e-12
     may be classified either way -- Shewchuk's full exactness needs the
     C/D stages, which the reproduction deliberately stops short of. *)
  let tie_margin = B.of_float 1e-12 in
  List.iter
    (fun (a, b, c) ->
      let o = exact_orient pts (a, b, c) in
      checkb "non-degenerate triangle" false (B.is_zero o);
      (* orient ccw for the incircle sign convention *)
      let tri = if B.gt o B.zero then (a, b, c) else (a, c, b) in
      for d = 0 to points - 1 do
        if d <> a && d <> b && d <> c then begin
          let det = exact_incircle pts tri d in
          checkb
            (Printf.sprintf "point %d outside circumcircle of (%d,%d,%d)" d a b c)
            false
            (B.gt det tie_margin)
        end
      done)
    tris

let generic_points_delaunay () = delaunay_property ~points:12 ~cocircular:0.0 ~seed:3

let cocircular_points_delaunay () =
  (* half the points on one circle: ties decided by the exact fallback *)
  delaunay_property ~points:12 ~cocircular:0.5 ~seed:5

let analysis_of_mesh_generation () =
  let points = 10 in
  let prog = Workloads.Delaunay.compile ~points () in
  let inputs = Workloads.Delaunay.inputs ~points ~cocircular:0.6 ~seed:9 in
  let r =
    Core.Analysis.analyze ~cfg:Core.Config.fast ~max_steps:1_000_000_000 ~inputs
      prog
  in
  (* cocircular ties force the compensated fallback on every insertion
     near the circle; on exactly-tied data that arithmetic is exact (no
     local error anywhere above threshold -- correct, nothing to blame),
     so the check here is scale plus the absence of false positives *)
  checkb "mesh-scale shadowing" true
    (r.Core.Analysis.raw.Core.Exec.r_stats.Core.Exec.fp_ops > 2000);
  (* the mesh counts and quality are data-dependent but must not be
     blamed on the error-free transformations *)
  let blamed =
    List.exists
      (fun (s : Core.Exec.spot_info) ->
        Core.Shadow.IntSet.exists
          (fun id ->
            match Hashtbl.find_opt r.Core.Analysis.raw.Core.Exec.r_ops id with
            | Some o ->
                let f = o.Core.Exec.o_loc.Vex.Ir.func in
                f = "two_sum" || f = "two_diff" || f = "two_product"
            | None -> false)
          s.Core.Exec.s_infl)
      (Core.Analysis.output_spots r)
  in
  checkb "EFTs not blamed" false blamed

let degeneracy_increases_work () =
  let fp_ops cocircular =
    let points = 10 in
    let prog = Workloads.Delaunay.compile ~points () in
    let inputs = Workloads.Delaunay.inputs ~points ~cocircular ~seed:4 in
    let r =
      Core.Analysis.analyze ~cfg:Core.Config.fast ~max_steps:1_000_000_000
        ~inputs prog
    in
    r.Core.Analysis.raw.Core.Exec.r_stats.Core.Exec.fp_ops
  in
  let generic = fp_ops 0.0 and degenerate = fp_ops 0.9 in
  checkb
    (Printf.sprintf "cocircular (%d) > generic (%d) fp ops" degenerate generic)
    true
    (degenerate > generic)

let () =
  Alcotest.run "delaunay"
    [
      ( "triangulation",
        [
          Alcotest.test_case "generic points" `Quick generic_points_delaunay;
          Alcotest.test_case "cocircular points" `Quick cocircular_points_delaunay;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "mesh generation analyzed" `Quick
            analysis_of_mesh_generation;
          Alcotest.test_case "degeneracy drives work" `Quick
            degeneracy_increases_work;
        ] );
    ]
