(* Tests for the Herbgrind analysis core: error detection, influence
   tracking across functions and the heap, symbolic expression recovery
   with anti-unification, compensation detection, spots, and the
   type-inference fast path. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let cfg = Core.Config.fast (* 128-bit shadow precision for test speed *)

let analyze ?(cfg = cfg) ?(wrap_libm = true) ?inputs src =
  let prog = Minic.compile ~wrap_libm ~file:"test.mc" src in
  Core.Analysis.analyze ~cfg ?inputs prog

(* ---------- basic error detection ---------- *)

let detects_catastrophic_cancellation () =
  (* (x + 1) - x at x = 1e16: silent error, caught by the shadow reals *)
  let r =
    analyze
      {| int main() {
           int i;
           for (i = 0; i < 8; i = i + 1) {
             double x = 1.0e16 + (double) i * 3.0e15;
             double y = (x + 1.0) - x;
             print(y);
           }
           return 0;
         } |}
  in
  let spots = Core.Analysis.output_spots r in
  checki "one output spot" 1 (List.length spots);
  let s = List.hd spots in
  checki "8 instances" 8 s.Core.Exec.s_total;
  checkb "high output error" true (s.Core.Exec.s_err_max > 50.0);
  checkb "has influences" true (not (Core.Shadow.IntSet.is_empty s.Core.Exec.s_infl));
  (* the erroneous op is the subtraction; its recovered expression should
     be (- (+ x 1) x) *)
  let errs = Core.Analysis.erroneous_expressions r in
  checkb "found erroneous expression" true (List.length errs >= 1);
  let _, fpcore, _ = List.hd errs in
  checks "recovered subtraction" "(FPCore (x) (- (+ x 1) x))" fpcore

let accurate_program_is_clean () =
  let r =
    analyze
      {| int main() {
           int i;
           double s = 0.0;
           for (i = 1; i < 50; i = i + 1) {
             s = s + 1.0 / (double) i;
           }
           print(s);
           return 0;
         } |}
  in
  let spots = Core.Analysis.output_spots r in
  let s = List.hd spots in
  checkb "harmonic sum is accurate" true (s.Core.Exec.s_err_max < 3.0);
  checki "no erroneous expressions" 0
    (List.length (Core.Analysis.erroneous_expressions r))

(* ---------- non-local error (paper section 2.2) ---------- *)

let nonlocal_error_through_functions_and_heap () =
  (* the paper's foo/bar example: points built in one function, the
     erroneous combination only visible across the call boundary *)
  let r =
    analyze
      {| double pa[2];
         double pb[2];
         void mk_point(double a[], double x, double y) {
           a[0] = x;
           a[1] = y;
         }
         double foo() {
           return ((pa[0] + pa[1]) - (pb[0] + pb[1])) * pa[0];
         }
         double bar(double x, double y, double z) {
           mk_point(pa, x, y);
           mk_point(pb, x, z);
           return foo();
         }
         int main() {
           int i;
           for (i = 0; i < 4; i = i + 1) {
             print(bar(1.0e16 + (double) i * 1.0e15, 1.0, 0.0));
           }
           return 0;
         } |}
  in
  let spots = Core.Analysis.output_spots r in
  let s = List.hd spots in
  checkb "output wildly wrong" true (s.Core.Exec.s_err_max > 40.0);
  (* influence must have crossed mk_point (heap) and foo (function) *)
  let errs = Core.Analysis.erroneous_expressions r in
  checkb "root cause found" true (List.length errs >= 1);
  let influenced =
    Core.Shadow.IntSet.exists
      (fun id ->
        match Hashtbl.find_opt r.Core.Analysis.raw.Core.Exec.r_ops id with
        | Some o -> o.Core.Exec.o_loc.Vex.Ir.func = "foo"
        | None -> false)
      s.Core.Exec.s_infl
  in
  checkb "influence points into foo" true influenced

(* ---------- branch spots ---------- *)

let branch_spot_on_flipped_comparison () =
  (* 1e16 + 1 == 1e16 in doubles but not in the reals: the comparison goes
     the wrong way *)
  let r =
    analyze
      {| int main() {
           double x = 1.0e16;
           double y = x + 1.0;
           if (y > x) {
             print(1);
           } else {
             print(0);
           }
           return 0;
         } |}
  in
  let branches = Core.Analysis.branch_spots r in
  let diverged =
    List.filter (fun s -> s.Core.Exec.s_incorrect > 0) branches
  in
  checkb "a branch diverged" true (List.length diverged >= 1)

let correct_branches_not_flagged () =
  let r =
    analyze
      {| int main() {
           double x = 2.0;
           if (x * x > 3.0) { print(1); } else { print(0); }
           return 0;
         } |}
  in
  List.iter
    (fun s -> checki "no incorrect branch" 0 s.Core.Exec.s_incorrect)
    (Core.Analysis.branch_spots r)

(* ---------- conversion spots ---------- *)

let conversion_spot () =
  (* floor-like conversion where accumulated error crosses an integer
     boundary: 0.1 summed 10 times is just under 1.0 *)
  let r =
    analyze
      {| int main() {
           double s = 0.0;
           int i;
           for (i = 0; i < 10; i = i + 1) { s = s + 0.1; }
           int k = (int) (s * 10.0);
           print(k);
           return 0;
         } |}
  in
  let converts =
    Hashtbl.fold
      (fun _ (s : Core.Exec.spot_info) acc ->
        match s.Core.Exec.s_kind with
        | Core.Exec.Spot_convert -> s :: acc
        | _ -> acc)
      r.Core.Analysis.raw.Core.Exec.r_spots []
  in
  checkb "conversion spot exists" true (List.length converts >= 1);
  let diverged = List.exists (fun s -> s.Core.Exec.s_incorrect > 0) converts in
  checkb "conversion diverged from reals" true diverged

(* ---------- the while-loop 0.2 surprise (paper 8.1 / E10) ---------- *)

let loop_condition_extra_iteration () =
  (* counting to 1.0 by 0.1: binary cannot represent 0.1, so after ten
     steps the client total is just below 1.0 and the loop runs once more
     than the real-number execution would (paper 8.1) *)
  let r =
    analyze
      {| int main() {
           double t = 0.0;
           int n = 0;
           while (t < 1.0) {
             t = t + 0.1;
             n = n + 1;
           }
           print(n);
           return 0;
         } |}
  in
  let branches = Core.Analysis.branch_spots r in
  let diverged = List.filter (fun s -> s.Core.Exec.s_incorrect > 0) branches in
  checkb "loop condition flagged" true (List.length diverged >= 1);
  checki "exactly one wrong instance" 1
    (List.fold_left (fun a s -> a + s.Core.Exec.s_incorrect) 0 diverged)

(* ---------- symbolic expression recovery ---------- *)

let recovers_sqrt_expression () =
  let r =
    analyze
      {| int main() {
           int i;
           for (i = 0; i < 6; i = i + 1) {
             double x = 1.0e14 + (double) i * 7.0e13;
             print(sqrt(x + 1.0) - sqrt(x));
           }
           return 0;
         } |}
  in
  let errs = Core.Analysis.erroneous_expressions r in
  checkb "found" true (List.length errs >= 1);
  let _, fpcore, _ = List.hd errs in
  checks "sqrt cancellation recovered" "(FPCore (x) (- (sqrt (+ x 1)) (sqrt x)))"
    fpcore

let equivalence_pruning_collapses_common_subexpression () =
  (* sqrt(y+1) - sqrt(y) with y = x * 12345.67 computed twice: the paper's
     section 4.4 example; both occurrences are runtime-equal, so they are
     generalized to one variable *)
  let r =
    analyze
      {| int main() {
           int i;
           for (i = 0; i < 6; i = i + 1) {
             double x = 1.0e10 + (double) i * 3.0e9;
             double r = sqrt(x * 12345.67 + 1.0) - sqrt(x * 12345.67);
             print(r);
           }
           return 0;
         } |}
  in
  let errs = Core.Analysis.erroneous_expressions r in
  checkb "found" true (List.length errs >= 1);
  let _, fpcore, _ = List.hd errs in
  checks "pruned to one variable" "(FPCore (x) (- (sqrt (+ x 1)) (sqrt x)))"
    fpcore

let classic_antiunify_keeps_structure () =
  let cfg = { cfg with Core.Config.classic_antiunify = true } in
  let inputs = Array.init 6 (fun i -> 1.0e10 +. (float_of_int i *. 3.0e9)) in
  let r =
    analyze ~cfg ~inputs
      {| int main() {
           int i;
           for (i = 0; i < 6; i = i + 1) {
             double x = __arg(i);
             double r = sqrt(x * 12345.67 + 1.0) - sqrt(x * 12345.67);
             print(r);
           }
           return 0;
         } |}
  in
  let errs = Core.Analysis.erroneous_expressions r in
  checkb "found" true (List.length errs >= 1);
  let _, fpcore, _ = List.hd errs in
  (* classical most-specific generalization keeps the multiplication
     structure; equal-value leaves still share one variable *)
  checks "full structure kept"
    "(FPCore (x) (- (sqrt (+ (* x 12345.67) 1)) (sqrt (* x 12345.67))))"
    fpcore

let pruning_respects_straddle_criterion () =
  (* (sqrt(y+1) - sqrt(y)) * (y+1): substituting z = y+1 would hide the
     relation between the two sides of the subtraction, so Herbgrind must
     NOT prune (paper's equation 3/4 example) *)
  let r =
    analyze
      {| int main() {
           int i;
           for (i = 0; i < 6; i = i + 1) {
             double y = 1.0e14 + (double) i * 7.0e13;
             double r = (sqrt(y + 1.0) - sqrt(y)) * (y + 1.0);
             print(r);
           }
           return 0;
         } |}
  in
  let errs = Core.Analysis.erroneous_expressions r in
  checkb "found" true (List.length errs >= 1);
  (* find the expression for the subtraction op *)
  let sub_exprs =
    List.filter (fun (_, _, o) -> o.Core.Exec.o_name = "-") errs
  in
  checkb "subtraction flagged" true (List.length sub_exprs >= 1);
  let _, fpcore, _ = List.hd sub_exprs in
  checks "not over-pruned" "(FPCore (x) (- (sqrt (+ x 1)) (sqrt x)))" fpcore

let constant_generalization () =
  (* a position whose value never varies becomes a constant, not a
     variable (Herbgrind's first modification to anti-unification) *)
  let r =
    analyze
      {| int main() {
           int i;
           for (i = 0; i < 6; i = i + 1) {
             double x = 1.0e16 + (double) i * 3.0e15;
             print((x + 42.0) - x);
           }
           return 0;
         } |}
  in
  let errs = Core.Analysis.erroneous_expressions r in
  let _, fpcore, _ = List.hd errs in
  checks "42 stays a constant" "(FPCore (x) (- (+ x 42) x))" fpcore

let same_value_positions_share_variable () =
  (* x used twice: (x * x) - (x * x + 1) style; both x leaves unify *)
  let r =
    analyze
      {| int main() {
           int i;
           for (i = 0; i < 6; i = i + 1) {
             double x = 3.0e8 + (double) i * 1.0e7;
             print((x * x + 1.0) - x * x);
           }
           return 0;
         } |}
  in
  let errs = Core.Analysis.erroneous_expressions r in
  checkb "found" true (List.length errs >= 1);
  let _, fpcore, _ = List.hd errs in
  (* with pruning, x*x collapses to one variable *)
  checks "multiplications unified" "(FPCore (x) (- (+ x 1) x))" fpcore

(* ---------- compensation detection (paper 5.4 / Triangle) ---------- *)

let compensation_not_reported () =
  (* two_sum: the compensating term (an exact error term) has huge local
     error but makes the overall computation MORE accurate; it must not be
     reported as a root cause *)
  let r =
    analyze
      {| int main() {
           int i;
           double sum = 0.0;
           double comp = 0.0;
           for (i = 0; i < 50; i = i + 1) {
             double x = 0.1;
             double t = sum + x;
             double e = (sum - t) + x;   // compensating term
             comp = comp + e;
             sum = t;
           }
           print(sum + comp);
           return 0;
         } |}
  in
  checkb "compensations detected" true
    (r.Core.Analysis.raw.Core.Exec.r_stats.Core.Exec.compensations > 0);
  let spots = Core.Analysis.output_spots r in
  let s = List.hd spots in
  checkb "compensated sum is accurate" true (s.Core.Exec.s_err_max < 2.0);
  checkb "no influences on output" true
    (Core.Shadow.IntSet.is_empty s.Core.Exec.s_infl)

let uncompensated_sum_flagged_vs_compensated () =
  (* sanity for the compensation test: the naive sum of 0.1 should carry a
     bit more error than the Kahan sum *)
  let run src =
    let r = analyze src in
    (List.hd (Core.Analysis.output_spots r)).Core.Exec.s_err_max
  in
  let naive =
    run
      {| int main() {
           int i;
           double sum = 0.0;
           for (i = 0; i < 5000; i = i + 1) { sum = sum + 0.1; }
           print(sum);
           return 0;
         } |}
  in
  let kahan =
    run
      {| int main() {
           int i;
           double sum = 0.0;
           double c = 0.0;
           for (i = 0; i < 5000; i = i + 1) {
             double y = 0.1 - c;
             double t = sum + y;
             c = (t - sum) - y;
             sum = t;
           }
           print(sum);
           return 0;
         } |}
  in
  checkb
    (Printf.sprintf "kahan (%.2f bits) beats naive (%.2f bits)" kahan naive)
    true (kahan <= naive)

(* ---------- libm wrapping (paper 5.4 / 8.2) ---------- *)

let wrapped_libm_gives_clean_traces () =
  let inputs = Array.init 5 (fun i -> 1.0e-9 +. (float_of_int i *. 1.0e-10)) in
  let r =
    analyze ~inputs
      {| int main() {
           int i;
           for (i = 0; i < 5; i = i + 1) {
             double x = __arg(i);
             print(exp(x) - 1.0);
           }
           return 0;
         } |}
  in
  let errs = Core.Analysis.erroneous_expressions r in
  checkb "found cancellation" true (List.length errs >= 1);
  let _, fpcore, _ = List.hd errs in
  checks "clean exp trace" "(FPCore (x) (- (exp x) 1))" fpcore

let unwrapped_libm_exposes_internals () =
  let inputs = Array.init 5 (fun i -> 1.0e-9 +. (float_of_int i *. 1.0e-10)) in
  let r =
    analyze ~wrap_libm:false ~inputs
      {| int main() {
           int i;
           for (i = 0; i < 5; i = i + 1) {
             double x = __arg(i);
             print(exp(x) - 1.0);
           }
           return 0;
         } |}
  in
  (* the magic constant 6755399441055744 from the MiniC exp implementation
     must appear somewhere in the recovered expressions *)
  let all = Core.Analysis.all_expressions r in
  let has_magic =
    List.exists (fun (_, fp, _) ->
      let re = Str.regexp_string "6755399441055744" in
      (try ignore (Str.search_forward re fp 0); true with Not_found -> false))
      all
  in
  checkb "magic constant leaks into traces" true has_magic;
  (* and expressions get much larger than the wrapped (- (exp x) 1) *)
  let max_ops =
    List.fold_left
      (fun m (e, _, _) -> max m (Core.Antiunify.sym_op_count e))
      0 all
  in
  checkb "internal expressions are large" true (max_ops > 10)

(* ---------- ablations agree on client behaviour ---------- *)

let src_mixed =
  {| double work(double a[], int n) {
       double s = 0.0;
       int i;
       for (i = 0; i < n; i = i + 1) {
         s = s + a[i] * a[i] - 0.25;
       }
       return sqrt(fabs(s));
     }
     int main() {
       double xs[16];
       int i;
       for (i = 0; i < 16; i = i + 1) {
         xs[i] = (double) (i - 8) * 0.75;
       }
       print(work(xs, 16));
       if (work(xs, 16) > 10.0) { print(1); } else { print(0); }
       return 0;
     } |}

let ablations_preserve_client_outputs () =
  let base = Minic.run ~file:"t.mc" src_mixed in
  let base_floats =
    List.filter_map
      (fun (o : Vex.Machine.output) ->
        match o.Vex.Machine.value with
        | Vex.Value.VF64 f -> Some f
        | _ -> None)
      base
  in
  let variants =
    [
      cfg;
      { cfg with Core.Config.enable_reals = false };
      { cfg with Core.Config.enable_expressions = false };
      { cfg with Core.Config.enable_influences = false };
      { cfg with Core.Config.type_inference = false };
      { cfg with Core.Config.detect_compensation = false };
    ]
  in
  List.iter
    (fun cfg ->
      let r = analyze ~cfg src_mixed in
      let floats = Core.Analysis.output_floats r in
      checkb "client outputs identical" true (floats = base_floats))
    variants

let type_inference_preserves_analysis () =
  let with_ti = analyze src_mixed in
  let without_ti =
    analyze ~cfg:{ cfg with Core.Config.type_inference = false } src_mixed
  in
  let summarize (r : Core.Analysis.result) =
    Hashtbl.fold
      (fun id (o : Core.Exec.op_info) acc ->
        (id, o.Core.Exec.o_count, o.Core.Exec.o_local_err_max) :: acc)
      r.Core.Analysis.raw.Core.Exec.r_ops []
    |> List.sort compare
  in
  checkb "same ops and errors" true (summarize with_ti = summarize without_ti);
  (* and the fast path actually skipped work *)
  let s1 = with_ti.Core.Analysis.raw.Core.Exec.r_stats in
  let s2 = without_ti.Core.Analysis.raw.Core.Exec.r_stats in
  checkb "fewer instrumented statements with inference" true
    (s1.Core.Exec.stmts_instrumented < s2.Core.Exec.stmts_instrumented)

let reals_off_marks_nothing () =
  let r =
    analyze ~cfg:{ cfg with Core.Config.enable_reals = false }
      {| int main() {
           int i;
           for (i = 0; i < 4; i = i + 1) {
             double x = 1.0e16 + (double) i;
             print((x + 1.0) - x);
           }
           return 0;
         } |}
  in
  checki "nothing marked without reals" 0
    (List.length (Core.Analysis.erroneous_expressions r));
  let spots = Core.Analysis.output_spots r in
  checkb "spot error reads zero" true
    ((List.hd spots).Core.Exec.s_err_max = 0.0)

(* ---------- SIMD and bit tricks on hand-built VEX ---------- *)

let simd_ops_shadowed () =
  (* a hand-built VEX block, mimicking a vectorized loop body: pack two
     doubles, SIMD-subtract, extract, and print; checks shadow lanes *)
  let b = Vex.Builder.create "entry" in
  let open Vex.Ir in
  let t_x = Vex.Builder.new_temp b F64 in
  Vex.Builder.emit b (IMark { file = "simd.vex"; line = 1; func = "main" });
  Vex.Builder.emit b (WrTmp (t_x, Const (CF64 1.0e16)));
  let t_x1 = Vex.Builder.new_temp b F64 in
  Vex.Builder.emit b
    (WrTmp (t_x1, Binop (AddF64, RdTmp t_x, Const (CF64 1.0))));
  (* pack [x+1; x+1] and [x; x] *)
  let bits a = Unop (ReinterpF64asI64, a) in
  let t_v1 = Vex.Builder.new_temp b V128 in
  Vex.Builder.emit b
    (WrTmp (t_v1, Binop (I64HLtoV128, bits (RdTmp t_x1), bits (RdTmp t_x1))));
  let t_v2 = Vex.Builder.new_temp b V128 in
  Vex.Builder.emit b
    (WrTmp (t_v2, Binop (I64HLtoV128, bits (RdTmp t_x), bits (RdTmp t_x))));
  let t_diff = Vex.Builder.new_temp b V128 in
  Vex.Builder.emit b (WrTmp (t_diff, Binop (Sub64Fx2, RdTmp t_v1, RdTmp t_v2)));
  let t_lo = Vex.Builder.new_temp b F64 in
  Vex.Builder.emit b
    (WrTmp (t_lo, Unop (ReinterpI64asF64, Unop (V128to64, RdTmp t_diff))));
  Vex.Builder.emit b (Out (OutFloat, RdTmp t_lo));
  let block = Vex.Builder.finish b Halt in
  let prog = Vex.Ir.make_prog [ block ] in
  let r = Core.Analysis.analyze ~cfg prog in
  let spots = Core.Analysis.output_spots r in
  checki "spot recorded" 1 (List.length spots);
  checkb "SIMD error detected" true ((List.hd spots).Core.Exec.s_err_max > 40.0)

let shadow_storage_overlap () =
  (* paper 5.2: writes must clear overlapping shadows; reads that do not
     match the size/alignment of the original write see no shadow *)
  let open Vex.Ir in
  let b = Vex.Builder.create "entry" in
  Vex.Builder.emit b (IMark { file = "ov.vex"; line = 1; func = "main" });
  (* an erroneous double stored at address 64 *)
  let x =
    Vex.Builder.assign b F64 (Binop (AddF64, Const (CF64 1e16), Const (CF64 1.0)))
  in
  let bad = Vex.Builder.assign b F64 (Binop (SubF64, x, Const (CF64 1e16))) in
  Vex.Builder.emit b (Store (Const (CI64 64L), bad));
  (* (a) read back as F64: shadow survives, full error visible *)
  let r1 = Vex.Builder.assign b F64 (Load (F64, Const (CI64 64L))) in
  Vex.Builder.emit b (Out (OutFloat, r1));
  (* (b) clobber its middle with an integer store, read again: the
     shadow must be gone (value reads as leaf, error invisible) *)
  Vex.Builder.emit b (Store (Const (CI64 68L), Const (CI32 42l)));
  let r2 = Vex.Builder.assign b F64 (Load (F64, Const (CI64 64L))) in
  Vex.Builder.emit b (Out (OutFloat, r2));
  (* (c) store the shadowed double again, then read a mismatched F32 from
     its middle: conservatively unshadowed *)
  Vex.Builder.emit b (Store (Const (CI64 96L), bad));
  let r3 = Vex.Builder.assign b F32 (Load (F32, Const (CI64 100L))) in
  Vex.Builder.emit b (Out (OutFloat, Unop (F32toF64, r3)));
  let prog = Vex.Ir.make_prog [ Vex.Builder.finish b Halt ] in
  let r = Core.Analysis.analyze ~cfg prog in
  (match
     List.sort
       (fun (a : Core.Exec.spot_info) b ->
         compare a.Core.Exec.s_id b.Core.Exec.s_id)
       (Core.Analysis.output_spots r)
   with
  | [ s1; s2; s3 ] ->
      checkb "intact shadow sees the error" true (s1.Core.Exec.s_err_max > 50.0);
      checkb "clobbered shadow is cleared" true (s2.Core.Exec.s_err_max = 0.0);
      checkb "mismatched read is unshadowed" true (s3.Core.Exec.s_err_max = 0.0)
  | spots ->
      Alcotest.fail (Printf.sprintf "expected 3 spots, got %d" (List.length spots)))

let simd_store_load_lanes () =
  (* a V128 store then scalar F64 loads of each half: lane shadows arrive *)
  let open Vex.Ir in
  let b = Vex.Builder.create "entry" in
  Vex.Builder.emit b (IMark { file = "lanes.vex"; line = 1; func = "main" });
  let x =
    Vex.Builder.assign b F64 (Binop (AddF64, Const (CF64 1e16), Const (CF64 1.0)))
  in
  let bad = Vex.Builder.assign b F64 (Binop (SubF64, x, Const (CF64 1e16))) in
  let bits e = Unop (ReinterpF64asI64, e) in
  let v =
    Vex.Builder.assign b V128
      (Binop (I64HLtoV128, bits bad, bits (Const (CF64 2.0))))
  in
  Vex.Builder.emit b (Store (Const (CI64 128L), v));
  let lo = Vex.Builder.assign b F64 (Load (F64, Const (CI64 128L))) in
  let hi = Vex.Builder.assign b F64 (Load (F64, Const (CI64 136L))) in
  Vex.Builder.emit b (Out (OutFloat, lo));
  Vex.Builder.emit b (Out (OutFloat, hi));
  let prog = Vex.Ir.make_prog [ Vex.Builder.finish b Halt ] in
  let r = Core.Analysis.analyze ~cfg prog in
  (match
     List.sort
       (fun (a : Core.Exec.spot_info) b ->
         compare a.Core.Exec.s_id b.Core.Exec.s_id)
       (Core.Analysis.output_spots r)
   with
  | [ s_lo; s_hi ] ->
      checkb "clean low lane" true (s_lo.Core.Exec.s_err_max < 1.0);
      checkb "erroneous high lane" true (s_hi.Core.Exec.s_err_max > 50.0)
  | spots ->
      Alcotest.fail (Printf.sprintf "expected 2 spots, got %d" (List.length spots)))

let bit_trick_negation_shadowed () =
  (* compiled unary minus keeps exact shadow: -(x) has zero local error
     and influence flows through *)
  let r =
    analyze
      {| int main() {
           int i;
           for (i = 0; i < 4; i = i + 1) {
             double x = 1.0e16 + (double) i * 1.0e15;
             double bad = (x + 1.0) - x;
             print(-bad);
           }
           return 0;
         } |}
  in
  let spots = Core.Analysis.output_spots r in
  let s = List.hd spots in
  checkb "error survives negation" true (s.Core.Exec.s_err_max > 40.0);
  checkb "influences survive negation" true
    (not (Core.Shadow.IntSet.is_empty s.Core.Exec.s_infl))

(* ---------- user spot marks (paper footnote 9) ---------- *)

let user_spot_marks () =
  (* benchmark-style code with no outputs: __mark makes the analysis
     watch a value without printing it *)
  let r =
    analyze
      {| int main() {
           int i;
           for (i = 0; i < 4; i = i + 1) {
             double x = 1.0e16 + (double) i;
             double bad = (x + 1.0) - x;
             __mark(bad);
           }
           return 0;
         } |}
  in
  checki "no program outputs" 0 (List.length (Core.Analysis.output_floats r));
  let spots = Core.Analysis.output_spots r in
  checki "mark creates a spot" 1 (List.length spots);
  let s = List.hd spots in
  checki "4 instances" 4 s.Core.Exec.s_total;
  checkb "error observed at mark" true (s.Core.Exec.s_err_max > 50.0);
  checkb "influences recorded" true
    (not (Core.Shadow.IntSet.is_empty s.Core.Exec.s_infl))

(* ---------- report formatting ---------- *)

let report_golden () =
  (* exact report text for a fixed program: guards both content and the
     paper's formatting *)
  let r =
    analyze
      {| int main() {
           int i;
           for (i = 0; i < 4; i = i + 1) {
             double x = 1.0e16 + (double) i;
             print((x + 1.0) - x);
           }
           return 0;
         } |}
  in
  let expected =
    "Output in main at test.mc:5\n\
    \  62.0 bits max error, 59.5 bits average error\n\
    \  4 total instances\n\
    \  Influenced by erroneous expressions:\n\
    \    57.0 bits average local error (max 62.0)\n\
    \    (FPCore (x) (- (+ x 1) x))\n\
    \      in main at test.mc:5\n\
    \      Aggregated over 4 instances\n"
  in
  checks "golden report" expected (Core.Analysis.report_string r)

let report_renders () =
  let r =
    analyze
      {| int main() {
           int i;
           for (i = 0; i < 4; i = i + 1) {
             double x = 1.0e16 + (double) i;
             print((x + 1.0) - x);
           }
           return 0;
         } |}
  in
  let s = Core.Analysis.report_string r in
  checkb "mentions Output spot" true
    (try ignore (Str.search_forward (Str.regexp_string "Output in main") s 0); true
     with Not_found -> false);
  checkb "mentions FPCore" true
    (try ignore (Str.search_forward (Str.regexp_string "(FPCore") s 0); true
     with Not_found -> false);
  checkb "mentions instance counts" true
    (try ignore (Str.search_forward (Str.regexp_string "instances") s 0); true
     with Not_found -> false)

let () =
  Alcotest.run "core"
    [
      ( "detection",
        [
          Alcotest.test_case "catastrophic cancellation" `Quick
            detects_catastrophic_cancellation;
          Alcotest.test_case "accurate program clean" `Quick
            accurate_program_is_clean;
          Alcotest.test_case "non-local error" `Quick
            nonlocal_error_through_functions_and_heap;
        ] );
      ( "spots",
        [
          Alcotest.test_case "branch divergence" `Quick
            branch_spot_on_flipped_comparison;
          Alcotest.test_case "correct branches clean" `Quick
            correct_branches_not_flagged;
          Alcotest.test_case "conversion spot" `Quick conversion_spot;
          Alcotest.test_case "0.2-step loop surprise" `Quick
            loop_condition_extra_iteration;
        ] );
      ( "expressions",
        [
          Alcotest.test_case "sqrt recovery" `Quick recovers_sqrt_expression;
          Alcotest.test_case "equivalence pruning" `Quick
            equivalence_pruning_collapses_common_subexpression;
          Alcotest.test_case "classic anti-unification" `Quick
            classic_antiunify_keeps_structure;
          Alcotest.test_case "straddle criterion" `Quick
            pruning_respects_straddle_criterion;
          Alcotest.test_case "constant generalization" `Quick
            constant_generalization;
          Alcotest.test_case "shared variables" `Quick
            same_value_positions_share_variable;
        ] );
      ( "compensation",
        [
          Alcotest.test_case "compensation suppressed" `Quick
            compensation_not_reported;
          Alcotest.test_case "kahan beats naive" `Quick
            uncompensated_sum_flagged_vs_compensated;
        ] );
      ( "wrapping",
        [
          Alcotest.test_case "wrapped traces clean" `Quick
            wrapped_libm_gives_clean_traces;
          Alcotest.test_case "unwrapped exposes internals" `Quick
            unwrapped_libm_exposes_internals;
        ] );
      ( "ablations",
        [
          Alcotest.test_case "client outputs preserved" `Quick
            ablations_preserve_client_outputs;
          Alcotest.test_case "type inference transparent" `Quick
            type_inference_preserves_analysis;
          Alcotest.test_case "reals off marks nothing" `Quick
            reals_off_marks_nothing;
        ] );
      ( "machine-level",
        [
          Alcotest.test_case "SIMD shadowing" `Quick simd_ops_shadowed;
          Alcotest.test_case "bit-trick negation" `Quick
            bit_trick_negation_shadowed;
          Alcotest.test_case "storage overlap semantics" `Quick
            shadow_storage_overlap;
          Alcotest.test_case "SIMD store/load lanes" `Quick
            simd_store_load_lanes;
        ] );
      ("marks", [ Alcotest.test_case "user spot marks" `Quick user_spot_marks ]);
      ( "report",
        [
          Alcotest.test_case "renders" `Quick report_renders;
          Alcotest.test_case "golden" `Quick report_golden;
        ] );
    ]
