(* Tests for the FPCore front-end and the FPBench suite: parsing, the two
   direct evaluators, compilation to MiniC/VEX, and the paper's section
   8.1 expression-recovery claim on the vendored benchmarks. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

(* ---------- parsing ---------- *)

let parse_simple () =
  let core = Fpcore.Parse.parse_core "(FPCore (x y) (+ (* x x) y))" in
  Alcotest.(check (list string)) "args" [ "x"; "y" ] core.Fpcore.Ast.args;
  checki "ops" 2 (Fpcore.Ast.op_count core.Fpcore.Ast.body)

let parse_props () =
  let core =
    Fpcore.Parse.parse_core
      "(FPCore (x) :name \"test\" :pre (< 0 x) (sqrt x))"
  in
  checks "name" "test" (Option.get core.Fpcore.Ast.name);
  checkb "pre" true (core.Fpcore.Ast.pre <> None)

let parse_let_while () =
  let core =
    Fpcore.Parse.parse_core
      "(FPCore (a) (while (< i 10) ((i 0 (+ i 1)) (s a (* s 2))) s))"
  in
  checkb "loop" true (Fpcore.Ast.has_loop core.Fpcore.Ast.body)

let parse_rationals () =
  let core = Fpcore.Parse.parse_core "(FPCore (x) (* x 17/4))" in
  match core.Fpcore.Ast.body with
  | Fpcore.Ast.Op ("*", [ _; Fpcore.Ast.Num f ]) ->
      checkb "17/4" true (f = 4.25)
  | _ -> Alcotest.fail "bad parse"

let whole_suite_parses () =
  List.iter
    (fun (b : Fpcore.Suite.bench) ->
      match Fpcore.Suite.core_of b with
      | core ->
          (* free variables must be exactly the declared arguments *)
          let free =
            List.sort_uniq compare
              (Fpcore.Ast.free_vars_expr [] core.Fpcore.Ast.body)
          in
          let declared = List.sort_uniq compare core.Fpcore.Ast.args in
          List.iter
            (fun v ->
              checkb
                (Printf.sprintf "%s: free var %s declared" b.Fpcore.Suite.name v)
                true (List.mem v declared))
            free
      | exception e ->
          Alcotest.fail
            (Printf.sprintf "%s failed to parse: %s" b.Fpcore.Suite.name
               (Printexc.to_string e)))
    Fpcore.Suite.all

let suite_group_counts () =
  checkb "enough straight-line benchmarks" true
    (List.length Fpcore.Suite.straight_line >= 40);
  checkb "enough looping benchmarks" true
    (List.length Fpcore.Suite.looping >= 10)

(* ---------- evaluators agree ---------- *)

let evaluators_agree_with_compiled_code () =
  (* The float evaluator, and the MiniC-compiled program on the VEX
     machine, must produce bit-identical outputs. *)
  List.iter
    (fun (b : Fpcore.Suite.bench) ->
      let core = Fpcore.Suite.core_of b in
      let n = 4 in
      let inputs = Fpcore.Suite.inputs_for ~seed:7 b ~n in
      let prog = Fpcore.Compile.compile ~n_inputs:n core in
      let st = Vex.Machine.run ~inputs prog in
      let compiled = Vex.Machine.output_floats st in
      let nvars = List.length core.Fpcore.Ast.args in
      let direct =
        List.init n (fun i ->
            let env =
              List.mapi (fun k x -> (x, inputs.((i * nvars) + k)))
                core.Fpcore.Ast.args
            in
            Fpcore.Eval.eval_f env core.Fpcore.Ast.body)
      in
      checki (b.Fpcore.Suite.name ^ " count") n (List.length compiled);
      List.iter2
        (fun d c ->
          checkb
            (Printf.sprintf "%s: direct %h vs compiled %h" b.Fpcore.Suite.name
               d c)
            true
            (Int64.equal (Int64.bits_of_float d) (Int64.bits_of_float c)))
        direct compiled)
    (* a representative subset to keep the test fast: every kind of
       construct *)
    (List.map Fpcore.Suite.find
       [ "intro-example"; "doppler1"; "jet-engine"; "kepler2"; "himmilbeau";
         "verhulst"; "quadratic-m"; "nmse-3-4"; "nmse-ex310"; "cav10";
         "triangle-area"; "variance-naive"; "logistic-map"; "pid-controller";
         "newton-sqrt"; "euler-oscillator"; "trapeze-integral";
         "geometric-series" ])

let real_evaluator_catches_error () =
  (* nmse-3-1 at large x loses about half the bits *)
  let core = Fpcore.Suite.core_of (Fpcore.Suite.find "nmse-3-1") in
  let results = Fpcore.Eval.error_on_inputs core [ [| 1e12 |] ] in
  match results with
  | [ (_, err) ] -> checkb (Printf.sprintf "error %.1f bits" err) true (err > 10.0)
  | _ -> Alcotest.fail "expected one result"

let accurate_benchmark_is_accurate () =
  let core = Fpcore.Suite.core_of (Fpcore.Suite.find "hypot-naive") in
  let results = Fpcore.Eval.error_on_inputs core [ [| 3.0; 4.0 |] ] in
  match results with
  | [ (v, err) ] ->
      checkb "value 5" true (v = 5.0);
      checkb "small error" true (err < 1.0)
  | _ -> Alcotest.fail "expected one result"

(* ---------- section 8.1: recovery of the benchmark expression ---------- *)

let cfg = Core.Config.fast

let analyze_bench ?(n = 6) (b : Fpcore.Suite.bench) =
  let core = Fpcore.Suite.core_of b in
  let inputs = Fpcore.Suite.inputs_for ~seed:3 b ~n in
  let prog = Fpcore.Compile.compile ~n_inputs:n core in
  Core.Analysis.analyze ~cfg ~inputs prog

let recovery_nmse31 () =
  let r = analyze_bench (Fpcore.Suite.find "nmse-3-1") in
  let errs = Core.Analysis.erroneous_expressions r in
  checkb "found" true (List.length errs >= 1);
  let _, fpcore, _ = List.hd errs in
  checks "recovered" "(FPCore (x) (- (sqrt (+ x 1)) (sqrt x)))" fpcore

let recovery_x_by_xy_is_clean () =
  let r = analyze_bench (Fpcore.Suite.find "x_by_xy") in
  checki "benign benchmark: no report" 0
    (List.length (Core.Analysis.erroneous_expressions r))

let looping_benchmarks_analyzable () =
  (* error is detected and root causes recovered even without symbolic
     loop support (paper 8.1: "recovers the expressions in the loop
     bodies") *)
  let r = analyze_bench ~n:2 (Fpcore.Suite.find "logistic-map") in
  let spots = Core.Analysis.output_spots r in
  checkb "spot exists" true (List.length spots >= 1);
  let r2 = analyze_bench ~n:1 (Fpcore.Suite.find "step-counter") in
  let diverged =
    List.filter
      (fun (s : Core.Exec.spot_info) -> s.Core.Exec.s_incorrect > 0)
      (Core.Analysis.branch_spots r2)
  in
  checkb "step-counter loop condition flagged" true (List.length diverged >= 1)

let straight_line_errors_found () =
  (* benchmarks known to be inaccurate must produce reports *)
  List.iter
    (fun name ->
      let r = analyze_bench (Fpcore.Suite.find name) in
      checkb (name ^ " flagged") true
        (List.length (Core.Analysis.erroneous_expressions r) >= 1))
    [ "nmse-3-1"; "nmse-p331"; "nmse-3-6"; "cos-naive"; "expm1-naive";
      "quadratic-p"; "poly-cancel" ]

let expression_size_distribution () =
  (* the paper's 8.1 size histogram: our suite also spans small to large
     expression sizes *)
  let sizes =
    List.map
      (fun (b : Fpcore.Suite.bench) ->
        Fpcore.Ast.op_count (Fpcore.Suite.core_of b).Fpcore.Ast.body)
      Fpcore.Suite.all
  in
  checkb "some tiny" true (List.exists (fun s -> s <= 5) sizes);
  checkb "some 10-20" true (List.exists (fun s -> s >= 10 && s < 20) sizes);
  checkb "some 20+" true (List.exists (fun s -> s >= 20) sizes)

let () =
  Alcotest.run "fpcore"
    [
      ( "parsing",
        [
          Alcotest.test_case "simple" `Quick parse_simple;
          Alcotest.test_case "properties" `Quick parse_props;
          Alcotest.test_case "let and while" `Quick parse_let_while;
          Alcotest.test_case "rationals" `Quick parse_rationals;
          Alcotest.test_case "whole suite parses" `Quick whole_suite_parses;
          Alcotest.test_case "group counts" `Quick suite_group_counts;
        ] );
      ( "evaluation",
        [
          Alcotest.test_case "compiled = direct" `Quick
            evaluators_agree_with_compiled_code;
          Alcotest.test_case "real evaluator catches error" `Quick
            real_evaluator_catches_error;
          Alcotest.test_case "accurate benchmark" `Quick
            accurate_benchmark_is_accurate;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "nmse-3-1 recovered" `Quick recovery_nmse31;
          Alcotest.test_case "benign benchmark clean" `Quick
            recovery_x_by_xy_is_clean;
          Alcotest.test_case "looping benchmarks" `Quick
            looping_benchmarks_analyzable;
          Alcotest.test_case "known-bad flagged" `Quick
            straight_line_errors_found;
          Alcotest.test_case "size distribution" `Quick
            expression_size_distribution;
        ] );
    ]
