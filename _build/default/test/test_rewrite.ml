(* Tests for the Herbie-lite accuracy improver: pattern matching, rule
   application, and end-to-end improvement of the expressions Herbgrind
   reports (closing the paper's section 3.1 loop). *)

module Ast = Fpcore.Ast

let checkb = Alcotest.check Alcotest.bool
let checks = Alcotest.check Alcotest.string

let parse s = (Fpcore.Parse.parse_core ("(FPCore (x y z a b c) " ^ s ^ ")")).Ast.body

let pattern_matching () =
  let p = Rewrite.Pattern.of_string "(- (sqrt ?a) (sqrt ?b))" in
  let e = parse "(- (sqrt (+ x 1)) (sqrt x))" in
  (match Rewrite.Pattern.matches p e [] with
  | Some env ->
      checkb "a bound" true (List.mem_assoc "a" env);
      checkb "b bound" true (List.mem_assoc "b" env)
  | None -> Alcotest.fail "pattern should match");
  let p2 = Rewrite.Pattern.of_string "(- ?a ?a)" in
  checkb "repeated metavar matches equal" true
    (Rewrite.Pattern.matches p2 (parse "(- (* x y) (* x y))") [] <> None);
  checkb "repeated metavar rejects unequal" true
    (Rewrite.Pattern.matches p2 (parse "(- (* x y) (* x z))") [] = None)

let rewrite_generates_candidates () =
  let e = parse "(- (sqrt (+ x 1)) (sqrt x))" in
  let cands = Rewrite.Improve.rewrites Rewrite.Rules.all e in
  checkb "candidates exist" true (List.length cands >= 1);
  (* the sqrt-diff rule must be among them *)
  let expected = parse "(/ (- (+ x 1) x) (+ (sqrt (+ x 1)) (sqrt x)))" in
  checkb "sqrt-diff applied" true
    (List.exists (Rewrite.Pattern.expr_equal expected) cands)

let log_sample lo hi n =
  List.init n (fun i ->
      let t = float_of_int i /. float_of_int (max 1 (n - 1)) in
      [ ("x", lo *. Float.pow (hi /. lo) t) ])

let improves_sqrt_cancellation () =
  let e = parse "(- (sqrt (+ x 1)) (sqrt x))" in
  let samples = log_sample 1e8 1e15 12 in
  let r = Rewrite.Improve.improve e samples in
  checkb
    (Printf.sprintf "error %.1f -> %.1f bits" r.Rewrite.Improve.error_before
       r.Rewrite.Improve.error_after)
    true
    (r.Rewrite.Improve.error_before > 10.0 && r.Rewrite.Improve.error_after < 2.0)

let improves_expm1 () =
  let e = parse "(- (exp x) 1)" in
  let samples = log_sample 1e-12 1e-6 10 in
  let r = Rewrite.Improve.improve e samples in
  checkb "expm1 found" true (r.Rewrite.Improve.error_after < 2.0);
  checkb "uses expm1" true
    (match r.Rewrite.Improve.improved with Ast.Op ("expm1", _) -> true | _ -> false)

let improves_inv_diff () =
  let e = parse "(- (/ 1 x) (/ 1 (+ x 1)))" in
  let samples = log_sample 1e6 1e12 10 in
  let r = Rewrite.Improve.improve e samples in
  checkb
    (Printf.sprintf "inv-diff %.1f -> %.1f" r.Rewrite.Improve.error_before
       r.Rewrite.Improve.error_after)
    true
    (r.Rewrite.Improve.error_after < r.Rewrite.Improve.error_before -. 5.0)

let improves_sin_difference () =
  let e = parse "(- (sin (+ x 0.0000001)) (sin x))" in
  let samples =
    List.init 10 (fun i -> [ ("x", 0.3 +. (0.1 *. float_of_int i)) ])
  in
  let r = Rewrite.Improve.improve e samples in
  checkb
    (Printf.sprintf "sin-diff %.1f -> %.1f" r.Rewrite.Improve.error_before
       r.Rewrite.Improve.error_after)
    true
    (r.Rewrite.Improve.error_after < r.Rewrite.Improve.error_before -. 5.0)

let constant_folding_simplifies () =
  let e = parse "(- (sqrt (+ x 1)) (sqrt x))" in
  let cands = Rewrite.Improve.rewrites Rewrite.Rules.all e in
  let folded = List.map Rewrite.Improve.constant_fold cands in
  (* folding alone keeps expressions well-formed *)
  checkb "candidates fold" true (List.length folded = List.length cands);
  let e2 = Rewrite.Improve.constant_fold (parse "(+ (* 2 3) x)") in
  checkb "2*3 folds to 6" true
    (Rewrite.Pattern.expr_equal e2 (parse "(+ 6 x)"))

let leaves_accurate_alone () =
  let e = parse "(sqrt (+ (* x x) 1))" in
  let samples = log_sample 0.1 100.0 8 in
  let r = Rewrite.Improve.improve e samples in
  checkb "already accurate" true (r.Rewrite.Improve.error_after <= r.Rewrite.Improve.error_before)

(* the full paper-story loop: analyze, recover expression, improve it *)
let closes_the_loop_on_analysis_output () =
  let inputs = Array.init 8 (fun i -> 1e12 +. (float_of_int i *. 7e12)) in
  let prog =
    Minic.compile ~file:"loop.mc"
      {| int main() {
           int i;
           for (i = 0; i < 8; i = i + 1) {
             double x = __arg(i);
             print(sqrt(x + 1.0) - sqrt(x));
           }
           return 0;
         } |}
  in
  let r = Core.Analysis.analyze ~cfg:Core.Config.fast ~inputs prog in
  match Core.Analysis.erroneous_expressions r with
  | (sym, fpcore, _) :: _ ->
      checks "recovered" "(FPCore (x) (- (sqrt (+ x 1)) (sqrt x)))" fpcore;
      let samples = List.map (fun v -> [| v |]) (Array.to_list inputs) in
      let res = Rewrite.Improve.improve_sym sym samples in
      checkb
        (Printf.sprintf "loop closed: %.1f -> %.1f bits" res.Rewrite.Improve.error_before
           res.Rewrite.Improve.error_after)
        true
        (res.Rewrite.Improve.error_after < 2.0 && res.Rewrite.Improve.error_before > 10.0)
  | [] -> Alcotest.fail "analysis found nothing"

let () =
  Alcotest.run "rewrite"
    [
      ( "patterns",
        [
          Alcotest.test_case "matching" `Quick pattern_matching;
          Alcotest.test_case "candidates" `Quick rewrite_generates_candidates;
        ] );
      ( "improvement",
        [
          Alcotest.test_case "sqrt cancellation" `Quick improves_sqrt_cancellation;
          Alcotest.test_case "expm1" `Quick improves_expm1;
          Alcotest.test_case "inverse difference" `Quick improves_inv_diff;
          Alcotest.test_case "sin difference" `Quick improves_sin_difference;
          Alcotest.test_case "constant folding" `Quick constant_folding_simplifies;
          Alcotest.test_case "accurate stays" `Quick leaves_accurate_alone;
          Alcotest.test_case "closes the loop" `Quick
            closes_the_loop_on_analysis_output;
        ] );
    ]
