(* Differential fuzzing: random arithmetic programs are generated,
   compiled through the full MiniC pipeline, and executed three ways --
   by direct OCaml evaluation, by the uninstrumented VEX machine, and by
   the instrumented analysis interpreter. All three must agree
   bit-for-bit on the client outputs; the analysis must never change
   client behaviour (the property behind every ablation in the paper). *)

let checkb = Alcotest.check Alcotest.bool

(* ---------- a tiny expression language with an OCaml evaluator ---------- *)

type rexpr =
  | Rvar of int  (* one of the input variables *)
  | Rconst of float
  | Radd of rexpr * rexpr
  | Rsub of rexpr * rexpr
  | Rmul of rexpr * rexpr
  | Rdiv of rexpr * rexpr
  | Rsqrt of rexpr
  | Rneg of rexpr
  | Rabs of rexpr
  | Rmin of rexpr * rexpr

let rec reval env = function
  | Rvar i -> env.(i mod Array.length env)
  | Rconst c -> c
  | Radd (a, b) -> reval env a +. reval env b
  | Rsub (a, b) -> reval env a -. reval env b
  | Rmul (a, b) -> reval env a *. reval env b
  | Rdiv (a, b) -> reval env a /. reval env b
  | Rsqrt a -> Float.sqrt (reval env a)
  | Rneg a -> -.reval env a
  | Rabs a -> Float.abs (reval env a)
  | Rmin (a, b) -> Float.min (reval env a) (reval env b)

let rec rexpr_to_minic = function
  | Rvar i -> Printf.sprintf "v%d" (i mod 3)
  | Rconst c -> Printf.sprintf "(%.17g)" c
  | Radd (a, b) -> Printf.sprintf "(%s + %s)" (rexpr_to_minic a) (rexpr_to_minic b)
  | Rsub (a, b) -> Printf.sprintf "(%s - %s)" (rexpr_to_minic a) (rexpr_to_minic b)
  | Rmul (a, b) -> Printf.sprintf "(%s * %s)" (rexpr_to_minic a) (rexpr_to_minic b)
  | Rdiv (a, b) -> Printf.sprintf "(%s / %s)" (rexpr_to_minic a) (rexpr_to_minic b)
  | Rsqrt a -> Printf.sprintf "sqrt(%s)" (rexpr_to_minic a)
  | Rneg a -> Printf.sprintf "(-%s)" (rexpr_to_minic a)
  | Rabs a -> Printf.sprintf "fabs(%s)" (rexpr_to_minic a)
  | Rmin (a, b) -> Printf.sprintf "fmin(%s, %s)" (rexpr_to_minic a) (rexpr_to_minic b)

let gen_rexpr : rexpr QCheck.Gen.t =
  let open QCheck.Gen in
  sized
  @@ fix (fun self n ->
         if n <= 1 then
           oneof
             [
               map (fun i -> Rvar i) (int_bound 2);
               map (fun f -> Rconst f) (float_range (-100.0) 100.0);
             ]
         else
           frequency
             [
               (3, map2 (fun a b -> Radd (a, b)) (self (n / 2)) (self (n / 2)));
               (3, map2 (fun a b -> Rsub (a, b)) (self (n / 2)) (self (n / 2)));
               (3, map2 (fun a b -> Rmul (a, b)) (self (n / 2)) (self (n / 2)));
               (2, map2 (fun a b -> Rdiv (a, b)) (self (n / 2)) (self (n / 2)));
               (1, map (fun a -> Rsqrt a) (self (n - 1)));
               (1, map (fun a -> Rneg a) (self (n - 1)));
               (1, map (fun a -> Rabs a) (self (n - 1)));
               (1, map2 (fun a b -> Rmin (a, b)) (self (n / 2)) (self (n / 2)));
             ])

let arb_rexpr = QCheck.make ~print:rexpr_to_minic gen_rexpr

let program_for (e : rexpr) =
  Printf.sprintf
    {| int main() {
         int i;
         for (i = 0; i < 3; i = i + 1) {
           double v0 = __arg(3 * i);
           double v1 = __arg(3 * i + 1);
           double v2 = __arg(3 * i + 2);
           print(%s);
         }
         return 0;
       } |}
    (rexpr_to_minic e)

let inputs = Array.init 9 (fun i -> (float_of_int ((i * 37 mod 19) - 9) *. 1.375) +. 0.25)

let bits f = Int64.bits_of_float f

let floats_of_result (r : Core.Analysis.result) = Core.Analysis.output_floats r

let machine_floats prog = Vex.Machine.output_floats (Vex.Machine.run ~inputs prog)

let reference (e : rexpr) =
  List.init 3 (fun i ->
      reval [| inputs.(3 * i); inputs.((3 * i) + 1); inputs.((3 * i) + 2) |] e)

let qcheck_tests =
  [
    QCheck.Test.make ~name:"native VEX run matches OCaml evaluation" ~count:150
      arb_rexpr
      (fun e ->
        let prog = Minic.compile ~file:"fuzz.mc" (program_for e) in
        let got = machine_floats prog in
        let expected = reference e in
        List.length got = 3
        && List.for_all2 (fun a b -> Int64.equal (bits a) (bits b)) expected got);
    QCheck.Test.make ~name:"analysis preserves client outputs" ~count:80
      arb_rexpr
      (fun e ->
        let prog = Minic.compile ~file:"fuzz.mc" (program_for e) in
        let native = machine_floats prog in
        let analyzed =
          floats_of_result (Core.Analysis.analyze ~cfg:Core.Config.fast ~inputs prog)
        in
        List.length native = List.length analyzed
        && List.for_all2 (fun a b -> Int64.equal (bits a) (bits b)) native analyzed);
    QCheck.Test.make ~name:"every ablation preserves client outputs" ~count:25
      arb_rexpr
      (fun e ->
        let prog = Minic.compile ~file:"fuzz.mc" (program_for e) in
        let native = machine_floats prog in
        List.for_all
          (fun cfg ->
            let analyzed =
              floats_of_result (Core.Analysis.analyze ~cfg ~inputs prog)
            in
            List.for_all2 (fun a b -> Int64.equal (bits a) (bits b)) native analyzed)
          [
            { Core.Config.fast with Core.Config.enable_reals = false };
            { Core.Config.fast with Core.Config.enable_expressions = false };
            { Core.Config.fast with Core.Config.type_inference = false };
            { Core.Config.fast with Core.Config.equiv_depth = 2 };
          ]);
    QCheck.Test.make ~name:"vectorizer-compiled fuzz programs agree" ~count:60
      arb_rexpr
      (fun e ->
        (* elementwise loop over arrays computed from the fuzz expression *)
        let src =
          Printf.sprintf
            {| double a[6];
               double b[6];
               double c[6];
               int main() {
                 int i;
                 for (i = 0; i < 6; i = i + 1) {
                   double v0 = __arg(i);
                   double v1 = __arg(i + 1);
                   double v2 = __arg(i + 2);
                   a[i] = %s;
                   b[i] = v0 + 0.5;
                 }
                 for (i = 0; i < 6; i = i + 1) {
                   c[i] = a[i] * b[i];
                 }
                 for (i = 0; i < 6; i = i + 1) { print(c[i]); }
                 return 0;
               } |}
            (rexpr_to_minic e)
        in
        let scalar = machine_floats (Minic.compile ~file:"fz.mc" src) in
        let vector =
          machine_floats (Minic.compile ~vectorize:true ~file:"fz.mc" src)
        in
        List.length scalar = List.length vector
        && List.for_all2 (fun a b -> Int64.equal (bits a) (bits b)) scalar vector);
  ]

let sanity () =
  (* the harness itself: a fixed expression through all three evaluators *)
  let e = Rsub (Radd (Rvar 0, Rconst 1.0), Rvar 0) in
  let prog = Minic.compile ~file:"fuzz.mc" (program_for e) in
  let native = machine_floats prog in
  let expected = reference e in
  checkb "sanity" true
    (List.for_all2 (fun a b -> Int64.equal (bits a) (bits b)) expected native)

let () =
  Alcotest.run "differential"
    [
      ("sanity", [ Alcotest.test_case "fixed expression" `Quick sanity ]);
      ("fuzz", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
