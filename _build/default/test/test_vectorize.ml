(* Tests for the MiniC auto-vectorizer: elementwise double loops compile
   to SSE-style packed operations, client results are bit-identical to the
   scalar compilation, and the analysis shadows the packed lanes. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let elementwise_src op =
  Printf.sprintf
    {| double a[9];
       double b[9];
       double c[9];
       int main() {
         int i;
         for (i = 0; i < 9; i = i + 1) {
           a[i] = (double) (i + 1) * 1.25;
           b[i] = (double) (9 - i) * 0.75;
         }
         for (i = 0; i < 9; i = i + 1) {
           c[i] = a[i] %s b[i];
         }
         for (i = 0; i < 9; i = i + 1) {
           print(c[i]);
         }
         return 0;
       } |}
    op

let count_simd (prog : Vex.Ir.prog) =
  let n = ref 0 in
  Array.iter
    (fun (b : Vex.Ir.block) ->
      Array.iter
        (fun s ->
          match s with
          | Vex.Ir.WrTmp
              ( _,
                Vex.Ir.Binop
                  ( ( Vex.Ir.Add64Fx2 | Vex.Ir.Sub64Fx2 | Vex.Ir.Mul64Fx2
                    | Vex.Ir.Div64Fx2 ),
                    _,
                    _ ) ) ->
              incr n
          | _ -> ())
        b.Vex.Ir.stmts)
    prog.Vex.Ir.blocks;
  !n

let run_floats ?vectorize src =
  let outs = Minic.run ?vectorize ~file:"vec.mc" src in
  List.filter_map
    (fun (o : Vex.Machine.output) ->
      match o.Vex.Machine.value with
      | Vex.Value.VF64 f -> Some f
      | _ -> None)
    outs

let vectorizer_emits_simd () =
  List.iter
    (fun op ->
      let prog = Minic.compile ~vectorize:true ~file:"vec.mc" (elementwise_src op) in
      checkb (op ^ " vectorized") true (count_simd prog >= 1);
      let scalar = Minic.compile ~file:"vec.mc" (elementwise_src op) in
      checki (op ^ " scalar has no simd") 0 (count_simd scalar))
    [ "+"; "-"; "*"; "/" ]

let vectorized_results_identical () =
  List.iter
    (fun op ->
      let v = run_floats ~vectorize:true (elementwise_src op) in
      let s = run_floats (elementwise_src op) in
      checki (op ^ " same count") (List.length s) (List.length v);
      List.iter2
        (fun a b ->
          checkb
            (Printf.sprintf "%s: %h = %h" op a b)
            true
            (Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)))
        s v)
    [ "+"; "-"; "*"; "/" ]

let odd_length_tail_handled () =
  (* 9 elements: 4 packed iterations + 1 scalar tail element *)
  let v = run_floats ~vectorize:true (elementwise_src "*") in
  checki "all 9 outputs" 9 (List.length v);
  let expected = List.init 9 (fun i ->
      float_of_int (i + 1) *. 1.25 *. (float_of_int (9 - i) *. 0.75))
  in
  List.iter2
    (fun a b -> checkb "value" true (a = b))
    expected v

let non_elementwise_not_vectorized () =
  (* a reduction does not match the pattern and must stay scalar *)
  let src =
    {| double a[8];
       int main() {
         int i;
         double s = 0.0;
         for (i = 0; i < 8; i = i + 1) { a[i] = (double) i; }
         for (i = 0; i < 8; i = i + 1) { s = s + a[i]; }
         print(s);
         return 0;
       } |}
  in
  let prog = Minic.compile ~vectorize:true ~file:"vec.mc" src in
  checki "no simd for reduction" 0 (count_simd prog);
  let v = run_floats ~vectorize:true src in
  checkb "sum correct" true (v = [ 28.0 ])

let analysis_shadows_packed_lanes () =
  (* catastrophic cancellation through the vectorized path must still be
     detected, with the same spot errors as the scalar compilation *)
  let src =
    {| double a[8];
       double b[8];
       double c[8];
       int main() {
         int i;
         for (i = 0; i < 8; i = i + 1) {
           a[i] = 1.0e16 + (double) i;
           b[i] = 1.0e16 + (double) i - 1.0;
         }
         for (i = 0; i < 8; i = i + 1) {
           c[i] = a[i] - b[i];
         }
         for (i = 0; i < 8; i = i + 1) {
           print(c[i]);
         }
         return 0;
       } |}
  in
  let analyze vectorize =
    let prog = Minic.compile ~vectorize ~file:"vec.mc" src in
    Core.Analysis.analyze ~cfg:Core.Config.fast prog
  in
  let rv = analyze true and rs = analyze false in
  let errmax (r : Core.Analysis.result) =
    List.fold_left
      (fun m (s : Core.Exec.spot_info) -> Float.max m s.Core.Exec.s_err_max)
      0.0
      (Core.Analysis.output_spots r)
  in
  checkb "same client outputs" true
    (Core.Analysis.output_floats rv = Core.Analysis.output_floats rs);
  checkb
    (Printf.sprintf "vector error %.1f ~ scalar error %.1f" (errmax rv) (errmax rs))
    true
    (Float.abs (errmax rv -. errmax rs) < 0.6);
  (* the packed subtraction op must carry shadow info (fp ops counted) *)
  checkb "packed ops shadowed" true
    (rv.Core.Analysis.raw.Core.Exec.r_stats.Core.Exec.fp_ops > 8)

let vectorized_workload_matches_polybench () =
  (* the jacobi-like elementwise update in a function with array params *)
  let src =
    {| void axpy(double x[], double y[], double out[], int n) {
         int i;
         for (i = 0; i < n; i = i + 1) {
           out[i] = x[i] + y[i];
         }
       }
       double xs[6];
       double ys[6];
       double zs[6];
       int main() {
         int i;
         for (i = 0; i < 6; i = i + 1) {
           xs[i] = (double) i * 0.5;
           ys[i] = (double) i * 0.25;
         }
         axpy(xs, ys, zs, 6);
         for (i = 0; i < 6; i = i + 1) { print(zs[i]); }
         return 0;
       } |}
  in
  let prog = Minic.compile ~vectorize:true ~file:"vec.mc" src in
  checkb "pointer-parameter loop vectorized" true (count_simd prog >= 1);
  let v = run_floats ~vectorize:true src in
  let expected = List.init 6 (fun i -> (float_of_int i *. 0.5) +. (float_of_int i *. 0.25)) in
  checkb "results" true (v = expected)

let () =
  Alcotest.run "vectorize"
    [
      ( "codegen",
        [
          Alcotest.test_case "emits SIMD" `Quick vectorizer_emits_simd;
          Alcotest.test_case "reduction stays scalar" `Quick
            non_elementwise_not_vectorized;
          Alcotest.test_case "pointer params" `Quick
            vectorized_workload_matches_polybench;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "bit-identical results" `Quick
            vectorized_results_identical;
          Alcotest.test_case "odd-length tail" `Quick odd_length_tail_handled;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "packed lanes shadowed" `Quick
            analysis_shadows_packed_lanes;
        ] );
    ]
