test/test_rewrite.ml: Alcotest Array Core Float Fpcore List Minic Printf Rewrite
