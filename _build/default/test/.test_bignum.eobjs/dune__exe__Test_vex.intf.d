test/test_vex.mli:
