test/test_workloads.ml: Alcotest Core Float Hashtbl List Printf Vex Workloads
