test/test_ieee.ml: Alcotest Float Ieee Int64 List Printf QCheck QCheck_alcotest Test
