test/test_fpcore.mli:
