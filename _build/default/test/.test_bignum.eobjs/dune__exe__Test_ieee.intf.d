test/test_ieee.mli:
