test/test_fpcore.ml: Alcotest Array Core Fpcore Int64 List Option Printexc Printf Vex
