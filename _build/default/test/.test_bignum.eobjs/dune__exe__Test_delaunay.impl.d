test/test_delaunay.ml: Alcotest Array Bignum Core Hashtbl Int64 List Printf Vex Workloads
