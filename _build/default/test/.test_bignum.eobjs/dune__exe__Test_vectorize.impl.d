test/test_vectorize.ml: Alcotest Array Core Float Int64 List Minic Printf Vex
