test/test_delaunay.mli:
