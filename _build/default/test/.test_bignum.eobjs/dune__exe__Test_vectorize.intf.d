test/test_vectorize.mli:
