test/test_minic.ml: Alcotest Array Float Int32 Int64 List Minic Printf QCheck QCheck_alcotest Test Vex
