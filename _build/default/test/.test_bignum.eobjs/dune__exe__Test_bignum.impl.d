test/test_bignum.ml: Alcotest Bignum Float Int64 List Option Printf QCheck QCheck_alcotest Random Stdlib String Test
