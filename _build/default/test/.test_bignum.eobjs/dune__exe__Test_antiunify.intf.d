test/test_antiunify.mli:
