test/test_differential.ml: Alcotest Array Core Float Int64 List Minic Printf QCheck QCheck_alcotest Vex
