test/test_core.ml: Alcotest Array Core Hashtbl List Minic Printf Str Vex
