test/test_antiunify.ml: Alcotest Array Core Float List
