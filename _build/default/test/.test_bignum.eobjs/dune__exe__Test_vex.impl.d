test/test_vex.ml: Alcotest Array Builder Bytes Eval Float Ieee Int64 Ir List Machine QCheck QCheck_alcotest Test Typeinfer Value Vex
