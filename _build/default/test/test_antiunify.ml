(* Unit tests for the anti-unification engine, exercised directly on
   hand-built concrete traces (the core tests exercise it end-to-end). *)

module A = Core.Antiunify
module T = Core.Trace

let checkb = Alcotest.check Alcotest.bool
let checks = Alcotest.check Alcotest.string
let checki = Alcotest.check Alcotest.int

(* trace builders; keys come from the value so equal values are
   runtime-equivalent, as in the analysis *)
let leaf v = T.leaf v
let node op args v = T.node ~max_depth:24 ~key:(T.float_key v) op (Array.of_list args) v

let finalize_str ?classic agg = A.to_fpcore (A.finalize ?classic agg)

let single_trace_is_itself () =
  let agg = A.create ~equiv_depth:5 in
  (* (+ 2 3) = 5, seen once: every position is constant *)
  A.add agg (node "+" [ leaf 2.0; leaf 3.0 ] 5.0);
  checks "constants" "(FPCore () (+ 2 3))" (finalize_str agg)

let varying_leaf_becomes_variable () =
  let agg = A.create ~equiv_depth:5 in
  A.add agg (node "+" [ leaf 2.0; leaf 3.0 ] 5.0);
  A.add agg (node "+" [ leaf 7.0; leaf 3.0 ] 10.0);
  checks "x + 3" "(FPCore (x) (+ x 3))" (finalize_str agg)

let equal_values_share_variable () =
  let agg = A.create ~equiv_depth:5 in
  A.add agg (node "*" [ leaf 2.0; leaf 2.0 ] 4.0);
  A.add agg (node "*" [ leaf 7.0; leaf 7.0 ] 49.0);
  checks "x * x" "(FPCore (x) (* x x))" (finalize_str agg)

let unequal_values_get_distinct_variables () =
  let agg = A.create ~equiv_depth:5 in
  A.add agg (node "*" [ leaf 2.0; leaf 3.0 ] 6.0);
  A.add agg (node "*" [ leaf 7.0; leaf 5.0 ] 35.0);
  checks "x * y" "(FPCore (x y) (* x y))" (finalize_str agg)

let operator_mismatch_generalizes () =
  let agg = A.create ~equiv_depth:5 in
  A.add agg (node "+" [ node "*" [ leaf 2.0; leaf 3.0 ] 6.0; leaf 1.0 ] 7.0);
  A.add agg (node "+" [ node "-" [ leaf 9.0; leaf 2.0 ] 7.0; leaf 1.0 ] 8.0);
  (* the differing subtree collapses to one variable; 1 stays constant *)
  checks "hole" "(FPCore (x) (+ x 1))" (finalize_str agg);
  (* when the mismatched subtrees have EQUAL runtime values, Herbgrind's
     first modification turns the hole into a constant instead *)
  let agg2 = A.create ~equiv_depth:5 in
  A.add agg2 (node "+" [ node "*" [ leaf 2.0; leaf 3.0 ] 6.0; leaf 1.0 ] 7.0);
  A.add agg2 (node "+" [ node "-" [ leaf 9.0; leaf 3.0 ] 6.0; leaf 1.0 ] 7.0);
  checks "constant hole" "(FPCore () (+ 6 1))" (finalize_str agg2)

let internal_pruning_requires_multiple_members () =
  (* a subtree equal to nothing else stays structural *)
  let agg = A.create ~equiv_depth:5 in
  let t v =
    node "sqrt" [ node "+" [ leaf v; leaf 1.0 ] (v +. 1.0) ] (Float.sqrt (v +. 1.0))
  in
  A.add agg (t 4.0);
  A.add agg (t 9.0);
  checks "no pruning" "(FPCore (x) (sqrt (+ x 1)))" (finalize_str agg)

let internal_pruning_on_repeated_subtree () =
  (* (- (sqrt (+ y 1)) (sqrt y)) where y = x*c appears twice: prunes to a
     shared variable (the paper's section 4.4 example) *)
  let agg = A.create ~equiv_depth:8 in
  let t x =
    let y = x *. 12345.67 in
    let ynode () = node "*" [ leaf x; leaf 12345.67 ] y in
    node "-"
      [
        node "sqrt" [ node "+" [ ynode (); leaf 1.0 ] (y +. 1.0) ] (Float.sqrt (y +. 1.0));
        node "sqrt" [ ynode () ] (Float.sqrt y);
      ]
      (Float.sqrt (y +. 1.0) -. Float.sqrt y)
  in
  A.add agg (t 3.0);
  A.add agg (t 11.0);
  A.add agg (t 29.0);
  checks "pruned" "(FPCore (x) (- (sqrt (+ x 1)) (sqrt x)))" (finalize_str agg);
  (* classic mode keeps the multiplication structure *)
  checks "classic"
    "(FPCore (x) (- (sqrt (+ (* x 12345.67) 1)) (sqrt (* x 12345.67))))"
    (finalize_str ~classic:true agg)

let straddle_criterion_blocks_pruning () =
  (* (- (sqrt (+ y 1)) (sqrt y)) * (+ y 1): the (+ y 1) class straddles *)
  let agg = A.create ~equiv_depth:8 in
  let t y =
    let yp1 () = node "+" [ leaf y; leaf 1.0 ] (y +. 1.0) in
    node "*"
      [
        node "-"
          [
            node "sqrt" [ yp1 () ] (Float.sqrt (y +. 1.0));
            node "sqrt" [ leaf y ] (Float.sqrt y);
          ]
          (Float.sqrt (y +. 1.0) -. Float.sqrt y);
        yp1 ();
      ]
      ((Float.sqrt (y +. 1.0) -. Float.sqrt y) *. (y +. 1.0))
  in
  A.add agg (t 3.0);
  A.add agg (t 17.0);
  let out = finalize_str agg in
  checks "not over-pruned"
    "(FPCore (x) (* (- (sqrt (+ x 1)) (sqrt x)) (+ x 1)))" out

let depth_limits_variable_sharing () =
  (* equal leaves BELOW the equivalence depth cannot be unified and
     become distinct variables (figure 10a's depth-2 behavior) *)
  let deep x =
    node "+"
      [
        node "*" [ node "-" [ leaf x; leaf 1.0 ] (x -. 1.0); leaf 2.0 ]
          ((x -. 1.0) *. 2.0);
        node "*" [ node "-" [ leaf x; leaf 1.0 ] (x -. 1.0); leaf 3.0 ]
          ((x -. 1.0) *. 3.0);
      ]
      (((x -. 1.0) *. 2.0) +. ((x -. 1.0) *. 3.0))
  in
  let shallow_agg = A.create ~equiv_depth:8 in
  A.add shallow_agg (deep 5.0);
  A.add shallow_agg (deep 9.0);
  let wide = A.finalize shallow_agg in
  checki "depth 8 unifies x" 1 (List.length (A.sym_vars wide));
  let agg2 = A.create ~equiv_depth:2 in
  A.add agg2 (deep 5.0);
  A.add agg2 (deep 9.0);
  let narrow = A.finalize agg2 in
  checkb "depth 2 has more variables" true
    (List.length (A.sym_vars narrow) > 1)

let aggregation_is_order_insensitive () =
  (* associativity/commutativity of aggregation (paper 6.3): any order of
     the same traces yields the same symbolic expression *)
  let traces =
    List.map
      (fun (a, b) -> node "/" [ leaf a; node "+" [ leaf a; leaf b ] (a +. b) ] (a /. (a +. b)))
      [ (1.0, 2.0); (3.0, 4.0); (5.0, 6.0); (7.0, 8.0) ]
  in
  let run order =
    let agg = A.create ~equiv_depth:5 in
    List.iter (A.add agg) order;
    finalize_str agg
  in
  let base = run traces in
  checks "reversed" base (run (List.rev traces));
  checks "rotated" base
    (run (match traces with t :: rest -> rest @ [ t ] | [] -> []))

let op_count_and_vars () =
  let agg = A.create ~equiv_depth:5 in
  A.add agg (node "+" [ node "*" [ leaf 2.0; leaf 3.0 ] 6.0; leaf 1.0 ] 7.0);
  A.add agg (node "+" [ node "*" [ leaf 4.0; leaf 5.0 ] 20.0; leaf 1.0 ] 21.0);
  let s = A.finalize agg in
  checki "two ops" 2 (A.sym_op_count s);
  checki "two vars" 2 (List.length (A.sym_vars s))

let trace_depth_cap () =
  (* growing a trace past the cap truncates instead of deepening *)
  let t = ref (leaf 0.0) in
  for i = 1 to 100 do
    t := T.node ~max_depth:10 ~key:i "+" [| !t; leaf 1.0 |] (float_of_int i)
  done;
  checkb "depth bounded" true (!t.T.depth <= 11)

let trace_size_cap () =
  (* doubling trees stay below the size bound *)
  let t = ref (leaf 1.0) in
  for i = 1 to 30 do
    t := T.node ~max_depth:64 ~key:i "+" [| !t; !t |] (float_of_int i)
  done;
  checkb "size bounded" true (!t.T.size <= 2 * T.max_tree_size)

let () =
  Alcotest.run "antiunify"
    [
      ( "generalization",
        [
          Alcotest.test_case "single trace" `Quick single_trace_is_itself;
          Alcotest.test_case "varying leaf" `Quick varying_leaf_becomes_variable;
          Alcotest.test_case "equal values share" `Quick equal_values_share_variable;
          Alcotest.test_case "unequal values split" `Quick
            unequal_values_get_distinct_variables;
          Alcotest.test_case "operator mismatch" `Quick operator_mismatch_generalizes;
        ] );
      ( "pruning",
        [
          Alcotest.test_case "needs multiple members" `Quick
            internal_pruning_requires_multiple_members;
          Alcotest.test_case "repeated subtree" `Quick
            internal_pruning_on_repeated_subtree;
          Alcotest.test_case "straddle criterion" `Quick
            straddle_criterion_blocks_pruning;
          Alcotest.test_case "depth bound" `Quick depth_limits_variable_sharing;
        ] );
      ( "aggregation",
        [
          Alcotest.test_case "order insensitive" `Quick
            aggregation_is_order_insensitive;
          Alcotest.test_case "op count and vars" `Quick op_count_and_vars;
          Alcotest.test_case "trace depth cap" `Quick trace_depth_cap;
          Alcotest.test_case "trace size cap" `Quick trace_size_cap;
        ] );
    ]
