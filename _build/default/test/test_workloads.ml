(* Tests for the case-study workloads: the plotter story (E1), CalculiX
   (E2), Triangle/Tetgen predicates with compensation (E3/E4), Polybench
   (E5/E6), and the Gromacs-style MD kernel (E7). *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let cfg = Core.Config.fast

(* ---------- plotter (E1) ---------- *)

let plotter_story () =
  (* the broken plotter corrupts much of the image; the repaired one
     matches it only where the computation was benign *)
  let naive = Workloads.Plotter.render ~width:24 ~height:24 ~repaired:false () in
  let fixed = Workloads.Plotter.render ~width:24 ~height:24 ~repaired:true () in
  let d = Workloads.Plotter.diff_count naive fixed in
  let total = 24 * 24 in
  checkb (Printf.sprintf "naive and fixed differ on %d/%d pixels" d total) true
    (d > total / 4)

let plotter_root_cause () =
  (* Herbgrind's report on the naive plotter blames the sqrt(m - x)
     cancellation inside csqrt *)
  let prog = Workloads.Plotter.compile ~width:10 ~height:10 ~repaired:false () in
  let r = Core.Analysis.analyze ~cfg ~max_steps:100_000_000 prog in
  let errs = Core.Analysis.erroneous_expressions r in
  checkb "erroneous expressions found" true (List.length errs >= 1);
  let in_csqrt =
    List.exists
      (fun (_, _, (o : Core.Exec.op_info)) ->
        o.Core.Exec.o_loc.Vex.Ir.func = "csqrt")
      errs
  in
  checkb "root cause inside csqrt" true in_csqrt;
  (* the repaired plotter's csqrt is clean *)
  let prog' = Workloads.Plotter.compile ~width:10 ~height:10 ~repaired:true () in
  let r' = Core.Analysis.analyze ~cfg ~max_steps:100_000_000 prog' in
  let errs' = Core.Analysis.erroneous_expressions r' in
  let in_csqrt' =
    List.exists
      (fun (_, _, (o : Core.Exec.op_info)) ->
        o.Core.Exec.o_loc.Vex.Ir.func = "csqrt")
      errs'
  in
  checkb "repaired csqrt not blamed" false in_csqrt'

(* ---------- calculix (E2) ---------- *)

let calculix_report_shape () =
  let r = Workloads.Calculix.analyze ~cfg ~n:20 ~trials:120 ~seed:5 () in
  (* the dot-product addition must be flagged *)
  let errs = Core.Analysis.erroneous_expressions r in
  let dvdot_add =
    List.exists
      (fun (_, _, (o : Core.Exec.op_info)) ->
        o.Core.Exec.o_loc.Vex.Ir.func = "DVdot" && o.Core.Exec.o_name = "+")
      errs
  in
  checkb "DVdot addition flagged" true dvdot_add;
  (* the sign comparison goes the wrong way for a few instances, like the
     paper's 65 of 2758 *)
  let branches = Core.Analysis.branch_spots r in
  let tolerance =
    List.filter
      (fun (s : Core.Exec.spot_info) ->
        s.Core.Exec.s_loc.Vex.Ir.func = "main" && s.Core.Exec.s_total >= 120)
      branches
  in
  checkb "comparison spot exists" true (List.length tolerance >= 1);
  let incorrect =
    List.fold_left (fun a (s : Core.Exec.spot_info) -> a + s.Core.Exec.s_incorrect)
      0 tolerance
  in
  checkb
    (Printf.sprintf "some but not most comparisons flip (%d/120)" incorrect)
    true
    (incorrect >= 1 && incorrect <= 30)

(* ---------- predicates (E3/E4) ---------- *)

let triangle_compensation () =
  let trials = 30 in
  let prog = Workloads.Predicates.compile_orient2d ~trials in
  let inputs =
    Workloads.Predicates.orient2d_inputs ~trials ~degeneracy:0.8 ~seed:11
  in
  let r = Core.Analysis.analyze ~cfg ~max_steps:100_000_000 ~inputs prog in
  let st = r.Core.Analysis.raw.Core.Exec.r_stats in
  checkb "compensating operations detected" true
    (st.Core.Exec.compensations > 50);
  (* the expansion arithmetic must not be blamed for output error *)
  let spots = Core.Analysis.output_spots r in
  let blamed_in_efts =
    List.exists
      (fun (s : Core.Exec.spot_info) ->
        Core.Shadow.IntSet.exists
          (fun id ->
            match Hashtbl.find_opt r.Core.Analysis.raw.Core.Exec.r_ops id with
            | Some o ->
                let f = o.Core.Exec.o_loc.Vex.Ir.func in
                f = "two_sum" || f = "two_diff" || f = "two_product"
            | None -> false)
          s.Core.Exec.s_infl)
      spots
  in
  checkb "error-free transformations not blamed" false blamed_in_efts

let degenerate_inputs_take_slow_path () =
  (* more degeneracy => more FP operations executed (the E4 axis) *)
  let trials = 20 in
  let count_fp degeneracy =
    let prog = Workloads.Predicates.compile_orient2d ~trials in
    let inputs =
      Workloads.Predicates.orient2d_inputs ~trials ~degeneracy ~seed:3
    in
    let r = Core.Analysis.analyze ~cfg ~max_steps:100_000_000 ~inputs prog in
    r.Core.Analysis.raw.Core.Exec.r_stats.Core.Exec.fp_ops
  in
  let easy = count_fp 0.0 and hard = count_fp 1.0 in
  checkb (Printf.sprintf "degenerate (%d ops) > generic (%d ops)" hard easy)
    true
    (hard > easy * 3 / 2)

let incircle_runs_and_detects () =
  let trials = 16 in
  let prog = Workloads.Predicates.compile_incircle ~trials in
  let inputs =
    Workloads.Predicates.incircle_inputs ~trials ~degeneracy:0.5 ~seed:7
  in
  let st = Vex.Machine.run ~max_steps:100_000_000 ~inputs prog in
  checki "one result per trial plus count" (trials + 1)
    (List.length (Vex.Machine.outputs st));
  let r = Core.Analysis.analyze ~cfg ~max_steps:100_000_000 ~inputs prog in
  (* the lifted determinant cancels hard near the circle *)
  checkb "erroneous ops found" true
    (List.length (Core.Analysis.erroneous_expressions r) >= 1);
  checkb "compensations in fallback" true
    (r.Core.Analysis.raw.Core.Exec.r_stats.Core.Exec.compensations > 0)

let orient3d_runs () =
  let trials = 8 in
  let prog = Workloads.Predicates.compile_orient3d ~trials in
  let inputs =
    Workloads.Predicates.orient3d_inputs ~trials ~degeneracy:0.5 ~seed:9
  in
  let st = Vex.Machine.run ~max_steps:100_000_000 ~inputs prog in
  checki "one output per trial plus count" (trials + 1)
    (List.length (Vex.Machine.outputs st))

(* ---------- polybench (E5/E6) ---------- *)

let polybench_kernels_run () =
  List.iter
    (fun (kern : Workloads.Polybench.kernel) ->
      let prog = Workloads.Polybench.compile ~n:6 kern in
      let st = Vex.Machine.run ~max_steps:100_000_000 prog in
      let outs = Vex.Machine.output_floats st in
      checkb (kern.Workloads.Polybench.k_name ^ " produces outputs") true
        (List.length outs > 0);
      checkb
        (kern.Workloads.Polybench.k_name ^ " outputs finite")
        true
        (List.for_all (fun f -> Float.is_finite f) outs))
    Workloads.Polybench.kernels

let gramschmidt_nan_found () =
  (* rank-deficient input: division by zero, NaN outputs, 64-bit error *)
  let prog = Workloads.Polybench.compile_gramschmidt_rank_deficient ~n:6 () in
  let r = Core.Analysis.analyze ~cfg ~max_steps:100_000_000 prog in
  let outs = Core.Analysis.output_floats r in
  checkb "NaN reaches outputs" true (List.exists Float.is_nan outs);
  let spots = Core.Analysis.output_spots r in
  let max_err =
    List.fold_left (fun m (s : Core.Exec.spot_info) -> Float.max m s.Core.Exec.s_err_max)
      0.0 spots
  in
  checkb (Printf.sprintf "64 bits of error (got %.0f)" max_err) true
    (max_err >= 63.0)

let polybench_analysis_runs () =
  let prog = Workloads.Polybench.compile ~n:5 (Workloads.Polybench.find "gemm") in
  let r = Core.Analysis.analyze ~cfg ~max_steps:100_000_000 prog in
  checkb "ops were shadowed" true
    (r.Core.Analysis.raw.Core.Exec.r_stats.Core.Exec.fp_ops > 100)

(* ---------- gromacs (E7) ---------- *)

let gromacs_runs_and_conserves_energy () =
  let prog = Workloads.Gromacs.compile ~particles:16 ~steps:4 () in
  let st = Vex.Machine.run ~max_steps:200_000_000 prog in
  let energies = Vex.Machine.output_floats st in
  checki "one energy per step" 4 (List.length energies);
  match energies with
  | e0 :: rest ->
      List.iter
        (fun e ->
          checkb "energy drift small" true
            (Float.abs (e -. e0) /. Float.max 1.0 (Float.abs e0) < 0.05))
        rest
  | [] -> Alcotest.fail "no energies"

let gromacs_analysis_scales () =
  let prog = Workloads.Gromacs.compile ~particles:16 ~steps:2 () in
  let r = Core.Analysis.analyze ~cfg ~max_steps:200_000_000 prog in
  checkb "thousands of shadowed ops" true
    (r.Core.Analysis.raw.Core.Exec.r_stats.Core.Exec.fp_ops > 2000)

let () =
  Alcotest.run "workloads"
    [
      ( "plotter",
        [
          Alcotest.test_case "speckle story" `Slow plotter_story;
          Alcotest.test_case "root cause in csqrt" `Quick plotter_root_cause;
        ] );
      ("calculix", [ Alcotest.test_case "report shape" `Quick calculix_report_shape ]);
      ( "predicates",
        [
          Alcotest.test_case "compensation detected" `Quick triangle_compensation;
          Alcotest.test_case "degeneracy drives work" `Quick
            degenerate_inputs_take_slow_path;
          Alcotest.test_case "orient3d runs" `Quick orient3d_runs;
          Alcotest.test_case "incircle" `Quick incircle_runs_and_detects;
        ] );
      ( "polybench",
        [
          Alcotest.test_case "kernels run" `Quick polybench_kernels_run;
          Alcotest.test_case "gramschmidt NaN" `Quick gramschmidt_nan_found;
          Alcotest.test_case "analysis runs" `Quick polybench_analysis_runs;
        ] );
      ( "gromacs",
        [
          Alcotest.test_case "energy conserved" `Quick
            gromacs_runs_and_conserves_energy;
          Alcotest.test_case "analysis scales" `Quick gromacs_analysis_scales;
        ] );
    ]
