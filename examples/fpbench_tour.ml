(* A tour of the FPBench suite (paper section 8), driven by the
   fpgrind.fleet batch engine.

   For each vendored benchmark: compile to VEX through MiniC, run under
   the analysis on sampled inputs, and print a one-line summary -- the
   maximum output error observed and how many root causes were reported.
   Jobs run on a fault-isolated worker pool: a diverging or crashing
   benchmark is reported as timeout/failed instead of killing the tour,
   and the output order and content are identical whatever -j is.

     dune exec examples/fpbench_tour.exe                # quick subset
     dune exec examples/fpbench_tour.exe -- --all       # whole suite
     dune exec examples/fpbench_tour.exe -- --all -j 4  # 4 worker domains
*)

let quick_subset =
  [ "intro-example"; "nmse-3-1"; "nmse-p331"; "doppler1"; "verhulst";
    "quadratic-p"; "expm1-naive"; "hypot-naive"; "logistic-map";
    "step-counter"; "newton-sqrt"; "harmonic-sum" ]

let () =
  let all = Array.exists (( = ) "--all") Sys.argv in
  let jobs =
    let j = ref 1 in
    Array.iteri
      (fun i a ->
        if a = "-j" && i + 1 < Array.length Sys.argv then
          j := max 1 (int_of_string Sys.argv.(i + 1)))
      Sys.argv;
    !j
  in
  let names = if all then [] else quick_subset in
  let cfg = { Core.Config.default with Core.Config.precision = 256 } in
  let specs =
    Fpcore.Suite.enumerate ~iterations:8 ~seed:1 ~names ()
    |> List.map (Fleet.bench_spec ~cfg)
  in
  Printf.printf
    "analyzing %d FPBench benchmarks at 256-bit shadow precision (%d worker%s)\n\n"
    (List.length specs) jobs
    (if jobs = 1 then "" else "s");
  let outcomes = Fleet.run ~jobs ~timeout:120.0 specs in
  List.iter
    (fun (o : Fleet.outcome) ->
      match (o.Fleet.o_status, o.Fleet.o_payload) with
      | (Fleet.Done | Fleet.Cached), Some p ->
          print_endline p.Fleet.p_summary
      | Fleet.Timed_out, _ -> Printf.printf "%-24s TIMED OUT\n" o.Fleet.o_name
      | Fleet.Failed msg, _ ->
          Printf.printf "%-24s FAILED: %s\n" o.Fleet.o_name msg
      | _, None -> Printf.printf "%-24s (no result)\n" o.Fleet.o_name)
    outcomes
