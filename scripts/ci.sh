#!/usr/bin/env bash
# CI entry point: build, run the full test suite, then smoke-test the
# fleet batch engine end to end — a small `fpgrind suite` run with a
# JSONL store, validated by parsing it back.
set -euo pipefail
cd "$(dirname "$0")/.."

dune build @all
dune runtest

out="$(mktemp /tmp/fpgrind-ci.XXXXXX.jsonl)"
trap 'rm -f "$out"' EXIT

dune exec bin/fpgrind_cli.exe -- suite \
  intro-example nmse-3-1 verhulst midpoint-naive logistic-map newton-sqrt \
  -j 2 --timeout 60 --precision 128 --iterations 4 \
  --json "$out" --no-cache --strict

dune exec bin/fpgrind_cli.exe -- validate "$out"

# Compile-cache smoke: the same suite twice in one process. The second
# pass must decode zero new superblocks (every program served from the
# compiled-block cache) and produce byte-identical records modulo wall
# time. FPGRIND_SUITE_PASSES / FPGRIND_COMPILE_STATS are the env hooks
# the suite command exposes for exactly this check.
cc_store="$(mktemp /tmp/fpgrind-ci-cc.XXXXXX.jsonl)"
cc_stats="$(mktemp /tmp/fpgrind-ci-cc.XXXXXX.stats)"
trap 'rm -f "$out" "$cc_store" "$cc_store.pass2" "$cc_stats"' EXIT
rm -f "$cc_store"
FPGRIND_SUITE_PASSES=2 FPGRIND_COMPILE_STATS=1 \
  dune exec bin/fpgrind_cli.exe -- suite \
  intro-example nmse-3-1 verhulst midpoint-naive logistic-map newton-sqrt \
  -j 2 --timeout 60 --precision 128 --iterations 4 \
  --json "$cc_store" --no-cache --quiet 2>"$cc_stats"
jq -s -e '(.[1].blocks_compiled == .[0].blocks_compiled)
          and (.[1].cache_hits > .[0].cache_hits)' "$cc_stats" >/dev/null \
  || { echo "ci: second suite pass missed the compile cache"; cat "$cc_stats"; exit 1; }
cmp <(jq -cS 'del(.wall_s)' "$cc_store") <(jq -cS 'del(.wall_s)' "$cc_store.pass2") \
  || { echo "ci: compile-cache pass records diverged"; exit 1; }
rm -f "$cc_store" "$cc_store.pass2" "$cc_stats"
trap 'rm -f "$out"' EXIT

# Differential-fuzz smoke: a fixed-seed campaign (so CI is reproducible)
# plus replay of every committed counterexample in test/corpus. Any
# divergence exits nonzero after printing the shrunken reproducer.
dune exec bin/fpgrind_cli.exe -- fuzz \
  --seed 42 --iters 200 --corpus test/corpus --quiet

# Sanitizer smoke: the second engine must flag a known-bad program
# (cancellation at 1e16 — 62 bits of error) and stay silent on a clean
# one; --fatal turns the first finding into exit 2.
san_bad="$(mktemp /tmp/fpgrind-ci-bad.XXXXXX.mc)"
san_ok="$(mktemp /tmp/fpgrind-ci-ok.XXXXXX.mc)"
trap 'rm -f "$out" "$san_bad" "$san_ok"' EXIT
cat >"$san_bad" <<'EOF'
int main() {
  double x = 1.0e16;
  print((x + 1.0) - x);
  return 0;
}
EOF
cat >"$san_ok" <<'EOF'
int main() {
  double x = 0.5;
  print(x * 2.0 + 0.25);
  return 0;
}
EOF
dune exec bin/fpgrind_cli.exe -- sanitize "$san_bad" | grep -q 'bits max error'
if dune exec bin/fpgrind_cli.exe -- sanitize "$san_bad" --fatal >/dev/null 2>&1
then
  echo "ci: sanitizer missed a known-bad program"; exit 1
fi
dune exec bin/fpgrind_cli.exe -- sanitize "$san_ok" \
  | grep -q 'no floating-point problems'

# Engine-consistency fuzz: fixed seed, the full analysis and the
# sanitizer must agree on which spots are erroneous, program by program.
dune exec bin/fpgrind_cli.exe -- fuzz \
  --seed 42 --iters 100 --consistency --quiet

# Tiered smoke: the two-pass engine must flag the known-bad program at
# the same spot as the full analysis, and stay silent on the clean one.
tier_out="$(mktemp /tmp/fpgrind-ci-tier.XXXXXX.txt)"
full_out="$(mktemp /tmp/fpgrind-ci-full.XXXXXX.txt)"
trap 'rm -f "$out" "$san_bad" "$san_ok" "$tier_out" "$full_out"' EXIT
dune exec bin/fpgrind_cli.exe -- analyze "$san_bad" --engine tiered >"$tier_out"
dune exec bin/fpgrind_cli.exe -- analyze "$san_bad" --engine full >"$full_out"
tier_spot="$(grep -o 'at [^ ]*:[0-9]*' "$tier_out" | head -1)"
full_spot="$(grep -o 'at [^ ]*:[0-9]*' "$full_out" | head -1)"
if [ -z "$tier_spot" ] || [ "$tier_spot" != "$full_spot" ]; then
  echo "ci: tiered engine disagrees with full on the known-bad spot"
  echo "  tiered: ${tier_spot:-<none>}   full: ${full_spot:-<none>}"
  exit 1
fi
dune exec bin/fpgrind_cli.exe -- analyze "$san_ok" --engine tiered \
  | grep -q 'No floating-point problems'

# Tiered-consistency fuzz: fixed seed, every spot the tiered engine
# reports must be bit-identical to the full engine's record for it.
dune exec bin/fpgrind_cli.exe -- fuzz \
  --seed 42 --iters 500 --tiered-consistency --quiet

# Server smoke: ephemeral port, one analysis through `fpgrind client`
# asserted byte-identical (modulo wall time) to the suite record above,
# a /metrics scrape, then SIGTERM and a clean drain. The built binary is
# invoked directly: the backgrounded server must not hold the dune lock.
bin=_build/default/bin/fpgrind_cli.exe
srv_log="$(mktemp /tmp/fpgrind-ci-serve.XXXXXX.log)"
srv_store="$(mktemp /tmp/fpgrind-ci-serve.XXXXXX.jsonl)"
rm -f "$srv_store"
trap 'rm -f "$out" "$san_bad" "$san_ok" "$srv_log" "$srv_store"' EXIT

"$bin" serve --port 0 --jobs 1 --queue 8 --store "$srv_store" >"$srv_log" 2>&1 &
srv_pid=$!
for _ in $(seq 50); do
  port="$(sed -n 's/.*127\.0\.0\.1:\([0-9]*\).*/\1/p' "$srv_log" | head -1)"
  [ -n "$port" ] && break
  sleep 0.1
done
[ -n "$port" ] || { echo "ci: server never came up"; cat "$srv_log"; exit 1; }

"$bin" client --port "$port" analyze bench:intro-example \
  --iterations 4 --precision 128 --match "$out" >/dev/null
"$bin" client --port "$port" metrics | grep -q '^fpgrind_http_requests_total'

kill -TERM "$srv_pid"
wait "$srv_pid"   # exits nonzero (and fails CI) unless the drain is clean
grep -q 'drained, store flushed' "$srv_log"
"$bin" validate "$srv_store"

# External-corpus ingestion smoke: the committed fixture corpus (good
# cores + malformed/truncated/duplicate artifacts) must analyze under
# the tiered engine with structured failed rows — exit 0, no crashes.
# (validate is NOT run on this store: failed ingest records are the
# point, and validate treats any failed row as nonzero.)
ing_out="$(mktemp /tmp/fpgrind-ci-ingest.XXXXXX.jsonl)"
ing_txt="$(mktemp /tmp/fpgrind-ci-ingest.XXXXXX.txt)"
trap 'rm -f "$out" "$san_bad" "$san_ok" "$srv_log" "$srv_store" "$ing_out" "$ing_txt"' EXIT
"$bin" suite --dir test/corpus-ext --engine tiered \
  --iterations 2 --timeout 60 --json "$ing_out" --no-cache >"$ing_txt"
grep -q 'ext-sqrt-diff' "$ing_txt"
grep -q 'ingest' "$ing_txt"   # the malformed artifacts surfaced as failed rows

# Regime smoke: the official swept configuration must branch the
# quadratic formula into >= 2 regimes with a strictly lower resampled
# mean error, and must decline to branch the already-accurate thin-lens
# bench (no thresholds, original kept). Both must be sound on resample
# (a regime run exits 1 on an unsound fix).
reg_multi="$(mktemp /tmp/fpgrind-ci-regime.XXXXXX.json)"
reg_single="$(mktemp /tmp/fpgrind-ci-regime1.XXXXXX.json)"
trap 'rm -f "$out" "$san_bad" "$san_ok" "$srv_log" "$srv_store" "$ing_out" "$ing_txt" "$reg_multi" "$reg_single"' EXIT
"$bin" improve bench:quadratic-full --regimes \
  --points 96 --depth 4 --penalty 0.05 --json "$reg_multi" >/dev/null
jq -e '(.regimes >= 2) and (.selected == "branched")
       and (.act_branched_bits < .act_before_bits)
       and (.thresholds | length >= 1) and .sound' "$reg_multi" >/dev/null \
  || { echo "ci: quadratic-full did not branch into sound regimes"; cat "$reg_multi"; exit 1; }
"$bin" improve bench:thin-lens --regimes \
  --points 96 --depth 4 --penalty 0.05 --json "$reg_single" >/dev/null
jq -e '(.regimes == 1) and (.thresholds | length == 0) and .sound' \
  "$reg_single" >/dev/null \
  || { echo "ci: thin-lens emitted a spurious branch"; cat "$reg_single"; exit 1; }
# the server path annotates records and exports the regime counters
"$bin" serve --port 0 --jobs 1 --queue 8 >"$srv_log" 2>&1 &
reg_srv_pid=$!
for _ in $(seq 50); do
  reg_port="$(sed -n 's/.*127\.0\.0\.1:\([0-9]*\).*/\1/p' "$srv_log" | head -1)"
  [ -n "$reg_port" ] && break
  sleep 0.1
done
[ -n "$reg_port" ] || { echo "ci: regime server never came up"; cat "$srv_log"; exit 1; }
"$bin" client --port "$reg_port" analyze bench:quadratic-full \
  --iterations 2 --seed 42 --regimes \
  | jq -e '.regimes >= 2 and (.error_table | length > 0)' >/dev/null \
  || { echo "ci: /analyze?regimes=1 did not annotate the record"; exit 1; }
"$bin" client --port "$reg_port" metrics \
  | grep -q '^fpgrind_regimes_inferred_total [1-9]' \
  || { echo "ci: regime counters missing from /metrics"; exit 1; }
kill -TERM "$reg_srv_pid"
wait "$reg_srv_pid"

# Campaign smoke: a fixed-seed campaign covering the full 85-bench
# soundiness sweep interleaved with fuzz programs, SIGINT'd mid-run
# (exit 3, checkpointed), resumed to completion, and the merged
# findings feed must be byte-identical to an uninterrupted run of the
# same seed. Then a server configured with the feed serves it at
# GET /findings and exports the campaign gauges.
camp_dir="$(mktemp -d /tmp/fpgrind-ci-camp.XXXXXX)"
trap 'rm -f "$out" "$san_bad" "$san_ok" "$srv_log" "$srv_store" "$ing_out" "$ing_txt"; rm -rf "$camp_dir"' EXIT
camp_flags=(--seed 42 --iters 170 --soundiness-every 2 --regimes-every 3 --checkpoint-every 10 --quiet)

"$bin" campaign "${camp_flags[@]}" \
  --state "$camp_dir/ref.state.json" --findings "$camp_dir/ref.jsonl"
[ -s "$camp_dir/ref.jsonl" ] || { echo "ci: campaign found nothing at seed 42"; exit 1; }

"$bin" campaign "${camp_flags[@]}" \
  --state "$camp_dir/int.state.json" --findings "$camp_dir/int.jsonl" &
camp_pid=$!
sleep 1
kill -INT "$camp_pid"
camp_rc=0; wait "$camp_pid" || camp_rc=$?
if [ "$camp_rc" -ne 3 ]; then
  echo "ci: interrupted campaign exited $camp_rc, expected 3 (did it finish early?)"
  exit 1
fi
"$bin" campaign "${camp_flags[@]}" \
  --state "$camp_dir/int.state.json" --findings "$camp_dir/int.jsonl"
cmp "$camp_dir/ref.jsonl" "$camp_dir/int.jsonl"

srv_log2="$camp_dir/serve.log"
"$bin" serve --port 0 --jobs 1 --queue 8 --findings "$camp_dir/ref.jsonl" \
  >"$srv_log2" 2>&1 &
srv2_pid=$!
for _ in $(seq 50); do
  port2="$(sed -n 's/.*127\.0\.0\.1:\([0-9]*\).*/\1/p' "$srv_log2" | head -1)"
  [ -n "$port2" ] && break
  sleep 0.1
done
[ -n "$port2" ] || { echo "ci: findings server never came up"; cat "$srv_log2"; exit 1; }
"$bin" client --port "$port2" findings >"$camp_dir/feed.jsonl"
cmp "$camp_dir/ref.jsonl" "$camp_dir/feed.jsonl"
# external corpus round-trips through POST /analyze too
"$bin" client --port "$port2" analyze test/corpus-ext/noname.fpcore \
  --iterations 2 >/dev/null
"$bin" client --port "$port2" metrics >"$camp_dir/metrics.txt"
grep -q '^fpgrind_campaign_findings_total [1-9]' "$camp_dir/metrics.txt"
grep -q '^fpgrind_store_torn_records_total' "$camp_dir/metrics.txt"
kill -TERM "$srv2_pid"
wait "$srv2_pid"

# Shard + loadgen smoke: a 2-shard pre-forked server on an ephemeral
# port takes a short seeded open-loop burst with zero 5xx (503
# backpressure is allowed — that's the latency promise, not a failure),
# survives a SIGKILL of one worker (the parent respawns it and the next
# request succeeds), then drains on SIGTERM leaving a validate-clean
# store (the advisory-locked shared cache file).
shard_dir="$(mktemp -d /tmp/fpgrind-ci-shard.XXXXXX)"
trap 'rm -f "$out" "$san_bad" "$san_ok" "$srv_log" "$srv_store" "$ing_out" "$ing_txt"; rm -rf "$camp_dir" "$shard_dir"' EXIT
shard_log="$shard_dir/serve.log"
shard_store="$shard_dir/store.jsonl"

"$bin" serve --shards 2 --port 0 --jobs 1 --queue 16 \
  --store "$shard_store" --quiet >"$shard_log" 2>&1 &
shard_pid=$!
for _ in $(seq 50); do
  shard_port="$(sed -n 's/.*127\.0\.0\.1:\([0-9]*\).*/\1/p' "$shard_log" | head -1)"
  [ -n "$shard_port" ] && break
  sleep 0.1
done
[ -n "$shard_port" ] || { echo "ci: shard server never came up"; cat "$shard_log"; exit 1; }

# seeded open-loop burst: loadgen itself exits nonzero on any 5xx or
# transport error; the jq assert pins the contract in the report too
"$bin" loadgen --url "http://127.0.0.1:$shard_port" \
  --rate 25 --duration 2 --seed 7 --conns 3 --iterations 4 \
  --json "$shard_dir/burst.json"
jq -e '(.errors_5xx == 0) and (.conn_errors == 0)
       and (.ok + .throttled_503 == .requests)' "$shard_dir/burst.json" >/dev/null \
  || { echo "ci: loadgen burst saw server failures"; cat "$shard_dir/burst.json"; exit 1; }

# kill one worker outright: at most that shard's in-flight work is
# lost, the parent respawns it, and the service keeps answering
victim="$(pgrep -P "$shard_pid" | head -1)"
[ -n "$victim" ] || { echo "ci: no shard worker to kill"; exit 1; }
kill -KILL "$victim"
sleep 0.5
"$bin" client --port "$shard_port" analyze bench:intro-example \
  --iterations 4 --precision 128 >/dev/null \
  || { echo "ci: request after shard kill failed"; exit 1; }
grep -q '"restarts": [1-9]' "$shard_store.status.json" \
  || { echo "ci: shard kill not recorded in the status file"; exit 1; }
"$bin" client --port "$shard_port" metrics \
  | grep -q '^fpgrind_shard_restarts_total [1-9]' \
  || { echo "ci: shard restart not visible on /metrics"; exit 1; }

# rolling drain: SIGTERM the parent, wait, assert the drain line and a
# validate-clean store
kill -TERM "$shard_pid"
wait "$shard_pid"
grep -q 'drained, store flushed' "$shard_log"
"$bin" validate "$shard_store"

echo "ci: ok"
