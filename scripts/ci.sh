#!/usr/bin/env bash
# CI entry point: build, run the full test suite, then smoke-test the
# fleet batch engine end to end — a small `fpgrind suite` run with a
# JSONL store, validated by parsing it back.
set -euo pipefail
cd "$(dirname "$0")/.."

dune build @all
dune runtest

out="$(mktemp /tmp/fpgrind-ci.XXXXXX.jsonl)"
trap 'rm -f "$out"' EXIT

dune exec bin/fpgrind_cli.exe -- suite \
  intro-example nmse-3-1 verhulst midpoint-naive logistic-map newton-sqrt \
  -j 2 --timeout 60 --precision 128 --iterations 4 \
  --json "$out" --no-cache --strict

dune exec bin/fpgrind_cli.exe -- validate "$out"

# Differential-fuzz smoke: a fixed-seed campaign (so CI is reproducible)
# plus replay of every committed counterexample in test/corpus. Any
# divergence exits nonzero after printing the shrunken reproducer.
dune exec bin/fpgrind_cli.exe -- fuzz \
  --seed 42 --iters 200 --corpus test/corpus --quiet

# Server smoke: ephemeral port, one analysis through `fpgrind client`
# asserted byte-identical (modulo wall time) to the suite record above,
# a /metrics scrape, then SIGTERM and a clean drain. The built binary is
# invoked directly: the backgrounded server must not hold the dune lock.
bin=_build/default/bin/fpgrind_cli.exe
srv_log="$(mktemp /tmp/fpgrind-ci-serve.XXXXXX.log)"
srv_store="$(mktemp /tmp/fpgrind-ci-serve.XXXXXX.jsonl)"
rm -f "$srv_store"
trap 'rm -f "$out" "$srv_log" "$srv_store"' EXIT

"$bin" serve --port 0 --jobs 1 --queue 8 --store "$srv_store" >"$srv_log" 2>&1 &
srv_pid=$!
for _ in $(seq 50); do
  port="$(sed -n 's/.*127\.0\.0\.1:\([0-9]*\).*/\1/p' "$srv_log" | head -1)"
  [ -n "$port" ] && break
  sleep 0.1
done
[ -n "$port" ] || { echo "ci: server never came up"; cat "$srv_log"; exit 1; }

"$bin" client --port "$port" analyze bench:intro-example \
  --iterations 4 --precision 128 --match "$out" >/dev/null
"$bin" client --port "$port" metrics | grep -q '^fpgrind_http_requests_total'

kill -TERM "$srv_pid"
wait "$srv_pid"   # exits nonzero (and fails CI) unless the drain is clean
grep -q 'drained, store flushed' "$srv_log"
"$bin" validate "$srv_store"

echo "ci: ok"
