#!/usr/bin/env bash
# CI entry point: build, run the full test suite, then smoke-test the
# fleet batch engine end to end — a small `fpgrind suite` run with a
# JSONL store, validated by parsing it back.
set -euo pipefail
cd "$(dirname "$0")/.."

dune build @all
dune runtest

out="$(mktemp /tmp/fpgrind-ci.XXXXXX.jsonl)"
trap 'rm -f "$out"' EXIT

dune exec bin/fpgrind_cli.exe -- suite \
  intro-example nmse-3-1 verhulst midpoint-naive logistic-map newton-sqrt \
  -j 2 --timeout 60 --precision 128 --iterations 4 \
  --json "$out" --no-cache --strict

dune exec bin/fpgrind_cli.exe -- validate "$out"

# Differential-fuzz smoke: a fixed-seed campaign (so CI is reproducible)
# plus replay of every committed counterexample in test/corpus. Any
# divergence exits nonzero after printing the shrunken reproducer.
dune exec bin/fpgrind_cli.exe -- fuzz \
  --seed 42 --iters 200 --corpus test/corpus --quiet

echo "ci: ok"
