#!/usr/bin/env bash
# Benchmark trajectory, PR 6: the full (Herbgrind-style shadow-real)
# engine vs the sanitize (NSan-style double-double) engine vs the tiered
# engine (sanitizer triage + slice-restricted full-precision escalation)
# over the whole vendored FPBench suite at default config, plus
# per-operation timings of the twofloat kernel. Emits BENCH_6.json at
# the repo root; the raw per-run outputs (bench_output_*.txt, *.jsonl)
# are gitignored.
set -euo pipefail
cd "$(dirname "$0")/.."

dune build @all
bin=_build/default/bin/fpgrind_cli.exe

run_suite() { # engine store -> "<seconds> <programs>"
  local engine="$1" store="$2"
  local log t0 t1 n
  log="bench_output_${engine}_suite.txt"
  rm -f "$store"
  t0=$(date +%s.%N)
  "$bin" suite --engine "$engine" --no-cache --quiet \
    --json "$store" --timeout 600 >"$log"
  t1=$(date +%s.%N)
  n=$(wc -l <"$store")
  awk -v a="$t0" -v b="$t1" -v n="$n" 'BEGIN { printf "%.3f %d", b - a, n }'
}

store_full="$(mktemp /tmp/fpgrind-bench-full.XXXXXX.jsonl)"
store_san="$(mktemp /tmp/fpgrind-bench-san.XXXXXX.jsonl)"
store_tier="$(mktemp /tmp/fpgrind-bench-tier.XXXXXX.jsonl)"
trap 'rm -f "$store_full" "$store_san" "$store_tier"' EXIT

echo "bench: full engine over the suite (slow; shadow reals at 1000 bits)..."
read -r t_full n_full <<<"$(run_suite full "$store_full")"
echo "bench: sanitize engine over the suite..."
read -r t_san n_san <<<"$(run_suite sanitize "$store_san")"
echo "bench: tiered engine over the suite..."
read -r t_tier n_tier <<<"$(run_suite tiered "$store_tier")"

# How much of the suite the tiered engine escalated to pass 2, and how
# big the escalated slices were — the honesty metrics behind the speedup.
read -r esc slice <<<"$(jq -s \
  '[([.[].metrics.escalations] | add), ([.[].metrics.slice_stmts] | add)] | @tsv' \
  -r "$store_tier")"

echo "bench: twofloat kernel ns/op..."
"$bin" sanitize --bench-kernel | tee bench_output_kernel.txt

# assemble the JSON: suite wall times, throughput, speedups, kernel table
awk -v t_full="$t_full" -v n_full="$n_full" \
    -v t_san="$t_san" -v n_san="$n_san" \
    -v t_tier="$t_tier" -v n_tier="$n_tier" \
    -v esc="$esc" -v slice="$slice" '
  /ns\/op/ { kern[$1] = $2 }
  END {
    printf "{\n"
    printf "  \"bench\": \"full vs sanitize vs tiered suite + twofloat kernel\",\n"
    printf "  \"suite\": {\n"
    printf "    \"programs\": %d,\n", n_full
    printf "    \"full\":     { \"wall_s\": %s, \"programs_per_s\": %.3f },\n", \
      t_full, n_full / t_full
    printf "    \"sanitize\": { \"wall_s\": %s, \"programs_per_s\": %.3f },\n", \
      t_san, n_san / t_san
    printf "    \"tiered\":   { \"wall_s\": %s, \"programs_per_s\": %.3f,\n", \
      t_tier, n_tier / t_tier
    printf "                    \"escalated_programs\": %d, \"slice_stmts\": %d },\n", \
      esc, slice
    printf "    \"sanitize_speedup\": %.2f,\n", t_full / t_san
    printf "    \"tiered_speedup\": %.2f\n", t_full / t_tier
    printf "  },\n"
    printf "  \"twofloat_ns_per_op\": {\n"
    sep = ""
    split("add mul div sqrt fma", order, " ")
    for (i = 1; i <= 5; i++) {
      op = order[i]
      if (op in kern) { printf "%s    \"%s\": %s", sep, op, kern[op]; sep = ",\n" }
    }
    printf "\n  }\n}\n"
  }' bench_output_kernel.txt >BENCH_6.json

echo "bench: wrote BENCH_6.json"
cat BENCH_6.json
