#!/usr/bin/env bash
# Benchmark trajectory, PR 9: regime inference over the full
# straight-line suite. Runs `fpgrind improve --sweep` at the official
# swept configuration (96 points, depth 4, MDL penalty 0.05 bits/point)
# and emits BENCH_8.json at the repo root: one row per benchmark with
# before/after resampled mean_error_bits, the selected fix shape, and
# wall time, plus sweep-level aggregates. The sweep itself asserts the
# soundness contract — the script fails if any shipped fix is unsound
# on its disjoint resample context. Raw sweep output
# (bench_output_regimes.jsonl) is gitignored.
set -euo pipefail
cd "$(dirname "$0")/.."

dune build @all
bin=_build/default/bin/fpgrind_cli.exe

sweep=bench_output_regimes.jsonl
log=bench_output_regimes.txt
rm -f "$sweep"

t0=$(date +%s.%N)
"$bin" improve --sweep --points 96 --depth 4 --penalty 0.05 \
  --json "$sweep" 2>"$log"
t1=$(date +%s.%N)
wall=$(awk -v a="$t0" -v b="$t1" 'BEGIN { printf "%.3f", b - a }')

if grep -q UNSOUND "$log"; then
  echo "bench: sweep shipped an unsound fix" >&2
  grep UNSOUND "$log" >&2
  exit 1
fi

jq -s --argjson wall "$wall" '
  def after: (if .selected == "branched" then .act_branched_bits
              elif .selected == "single" then .act_single_bits
              else .act_before_bits end);
  { bench: "regime inference: branched-fix synthesis over the straight-line suite (points=96 depth=4 penalty=0.05 seed=42)",
    wall_s: $wall,
    programs: length,
    benchmarks: [ .[] | {
      name, regimes, selected,
      mean_error_bits_before: (.act_before_bits * 100 | round / 100),
      mean_error_bits_after:  (after * 100 | round / 100),
      thresholds: [ .thresholds[] | { var, value } ],
      wall_s: (.wall_s * 1000 | round / 1000) } ],
    aggregates: {
      branched: [ .[] | select(.selected == "branched") ] | length,
      single:   [ .[] | select(.selected == "single") ] | length,
      original: [ .[] | select(.selected == "original") ] | length,
      unsound:  [ .[] | select(.sound | not) ] | length,
      improved: [ .[] | select(after < .act_before_bits) ] | length,
      mean_bits_before: (([ .[] | .act_before_bits ] | add / length) * 100 | round / 100),
      mean_bits_after:  (([ .[] | after ] | add / length) * 100 | round / 100),
      search_points_total: ([ .[] | .search_points ] | add) } }' \
  "$sweep" >BENCH_8.json

echo "bench: wrote BENCH_8.json"
jq '{wall_s, programs, aggregates}' BENCH_8.json
