#!/usr/bin/env bash
# Benchmark trajectory, PR 10: the serve-v2 latency story. Runs the
# seeded open-loop generator (`fpgrind loadgen`) against the pre-forked
# shard server in four configurations — 1 shard vs 4 shards, cold
# result cache vs warm — and emits BENCH_9.json at the repo root: per
# configuration the p50/p90/p99/mean/max latency (measured from each
# request's scheduled arrival, so queueing is charged to the server),
# throughput, and the ok/503 split. The request stream is a pure
# function of the seed, so every configuration sees byte-identical
# request bodies; "warm" is the same stream offered a second time to
# the same server, when every body is already in the shared cache.
# Any 5xx or transport error fails the script (loadgen exits nonzero).
set -euo pipefail
cd "$(dirname "$0")/.."

dune build @all
bin=_build/default/bin/fpgrind_cli.exe

rate=40
duration=3
seed=42
conns=4

work="$(mktemp -d /tmp/fpgrind-bench9.XXXXXX)"
trap 'rm -rf "$work"; [ -n "${srv_pid:-}" ] && kill -TERM "$srv_pid" 2>/dev/null || true' EXIT

run_config() {  # $1 = shards
  local shards=$1
  local log="$work/serve-$shards.log" store="$work/store-$shards.jsonl" port=
  "$bin" serve --shards "$shards" --port 0 --jobs 1 --queue 16 \
    --store "$store" --quiet >"$log" 2>&1 &
  srv_pid=$!
  for _ in $(seq 50); do
    port="$(sed -n 's/.*127\.0\.0\.1:\([0-9]*\).*/\1/p' "$log" | head -1)"
    [ -n "$port" ] && break
    sleep 0.1
  done
  [ -n "$port" ] || { echo "bench: $shards-shard server never came up" >&2; cat "$log" >&2; exit 1; }

  # cold: empty store, every request is a fresh analysis
  "$bin" loadgen --url "http://127.0.0.1:$port" \
    --rate "$rate" --duration "$duration" --seed "$seed" --conns "$conns" \
    --json "$work/cold-$shards.json" >/dev/null
  # warm: the identical stream again — every body is now a cache hit,
  # shared across shards through the advisory-locked store file
  "$bin" loadgen --url "http://127.0.0.1:$port" \
    --rate "$rate" --duration "$duration" --seed "$seed" --conns "$conns" \
    --json "$work/warm-$shards.json" >/dev/null

  kill -TERM "$srv_pid"
  wait "$srv_pid"
  srv_pid=
  grep -q 'drained, store flushed' "$log" \
    || { echo "bench: $shards-shard server did not drain cleanly" >&2; exit 1; }
  "$bin" validate "$store" >/dev/null
}

run_config 1
run_config 4

jq -n \
  --slurpfile c1 "$work/cold-1.json" --slurpfile w1 "$work/warm-1.json" \
  --slurpfile c4 "$work/cold-4.json" --slurpfile w4 "$work/warm-4.json" \
  '
  def row: { requests, ok, throttled_503,
             throughput_rps: (.throughput_rps * 100 | round / 100),
             latency_ms: (.latency_ms
               | with_entries(.value = (.value * 1000 | round / 1000))) };
  { bench: "serve v2: seeded open-loop load (rate=\($c1[0].rate) rps, \($c1[0].duration_s)s, conns=\($c1[0].conns), seed=\($c1[0].seed), mix=\($c1[0].mix), engine=\($c1[0].engine)) against the pre-forked shard server; warm = identical stream repeated against the shared result cache",
    note: "single-core container: multi-shard numbers measure isolation overhead, not parallel speedup; see ROADMAP for the reading",
    configs: [
      { shards: 1, cold: ($c1[0] | row), warm: ($w1[0] | row) },
      { shards: 4, cold: ($c4[0] | row), warm: ($w4[0] | row) } ] }' \
  >BENCH_9.json

echo "bench: wrote BENCH_9.json"
jq '{bench, configs: [.configs[] | {shards, cold_p99: .cold.latency_ms.p99, warm_p99: .warm.latency_ms.p99, cold_rps: .cold.throughput_rps, warm_rps: .warm.throughput_rps}]}' BENCH_9.json
