#!/usr/bin/env bash
# Benchmark trajectory, PR 7: the compiled executor (pre-decoded
# superblocks, arena shadows, lazy traces) vs the tree-walking
# interpreter it replaced. Emits BENCH_7.json at the repo root with
# before/after three-engine suite numbers, the twofloat kernel table,
# and the compile-cache hit rate of a double suite pass.
#
# "Before" numbers come from a pre-refactor binary when
# FPGRIND_BEFORE_BIN points at one (build commit bb231c2 in a git
# worktree for a same-day, same-machine comparison); otherwise the
# numbers recorded in BENCH_6.json are carried over with a note, since
# this machine's clock drifts across days. Raw per-run outputs
# (bench_output_*.txt, *.jsonl) are gitignored.
set -euo pipefail
cd "$(dirname "$0")/.."

dune build @all
bin=_build/default/bin/fpgrind_cli.exe
before_bin="${FPGRIND_BEFORE_BIN:-}"

run_suite() { # bin engine store passes -> "<seconds> <programs>"
  local b="$1" engine="$2" store="$3" passes="$4"
  local log stats t0 t1 n
  log="bench_output_${engine}_suite.txt"
  stats="bench_output_${engine}_stats.txt"
  rm -f "$store"
  t0=$(date +%s.%N)
  FPGRIND_SUITE_PASSES="$passes" FPGRIND_COMPILE_STATS=1 \
    "$b" suite --engine "$engine" --no-cache --quiet \
    --json "$store" --timeout 600 >"$log" 2>"$stats"
  t1=$(date +%s.%N)
  n=$(wc -l <"$store")
  awk -v a="$t0" -v b="$t1" -v n="$n" 'BEGIN { printf "%.3f %d", b - a, n }'
}

suite_json() { # t_full n_full t_san t_tier esc slice -> one suite object
  jq -n --argjson t_full "$1" --argjson n "$2" \
        --argjson t_san "$3" --argjson t_tier "$4" \
        --argjson esc "$5" --argjson slice "$6" '
    { programs: $n,
      full:     { wall_s: $t_full, programs_per_s: (($n / $t_full) * 1000 | round / 1000) },
      sanitize: { wall_s: $t_san,  programs_per_s: (($n / $t_san) * 1000 | round / 1000) },
      tiered:   { wall_s: $t_tier, programs_per_s: (($n / $t_tier) * 1000 | round / 1000),
                  escalated_programs: $esc, slice_stmts: $slice } }'
}

measure_tree() { # bin tag -> emits suite object on stdout
  local b="$1" tag="$2"
  echo "bench: $tag full engine over the suite..." >&2
  read -r t_full n_full <<<"$(run_suite "$b" full "/tmp/fpgrind-bench-$tag-full.jsonl" 1)"
  echo "bench: $tag sanitize engine over the suite..." >&2
  read -r t_san _ <<<"$(run_suite "$b" sanitize "/tmp/fpgrind-bench-$tag-san.jsonl" 1)"
  echo "bench: $tag tiered engine over the suite..." >&2
  read -r t_tier _ <<<"$(run_suite "$b" tiered "/tmp/fpgrind-bench-$tag-tier.jsonl" 1)"
  read -r esc slice <<<"$(jq -s \
    '[([.[].metrics.escalations] | add), ([.[].metrics.slice_stmts] | add)] | @tsv' \
    -r "/tmp/fpgrind-bench-$tag-tier.jsonl")"
  suite_json "$t_full" "$n_full" "$t_san" "$t_tier" "$esc" "$slice"
}

after_suite="$(measure_tree "$bin" after)"

if [ -n "$before_bin" ]; then
  before_suite="$(measure_tree "$before_bin" before)"
  before_source="measured same-day from FPGRIND_BEFORE_BIN (pre-refactor interpreter)"
else
  before_suite="$(jq '.suite | del(.sanitize_speedup, .tiered_speedup)' BENCH_6.json)"
  before_source="carried over from BENCH_6.json (recorded on an earlier machine state)"
fi

# Compile-cache behaviour: the whole suite twice in one process — the
# second pass must be served entirely from the compiled-block cache.
echo "bench: double suite pass for compile-cache hit rate..."
read -r _ _ <<<"$(run_suite "$bin" full /tmp/fpgrind-bench-cache.jsonl 2)"
compile_cache="$(jq -s '
  { blocks_compiled: .[0].blocks_compiled,
    pass2_new_blocks: (.[1].blocks_compiled - .[0].blocks_compiled),
    pass2_cache_hits: (.[1].cache_hits - .[0].cache_hits) }' \
  bench_output_full_stats.txt)"

echo "bench: twofloat kernel ns/op..."
"$bin" sanitize --bench-kernel | tee bench_output_kernel.txt
kernel="$(awk '/ns\/op/ { printf "{\"op\":\"%s\",\"ns\":%s}\n", $1, $2 }' \
  bench_output_kernel.txt | jq -s 'map({(.op): .ns}) | add')"

jq -n --argjson before "$before_suite" --argjson after "$after_suite" \
      --argjson cache "$compile_cache" --argjson kernel "$kernel" \
      --arg before_source "$before_source" '
  { bench: "compiled executor vs tree-walking interpreter: three-engine suite + twofloat kernel + compile cache",
    before_source: $before_source,
    suite_before: $before,
    suite_after: $after,
    speedup: {
      full:     (($before.full.wall_s     / $after.full.wall_s)     * 100 | round / 100),
      sanitize: (($before.sanitize.wall_s / $after.sanitize.wall_s) * 100 | round / 100),
      tiered:   (($before.tiered.wall_s   / $after.tiered.wall_s)   * 100 | round / 100) },
    compile_cache: $cache,
    twofloat_ns_per_op: $kernel }' >BENCH_7.json

echo "bench: wrote BENCH_7.json"
cat BENCH_7.json
