#!/usr/bin/env bash
# Benchmark trajectory, PR 5: the full (Herbgrind-style shadow-real)
# engine vs the sanitize (NSan-style double-double) engine over the
# whole vendored FPBench suite at default config, plus per-operation
# timings of the twofloat kernel. Emits BENCH_5.json at the repo root;
# the raw per-run outputs (bench_output_*.txt, *.jsonl) are gitignored.
set -euo pipefail
cd "$(dirname "$0")/.."

dune build @all
bin=_build/default/bin/fpgrind_cli.exe

run_suite() { # engine -> "<seconds> <programs>"
  local engine="$1"
  local store log t0 t1 n
  store="$(mktemp /tmp/fpgrind-bench.XXXXXX.jsonl)"
  log="bench_output_${engine}_suite.txt"
  rm -f "$store"
  t0=$(date +%s.%N)
  "$bin" suite --engine "$engine" --no-cache --quiet \
    --json "$store" --timeout 600 >"$log"
  t1=$(date +%s.%N)
  n=$(wc -l <"$store")
  rm -f "$store"
  awk -v a="$t0" -v b="$t1" -v n="$n" 'BEGIN { printf "%.3f %d", b - a, n }'
}

echo "bench: full engine over the suite (slow; shadow reals at 1000 bits)..."
read -r t_full n_full <<<"$(run_suite full)"
echo "bench: sanitize engine over the suite..."
read -r t_san n_san <<<"$(run_suite sanitize)"

echo "bench: twofloat kernel ns/op..."
"$bin" sanitize --bench-kernel | tee bench_output_kernel.txt

# assemble the JSON: suite wall times, throughput, speedup, kernel table
awk -v t_full="$t_full" -v n_full="$n_full" \
    -v t_san="$t_san" -v n_san="$n_san" '
  /ns\/op/ { kern[$1] = $2 }
  END {
    printf "{\n"
    printf "  \"bench\": \"full-vs-sanitize suite + twofloat kernel\",\n"
    printf "  \"suite\": {\n"
    printf "    \"programs\": %d,\n", n_full
    printf "    \"full\":     { \"wall_s\": %s, \"programs_per_s\": %.3f },\n", \
      t_full, n_full / t_full
    printf "    \"sanitize\": { \"wall_s\": %s, \"programs_per_s\": %.3f },\n", \
      t_san, n_san / t_san
    printf "    \"sanitize_speedup\": %.2f\n", t_full / t_san
    printf "  },\n"
    printf "  \"twofloat_ns_per_op\": {\n"
    sep = ""
    split("add mul div sqrt fma", order, " ")
    for (i = 1; i <= 5; i++) {
      op = order[i]
      if (op in kern) { printf "%s    \"%s\": %s", sep, op, kern[op]; sep = ",\n" }
    }
    printf "\n  }\n}\n"
  }' bench_output_kernel.txt >BENCH_5.json

echo "bench: wrote BENCH_5.json"
cat BENCH_5.json
