(* Tests for the IEEE bit-level utilities: ordinal encoding, ULP
   distances, the bits-of-error metric, and single-precision emulation. *)

let checkb = Alcotest.check Alcotest.bool
let checkf = Alcotest.check (Alcotest.float 1e-9)

let ordinal_monotone () =
  let values =
    [ Float.neg_infinity; -1e300; -1.0; -1e-300; -0.0; 0.0; 1e-300; 1.0;
      1e300; Float.infinity ]
  in
  let rec pairs = function
    | a :: (b :: _ as rest) ->
        checkb
          (Printf.sprintf "%h < %h" a b)
          true
          (Ieee.ordinal_of_double a <= Ieee.ordinal_of_double b);
        pairs rest
    | _ -> ()
  in
  pairs values

let ordinal_roundtrip () =
  List.iter
    (fun f ->
      let f' = Ieee.double_of_ordinal (Ieee.ordinal_of_double f) in
      checkb (Printf.sprintf "%h" f) true
        (Int64.equal (Int64.bits_of_float f) (Int64.bits_of_float f')))
    [ 0.0; 1.0; -1.0; Float.pi; -1e308; 5e-324; Float.infinity ];
  (* the two zeros intentionally share an ordinal (0 ulps apart) *)
  checkb "-0.0 maps with +0.0" true
    (Ieee.ordinal_of_double (-0.0) = Ieee.ordinal_of_double 0.0)

let ulps_adjacent () =
  checkb "adjacent" true (Ieee.ulps_between 1.0 (Float.succ 1.0) = 1L);
  checkb "self" true (Ieee.ulps_between 42.0 42.0 = 0L);
  checkb "across zero" true (Ieee.ulps_between (-0.0) 0.0 = 0L);
  checkb "tiny to zero" true (Ieee.ulps_between 0.0 5e-324 = 1L)

let bits_of_error_scale () =
  checkf "exact" 0.0 (Ieee.bits_of_error 1.0 1.0);
  checkf "one ulp" 1.0 (Ieee.bits_of_error 1.0 (Float.succ 1.0));
  checkb "half the bits" true
    (let e = Ieee.bits_of_error 1.0 (1.0 +. 1e-8) in
     e > 25.0 && e < 29.0);
  checkf "nan vs number" 64.0 (Ieee.bits_of_error Float.nan 1.0);
  checkf "nan vs nan" 0.0 (Ieee.bits_of_error Float.nan Float.nan);
  checkb "sign flip is huge" true (Ieee.bits_of_error 1.0 (-1.0) > 60.0)

let single_rounding () =
  checkb "0.1 not representable" false (Ieee.Single.is_representable 0.1);
  checkb "1.5 representable" true (Ieee.Single.is_representable 1.5);
  let x = Ieee.Single.of_double 0.1 in
  checkb "rounded value differs" true (x <> 0.1);
  checkb "idempotent" true (Ieee.Single.of_double x = x)

let single_arithmetic_rounds () =
  (* 1 + 2^-25 rounds back to 1 in binary32 but not in binary64 *)
  let tiny = ldexp 1.0 (-25) in
  checkb "double keeps it" true (1.0 +. tiny <> 1.0);
  checkb "single drops it" true (Ieee.Single.add 1.0 tiny = 1.0);
  checkb "single sqrt" true (Ieee.Single.sqrt 2.0 = Ieee.Single.of_double (Float.sqrt 2.0))

let single_error_metric () =
  let exact = 1.0 /. 3.0 in
  let single = Ieee.Single.of_double exact in
  checkb "double error vs exact large in double ulps" true
    (Ieee.bits_of_error single exact > 20.0);
  checkb "but zero in single ulps" true
    (Ieee.Single.bits_of_error single (Ieee.Single.of_double exact) = 0.0)

let total_compare () =
  checkb "order" true (Ieee.double_total_compare (-1.0) 1.0 < 0);
  checkb "zeros equal" true (Ieee.double_total_compare (-0.0) 0.0 = 0);
  checkb "inf below nan" true
    (Ieee.double_total_compare Float.infinity Float.nan < 0)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"ordinal respects order" ~count:500 (pair float float)
      (fun (a, b) ->
        assume (Float.is_finite a && Float.is_finite b);
        if a < b then Ieee.ordinal_of_double a < Ieee.ordinal_of_double b
        else if a > b then Ieee.ordinal_of_double a > Ieee.ordinal_of_double b
        else true);
    Test.make ~name:"bits_of_error symmetric" ~count:500 (pair float float)
      (fun (a, b) -> Ieee.bits_of_error a b = Ieee.bits_of_error b a);
    Test.make ~name:"single rounding is monotone" ~count:500 (pair float float)
      (fun (a, b) ->
        assume (Float.is_finite a && Float.is_finite b && a <= b);
        Ieee.Single.of_double a <= Ieee.Single.of_double b);
  ]

let () =
  Alcotest.run "ieee"
    [
      ( "ordinals",
        [
          Alcotest.test_case "monotone" `Quick ordinal_monotone;
          Alcotest.test_case "roundtrip" `Quick ordinal_roundtrip;
          Alcotest.test_case "ulps" `Quick ulps_adjacent;
        ] );
      ( "error-metric",
        [
          Alcotest.test_case "scale" `Quick bits_of_error_scale;
          Alcotest.test_case "total compare" `Quick total_compare;
        ] );
      ( "single",
        [
          Alcotest.test_case "rounding" `Quick single_rounding;
          Alcotest.test_case "arithmetic" `Quick single_arithmetic_rounds;
          Alcotest.test_case "error metric" `Quick single_error_metric;
        ] );
      ( "properties",
        (* seeded per-test so `dune runtest` is deterministic; set
           QCHECK_SEED to explore a different stream *)
        List.mapi
          (fun i t ->
            let base =
              try int_of_string (Sys.getenv "QCHECK_SEED") with _ -> 0x5eed
            in
            QCheck_alcotest.to_alcotest
              ~rand:(Random.State.make [| base; i |])
              t)
          qcheck_tests );
    ]
