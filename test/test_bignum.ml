(* Tests for the bignum substrate: naturals, integers, and the MPFR-style
   Bigfloat. The sharpest oracle available is IEEE hardware itself: a
   Bigfloat operation at precision 53 on double inputs must reproduce the
   hardware double result bit for bit (outside the subnormal/overflow
   range). *)

module N = Bignum.Natural
module Z = Bignum.Bigint
module B = Bignum.Bigfloat
module M = Bignum.Bigfloat_math

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

(* ---------- Natural ---------- *)

let nat_of_int_roundtrip () =
  List.iter
    (fun n -> check (Alcotest.option Alcotest.int) "roundtrip" (Some n)
        (N.to_int_opt (N.of_int n)))
    [ 0; 1; 2; 42; 1 lsl 30; (1 lsl 31) - 1; 1 lsl 31; 1 lsl 61; max_int ]

let nat_add_sub_small () =
  for _ = 1 to 200 do
    let a = Random.int 1_000_000_000 and b = Random.int 1_000_000_000 in
    checki "add" (a + b) (Option.get (N.to_int_opt (N.add (N.of_int a) (N.of_int b))));
    let hi, lo = if a >= b then (a, b) else (b, a) in
    checki "sub" (hi - lo)
      (Option.get (N.to_int_opt (N.sub (N.of_int hi) (N.of_int lo))))
  done

let nat_mul_small () =
  for _ = 1 to 200 do
    let a = Random.int 1_000_000 and b = Random.int 1_000_000 in
    checki "mul" (a * b) (Option.get (N.to_int_opt (N.mul (N.of_int a) (N.of_int b))))
  done

let random_nat bits =
  let limbs = (bits + 30) / 31 in
  let rec build acc i =
    if i = 0 then acc
    else
      build (N.add (N.shift_left acc 31) (N.of_int (Random.full_int (1 lsl 31)))) (i - 1)
  in
  build N.zero limbs

let nat_divmod_property () =
  for _ = 1 to 200 do
    let a = random_nat (1 + Random.int 600) in
    let b = random_nat (1 + Random.int 300) in
    if not (N.is_zero b) then begin
      let q, r = N.divmod a b in
      checkb "r < b" true (N.compare r b < 0);
      checkb "a = q*b + r" true (N.equal a (N.add (N.mul q b) r))
    end
  done

let nat_string_roundtrip () =
  for _ = 1 to 50 do
    let a = random_nat (1 + Random.int 400) in
    checkb "string roundtrip" true (N.equal a (N.of_string (N.to_string a)))
  done;
  checks "zero" "0" (N.to_string N.zero);
  checks "big"
    "340282366920938463463374607431768211456"
    (N.to_string (N.pow_int N.two 128))

let nat_isqrt () =
  for _ = 1 to 100 do
    let a = random_nat (1 + Random.int 400) in
    let s = N.isqrt a in
    checkb "s*s <= a" true (N.compare (N.mul s s) a <= 0);
    let s1 = N.add s N.one in
    checkb "(s+1)^2 > a" true (N.compare (N.mul s1 s1) a > 0)
  done

let nat_karatsuba_matches () =
  (* Large operands exercise the Karatsuba path; compare against a
     sum-of-shifts reference computed with add/shift only. *)
  for _ = 1 to 10 do
    let a = random_nat 2200 and b = random_nat 2500 in
    let reference =
      let acc = ref N.zero in
      for i = 0 to N.bit_length b - 1 do
        if N.testbit b i then acc := N.add !acc (N.shift_left a i)
      done;
      !acc
    in
    checkb "karatsuba = reference" true (N.equal (N.mul a b) reference)
  done

let nat_shifts () =
  for _ = 1 to 100 do
    let a = random_nat (1 + Random.int 300) in
    let k = Random.int 200 in
    checkb "shift roundtrip" true
      (N.equal a (N.shift_right (N.shift_left a k) k));
    checki "bitlen shift" (N.bit_length a + k)
      (if N.is_zero a then 0 else N.bit_length (N.shift_left a k))
  done

let nat_to_float () =
  check (Alcotest.float 0.0) "2^70" (ldexp 1.0 70)
    (N.to_float (N.pow_int N.two 70));
  check (Alcotest.float 0.0) "exact small" 123456789.0
    (N.to_float (N.of_int 123456789));
  (* 2^64 + 1 rounds down to 2^64 under nearest-even *)
  check (Alcotest.float 0.0) "round to even" (ldexp 1.0 64)
    (N.to_float (N.add (N.pow_int N.two 64) N.one))

(* ---------- Bigint ---------- *)

let int_arith () =
  for _ = 1 to 300 do
    let a = Random.int 2_000_000 - 1_000_000
    and b = Random.int 2_000_000 - 1_000_000 in
    let za = Z.of_int a and zb = Z.of_int b in
    checki "add" (a + b) (Option.get (Z.to_int_opt (Z.add za zb)));
    checki "sub" (a - b) (Option.get (Z.to_int_opt (Z.sub za zb)));
    checki "mul" (a * b) (Option.get (Z.to_int_opt (Z.mul za zb)));
    if b <> 0 then begin
      let q, r = Z.divmod za zb in
      checki "quot" (a / b) (Option.get (Z.to_int_opt q));
      checki "rem" (a mod b) (Option.get (Z.to_int_opt r))
    end
  done

let int_compare_sign () =
  checki "sign neg" (-1) (Z.sign (Z.of_int (-5)));
  checki "sign zero" 0 (Z.sign Z.zero);
  checkb "compare" true (Z.compare (Z.of_int (-10)) (Z.of_int (-2)) < 0);
  checks "to_string" "-12345" (Z.to_string (Z.of_int (-12345)))

(* ---------- Bigfloat ---------- *)

let float_roundtrip () =
  let cases =
    [ 0.0; -0.0; 1.0; -1.5; 0.1; 1e300; 1e-300; 4e-320; Float.max_float;
      Float.min_float; ldexp 1.0 (-1074); Float.pi; 1.0 /. 3.0 ]
  in
  List.iter
    (fun f ->
      let b = B.of_float f in
      checkb (Printf.sprintf "roundtrip %h" f) true
        (Int64.equal (Int64.bits_of_float f) (Int64.bits_of_float (B.to_float b))))
    cases;
  checkb "inf" true (B.to_float (B.of_float infinity) = infinity);
  checkb "nan" true (Float.is_nan (B.to_float (B.of_float Float.nan)))

let random_double () =
  (* random finite double spanning a wide exponent range *)
  let m = Random.float 2.0 -. 1.0 in
  let e = Random.int 600 - 300 in
  ldexp m e

let hardware_oracle_binop name bf ff =
  for _ = 1 to 500 do
    let a = random_double () and b = random_double () in
    let expected = ff a b in
    let got = B.to_float (bf ~prec:53 (B.of_float a) (B.of_float b)) in
    if Float.is_nan expected then checkb (name ^ " nan") true (Float.is_nan got)
    else if Float.abs expected >= ldexp 1.0 (-1021)
            && Float.abs expected < infinity then
      checkb
        (Printf.sprintf "%s %h %h -> %h vs %h" name a b expected got)
        true
        (Int64.equal (Int64.bits_of_float expected) (Int64.bits_of_float got))
  done

let bf_add_matches_hardware () = hardware_oracle_binop "add" B.add ( +. )
let bf_sub_matches_hardware () = hardware_oracle_binop "sub" B.sub ( -. )
let bf_mul_matches_hardware () = hardware_oracle_binop "mul" B.mul ( *. )
let bf_div_matches_hardware () = hardware_oracle_binop "div" B.div ( /. )

let bf_sqrt_matches_hardware () =
  for _ = 1 to 500 do
    let a = Float.abs (random_double ()) in
    let expected = Float.sqrt a in
    let got = B.to_float (B.sqrt ~prec:53 (B.of_float a)) in
    checkb
      (Printf.sprintf "sqrt %h -> %h vs %h" a expected got)
      true
      (Int64.equal (Int64.bits_of_float expected) (Int64.bits_of_float got))
  done

let bf_extended_precision_catches_cancellation () =
  (* (x + 1) - x at high precision is exactly 1 even when doubles fail *)
  let x = B.of_float 1e16 in
  let prec = 200 in
  let s = B.add ~prec x B.one in
  let d = B.sub ~prec s x in
  checkb "(1e16 + 1) - 1e16 = 1 in 200 bits" true (B.equal d B.one);
  (* while in 53 bits it is 0 or 2 but not 1 *)
  let s53 = B.add ~prec:53 x B.one in
  let d53 = B.sub ~prec:53 s53 x in
  checkb "not 1 in 53 bits" false (B.equal d53 B.one)

let bf_compare () =
  checkb "lt" true (B.lt (B.of_float 1.0) (B.of_float 2.0));
  checkb "zeros equal" true (B.equal B.zero B.neg_zero);
  checkb "neg inf least" true (B.lt B.neg_inf (B.of_float (-1e308)));
  checkb "nan incomparable" true (B.cmp B.nan B.one = None);
  for _ = 1 to 300 do
    let a = random_double () and b = random_double () in
    let expected = Stdlib.compare a b in
    match B.cmp (B.of_float a) (B.of_float b) with
    | Some c -> checki "cmp sign" expected c
    | None -> Alcotest.fail "unexpected nan"
  done

let bf_decimal_parse () =
  checkb "0.5" true (B.equal (B.of_decimal_string ~prec:53 "0.5") B.half);
  checkb "0.1 rounds like float" true
    (B.to_float (B.of_decimal_string ~prec:53 "0.1") = 0.1);
  checkb "-12345.67e-8 like float" true
    (B.to_float (B.of_decimal_string ~prec:53 "-12345.67e-8") = -12345.67e-8);
  checkb "1e300" true
    (B.to_float (B.of_decimal_string ~prec:53 "1e300") = 1e300);
  checkb "inf" true (B.of_decimal_string ~prec:53 "inf" = B.pos_inf);
  checkb "nan" true (B.is_nan (B.of_decimal_string ~prec:53 "nan"))

let bf_decimal_print () =
  checks "half" "0.5" (B.to_decimal_string ~digits:5 B.half);
  checks "neg" "-2" (B.to_decimal_string ~digits:5 (B.of_float (-2.0)));
  let pi_str = B.to_decimal_string ~digits:10 (B.of_float Float.pi) in
  checkb ("pi prints " ^ pi_str) true
    (String.length pi_str >= 10 && String.sub pi_str 0 6 = "3.1415")

let bf_floor_ceil () =
  let f25 = B.of_float 2.5 and fm25 = B.of_float (-2.5) in
  checkb "floor 2.5" true (B.equal (B.floor f25) B.two);
  checkb "ceil 2.5" true (B.equal (B.ceil f25) (B.of_int 3));
  checkb "floor -2.5" true (B.equal (B.floor fm25) (B.of_int (-3)));
  checkb "ceil -2.5" true (B.equal (B.ceil fm25) (B.of_int (-2)));
  checkb "round 2.5 away" true (B.equal (B.round_to_int f25) (B.of_int 3));
  checkb "round -2.5 away" true (B.equal (B.round_to_int fm25) (B.of_int (-3)));
  checkb "trunc -2.7" true (B.equal (B.trunc (B.of_float (-2.7))) (B.of_int (-2)))

let bf_subnormal_to_float () =
  (* value between two subnormals rounds to the nearest one *)
  let tiny = B.mul_2exp B.one (-1074) in
  checkb "min subnormal" true (B.to_float tiny = ldexp 1.0 (-1074));
  let halftiny = B.mul_2exp B.one (-1075) in
  checkb "half of min rounds to even (0)" true (B.to_float halftiny = 0.0);
  let three_q = B.mul ~prec:60 (B.of_float 1.5) halftiny in
  checkb "0.75 * min rounds up" true (B.to_float three_q = ldexp 1.0 (-1074))

(* ---------- Bigfloat_math vs libm (1-2 ulp tolerance) ---------- *)

let ulps_apart a b =
  if a = b then 0L
  else begin
    let ord f =
      let bits = Int64.bits_of_float f in
      if Int64.compare bits 0L >= 0 then bits
      else Int64.sub Int64.min_int bits
    in
    Int64.abs (Int64.sub (ord a) (ord b))
  end

let close name expected got =
  if Float.is_nan expected then checkb (name ^ " nan") true (Float.is_nan got)
  else
    checkb
      (Printf.sprintf "%s: %h vs %h (%Ld ulps)" name expected got
         (ulps_apart expected got))
      true
      (Int64.compare (ulps_apart expected got) 2L <= 0)

let math_unop name bf ff inputs =
  List.iter
    (fun x -> close (Printf.sprintf "%s(%h)" name x) (ff x)
        (B.to_float (bf ~prec:53 (B.of_float x))))
    inputs

let standard_inputs =
  [ 0.5; 1.0; 2.0; -0.5; -1.0; 0.001; -0.001; 10.0; -10.0; 100.0; 0.9999;
    1.0001; 3.14159; -2.71828; 1e-10; -1e-10; 55.5; 0.25 ]

let math_exp () =
  math_unop "exp" M.exp Stdlib.exp (standard_inputs @ [ 700.0; -700.0 ]);
  checkb "exp -inf" true (B.to_float (M.exp ~prec:53 B.neg_inf) = 0.0);
  checkb "exp overflow" true (B.to_float (M.exp ~prec:53 (B.of_float 1e10)) = infinity)

let math_log () =
  math_unop "log" M.log Stdlib.log
    [ 0.5; 1.0; 2.0; 10.0; 1e-300; 1e300; 0.9999999; 1.0000001; 3.0 ];
  checkb "log 0" true (B.to_float (M.log ~prec:53 B.zero) = neg_infinity);
  checkb "log neg" true (B.is_nan (M.log ~prec:53 B.minus_one))

let math_trig () =
  let inputs = standard_inputs @ [ 1e8; -1e8; 1.5707963267948966; 3.141592653589793 ] in
  math_unop "sin" M.sin Stdlib.sin inputs;
  math_unop "cos" M.cos Stdlib.cos inputs;
  math_unop "tan" M.tan Stdlib.tan inputs

let math_inverse_trig () =
  let inputs = [ 0.5; -0.5; 0.999; -0.999; 0.001; 1.0; -1.0; 0.0 ] in
  math_unop "asin" M.asin Stdlib.asin inputs;
  math_unop "acos" M.acos Stdlib.acos inputs;
  math_unop "atan" M.atan Stdlib.atan (standard_inputs @ [ 1e10; -1e10 ])

let math_atan2 () =
  List.iter
    (fun (y, x) ->
      close
        (Printf.sprintf "atan2(%h,%h)" y x)
        (Stdlib.atan2 y x)
        (B.to_float (M.atan2 ~prec:53 (B.of_float y) (B.of_float x))))
    [ (1.0, 1.0); (1.0, -1.0); (-1.0, 1.0); (-1.0, -1.0); (0.0, 1.0);
      (0.0, -1.0); (1.0, 0.0); (-1.0, 0.0); (3.0, 4.0); (-5.0, 12.0) ]

let math_hyperbolic () =
  math_unop "sinh" M.sinh Stdlib.sinh standard_inputs;
  math_unop "cosh" M.cosh Stdlib.cosh standard_inputs;
  math_unop "tanh" M.tanh Stdlib.tanh standard_inputs

let math_pow () =
  List.iter
    (fun (x, y) ->
      close
        (Printf.sprintf "pow(%h,%h)" x y)
        (Float.pow x y)
        (B.to_float (M.pow ~prec:53 (B.of_float x) (B.of_float y))))
    [ (2.0, 10.0); (2.0, 0.5); (10.0, -3.0); (1.5, 300.0); (0.5, 0.5);
      (-2.0, 3.0); (-2.0, 2.0); (7.0, 0.0); (0.0, 0.0); (0.0, 3.0);
      (1.0, Float.nan); (2.0, 1000.0); (1.0000001, 1e7) ]

let math_misc () =
  math_unop "cbrt" M.cbrt Float.cbrt [ 8.0; -8.0; 27.0; 2.0; 1e12; -0.001 ];
  math_unop "log2" M.log2 Float.log2 [ 8.0; 3.0; 1e10; 0.25 ];
  math_unop "log10" M.log10 Float.log10 [ 1000.0; 3.0; 1e-5 ];
  math_unop "expm1" M.expm1 Float.expm1 [ 1e-10; -1e-10; 0.5; -0.5; 3.0 ];
  math_unop "log1p" M.log1p Float.log1p [ 1e-10; -1e-10; 0.5; -0.5; 3.0 ];
  List.iter
    (fun (x, y) ->
      close
        (Printf.sprintf "hypot(%h,%h)" x y)
        (Float.hypot x y)
        (B.to_float (M.hypot ~prec:53 (B.of_float x) (B.of_float y))))
    [ (3.0, 4.0); (1e200, 1e200); (1e-200, 1e-200); (0.0, -5.0) ];
  List.iter
    (fun (x, y) ->
      let expected = Float.rem x y in
      let got = B.to_float (M.fmod (B.of_float x) (B.of_float y)) in
      checkb (Printf.sprintf "fmod(%h,%h): %h vs %h" x y expected got) true
        (Int64.equal (Int64.bits_of_float expected) (Int64.bits_of_float got)))
    [ (7.5, 2.0); (-7.5, 2.0); (7.5, -2.0); (1e300, 7.0); (0.1, 0.03) ]

let math_fma () =
  List.iter
    (fun (x, y, z) ->
      let expected = Float.fma x y z in
      let got =
        B.to_float (M.fma ~prec:53 (B.of_float x) (B.of_float y) (B.of_float z))
      in
      checkb (Printf.sprintf "fma(%h,%h,%h)" x y z) true
        (Int64.equal (Int64.bits_of_float expected) (Int64.bits_of_float got)))
    [ (1.0, 1.0, 1.0); (1e16, 1e16, -1e32); (0.1, 0.1, -0.01); (3.0, 4.0, 5.0) ]

let math_pi_ln2 () =
  checkb "pi at 53" true (B.to_float (M.pi ~prec:53) = Float.pi);
  close "ln2" (Stdlib.log 2.0) (B.to_float (M.ln2 ~prec:53));
  (* higher precision is consistent: rounding pi@2000 to 53 gives pi *)
  checkb "pi 2000 -> 53" true
    (B.to_float (B.round ~prec:53 (M.pi ~prec:2000)) = Float.pi)

(* qcheck properties *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"bigfloat add commutes" ~count:300
      (pair (float_range (-1e10) 1e10) (float_range (-1e10) 1e10))
      (fun (a, b) ->
        B.equal
          (B.add ~prec:200 (B.of_float a) (B.of_float b))
          (B.add ~prec:200 (B.of_float b) (B.of_float a)));
    Test.make ~name:"bigfloat mul by inverse near one" ~count:200
      (float_range 0.001 1000.0) (fun a ->
        let x = B.of_float a in
        let inv = B.div ~prec:200 B.one x in
        let p = B.mul ~prec:200 x inv in
        (* within 2^-195 of 1 *)
        let d = B.abs (B.sub ~prec:200 p B.one) in
        B.lt d (B.mul_2exp B.one (-190)));
    Test.make ~name:"natural add assoc" ~count:200
      (triple (int_bound 1_000_000) (int_bound 1_000_000) (int_bound 1_000_000))
      (fun (a, b, c) ->
        N.equal
          (N.add (N.of_int a) (N.add (N.of_int b) (N.of_int c)))
          (N.add (N.add (N.of_int a) (N.of_int b)) (N.of_int c)));
    Test.make ~name:"bigfloat exp/log roundtrip" ~count:60
      (float_range 0.01 100.0) (fun a ->
        let x = B.of_float a in
        let r = M.exp ~prec:200 (M.log ~prec:260 x) in
        let d = B.abs (B.sub ~prec:200 r x) in
        B.is_zero d || B.lt (B.div ~prec:60 d x) (B.mul_2exp B.one (-180)));
  ]

let () =
  Random.init 0x5eed;
  Alcotest.run "bignum"
    [
      ( "natural",
        [
          Alcotest.test_case "of_int roundtrip" `Quick nat_of_int_roundtrip;
          Alcotest.test_case "add/sub small" `Quick nat_add_sub_small;
          Alcotest.test_case "mul small" `Quick nat_mul_small;
          Alcotest.test_case "divmod property" `Quick nat_divmod_property;
          Alcotest.test_case "string roundtrip" `Quick nat_string_roundtrip;
          Alcotest.test_case "isqrt" `Quick nat_isqrt;
          Alcotest.test_case "karatsuba matches" `Quick nat_karatsuba_matches;
          Alcotest.test_case "shifts" `Quick nat_shifts;
          Alcotest.test_case "to_float" `Quick nat_to_float;
        ] );
      ( "bigint",
        [
          Alcotest.test_case "arith vs int" `Quick int_arith;
          Alcotest.test_case "compare/sign" `Quick int_compare_sign;
        ] );
      ( "bigfloat",
        [
          Alcotest.test_case "float roundtrip" `Quick float_roundtrip;
          Alcotest.test_case "add = hardware" `Quick bf_add_matches_hardware;
          Alcotest.test_case "sub = hardware" `Quick bf_sub_matches_hardware;
          Alcotest.test_case "mul = hardware" `Quick bf_mul_matches_hardware;
          Alcotest.test_case "div = hardware" `Quick bf_div_matches_hardware;
          Alcotest.test_case "sqrt = hardware" `Quick bf_sqrt_matches_hardware;
          Alcotest.test_case "high precision beats cancellation" `Quick
            bf_extended_precision_catches_cancellation;
          Alcotest.test_case "compare" `Quick bf_compare;
          Alcotest.test_case "decimal parse" `Quick bf_decimal_parse;
          Alcotest.test_case "decimal print" `Quick bf_decimal_print;
          Alcotest.test_case "floor/ceil/round/trunc" `Quick bf_floor_ceil;
          Alcotest.test_case "subnormal conversion" `Quick bf_subnormal_to_float;
        ] );
      ( "bigfloat_math",
        [
          Alcotest.test_case "exp" `Quick math_exp;
          Alcotest.test_case "log" `Quick math_log;
          Alcotest.test_case "trig" `Quick math_trig;
          Alcotest.test_case "inverse trig" `Quick math_inverse_trig;
          Alcotest.test_case "atan2" `Quick math_atan2;
          Alcotest.test_case "hyperbolic" `Quick math_hyperbolic;
          Alcotest.test_case "pow" `Quick math_pow;
          Alcotest.test_case "misc" `Quick math_misc;
          Alcotest.test_case "fma" `Quick math_fma;
          Alcotest.test_case "pi and ln2" `Quick math_pi_ln2;
        ] );
      ( "properties",
        (* seeded per-test so `dune runtest` is deterministic; set
           QCHECK_SEED to explore a different stream *)
        List.mapi
          (fun i t ->
            let base =
              try int_of_string (Sys.getenv "QCHECK_SEED") with _ -> 0x5eed
            in
            QCheck_alcotest.to_alcotest
              ~rand:(Random.State.make [| base; i |])
              t)
          qcheck_tests );
    ]
