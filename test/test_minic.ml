(* End-to-end tests of the MiniC front-end: compile to VEX, run on the
   uninstrumented machine, check printed outputs. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let run_floats ?(wrap_libm = true) src =
  let outs = Minic.run ~wrap_libm ~file:"test.mc" src in
  List.filter_map
    (fun (o : Vex.Machine.output) ->
      match o.Vex.Machine.value with
      | Vex.Value.VF64 f -> Some f
      | Vex.Value.VF32 f -> Some f
      | Vex.Value.VI64 _ | Vex.Value.VI32 _ | Vex.Value.VBool _
      | Vex.Value.VV128 _ ->
          None)
    outs

let run_ints ?(wrap_libm = true) src =
  let outs = Minic.run ~wrap_libm ~file:"test.mc" src in
  List.filter_map
    (fun (o : Vex.Machine.output) ->
      match o.Vex.Machine.value with
      | Vex.Value.VI64 i -> Some (Int64.to_int i)
      | _ -> None)
    outs

let check_floats name expected got =
  checki (name ^ " count") (List.length expected) (List.length got);
  List.iter2
    (fun e g ->
      checkb
        (Printf.sprintf "%s: %.17g vs %.17g" name e g)
        true
        (Int64.equal (Int64.bits_of_float e) (Int64.bits_of_float g)))
    expected got

let basic_arith () =
  let got =
    run_floats
      {| int main() {
           double x = 1.5;
           double y = 2.25;
           print(x + y * 2.0);
           print((x - y) / 0.5);
           return 0;
         } |}
  in
  check_floats "arith" [ 1.5 +. (2.25 *. 2.0); (1.5 -. 2.25) /. 0.5 ] got

let int_arith () =
  let got =
    run_ints
      {| int main() {
           int a = 17;
           int b = 5;
           print(a / b);
           print(a % b);
           print(-a);
           print(a * b + 2);
           return 0;
         } |}
  in
  Alcotest.(check (list int)) "ints" [ 3; 2; -17; 87 ] got

let control_flow () =
  let got =
    run_ints
      {| int main() {
           int i;
           int s = 0;
           for (i = 0; i < 10; i = i + 1) {
             if (i % 2 == 0) { s = s + i; }
           }
           print(s);
           int j = 0;
           while (j < 100) { j = j + 7; }
           print(j);
           return 0;
         } |}
  in
  Alcotest.(check (list int)) "control" [ 20; 105 ] got

let functions_and_recursion () =
  let got =
    run_ints
      {| int fib(int n) {
           if (n < 2) { return n; }
           return fib(n - 1) + fib(n - 2);
         }
         int main() {
           print(fib(15));
           return 0;
         } |}
  in
  Alcotest.(check (list int)) "fib" [ 610 ] got

let float_args_and_returns () =
  let got =
    run_floats
      {| double hyp(double a, double b) {
           return sqrt(a * a + b * b);
         }
         int main() {
           print(hyp(3.0, 4.0));
           print(hyp(1.0, 1.0));
           return 0;
         } |}
  in
  check_floats "hyp" [ 5.0; Float.sqrt 2.0 ] got

let arrays () =
  let got =
    run_floats
      {| double sum(double a[], int n) {
           double s = 0.0;
           int i;
           for (i = 0; i < n; i = i + 1) { s = s + a[i]; }
           return s;
         }
         int main() {
           double xs[5];
           int i;
           for (i = 0; i < 5; i = i + 1) { xs[i] = (double) i * 1.5; }
           print(sum(xs, 5));
           return 0;
         } |}
  in
  check_floats "array sum" [ 15.0 ] got

let global_arrays () =
  let got =
    run_floats
      {| double g[3];
         double total = 0.0;
         int main() {
           g[0] = 1.25;
           g[1] = 2.5;
           g[2] = g[0] + g[1];
           total = g[2] * 2.0;
           print(total);
           return 0;
         } |}
  in
  check_floats "globals" [ 7.5 ] got

let single_precision () =
  let got =
    run_floats
      {| int main() {
           float x = 0.1f;
           float y = 0.2f;
           float z = x + y;
           print(z);
           print((double) x);
           return 0;
         } |}
  in
  let x = Int32.float_of_bits (Int32.bits_of_float 0.1) in
  let y = Int32.float_of_bits (Int32.bits_of_float 0.2) in
  let z = Int32.float_of_bits (Int32.bits_of_float (x +. y)) in
  check_floats "single" [ z; x ] got

let casts () =
  let got =
    run_ints
      {| int main() {
           double d = 3.99;
           print((int) d);
           print((int) -3.99);
           float f = 7.5f;
           print((int) f);
           return 0;
         } |}
  in
  Alcotest.(check (list int)) "casts" [ 3; -3; 7 ] got

let libm_wrapped () =
  let got =
    run_floats
      {| int main() {
           print(exp(1.0));
           print(log(exp(2.0)));
           print(sin(0.5) * sin(0.5) + cos(0.5) * cos(0.5));
           print(atan2(1.0, 1.0));
           print(pow(2.0, 10.0));
           print(fabs(-2.5));
           return 0;
         } |}
  in
  check_floats "libm"
    [
      Float.exp 1.0;
      Float.log (Float.exp 2.0);
      (Float.sin 0.5 *. Float.sin 0.5) +. (Float.cos 0.5 *. Float.cos 0.5);
      Float.atan2 1.0 1.0;
      1024.0;
      2.5;
    ]
    got

let libm_unwrapped_close () =
  (* with wrapping off the MiniC math library runs instead: only close,
     not bit-identical *)
  let got =
    run_floats ~wrap_libm:false
      {| int main() {
           print(exp(1.0));
           print(log(7.389056098930649));
           print(sin(1.0));
           print(cos(1.0));
           print(atan(1.0));
           print(pow(2.0, 10.0));
           print(asin(0.5));
           print(acos(0.5));
           print(sinh(0.3));
           print(cosh(0.3));
           print(tanh(0.3));
           print(expm1(0.0001));
           print(log1p(0.0001));
           print(cbrt(27.0));
           print(hypot(3.0, 4.0));
           return 0;
         } |}
  in
  let expected =
    [ Float.exp 1.0; 2.0; Float.sin 1.0; Float.cos 1.0; Float.atan 1.0; 1024.0;
      Float.asin 0.5; Float.acos 0.5; Float.sinh 0.3; Float.cosh 0.3;
      Float.tanh 0.3; Float.expm1 0.0001; Float.log1p 0.0001; 3.0;
      Float.hypot 3.0 4.0 ]
  in
  checki "count" (List.length expected) (List.length got);
  List.iter2
    (fun e g ->
      let rel = Float.abs (e -. g) /. Float.max 1e-300 (Float.abs e) in
      checkb (Printf.sprintf "minic libm %.17g vs %.17g" e g) true (rel < 1e-12))
    expected got

let logic_ops () =
  let got =
    run_ints
      {| int main() {
           int a = 5;
           int b = 0;
           print(a > 3 && b == 0);
           print(a < 3 || b != 0);
           print(!(a == 5));
           if (a > 0 && 10 / a > 1) { print(42); }
           return 0;
         } |}
  in
  Alcotest.(check (list int)) "logic" [ 1; 0; 0; 42 ] got

let nested_calls () =
  let got =
    run_floats
      {| double f(double x) { return x * 2.0; }
         double g(double x, double y) { return x + y; }
         int main() {
           print(g(f(1.5), f(g(1.0, 2.0))));
           return 0;
         } |}
  in
  check_floats "nested" [ 9.0 ] got

let bit_trick_negation_works () =
  (* compiled negation uses XOR on the reinterpreted bits; check -0.0 *)
  let got =
    run_floats
      {| int main() {
           double z = 0.0;
           double nz = -z;
           print(1.0 / nz);
           print(fabs(-7.25));
           return 0;
         } |}
  in
  check_floats "bit tricks" [ Float.neg_infinity; 7.25 ] got

let voids_and_side_effects () =
  let got =
    run_ints
      {| int counter = 0;
         void bump(int k) { counter = counter + k; }
         int main() {
           bump(3);
           bump(4);
           print(counter);
           return 0;
         } |}
  in
  Alcotest.(check (list int)) "void calls" [ 7 ] got

let while_with_call_condition () =
  let got =
    run_ints
      {| int next(int x) { return x + 3; }
         int main() {
           int i = 0;
           int steps = 0;
           while (next(i) < 20) {
             i = next(i);
             steps = steps + 1;
           }
           print(i);
           print(steps);
           return 0;
         } |}
  in
  Alcotest.(check (list int)) "call in cond" [ 18; 6 ] got

let break_and_continue () =
  let got =
    run_ints
      {| int main() {
           int i = 0;
           int s = 0;
           while (i < 100) {
             i = i + 1;
             if (i % 3 == 0) { continue; }
             if (i > 10) { break; }
             s = s + i;
           }
           print(s);
           print(i);
           // break inside for skips the step correctly
           int j;
           int hits = 0;
           for (j = 0; j < 100; j = j + 1) {
             if (j * j > 50) { break; }
             hits = hits + 1;
           }
           print(j);
           print(hits);
           return 0;
         } |}
  in
  (* i=1..10 excluding multiples of 3: 1+2+4+5+7+8+10 = 37; loop breaks at 11 *)
  Alcotest.(check (list int)) "break/continue" [ 37; 11; 8; 8 ] got

let continue_in_for_rejected () =
  match
    Minic.compile ~file:"bad.mc"
      {| int main() {
           int i;
           for (i = 0; i < 10; i = i + 1) {
             if (i == 5) { continue; }
           }
           return 0;
         } |}
  with
  | _ -> Alcotest.fail "continue in for should be rejected"
  | exception Minic.Compile_error _ -> ()

let imarks_present () =
  let prog =
    Minic.compile ~file:"loc.mc"
      "int main() {\n  double x = 1.0;\n  print(x);\n  return 0;\n}"
  in
  let has_line2 = ref false in
  Array.iter
    (fun (b : Vex.Ir.block) ->
      Array.iter
        (fun s ->
          match s with
          | Vex.Ir.IMark l when l.Vex.Ir.line = 2 && l.Vex.Ir.file = "loc.mc" ->
              has_line2 := true
          | _ -> ())
        b.Vex.Ir.stmts)
    prog.Vex.Ir.blocks;
  checkb "IMark line 2 exists" true !has_line2

let type_errors_rejected () =
  let bad = [
    "int main() { double x = 1.0; x[0] = 2.0; return 0; }";
    "int main() { return y; }";
    "int main() { print(unknown_fn(1.0)); return 0; }";
    "double f() { return 1.0; } int main() { f(2.0); return 0; }";
  ]
  in
  List.iter
    (fun src ->
      match Minic.compile ~file:"bad.mc" src with
      | _ -> Alcotest.fail ("should not compile: " ^ src)
      | exception Minic.Compile_error _ -> ())
    bad

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"compiled double arithmetic matches OCaml" ~count:100
      (pair (float_range (-1e6) 1e6) (float_range (-1e6) 1e6))
      (fun (a, b) ->
        let src =
          Printf.sprintf
            "int main() { double a = %.17g; double b = %.17g;\n\
             print(a + b); print(a - b); print(a * b); print(a / b);\n\
             return 0; }"
            a b
        in
        let got = run_floats src in
        let expected = [ a +. b; a -. b; a *. b; a /. b ] in
        List.for_all2
          (fun e g -> Int64.equal (Int64.bits_of_float e) (Int64.bits_of_float g))
          expected got);
    Test.make ~name:"compiled int expressions match OCaml" ~count:100
      (pair (int_range (-10000) 10000) (int_range 1 100))
      (fun (a, b) ->
        let src =
          Printf.sprintf
            "int main() { int a = %d; int b = %d;\n\
             print(a / b); print(a %% b); print(a * b - a);\n\
             return 0; }"
            a b
        in
        run_ints src = [ a / b; a mod b; (a * b) - a ]);
  ]

let () =
  Alcotest.run "minic"
    [
      ( "execution",
        [
          Alcotest.test_case "basic arithmetic" `Quick basic_arith;
          Alcotest.test_case "int arithmetic" `Quick int_arith;
          Alcotest.test_case "control flow" `Quick control_flow;
          Alcotest.test_case "functions and recursion" `Quick functions_and_recursion;
          Alcotest.test_case "float args and returns" `Quick float_args_and_returns;
          Alcotest.test_case "arrays" `Quick arrays;
          Alcotest.test_case "global arrays" `Quick global_arrays;
          Alcotest.test_case "single precision" `Quick single_precision;
          Alcotest.test_case "casts" `Quick casts;
          Alcotest.test_case "libm wrapped" `Quick libm_wrapped;
          Alcotest.test_case "libm unwrapped" `Quick libm_unwrapped_close;
          Alcotest.test_case "logic ops" `Quick logic_ops;
          Alcotest.test_case "nested calls" `Quick nested_calls;
          Alcotest.test_case "bit-trick negation" `Quick bit_trick_negation_works;
          Alcotest.test_case "void functions" `Quick voids_and_side_effects;
          Alcotest.test_case "call in loop condition" `Quick while_with_call_condition;
          Alcotest.test_case "break and continue" `Quick break_and_continue;
          Alcotest.test_case "continue-in-for rejected" `Quick continue_in_for_rejected;
          Alcotest.test_case "IMarks carry locations" `Quick imarks_present;
          Alcotest.test_case "type errors rejected" `Quick type_errors_rejected;
        ] );
      ( "properties",
        (* seeded per-test so `dune runtest` is deterministic; set
           QCHECK_SEED to explore a different stream *)
        List.mapi
          (fun i t ->
            let base =
              try int_of_string (Sys.getenv "QCHECK_SEED") with _ -> 0x5eed
            in
            QCheck_alcotest.to_alcotest
              ~rand:(Random.State.make [| base; i |])
              t)
          qcheck_tests );
    ]
