(* Tests of the fpgrind.fuzz subsystem itself: the generator's
   well-typedness guarantee, printer/parser round-trips, the seeded
   determinism contract (including jobs-independence), the shrinker
   (exercised against an injected oracle bug), the 53-bit Bigfloat
   kernel property, the pinned transcendental deviation set, and replay
   of the committed corpus.

   Iteration counts scale with FPGRIND_FUZZ_ITERS (default 120). *)

let iters =
  match Sys.getenv_opt "FPGRIND_FUZZ_ITERS" with
  | Some s -> ( try max 8 (int_of_string (String.trim s)) with _ -> 120)
  | None -> 120

let checkb = Alcotest.check Alcotest.bool

(* ---------- the PRNG ---------- *)

let rng_determinism () =
  let a = Fuzz.Rng.make_indexed ~seed:9 4 in
  let b = Fuzz.Rng.make_indexed ~seed:9 4 in
  for _ = 1 to 16 do
    Alcotest.(check int64) "same stream" (Fuzz.Rng.int64 a) (Fuzz.Rng.int64 b)
  done;
  let c = Fuzz.Rng.make_indexed ~seed:9 5 in
  checkb "adjacent indices differ" true
    (List.init 4 (fun _ -> Fuzz.Rng.int64 c)
    <> List.init 4 (fun _ -> Fuzz.Rng.int64 (Fuzz.Rng.make_indexed ~seed:9 4)));
  let d = Fuzz.Rng.make 9 in
  let e = Fuzz.Rng.split d in
  checkb "split diverges from parent" true
    (Fuzz.Rng.int64 d <> Fuzz.Rng.int64 e)

(* ---------- the generator ---------- *)

(* every generated program must compile: well-typed by construction *)
let generator_well_typed () =
  for i = 0 to iters - 1 do
    let ast, _ = Fuzz.Campaign.generate ~seed:17 i in
    let src = Fuzz.Printer.program ast in
    match Minic.compile ~file:"gen.mc" src with
    | _ -> ()
    | exception Minic.Compile_error msg ->
        Alcotest.failf "program %d does not compile: %s\n%s" i msg src
  done

(* printing then parsing then printing again is a fixpoint: the printer
   loses nothing the parser needs, so digests identify programs *)
let print_parse_roundtrip () =
  for i = 0 to (iters / 2) - 1 do
    let ast, _ = Fuzz.Campaign.generate ~seed:23 i in
    let src = Fuzz.Printer.program ast in
    match Minic.parse ~file:"gen.mc" src with
    | exception Minic.Compile_error msg ->
        Alcotest.failf "program %d does not parse: %s\n%s" i msg src
    | ast2 ->
        let src2 = Fuzz.Printer.program ast2 in
        if src <> src2 then
          Alcotest.failf "program %d round-trip changed:\n%s\n-- vs --\n%s" i
            src src2
  done

(* ---------- campaign determinism ---------- *)

let transcript_lines (t : Fuzz.Campaign.transcript) : string list =
  List.map Fuzz.Campaign.entry_to_line t.Fuzz.Campaign.t_entries

let seed_determinism () =
  let n = max 16 (iters / 4) in
  let a = Fuzz.Campaign.run ~seed:31 ~iters:n () in
  let b = Fuzz.Campaign.run ~seed:31 ~iters:n () in
  Alcotest.(check (list string))
    "same seed, same transcript" (transcript_lines a) (transcript_lines b);
  let c = Fuzz.Campaign.run ~seed:32 ~iters:n () in
  checkb "different seed, different transcript" true
    (transcript_lines a <> transcript_lines c)

(* the transcript is a pure function of (seed, iters): --jobs must not
   change it (program i depends only on (seed, i)) *)
let jobs_independence () =
  let n = max 32 (iters / 4) in
  let a = Fuzz.Campaign.run ~jobs:1 ~seed:33 ~iters:n () in
  let b = Fuzz.Campaign.run ~jobs:3 ~seed:33 ~iters:n () in
  Alcotest.(check (list string))
    "jobs=1 and jobs=3 agree" (transcript_lines a) (transcript_lines b)

(* ---------- the shrinker ---------- *)

(* Inject a fake oracle bug — "any compiling program containing a
   division diverges" — and check the shrinker produces a smaller,
   still-compiling program that still satisfies the predicate. *)
let shrinker_soundness () =
  let has_division (p : Minic.Ast.program) : bool =
    let src = Fuzz.Printer.program p in
    String.exists (fun c -> c = '/') src
  in
  let compiles (p : Minic.Ast.program) : bool =
    match Minic.compile ~file:"shrink.mc" (Fuzz.Printer.program p) with
    | _ -> true
    | exception Minic.Compile_error _ -> false
  in
  let still_fails p = compiles p && has_division p in
  (* find a seeded program that "fails" this oracle *)
  let rec find i =
    if i >= 500 then Alcotest.fail "no generated program contains a division"
    else
      let ast, _ = Fuzz.Campaign.generate ~seed:41 i in
      if still_fails ast then (i, ast) else find (i + 1)
  in
  let i, ast = find 0 in
  let small, stats = Fuzz.Shrink.shrink ~still_fails ast in
  checkb "shrunk program still fails the injected oracle" true
    (still_fails small);
  let len p = String.length (Fuzz.Printer.program p) in
  if len small > len ast then
    Alcotest.failf "shrink grew program %d: %d -> %d chars" i (len ast)
      (len small);
  checkb "shrinker made progress" true
    (stats.Fuzz.Shrink.rounds >= 1 && len small < len ast)

(* A shrunk reproducer must still trigger the oracle predicate under
   every engine — full, tiered, and sanitize — not just the engine that
   found it. The predicate here is "the program prints at least one
   output"; the shrinker only ever consults the full engine, and the
   cross-engine half of the property is checked once on the result. *)
let shrinker_cross_engine () =
  let cfg = Core.Config.fast in
  let max_steps = 2_000_000 in
  let compile_of (p : Minic.Ast.program) =
    match Minic.compile ~file:"xshrink.mc" (Fuzz.Printer.program p) with
    | prog -> Some prog
    | exception Minic.Compile_error _ -> None
  in
  let full_prints ~inputs p =
    match compile_of p with
    | None -> false
    | Some prog -> (
        match Core.Analysis.analyze ~cfg ~max_steps ~inputs prog with
        | r -> r.Core.Analysis.raw.Core.Exec.r_outputs <> []
        | exception _ -> false)
  in
  (* find a seeded program that prints *)
  let rec find i =
    if i >= 200 then Alcotest.fail "no generated program prints an output"
    else
      let ast, inputs = Fuzz.Campaign.generate ~seed:45 i in
      if full_prints ~inputs ast then (ast, inputs) else find (i + 1)
  in
  let ast, inputs = find 0 in
  let small, _stats =
    Fuzz.Shrink.shrink ~still_fails:(full_prints ~inputs) ast
  in
  checkb "shrunk program still triggers the predicate under full" true
    (full_prints ~inputs small);
  let prog =
    match compile_of small with
    | Some prog -> prog
    | None -> Alcotest.fail "shrunk program no longer compiles"
  in
  let out_bits (os : Vex.Machine.output list) =
    List.map
      (fun (o : Vex.Machine.output) ->
        Int64.bits_of_float (Vex.Value.as_f64 o.Vex.Machine.value))
      (List.filter
         (fun (o : Vex.Machine.output) -> o.Vex.Machine.kind = Vex.Ir.OutFloat)
         os)
  in
  let full_out =
    (Core.Analysis.analyze ~cfg ~max_steps ~inputs prog).Core.Analysis.raw
      .Core.Exec.r_outputs
  in
  let tiered =
    Tiered.analyze ~cfg:{ cfg with Core.Config.engine = Core.Config.Tiered }
      ~max_steps ~inputs prog
  in
  let san = Sanitize.Sexec.run ~max_steps ~inputs cfg prog in
  checkb "tiered engine also triggers the predicate" true
    (Tiered.outputs tiered <> []);
  checkb "sanitize engine also triggers the predicate" true
    (Sanitize.Sexec.outputs san <> []);
  Alcotest.(check (list int64))
    "tiered outputs bit-identical to full" (out_bits full_out)
    (out_bits (Tiered.outputs tiered));
  Alcotest.(check (list int64))
    "sanitize outputs bit-identical to full" (out_bits full_out)
    (out_bits (Sanitize.Sexec.outputs san))

(* shrinking is deterministic: same input, same predicate, same result *)
let shrinker_deterministic () =
  let still_fails p =
    match Minic.compile ~file:"s.mc" (Fuzz.Printer.program p) with
    | _ -> String.exists (fun c -> c = '*') (Fuzz.Printer.program p)
    | exception Minic.Compile_error _ -> false
  in
  let ast, _ = Fuzz.Campaign.generate ~seed:43 7 in
  if still_fails ast then begin
    let a, _ = Fuzz.Shrink.shrink ~still_fails ast in
    let b, _ = Fuzz.Shrink.shrink ~still_fails ast in
    Alcotest.(check string)
      "identical shrink result" (Fuzz.Printer.program a)
      (Fuzz.Printer.program b)
  end

(* ---------- the 53-bit Bigfloat kernel property ---------- *)

(* Bigfloat at 53-bit precision reproduces hardware double arithmetic
   bit-for-bit on the kernel ops (excluding non-finite and subnormal
   results; [Oracle.kernel_check] encodes those skip rules). The float
   generator draws raw bit patterns so exponents are uniform, not
   clustered near 1.0. *)
let gen_bits_float : float QCheck.Gen.t =
  QCheck.Gen.map
    (fun (hi, lo) ->
      Int64.float_of_bits
        (Int64.logor
           (Int64.shift_left (Int64.of_int hi) 32)
           (Int64.logand (Int64.of_int lo) 0xFFFFFFFFL)))
    QCheck.Gen.(pair (int_bound 0xFFFFFFFF) (int_bound 0xFFFFFFFF))

let arb_bits_float = QCheck.make ~print:(Printf.sprintf "%h") gen_bits_float

let kernel_tests =
  let check2 op f =
    QCheck.Test.make
      ~name:(Printf.sprintf "53-bit bigfloat matches native %s" op)
      ~count:300
      QCheck.(pair arb_bits_float arb_bits_float)
      (fun (x, y) ->
        match Fuzz.Oracle.kernel_check op [| x; y |] (f x y) with
        | None -> true
        | Some d -> QCheck.Test.fail_report d)
  in
  [
    check2 "add" ( +. );
    check2 "sub" ( -. );
    check2 "mul" ( *. );
    check2 "div" ( /. );
    QCheck.Test.make ~name:"53-bit bigfloat matches native sqrt" ~count:300
      arb_bits_float
      (fun x ->
        let x = Float.abs x in
        match Fuzz.Oracle.kernel_check "sqrt" [| x |] (Float.sqrt x) with
        | None -> true
        | Some d -> QCheck.Test.fail_report d);
    QCheck.Test.make ~name:"53-bit bigfloat matches native fma" ~count:300
      QCheck.(triple arb_bits_float arb_bits_float arb_bits_float)
      (fun (x, y, z) ->
        match Fuzz.Oracle.kernel_check "fma" [| x; y; z |] (Float.fma x y z) with
        | None -> true
        | Some d -> QCheck.Test.fail_report d);
  ]

(* ---------- pinned transcendental deviations ---------- *)

(* Transcendentals are NOT expected to agree bit-for-bit: libm is
   faithfully rounded, not correctly rounded, and so is Bigfloat_math at
   prec 53. On this pinned input set the deviation is at most 1 ulp and
   confined to exactly the pairs below (see DESIGN.md). A new deviation
   or a >1-ulp one means a regression in Bigfloat_math (or a libm
   change worth knowing about). *)

let ulp_dist a b =
  let key f =
    let b = Int64.bits_of_float f in
    if Int64.compare b 0L >= 0 then b else Int64.sub Int64.min_int b
  in
  Int64.abs (Int64.sub (key a) (key b))

let pinned_inputs =
  [
    0.5; 1.0; 1.5; 2.0; -0.5; -1.5; 3.141592653589793; 10.0; 0.001; -0.001;
    0.7853981633974483; 100.0; 1e-8; 0.9999999999999999; 1.0000000000000002;
  ]

let transcendental_fns =
  let module M = Bignum.Bigfloat_math in
  [
    ("exp", Stdlib.exp, M.exp); ("log", Stdlib.log, M.log);
    ("sin", Stdlib.sin, M.sin); ("cos", Stdlib.cos, M.cos);
    ("tan", Stdlib.tan, M.tan); ("atan", Stdlib.atan, M.atan);
    ("asin", Stdlib.asin, M.asin); ("acos", Stdlib.acos, M.acos);
    ("sinh", Stdlib.sinh, M.sinh); ("cosh", Stdlib.cosh, M.cosh);
    ("tanh", Stdlib.tanh, M.tanh); ("expm1", Stdlib.expm1, M.expm1);
    ("log1p", Stdlib.log1p, M.log1p); ("cbrt", Float.cbrt, M.cbrt);
  ]

(* the known 1-ulp deviation set, by (function, input) *)
let expected_deviations =
  [
    ("sinh", 2.0); ("sinh", 3.141592653589793); ("sinh", 1e-8);
    ("cosh", 10.0); ("cosh", 1.0000000000000002);
    ("expm1", 1.0); ("expm1", 1.0000000000000002);
    ("log1p", 2.0);
    ("cbrt", 1.5); ("cbrt", 2.0); ("cbrt", -1.5); ("cbrt", 10.0);
    ("cbrt", 0.7853981633974483); ("cbrt", 100.0);
  ]

let transcendental_pinning () =
  let module B = Bignum.Bigfloat in
  let deviations = ref [] in
  List.iter
    (fun (name, native, big) ->
      List.iter
        (fun x ->
          let n = native x in
          if Float.is_finite n then begin
            let b = B.to_float (big ~prec:53 (B.of_float x)) in
            let d = ulp_dist n b in
            if Int64.compare d 1L > 0 then
              Alcotest.failf "%s(%h): native %h vs bigfloat %h is %Ld ulps"
                name x n b d;
            if d = 1L then deviations := (name, x) :: !deviations
          end)
        pinned_inputs)
    transcendental_fns;
  let got = List.sort compare !deviations in
  let want = List.sort compare expected_deviations in
  if got <> want then
    Alcotest.failf "deviation set changed; now: %s"
      (String.concat ", "
         (List.map (fun (n, x) -> Printf.sprintf "%s(%h)" n x) got))

(* ---------- corpus replay ---------- *)

(* every committed reproducer must keep passing: the corpus is the
   regression suite the fuzzer wrote for itself *)
let corpus_replay () =
  let dir = "corpus" in
  if Sys.file_exists dir then begin
    let results = Fuzz.Campaign.replay_dir dir in
    checkb "corpus is not empty" true (results <> []);
    List.iter
      (fun (file, r) ->
        match r with
        | Fuzz.Oracle.Pass -> ()
        | Fuzz.Oracle.Skip why -> Alcotest.failf "%s skipped: %s" file why
        | Fuzz.Oracle.Fail d ->
            Alcotest.failf "%s diverged: (%s) %s" file d.Fuzz.Oracle.d_oracle
              d.Fuzz.Oracle.d_detail)
      results
  end

(* reproducer files carry their inputs as hex bits; the parser must
   recover them bit-exactly *)
let repro_inputs_roundtrip () =
  let inputs = [| 0.1; -0.0; Float.infinity; 1.5e-321; 4.25 |] in
  let d = { Fuzz.Oracle.d_oracle = "machine"; d_detail = "x" } in
  let s =
    Fuzz.Campaign.repro_contents ~seed:1 ~index:2 ~d ~inputs
      "int main() { return 0; }"
  in
  let back = Fuzz.Campaign.inputs_of_source s in
  Alcotest.(check int) "arity" (Array.length inputs) (Array.length back);
  Array.iteri
    (fun i x ->
      Alcotest.(check int64) "bits" (Int64.bits_of_float x)
        (Int64.bits_of_float back.(i)))
    inputs

let () =
  Alcotest.run "fuzz"
    [
      ( "rng",
        [ Alcotest.test_case "determinism and splitting" `Quick rng_determinism ]
      );
      ( "generator",
        [
          Alcotest.test_case "well-typed by construction" `Quick
            generator_well_typed;
          Alcotest.test_case "print/parse round-trip" `Quick
            print_parse_roundtrip;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "seed determinism" `Quick seed_determinism;
          Alcotest.test_case "jobs independence" `Quick jobs_independence;
        ] );
      ( "shrinker",
        [
          Alcotest.test_case "sound on injected oracle bug" `Quick
            shrinker_soundness;
          Alcotest.test_case "cross-engine" `Quick shrinker_cross_engine;
          Alcotest.test_case "deterministic" `Quick shrinker_deterministic;
        ] );
      ( "kernel",
        (* seeded per-test so `dune runtest` is deterministic; set
           QCHECK_SEED to explore a different stream *)
        List.mapi
          (fun i t ->
            let base =
              try int_of_string (Sys.getenv "QCHECK_SEED") with _ -> 0x5eed
            in
            QCheck_alcotest.to_alcotest
              ~rand:(Random.State.make [| base; i |])
              t)
          kernel_tests );
      ( "transcendentals",
        [
          Alcotest.test_case "pinned 1-ulp deviation set" `Quick
            transcendental_pinning;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "replay committed reproducers" `Quick corpus_replay;
          Alcotest.test_case "inputs header round-trip" `Quick
            repro_inputs_roundtrip;
        ] );
    ]
