(* fpgrind.serve HTTP layer: request parsing, limits, and routing,
   exercised entirely without a socket — the reader abstraction is fed
   strings, including byte-at-a-time to cross refill boundaries. *)

module Http = Serve.Http
module Router = Serve.Router

let parse ?chunk ?max_body s =
  Http.read_request ?max_body (Http.reader_of_string ?chunk s)

let check_err expected fn =
  match fn () with
  | exception Http.Error (status, _) ->
      Alcotest.(check int) "error status" expected status
  | exception e ->
      Alcotest.fail ("expected Http.Error, got " ^ Printexc.to_string e)
  | _ -> Alcotest.fail "expected Http.Error, request parsed"

(* ---------- well-formed requests ---------- *)

let test_parse_get () =
  let rq = parse "GET /healthz HTTP/1.1\r\nHost: x\r\nX-Thing:  v  \r\n\r\n" in
  Alcotest.(check string) "method" "GET" rq.Http.rq_meth;
  Alcotest.(check string) "path" "/healthz" rq.Http.rq_path;
  Alcotest.(check string) "body" "" rq.Http.rq_body;
  Alcotest.(check (option string))
    "header names lowercased, values trimmed" (Some "v")
    (Http.header rq "X-Thing")

let test_parse_post_body () =
  let raw =
    "POST /analyze?iterations=4&name=hello+world&pct=%2Fx HTTP/1.1\r\n\
     Content-Length: 11\r\n\r\nbench:intro"
  in
  let check rq =
    Alcotest.(check string) "method" "POST" rq.Http.rq_meth;
    Alcotest.(check string) "path" "/analyze" rq.Http.rq_path;
    Alcotest.(check string) "body" "bench:intro" rq.Http.rq_body;
    Alcotest.(check (option string))
      "plus decodes to space" (Some "hello world")
      (Router.q_opt rq "name");
    Alcotest.(check (option string))
      "percent-escape decodes" (Some "/x") (Router.q_opt rq "pct");
    Alcotest.(check int) "typed query int" 4
      (Router.q_int rq "iterations" ~default:0)
  in
  check (parse raw);
  (* one byte per fill: every refill boundary is crossed *)
  check (parse ~chunk:1 raw)

let test_duplicate_equal_content_length () =
  (* duplicate content-length headers with the SAME value collapse *)
  let rq =
    parse "POST /x HTTP/1.1\r\ncontent-length: 2\r\ncontent-length: 2\r\n\r\nhi"
  in
  Alcotest.(check string) "body" "hi" rq.Http.rq_body

let test_bare_lf_lines () =
  let rq = parse "GET /x HTTP/1.0\nhost: y\n\n" in
  Alcotest.(check string) "path" "/x" rq.Http.rq_path

(* ---------- malformed request lines ---------- *)

let test_malformed_request_line () =
  check_err 400 (fun () -> parse "GETHTTP/1.1\r\n\r\n");
  check_err 400 (fun () -> parse "GET /x HTTP/1.1 extra\r\n\r\n");
  check_err 400 (fun () -> parse "GET /x FOO/1.1\r\n\r\n");
  check_err 400 (fun () -> parse "GET x HTTP/1.1\r\n\r\n");
  check_err 400 (fun () -> parse "G@T /x HTTP/1.1\r\n\r\n");
  check_err 505 (fun () -> parse "GET /x HTTP/2.0\r\n\r\n")

let test_request_line_too_long () =
  let line = "GET /" ^ String.make 9000 'a' ^ " HTTP/1.1\r\n\r\n" in
  check_err 414 (fun () -> parse line)

let test_too_many_headers () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "GET /x HTTP/1.1\r\n";
  for i = 0 to 200 do
    Buffer.add_string buf (Printf.sprintf "h%d: v\r\n" i)
  done;
  Buffer.add_string buf "\r\n";
  check_err 431 (fun () -> parse (Buffer.contents buf))

let test_malformed_header () =
  check_err 400 (fun () -> parse "GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n");
  check_err 400 (fun () -> parse "GET /x HTTP/1.1\r\nbad name: v\r\n\r\n")

(* ---------- content-length edge cases ---------- *)

let test_post_without_length () =
  check_err 411 (fun () -> parse "POST /x HTTP/1.1\r\nhost: y\r\n\r\n")

let test_malformed_content_length () =
  check_err 400 (fun () ->
      parse "POST /x HTTP/1.1\r\ncontent-length: 12abc\r\n\r\n");
  check_err 400 (fun () ->
      parse "POST /x HTTP/1.1\r\ncontent-length: -1\r\n\r\n");
  check_err 400 (fun () -> parse "POST /x HTTP/1.1\r\ncontent-length:\r\n\r\n")

let test_conflicting_content_length () =
  check_err 400 (fun () ->
      parse
        "POST /x HTTP/1.1\r\ncontent-length: 2\r\ncontent-length: 3\r\n\r\nhi")

let test_oversized_body () =
  check_err 413 (fun () ->
      parse ~max_body:5 "POST /x HTTP/1.1\r\ncontent-length: 10\r\n\r\n")

let test_truncated_body () =
  check_err 400 (fun () ->
      parse "POST /x HTTP/1.1\r\ncontent-length: 10\r\n\r\nabc")

let test_transfer_encoding_refused () =
  check_err 501 (fun () ->
      parse "POST /x HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n")

let test_bad_percent_escape () =
  check_err 400 (fun () -> parse "GET /x?v=%zz HTTP/1.1\r\n\r\n");
  check_err 400 (fun () -> parse "GET /x?v=%2 HTTP/1.1\r\n\r\n")

let test_clean_close_is_distinguished () =
  (match parse "" with
  | exception Http.Closed -> ()
  | exception _ -> Alcotest.fail "empty stream must raise Closed"
  | _ -> Alcotest.fail "empty stream parsed");
  (* truncation after the request line is a protocol error, not Closed *)
  check_err 400 (fun () -> parse "GET /x HTTP/1.1\r\nhost")

(* ---------- responses round-trip through the client parser ---------- *)

let test_response_roundtrip () =
  let resp =
    Http.json_response 200
      (Fleet.Json.Obj [ ("name", Fleet.Json.Str "intro-example") ])
  in
  let status, headers, body =
    Http.read_response (Http.reader_of_string (Http.response_string resp))
  in
  Alcotest.(check int) "status" 200 status;
  Alcotest.(check (option string))
    "connection: close" (Some "close")
    (List.assoc_opt "connection" headers);
  Alcotest.(check string) "body" "{\"name\":\"intro-example\"}\n" body

let test_error_response_body () =
  let status, _, body =
    Http.read_response
      (Http.reader_of_string
         (Http.response_string (Http.error_response 503 "queue full")))
  in
  Alcotest.(check int) "status" 503 status;
  Alcotest.(check string) "json error body" "{\"error\":\"queue full\"}\n" body

(* ---------- routing ---------- *)

let routes : Router.t =
  [
    ("GET", "/healthz", fun _ -> Http.text_response 200 "ok\n");
    ("POST", "/analyze", fun _ -> Http.text_response 200 "analyzed");
  ]

let test_router_dispatch () =
  let rq path meth =
    parse (Printf.sprintf "%s %s HTTP/1.1\r\ncontent-length: 0\r\n\r\n" meth path)
  in
  Alcotest.(check int)
    "known route" 200
    (Router.dispatch routes (rq "/healthz" "GET")).Http.rs_status;
  Alcotest.(check int)
    "unknown path is 404" 404
    (Router.dispatch routes (rq "/nope" "GET")).Http.rs_status;
  let r405 = Router.dispatch routes (rq "/analyze" "GET") in
  Alcotest.(check int) "wrong method is 405" 405 r405.Http.rs_status;
  Alcotest.(check (option string))
    "allow header names the method" (Some "POST")
    (List.assoc_opt "allow" r405.Http.rs_headers)

let test_query_accessors_reject_garbage () =
  let rq = parse "GET /x?n=abc&f=zz&fs=1,zz HTTP/1.1\r\n\r\n" in
  check_err 400 (fun () -> Router.q_int rq "n" ~default:0);
  check_err 400 (fun () -> Router.q_float rq "f" ~default:0.0);
  check_err 400 (fun () -> Router.q_floats rq "fs" ~default:[])

(* ---------- keep-alive sessions ----------

   [Http.session] is a pure function of a reader plus callbacks, so every
   connection-lifetime policy is testable without a socket: the "wire" is
   a string, the responses land in a buffer, and idle_wait is a stateful
   closure standing in for select(2). *)

let run_session ?max_requests ?max_body ?idle_wait ?on_error wire =
  let out = Buffer.create 256 in
  let served = ref [] in
  Http.session ?max_requests ?max_body ?idle_wait ?on_error
    (Http.reader_of_string wire)
    ~write:(Buffer.add_string out)
    ~handler:(fun rq ->
      served := rq.Http.rq_path :: !served;
      Http.text_response 200 ("saw " ^ rq.Http.rq_path));
  (List.rev !served, Buffer.contents out)

(* split the response byte stream back into (status, connection) pairs *)
let parse_responses (s : string) : (int * string option) list =
  let rd = Http.reader_of_string s in
  let rec go acc =
    match Http.read_response rd with
    | status, headers, _ ->
        go ((status, List.assoc_opt "connection" headers) :: acc)
    | exception Http.Closed -> List.rev acc
  in
  go []

let get path = Printf.sprintf "GET %s HTTP/1.1\r\nhost: x\r\n\r\n" path

let test_pipelined_second_request () =
  (* the second request is already buffered when the first response goes
     out, so the session must serve it without consulting idle_wait in
     between; idle_wait fires once before the first read (empty buffer)
     and once at the final EOF probe *)
  let idle_calls = ref 0 in
  let served, out =
    run_session
      ~idle_wait:(fun () -> incr idle_calls; !idle_calls <= 1)
      (get "/a" ^ get "/b")
  in
  Alcotest.(check (list string)) "both served in order" [ "/a"; "/b" ] served;
  (match parse_responses out with
  | [ (200, Some "keep-alive"); (200, _) ] -> ()
  | rs ->
      Alcotest.failf "expected two responses, first keep-alive, got %d"
        (List.length rs));
  Alcotest.(check int) "no idle consult between the pair" 2 !idle_calls

let test_connection_close_honored () =
  let served, out =
    run_session
      ("GET /a HTTP/1.1\r\nconnection: close\r\n\r\n" ^ get "/b")
  in
  Alcotest.(check (list string)) "second request never read" [ "/a" ] served;
  match parse_responses out with
  | [ (200, Some "close") ] -> ()
  | _ -> Alcotest.fail "expected a single connection: close response"

let test_http10_defaults_to_close () =
  let served, out =
    run_session ("GET /a HTTP/1.0\r\n\r\n" ^ get "/b")
  in
  Alcotest.(check (list string)) "HTTP/1.0 closes after one" [ "/a" ] served;
  (match parse_responses out with
  | [ (200, Some "close") ] -> ()
  | _ -> Alcotest.fail "expected connection: close");
  (* ...unless the client opts in *)
  let served, _ =
    run_session
      ("GET /a HTTP/1.0\r\nconnection: keep-alive\r\n\r\n" ^ get "/b")
  in
  Alcotest.(check (list string)) "keep-alive opt-in" [ "/a"; "/b" ] served

let test_idle_timeout_teardown () =
  (* one request, then silence: the post-response idle consult says
     "timed out" and the session ends without reading anything more *)
  let idle_calls = ref 0 in
  let served, out =
    run_session
      ~idle_wait:(fun () -> incr idle_calls; !idle_calls <= 1)
      (get "/a")
  in
  Alcotest.(check (list string)) "one request served" [ "/a" ] served;
  Alcotest.(check int) "idle_wait consulted twice" 2 !idle_calls;
  match parse_responses out with
  | [ (200, Some "keep-alive") ] -> ()
  | _ -> Alcotest.fail "expected one keep-alive response"

let test_413_closes_mid_stream () =
  (* an oversized body poisons the framing: the session cannot know where
     the declared body ends, so it must answer 413 with connection: close
     and never look at the pipelined follow-up *)
  let big =
    "POST /analyze HTTP/1.1\r\ncontent-length: 64\r\n\r\n"
    ^ String.make 64 'x'
  in
  let errors = ref [] in
  let served, out =
    run_session ~max_body:16
      ~on_error:(fun s -> errors := s :: !errors)
      (big ^ get "/b")
  in
  Alcotest.(check (list string)) "nothing served" [] served;
  Alcotest.(check (list int)) "413 reported" [ 413 ] !errors;
  match parse_responses out with
  | [ (413, Some "close") ] -> ()
  | _ -> Alcotest.fail "expected a single 413 close response"

let test_request_cap_closes_last () =
  let served, out =
    run_session ~max_requests:2 (get "/a" ^ get "/b" ^ get "/c")
  in
  Alcotest.(check (list string)) "cap at two" [ "/a"; "/b" ] served;
  match parse_responses out with
  | [ (200, Some "keep-alive"); (200, Some "close") ] -> ()
  | _ -> Alcotest.fail "expected keep-alive then close at the cap"

let () =
  Alcotest.run "http"
    [
      ( "parse",
        [
          Alcotest.test_case "simple GET" `Quick test_parse_get;
          Alcotest.test_case "POST with query and body" `Quick
            test_parse_post_body;
          Alcotest.test_case "duplicate equal content-length" `Quick
            test_duplicate_equal_content_length;
          Alcotest.test_case "bare LF line endings" `Quick test_bare_lf_lines;
        ] );
      ( "errors",
        [
          Alcotest.test_case "malformed request line" `Quick
            test_malformed_request_line;
          Alcotest.test_case "request line too long" `Quick
            test_request_line_too_long;
          Alcotest.test_case "too many headers" `Quick test_too_many_headers;
          Alcotest.test_case "malformed header" `Quick test_malformed_header;
          Alcotest.test_case "POST without content-length" `Quick
            test_post_without_length;
          Alcotest.test_case "malformed content-length" `Quick
            test_malformed_content_length;
          Alcotest.test_case "conflicting content-length" `Quick
            test_conflicting_content_length;
          Alcotest.test_case "oversized body is 413" `Quick test_oversized_body;
          Alcotest.test_case "truncated body is 400" `Quick test_truncated_body;
          Alcotest.test_case "transfer-encoding is 501" `Quick
            test_transfer_encoding_refused;
          Alcotest.test_case "bad percent-escape" `Quick test_bad_percent_escape;
          Alcotest.test_case "clean close vs truncation" `Quick
            test_clean_close_is_distinguished;
        ] );
      ( "responses",
        [
          Alcotest.test_case "round trip" `Quick test_response_roundtrip;
          Alcotest.test_case "error body is json" `Quick test_error_response_body;
        ] );
      ( "router",
        [
          Alcotest.test_case "dispatch, 404, 405" `Quick test_router_dispatch;
          Alcotest.test_case "typed query rejects garbage" `Quick
            test_query_accessors_reject_garbage;
        ] );
      ( "keepalive",
        [
          Alcotest.test_case "pipelined second request" `Quick
            test_pipelined_second_request;
          Alcotest.test_case "connection: close honored" `Quick
            test_connection_close_honored;
          Alcotest.test_case "HTTP/1.0 defaults to close" `Quick
            test_http10_defaults_to_close;
          Alcotest.test_case "idle timeout tears down" `Quick
            test_idle_timeout_teardown;
          Alcotest.test_case "413 mid-stream closes" `Quick
            test_413_closes_mid_stream;
          Alcotest.test_case "request cap closes last response" `Quick
            test_request_cap_closes_last;
        ] );
    ]
