(* Differential fuzzing, driven by the fpgrind.fuzz subsystem.

   Random well-typed MiniC programs — now with control flow, arrays,
   computed indices, int/float/double casts, helper functions and
   mathlib calls — are executed along several legs that must agree
   bit-for-bit on client outputs: the independent reference evaluator
   ([Fuzz.Interp]), the uninstrumented VEX machine, and the instrumented
   analysis (plus, on the deep slice, every ablation, the vectorizer,
   and the unwrapped-mathlib mode). The analysis must never change
   client behaviour: the transparency property behind every ablation in
   the paper (section 3).

   Iteration counts scale with FPGRIND_FUZZ_ITERS (default 120); CI can
   raise it for a longer soak without touching the code. Everything is
   seeded: a failure reproduces with `fpgrind fuzz --seed S` and the
   printed index. *)

let iters =
  match Sys.getenv_opt "FPGRIND_FUZZ_ITERS" with
  | Some s -> ( try max 8 (int_of_string (String.trim s)) with _ -> 120)
  | None -> 120

let fail_of_entry (e : Fuzz.Campaign.entry) : string =
  match e.Fuzz.Campaign.e_status with
  | Fuzz.Campaign.Divergent d ->
      Printf.sprintf "program %d: DIVERGENT (%s) %s" e.Fuzz.Campaign.e_index
        d.Fuzz.Oracle.d_oracle d.Fuzz.Oracle.d_detail
  | Fuzz.Campaign.Error m ->
      Printf.sprintf "program %d: ERROR %s" e.Fuzz.Campaign.e_index m
  | Fuzz.Campaign.Passed | Fuzz.Campaign.Skipped _ -> assert false

(* run a seeded campaign and fail loudly (with seed + index, so the
   counterexample is reproducible from the command line) on divergence *)
let campaign name ?config ~seed n () =
  let t = Fuzz.Campaign.run ?config ~seed ~iters:n () in
  match Fuzz.Campaign.failed t with
  | [] -> ()
  | bad ->
      Alcotest.failf "%s (seed %d): %d of %d programs diverged\n%s" name seed
        (List.length bad) n
        (String.concat "\n" (List.map fail_of_entry bad))

(* the surface the pre-fuzz differential test covered: straight-line
   double arithmetic, no control flow / arrays / casts / helpers *)
let straightline () =
  campaign "straightline" ~config:Fuzz.Gen.straightline ~seed:101 iters ()

(* the full generator surface, deep legs on every 8th program *)
let full_surface () = campaign "full-surface" ~seed:202 iters ()

(* force the expensive legs (ablations, vectorize, mathlib) on every
   program of a smaller batch, not just the campaign's every-8th slice *)
let deep_legs () =
  let n = max 8 (iters / 8) in
  let bad = ref [] in
  for i = 0 to n - 1 do
    let ast, inputs = Fuzz.Campaign.generate ~seed:303 i in
    match Fuzz.Oracle.run ~checks:Fuzz.Oracle.deep_checks ~inputs ast with
    | Fuzz.Oracle.Pass | Fuzz.Oracle.Skip _ -> ()
    | Fuzz.Oracle.Fail d ->
        bad :=
          Printf.sprintf "program %d: (%s) %s" i d.Fuzz.Oracle.d_oracle
            d.Fuzz.Oracle.d_detail
          :: !bad
    | exception exn ->
        bad :=
          Printf.sprintf "program %d: raised %s" i (Printexc.to_string exn)
          :: !bad
  done;
  if !bad <> [] then
    Alcotest.failf "deep legs (seed 303):\n%s"
      (String.concat "\n" (List.rev !bad))

(* a fixed program exercising the tricky corners by hand: casts in both
   directions, binary32 arithmetic, eager && with NaN, a computed array
   index, and a helper call — the harness's own sanity check *)
let sanity () =
  let src =
    {|
      double poke(double x, int k) {
        float f = (float) (x / 3.0);
        if (k && (x / x)) { f = f + 1.5f; }
        return ((double) f) * (double) k;
      }
      int main() {
        double a[4];
        int i;
        for (i = 0; i < 4; i = i + 1) { a[((i * 7 % 4 + 4) % 4)] = __arg(i); }
        double s = 0.0;
        while (s < 3.0) { s = s + 1.0; }
        print(poke(a[1] + s, 2));
        print((double) (int) (a[2] * 1.0e6));
        return 0;
      }
    |}
  in
  let inputs = [| 0.1; -2.5; Float.infinity *. 0.0 (* nan *); 4.25 |] in
  match Fuzz.Oracle.run_source ~checks:Fuzz.Oracle.deep_checks ~inputs src with
  | Fuzz.Oracle.Pass -> ()
  | Fuzz.Oracle.Skip why -> Alcotest.failf "sanity skipped: %s" why
  | Fuzz.Oracle.Fail d ->
      Alcotest.failf "sanity diverged: (%s) %s" d.Fuzz.Oracle.d_oracle
        d.Fuzz.Oracle.d_detail

let () =
  Alcotest.run "differential"
    [
      ("sanity", [ Alcotest.test_case "fixed program, all legs" `Quick sanity ]);
      ( "fuzz",
        [
          Alcotest.test_case "straightline arithmetic" `Quick straightline;
          Alcotest.test_case "control flow, arrays, casts" `Quick full_surface;
          Alcotest.test_case "ablations + vectorize + mathlib" `Quick deep_legs;
        ] );
    ]
