(* Differential pinning for the compiled executor.

   The compiled-block refactor (pre-decoded superblocks, arena shadows,
   lazy traces) must be invisible in every analysis record: this suite
   replays the whole vendored FPBench suite plus a 500-program seed-42
   fuzz slice through all three engines and compares the results byte
   for byte against records committed from the pre-refactor
   tree-walking interpreter (test/data/, emitted at commit bb231c2).

   Canonical form: the Store's JSON with timing ("wall_s") and the
   compiled-executor additive fields ("stmts_executed",
   "traces_materialized") scrubbed — everything the interpreter also
   produced must match exactly; only the new observability fields and
   the clock are allowed to differ. *)

let rec scrub (j : Fleet.Json.t) : Fleet.Json.t =
  match j with
  | Fleet.Json.Obj kvs ->
      Fleet.Json.Obj
        (List.filter_map
           (fun (k, v) ->
             if
               k = "wall_s" || k = "stmts_executed"
               || k = "traces_materialized"
             then None
             else Some (k, scrub v))
           kvs)
  | Fleet.Json.Arr xs -> Fleet.Json.Arr (List.map scrub xs)
  | x -> x

let canon (o : Fleet.outcome) : string =
  Fleet.Json.to_string (scrub (Fleet.Store.outcome_to_json o))

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let engines =
  [
    ("full", Core.Config.Full);
    ("sanitize", Core.Config.Sanitize);
    ("tiered", Core.Config.Tiered);
  ]

(* ---------- the 82-benchmark suite, pinned per engine ---------- *)

let suite_identity (tag, engine) () =
  let cfg = { Core.Config.default with Core.Config.engine } in
  let jobs = Fpcore.Suite.enumerate ~iterations:16 ~seed:1 () in
  let specs = List.map (Fleet.bench_spec ~cfg) jobs in
  let outcomes = Fleet.run ~jobs:4 specs in
  let got = List.map canon outcomes in
  let want = read_lines ("data/compile_suite_" ^ tag ^ ".jsonl") in
  Alcotest.(check int)
    "record count" (List.length want) (List.length got);
  List.iteri
    (fun i (w, g) ->
      if w <> g then
        Alcotest.failf
          "engine %s, record %d diverges from the pre-refactor \
           interpreter\nwant: %s\ngot:  %s"
          tag i w g)
    (List.combine want got)

(* ---------- 500 seed-42 fuzz programs, digest-pinned ---------- *)

let max_steps = 2_000_000
let tick () = ()

let fuzz_payload engine ~name prog inputs : Fleet.payload =
  let cfg = { Core.Config.default with Core.Config.engine } in
  match engine with
  | Core.Config.Full ->
      let nodes0 = Core.Trace.created_in_domain () in
      let mat0 = Core.Trace.materialized_in_domain () in
      let r = Core.Analysis.analyze ~cfg ~max_steps ~inputs ~tick prog in
      Fleet.payload_for ~name ~group:"fuzz" ~nodes0 ~mat0 r
  | Core.Config.Sanitize ->
      let r = Sanitize.Sexec.run ~max_steps ~inputs ~tick cfg prog in
      Fleet.san_payload_for ~name ~group:"fuzz" r
  | Core.Config.Tiered ->
      let nodes0 = Core.Trace.created_in_domain () in
      let mat0 = Core.Trace.materialized_in_domain () in
      let r = Tiered.analyze ~cfg ~max_steps ~inputs ~tick prog in
      Fleet.tiered_payload_for ~name ~group:"fuzz" ~nodes0 ~mat0 r

let fuzz_digest (tag, engine) ~name prog inputs : string =
  match fuzz_payload engine ~name prog inputs with
  | p ->
      let o =
        {
          Fleet.o_name = name;
          o_group = "fuzz";
          o_key = "";
          o_engine = tag;
          o_status = Fleet.Done;
          o_wall_s = 0.0;
          o_payload = Some p;
        }
      in
      Digest.to_hex (Digest.string (canon o))
  | exception exn ->
      Digest.to_hex (Digest.string (tag ^ ":exn:" ^ Printexc.to_string exn))

let fuzz_line i : string =
  let ast, inputs = Fuzz.Campaign.generate ~seed:42 i in
  let src = Fuzz.Printer.program ast in
  let name = Printf.sprintf "fuzz-%04d" i in
  match Minic.compile ~file:(name ^ ".mc") src with
  | prog ->
      String.concat " "
        (name
        :: List.map
             (fun e -> fst e ^ ":" ^ fuzz_digest e ~name prog inputs)
             engines)
  | exception Minic.Compile_error e ->
      name ^ " compile-error:" ^ Digest.to_hex (Digest.string e)

let fuzz_identity () =
  let want = Array.of_list (read_lines "data/compile_fuzz_seed42.txt") in
  Alcotest.(check int) "slice size" 500 (Array.length want);
  let bad = ref [] in
  for i = Array.length want - 1 downto 0 do
    let got = fuzz_line i in
    if got <> want.(i) then
      bad :=
        Printf.sprintf "program %d:\nwant: %s\ngot:  %s" i want.(i) got
        :: !bad
  done;
  match !bad with
  | [] -> ()
  | l ->
      Alcotest.failf
        "%d of %d seed-42 programs diverge from the pre-refactor \
         interpreter\n%s"
        (List.length l) (Array.length want)
        (String.concat "\n" l)

let () =
  Alcotest.run "compile"
    [
      ( "suite",
        List.map
          (fun e ->
            Alcotest.test_case
              (fst e ^ " engine, 82 benchmarks byte-identical")
              `Quick (suite_identity e))
          engines );
      ( "fuzz",
        [
          Alcotest.test_case "500 seed-42 programs, three engines" `Quick
            fuzz_identity;
        ] );
    ]
