(* Tests for the VEX substrate: value encoding, operator semantics, the
   machine (memory, thread state, calls via indirect jumps, SIMD), and the
   superblock type inference. *)

open Vex

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* ---------- value byte encoding ---------- *)

let byte_roundtrips () =
  let buf = Bytes.make 32 '\000' in
  let cases =
    [
      (Value.VI64 0x1122334455667788L, Ir.I64);
      (Value.VI64 (-1L), Ir.I64);
      (Value.VI32 0x7FEEDDCCl, Ir.I32);
      (Value.VF64 3.14159, Ir.F64);
      (Value.VF64 (-0.0), Ir.F64);
      (Value.VF32 1.5, Ir.F32);
      (Value.VV128 (0xDEADBEEFL, 0xCAFEBABEL), Ir.V128);
      (Value.VBool true, Ir.I1);
    ]
  in
  List.iter
    (fun (v, ty) ->
      Value.write_bytes buf 8 v;
      let v' = Value.read_bytes buf 8 ty in
      checkb (Value.to_string v) true (v = v'))
    cases

let f32_lane_roundtrip () =
  let v = Value.v128_of_f32_lanes (1.0, -2.5, 3.25, 0.125) in
  match v with
  | Value.VV128 (lo, hi) ->
      let a, b, c, d = Value.v128_f32_lanes (lo, hi) in
      checkb "lanes" true (a = 1.0 && b = -2.5 && c = 3.25 && d = 0.125)
  | _ -> Alcotest.fail "not a vector"

(* ---------- operator semantics ---------- *)

let integer_ops () =
  let i64 x = Value.VI64 (Int64.of_int x) in
  let cases =
    [
      (Ir.Add64, 7, 5, 12);
      (Ir.Sub64, 7, 5, 2);
      (Ir.Mul64, -3, 5, -15);
      (Ir.DivS64, 17, 5, 3);
      (Ir.ModS64, 17, 5, 2);
      (Ir.ModS64, -17, 5, -2);
      (Ir.And64, 0b1100, 0b1010, 0b1000);
      (Ir.Or64, 0b1100, 0b1010, 0b1110);
      (Ir.Xor64, 0b1100, 0b1010, 0b0110);
      (Ir.Shl64, 3, 4, 48);
      (Ir.Sar64, -16, 2, -4);
    ]
  in
  List.iter
    (fun (op, a, b, expected) ->
      checki (Ir.binop_to_string op) expected
        (Int64.to_int (Value.as_i64 (Eval.eval_binop op (i64 a) (i64 b)))))
    cases;
  checkb "div by zero raises" true
    (try
       ignore (Eval.eval_binop Ir.DivS64 (i64 1) (i64 0));
       false
     with Division_by_zero -> true)

let float_compare_ops () =
  let f x = Value.VF64 x in
  checkb "lt" true (Value.as_bool (Eval.eval_binop Ir.CmpLTF64 (f 1.0) (f 2.0)));
  checkb "nan lt" false
    (Value.as_bool (Eval.eval_binop Ir.CmpLTF64 (f Float.nan) (f 2.0)));
  checkb "nan eq" false
    (Value.as_bool (Eval.eval_binop Ir.CmpEQF64 (f Float.nan) (f Float.nan)));
  checkb "nan ne" true
    (Value.as_bool (Eval.eval_binop Ir.CmpNEF64 (f Float.nan) (f Float.nan)))

let simd_semantics () =
  let pack a b = Value.v128_of_f64_lanes (a, b) in
  let v = Eval.eval_binop Ir.Mul64Fx2 (pack 2.0 3.0) (pack 5.0 7.0) in
  let a, b = Value.v128_f64_lanes (Value.as_v128 v) in
  checkb "mul lanes" true (a = 10.0 && b = 21.0);
  let s = Eval.eval_unop Ir.Sqrt64Fx2 (pack 16.0 25.0) in
  let a, b = Value.v128_f64_lanes (Value.as_v128 s) in
  checkb "sqrt lanes" true (a = 4.0 && b = 5.0)

let reinterp_roundtrip () =
  let v = Value.VF64 (-123.456) in
  let bits = Eval.eval_unop Ir.ReinterpF64asI64 v in
  let back = Eval.eval_unop Ir.ReinterpI64asF64 bits in
  checkb "roundtrip" true (Value.as_f64 back = -123.456);
  (* XOR with the sign mask is negation *)
  let flipped =
    Eval.eval_binop Ir.Xor64 bits (Value.VI64 Ieee.Bits.sign_flip_mask64)
  in
  let negated = Eval.eval_unop Ir.ReinterpI64asF64 flipped in
  checkb "bit negation" true (Value.as_f64 negated = 123.456)

let conversions () =
  checki "trunc" 3
    (Int64.to_int (Value.as_i64 (Eval.eval_unop Ir.F64toI64tz (Value.VF64 3.99))));
  checki "trunc neg" (-3)
    (Int64.to_int (Value.as_i64 (Eval.eval_unop Ir.F64toI64tz (Value.VF64 (-3.99)))));
  checki "round" 4
    (Int64.to_int (Value.as_i64 (Eval.eval_unop Ir.F64toI64rn (Value.VF64 3.6))));
  checkb "i64 to f64" true
    (Value.as_f64 (Eval.eval_unop Ir.I64toF64 (Value.VI64 42L)) = 42.0)

(* ---------- machine-level programs ---------- *)

let hand_built_program () =
  (* two blocks: entry computes, stores to memory, jumps; second loads and
     prints *)
  let open Ir in
  let b1 = Builder.create "entry" in
  let t = Builder.new_temp b1 F64 in
  Builder.emit b1 (WrTmp (t, Binop (MulF64, Const (CF64 6.0), Const (CF64 7.0))));
  Builder.emit b1 (Store (Const (CI64 128L), RdTmp t));
  let block1 = Builder.finish b1 (Goto "next") in
  let b2 = Builder.create "next" in
  let t2 = Builder.new_temp b2 F64 in
  Builder.emit b2 (WrTmp (t2, Load (F64, Const (CI64 128L))));
  Builder.emit b2 (Out (OutFloat, RdTmp t2));
  let block2 = Builder.finish b2 Halt in
  let prog = make_prog [ block1; block2 ] in
  let st = Machine.run prog in
  Alcotest.(check (list (float 0.0))) "42" [ 42.0 ] (Machine.output_floats st)

let indirect_jump () =
  (* call-like control: push a return index via LabelAddr, jump, return *)
  let open Ir in
  let b1 = Builder.create "entry" in
  Builder.emit b1 (Store (Const (CI64 64L), LabelAddr "after"));
  let block1 = Builder.finish b1 (Goto "callee") in
  let b2 = Builder.create "callee" in
  Builder.emit b2 (Put (16, Const (CF64 99.0)));
  let t = Builder.new_temp b2 I64 in
  Builder.emit b2 (WrTmp (t, Load (I64, Const (CI64 64L))));
  let block2 = Builder.finish b2 (IndirectGoto (RdTmp t)) in
  let b3 = Builder.create "after" in
  let t2 = Builder.new_temp b3 F64 in
  Builder.emit b3 (WrTmp (t2, Get (16, F64)));
  Builder.emit b3 (Out (OutFloat, RdTmp t2));
  let block3 = Builder.finish b3 Halt in
  let prog = make_prog [ block1; block2; block3 ] in
  let st = Machine.run prog in
  Alcotest.(check (list (float 0.0))) "returned" [ 99.0 ] (Machine.output_floats st)

let out_of_bounds_memory () =
  let open Ir in
  let b1 = Builder.create "entry" in
  Builder.emit b1 (Store (Const (CI64 (-8L)), Const (CF64 1.0)));
  let prog = make_prog [ Builder.finish b1 Halt ] in
  checkb "negative address rejected" true
    (try
       ignore (Machine.run prog);
       false
     with Machine.Client_error _ -> true)

let step_budget () =
  let open Ir in
  let b1 = Builder.create "entry" in
  let prog = make_prog [ Builder.finish b1 (Goto "entry") ] in
  checkb "infinite loop stopped" true
    (try
       ignore (Machine.run ~max_steps:100 prog);
       false
     with Machine.Client_error _ -> true)

(* ---------- type inference ---------- *)

let infer_block stmts temp_tys =
  let b =
    {
      Ir.label = "b";
      temp_tys = Array.of_list temp_tys;
      stmts = Array.of_list stmts;
      next = Ir.Halt;
    }
  in
  let prog = Ir.make_prog ~entry:"b" [ b ] in
  Typeinfer.infer prog

let type_inference_skips_integer_code () =
  let open Ir in
  let info =
    infer_block
      [
        WrTmp (0, Binop (Add64, Const (CI64 1L), Const (CI64 2L)));
        WrTmp (1, Binop (Mul64, RdTmp 0, Const (CI64 3L)));
        Exit (Binop (CmpLT64S, RdTmp 1, Const (CI64 10L)), "b");
      ]
      [ I64; I64 ]
  in
  checkb "int add skipped" true (Typeinfer.action info ~block:0 ~stmt:0 = Typeinfer.Skip);
  checkb "int mul skipped" true (Typeinfer.action info ~block:0 ~stmt:1 = Typeinfer.Skip);
  checkb "int-guarded exit skipped" true
    (Typeinfer.action info ~block:0 ~stmt:2 = Typeinfer.Skip)

let type_inference_instruments_floats () =
  let open Ir in
  let info =
    infer_block
      [
        WrTmp (0, Binop (AddF64, Const (CF64 1.0), Const (CF64 2.0)));
        Exit (Binop (CmpLTF64, RdTmp 0, Const (CF64 10.0)), "b");
      ]
      [ F64 ]
  in
  checkb "float add full" true (Typeinfer.action info ~block:0 ~stmt:0 = Typeinfer.Full);
  checkb "float-guarded exit full" true
    (Typeinfer.action info ~block:0 ~stmt:1 = Typeinfer.Full)

let type_inference_conservative_on_storage () =
  let open Ir in
  (* an I64 loaded from memory could carry a shadowed float *)
  let info =
    infer_block
      [
        WrTmp (0, Load (I64, Const (CI64 64L)));
        Store (Const (CI64 128L), RdTmp 0);
      ]
      [ I64 ]
  in
  checkb "unknown load instrumented" true
    (Typeinfer.action info ~block:0 ~stmt:0 = Typeinfer.Full);
  checkb "store of unknown instrumented" true
    (Typeinfer.action info ~block:0 ~stmt:1 = Typeinfer.Full)

let type_inference_clear_action () =
  let open Ir in
  let info =
    infer_block
      [
        WrTmp (0, Binop (Add64, Const (CI64 1L), Const (CI64 2L)));
        Store (Const (CI64 128L), RdTmp 0);
      ]
      [ I64 ]
  in
  checkb "store of known int is clear" true
    (Typeinfer.action info ~block:0 ~stmt:1 = Typeinfer.Clear)

let type_inference_xor_trick_conservative () =
  let open Ir in
  (* XOR of a reinterpreted float is NOT known non-float *)
  let info =
    infer_block
      [
        WrTmp (0, Unop (ReinterpF64asI64, Const (CF64 1.5)));
        WrTmp (1, Binop (Xor64, RdTmp 0, Const (CI64 Int64.min_int)));
      ]
      [ I64; I64 ]
  in
  checkb "xor of float bits instrumented" true
    (Typeinfer.action info ~block:0 ~stmt:1 = Typeinfer.Full)

(* qcheck: semantics of eval on integer ops matches Int64 reference *)
let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"Add64/Sub64/Mul64 match Int64" ~count:300
      (pair int int)
      (fun (a, b) ->
        let va = Value.VI64 (Int64.of_int a) and vb = Value.VI64 (Int64.of_int b) in
        Value.as_i64 (Eval.eval_binop Ir.Add64 va vb)
        = Int64.add (Int64.of_int a) (Int64.of_int b)
        && Value.as_i64 (Eval.eval_binop Ir.Sub64 va vb)
           = Int64.sub (Int64.of_int a) (Int64.of_int b)
        && Value.as_i64 (Eval.eval_binop Ir.Mul64 va vb)
           = Int64.mul (Int64.of_int a) (Int64.of_int b));
    Test.make ~name:"F64 ops match OCaml floats" ~count:300
      (pair (float_bound_exclusive 1e15) (float_bound_exclusive 1e15))
      (fun (a, b) ->
        Value.as_f64 (Eval.eval_binop Ir.AddF64 (Value.VF64 a) (Value.VF64 b))
        = a +. b
        && Value.as_f64 (Eval.eval_binop Ir.MulF64 (Value.VF64 a) (Value.VF64 b))
           = a *. b);
    Test.make ~name:"SIMD F64 lanes act independently" ~count:200
      (pair (pair float float) (pair float float))
      (fun ((a0, a1), (b0, b1)) ->
        let v =
          Eval.eval_binop Ir.Add64Fx2
            (Value.v128_of_f64_lanes (a0, a1))
            (Value.v128_of_f64_lanes (b0, b1))
        in
        let r0, r1 = Value.v128_f64_lanes (Value.as_v128 v) in
        let eq x y =
          Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
        in
        eq r0 (a0 +. b0) && eq r1 (a1 +. b1));
  ]

let () =
  Alcotest.run "vex"
    [
      ( "values",
        [
          Alcotest.test_case "byte roundtrips" `Quick byte_roundtrips;
          Alcotest.test_case "f32 lanes" `Quick f32_lane_roundtrip;
        ] );
      ( "eval",
        [
          Alcotest.test_case "integer ops" `Quick integer_ops;
          Alcotest.test_case "float compares" `Quick float_compare_ops;
          Alcotest.test_case "SIMD" `Quick simd_semantics;
          Alcotest.test_case "reinterpretation" `Quick reinterp_roundtrip;
          Alcotest.test_case "conversions" `Quick conversions;
        ] );
      ( "machine",
        [
          Alcotest.test_case "hand-built program" `Quick hand_built_program;
          Alcotest.test_case "indirect jump" `Quick indirect_jump;
          Alcotest.test_case "bounds checking" `Quick out_of_bounds_memory;
          Alcotest.test_case "step budget" `Quick step_budget;
        ] );
      ( "typeinfer",
        [
          Alcotest.test_case "skips integer code" `Quick
            type_inference_skips_integer_code;
          Alcotest.test_case "instruments floats" `Quick
            type_inference_instruments_floats;
          Alcotest.test_case "conservative on storage" `Quick
            type_inference_conservative_on_storage;
          Alcotest.test_case "clear action" `Quick type_inference_clear_action;
          Alcotest.test_case "xor trick conservative" `Quick
            type_inference_xor_trick_conservative;
        ] );
      ( "properties",
        (* seeded per-test so `dune runtest` is deterministic; set
           QCHECK_SEED to explore a different stream *)
        List.mapi
          (fun i t ->
            let base =
              try int_of_string (Sys.getenv "QCHECK_SEED") with _ -> 0x5eed
            in
            QCheck_alcotest.to_alcotest
              ~rand:(Random.State.make [| base; i |])
              t)
          qcheck_tests );
    ]
