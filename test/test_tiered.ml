(* Tests of the fpgrind.tiered subsystem: the static backward slicer on
   hand-built VEX programs (exact expected membership), the escalation
   planner, the off-slice-stays-machine-only property of restricted
   execution, and the end-to-end consistency contract — a tiered report
   byte-identical to the full engine's on a flagged program, silence on
   a clean one. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let cfg = Core.Config.fast (* 128-bit shadow precision for test speed *)
let tiered_cfg = { cfg with Core.Config.engine = Core.Config.Tiered }

let compile src = Minic.compile ~file:"test.mc" src

(* ---------- the slicer on hand-built programs ---------- *)

(* Two independent chains through thread state:

     chain A: t0 = 1.0 + 2.0; Put 0;  t2 = Get 0;  Out t2   (stmts 1,2,5,6)
     chain B: t1 = 3.0 * 4.0; Put 8;  t3 = Get 8;  Out t3   (stmts 3,4,7,8)

   Seeding on one Out must pull in exactly that chain. *)
let two_chain_prog () =
  let open Vex.Ir in
  let f c = Const (CF64 c) in
  make_prog
    [
      {
        label = "entry";
        temp_tys = [| F64; F64; F64; F64 |];
        stmts =
          [|
            IMark { file = "t.mc"; line = 1; func = "main" };
            WrTmp (0, Binop (AddF64, f 1.0, f 2.0));
            Put (0, RdTmp 0);
            WrTmp (1, Binop (MulF64, f 3.0, f 4.0));
            Put (8, RdTmp 1);
            WrTmp (2, Get (0, F64));
            Out (OutFloat, RdTmp 2);
            WrTmp (3, Get (8, F64));
            Out (OutFloat, RdTmp 3);
          |];
        next = Halt;
      };
    ]

let sid s = Vex.Ir.stmt_id ~block:0 ~stmt:s

let slice_follows_one_chain () =
  let prog = two_chain_prog () in
  let sl = Vex.Slice.compute prog ~seeds:[ sid 6 ] in
  checki "chain A slice size" 4 (Vex.Slice.size sl);
  List.iter
    (fun s ->
      checkb
        (Printf.sprintf "stmt %d on slice" s)
        true
        (Vex.Slice.contains sl (sid s)))
    [ 1; 2; 5; 6 ];
  List.iter
    (fun s ->
      checkb
        (Printf.sprintf "stmt %d off slice" s)
        false
        (Vex.Slice.contains sl (sid s)))
    [ 0; 3; 4; 7; 8 ]

let slice_follows_other_chain () =
  let prog = two_chain_prog () in
  let sl = Vex.Slice.compute prog ~seeds:[ sid 8 ] in
  checki "chain B slice size" 4 (Vex.Slice.size sl);
  List.iter
    (fun s -> checkb "on slice" true (Vex.Slice.contains sl (sid s)))
    [ 3; 4; 7; 8 ];
  List.iter
    (fun s -> checkb "off slice" false (Vex.Slice.contains sl (sid s)))
    [ 1; 2; 5; 6 ]

let slice_union_of_seeds () =
  let prog = two_chain_prog () in
  let sl = Vex.Slice.compute prog ~seeds:[ sid 6; sid 8 ] in
  checki "both chains" 8 (Vex.Slice.size sl)

(* A load pulls in exactly the stores whose address class may alias its
   own: constant addresses by byte-range overlap, unknown addresses
   always. *)
let loads_pull_aliasing_stores () =
  let open Vex.Ir in
  let f c = Const (CF64 c) in
  let prog =
    make_prog
      [
        {
          label = "entry";
          temp_tys = [| I64; F64; F64 |];
          stmts =
            [|
              Store (Const (CI64 0L), f 7.0);
              Store (Const (CI64 8L), f 9.0);
              WrTmp (0, Get (16, I64));
              Store (RdTmp 0, f 11.0);
              WrTmp (1, Load (F64, Const (CI64 0L)));
              Out (OutFloat, RdTmp 1);
            |];
          next = Halt;
        };
      ]
  in
  let sl = Vex.Slice.compute prog ~seeds:[ sid 5 ] in
  (* the overlapping constant store and the unknown-address store are
     in; the disjoint constant store stays out *)
  List.iter
    (fun s -> checkb "on slice" true (Vex.Slice.contains sl (sid s)))
    [ 0; 2; 3; 4; 5 ];
  checkb "disjoint store off slice" false (Vex.Slice.contains sl (sid 1))

(* Frame-relative addresses at distinct constant offsets never alias,
   and never alias the global segment's constant addresses. *)
let frame_offsets_disjoint () =
  let open Vex.Ir in
  let f c = Const (CF64 c) in
  let c64 k = Const (CI64 (Int64.of_int k)) in
  let prog =
    make_prog
      [
        {
          label = "entry";
          temp_tys = [| I64; I64; I64; F64; F64 |];
          stmts =
            [|
              WrTmp (0, Get (8, I64));
              (* fp *)
              WrTmp (1, Binop (Add64, RdTmp 0, c64 16));
              WrTmp (2, Binop (Add64, RdTmp 0, c64 24));
              Store (RdTmp 1, f 1.5);
              (* fp+16 *)
              Store (RdTmp 2, f 2.5);
              (* fp+24 *)
              Store (Const (CI64 16L), f 3.5);
              (* global 16 *)
              WrTmp (3, Load (F64, RdTmp 1));
              (* reads fp+16 *)
              Out (OutFloat, RdTmp 3);
            |];
          next = Halt;
        };
      ]
  in
  let sl = Vex.Slice.compute prog ~seeds:[ sid 7 ] in
  List.iter
    (fun s -> checkb "on slice" true (Vex.Slice.contains sl (sid s)))
    [ 0; 1; 3; 6; 7 ];
  checkb "other frame slot off slice" false (Vex.Slice.contains sl (sid 4));
  checkb "global store off slice" false (Vex.Slice.contains sl (sid 5))

let bad_seed_rejected () =
  let prog = two_chain_prog () in
  Alcotest.check_raises "out-of-range id"
    (Invalid_argument "Slice.compute: bad stmt id 65536") (fun () ->
      ignore (Vex.Slice.compute prog ~seeds:[ Vex.Ir.stmt_id ~block:1 ~stmt:0 ]))

(* ---------- the planner and off-slice machine-only execution ---------- *)

(* One erroneous output plus an independent loop of exact arithmetic:
   the planner must seed only the flagged output, and pass 2 must leave
   the clean chain uninstrumented. *)
let mixed_src =
  {| int main() {
       int i;
       double x = __arg(0);
       double bad = (x + 1.0) - x;
       double clean = 0.0;
       for (i = 0; i < 50; i = i + 1) {
         clean = clean + 1.5;
       }
       print(bad);
       print(clean);
       return 0;
     } |}

let off_slice_stays_machine_only () =
  let prog = compile mixed_src in
  let inputs = [| 1e16 |] in
  let t = Tiered.analyze ~cfg:tiered_cfg ~inputs prog in
  checkb "escalated" true (Tiered.escalated t);
  checki "single seed" 1 (List.length t.Tiered.t_seeds);
  let pass2 =
    match t.Tiered.t_full with Some r -> r | None -> assert false
  in
  let full = Core.Analysis.analyze ~cfg ~inputs prog in
  let fstats (r : Core.Analysis.result) = r.Core.Analysis.raw.Core.Exec.r_stats in
  checkb "slice is a strict subset of the program" true
    (t.Tiered.t_slice_stmts > 0
    && (fstats pass2).Core.Exec.stmts_instrumented
       < (fstats full).Core.Exec.stmts_instrumented);
  (* the clean loop's adds never get shadowed: strictly fewer fp ops *)
  checkb "fewer shadowed fp ops" true
    ((fstats pass2).Core.Exec.fp_ops < (fstats full).Core.Exec.fp_ops);
  (* off-slice spots are never materialized: the clean output has a
     full-engine spot but no tiered one *)
  let nspots (r : Core.Analysis.result) =
    Hashtbl.length r.Core.Analysis.raw.Core.Exec.r_spots
  in
  checkb "fewer spots than full" true (nspots pass2 < nspots full);
  (* but client outputs are still all produced, bit-identical *)
  let obs (os : Vex.Machine.output list) =
    List.map
      (fun (o : Vex.Machine.output) ->
        Int64.bits_of_float (Vex.Value.as_f64 o.Vex.Machine.value))
      (List.filter
         (fun (o : Vex.Machine.output) -> o.Vex.Machine.kind = Vex.Ir.OutFloat)
         os)
  in
  checkb "outputs bit-identical to full" true
    (obs (Tiered.outputs t) = obs full.Core.Analysis.raw.Core.Exec.r_outputs)

(* ---------- the end-to-end consistency contract ---------- *)

let report_identical_to_full () =
  let prog = compile mixed_src in
  let inputs = [| 1e16 |] in
  let t = Tiered.analyze ~cfg:tiered_cfg ~inputs prog in
  let full = Core.Analysis.analyze ~cfg ~inputs prog in
  checks "tiered report equals full report"
    (Core.Analysis.report_string full)
    (Tiered.report_string t)

let clean_program_never_escalates () =
  let prog =
    compile
      {| int main() {
           double x = __arg(0);
           print(x * 2.0);
           return 0;
         } |}
  in
  let t = Tiered.analyze ~cfg:tiered_cfg ~inputs:[| 3.5 |] prog in
  checkb "not escalated" false (Tiered.escalated t);
  checki "no seeds" 0 (List.length t.Tiered.t_seeds);
  checki "no slice" 0 t.Tiered.t_slice_stmts;
  checks "clean report" "No floating-point problems found.\n"
    (Tiered.report_string t)

let () =
  Alcotest.run "tiered"
    [
      ( "slice",
        [
          Alcotest.test_case "seeding one chain" `Quick slice_follows_one_chain;
          Alcotest.test_case "seeding the other" `Quick
            slice_follows_other_chain;
          Alcotest.test_case "union of seeds" `Quick slice_union_of_seeds;
          Alcotest.test_case "loads pull aliasing stores" `Quick
            loads_pull_aliasing_stores;
          Alcotest.test_case "frame offsets disjoint" `Quick
            frame_offsets_disjoint;
          Alcotest.test_case "bad seed rejected" `Quick bad_seed_rejected;
        ] );
      ( "engine",
        [
          Alcotest.test_case "off-slice stays machine-only" `Quick
            off_slice_stays_machine_only;
          Alcotest.test_case "report byte-identical to full" `Quick
            report_identical_to_full;
          Alcotest.test_case "clean program never escalates" `Quick
            clean_program_never_escalates;
        ] );
    ]
