(* fpgrind.regime — sampler determinism, threshold-search correctness
   on a hand-built two-regime synthetic, branched-emitter round-trips,
   soundness re-validation of the PR 7 overfit trio at the official
   configuration, and a pinned error table. Everything here is keyed by
   explicit seeds; a failure means regime inference stopped being a
   pure function of (bench, seed, knobs). *)

module Suite = Fpcore.Suite

let bench name = Suite.find name

(* the swept zero-UNSOUND configuration (see Regime.official_points) *)
let infer_official b =
  Regime.infer ~points:Regime.official_points ~depth:Regime.official_depth
    ~opts:Regime.official_options ~seed:42 b

(* ---------- sampler ---------- *)

let test_sampler_determinism () =
  let b = bench "quadratic-full" in
  let fp seed =
    Regime.Sampler.fingerprint (Regime.Sampler.context ~seed ~n:24 b)
  in
  Alcotest.(check string) "same seed, byte-identical context" (fp 42) (fp 42);
  Alcotest.(check bool) "different seed, different context" true (fp 42 <> fp 43);
  (* the resample stream is disjoint from the search stream *)
  Alcotest.(check bool)
    "resample seed yields a disjoint context" true
    (fp 42 <> fp (Regime.Sampler.resample_seed 42));
  (* every point binds every argument, in core order *)
  let core = Suite.core_of b in
  List.iter
    (fun pt ->
      Alcotest.(check (list string))
        "point binds the core's arguments" core.Fpcore.Ast.args
        (List.map fst pt))
    (Regime.Sampler.context ~seed:7 ~n:5 b)

(* ---------- threshold search on a synthetic ---------- *)

(* Two candidates over x = 1..8: candidate 0 is accurate on the low
   half, candidate 1 on the high half. The DP must cut exactly once, at
   the midpoint between x=4 and x=5, and assign low-range-first. *)
let test_search_two_regimes () =
  let xs = Array.init 8 (fun i -> float_of_int (i + 1)) in
  let errors =
    [|
      Array.init 8 (fun i -> if i < 4 then 0.1 else 20.0);
      Array.init 8 (fun i -> if i < 4 then 20.0 else 0.1);
    |]
  in
  match Regime.Search.search ~vars:[ ("x", xs) ] ~errors () with
  | None -> Alcotest.fail "search missed an obvious two-regime structure"
  | Some s ->
      Alcotest.(check string) "split variable" "x" s.Regime.Search.s_var;
      Alcotest.(check (list (float 1e-9)))
        "threshold at the midpoint of the crossover" [ 4.5 ]
        s.Regime.Search.s_thresholds;
      Alcotest.(check (list int))
        "candidates low-range-first" [ 0; 1 ] s.Regime.Search.s_cands

let test_search_no_split_when_one_wins () =
  let xs = Array.init 8 (fun i -> float_of_int (i + 1)) in
  let errors = [| Array.make 8 0.1; Array.make 8 5.0 |] in
  Alcotest.(check bool)
    "uniformly-dominant candidate yields no split" true
    (Regime.Search.search ~vars:[ ("x", xs) ] ~errors () = None)

(* the MDL penalty must be able to veto a split that buys less than its
   charge: same crossover shape, gap shrunk until the branch cannot pay *)
let test_search_penalty_vetoes_marginal_split () =
  let xs = Array.init 8 (fun i -> float_of_int (i + 1)) in
  let errors =
    [|
      Array.init 8 (fun i -> if i < 4 then 1.0 else 1.2);
      Array.init 8 (fun i -> if i < 4 then 1.2 else 1.0);
    |]
  in
  (* gain of splitting = 0.2 bits * 4 points = 0.8 bits total *)
  let cheap = { Regime.Search.default_options with penalty_bits = 0.01 } in
  let steep = { Regime.Search.default_options with penalty_bits = 0.5 } in
  Alcotest.(check bool)
    "cheap penalty takes the split" true
    (Regime.Search.search ~opts:cheap ~vars:[ ("x", xs) ] ~errors () <> None);
  Alcotest.(check bool)
    "steep penalty vetoes it" true
    (Regime.Search.search ~opts:steep ~vars:[ ("x", xs) ] ~errors () = None)

(* ---------- emitter round-trips ---------- *)

let test_branched_roundtrip () =
  let b = bench "quadratic-full" in
  let r = infer_official b in
  Alcotest.(check string)
    "quadratic-full ships the branched fix" "branched" r.Regime.re_selected;
  Alcotest.(check bool)
    "at least two regimes" true
    (Regime.selected_regimes r.Regime.re_selected r.Regime.re_regimes >= 2);
  (* FPCore: render -> parse -> render is a fixpoint *)
  let args = r.Regime.re_args in
  let src = Regime.Emit.render_core ~args r.Regime.re_fix in
  let core = Fpcore.Parse.parse_core src in
  Alcotest.(check string)
    "FPCore branched fix re-renders identically" src
    (Regime.Emit.render_core ~args:core.Fpcore.Ast.args core.Fpcore.Ast.body);
  (* MiniC: the emitted program compiles *)
  let mc = Regime.Emit.minic_program ~args r.Regime.re_fix in
  (match Minic.compile ~file:"regime-fix.mc" mc with
  | (_ : Vex.Ir.prog) -> ()
  | exception Minic.Compile_error msg ->
      Alcotest.failf "emitted MiniC does not compile: %s" msg);
  (* the branch structure the fleet carries matches the report *)
  List.iter
    (fun (v, _) ->
      Alcotest.(check (option string))
        "threshold variable is the split variable" r.Regime.re_var (Some v))
    (Regime.thresholds r)

(* ---------- soundness of the overfit trio ---------- *)

(* rigid-body1, kepler2 and delta4 are the PR 7 soundiness overfits:
   single-rewrite improve ships fixes for them that lose on a resample.
   At the official configuration regime selection must retire all three
   — ship a genuinely-better fix or fall back to the original — and the
   disjoint-context soundness report must come back clean. *)
let test_overfit_trio_sound () =
  List.iter
    (fun name ->
      let r = infer_official (bench name) in
      Alcotest.(check bool)
        (name ^ " sound on resample") true
        r.Regime.re_soundness.Rewrite.Soundness.r_sound;
      Alcotest.(check bool)
        (name ^ " never regresses the resampled mean") true
        (match r.Regime.re_selected with
        | "original" -> r.Regime.re_fix = r.Regime.re_original
        | "single" -> r.Regime.re_act_single <= r.Regime.re_act_before
        | "branched" -> r.Regime.re_act_branched <= r.Regime.re_act_before
        | s -> Alcotest.failf "unknown selection %s" s))
    [ "rigid-body1"; "kepler2"; "delta4" ]

(* ---------- pinned error table ---------- *)

(* Byte-level pin of one report. If this fails because the table format
   changed on purpose, update the pin; if it fails with the same format
   but different numbers, regime inference lost determinism. *)
let expected_table =
  "regime intro-example (seed 42, 24+24+48 points): no branch (single \
   candidate wins)\n\
  \  branch                        predicted     actual   srch   rsmp\n\
  \  (all)                              0.25       0.25     24     48\n\
  \  expr                          predicted   validate     actual\n\
  \  original                          12.93      14.49      14.92\n\
  \  single                             0.25       0.29       0.25\n\
  \  branched                           0.25       0.29       0.25\n\
  \  selected: single (by validation context)\n\
  \  spots above threshold:\n\
  \    (- (sqrt (+ x 1)) (sqrt x)) mean 12.93 max 26.22 (24 pts)\n\
  \  fix: (FPCore (x) (/ 1 (+ (sqrt (+ x 1)) (sqrt x))))\n\
  \  sound on resample"

let test_error_table_pin () =
  let r = Regime.infer ~seed:42 (bench "intro-example") in
  Alcotest.(check string) "pinned table" expected_table (Regime.table r)

let () =
  Alcotest.run "regime"
    [
      ( "sampler",
        [ Alcotest.test_case "determinism" `Quick test_sampler_determinism ] );
      ( "search",
        [
          Alcotest.test_case "two-regime synthetic" `Quick
            test_search_two_regimes;
          Alcotest.test_case "no split when one wins" `Quick
            test_search_no_split_when_one_wins;
          Alcotest.test_case "penalty vetoes marginal split" `Quick
            test_search_penalty_vetoes_marginal_split;
        ] );
      ( "emit",
        [
          Alcotest.test_case "branched round-trips" `Quick
            test_branched_roundtrip;
        ] );
      ( "soundness",
        [
          Alcotest.test_case "overfit trio revalidates" `Quick
            test_overfit_trio_sound;
        ] );
      ( "table",
        [ Alcotest.test_case "pinned error table" `Quick test_error_table_pin ] );
    ]
