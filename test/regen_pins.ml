(* Regenerates the test/data compiled-executor suite pins after a
   deliberate suite extension:

     dune exec test/regen_pins.exe -- test/data

   Canonical form must match test_compile.ml exactly: the Store's JSON
   with "wall_s", "stmts_executed" and "traces_materialized" scrubbed.
   Run from the repository root; diff the result before committing —
   a suite extension may only *append/insert* records, never change
   existing ones. *)

let rec scrub (j : Fleet.Json.t) : Fleet.Json.t =
  match j with
  | Fleet.Json.Obj kvs ->
      Fleet.Json.Obj
        (List.filter_map
           (fun (k, v) ->
             if
               k = "wall_s" || k = "stmts_executed"
               || k = "traces_materialized"
             then None
             else Some (k, scrub v))
           kvs)
  | Fleet.Json.Arr xs -> Fleet.Json.Arr (List.map scrub xs)
  | x -> x

let canon (o : Fleet.outcome) : string =
  Fleet.Json.to_string (scrub (Fleet.Store.outcome_to_json o))

let engines =
  [
    ("full", Core.Config.Full);
    ("sanitize", Core.Config.Sanitize);
    ("tiered", Core.Config.Tiered);
  ]

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "test/data" in
  List.iter
    (fun (tag, engine) ->
      let cfg = { Core.Config.default with Core.Config.engine } in
      let jobs = Fpcore.Suite.enumerate ~iterations:16 ~seed:1 () in
      let specs = List.map (Fleet.bench_spec ~cfg) jobs in
      let outcomes = Fleet.run ~jobs:4 specs in
      let path = Filename.concat dir ("compile_suite_" ^ tag ^ ".jsonl") in
      let oc = open_out path in
      List.iter
        (fun o ->
          output_string oc (canon o);
          output_char oc '\n')
        outcomes;
      close_out oc;
      Printf.printf "%s: %d records\n%!" path (List.length outcomes))
    engines
