(* fpgrind.campaign tests: external-corpus ingestion edge cases
   (malformed FPCore, truncated datafiles, duplicate names — all must
   become structured failed records, never escaping exceptions), the
   findings feed and checkpoint round-trips, checkpoint/resume
   byte-identity, and a seeded soundiness slice over the benchmark
   suite. *)

module Suite = Fpcore.Suite

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* fixtures are copied next to the test binary by the dune deps glob;
   fall back to the source tree when run from the project root *)
let fixture_dir =
  if Sys.file_exists "corpus-ext" then "corpus-ext" else "test/corpus-ext"

let tmp_path suffix =
  let p = Filename.temp_file "fpgrind-test-campaign" suffix in
  Sys.remove p;
  p

(* ---------- ingestion ---------- *)

let bench_names (l : Suite.loaded) =
  List.map (fun (b : Suite.bench) -> b.Suite.name) l.Suite.l_benches

let failure_names (l : Suite.loaded) =
  List.map (fun e -> e.Suite.le_name) l.Suite.l_failures

let ingest_dir () =
  let l = Suite.load_dir fixture_dir in
  (* files load in sorted order: datafile.json, dup.fpcore, good.fpcore,
     malformed.fpcore, noname.fpcore, truncated.json — and within the
     set, dup.fpcore's "ext-cancel" wins over good.fpcore's because
     dup sorts first. Order is deterministic either way. *)
  Alcotest.(check (list string))
    "benches loaded"
    [ "df-logexp"; "ext-cancel"; "ext-sqrt-diff"; "noname" ]
    (List.sort compare (bench_names l));
  checki "structured failures" 5 (List.length l.Suite.l_failures);
  (* every failure carries a file, a per-job name, and a reason *)
  List.iter
    (fun (e : Suite.load_error) ->
      checkb "failure has a file" true (e.Suite.le_file <> "");
      checkb "failure has a name" true (e.Suite.le_name <> "");
      checkb "failure has a reason" true (e.Suite.le_reason <> ""))
    l.Suite.l_failures;
  (* the duplicate name is reported as such *)
  checkb "duplicate ext-cancel rejected" true
    (List.exists
       (fun (e : Suite.load_error) ->
         e.Suite.le_name = "ext-cancel"
         && e.Suite.le_reason = "duplicate benchmark name")
       l.Suite.l_failures);
  ignore (failure_names l)

let ingest_ranges () =
  let l = Suite.load_dir fixture_dir in
  let find n =
    List.find (fun (b : Suite.bench) -> b.Suite.name = n) l.Suite.l_benches
  in
  (* :pre (and (<= 1 x) (<= x 1000000)) — three decades and positive,
     so the range goes log-scale like the vendored suite's convention *)
  (match (find "ext-sqrt-diff").Suite.ranges with
  | [ ("x", lo, hi, Suite.Log) ] ->
      checkb "lo" true (lo = 1.0);
      checkb "hi" true (hi = 1000000.0)
  | _ -> Alcotest.fail "ext-sqrt-diff ranges not extracted");
  (* chained (<= -100 a 100) *)
  (match (find "ext-cancel").Suite.ranges with
  | [ ("z", lo, hi, Suite.Linear) ] ->
      (* dup.fpcore's ext-cancel won the name; it has no :pre, so the
         default range applies *)
      checkb "default lo" true (lo = -10.0);
      checkb "default hi" true (hi = 10.0)
  | _ -> Alcotest.fail "ext-cancel ranges not extracted");
  (* no :pre at all: default ranges for every arg *)
  match (find "noname").Suite.ranges with
  | [ ("x", -10.0, 10.0, Suite.Linear); ("y", -10.0, 10.0, Suite.Linear) ] ->
      ()
  | _ -> Alcotest.fail "noname default ranges wrong"

let ingest_datafile () =
  let l = Suite.load_datafile (Filename.concat fixture_dir "datafile.json") in
  Alcotest.(check (list string)) "datafile benches" [ "df-logexp" ]
    (bench_names l);
  checki "datafile failures" 2 (List.length l.Suite.l_failures);
  (* the df-logexp precondition (<= -8 x 8) becomes a linear range *)
  match l.Suite.l_benches with
  | [ b ] -> (
      match b.Suite.ranges with
      | [ ("x", -8.0, 8.0, Suite.Linear) ] -> ()
      | _ -> Alcotest.fail "datafile :pre not extracted")
  | _ -> Alcotest.fail "expected one datafile bench"

let ingest_truncated () =
  let l = Suite.load_datafile (Filename.concat fixture_dir "truncated.json") in
  checki "no benches from a truncated datafile" 0 (List.length l.Suite.l_benches);
  checki "one structured failure" 1 (List.length l.Suite.l_failures)

(* loaded benches run through the fleet unchanged, and a load failure
   turned into a failing spec produces a structured failed outcome *)
let ingest_through_fleet () =
  let l = Suite.load_dir fixture_dir in
  let cfg = Core.Config.fast in
  let specs =
    List.map (Fleet.bench_spec ~cfg)
      (Suite.jobs_of_loaded ~iterations:2 ~seed:1 l)
  in
  let failed_specs =
    List.map
      (fun (e : Suite.load_error) ->
        {
          Fleet.sp_name = e.Suite.le_name;
          sp_group = "ingest";
          sp_key = "";
          sp_engine = "full";
          sp_work = (fun ~tick:_ -> failwith e.Suite.le_reason);
        })
      l.Suite.l_failures
  in
  let outcomes = Fleet.run ~jobs:1 (specs @ failed_specs) in
  checki "one outcome per job" (List.length specs + List.length failed_specs)
    (List.length outcomes);
  List.iter
    (fun (o : Fleet.outcome) ->
      match o.Fleet.o_status with
      | Fleet.Done | Fleet.Cached ->
          checkb "ok outcome is a loaded bench" true (o.Fleet.o_group <> "ingest")
      | Fleet.Failed _ ->
          checks "failed outcome is an ingest record" "ingest" o.Fleet.o_group
      | Fleet.Timed_out -> Alcotest.fail "unexpected timeout")
    outcomes

(* ---------- findings feed ---------- *)

let findings_roundtrip () =
  let f =
    {
      Campaign.Findings.f_index = 7;
      f_seed = 42;
      f_kind = "soundiness";
      f_subject = "kepler2";
      f_detail = "improve regressed 0.04 bits on resampled points";
      f_table = "line1\nline2";
      f_repro = "";
      f_regime_candidate = Some true;
    }
  in
  let line = Campaign.Findings.to_line f in
  checkb "single line" true (not (String.contains line '\n'));
  (match Campaign.Findings.of_line line with
  | Some f' -> checkb "round-trips" true (f = f')
  | None -> Alcotest.fail "finding line did not parse");
  let path = tmp_path ".jsonl" in
  Campaign.Findings.append ~path [ f ];
  Campaign.Findings.append ~path [ { f with Campaign.Findings.f_index = 8 } ];
  let got = Campaign.Findings.load path in
  Sys.remove path;
  checki "two findings" 2 (List.length got);
  checki "append preserved order" 7
    (List.hd got).Campaign.Findings.f_index

(* ---------- checkpoint state ---------- *)

let state_roundtrip () =
  let st =
    {
      (Campaign.State.fresh ~seed:7 ~iters:100 ~soundness_every:4
         ~fingerprint:"fp") with
      Campaign.State.s_next = 33;
      s_passed = 20;
      s_divergent = 2;
    }
  in
  let path = tmp_path ".json" in
  Campaign.State.save ~path st;
  (match Campaign.State.load ~path with
  | Ok st' -> checkb "state round-trips" true (st = st')
  | Error e -> Alcotest.failf "state load failed: %s" e);
  Sys.remove path

let state_mismatch_refused () =
  let state_path = tmp_path ".json" in
  let findings_path = tmp_path ".jsonl" in
  Campaign.State.save ~path:state_path
    (Campaign.State.fresh ~seed:1 ~iters:4 ~soundness_every:0
       ~fingerprint:"something else");
  let cfg =
    {
      (Campaign.Runner.default_config ~state_path ~findings_path) with
      Campaign.Runner.cfg_seed = 1;
      cfg_iters = 4;
    }
  in
  (match Campaign.Runner.run cfg with
  | exception Campaign.Runner.Resume_mismatch _ -> ()
  | _ -> Alcotest.fail "mismatched state file was not refused");
  Sys.remove state_path;
  if Sys.file_exists findings_path then Sys.remove findings_path

(* ---------- checkpoint/resume byte-identity ---------- *)

(* The campaign slice here covers suite benches 0..23, which includes
   the two known soundiness overfits (rigid-body1, kepler2) at seed 42 —
   so the feed is non-empty and the byte-identity check is meaningful. *)
let campaign_config ~state_path ~findings_path =
  {
    (Campaign.Runner.default_config ~state_path ~findings_path) with
    Campaign.Runner.cfg_seed = 42;
    cfg_iters = 24;
    cfg_soundness_every = 1;
    cfg_checkpoint_every = 5;
  }

let read_file path =
  if not (Sys.file_exists path) then ""
  else begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  end

let resume_byte_identity () =
  (* uninterrupted reference *)
  let st1 = tmp_path ".json" and f1 = tmp_path ".jsonl" in
  (match Campaign.Runner.run (campaign_config ~state_path:st1 ~findings_path:f1) with
  | Campaign.Runner.Completed _ -> ()
  | Campaign.Runner.Interrupted _ -> Alcotest.fail "reference run interrupted");
  (* interrupted after 9 tasks, then resumed *)
  let st2 = tmp_path ".json" and f2 = tmp_path ".jsonl" in
  let cfg2 = campaign_config ~state_path:st2 ~findings_path:f2 in
  let calls = ref 0 in
  let should_stop () =
    incr calls;
    !calls > 9
  in
  (match Campaign.Runner.run ~should_stop cfg2 with
  | Campaign.Runner.Interrupted st ->
      checki "stopped mid-stream" 9 st.Campaign.State.s_next
  | Campaign.Runner.Completed _ -> Alcotest.fail "expected an interrupt");
  (match Campaign.Runner.run cfg2 with
  | Campaign.Runner.Completed st ->
      checki "resumed to completion" 24 st.Campaign.State.s_next
  | Campaign.Runner.Interrupted _ -> Alcotest.fail "resume interrupted");
  let a = read_file f1 and b = read_file f2 in
  checkb "feed is non-empty" true (String.length a > 0);
  checks "merged findings feed byte-identical to uninterrupted run" a b;
  (* final states agree on everything *)
  let s1 =
    match Campaign.State.load ~path:st1 with Ok s -> s | Error e -> Alcotest.fail e
  in
  let s2 =
    match Campaign.State.load ~path:st2 with Ok s -> s | Error e -> Alcotest.fail e
  in
  checkb "final states identical" true (s1 = s2);
  List.iter Sys.remove [ st1; f1; st2; f2 ]

(* ---------- the regime slice ---------- *)

(* Every third index runs regime inference over the straight-line suite;
   benches 0..5 at seed 42 include three whose validation-gated fix
   ships, so the feed carries "regime" findings with a soundness
   verdict. The slice must survive interrupt+resume byte-identically
   just like the fuzz stream. *)
let regime_config ~state_path ~findings_path =
  {
    (Campaign.Runner.default_config ~state_path ~findings_path) with
    Campaign.Runner.cfg_seed = 42;
    cfg_iters = 18;
    cfg_regimes_every = 3;
    cfg_checkpoint_every = 4;
  }

let regime_slice_resume () =
  (* uninterrupted reference *)
  let st1 = tmp_path ".json" and f1 = tmp_path ".jsonl" in
  (match Campaign.Runner.run (regime_config ~state_path:st1 ~findings_path:f1) with
  | Campaign.Runner.Completed st ->
      checki "six regime checks" 6 st.Campaign.State.s_regime_checks;
      checkb "slice produced findings" true
        (st.Campaign.State.s_regime_findings > 0)
  | Campaign.Runner.Interrupted _ -> Alcotest.fail "reference run interrupted");
  (* interrupted between two regime indices, then resumed *)
  let st2 = tmp_path ".json" and f2 = tmp_path ".jsonl" in
  let cfg2 = regime_config ~state_path:st2 ~findings_path:f2 in
  let calls = ref 0 in
  let should_stop () =
    incr calls;
    !calls > 7
  in
  (match Campaign.Runner.run ~should_stop cfg2 with
  | Campaign.Runner.Interrupted st ->
      checki "stopped mid-stream" 7 st.Campaign.State.s_next
  | Campaign.Runner.Completed _ -> Alcotest.fail "expected an interrupt");
  (match Campaign.Runner.run cfg2 with
  | Campaign.Runner.Completed st ->
      checki "resumed to completion" 18 st.Campaign.State.s_next
  | Campaign.Runner.Interrupted _ -> Alcotest.fail "resume interrupted");
  let a = read_file f1 and b = read_file f2 in
  checkb "feed is non-empty" true (String.length a > 0);
  checks "merged regime feed byte-identical to uninterrupted run" a b;
  (* every finding in the feed is a regime finding with a verdict *)
  let fs = Campaign.Findings.load f1 in
  checkb "regime findings only" true
    (List.for_all (fun f -> f.Campaign.Findings.f_kind = "regime") fs);
  checkb "every finding carries the soundness verdict" true
    (List.for_all
       (fun f -> f.Campaign.Findings.f_regime_candidate <> None)
       fs);
  (* final states agree *)
  let s1 =
    match Campaign.State.load ~path:st1 with Ok s -> s | Error e -> Alcotest.fail e
  in
  let s2 =
    match Campaign.State.load ~path:st2 with Ok s -> s | Error e -> Alcotest.fail e
  in
  checkb "final states identical" true (s1 = s2);
  List.iter Sys.remove [ st1; f1; st2; f2 ]

(* when an index is both a soundiness and a regime index, soundiness
   wins — the two slices never double-book a stream index *)
let regime_precedence () =
  let st = tmp_path ".json" and f = tmp_path ".jsonl" in
  let cfg =
    {
      (Campaign.Runner.default_config ~state_path:st ~findings_path:f) with
      Campaign.Runner.cfg_seed = 42;
      cfg_iters = 12;
      cfg_soundness_every = 2;
      cfg_regimes_every = 2;
      cfg_checkpoint_every = 50;
    }
  in
  (match Campaign.Runner.run cfg with
  | Campaign.Runner.Completed st ->
      checki "soundiness takes every shared index" 6
        st.Campaign.State.s_soundness_checks;
      checki "regime slice got none" 0 st.Campaign.State.s_regime_checks
  | Campaign.Runner.Interrupted _ -> Alcotest.fail "run interrupted");
  List.iter (fun p -> if Sys.file_exists p then Sys.remove p) [ st; f ]

(* ---------- the soundiness oracle ---------- *)

(* resample contexts are disjoint from search contexts for any seed *)
let soundness_sampling () =
  let bench = Suite.find "intro-example" in
  let search = Rewrite.Soundness.samples_of_bench ~seed:42 ~n:8 bench in
  let again = Rewrite.Soundness.samples_of_bench ~seed:42 ~n:8 bench in
  let resample =
    Rewrite.Soundness.samples_of_bench
      ~seed:(Rewrite.Soundness.resample_seed 42)
      ~n:8 bench
  in
  checkb "sampling is deterministic" true (search = again);
  checkb "resample context is disjoint" true (search <> resample);
  checki "eight points" 8 (List.length search)

(* a seeded soundiness slice over the suite: every report is internally
   consistent, and the verdict matches the actual-error comparison *)
let soundness_slice () =
  let benches =
    [ "intro-example"; "x_by_xy"; "verhulst"; "kepler2"; "rigid-body1" ]
  in
  List.iteri
    (fun i name ->
      let bench = Suite.find name in
      let r =
        Rewrite.Soundness.check_bench ~points:12 ~depth:2
          ~seed:((42 * 1_000_003) + i)
          bench
      in
      checks "report names its bench" name r.Rewrite.Soundness.r_name;
      (match r.Rewrite.Soundness.r_rows with
      | [ o; im ] ->
          checks "row order" "original" o.Rewrite.Soundness.w_label;
          checks "row order" "improved" im.Rewrite.Soundness.w_label;
          checkb "verdict matches the actual comparison" true
            (r.Rewrite.Soundness.r_sound
            = (im.Rewrite.Soundness.w_actual <= o.Rewrite.Soundness.w_actual
              || im.Rewrite.Soundness.w_actual = infinity
                 && o.Rewrite.Soundness.w_actual = infinity))
      | _ -> Alcotest.fail "expected exactly two rows");
      (* the table renders the bench name and both error columns *)
      let table = Rewrite.Soundness.table r in
      let has sub =
        try
          ignore (Str.search_forward (Str.regexp_string sub) table 0);
          true
        with Not_found -> false
      in
      checkb "table mentions the bench" true (has name);
      checkb "table has predicted and actual columns" true
        (has "predicted" && has "actual"))
    benches

(* the campaign's soundiness slice is deterministic: the same (seed,
   index) always checks the same bench with the same verdict *)
let soundness_deterministic () =
  let bench = Suite.find "kepler2" in
  let r1 = Rewrite.Soundness.check_bench ~points:12 ~depth:2 ~seed:7 bench in
  let r2 = Rewrite.Soundness.check_bench ~points:12 ~depth:2 ~seed:7 bench in
  checkb "same seed, same report" true (r1 = r2)

let () =
  Alcotest.run "campaign"
    [
      ( "ingest",
        [
          Alcotest.test_case "directory corpus" `Quick ingest_dir;
          Alcotest.test_case "range extraction" `Quick ingest_ranges;
          Alcotest.test_case "datafile" `Quick ingest_datafile;
          Alcotest.test_case "truncated datafile" `Quick ingest_truncated;
          Alcotest.test_case "through the fleet" `Quick ingest_through_fleet;
        ] );
      ( "findings",
        [ Alcotest.test_case "jsonl round-trip" `Quick findings_roundtrip ] );
      ( "state",
        [
          Alcotest.test_case "round-trip" `Quick state_roundtrip;
          Alcotest.test_case "mismatch refused" `Quick state_mismatch_refused;
        ] );
      ( "resume",
        [
          Alcotest.test_case "byte-identical findings" `Quick
            resume_byte_identity;
        ] );
      ( "regimes",
        [
          Alcotest.test_case "slice resumes byte-identically" `Quick
            regime_slice_resume;
          Alcotest.test_case "soundiness wins shared indices" `Quick
            regime_precedence;
        ] );
      ( "soundiness",
        [
          Alcotest.test_case "sampling discipline" `Quick soundness_sampling;
          Alcotest.test_case "seeded slice" `Quick soundness_slice;
          Alcotest.test_case "deterministic" `Quick soundness_deterministic;
        ] );
    ]
