(* fpgrind.loadgen + the shard-mode shared cache: the HDR-style latency
   histogram, the deterministic open-loop request plan, mix parsing, the
   advisory-locked cross-shard cache file, and a short live loadgen run
   against an in-process server. *)

module Hist = Loadgen.Hist
module Cachefile = Serve.Cachefile

(* ---------- the latency histogram ---------- *)

let test_hist_basic () =
  let h = Hist.create () in
  Alcotest.(check int) "empty" 0 (Hist.count h);
  Alcotest.(check bool) "empty quantile is nan" true
    (Float.is_nan (Hist.quantile h 0.5));
  List.iter (Hist.record h) [ 0.001; 0.002; 0.003; 0.004 ];
  Alcotest.(check int) "count" 4 (Hist.count h);
  (* bucket upper edges have at most ~6% relative error (4 sub-bits) *)
  let near q expect =
    let v = Hist.quantile h q in
    Alcotest.(check bool)
      (Printf.sprintf "p%.0f ~ %g (got %g)" (q *. 100.0) expect v)
      true
      (v >= expect *. 0.99 && v <= expect *. 1.07)
  in
  near 0.25 0.001;
  near 0.50 0.002;
  near 1.0 0.004;
  Alcotest.(check bool) "mean in range" true
    (let m = Hist.mean h in
     m > 0.002 && m < 0.003);
  Alcotest.(check bool) "max recorded" true (Hist.max_value h >= 0.004)

let test_hist_merge () =
  let a = Hist.create () and b = Hist.create () in
  List.iter (Hist.record a) [ 0.010; 0.020 ];
  List.iter (Hist.record b) [ 0.030; 0.040 ];
  let m = Hist.create () in
  Hist.merge m a;
  Hist.merge m b;
  Alcotest.(check int) "merged count" 4 (Hist.count m);
  (* merging is bucket-wise addition, so quantiles of the merge equal
     quantiles of the union *)
  let u = Hist.create () in
  List.iter (Hist.record u) [ 0.010; 0.020; 0.030; 0.040 ];
  List.iter
    (fun q ->
      Alcotest.(check (float 1e-12))
        (Printf.sprintf "q=%g matches union" q)
        (Hist.quantile u q) (Hist.quantile m q))
    [ 0.25; 0.5; 0.75; 0.99 ]

let test_hist_extremes () =
  let h = Hist.create () in
  Hist.record h 0.0;
  Hist.record h (-1.0);  (* clamped, not dropped: a fast clock can tick backwards *)
  Hist.record h 1e9;  (* absurd latencies land in the top bucket, not outside *)
  Alcotest.(check int) "all recorded" 3 (Hist.count h);
  Alcotest.(check bool) "quantile finite" true
    (not (Float.is_nan (Hist.quantile h 0.99)))

(* ---------- the deterministic request plan ---------- *)

let test_plan_deterministic () =
  let cfg =
    {
      Loadgen.default_config with
      Loadgen.lg_rate = 40.0;
      lg_duration = 2.0;
      lg_seed = 7;
    }
  in
  let p1 = Loadgen.plan cfg and p2 = Loadgen.plan cfg in
  Alcotest.(check int) "rate * duration requests" 80 (Array.length p1);
  Array.iteri
    (fun i (s1 : Loadgen.spec) ->
      let s2 = p2.(i) in
      Alcotest.(check string) "path identical" s1.Loadgen.sp_path s2.Loadgen.sp_path;
      Alcotest.(check string) "body identical" s1.Loadgen.sp_body s2.Loadgen.sp_body)
    p1;
  (* a different seed is a different stream *)
  let p3 = Loadgen.plan { cfg with Loadgen.lg_seed = 8 } in
  Alcotest.(check bool) "seed changes the stream" true
    (Array.exists2 (fun (a : Loadgen.spec) (b : Loadgen.spec) ->
         a.Loadgen.sp_body <> b.Loadgen.sp_body)
       p1 p3);
  (* the mix is honored: an all-bench plan only posts bench: bodies *)
  let bench_only =
    Loadgen.plan { cfg with Loadgen.lg_mix = [ (1, Loadgen.Bench) ] }
  in
  Array.iter
    (fun (s : Loadgen.spec) ->
      Alcotest.(check bool) "bench body" true
        (String.length s.Loadgen.sp_body > 6
        && String.sub s.Loadgen.sp_body 0 6 = "bench:"))
    bench_only;
  (* generated programs print as parseable MiniC *)
  let minic_only =
    Loadgen.plan { cfg with Loadgen.lg_mix = [ (1, Loadgen.Minic) ] }
  in
  Array.iter
    (fun (s : Loadgen.spec) ->
      match Minic.parse ~file:"lg.mc" s.Loadgen.sp_body with
      | (_ : Minic.Ast.program) -> ()
      | exception Minic.Compile_error _ ->
          Alcotest.fail "generated body does not parse")
    minic_only

let test_mix_parsing () =
  Alcotest.(check string)
    "round trip" "bench=3,minic=1"
    (Loadgen.mix_to_string (Loadgen.mix_of_string "bench=3,minic=1"));
  Alcotest.(check string)
    "bare kind weighs 1" "minic=1"
    (Loadgen.mix_to_string (Loadgen.mix_of_string "minic"));
  Alcotest.(check string)
    "zero weights dropped" "bench=2"
    (Loadgen.mix_to_string (Loadgen.mix_of_string "bench=2,minic=0"));
  (match Loadgen.mix_of_string "bench=0,minic=0" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "all-zero mix accepted");
  match Loadgen.mix_of_string "quadrature=1" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "unknown mix kind accepted"

(* ---------- the cross-shard cache file ---------- *)

let ok_payload name =
  {
    Fleet.p_metrics =
      {
        Fleet.m_blocks = 1;
        m_stmts = 1;
        m_stmts_executed = 0;
        m_fp_ops = 0;
        m_trace_nodes = 0;
        m_traces_materialized = 0;
        m_spots = 0;
        m_causes = 0;
        m_compensations = 0;
        m_err_max = 0.0;
        m_escalations = 0;
        m_slice_stmts = 0;
      };
    p_summary = name ^ ": ok";
    p_report = "No floating-point problems found.\n";
    p_regime = None;
  }

let outcome ?(status = Fleet.Done) ~key name =
  {
    Fleet.o_name = name;
    o_group = "test";
    o_key = key;
    o_engine = "full";
    o_status = status;
    o_wall_s = 0.1;
    o_payload =
      (match status with Fleet.Failed _ -> None | _ -> Some (ok_payload name));
  }

let test_cachefile_cross_handle () =
  let path = Filename.temp_file "shardcache" ".jsonl" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      (* two handles stand in for two shard processes *)
      let a = Cachefile.create path and b = Cachefile.create path in
      Alcotest.(check bool) "miss before publish" true
        (Cachefile.lookup b "k1" = None);
      Cachefile.publish a (outcome ~key:"k1" "one");
      (match Cachefile.lookup b "k1" with
      | Some o -> Alcotest.(check string) "b sees a's record" "one" o.Fleet.o_name
      | None -> Alcotest.fail "publish not visible across handles");
      (* keyless and non-Done outcomes are not shared *)
      Cachefile.publish a (outcome ~key:"" "anon");
      Cachefile.publish a (outcome ~status:(Fleet.Failed "boom") ~key:"k2" "bad");
      Alcotest.(check bool) "failure not shared" true
        (Cachefile.lookup b "k2" = None);
      (* the file is a valid Fleet store: one Done record *)
      let records = Fleet.Store.load path in
      Alcotest.(check int) "store-compatible" 1 (List.length records))

let test_cachefile_torn_lines () =
  let path = Filename.temp_file "shardcache" ".jsonl" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let a = Cachefile.create path in
      Cachefile.publish a (outcome ~key:"k1" "one");
      let reader = Cachefile.create path in
      (* a shard SIGKILLed mid-write leaves a torn (newline-less) tail:
         the reader must keep everything before it and not consume it *)
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "{\"name\": \"torn";
      close_out oc;
      (match Cachefile.lookup reader "k1" with
      | Some _ -> ()
      | None -> Alcotest.fail "intact record lost to a torn tail");
      Alcotest.(check int) "torn tail not yet counted" 0
        (Cachefile.torn_total reader);
      (* more bytes arrive: the merged garbage line completes, is
         skipped and counted, and later records still index *)
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "garbage\n";
      close_out oc;
      Cachefile.publish a (outcome ~key:"k3" "three");
      (match Cachefile.lookup reader "k3" with
      | Some _ -> ()
      | None -> Alcotest.fail "record after garbage line not indexed");
      Alcotest.(check int) "garbage line counted" 1
        (Cachefile.torn_total reader))

(* ---------- a live open-loop run ---------- *)

let test_live_run () =
  let srv =
    Serve.Server.create
      { Serve.Server.default_config with port = 0; queue = 32; quiet = true }
  in
  let th = Thread.create Serve.Server.run srv in
  Fun.protect
    ~finally:(fun () ->
      Serve.Server.stop srv;
      Thread.join th)
    (fun () ->
      let cfg =
        {
          Loadgen.default_config with
          Loadgen.lg_port = Serve.Server.port srv;
          lg_rate = 40.0;
          lg_duration = 0.5;
          lg_conns = 2;
          lg_mix = [ (1, Loadgen.Bench) ];
          lg_iterations = 2;
        }
      in
      let r = Loadgen.run cfg in
      Alcotest.(check int) "all requests offered" 20 r.Loadgen.r_requests;
      Alcotest.(check int)
        "every request answered" 20
        (r.Loadgen.r_ok + r.Loadgen.r_throttled);
      Alcotest.(check int) "no 5xx" 0 r.Loadgen.r_errors_5xx;
      Alcotest.(check int) "no transport errors" 0 r.Loadgen.r_conn_errors;
      Alcotest.(check bool) "some succeeded" true (r.Loadgen.r_ok >= 1);
      Alcotest.(check int)
        "every completion has a latency sample" 20
        (Hist.count r.Loadgen.r_hist);
      (* the report JSON carries the latency story *)
      let j = Loadgen.to_json cfg r in
      let lat =
        match Fleet.Json.member "latency_ms" j with
        | Some (Fleet.Json.Obj kvs) -> kvs
        | _ -> Alcotest.fail "latency_ms missing"
      in
      List.iter
        (fun k ->
          match List.assoc_opt k lat with
          | Some (Fleet.Json.Num v) ->
              Alcotest.(check bool) (k ^ " positive") true (v > 0.0)
          | _ -> Alcotest.fail (k ^ " missing"))
        [ "p50"; "p90"; "p99"; "mean"; "max" ])

let () =
  Alcotest.run "loadgen"
    [
      ( "hist",
        [
          Alcotest.test_case "record and quantile" `Quick test_hist_basic;
          Alcotest.test_case "merge equals union" `Quick test_hist_merge;
          Alcotest.test_case "extreme values clamp" `Quick test_hist_extremes;
        ] );
      ( "plan",
        [
          Alcotest.test_case "same seed, same stream" `Quick
            test_plan_deterministic;
          Alcotest.test_case "mix parsing" `Quick test_mix_parsing;
        ] );
      ( "cachefile",
        [
          Alcotest.test_case "cross-handle publish" `Quick
            test_cachefile_cross_handle;
          Alcotest.test_case "torn lines tolerated" `Quick
            test_cachefile_torn_lines;
        ] );
      ( "live",
        [ Alcotest.test_case "open-loop run" `Quick test_live_run ] );
    ]
