(* fpgrind.serve: the analysis service end to end — Prometheus metrics
   rendering, torn-store recovery, deterministic pool backpressure, a
   live in-process server (byte-identity with the suite engine, cache
   hits, 503 overflow under concurrent load, graceful drain), and the
   CLI exit-code contract. *)

module Metrics = Serve.Metrics
module Server = Serve.Server
module Client = Serve.Client

let ok_payload name =
  {
    Fleet.p_metrics =
      {
        Fleet.m_blocks = 1;
        m_stmts = 1;
        m_stmts_executed = 0;
        m_fp_ops = 0;
        m_trace_nodes = 0;
        m_traces_materialized = 0;
        m_spots = 0;
        m_causes = 0;
        m_compensations = 0;
        m_err_max = 0.0;
        m_escalations = 0;
        m_slice_stmts = 0;
      };
    p_summary = name ^ ": ok";
    p_report = "No floating-point problems found.\n";
    p_regime = None;
  }

let outcome ?(status = Fleet.Done) ?(key = "") name =
  {
    Fleet.o_name = name;
    o_group = "test";
    o_key = key;
    o_engine = "full";
    o_status = status;
    o_wall_s = 0.1;
    o_payload = (match status with Fleet.Failed _ -> None | _ -> Some (ok_payload name));
  }

(* ---------- metrics rendering ---------- *)

let test_metrics_render () =
  let reg = Metrics.create () in
  let c =
    Metrics.counter reg ~labels:[ "endpoint" ] ~help:"requests" "t_requests_total"
  in
  let g = Metrics.gauge reg ~help:"depth" "t_depth" in
  let h =
    Metrics.histogram reg ~buckets:[| 0.1; 1.0 |] ~help:"seconds" "t_seconds"
  in
  Metrics.inc c [ "/analyze" ];
  Metrics.inc c [ "/analyze" ];
  Metrics.inc c [ "/healthz" ];
  Metrics.set g 3.0;
  Metrics.observe h 0.0625;
  Metrics.observe h 0.5;
  Metrics.observe h 5.0;
  let out = Metrics.render reg in
  let expect =
    "# HELP t_requests_total requests\n\
     # TYPE t_requests_total counter\n\
     t_requests_total{endpoint=\"/analyze\"} 2\n\
     t_requests_total{endpoint=\"/healthz\"} 1\n\
     # HELP t_depth depth\n\
     # TYPE t_depth gauge\n\
     t_depth 3\n\
     # HELP t_seconds seconds\n\
     # TYPE t_seconds histogram\n\
     t_seconds_bucket{le=\"0.1\"} 1\n\
     t_seconds_bucket{le=\"1\"} 2\n\
     t_seconds_bucket{le=\"+Inf\"} 3\n\
     t_seconds_sum 5.5625\n\
     t_seconds_count 3\n"
  in
  Alcotest.(check string) "exposition format" expect out

let test_metrics_escaping_and_validation () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg ~labels:[ "path" ] ~help:"h" "t_esc" in
  Metrics.inc c [ "a\"b\\c\nd" ];
  let out = Metrics.render reg in
  Alcotest.(check bool)
    "label value escaped" true
    (let needle = "t_esc{path=\"a\\\"b\\\\c\\nd\"} 1" in
     try
       ignore (Str.search_forward (Str.regexp_string needle) out 0);
       true
     with Not_found -> false);
  (match Metrics.counter reg ~help:"h" "bad-name" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "hyphenated metric name accepted");
  (match Metrics.counter reg ~help:"h" "t_esc" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate metric accepted");
  match Metrics.inc c ~by:(-1.0) [ "x" ] with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "negative counter increment accepted"

(* ---------- torn-store recovery ---------- *)

let test_store_truncated_tail () =
  let path = Filename.temp_file "serve_store" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Fleet.Store.save path [ outcome "a"; outcome "b" ];
      (* simulate a crash mid-append: a torn trailing record *)
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "{\"name\": \"torn";
      close_out oc;
      let before = Fleet.Store.corrupt_tail_total () in
      let outcomes, skipped = Fleet.Store.load_lenient path in
      Alcotest.(check int) "intact records kept" 2 (List.length outcomes);
      Alcotest.(check int) "one line skipped" 1 skipped;
      Alcotest.(check int)
        "skip counter advanced" (before + 1)
        (Fleet.Store.corrupt_tail_total ());
      Alcotest.(check int)
        "plain load uses the lenient path" 2
        (List.length (Fleet.Store.load path)))

let test_store_midfile_corruption_still_raises () =
  let path = Filename.temp_file "serve_store" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "{\"name\": \"torn\n";
      output_string oc
        (Fleet.Json.to_string (Fleet.Store.outcome_to_json (outcome "a")) ^ "\n");
      close_out oc;
      match Fleet.Store.load_lenient path with
      | exception (Fleet.Json.Parse_error _ | Failure _) -> ()
      | _ -> Alcotest.fail "mid-file corruption must not be skipped")

(* ---------- deterministic pool backpressure ---------- *)

let test_pool_backpressure () =
  let gate = Mutex.create () in
  Mutex.lock gate;
  let pool = Fleet.Pool.create ~queue:1 ~jobs:1 () in
  let spec name work =
    {
      Fleet.sp_name = name;
      sp_group = "test";
      sp_key = "";
      sp_engine = "full";
      sp_work = work;
    }
  in
  let blocker =
    spec "blocker" (fun ~tick:_ ->
        Mutex.lock gate;
        Mutex.unlock gate;
        ok_payload "blocker")
  in
  let quick = spec "quick" (fun ~tick:_ -> ok_payload "quick") in
  let t1 =
    match Fleet.Pool.submit pool blocker with
    | Some t -> t
    | None -> Alcotest.fail "empty pool refused a job"
  in
  (* wait until the blocker occupies the worker, so the queue state is
     deterministic: one running, capacity one *)
  let tries = ref 0 in
  while Fleet.Pool.in_flight pool < 1 && !tries < 500 do
    incr tries;
    Unix.sleepf 0.01
  done;
  Alcotest.(check int) "blocker running" 1 (Fleet.Pool.in_flight pool);
  let t2 =
    match Fleet.Pool.submit pool quick with
    | Some t -> t
    | None -> Alcotest.fail "queue with capacity refused a job"
  in
  Alcotest.(check int) "one job queued" 1 (Fleet.Pool.queue_depth pool);
  (match Fleet.Pool.submit pool quick with
  | None -> ()
  | Some _ -> Alcotest.fail "full queue accepted a job");
  Mutex.unlock gate;
  Alcotest.(check bool)
    "blocker completes" true
    ((Fleet.Pool.await pool t1).Fleet.o_status = Fleet.Done);
  Alcotest.(check bool)
    "queued job completes" true
    ((Fleet.Pool.await pool t2).Fleet.o_status = Fleet.Done);
  Fleet.Pool.drain pool;
  match Fleet.Pool.submit pool quick with
  | None -> ()
  | Some _ -> Alcotest.fail "drained pool accepted a job"

(* ---------- the live server ---------- *)

let start_server cfg =
  let srv = Server.create cfg in
  let th = Thread.create Server.run srv in
  (srv, th, Server.port srv)

let strip_volatile (j : Fleet.Json.t) : Fleet.Json.t =
  match j with
  | Fleet.Json.Obj kvs ->
      Fleet.Json.Obj (List.filter (fun (k, _) -> k <> "wall_s") kvs)
  | j -> j

let get port path = Client.request ~port ~meth:"GET" ~path ()
let post port path body = Client.request ~port ~meth:"POST" ~path ~body ()

(* a MiniC program that analyzes slowly enough to pile up the queue;
   [salt] makes each program's content hash distinct so none is a cache
   hit *)
let slow_minic ~salt ~iters =
  String.concat "\n"
    [
      "int main() {";
      Printf.sprintf "  double x = 1.0 + 0.000001 * %d.0;" salt;
      "  int i = 0;";
      Printf.sprintf "  while (i < %d) {" iters;
      "    x = x * 1.0000001 + 0.000001;";
      "    i = i + 1;";
      "  }";
      "  print(x);";
      "  return 0;";
      "}";
    ]

let test_server_end_to_end () =
  let srv, th, port =
    start_server { Server.default_config with port = 0; queue = 8; quiet = true }
  in
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      Thread.join th)
    (fun () ->
      (* health and routing *)
      let r = get port "/healthz" in
      Alcotest.(check int) "healthz status" 200 r.Client.c_status;
      Alcotest.(check string) "healthz body" "ok\n" r.Client.c_body;
      Alcotest.(check int) "unknown path" 404 (get port "/nope").Client.c_status;
      Alcotest.(check int)
        "wrong method" 405
        (get port "/analyze").Client.c_status;
      (* byte-identity with the suite engine, modulo wall time *)
      let q = "/analyze?iterations=4&seed=1&precision=128" in
      let r = post port q "bench:intro-example" in
      Alcotest.(check int) "analyze status" 200 r.Client.c_status;
      let job =
        List.hd
          (Fpcore.Suite.enumerate ~iterations:4 ~seed:1
             ~names:[ "intro-example" ] ())
      in
      let cfg = { Core.Config.default with Core.Config.precision = 128 } in
      let local = Fleet.exec_one (Fleet.bench_spec ~cfg job) in
      Alcotest.(check string)
        "response equals the engine's record (modulo wall_s)"
        (Fleet.Json.to_string
           (strip_volatile (Fleet.Store.outcome_to_json local)))
        (Fleet.Json.to_string
           (strip_volatile (Fleet.Json.of_string (String.trim r.Client.c_body))));
      (* the repeat is a cache hit *)
      let r2 = post port q "bench:intro-example" in
      Alcotest.(check int) "cached status" 200 r2.Client.c_status;
      Alcotest.(check string)
        "cached marker" "cached"
        (Fleet.Json.get_str "status"
           (Fleet.Json.of_string (String.trim r2.Client.c_body)));
      (* ad-hoc sources compile and analyze *)
      let r =
        post port "/analyze?precision=64&name=tiny.mc"
          "int main() { double x = 0.1 + 0.2; print(x); return 0; }"
      in
      Alcotest.(check int) "minic analyze" 200 r.Client.c_status;
      let r =
        post port "/analyze?precision=64&iterations=2&inputs=1.5"
          "(FPCore (x) (- (+ x 1) x))"
      in
      Alcotest.(check int) "fpcore analyze" 200 r.Client.c_status;
      (* the sanitizer engine has its own endpoint; records carry the tag *)
      let r =
        post port "/sanitize?name=san.mc"
          "int main() { double x = 0.1 + 0.2; print((x - 0.3) * 1e17); \
           return 0; }"
      in
      Alcotest.(check int) "sanitize status" 200 r.Client.c_status;
      Alcotest.(check string)
        "sanitize engine tag" "sanitize"
        (Fleet.Json.get_str "engine"
           (Fleet.Json.of_string (String.trim r.Client.c_body)));
      Alcotest.(check int)
        "bad engine name" 400
        (post port "/analyze?engine=quad" "bench:intro-example").Client.c_status;
      (* request rejection: all analysis-side 400s *)
      let bad path body =
        (post port path body).Client.c_status
      in
      Alcotest.(check int) "empty body" 400 (bad "/analyze" "");
      Alcotest.(check int)
        "unknown benchmark" 400 (bad "/analyze" "bench:no-such-bench");
      Alcotest.(check int)
        "iterations out of range" 400
        (bad "/analyze?iterations=0" "bench:intro-example");
      Alcotest.(check int)
        "precision out of range" 400
        (bad "/analyze?precision=10" "bench:intro-example");
      Alcotest.(check int)
        "minic that does not compile" 400 (bad "/analyze" "int main( {");
      Alcotest.(check int)
        "fpcore that does not parse" 400 (bad "/analyze" "(FPCore (x)");
      (* the scrape reflects what just happened *)
      let m = (get port "/metrics").Client.c_body in
      let has needle =
        try
          ignore (Str.search_forward (Str.regexp_string needle) m 0);
          true
        with Not_found -> false
      in
      Alcotest.(check bool)
        "request counter by endpoint and status" true
        (has "fpgrind_http_requests_total{endpoint=\"/analyze\",status=\"200\"} 4");
      Alcotest.(check bool) "cache hit counted" true
        (has "fpgrind_cache_hits_total 1");
      Alcotest.(check bool) "rejection counter exposed" true
        (has "fpgrind_rejected_total 0");
      Alcotest.(check bool) "sanitize jobs counted" true
        (has "fpgrind_sanitize_jobs_total{status=\"ok\"} 1");
      (* 4 jobs through the pool, plus the in-process exec_one above —
         the engine observer is global, so it sees that one too *)
      Alcotest.(check bool) "fleet jobs observed" true
        (has "fpgrind_fleet_jobs_total{status=\"ok\"} 5");
      (* the serve-v2 gauges: the metrics scrape itself is the one open
         connection; no limiter and no shards are configured, but both
         series must still be materialized at zero *)
      Alcotest.(check bool) "active connections gauge" true
        (has "fpgrind_active_connections 1");
      Alcotest.(check bool) "rate-limit counter materialized" true
        (has "fpgrind_ratelimited_total 0");
      Alcotest.(check bool) "shard restarts gauge" true
        (has "fpgrind_shard_restarts_total 0");
      (* the request-latency histogram renders cumulative buckets:
         every count is <= the next, ending at +Inf *)
      let bucket_counts =
        let re =
          Str.regexp
            "fpgrind_http_request_seconds_bucket{endpoint=\"/analyze\",le=\"\\([^\"]+\\)\"} \\([0-9]+\\)"
        in
        let rec go pos acc =
          match Str.search_forward re m pos with
          | pos ->
              let le = Str.matched_group 1 m in
              let n = int_of_string (Str.matched_group 2 m) in
              go (pos + 1) ((le, n) :: acc)
          | exception Not_found -> List.rev acc
        in
        go 0 []
      in
      Alcotest.(check bool)
        "latency histogram has buckets" true
        (List.length bucket_counts > 1);
      Alcotest.(check string)
        "last bucket is +Inf" "+Inf"
        (fst (List.nth bucket_counts (List.length bucket_counts - 1)));
      let counts = List.map snd bucket_counts in
      Alcotest.(check bool)
        "bucket counts are cumulative" true
        (List.for_all2 ( <= )
           (List.filteri (fun i _ -> i < List.length counts - 1) counts)
           (List.tl counts));
      Alcotest.(check bool)
        "+Inf bucket saw every /analyze request" true
        (List.nth counts (List.length counts - 1) >= 4))

(* ---------- keep-alive end to end ---------- *)

let test_server_keepalive () =
  let srv, th, port =
    start_server { Server.default_config with port = 0; queue = 8; quiet = true }
  in
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      Thread.join th)
    (fun () ->
      let conn = Client.connect ~port () in
      Fun.protect
        ~finally:(fun () -> Client.close conn)
        (fun () ->
          let req ?body meth path =
            Client.request_conn conn ~meth ~path ?body ()
          in
          (* several requests down one connection *)
          let h = req "GET" "/healthz" in
          Alcotest.(check int) "healthz over keep-alive" 200 h.Client.c_status;
          Alcotest.(check (option string))
            "server keeps the connection open" (Some "keep-alive")
            (List.assoc_opt "connection" h.Client.c_headers);
          (* /analyze under keep-alive is byte-identical to the engine's
             own record, modulo wall_s — same contract as one-shot *)
          let q = "/analyze?iterations=4&seed=1&precision=128" in
          let r = req "POST" q ~body:"bench:intro-example" in
          Alcotest.(check int) "analyze status" 200 r.Client.c_status;
          let job =
            List.hd
              (Fpcore.Suite.enumerate ~iterations:4 ~seed:1
                 ~names:[ "intro-example" ] ())
          in
          let cfg = { Core.Config.default with Core.Config.precision = 128 } in
          let local = Fleet.exec_one (Fleet.bench_spec ~cfg job) in
          Alcotest.(check string)
            "keep-alive response equals the engine's record (modulo wall_s)"
            (Fleet.Json.to_string
               (strip_volatile (Fleet.Store.outcome_to_json local)))
            (Fleet.Json.to_string
               (strip_volatile
                  (Fleet.Json.of_string (String.trim r.Client.c_body))));
          (* the repeat on the same connection is a cache hit *)
          let r2 = req "POST" q ~body:"bench:intro-example" in
          Alcotest.(check string)
            "second request on the same connection is cached" "cached"
            (Fleet.Json.get_str "status"
               (Fleet.Json.of_string (String.trim r2.Client.c_body)));
          (* the scrape sees exactly one open connection: ours *)
          let m = (req "GET" "/metrics").Client.c_body in
          Alcotest.(check bool)
            "one active connection" true
            (try
               ignore
                 (Str.search_forward
                    (Str.regexp_string "fpgrind_active_connections 1")
                    m 0);
               true
             with Not_found -> false)))

(* ---------- per-client rate limiting ---------- *)

let test_server_ratelimit () =
  (* burst of 2 tokens refilling at 1/s: a salvo of six quick POSTs gets
     roughly two through and the rest 503 with Retry-After; GETs and the
     metrics scrape never pay tokens *)
  let srv, th, port =
    start_server
      {
        Server.default_config with
        port = 0;
        queue = 8;
        quiet = true;
        rate_limit = Some 1.0;
        rate_burst = 2;
      }
  in
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      Thread.join th)
    (fun () ->
      let conn = Client.connect ~port () in
      Fun.protect
        ~finally:(fun () -> Client.close conn)
        (fun () ->
          let statuses =
            List.init 6 (fun _ ->
                Client.request_conn conn ~meth:"POST"
                  ~path:"/analyze?iterations=2&precision=64"
                  ~body:"bench:intro-example" ())
          in
          let ok =
            List.length
              (List.filter (fun r -> r.Client.c_status = 200) statuses)
          in
          let limited =
            List.filter (fun r -> r.Client.c_status = 503) statuses
          in
          Alcotest.(check bool) "some admitted" true (ok >= 1);
          Alcotest.(check bool) "some limited" true (List.length limited >= 1);
          Alcotest.(check int)
            "everything answered" 6
            (ok + List.length limited);
          List.iter
            (fun r ->
              match List.assoc_opt "retry-after" r.Client.c_headers with
              | Some s when int_of_string s >= 1 -> ()
              | _ -> Alcotest.fail "limited response lacks retry-after")
            limited;
          (* reads are free *)
          List.iter
            (fun _ ->
              Alcotest.(check int)
                "GET is never limited" 200
                (Client.request_conn conn ~meth:"GET" ~path:"/healthz" ())
                  .Client.c_status)
            [ (); (); (); () ];
          let m =
            (Client.request_conn conn ~meth:"GET" ~path:"/metrics" ())
              .Client.c_body
          in
          let count =
            let re = Str.regexp "fpgrind_ratelimited_total \\([0-9]+\\)" in
            ignore (Str.search_forward re m 0);
            int_of_string (Str.matched_group 1 m)
          in
          Alcotest.(check int)
            "every 503 counted" (List.length limited) count))

let test_server_backpressure () =
  (* one worker, queue depth 2, eight concurrent slow requests: at most
     three can be accepted (one running + two queued); the rest must be
     refused with 503 + Retry-After, and every accepted one completes *)
  let srv, th, port =
    start_server
      { Server.default_config with port = 0; jobs = 1; queue = 2; quiet = true }
  in
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      Thread.join th)
    (fun () ->
      let n = 8 in
      let results = Array.make n (-1) in
      let retry_after = ref false in
      let mu = Mutex.create () in
      let threads =
        List.init n (fun i ->
            Thread.create
              (fun i ->
                let r =
                  post port "/analyze?precision=64"
                    (slow_minic ~salt:i ~iters:150000)
                in
                Mutex.lock mu;
                results.(i) <- r.Client.c_status;
                if List.assoc_opt "retry-after" r.Client.c_headers = Some "1"
                then retry_after := true;
                Mutex.unlock mu)
              i)
      in
      List.iter Thread.join threads;
      let count s = Array.fold_left (fun a r -> if r = s then a + 1 else a) 0 results in
      let ok = count 200 and rejected = count 503 in
      Alcotest.(check int) "every request answered" n (ok + rejected);
      Alcotest.(check bool) "some accepted" true (ok >= 1);
      Alcotest.(check bool) "some refused" true (rejected >= 1);
      Alcotest.(check bool)
        "accepted bounded by worker + queue" true (ok <= 3);
      Alcotest.(check bool) "503 carries retry-after" true !retry_after)

let test_server_shutdown_drains () =
  let store = Filename.temp_file "serve_drain" ".jsonl" in
  Sys.remove store;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists store then Sys.remove store)
    (fun () ->
      let srv, th, port =
        start_server
          {
            Server.default_config with
            port = 0;
            jobs = 1;
            queue = 4;
            store_path = Some store;
            quiet = true;
          }
      in
      let status = ref (-1) in
      let poster =
        Thread.create
          (fun () ->
            let r =
              post port "/analyze?precision=64" (slow_minic ~salt:0 ~iters:60000)
            in
            status := r.Client.c_status)
          ()
      in
      (* let the request get in flight, then ask for shutdown *)
      Unix.sleepf 0.15;
      Server.stop srv;
      Thread.join th;
      Thread.join poster;
      Alcotest.(check int) "in-flight request completed" 200 !status;
      Alcotest.(check int)
        "store flushed on drain" 1
        (List.length (Fleet.Store.load store));
      match Client.request ~port ~meth:"GET" ~path:"/healthz" () with
      | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> ()
      | exception _ -> ()
      | _ -> Alcotest.fail "drained server still accepts connections")

(* ---------- CLI exit codes ---------- *)

(* dune runtest runs us inside _build/default/test; a by-hand
   `dune exec test/test_serve.exe` runs from the project root *)
let cli =
  List.find Sys.file_exists
    [ "../bin/fpgrind_cli.exe"; "_build/default/bin/fpgrind_cli.exe" ]

let run_cli args = Sys.command (cli ^ " " ^ args ^ " >/dev/null 2>&1")

let test_validate_exit_codes () =
  let path = Filename.temp_file "serve_cli" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Fleet.Store.save path [ outcome "a"; outcome "b" ];
      Alcotest.(check int) "clean store" 0 (run_cli ("validate " ^ path));
      Fleet.Store.save path
        [ outcome "a"; outcome ~status:(Fleet.Failed "boom") "b" ];
      Alcotest.(check int) "failed record" 1 (run_cli ("validate " ^ path));
      Fleet.Store.save path [ outcome "a"; outcome ~status:Fleet.Timed_out "b" ];
      Alcotest.(check int) "timeout record" 1 (run_cli ("validate " ^ path));
      Fleet.Store.save path [ outcome "a" ];
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "{\"name\": \"torn";
      close_out oc;
      Alcotest.(check int) "truncated tail" 1 (run_cli ("validate " ^ path)))

(* /analyze?regimes=1 runs regime inference after the engine pass,
   annotates the record with the branch structure, keeps a separate
   cache entry from the plain analysis, and feeds the regime metrics *)
let test_server_regimes () =
  let srv, th, port =
    start_server { Server.default_config with port = 0; queue = 8; quiet = true }
  in
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      Thread.join th)
    (fun () ->
      let q = "/analyze?iterations=2&seed=42&precision=64" in
      (* plain analysis first: no regime fields on the record *)
      let plain = post port q "bench:quadratic-full" in
      Alcotest.(check int) "plain status" 200 plain.Client.c_status;
      let pj = Fleet.Json.of_string (String.trim plain.Client.c_body) in
      Alcotest.(check bool)
        "plain record has no regime fields" true
        (Fleet.Json.member "regimes" pj = None);
      (* regime-annotated analysis is a distinct cache entry, not a hit *)
      let r = post port (q ^ "&regimes=1") "bench:quadratic-full" in
      Alcotest.(check int) "regimes status" 200 r.Client.c_status;
      let j = Fleet.Json.of_string (String.trim r.Client.c_body) in
      Alcotest.(check string)
        "regime run is fresh, not the plain cache entry" "ok"
        (Fleet.Json.get_str "status" j);
      Alcotest.(check bool)
        "quadratic-full branches into >= 2 regimes" true
        (Fleet.Json.get_int "regimes" j >= 2);
      Alcotest.(check bool)
        "thresholds present" true
        (match Fleet.Json.member "thresholds" j with
        | Some (Fleet.Json.Arr (_ :: _)) -> true
        | _ -> false);
      Alcotest.(check bool)
        "error table rendered" true
        (String.length (Fleet.Json.get_str "error_table" j) > 0);
      (* record round-trips through the store parser with regime intact *)
      let o = Fleet.Store.outcome_of_json j in
      (match o.Fleet.o_payload with
      | Some { Fleet.p_regime = Some rs; _ } ->
          Alcotest.(check bool) "summary regimes" true (rs.Fleet.rs_regimes >= 2);
          Alcotest.(check bool)
            "summary search points" true
            (rs.Fleet.rs_search_points > 0)
      | _ -> Alcotest.fail "store parser dropped the regime summary");
      (* the scrape carries both regime counters *)
      let m = (get port "/metrics").Client.c_body in
      let counter name =
        let re = Str.regexp (Str.quote name ^ " \\([0-9.]+\\)") in
        ignore (Str.search_forward re m 0);
        float_of_string (Str.matched_group 1 m)
      in
      Alcotest.(check bool)
        "regimes inferred counted" true
        (counter "fpgrind_regimes_inferred_total" >= 2.0);
      Alcotest.(check bool)
        "search points counted" true
        (counter "fpgrind_regime_search_points_total" > 0.0))

let test_suite_strict_exit_codes () =
  let base = "suite intro-example --iterations 1 --precision 64 --timeout 0.000001 --quiet" in
  Alcotest.(check int) "timeouts fail under --strict" 1
    (run_cli (base ^ " --strict"));
  Alcotest.(check int) "timeouts pass without --strict" 0 (run_cli base)

let () =
  Alcotest.run "serve"
    [
      ( "metrics",
        [
          Alcotest.test_case "exposition format" `Quick test_metrics_render;
          Alcotest.test_case "escaping and validation" `Quick
            test_metrics_escaping_and_validation;
        ] );
      ( "store",
        [
          Alcotest.test_case "truncated tail tolerated" `Quick
            test_store_truncated_tail;
          Alcotest.test_case "mid-file corruption raises" `Quick
            test_store_midfile_corruption_still_raises;
        ] );
      ( "pool",
        [ Alcotest.test_case "bounded queue" `Quick test_pool_backpressure ] );
      ( "server",
        [
          Alcotest.test_case "end to end" `Quick test_server_end_to_end;
          Alcotest.test_case "keep-alive end to end" `Quick
            test_server_keepalive;
          Alcotest.test_case "per-client rate limit" `Quick
            test_server_ratelimit;
          Alcotest.test_case "backpressure under load" `Quick
            test_server_backpressure;
          Alcotest.test_case "shutdown drains" `Quick test_server_shutdown_drains;
          Alcotest.test_case "regime inference endpoint" `Quick
            test_server_regimes;
        ] );
      ( "cli",
        [
          Alcotest.test_case "validate exit codes" `Quick
            test_validate_exit_codes;
          Alcotest.test_case "suite --strict exit codes" `Quick
            test_suite_strict_exit_codes;
        ] );
    ]
