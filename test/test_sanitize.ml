(* Tests of the fpgrind.sanitize subsystem: the double-double kernel
   against the 128-bit Bigfloat reference (seeded QCheck properties over
   bit-uniform doubles, plus explicit subnormal/overflow/nan cases), the
   integer conversion helpers, and the shadow executor itself — findings
   on a known-bad program, silence on a clean one, transparency against
   the uninstrumented machine, and fatal mode. *)

module B = Bignum.Bigfloat
module TF = Sanitize.Twofloat

let checkb = Alcotest.check Alcotest.bool

(* ---------- the dd kernel vs the Bigfloat reference ---------- *)

(* the dd pair hi + lo is exact in <= ~110 bits, so a 256-bit add
   renders it exactly *)
let b_of_dd (d : TF.t) =
  B.add ~prec:256 (B.of_float d.TF.hi) (B.of_float d.TF.lo)

(* relative error bound for the accurate dd algorithms: the published
   bounds (Joldes/Muller/Popescu) are a few units in 2^-106; 2^-100
   leaves slack for the composed fma *)
let dd_rel_bound = B.mul_2exp B.one (-100)

let dd_close (reference : B.t) (dd : TF.t) : bool =
  if B.is_nan reference then TF.is_nan dd
  else if B.is_inf reference || B.is_zero reference then
    TF.to_float dd = B.to_float reference
  else begin
    let diff = B.abs (B.sub ~prec:256 (b_of_dd dd) reference) in
    B.le diff (B.mul ~prec:256 (B.abs reference) dd_rel_bound)
  end

(* draw raw bit patterns so exponents are uniform, not clustered *)
let gen_bits_float : float QCheck.Gen.t =
  QCheck.Gen.map
    (fun (hi, lo) ->
      Int64.float_of_bits
        (Int64.logor
           (Int64.shift_left (Int64.of_int hi) 32)
           (Int64.logand (Int64.of_int lo) 0xFFFFFFFFL)))
    QCheck.Gen.(pair (int_bound 0xFFFFFFFF) (int_bound 0xFFFFFFFF))

let arb_bits_float = QCheck.make ~print:(Printf.sprintf "%h") gen_bits_float

(* keep magnitudes where the dd error bounds hold: away from overflow
   and from the subnormal range where the low word loses bits *)
let comfy x = x = 0.0 || (Float.is_finite x && Float.abs x >= 0x1p-400 && Float.abs x <= 0x1p400)

let kernel_tests =
  let check2 name dd_fn ref_fn =
    QCheck.Test.make
      ~name:(Printf.sprintf "dd %s within 2^-100 of 128-bit bigfloat" name)
      ~count:500
      QCheck.(pair arb_bits_float arb_bits_float)
      (fun (x, y) ->
        if not (comfy x && comfy y) then true
        else begin
          let dd = dd_fn (TF.of_float x) (TF.of_float y) in
          let reference = ref_fn (B.of_float x) (B.of_float y) in
          dd_close reference dd
          || QCheck.Test.fail_reportf "%s %h %h: dd %h + %h vs ref %s" name x
               y dd.TF.hi dd.TF.lo
               (B.to_decimal_string ~digits:40 reference)
        end)
  in
  [
    check2 "add" TF.add (B.add ~prec:128);
    check2 "sub" TF.sub (B.sub ~prec:128);
    check2 "mul" TF.mul (B.mul ~prec:128);
    check2 "div" TF.div (B.div ~prec:128);
    QCheck.Test.make ~name:"dd sqrt within 2^-100 of 128-bit bigfloat"
      ~count:500 arb_bits_float
      (fun x ->
        if not (comfy x) then true
        else begin
          let dd = TF.sqrt (TF.of_float x) in
          let reference = B.sqrt ~prec:128 (B.of_float x) in
          dd_close reference dd
          || QCheck.Test.fail_reportf "sqrt %h: dd %h + %h" x dd.TF.hi
               dd.TF.lo
        end);
    QCheck.Test.make ~name:"dd fma within 2^-100 of 128-bit bigfloat"
      ~count:500
      QCheck.(triple arb_bits_float arb_bits_float arb_bits_float)
      (fun (x, y, z) ->
        if not (comfy x && comfy y && comfy z) then true
        else begin
          let dd = TF.fma (TF.of_float x) (TF.of_float y) (TF.of_float z) in
          let reference =
            B.add ~prec:128 (B.mul ~prec:200 (B.of_float x) (B.of_float y))
              (B.of_float z)
          in
          dd_close reference dd
          || QCheck.Test.fail_reportf "fma %h %h %h: dd %h + %h" x y z
               dd.TF.hi dd.TF.lo
        end);
  ]

(* ---------- explicit edge cases ---------- *)

let subnormal_cases () =
  (* in the subnormal range the kernel degrades to plain double
     precision: the head must still equal the native result exactly *)
  let a = Int64.float_of_bits 0x0000000000000003L in
  let b = Int64.float_of_bits 0x0000000000000007L in
  Alcotest.(check (float 0.0))
    "subnormal add head" (a +. b)
    (TF.to_float (TF.add (TF.of_float a) (TF.of_float b)));
  Alcotest.(check (float 0.0))
    "subnormal mul head is zero" (a *. b)
    (TF.to_float (TF.mul (TF.of_float a) (TF.of_float b)));
  let tiny = Int64.float_of_bits 0x0010000000000000L (* smallest normal *) in
  Alcotest.(check (float 0.0))
    "normal/subnormal boundary div" (tiny /. 2.0)
    (TF.to_float (TF.div (TF.of_float tiny) (TF.of_float 2.0)))

let overflow_cases () =
  let huge = TF.of_float Float.max_float in
  let sum = TF.add huge huge in
  checkb "overflowing add is +inf" true (TF.to_float sum = Float.infinity);
  checkb "overflow drops the low word" true (sum.TF.lo = 0.0);
  let prod = TF.mul huge huge in
  checkb "overflowing mul is +inf" true (TF.to_float prod = Float.infinity);
  checkb "inf / inf is nan" true (TF.is_nan (TF.div prod sum));
  checkb "div by zero is inf" true
    (TF.to_float (TF.div (TF.of_float 1.0) TF.zero) = Float.infinity);
  (* a finite head quotient with an infinite divisor must not let the
     long-division remainder (inf * 0 = nan) poison the result *)
  checkb "finite / inf is zero" true
    (TF.to_float (TF.div (TF.of_float 2.0) prod) = 0.0);
  checkb "finite / -inf is -zero" true
    (1.0 /. TF.to_float (TF.div (TF.of_float 2.0) (TF.neg prod))
    = Float.neg_infinity);
  checkb "sqrt inf is inf" true
    (TF.to_float (TF.sqrt prod) = Float.infinity)

let nan_cases () =
  let n = TF.of_float Float.nan in
  checkb "nan normalizes its low word" true (n.TF.lo = 0.0);
  checkb "nan propagates through add" true (TF.is_nan (TF.add n (TF.of_float 1.0)));
  checkb "nan propagates through mul" true (TF.is_nan (TF.mul (TF.of_float 2.0) n));
  checkb "sqrt of negative is nan" true (TF.is_nan (TF.sqrt (TF.of_float (-4.0))));
  checkb "nan compares false" false (TF.lt n (TF.of_float 1.0));
  checkb "nan eq nan is false" false (TF.eq n n)

let to_int64_cases () =
  let check_i64 name expect got =
    Alcotest.(check (option int64)) name expect got
  in
  check_i64 "trunc positive" (Some 3L)
    (TF.to_int64 ~rn:false (TF.of_float 3.7));
  check_i64 "trunc negative toward zero" (Some (-3L))
    (TF.to_int64 ~rn:false (TF.of_float (-3.7)));
  check_i64 "round half away" (Some 4L) (TF.to_int64 ~rn:true (TF.of_float 3.5));
  check_i64 "round negative half away" (Some (-4L))
    (TF.to_int64 ~rn:true (TF.of_float (-3.5)));
  (* the dd-only cases: a low word crossing the integer boundary *)
  let just_below_5 = TF.add (TF.of_float 5.0) (TF.of_float (-1e-20)) in
  check_i64 "dd low word crosses trunc boundary" (Some 4L)
    (TF.to_int64 ~rn:false just_below_5);
  check_i64 "dd low word keeps round boundary" (Some 5L)
    (TF.to_int64 ~rn:true just_below_5);
  let just_below_half = TF.add (TF.of_float 0.5) (TF.of_float (-1e-20)) in
  check_i64 "dd low word crosses round boundary" (Some 0L)
    (TF.to_int64 ~rn:true just_below_half);
  check_i64 "non-finite is None" None
    (TF.to_int64 ~rn:false (TF.of_float Float.infinity));
  check_i64 "out of range is None" None
    (TF.to_int64 ~rn:false (TF.of_float 0x1p62));
  check_i64 "int64 round-trips" (Some 123456789123456789L)
    (TF.to_int64 ~rn:false (TF.of_int64 123456789123456789L))

(* ---------- the shadow executor ---------- *)

let compile src = Minic.compile ~file:"test.mc" src

let bad_src =
  {|
int main() {
  double x = 0.1;
  double big = 1e16;
  double y = (x + big) - big;
  print(y);
  return 0;
}
|}

let clean_src =
  {|
int main() {
  double x = 2.0;
  double y = x * 3.0 + 1.5;
  print(y);
  return 0;
}
|}

let sanitize_finds_cancellation () =
  let r = Sanitize.Sexec.run Core.Config.default (compile bad_src) in
  let rep = Sanitize.Report.build r in
  checkb "at least one finding fired" true (rep.Sanitize.Report.findings <> []);
  checkb "an output check fired" true
    (List.exists
       (fun f -> f.Sanitize.Sexec.f_kind = Sanitize.Sexec.Check_output)
       rep.Sanitize.Report.findings)

let sanitize_clean_program () =
  let r = Sanitize.Sexec.run Core.Config.default (compile clean_src) in
  let rep = Sanitize.Report.build r in
  Alcotest.(check int)
    "no findings" 0
    (List.length rep.Sanitize.Report.findings);
  checkb "but checks did run" true (r.Sanitize.Sexec.sx_stats.Sanitize.Sexec.checks_run > 0)

(* the sanitizer is transparent: its outputs are bit-identical to the
   uninstrumented machine's (the fuzz oracle holds this across the whole
   generator surface; this is the direct unit-level check) *)
let sanitize_transparent () =
  let obs (outs : Vex.Machine.output list) =
    List.map
      (fun (o : Vex.Machine.output) ->
        (o.Vex.Machine.stmt_id, Vex.Value.to_string o.Vex.Machine.value))
      outs
  in
  List.iter
    (fun (name, src, inputs) ->
      let prog = compile src in
      let m = Vex.Machine.run ~inputs prog in
      let s = Sanitize.Sexec.run ~inputs Core.Config.default prog in
      Alcotest.(check (list (pair int string)))
        name
        (obs (Vex.Machine.outputs m))
        (obs (Sanitize.Sexec.outputs s)))
    [
      ("bad", bad_src, [||]);
      ("clean", clean_src, [||]);
      ( "loop with args",
        {|
int main() {
  double s = 0.0;
  for (int i = 0; i < 40; i = i + 1) {
    s = s + __arg(i) / 7.0;
  }
  print(s);
  print((double) (s < 1.0));
  int k = (int) (s * 3.0);
  print((double) k);
  return 0;
}
|},
        [| 0.25; -1.5; 3.25 |] );
    ]

let sanitize_fatal_mode () =
  match Sanitize.Sexec.run ~fatal:true Core.Config.default (compile bad_src) with
  | _ -> Alcotest.fail "expected Fatal_finding"
  | exception Sanitize.Sexec.Fatal_finding f ->
      checkb "fatal finding carries bits" true (f.Sanitize.Sexec.f_bits_max > 5.0)

let () =
  Alcotest.run "sanitize"
    [
      ( "twofloat",
        (* seeded per-test so `dune runtest` is deterministic; set
           QCHECK_SEED to explore a different stream *)
        List.mapi
          (fun i t ->
            let base =
              try int_of_string (Sys.getenv "QCHECK_SEED") with _ -> 0x5eed
            in
            QCheck_alcotest.to_alcotest
              ~rand:(Random.State.make [| base; i |])
              t)
          kernel_tests );
      ( "edge cases",
        [
          Alcotest.test_case "subnormals degrade to double" `Quick
            subnormal_cases;
          Alcotest.test_case "overflow propagates inf" `Quick overflow_cases;
          Alcotest.test_case "nan propagation" `Quick nan_cases;
          Alcotest.test_case "integer conversion" `Quick to_int64_cases;
        ] );
      ( "executor",
        [
          Alcotest.test_case "flags catastrophic cancellation" `Quick
            sanitize_finds_cancellation;
          Alcotest.test_case "silent on a clean program" `Quick
            sanitize_clean_program;
          Alcotest.test_case "transparent vs the machine" `Quick
            sanitize_transparent;
          Alcotest.test_case "fatal mode raises" `Quick sanitize_fatal_mode;
        ] );
    ]
