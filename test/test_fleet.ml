(* fpgrind.fleet: the parallel batch-analysis engine.

   Covers the fault-isolation contract (a raising job and a timed-out
   job become structured outcomes, the rest of the fleet completes), the
   determinism contract (-j 4 output equals -j 1 output), the JSONL
   store round trip, and the content-hash result cache. *)

let ok_payload name =
  {
    Fleet.p_metrics =
      {
        Fleet.m_blocks = 1;
        m_stmts = 1;
        m_stmts_executed = 0;
        m_fp_ops = 0;
        m_trace_nodes = 0;
        m_traces_materialized = 0;
        m_spots = 0;
        m_causes = 0;
        m_compensations = 0;
        m_err_max = 0.0;
        m_escalations = 0;
        m_slice_stmts = 0;
      };
    p_summary = name ^ ": ok";
    p_report = "No floating-point problems found.\n";
    p_regime = None;
  }

let spec name work =
  {
    Fleet.sp_name = name;
    sp_group = "test";
    sp_key = "";
    sp_engine = "full";
    sp_work = work;
  }

(* ---------- fault isolation ---------- *)

let test_fault_isolation () =
  let specs =
    [
      spec "good-1" (fun ~tick:_ -> ok_payload "good-1");
      spec "raises" (fun ~tick:_ -> failwith "injected failure");
      (* spins on the tick the way a diverging benchmark would; the
         deadline below is already expired when the job starts, so the
         first checked tick raises *)
      spec "diverges" (fun ~tick ->
          while true do
            tick ()
          done;
          assert false);
      spec "good-2" (fun ~tick:_ -> ok_payload "good-2");
    ]
  in
  let outcomes = Fleet.run ~jobs:2 ~timeout:0.0 specs in
  Alcotest.(check int) "all jobs reported" 4 (List.length outcomes);
  Alcotest.(check (list string))
    "submission order preserved"
    [ "good-1"; "raises"; "diverges"; "good-2" ]
    (List.map (fun (o : Fleet.outcome) -> o.Fleet.o_name) outcomes);
  let status name =
    (List.find (fun (o : Fleet.outcome) -> o.Fleet.o_name = name) outcomes)
      .Fleet.o_status
  in
  (match status "raises" with
  | Fleet.Failed msg ->
      Alcotest.(check bool)
        "failure message captured" true
        (let re = Str.regexp_string "injected failure" in
         try
           ignore (Str.search_forward re msg 0);
           true
         with Not_found -> false)
  | _ -> Alcotest.fail "raising job not marked failed");
  (match status "diverges" with
  | Fleet.Timed_out -> ()
  | _ -> Alcotest.fail "diverging job not marked timeout");
  Alcotest.(check bool) "good-1 done" true (status "good-1" = Fleet.Done);
  Alcotest.(check bool) "good-2 done" true (status "good-2" = Fleet.Done)

(* A real looping FPCore benchmark under a tiny deadline: the timeout
   must fire from inside [Analysis.analyze] via the tick plumbing. *)
let test_benchmark_timeout () =
  let job =
    List.hd (Fpcore.Suite.enumerate ~iterations:4 ~names:[ "arclength" ] ())
  in
  let sp = Fleet.bench_spec ~cfg:Core.Config.fast job in
  let outcomes = Fleet.run ~jobs:1 ~timeout:0.0 [ sp ] in
  match (List.hd outcomes).Fleet.o_status with
  | Fleet.Timed_out -> ()
  | _ -> Alcotest.fail "looping benchmark with expired deadline did not time out"

(* ---------- determinism ---------- *)

let test_determinism () =
  let specs () =
    Fpcore.Suite.enumerate ~iterations:4
      ~names:
        [ "intro-example"; "nmse-p331"; "verhulst"; "midpoint-naive";
          "logistic-map"; "newton-sqrt" ]
      ()
    |> List.map (Fleet.bench_spec ~cfg:Core.Config.fast)
  in
  let render outcomes =
    List.map
      (fun (o : Fleet.outcome) ->
        match o.Fleet.o_payload with
        | Some p -> p.Fleet.p_summary ^ "\n" ^ p.Fleet.p_report
        | None -> o.Fleet.o_name ^ ": no payload")
      outcomes
  in
  let seq = Fleet.run ~jobs:1 (specs ()) in
  let par = Fleet.run ~jobs:4 (specs ()) in
  Alcotest.(check (list string))
    "-j 4 summaries and reports equal -j 1" (render seq) (render par)

(* ---------- JSONL store ---------- *)

let test_json_roundtrip () =
  let check_roundtrip (o : Fleet.outcome) =
    let o' =
      Fleet.Store.outcome_of_json
        (Fleet.Json.of_string (Fleet.Json.to_string (Fleet.Store.outcome_to_json o)))
    in
    Alcotest.(check string) "name" o.Fleet.o_name o'.Fleet.o_name;
    Alcotest.(check string) "key" o.Fleet.o_key o'.Fleet.o_key;
    Alcotest.(check string) "engine" o.Fleet.o_engine o'.Fleet.o_engine;
    Alcotest.(check bool) "status" true (o.Fleet.o_status = o'.Fleet.o_status);
    match (o.Fleet.o_payload, o'.Fleet.o_payload) with
    | Some p, Some p' ->
        Alcotest.(check string) "summary" p.Fleet.p_summary p'.Fleet.p_summary;
        Alcotest.(check string) "report" p.Fleet.p_report p'.Fleet.p_report;
        Alcotest.(check bool)
          "metrics" true
          (p.Fleet.p_metrics = p'.Fleet.p_metrics)
    | None, None -> ()
    | _ -> Alcotest.fail "payload presence changed in round trip"
  in
  check_roundtrip
    {
      Fleet.o_name = "quote\"and\\newline\n";
      o_group = "straight-line";
      o_key = "abc123";
      o_engine = "full";
      o_status = Fleet.Done;
      o_wall_s = 0.25;
      o_payload = Some (ok_payload "rt");
    };
  check_roundtrip
    {
      Fleet.o_name = "boom";
      o_group = "looping";
      o_key = "";
      o_engine = "sanitize";
      o_status = Fleet.Failed "Failure(\"injected\")";
      o_wall_s = 0.0;
      o_payload = None;
    }

let test_store_and_cache () =
  let path = Filename.temp_file "fleet_test" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let specs () =
        Fpcore.Suite.enumerate ~iterations:4
          ~names:[ "intro-example"; "verhulst" ]
          ()
        |> List.map (Fleet.bench_spec ~cfg:Core.Config.fast)
      in
      let first = Fleet.run ~jobs:2 (specs ()) in
      Fleet.Store.save path first;
      let loaded = Fleet.Store.load path in
      Alcotest.(check int) "store holds every job" 2 (List.length loaded);
      let second =
        Fleet.run ~jobs:2 ~cache:(Fleet.Store.cache_of_file path) (specs ())
      in
      List.iter
        (fun (o : Fleet.outcome) ->
          Alcotest.(check bool)
            (o.Fleet.o_name ^ " served from cache")
            true
            (o.Fleet.o_status = Fleet.Cached))
        second;
      List.iter2
        (fun (a : Fleet.outcome) (b : Fleet.outcome) ->
          match (a.Fleet.o_payload, b.Fleet.o_payload) with
          | Some pa, Some pb ->
              Alcotest.(check string)
                "cached summary unchanged" pa.Fleet.p_summary pb.Fleet.p_summary
          | _ -> Alcotest.fail "cached outcome lost its payload")
        first second;
      (* a changed config changes the key, so nothing may be reused *)
      let recfg =
        Fpcore.Suite.enumerate ~iterations:4
          ~names:[ "intro-example"; "verhulst" ]
          ()
        |> List.map
             (Fleet.bench_spec
                ~cfg:{ Core.Config.fast with Core.Config.precision = 192 })
      in
      let third =
        Fleet.run ~jobs:1 ~cache:(Fleet.Store.cache_of_file path) recfg
      in
      List.iter
        (fun (o : Fleet.outcome) ->
          Alcotest.(check bool)
            (o.Fleet.o_name ^ " re-analyzed after config change")
            true
            (o.Fleet.o_status = Fleet.Done))
        third)

let () =
  Alcotest.run "fleet"
    [
      ( "engine",
        [
          Alcotest.test_case "fault isolation" `Quick test_fault_isolation;
          Alcotest.test_case "benchmark timeout" `Quick test_benchmark_timeout;
          Alcotest.test_case "determinism across -j" `Quick test_determinism;
        ] );
      ( "store",
        [
          Alcotest.test_case "json round trip" `Quick test_json_roundtrip;
          Alcotest.test_case "jsonl store and cache" `Quick test_store_and_cache;
        ] );
    ]
