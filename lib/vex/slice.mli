(** Static backward slicing over VEX programs.

    Used by the tiered engine: the slice of the sanitizer-flagged spots
    is the set of statements the full engine must shadow exactly for its
    report at those spots to be bit-identical to an unrestricted run.
    The slice is static (covers every instance of a statement) and
    over-approximate: temps -> same-block writers, [Get] -> statically
    overlapping [Put]s program-wide, [Load] -> every [Store] whose
    address class may alias the load's, every subexpression including
    addresses and guards.

    Addresses are classified by a symbolic evaluator into constant
    (global-segment), frame-relative-at-constant-offset, and unknown;
    unknown aliases everything, and the two constant classes alias only
    on byte-range overlap within their own class (the code generator
    keeps globals and stack frames disjoint). *)

type t

val compute : ?frame_regs:int list -> Ir.prog -> seeds:int list -> t
(** Close the seed set (statement ids, {!Ir.stmt_id}) under backward
    data dependencies. Raises [Invalid_argument] on an id that does not
    name a statement of [prog].

    [frame_regs] (default [[0; 8]], the MiniC code generator's sp and
    fp) names the thread-state offsets holding stack addresses, which
    the classifier treats as disjoint from constant addresses; pass
    [[]] for VEX code with no such convention — every frame access then
    degrades to the unknown class. *)

val contains : t -> int -> bool
(** O(1) membership by statement id. *)

val size : t -> int
(** Number of member statements. *)
