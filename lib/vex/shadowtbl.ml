(* Sparse shadow storage over a byte-addressed space, polymorphic in the
   shadow payload so the full analysis (Bigfloat shadows) and the
   sanitizer (double-double shadows) share one aliasing discipline: an
   entry covers [addr, addr+size) and any overlapping write kills it.
   Entries live at 4-byte granularity in practice (F32/F64 slots and
   V128 lanes), which bounds the overlap scan. *)

type 'a t = (int, 'a * int) Hashtbl.t

let create n : 'a t = Hashtbl.create n

(* remove shadows overlapping [addr, addr+size); the probe is
   exception-based rather than [find_opt] so the scan allocates
   nothing — this sits on the store path of every engine *)
let clear_range (tbl : 'a t) addr size =
  let lo = addr - 12 in
  let off = ref lo in
  while !off < addr + size do
    (match Hashtbl.find tbl !off with
    | _, esize when !off + esize > addr && !off < addr + size ->
        Hashtbl.remove tbl !off
    | _ -> ()
    | exception Not_found -> ());
    off := !off + 4
  done

let write (tbl : 'a t) addr size (sh : 'a option) =
  clear_range tbl addr size;
  match sh with
  | Some s -> Hashtbl.replace tbl addr (s, size)
  | None -> ()

let set (tbl : 'a t) addr size (sh : 'a) =
  clear_range tbl addr size;
  Hashtbl.replace tbl addr (sh, size)

let read (tbl : 'a t) addr size : 'a option =
  match Hashtbl.find_opt tbl addr with
  | Some (s, esize) when esize = size -> Some s
  | Some _ | None -> None

let get (tbl : 'a t) addr size : 'a =
  let s, esize = Hashtbl.find tbl addr in
  if esize = size then s else raise Not_found
