(* Pure operational semantics of VEX operators, shared between the fast
   uninstrumented interpreter and the instrumented analysis interpreter so
   the two can never disagree on client behaviour. *)

open Value

let eval_unop (op : Ir.unop) (v : t) : t =
  match op with
  | Ir.Not1 -> VBool (not (as_bool v))
  | Ir.Neg64 -> VI64 (Int64.neg (as_i64 v))
  | Ir.Not64 -> VI64 (Int64.lognot (as_i64 v))
  | Ir.I32toI64s -> VI64 (Int64.of_int32 (as_i32 v))
  | Ir.I32toI64u ->
      VI64 (Int64.logand (Int64.of_int32 (as_i32 v)) 0xFFFFFFFFL)
  | Ir.I64toI32 -> VI32 (Int64.to_int32 (as_i64 v))
  | Ir.F32toF64 -> VF64 (as_f32 v)
  | Ir.F64toF32 -> VF32 (Ieee.Single.of_double (as_f64 v))
  | Ir.I64toF64 -> VF64 (Int64.to_float (as_i64 v))
  | Ir.I64toF32 -> VF32 (Ieee.Single.of_double (Int64.to_float (as_i64 v)))
  | Ir.F64toI64tz -> VI64 (Int64.of_float (as_f64 v))
  | Ir.F64toI64rn -> VI64 (Int64.of_float (Float.round (as_f64 v)))
  | Ir.F32toI64tz -> VI64 (Int64.of_float (as_f32 v))
  | Ir.NegF64 -> VF64 (-.as_f64 v)
  | Ir.AbsF64 -> VF64 (Float.abs (as_f64 v))
  | Ir.SqrtF64 -> VF64 (Float.sqrt (as_f64 v))
  | Ir.NegF32 -> VF32 (-.as_f32 v)
  | Ir.AbsF32 -> VF32 (Float.abs (as_f32 v))
  | Ir.SqrtF32 -> VF32 (Ieee.Single.sqrt (as_f32 v))
  | Ir.ReinterpF64asI64 -> VI64 (Int64.bits_of_float (as_f64 v))
  | Ir.ReinterpI64asF64 -> VF64 (Int64.float_of_bits (as_i64 v))
  | Ir.ReinterpF32asI32 -> VI32 (Int32.bits_of_float (as_f32 v))
  | Ir.ReinterpI32asF32 -> VF32 (Int32.float_of_bits (as_i32 v))
  | Ir.V128to64 -> VI64 (fst (as_v128 v))
  | Ir.V128HIto64 -> VI64 (snd (as_v128 v))
  | Ir.Sqrt64Fx2 ->
      let a, b = v128_f64_lanes (as_v128 v) in
      v128_of_f64_lanes (Float.sqrt a, Float.sqrt b)

let eval_binop (op : Ir.binop) (x : t) (y : t) : t =
  match op with
  | Ir.Add64 -> VI64 (Int64.add (as_i64 x) (as_i64 y))
  | Ir.Sub64 -> VI64 (Int64.sub (as_i64 x) (as_i64 y))
  | Ir.Mul64 -> VI64 (Int64.mul (as_i64 x) (as_i64 y))
  | Ir.DivS64 ->
      let d = as_i64 y in
      if Int64.equal d 0L then raise Division_by_zero
      else VI64 (Int64.div (as_i64 x) d)
  | Ir.ModS64 ->
      let d = as_i64 y in
      if Int64.equal d 0L then raise Division_by_zero
      else VI64 (Int64.rem (as_i64 x) d)
  | Ir.And64 -> VI64 (Int64.logand (as_i64 x) (as_i64 y))
  | Ir.Or64 -> VI64 (Int64.logor (as_i64 x) (as_i64 y))
  | Ir.Xor64 -> VI64 (Int64.logxor (as_i64 x) (as_i64 y))
  | Ir.Shl64 -> VI64 (Int64.shift_left (as_i64 x) (Int64.to_int (as_i64 y)))
  | Ir.Shr64 ->
      VI64 (Int64.shift_right_logical (as_i64 x) (Int64.to_int (as_i64 y)))
  | Ir.Sar64 -> VI64 (Int64.shift_right (as_i64 x) (Int64.to_int (as_i64 y)))
  | Ir.CmpEQ64 -> VBool (Int64.equal (as_i64 x) (as_i64 y))
  | Ir.CmpNE64 -> VBool (not (Int64.equal (as_i64 x) (as_i64 y)))
  | Ir.CmpLT64S -> VBool (Int64.compare (as_i64 x) (as_i64 y) < 0)
  | Ir.CmpLE64S -> VBool (Int64.compare (as_i64 x) (as_i64 y) <= 0)
  | Ir.AddF64 -> VF64 (as_f64 x +. as_f64 y)
  | Ir.SubF64 -> VF64 (as_f64 x -. as_f64 y)
  | Ir.MulF64 -> VF64 (as_f64 x *. as_f64 y)
  | Ir.DivF64 -> VF64 (as_f64 x /. as_f64 y)
  | Ir.MinF64 -> VF64 (Float.min (as_f64 x) (as_f64 y))
  | Ir.MaxF64 -> VF64 (Float.max (as_f64 x) (as_f64 y))
  | Ir.CmpEQF64 -> VBool (as_f64 x = as_f64 y)
  | Ir.CmpNEF64 -> VBool (as_f64 x <> as_f64 y)
  | Ir.CmpLTF64 -> VBool (as_f64 x < as_f64 y)
  | Ir.CmpLEF64 -> VBool (as_f64 x <= as_f64 y)
  | Ir.AddF32 -> VF32 (Ieee.Single.add (as_f32 x) (as_f32 y))
  | Ir.SubF32 -> VF32 (Ieee.Single.sub (as_f32 x) (as_f32 y))
  | Ir.MulF32 -> VF32 (Ieee.Single.mul (as_f32 x) (as_f32 y))
  | Ir.DivF32 -> VF32 (Ieee.Single.div (as_f32 x) (as_f32 y))
  | Ir.CmpEQF32 -> VBool (as_f32 x = as_f32 y)
  | Ir.CmpLTF32 -> VBool (as_f32 x < as_f32 y)
  | Ir.CmpLEF32 -> VBool (as_f32 x <= as_f32 y)
  | Ir.Add64Fx2 ->
      let a0, a1 = v128_f64_lanes (as_v128 x)
      and b0, b1 = v128_f64_lanes (as_v128 y) in
      v128_of_f64_lanes (a0 +. b0, a1 +. b1)
  | Ir.Sub64Fx2 ->
      let a0, a1 = v128_f64_lanes (as_v128 x)
      and b0, b1 = v128_f64_lanes (as_v128 y) in
      v128_of_f64_lanes (a0 -. b0, a1 -. b1)
  | Ir.Mul64Fx2 ->
      let a0, a1 = v128_f64_lanes (as_v128 x)
      and b0, b1 = v128_f64_lanes (as_v128 y) in
      v128_of_f64_lanes (a0 *. b0, a1 *. b1)
  | Ir.Div64Fx2 ->
      let a0, a1 = v128_f64_lanes (as_v128 x)
      and b0, b1 = v128_f64_lanes (as_v128 y) in
      v128_of_f64_lanes (a0 /. b0, a1 /. b1)
  | Ir.Add32Fx4 ->
      let a0, a1, a2, a3 = v128_f32_lanes (as_v128 x)
      and b0, b1, b2, b3 = v128_f32_lanes (as_v128 y) in
      let s = Ieee.Single.add in
      v128_of_f32_lanes (s a0 b0, s a1 b1, s a2 b2, s a3 b3)
  | Ir.Sub32Fx4 ->
      let a0, a1, a2, a3 = v128_f32_lanes (as_v128 x)
      and b0, b1, b2, b3 = v128_f32_lanes (as_v128 y) in
      let s = Ieee.Single.sub in
      v128_of_f32_lanes (s a0 b0, s a1 b1, s a2 b2, s a3 b3)
  | Ir.Mul32Fx4 ->
      let a0, a1, a2, a3 = v128_f32_lanes (as_v128 x)
      and b0, b1, b2, b3 = v128_f32_lanes (as_v128 y) in
      let s = Ieee.Single.mul in
      v128_of_f32_lanes (s a0 b0, s a1 b1, s a2 b2, s a3 b3)
  | Ir.Div32Fx4 ->
      let a0, a1, a2, a3 = v128_f32_lanes (as_v128 x)
      and b0, b1, b2, b3 = v128_f32_lanes (as_v128 y) in
      let s = Ieee.Single.div in
      v128_of_f32_lanes (s a0 b0, s a1 b1, s a2 b2, s a3 b3)
  | Ir.AndV128 ->
      let a0, a1 = as_v128 x and b0, b1 = as_v128 y in
      VV128 (Int64.logand a0 b0, Int64.logand a1 b1)
  | Ir.OrV128 ->
      let a0, a1 = as_v128 x and b0, b1 = as_v128 y in
      VV128 (Int64.logor a0 b0, Int64.logor a1 b1)
  | Ir.XorV128 ->
      let a0, a1 = as_v128 x and b0, b1 = as_v128 y in
      VV128 (Int64.logxor a0 b0, Int64.logxor a1 b1)
  | Ir.I64HLtoV128 -> VV128 (as_i64 y, as_i64 x)

(* ---------- the client's math library ----------

   The concrete double answer returned to the client program for a dirty
   call. This plays the role of OpenLibm in the original implementation:
   the client sees a plain double result while the analysis separately
   computes the exact real answer. *)

let libm_arity = function
  | "atan2" | "pow" | "fmod" | "hypot" | "fmin" | "fmax" | "copysign"
  | "fdim" ->
      2
  | "fma" -> 3
  | _ -> 1

let libm_known = function
  | "exp" | "expm1" | "exp2" | "log" | "log1p" | "log2" | "log10" | "sin"
  | "cos" | "tan" | "asin" | "acos" | "atan" | "sinh" | "cosh" | "tanh"
  | "cbrt" | "fabs" | "floor" | "ceil" | "trunc" | "round" | "atan2" | "pow"
  | "fmod" | "hypot" | "fmin" | "fmax" | "copysign" | "fdim" | "fma"
  | "sqrt" ->
      true
  (* __arg(i) reads the i-th harness-provided input; it models a program
     input arriving with no floating-point provenance (the role played by
     benchmark drivers reading random data in the original evaluation) *)
  | "__arg" -> true
  | _ -> false

let libm_apply (name : string) (args : float array) : float =
  match (name, args) with
  | "sqrt", [| x |] -> Float.sqrt x
  | "exp", [| x |] -> Float.exp x
  | "expm1", [| x |] -> Float.expm1 x
  | "exp2", [| x |] -> Float.exp2 x
  | "log", [| x |] -> Float.log x
  | "log1p", [| x |] -> Float.log1p x
  | "log2", [| x |] -> Float.log2 x
  | "log10", [| x |] -> Float.log10 x
  | "sin", [| x |] -> Float.sin x
  | "cos", [| x |] -> Float.cos x
  | "tan", [| x |] -> Float.tan x
  | "asin", [| x |] -> Float.asin x
  | "acos", [| x |] -> Float.acos x
  | "atan", [| x |] -> Float.atan x
  | "sinh", [| x |] -> Float.sinh x
  | "cosh", [| x |] -> Float.cosh x
  | "tanh", [| x |] -> Float.tanh x
  | "cbrt", [| x |] -> Float.cbrt x
  | "fabs", [| x |] -> Float.abs x
  | "floor", [| x |] -> Float.floor x
  | "ceil", [| x |] -> Float.ceil x
  | "trunc", [| x |] -> Float.trunc x
  | "round", [| x |] -> Float.round x
  | "atan2", [| y; x |] -> Float.atan2 y x
  | "pow", [| x; y |] -> Float.pow x y
  | "fmod", [| x; y |] -> Float.rem x y
  | "hypot", [| x; y |] -> Float.hypot x y
  | "fmin", [| x; y |] -> Float.min x y
  | "fmax", [| x; y |] -> Float.max x y
  | "copysign", [| x; y |] -> Float.copy_sign x y
  | "fdim", [| x; y |] -> if x > y then x -. y else 0.0
  | "fma", [| x; y; z |] -> Float.fma x y z
  | _ ->
      invalid_arg
        (Printf.sprintf "Eval.libm_apply: unknown %s/%d" name
           (Array.length args))

(* The exact (shadow) semantics of the same calls, on Bigfloat. *)
let libm_apply_real_uncached ~prec (name : string)
    (args : Bignum.Bigfloat.t array) : Bignum.Bigfloat.t =
  let module B = Bignum.Bigfloat in
  let module M = Bignum.Bigfloat_math in
  match (name, args) with
  | "sqrt", [| x |] -> B.sqrt ~prec x
  | "exp", [| x |] -> M.exp ~prec x
  | "expm1", [| x |] -> M.expm1 ~prec x
  | "exp2", [| x |] -> M.exp2 ~prec x
  | "log", [| x |] -> M.log ~prec x
  | "log1p", [| x |] -> M.log1p ~prec x
  | "log2", [| x |] -> M.log2 ~prec x
  | "log10", [| x |] -> M.log10 ~prec x
  | "sin", [| x |] -> M.sin ~prec x
  | "cos", [| x |] -> M.cos ~prec x
  | "tan", [| x |] -> M.tan ~prec x
  | "asin", [| x |] -> M.asin ~prec x
  | "acos", [| x |] -> M.acos ~prec x
  | "atan", [| x |] -> M.atan ~prec x
  | "sinh", [| x |] -> M.sinh ~prec x
  | "cosh", [| x |] -> M.cosh ~prec x
  | "tanh", [| x |] -> M.tanh ~prec x
  | "cbrt", [| x |] -> M.cbrt ~prec x
  | "fabs", [| x |] -> B.abs x
  | "floor", [| x |] -> B.floor x
  | "ceil", [| x |] -> B.ceil x
  | "trunc", [| x |] -> B.trunc x
  | "round", [| x |] -> B.round_to_int x
  | "atan2", [| y; x |] -> M.atan2 ~prec y x
  | "pow", [| x; y |] -> M.pow ~prec x y
  | "fmod", [| x; y |] -> M.fmod x y
  | "hypot", [| x; y |] -> M.hypot ~prec x y
  | "fmin", [| x; y |] -> B.min2 x y
  | "fmax", [| x; y |] -> B.max2 x y
  | "copysign", [| x; y |] -> M.copysign x y
  | "fdim", [| x; y |] -> M.fdim ~prec x y
  | "fma", [| x; y; z |] -> M.fma ~prec x y z
  | _ ->
      invalid_arg
        (Printf.sprintf "Eval.libm_apply_real: unknown %s/%d" name
           (Array.length args))

(* Transcendentals dominate shadow-execution cost (a 1000-bit sin is
   hundreds of Taylor-series multiplies), and loop-heavy clients often
   revisit the same argument — e.g. a benchmark computing cos of the same
   subexpression twice per iteration.  Memoize per domain, keyed on the
   structural representation of the arguments: Bigfloat values are
   canonical (bool/int/int-array), so structural equality is exact value
   identity and — unlike [Bigfloat.equal] — keeps -0.0 and +0.0 apart,
   which matters for sign-sensitive calls like sqrt(-0) and atan2.  Cheap
   O(1) calls (fabs, rounding, min/max, copysign) skip the table: hashing
   a 1000-bit mantissa costs more than the call. *)
let libm_memo_worthwhile (name : string) =
  match name with
  | "fabs" | "floor" | "ceil" | "trunc" | "round" | "fmin" | "fmax"
  | "copysign" ->
      false
  | _ -> true

let libm_memo_key : (string * int * Bignum.Bigfloat.t array, Bignum.Bigfloat.t)
    Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 1024)

let libm_memo_max_entries = 32768

let libm_apply_real ~prec (name : string) (args : Bignum.Bigfloat.t array) :
    Bignum.Bigfloat.t =
  if not (libm_memo_worthwhile name) then
    libm_apply_real_uncached ~prec name args
  else begin
    let tbl = Domain.DLS.get libm_memo_key in
    let key = (name, prec, args) in
    match Hashtbl.find_opt tbl key with
    | Some v -> v
    | None ->
        let v = libm_apply_real_uncached ~prec name args in
        if Hashtbl.length tbl >= libm_memo_max_entries then Hashtbl.reset tbl;
        (* defensively copy: callers may reuse their argument buffer *)
        Hashtbl.add tbl (name, prec, Array.copy args) v;
        v
  end
