(** The uninstrumented VEX machine: byte-addressed memory and thread
    state, per-superblock typed temporaries, indirect jumps.

    This is the "native execution" that overhead figures compare the
    instrumented interpreter ({!Core.Exec}) against, playing the role of
    running the client binary outside Valgrind. *)

type output = {
  stmt_id : int;  (** the Out statement's program point *)
  loc : Ir.loc;  (** source location from the latest IMark *)
  kind : Ir.out_kind;
  value : Value.t;
}

type state

exception Client_error of string
(** Raised for out-of-bounds memory accesses, jumps outside the program,
    or an exceeded step budget. *)

val default_mem_size : int
val default_thread_size : int

val create :
  ?mem_size:int -> ?max_steps:int -> ?inputs:float array -> Ir.prog -> state
(** Fresh machine state: zeroed memory and thread state. [inputs] backs
    the [__arg] builtin. *)

val run :
  ?mem_size:int -> ?max_steps:int -> ?inputs:float array -> Ir.prog -> state
(** Run the program from its entry block until it halts. *)

val drive :
  ?max_steps:int ->
  ?tick:(unit -> unit) ->
  error:(string -> exn) ->
  Ir.prog ->
  run_block:(int -> int) ->
  int
(** The superblock stepping loop shared by every execution engine: start
    at the program's entry block, repeatedly call [run_block] with the
    current block index and follow the index it returns, halt at -1.
    Raises [error "jump out of program: N"] on an out-of-range index and
    [error "step budget exceeded"] past [max_steps]; [tick] runs once per
    superblock (batch drivers raise from it to enforce deadlines).
    Returns the number of superblocks run. *)

val run_block : state -> int -> int
(** Execute one superblock; returns the next block index, -1 to halt. *)

val outputs : state -> output list
(** Everything the program printed, oldest first. *)

val output_floats : state -> float list
(** Just the floating-point outputs. *)

val init_value : Ir.ty -> Value.t
(** The zero value of each VEX type (used to initialize temporaries). *)

val load : state -> Ir.ty -> int -> Value.t
val store : state -> int -> Value.t -> unit

val nth_input : float array -> float -> float
(** The [__arg k] builtin's semantics, shared by every engine: wrap the
    (truncated) index into the input vector; an empty vector reads 0.0. *)

val read_input : state -> float -> float
