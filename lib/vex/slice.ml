(* Static backward slicing over VEX programs, for the tiered engine.

   Given seed statements (the spots the sanitizer flagged), compute the
   set of statements whose values can flow into a seed — the statements
   the full engine must shadow exactly to reproduce its report at those
   spots bit for bit. The slice is static and over-approximate, which is
   what the bit-identity argument needs: every producer of an on-slice
   statement's inputs is itself on-slice, so no shadow is ever re-seeded
   from a machine value where the full engine would have carried a real.

   Dependency edges, all conservative:
   - [RdTmp t]     -> every writer of [t] in the same block (temps are
                      block-local);
   - [Get(off,ty)] -> every [Put] program-wide whose static byte range
                      overlaps [off, off+size) (the Put value's size is
                      computed from its expression's result type);
   - [Load]        -> every [Store] program-wide whose address class may
                      alias the load's (below);
   - every subexpression counts, including addresses and ITE guards:
     the instrumented executor evaluates address expressions with full
     instrumentation, so their producers must be exact too.

   Address classes. Every named MiniC variable lives in memory (stack
   frame or global segment), so "Load -> every Store" would pull the
   whole program into any slice and forfeit the tiered engine's
   throughput. A tiny symbolic evaluator resolves address expressions
   through single-assignment temps into three classes:

   - [Abs k]: a constant address — the global segment;
   - [Rel k]: frame-pointer- or stack-pointer-relative at constant
     offset k. The two registers share one coordinate system: the
     code generator sets the callee's fp to the caller's sp, so a
     caller's argument store at sp+k is the callee's local at fp+k.
     Within one function sp = fp + framesize keeps its offsets beyond
     every local's, so unifying them never claims a false non-alias;
   - [Top]: anything else (computed indices, pointer loads) — aliases
     everything.

   [Abs] and [Rel] never alias each other: the generator lays globals
   out below [stack_base] and every frame at or above it. [frame_regs]
   names the thread-state offsets that hold stack addresses by that
   convention; pass [~frame_regs:[]] for VEX code that does not follow
   it and every frame access degrades to [Top]. *)

type t = {
  members : bool array array;  (* [block].(stmt) *)
  mutable n_members : int;
}

let contains (t : t) (id : int) : bool =
  let b = Ir.stmt_id_block id and s = Ir.stmt_id_stmt id in
  b < Array.length t.members
  && s < Array.length t.members.(b)
  && t.members.(b).(s)

let size (t : t) : int = t.n_members

(* result type of an expression, given the enclosing block's temp types *)
let rec expr_ty (temp_tys : Ir.ty array) (e : Ir.expr) : Ir.ty =
  match e with
  | Ir.RdTmp t -> temp_tys.(t)
  | Ir.Const c -> Ir.const_ty c
  | Ir.LabelAddr _ -> Ir.I64
  | Ir.Get (_, ty) -> ty
  | Ir.Load (ty, _) -> ty
  | Ir.Unop (op, _) -> Ir.unop_result_ty op
  | Ir.Binop (op, _, _) -> Ir.binop_result_ty op
  | Ir.ITE (_, th, _) -> expr_ty temp_tys th

(* ---------- address classification ---------- *)

type aval = Abs of int64 | Rel of int64 | Top

(* resolve [e] through the block's single-assignment temps; [fuel]
   bounds pathological definition chains *)
let rec aeval (frame_regs : int list) (tdef : Ir.expr option array)
    (fuel : int) (e : Ir.expr) : aval =
  if fuel = 0 then Top
  else
    let recur = aeval frame_regs tdef (fuel - 1) in
    match e with
    | Ir.Const (Ir.CI64 c) -> Abs c
    | Ir.Const _ | Ir.LabelAddr _ -> Top
    | Ir.Get (off, Ir.I64) when List.mem off frame_regs -> Rel 0L
    | Ir.Get _ -> Top
    | Ir.RdTmp t -> (
        match tdef.(t) with Some d -> recur d | None -> Top)
    | Ir.Binop (Ir.Add64, a, b) -> (
        match (recur a, recur b) with
        | Abs x, Abs y -> Abs (Int64.add x y)
        | Rel x, Abs y | Abs y, Rel x -> Rel (Int64.add x y)
        | _ -> Top)
    | Ir.Binop (Ir.Sub64, a, b) -> (
        match (recur a, recur b) with
        | Abs x, Abs y -> Abs (Int64.sub x y)
        | Rel x, Abs y -> Rel (Int64.sub x y)
        | _ -> Top)
    | Ir.Binop (Ir.Mul64, a, b) -> (
        match (recur a, recur b) with
        | Abs x, Abs y -> Abs (Int64.mul x y)
        | _ -> Top)
    | Ir.Unop _ | Ir.Binop _ | Ir.Load _ | Ir.ITE _ -> Top

let ranges_overlap x sx y sy =
  let open Int64 in
  compare x (add y (of_int sy)) < 0 && compare y (add x (of_int sx)) < 0

let may_alias (a : aval) (sa : int) (b : aval) (sb : int) : bool =
  match (a, b) with
  | Top, _ | _, Top -> true
  | Abs x, Abs y | Rel x, Rel y -> ranges_overlap x sa y sb
  | Abs _, Rel _ | Rel _, Abs _ -> false

let compute ?(frame_regs = [ 0; 8 ]) (prog : Ir.prog) ~(seeds : int list) : t =
  let nb = Array.length prog.Ir.blocks in
  let members =
    Array.map (fun b -> Array.make (Array.length b.Ir.stmts) false)
      prog.Ir.blocks
  in
  (* per-block temp writers: writers.(b).(t) = stmt indices writing t,
     and the defining expression when the write is unique (for address
     resolution; Dirty results and re-written temps resolve to Top) *)
  let writers =
    Array.map
      (fun (b : Ir.block) ->
        let w = Array.make (Array.length b.Ir.temp_tys) [] in
        Array.iteri
          (fun i s ->
            match s with
            | Ir.WrTmp (t, _) | Ir.Dirty (t, _, _) -> w.(t) <- i :: w.(t)
            | _ -> ())
          b.Ir.stmts;
        w)
      prog.Ir.blocks
  in
  let tdefs =
    Array.map
      (fun (b : Ir.block) ->
        let d = Array.make (Array.length b.Ir.temp_tys) None in
        let seen = Array.make (Array.length b.Ir.temp_tys) 0 in
        Array.iter
          (fun s ->
            match s with
            | Ir.WrTmp (t, e) ->
                seen.(t) <- seen.(t) + 1;
                d.(t) <- (if seen.(t) = 1 then Some e else None)
            | Ir.Dirty (t, _, _) ->
                seen.(t) <- seen.(t) + 1;
                d.(t) <- None
            | _ -> ())
          b.Ir.stmts;
        d)
      prog.Ir.blocks
  in
  let addr_class bi e = aeval frame_regs tdefs.(bi) 64 e in
  (* program-wide Put ranges and classified Store sites *)
  let puts = ref [] and stores = ref [] in
  Array.iteri
    (fun bi (b : Ir.block) ->
      Array.iteri
        (fun si s ->
          match s with
          | Ir.Put (off, e) ->
              let size = Ir.ty_size (expr_ty b.Ir.temp_tys e) in
              puts := (Ir.stmt_id ~block:bi ~stmt:si, off, size) :: !puts
          | Ir.Store (a, v) ->
              let size = Ir.ty_size (expr_ty b.Ir.temp_tys v) in
              stores :=
                (Ir.stmt_id ~block:bi ~stmt:si, addr_class bi a, size)
                :: !stores
          | _ -> ())
        b.Ir.stmts)
    prog.Ir.blocks;
  let puts = !puts and stores = !stores in
  let t = { members; n_members = 0 } in
  let work = Queue.create () in
  let add id =
    let b = Ir.stmt_id_block id and s = Ir.stmt_id_stmt id in
    if b >= nb || s >= Array.length members.(b) then
      invalid_arg (Printf.sprintf "Slice.compute: bad stmt id %d" id)
    else if not members.(b).(s) then begin
      members.(b).(s) <- true;
      t.n_members <- t.n_members + 1;
      Queue.push id work
    end
  in
  List.iter add seeds;
  let rec dep_expr bi (b : Ir.block) (e : Ir.expr) =
    match e with
    | Ir.Const _ | Ir.LabelAddr _ -> ()
    | Ir.RdTmp tmp ->
        List.iter
          (fun si -> add (Ir.stmt_id ~block:bi ~stmt:si))
          writers.(bi).(tmp)
    | Ir.Get (off, ty) ->
        let size = Ir.ty_size ty in
        List.iter
          (fun (id, poff, psize) ->
            if poff < off + size && off < poff + psize then add id)
          puts
    | Ir.Load (ty, a) ->
        let la = addr_class bi a in
        let lsize = Ir.ty_size ty in
        List.iter
          (fun (id, sa, ssize) -> if may_alias la lsize sa ssize then add id)
          stores;
        dep_expr bi b a
    | Ir.Unop (_, a) -> dep_expr bi b a
    | Ir.Binop (_, a, c) ->
        dep_expr bi b a;
        dep_expr bi b c
    | Ir.ITE (g, th, el) ->
        dep_expr bi b g;
        dep_expr bi b th;
        dep_expr bi b el
  in
  while not (Queue.is_empty work) do
    let id = Queue.pop work in
    let bi = Ir.stmt_id_block id and si = Ir.stmt_id_stmt id in
    let b = prog.Ir.blocks.(bi) in
    match b.Ir.stmts.(si) with
    | Ir.IMark _ -> ()
    | Ir.WrTmp (_, e) | Ir.Put (_, e) | Ir.Exit (e, _) | Ir.Out (_, e) ->
        dep_expr bi b e
    | Ir.Store (a, v) ->
        dep_expr bi b a;
        dep_expr bi b v
    | Ir.Dirty (_, _, args) -> List.iter (dep_expr bi b) args
  done;
  t
