(* Static superblock type inference (paper sections 5.3 and 6.1).

   Thread state and memory are untyped, so the instrumented interpreter
   would otherwise have to treat every statement as potentially moving a
   shadowed float. This pass computes, per superblock, a conservative type
   for every temporary and thread-state offset written in the block, and
   classifies each statement into one of three instrumentation actions:

   - [Skip]: provably never touches float data nor float-derived control;
     the analysis can execute it with no shadow bookkeeping at all.
   - [Clear]: stores a provably non-float value to thread state or memory;
     the only shadow work needed is killing any stale shadow at the target.
   - [Full]: everything else.

   Turning the pass off (paper figure 10c) classifies every statement as
   [Full]. *)

type vt =
  | Vt_unknown  (* could be anything, including a shadowed float *)
  | Vt_f32
  | Vt_f64
  | Vt_vec  (* V128: lanes may hold floats *)
  | Vt_nonfloat  (* provably integer/boolean data with no float ancestry *)
  | Vt_fcmp  (* boolean produced by a float comparison: control taint *)

let join a b =
  if a = b then a
  else
    match (a, b) with
    | Vt_nonfloat, Vt_nonfloat -> Vt_nonfloat
    | _, _ -> Vt_unknown

type action = Skip | Clear | Full

type block_info = {
  temp_vt : vt array;
  actions : action array;
  (* number of statements classified Full, for instrumentation stats *)
  full_count : int;
}

type t = { enabled : bool; blocks : block_info array }

let unop_vt (op : Ir.unop) (a : vt) : vt =
  match op with
  | Ir.Not1 -> if a = Vt_fcmp then Vt_fcmp else a
  | Ir.Neg64 | Ir.Not64 | Ir.I32toI64s | Ir.I32toI64u | Ir.I64toI32 -> (
      (* integer compute kills float ancestry unless the input is unknown:
         bit-level tricks (sign flips) are handled by the Full path *)
      match a with Vt_nonfloat -> Vt_nonfloat | _ -> Vt_unknown)
  | Ir.F32toF64 | Ir.I64toF64 -> Vt_f64
  | Ir.F64toF32 | Ir.I64toF32 -> Vt_f32
  | Ir.F64toI64tz | Ir.F64toI64rn | Ir.F32toI64tz ->
      (* conversion spot: result is an integer derived from a float *)
      Vt_unknown
  | Ir.NegF64 | Ir.AbsF64 | Ir.SqrtF64 -> Vt_f64
  | Ir.NegF32 | Ir.AbsF32 | Ir.SqrtF32 -> Vt_f32
  | Ir.ReinterpF64asI64 | Ir.ReinterpF32asI32 -> Vt_unknown
  | Ir.ReinterpI64asF64 -> Vt_f64
  | Ir.ReinterpI32asF32 -> Vt_f32
  | Ir.V128to64 | Ir.V128HIto64 -> Vt_unknown
  | Ir.Sqrt64Fx2 -> Vt_vec

let binop_vt (op : Ir.binop) (a : vt) (b : vt) : vt =
  match op with
  | Ir.Add64 | Ir.Sub64 | Ir.Mul64 | Ir.DivS64 | Ir.ModS64 | Ir.Shl64
  | Ir.Shr64 | Ir.Sar64 -> (
      match (a, b) with
      | Vt_nonfloat, Vt_nonfloat -> Vt_nonfloat
      | _ -> Vt_unknown)
  | Ir.And64 | Ir.Or64 | Ir.Xor64 -> (
      (* XOR/AND with a mask implements negation/fabs on float bits, so
         only provably non-float inputs stay non-float *)
      match (a, b) with
      | Vt_nonfloat, Vt_nonfloat -> Vt_nonfloat
      | _ -> Vt_unknown)
  | Ir.CmpEQ64 | Ir.CmpNE64 | Ir.CmpLT64S | Ir.CmpLE64S -> (
      match (a, b) with
      | Vt_nonfloat, Vt_nonfloat -> Vt_nonfloat
      | _ -> Vt_fcmp)
  | Ir.AddF64 | Ir.SubF64 | Ir.MulF64 | Ir.DivF64 | Ir.MinF64 | Ir.MaxF64 ->
      Vt_f64
  | Ir.CmpEQF64 | Ir.CmpNEF64 | Ir.CmpLTF64 | Ir.CmpLEF64 | Ir.CmpEQF32
  | Ir.CmpLTF32 | Ir.CmpLEF32 ->
      Vt_fcmp
  | Ir.AddF32 | Ir.SubF32 | Ir.MulF32 | Ir.DivF32 -> Vt_f32
  | Ir.Add64Fx2 | Ir.Sub64Fx2 | Ir.Mul64Fx2 | Ir.Div64Fx2 | Ir.Add32Fx4
  | Ir.Sub32Fx4 | Ir.Mul32Fx4 | Ir.Div32Fx4 | Ir.AndV128 | Ir.OrV128
  | Ir.XorV128 | Ir.I64HLtoV128 ->
      Vt_vec

let const_vt : Ir.const -> vt = function
  | Ir.CBool _ | Ir.CI64 _ | Ir.CI32 _ -> Vt_nonfloat
  | Ir.CF64 _ -> Vt_f64
  | Ir.CF32 _ -> Vt_f32
  | Ir.CV128 _ -> Vt_vec

(* A Get/Load declared at a float type is float data; declared at an
   integer type it may still be a float being copied, hence unknown unless
   the same offset was Put with a known type earlier in the block. *)
let storage_vt (declared : Ir.ty) (known : vt option) : vt =
  match known with
  | Some v -> v
  | None -> (
      match declared with
      | Ir.F32 -> Vt_f32
      | Ir.F64 -> Vt_f64
      | Ir.V128 -> Vt_vec
      | Ir.I1 -> Vt_nonfloat
      | Ir.I8 | Ir.I16 | Ir.I32 | Ir.I64 -> Vt_unknown)

let rec expr_vt (temp_vt : vt array) (thread_vt : (int, vt) Hashtbl.t)
    (e : Ir.expr) : vt =
  match e with
  | Ir.RdTmp t -> temp_vt.(t)
  | Ir.Const c -> const_vt c
  | Ir.LabelAddr _ -> Vt_nonfloat
  | Ir.Get (off, ty) -> storage_vt ty (Hashtbl.find_opt thread_vt off)
  | Ir.Load (ty, _) -> storage_vt ty None
  | Ir.Unop (op, a) -> unop_vt op (expr_vt temp_vt thread_vt a)
  | Ir.Binop (op, a, b) ->
      binop_vt op (expr_vt temp_vt thread_vt a) (expr_vt temp_vt thread_vt b)
  | Ir.ITE (g, t, e2) -> (
      match expr_vt temp_vt thread_vt g with
      | Vt_fcmp | Vt_unknown -> Vt_unknown
      | _ ->
          join (expr_vt temp_vt thread_vt t) (expr_vt temp_vt thread_vt e2))

(* An expression whose evaluation may consult shadow state: any Load or
   Get can alias shadowed data unless its computed vt is non-float. *)
let rec has_storage_read (e : Ir.expr) : bool =
  match e with
  | Ir.RdTmp _ | Ir.Const _ | Ir.LabelAddr _ -> false
  | Ir.Get _ | Ir.Load _ -> true
  | Ir.Unop (_, a) -> has_storage_read a
  | Ir.Binop (_, a, b) -> has_storage_read a || has_storage_read b
  | Ir.ITE (g, t, e2) ->
      has_storage_read g || has_storage_read t || has_storage_read e2

let infer_block (b : Ir.block) : block_info =
  let n_tmp = Array.length b.Ir.temp_tys in
  let temp_vt = Array.make n_tmp Vt_unknown in
  (* temporaries start undefined; their vt comes from assignments *)
  let thread_vt : (int, vt) Hashtbl.t = Hashtbl.create 16 in
  let n = Array.length b.Ir.stmts in
  let actions = Array.make n Full in
  let full = ref 0 in
  for i = 0 to n - 1 do
    let action =
      match b.Ir.stmts.(i) with
      | Ir.IMark _ -> Skip
      | Ir.WrTmp (t, e) ->
          let vt = expr_vt temp_vt thread_vt e in
          temp_vt.(t) <- vt;
          if vt = Vt_nonfloat && not (has_storage_read e) then Skip else Full
      | Ir.Put (off, e) ->
          let vt = expr_vt temp_vt thread_vt e in
          Hashtbl.replace thread_vt off vt;
          if vt = Vt_nonfloat then
            if has_storage_read e then Full else Clear
          else Full
      | Ir.Store (_, v) ->
          let vt = expr_vt temp_vt thread_vt v in
          if vt = Vt_nonfloat && not (has_storage_read v) then Clear else Full
      | Ir.Dirty (t, _, _) ->
          temp_vt.(t) <- Vt_f64;
          Full
      | Ir.Exit (g, _) -> (
          match expr_vt temp_vt thread_vt g with
          | Vt_nonfloat -> Skip
          | _ -> Full)
      | Ir.Out (_, _) -> Full
    in
    actions.(i) <- action;
    if action = Full then incr full
  done;
  { temp_vt; actions; full_count = !full }

let infer (prog : Ir.prog) : t =
  { enabled = true; blocks = Array.map infer_block prog.Ir.blocks }

let all_full (prog : Ir.prog) : t =
  {
    enabled = false;
    blocks =
      Array.map
        (fun (b : Ir.block) ->
          let n = Array.length b.Ir.stmts in
          {
            temp_vt = Array.make (Array.length b.Ir.temp_tys) Vt_unknown;
            actions = Array.make n Full;
            full_count = n;
          })
        prog.Ir.blocks;
  }

let action (info : t) ~block ~stmt = info.blocks.(block).actions.(stmt)
let block_actions (info : t) ~block = info.blocks.(block).actions

let stats (info : t) =
  Array.fold_left
    (fun (full, total) bi -> (full + bi.full_count, total + Array.length bi.actions))
    (0, 0) info.blocks
