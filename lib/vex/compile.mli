(** Pre-decoded superblocks: the compile-once/run-many layer under the
    instrumented executors.

    [get] turns an {!Ir.prog} into flat per-block arrays of decoded
    statements with all statically-determined facts resolved at compile
    time — statement ids, IMark-derived source locations, jump targets,
    the type-inference dispatch path and tiered restrict-mask
    membership — and caches the result process-wide so repeated jobs
    over the same program never re-decode. IMark statements are elided;
    [cs_run_w] and [cb_tail_w] preserve the executors' exact
    raw-statement counts, including on taken side exits. *)

type cpath =
  | PFast  (** type-inference fast path: no shadow bookkeeping *)
  | POff  (** tiered pass 2, off the escalated slice: machine-only *)
  | PFull  (** fully instrumented *)

type cop =
  | CWrTmp of int * Ir.expr
  | CPut of int * Ir.expr
  | CStore of Ir.expr * Ir.expr
  | CDirtyArg of int * Ir.expr array  (** the "__arg" harness input *)
  | CDirty of int * string * Ir.expr array
  | CExit of Ir.expr * int  (** guard, resolved target block *)
  | COut of Ir.out_kind * Ir.expr

type cstmt = {
  cs_op : cop;
  cs_id : int;  (** {!Ir.stmt_id} of the original statement *)
  cs_loc : Ir.loc;  (** static location: nearest preceding IMark *)
  cs_path : cpath;
  cs_run_w : int;  (** raw-statement weight: 1 + elided IMarks before *)
}

type cnext = CGoto of int | CIndirect of Ir.expr | CHalt

type cblock = {
  cb_stmts : cstmt array;
  cb_tail_w : int;  (** elided IMarks after the last real statement *)
  cb_n_raw : int;  (** raw statements in the original block *)
  cb_next : cnext;
}

type t = {
  cblocks : cblock array;
  c_traces_reachable : bool;
      (** true iff some compiled statement consumes concrete traces; see
          the lazy-trace rule in DESIGN.md §15 *)
}

val get : type_inference:bool -> ?restrict:bool array array -> Ir.prog -> t
(** The compiled form of [prog], from the process-wide cache when a
    structurally identical program was compiled before with the same
    [type_inference] flag and [restrict] mask. *)

val compile : type_inference:bool -> ?restrict:bool array array -> Ir.prog -> t
(** Compile without consulting or populating the cache (tests). *)

val blocks_compiled_total : unit -> int
(** Superblocks compiled since process start (cache misses). *)

val cache_hits_total : unit -> int
(** Compile-cache hits since process start. *)
