(** Static superblock type inference (paper sections 5.3 and 6.1).

    Thread state and memory are untyped, so the instrumented interpreter
    would otherwise treat every statement as potentially moving a shadowed
    float. This pass computes a conservative type for every temporary and
    thread-state offset written within a superblock, and classifies each
    statement by the shadow work it needs. Turning it off (figure 10c)
    classifies everything [Full]. *)

(** Conservative value type. *)
type vt =
  | Vt_unknown  (** could be anything, including a shadowed float *)
  | Vt_f32
  | Vt_f64
  | Vt_vec  (** V128: lanes may hold floats *)
  | Vt_nonfloat  (** provably integer/boolean with no float ancestry *)
  | Vt_fcmp  (** boolean produced by a float comparison: control taint *)

val join : vt -> vt -> vt

(** What the analysis must do at a statement. *)
type action =
  | Skip  (** provably no float data or float-derived control: no shadow work *)
  | Clear  (** stores a provably non-float value: just kill stale shadows *)
  | Full  (** everything else *)

type t

val infer : Ir.prog -> t
val all_full : Ir.prog -> t
(** The inference-off configuration: every statement is [Full]. *)

val action : t -> block:int -> stmt:int -> action

val block_actions : t -> block:int -> action array
(** The whole action row for a block, for interpreters that want one
    bounds-checked lookup per statement instead of two. The array is the
    inference's own storage — callers must not mutate it. *)

val stats : t -> int * int
(** (statements classified Full, total statements). *)
