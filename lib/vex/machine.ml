(* The uninstrumented VEX machine: byte-addressed memory, byte-addressed
   thread state (registers), per-superblock typed temporaries. This is the
   "native execution" baseline that overhead figures compare against. *)

type output = { stmt_id : int; loc : Ir.loc; kind : Ir.out_kind; value : Value.t }

type state = {
  prog : Ir.prog;
  mem : Bytes.t;
  thread : Bytes.t;
  inputs : float array;  (* values returned by the __arg builtin *)
  mutable outputs : output list;  (* reversed *)
  mutable steps : int;
  max_steps : int;
}

exception Client_error of string

let default_mem_size = 1 lsl 20
let default_thread_size = 1 lsl 10

let create ?(mem_size = default_mem_size) ?(max_steps = max_int)
    ?(inputs = [||]) prog =
  {
    prog;
    mem = Bytes.make mem_size '\000';
    thread = Bytes.make default_thread_size '\000';
    inputs;
    outputs = [];
    steps = 0;
    max_steps;
  }

(* [__arg k] semantics shared by every engine: wrap the index into the
   input vector (empty vector reads as 0.0) *)
let nth_input (inputs : float array) (k : float) : float =
  let n = Array.length inputs in
  if n = 0 then 0.0
  else begin
    let i = int_of_float k in
    inputs.(((i mod n) + n) mod n)
  end

let read_input st (k : float) : float = nth_input st.inputs k

let check_mem st addr size =
  if addr < 0 || addr + size > Bytes.length st.mem then
    raise
      (Client_error (Printf.sprintf "memory access out of bounds: %d" addr))

let load st ty addr =
  check_mem st addr (Ir.ty_size ty);
  Value.read_bytes st.mem addr ty

let store st addr v =
  check_mem st addr (Ir.ty_size (Value.ty_of v));
  Value.write_bytes st.mem addr v

let get_thread st ty off = Value.read_bytes st.thread off ty
let put_thread st off v = Value.write_bytes st.thread off v

let rec eval_expr st (temps : Value.t array) (e : Ir.expr) : Value.t =
  match e with
  | Ir.RdTmp t -> temps.(t)
  | Ir.Const c -> Value.of_const c
  | Ir.LabelAddr l -> Value.VI64 (Int64.of_int (Ir.block_index st.prog l))
  | Ir.Get (off, ty) -> get_thread st ty off
  | Ir.Load (ty, a) ->
      let addr = Int64.to_int (Value.as_i64 (eval_expr st temps a)) in
      load st ty addr
  | Ir.Unop (op, a) -> Eval.eval_unop op (eval_expr st temps a)
  | Ir.Binop (op, a, b) ->
      Eval.eval_binop op (eval_expr st temps a) (eval_expr st temps b)
  | Ir.ITE (g, t, e2) ->
      if Value.as_bool (eval_expr st temps g) then eval_expr st temps t
      else eval_expr st temps e2

let init_value : Ir.ty -> Value.t = function
  | Ir.I1 -> Value.VBool false
  | Ir.I8 | Ir.I16 | Ir.I64 -> Value.VI64 0L
  | Ir.I32 -> Value.VI32 0l
  | Ir.F64 -> Value.VF64 0.0
  | Ir.F32 -> Value.VF32 0.0
  | Ir.V128 -> Value.VV128 (0L, 0L)

exception Exit_to of int

(* Run one superblock; return the next block index, or -1 to halt. *)
let run_block st (bidx : int) : int =
  let b = st.prog.Ir.blocks.(bidx) in
  let temps = Array.map init_value b.Ir.temp_tys in
  let cur_loc = ref Ir.no_loc in
  let n = Array.length b.Ir.stmts in
  let rec go i =
    if i >= n then
      match b.Ir.next with
      | Ir.Goto l -> Ir.block_index st.prog l
      | Ir.IndirectGoto e ->
          Int64.to_int (Value.as_i64 (eval_expr st temps e))
      | Ir.Halt -> -1
    else begin
      (match b.Ir.stmts.(i) with
      | Ir.IMark l -> cur_loc := l
      | Ir.WrTmp (t, e) -> temps.(t) <- eval_expr st temps e
      | Ir.Put (off, e) -> put_thread st off (eval_expr st temps e)
      | Ir.Store (a, v) ->
          let addr = Int64.to_int (Value.as_i64 (eval_expr st temps a)) in
          store st addr (eval_expr st temps v)
      | Ir.Dirty (t, name, args) ->
          let fargs =
            Array.of_list
              (List.map (fun a -> Value.as_f64 (eval_expr st temps a)) args)
          in
          let result =
            if name = "__arg" then read_input st fargs.(0)
            else Eval.libm_apply name fargs
          in
          temps.(t) <- Value.VF64 result
      | Ir.Exit (g, l) ->
          if Value.as_bool (eval_expr st temps g) then
            raise (Exit_to (Ir.block_index st.prog l))
      | Ir.Out (Ir.OutMark, e) ->
          (* analysis-only spot: evaluate for effect parity, do not record *)
          ignore (eval_expr st temps e)
      | Ir.Out ((Ir.OutFloat | Ir.OutInt) as kind, e) ->
          let v = eval_expr st temps e in
          st.outputs <-
            { stmt_id = Ir.stmt_id ~block:bidx ~stmt:i; loc = !cur_loc; kind; value = v }
            :: st.outputs);
      go (i + 1)
    end
  in
  try go 0 with Exit_to target -> target

(* The superblock stepping loop shared by every engine (this machine, the
   full instrumented interpreter, and the sanitizer): start at the entry
   block, follow the indices [run_block] returns, stop at -1. [error]
   builds each engine's own exception for jumps outside the program and
   an exceeded step budget; [tick] is the batch drivers' deadline hook,
   called once per superblock. Returns the number of superblocks run. *)
let drive ?(max_steps = max_int) ?tick ~(error : string -> exn)
    (prog : Ir.prog) ~(run_block : int -> int) : int =
  let bidx = ref prog.Ir.entry in
  let steps = ref 0 in
  while !bidx >= 0 do
    if !bidx >= Array.length prog.Ir.blocks then
      raise (error (Printf.sprintf "jump out of program: %d" !bidx));
    incr steps;
    if !steps > max_steps then raise (error "step budget exceeded");
    (match tick with Some f -> f () | None -> ());
    bidx := run_block !bidx
  done;
  !steps

let run ?mem_size ?max_steps ?inputs prog =
  let st = create ?mem_size ?max_steps ?inputs prog in
  let error msg = Client_error msg in
  st.steps <-
    drive ~max_steps:st.max_steps ~error st.prog ~run_block:(run_block st);
  st

let outputs st = List.rev st.outputs

let output_floats st =
  List.filter_map
    (fun o -> match o.value with Value.VF64 f -> Some f | Value.VF32 f -> Some f | _ -> None)
    (outputs st)
