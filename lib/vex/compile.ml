(* Pre-decoded superblocks: the compile-once/run-many layer under both
   instrumented executors ([Core.Exec] and [Sanitize.Sexec]).

   The tree-walking interpreters re-derived per statement, on every
   execution, facts that never change: the statement id, the current
   source location (set by the preceding IMark), the type-inference
   action, tiered restrict-mask membership, and — through the label
   hashtable — every jump target. This module resolves all of that once
   per program into a flat array of decoded statements per block:

   - IMark statements are elided. Each compiled statement carries the
     statically-known location of its nearest preceding IMark, plus a
     [cs_run_w] weight (1 + the elided IMarks before it) so the executed
     raw-statement count stays exactly what the interpreter reported,
     including on a taken side exit.
   - [LabelAddr] expressions, [Exit] targets and [Goto] successors are
     resolved to block indices, removing every label lookup from the hot
     path.
   - The three-way dispatch the executors performed per statement
     (type-inference fast path / off the tiered slice / fully
     instrumented) is a precomputed tag. The classification mirrors the
     interpreters' match order: the fast paths win even off-slice.
   - [Dirty] argument lists are pre-flattened to arrays and the "__arg"
     harness builtin is recognized at compile time.

   Compiled programs are cached process-wide, keyed by the program's
   structure plus everything that changes the compilation (the
   type-inference switch and the tiered restrict mask), so repeated
   fleet, suite or fuzz jobs over the same benchmark never re-decode.
   Compiled blocks are immutable after construction and safe to share
   across domains. *)

type cpath =
  | PFast  (* type-inference fast path: no shadow bookkeeping *)
  | POff  (* tiered pass 2, off the escalated slice: machine-only *)
  | PFull  (* fully instrumented *)

type cop =
  | CWrTmp of int * Ir.expr
  | CPut of int * Ir.expr
  | CStore of Ir.expr * Ir.expr
  | CDirtyArg of int * Ir.expr array  (* the "__arg" harness input *)
  | CDirty of int * string * Ir.expr array
  | CExit of Ir.expr * int  (* guard, resolved target block *)
  | COut of Ir.out_kind * Ir.expr

type cstmt = {
  cs_op : cop;
  cs_id : int;  (* Ir.stmt_id of the original statement *)
  cs_loc : Ir.loc;  (* static location: nearest preceding IMark *)
  cs_path : cpath;
  cs_run_w : int;  (* raw-statement weight: 1 + elided IMarks before *)
}

type cnext = CGoto of int | CIndirect of Ir.expr | CHalt

type cblock = {
  cb_stmts : cstmt array;
  cb_tail_w : int;  (* elided IMarks after the last real statement *)
  cb_n_raw : int;  (* raw statements in the original block *)
  cb_next : cnext;
}

type t = {
  cblocks : cblock array;
  c_traces_reachable : bool;
      (* the lazy-trace reachability verdict for this compilation: true
         iff some compiled statement consumes concrete traces (an
         op-aggregation site exists and expressions are being built).
         When false, executors keep the logical trace-node count with
         phantom bumps and never materialize a node. *)
}

(* ---------- expression pre-resolution ---------- *)

(* Replace LabelAddr with the resolved block index. The interpreter
   evaluated both to the same VI64 with no shadow, so the rewrite is
   invisible to all three engines. *)
let rec resolve_expr (prog : Ir.prog) (e : Ir.expr) : Ir.expr =
  match e with
  | Ir.RdTmp _ | Ir.Const _ -> e
  | Ir.LabelAddr l ->
      Ir.Const (Ir.CI64 (Int64.of_int (Ir.block_index prog l)))
  | Ir.Get _ -> e
  | Ir.Load (ty, a) -> Ir.Load (ty, resolve_expr prog a)
  | Ir.Unop (op, a) -> Ir.Unop (op, resolve_expr prog a)
  | Ir.Binop (op, a, b) ->
      Ir.Binop (op, resolve_expr prog a, resolve_expr prog b)
  | Ir.ITE (g, t, e2) ->
      Ir.ITE (resolve_expr prog g, resolve_expr prog t, resolve_expr prog e2)

(* ---------- per-block compilation ---------- *)

(* The lazy-trace reachability pre-pass. Concrete trace nodes are
   consumed in exactly two ways: an op-aggregation site folds its result
   trace into anti-unification the moment it is built, and building any
   node reads its children. Both happen only at fully-instrumented
   statements whose expressions contain a shadowed float operation (or a
   libm dirty call, or an integer mask op that may be a recognized
   negate/fabs bit trick). Output and comparison spots read only the
   real and influence components of a shadow. So if no such statement
   exists on a full path anywhere in the program, no trace can ever
   reach a consumer and the executors need not materialize any node —
   only keep the logical count. *)
let rec expr_builds_nodes (e : Ir.expr) : bool =
  match e with
  | Ir.RdTmp _ | Ir.Const _ | Ir.LabelAddr _ | Ir.Get _ -> false
  | Ir.Load (_, a) -> expr_builds_nodes a
  | Ir.Unop (op, a) -> (
      match op with
      | Ir.NegF64 | Ir.AbsF64 | Ir.SqrtF64 | Ir.NegF32 | Ir.AbsF32
      | Ir.SqrtF32 | Ir.Sqrt64Fx2 ->
          true
      | _ -> expr_builds_nodes a)
  | Ir.Binop (op, a, b) -> (
      match op with
      | Ir.AddF64 | Ir.SubF64 | Ir.MulF64 | Ir.DivF64 | Ir.MinF64
      | Ir.MaxF64 | Ir.AddF32 | Ir.SubF32 | Ir.MulF32 | Ir.DivF32
      | Ir.Add64Fx2 | Ir.Sub64Fx2 | Ir.Mul64Fx2 | Ir.Div64Fx2 | Ir.Add32Fx4
      | Ir.Sub32Fx4 | Ir.Mul32Fx4 | Ir.Div32Fx4 | Ir.Xor64 | Ir.And64 ->
          true
      | _ -> expr_builds_nodes a || expr_builds_nodes b)
  | Ir.ITE (g, t, e2) ->
      expr_builds_nodes g || expr_builds_nodes t || expr_builds_nodes e2

let consumes_traces (op : cop) (path : cpath) : bool =
  match path with
  | PFast | POff -> false
  | PFull -> (
      match op with
      | CDirty _ -> true  (* libm calls are op-aggregation sites *)
      | CDirtyArg _ -> false  (* harness input: a leaf, never a consumer *)
      | CWrTmp (_, e) | CPut (_, e) | CExit (e, _) | COut (_, e) ->
          expr_builds_nodes e
      | CStore (a, v) -> expr_builds_nodes a || expr_builds_nodes v)

let compile_block (prog : Ir.prog) ~(actions : Typeinfer.action array)
    ~(restrict_row : bool array option) (bidx : int) (b : Ir.block) : cblock =
  let n = Array.length b.Ir.stmts in
  let out = ref [] in
  let cur_loc = ref Ir.no_loc in
  let pending = ref 0 in
  for i = 0 to n - 1 do
    match b.Ir.stmts.(i) with
    | Ir.IMark l ->
        cur_loc := l;
        incr pending
    | s ->
        let fast =
          match (s, actions.(i)) with
          | Ir.WrTmp _, Typeinfer.Skip
          | Ir.Exit _, Typeinfer.Skip
          | Ir.Put _, Typeinfer.Clear
          | Ir.Store _, Typeinfer.Clear ->
              true
          | _ -> false
        in
        let path =
          if fast then PFast
          else
            match restrict_row with
            | Some row when not row.(i) -> POff
            | _ -> PFull
        in
        let r = resolve_expr prog in
        let op =
          match s with
          | Ir.IMark _ -> assert false
          | Ir.WrTmp (t, e) -> CWrTmp (t, r e)
          | Ir.Put (off, e) -> CPut (off, r e)
          | Ir.Store (a, v) -> CStore (r a, r v)
          | Ir.Dirty (t, name, args) ->
              let args = Array.of_list (List.map r args) in
              if name = "__arg" then CDirtyArg (t, args)
              else CDirty (t, name, args)
          | Ir.Exit (g, l) -> CExit (r g, Ir.block_index prog l)
          | Ir.Out (k, e) -> COut (k, r e)
        in
        out :=
          {
            cs_op = op;
            cs_id = Ir.stmt_id ~block:bidx ~stmt:i;
            cs_loc = !cur_loc;
            cs_path = path;
            cs_run_w = !pending + 1;
          }
          :: !out;
        pending := 0
  done;
  let next =
    match b.Ir.next with
    | Ir.Goto l -> CGoto (Ir.block_index prog l)
    | Ir.IndirectGoto e -> CIndirect (resolve_expr prog e)
    | Ir.Halt -> CHalt
  in
  {
    cb_stmts = Array.of_list (List.rev !out);
    cb_tail_w = !pending;
    cb_n_raw = n;
    cb_next = next;
  }

let compile ~(type_inference : bool) ?(restrict : bool array array option)
    (prog : Ir.prog) : t =
  let info =
    if type_inference then Typeinfer.infer prog else Typeinfer.all_full prog
  in
  let cblocks =
    Array.mapi
      (fun bidx b ->
        let actions = Typeinfer.block_actions info ~block:bidx in
        let restrict_row =
          match restrict with None -> None | Some m -> Some m.(bidx)
        in
        compile_block prog ~actions ~restrict_row bidx b)
      prog.Ir.blocks
  in
  let reachable =
    Array.exists
      (fun cb ->
        Array.exists (fun c -> consumes_traces c.cs_op c.cs_path) cb.cb_stmts)
      cblocks
  in
  { cblocks; c_traces_reachable = reachable }

(* ---------- the compile cache ---------- *)

let blocks_compiled = Atomic.make 0
let cache_hits = Atomic.make 0
let blocks_compiled_total () = Atomic.get blocks_compiled
let cache_hits_total () = Atomic.get cache_hits

(* Keyed by everything the compilation depends on: the structural
   content of the program (blocks and entry; the label hashtable is
   derived from them) plus the type-inference flag and the restrict
   mask. Marshal is deterministic on these immutable trees. *)
let cache_key ~type_inference ~(restrict : bool array array option)
    (prog : Ir.prog) : string =
  let b = Buffer.create 256 in
  Buffer.add_string b (Marshal.to_string (prog.Ir.blocks, prog.Ir.entry) []);
  Buffer.add_char b (if type_inference then 'T' else 'F');
  (match restrict with
  | None -> Buffer.add_char b '-'
  | Some m -> Buffer.add_string b (Marshal.to_string m []));
  Digest.string (Buffer.contents b)

let cache : (string, t) Hashtbl.t = Hashtbl.create 64
let cache_mu = Mutex.create ()

(* enough for every benchmark suite plus a fuzz campaign's working set;
   a full wipe on overflow keeps the bound simple and the common case
   allocation-free *)
let max_cache_entries = 1024

let get_slow ~(type_inference : bool) ~(restrict : bool array array option)
    (prog : Ir.prog) : t =
  let key = cache_key ~type_inference ~restrict prog in
  Mutex.lock cache_mu;
  match Hashtbl.find_opt cache key with
  | Some c ->
      Atomic.incr cache_hits;
      Mutex.unlock cache_mu;
      c
  | None ->
      (* compile outside the lock: programs are immutable and compiling
         the same key twice costs only the duplicated work *)
      Mutex.unlock cache_mu;
      let c = compile ~type_inference ?restrict prog in
      Atomic.fetch_and_add blocks_compiled (Array.length c.cblocks) |> ignore;
      Mutex.lock cache_mu;
      if Hashtbl.length cache >= max_cache_entries then Hashtbl.reset cache;
      if not (Hashtbl.mem cache key) then Hashtbl.add cache key c;
      Mutex.unlock cache_mu;
      c

(* A per-domain one-entry memo in front of the digest cache: batch
   drivers run the same (physically identical) program value back to
   back, and hashing a whole program per run is measurable across a
   suite. Restricted compilations skip it — their masks are rebuilt per
   run, so physical identity never holds for them. *)
type memo_entry = {
  me_prog : Ir.prog;
  me_type_inference : bool;
  me_compiled : t;
}

let memo_key : memo_entry option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let get ~(type_inference : bool) ?(restrict : bool array array option)
    (prog : Ir.prog) : t =
  match restrict with
  | Some _ -> get_slow ~type_inference ~restrict prog
  | None -> (
      let memo = Domain.DLS.get memo_key in
      match !memo with
      | Some m when m.me_prog == prog && m.me_type_inference = type_inference
        ->
          Atomic.incr cache_hits;
          m.me_compiled
      | _ ->
          let c = get_slow ~type_inference ~restrict prog in
          memo :=
            Some
              {
                me_prog = prog;
                me_type_inference = type_inference;
                me_compiled = c;
              };
          c)
