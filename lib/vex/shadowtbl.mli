(** Sparse shadow storage over a byte-addressed space, polymorphic in
    the shadow payload so the full analysis (Bigfloat shadows) and the
    sanitizer (double-double shadows) share one aliasing discipline: an
    entry covers [addr, addr+size) bytes and any overlapping write kills
    it. Entries are expected at 4-byte granularity (F32/F64 slots and
    V128 lanes), which bounds the overlap scan. *)

type 'a t = (int, 'a * int) Hashtbl.t

val create : int -> 'a t

val clear_range : 'a t -> int -> int -> unit
(** [clear_range tbl addr size] removes every entry overlapping
    [addr, addr+size). *)

val write : 'a t -> int -> int -> 'a option -> unit
(** [write tbl addr size sh] clears the range, then (for [Some]) records
    [sh] as covering [addr, addr+size). [None] just clears. *)

val read : 'a t -> int -> int -> 'a option
(** [read tbl addr size] returns the entry at exactly [addr] with
    exactly [size] bytes, if any. *)

val set : 'a t -> int -> int -> 'a -> unit
(** [write] with a present payload, minus the option allocation — for
    engines whose store path is allocation-sensitive. *)

val get : 'a t -> int -> int -> 'a
(** [read] minus the option allocation: returns the entry at exactly
    [addr]/[size] or raises [Not_found]. *)
