(* Normalization before code generation:

   - every user-function call is hoisted into its own declaration
     statement, so [Codegen] only ever sees calls at statement level
     (calls break VEX superblocks, and temporaries do not survive block
     boundaries);
   - [for] loops are desugared into [while] loops;
   - loop conditions containing calls get their hoisted statements
     replayed at the end of each iteration.

   Math library builtins ([Vex.Eval.libm_known]) are not hoisted when they
   compile to inline hardware ops or Dirty calls; with libm wrapping off,
   the transcendentals implemented by the MiniC math library become
   ordinary user calls and are hoisted like any other call. *)

open Ast

type config = { wrap_libm : bool; mathlib_names : string list }

let is_inline_call cfg name =
  Vex.Eval.libm_known name
  && (cfg.wrap_libm || not (List.mem name cfg.mathlib_names))

(* Hoist names only need to be unique within one translation unit, so the
   counter is domain-local and reset per [normalize] call: concurrent
   compilations on other domains (fpgrind.fleet) cannot perturb it, which
   keeps compiled programs byte-identical however jobs are scheduled. *)
let fresh_counter = Domain.DLS.new_key (fun () -> ref 0)

let fresh_name () =
  let c = Domain.DLS.get fresh_counter in
  incr c;
  Printf.sprintf "__hoist%d" !c

let rec has_user_call cfg (e : expr) : bool =
  match e.desc with
  | Int_lit _ | Float_lit _ | Var _ -> false
  | Index (a, i) -> has_user_call cfg a || has_user_call cfg i
  | Call (name, args) ->
      (not (is_inline_call cfg name)) || List.exists (has_user_call cfg) args
  | Unary (_, a) -> has_user_call cfg a
  | Binary (_, a, b) -> has_user_call cfg a || has_user_call cfg b
  | Cast (_, a) -> has_user_call cfg a

(* All normalization runs against a live Typecheck environment so hoisted
   temporaries can be typed; declarations are recorded as they are made. *)

let declare (env : Typecheck.env) name ty =
  env.Typecheck.locals <- (name, ty) :: env.Typecheck.locals

(* Hoist user calls out of [e]: returns (decl statements, call-free expr). *)
let rec hoist cfg env (e : expr) : stmt list * expr =
  if not (has_user_call cfg e) then ([], e)
  else
    match e.desc with
    | Int_lit _ | Float_lit _ | Var _ -> ([], e)
    | Index (a, i) ->
        let sa, a' = hoist cfg env a in
        let si, i' = hoist cfg env i in
        (sa @ si, { e with desc = Index (a', i') })
    | Unary (op, a) ->
        let sa, a' = hoist cfg env a in
        (sa, { e with desc = Unary (op, a') })
    | Binary (op, a, b) ->
        let sa, a' = hoist cfg env a in
        let sb, b' = hoist cfg env b in
        (sa @ sb, { e with desc = Binary (op, a', b') })
    | Cast (t, a) ->
        let sa, a' = hoist cfg env a in
        (sa, { e with desc = Cast (t, a') })
    | Call (name, args) ->
        let stmts, args' = hoist_list cfg env args in
        let call = { e with desc = Call (name, args') } in
        if is_inline_call cfg name then (stmts, call)
        else begin
          let tmp = fresh_name () in
          let ty = Typecheck.expr_ty env call in
          declare env tmp ty;
          let decl =
            { sdesc = Decl (ty, tmp, Some call); spos = { line = e.pos.line } }
          in
          (stmts @ [ decl ], { e with desc = Var tmp })
        end

and hoist_list cfg env args =
  let stmts, rev =
    List.fold_left
      (fun (ss, aa) arg ->
        let s, a' = hoist cfg env arg in
        (ss @ s, a' :: aa))
      ([], []) args
  in
  (stmts, List.rev rev)

(* Hoist arguments but keep a top-level user call in place (the canonical
   "call statement" position). *)
let hoist_keep_top cfg env (e : expr) : stmt list * expr =
  match e.desc with
  | Call (name, args) when not (is_inline_call cfg name) ->
      let pre, args' = hoist_list cfg env args in
      (pre, { e with desc = Call (name, args') })
  | _ -> hoist cfg env e

let rec norm_stmt cfg env (s : stmt) : stmt list =
  match s.sdesc with
  | Decl (t, name, Some init) ->
      let pre, init' = hoist_keep_top cfg env init in
      declare env name t;
      pre @ [ { s with sdesc = Decl (t, name, Some init') } ]
  | Decl (t, name, None) ->
      declare env name t;
      [ s ]
  | Assign (name, e) ->
      let pre, e' = hoist_keep_top cfg env e in
      pre @ [ { s with sdesc = Assign (name, e') } ]
  | Store (name, idx, e) ->
      let si, idx' = hoist cfg env idx in
      let se, e' = hoist cfg env e in
      si @ se @ [ { s with sdesc = Store (name, idx', e') } ]
  | If (c, then_, else_) ->
      let sc, c' = hoist cfg env c in
      let then' = norm_block cfg env then_ in
      let else' = norm_block cfg env else_ in
      sc @ [ { s with sdesc = If (c', then', else') } ]
  | While (c, body) ->
      let saved = env.Typecheck.locals in
      let sc, c' = hoist cfg env c in
      let body' = norm_block cfg env body in
      env.Typecheck.locals <- saved;
      if sc = [] then [ { s with sdesc = While (c', body') } ]
      else begin
        (* run the condition's call statements before the loop, and replay
           them as assignments at the end of each iteration so the same
           frame slots are updated *)
        let replay =
          List.map
            (fun st ->
              match st.sdesc with
              | Decl (_, n, Some e) -> { st with sdesc = Assign (n, e) }
              | Decl (_, _, None) | Assign _ | Store _ | If _ | While _
              | For _ | Return _ | Expr _ | Print _ | Mark _ | Break
              | Continue ->
                  st)
            sc
        in
        List.iter
          (fun st ->
            match st.sdesc with
            | Decl (t, n, _) -> declare env n t
            | Assign _ | Store _ | If _ | While _ | For _ | Return _ | Expr _
            | Print _ | Mark _ | Break | Continue ->
                ())
          sc;
        sc @ [ { s with sdesc = While (c', body' @ replay) } ]
      end
  | For (init, cond, step, body) ->
      (* `continue` inside a for-loop would skip the desugared step
         statement; reject it rather than silently change semantics *)
      let rec has_continue stmts =
        List.exists
          (fun st ->
            match st.sdesc with
            | Continue -> true
            | If (_, a, b) -> has_continue a || has_continue b
            | While _ | For _ -> false (* belongs to the inner loop *)
            | Decl _ | Assign _ | Store _ | Return _ | Expr _ | Print _
            | Mark _ | Break ->
                false)
          stmts
      in
      if step <> None && has_continue body then
        raise
          (Typecheck.Type_error
             ("continue inside a for loop with a step is not supported; use while",
              s.spos.line));
      let saved = env.Typecheck.locals in
      let init' = match init with Some st -> norm_stmt cfg env st | None -> [] in
      let cond' =
        match cond with
        | Some c -> c
        | None -> { desc = Int_lit 1L; pos = { line = s.spos.line } }
      in
      let step_stmts = match step with Some st -> [ st ] | None -> [] in
      let while_stmt = { s with sdesc = While (cond', body @ step_stmts) } in
      let out = init' @ norm_stmt cfg env while_stmt in
      env.Typecheck.locals <- saved;
      out
  | Return (Some e) ->
      let pre, e' = hoist cfg env e in
      pre @ [ { s with sdesc = Return (Some e') } ]
  | Return None -> [ s ]
  | Expr e ->
      let pre, e' = hoist_keep_top cfg env e in
      pre @ [ { s with sdesc = Expr e' } ]
  | Print e ->
      let pre, e' = hoist cfg env e in
      pre @ [ { s with sdesc = Print e' } ]
  | Mark e ->
      let pre, e' = hoist cfg env e in
      pre @ [ { s with sdesc = Mark e' } ]
  | Break | Continue -> [ s ]

and norm_block cfg env stmts =
  let saved = env.Typecheck.locals in
  let out = List.concat_map (norm_stmt cfg env) stmts in
  env.Typecheck.locals <- saved;
  out

let normalize cfg (env : Typecheck.env) (p : program) : program =
  Domain.DLS.get fresh_counter := 0;
  let norm_func (f : func) : func =
    env.Typecheck.locals <- List.map (fun (t, n) -> (n, t)) f.params;
    let body = List.concat_map (norm_stmt cfg env) f.body in
    env.Typecheck.locals <- [];
    { f with body }
  in
  { p with funcs = List.map norm_func p.funcs }
