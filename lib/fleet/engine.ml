(* fpgrind.fleet — a parallel, fault-isolated batch-analysis engine.

   Many [Analysis.analyze] jobs run across a pool of OCaml 5 domains: an
   atomic work counter feeds N workers, each job gets a wall-clock
   deadline enforced cooperatively through the analysis tick, and any
   exception a job raises (including the deadline) becomes a structured
   outcome instead of taking down the fleet.

   Determinism contract: the number of workers only changes *scheduling*.
   Each job compiles and analyzes in isolation (lib/core holds no shared
   mutable analysis state; see Trace/Normalize/Bigfloat_math), results
   land in a slot indexed by submission order, and nothing about a job's
   summary or report depends on wall time — so a `-j 4` run produces the
   same per-job output as `-j 1`. *)

exception Deadline_exceeded

type status =
  | Done
  | Failed of string  (* the raised exception, printed *)
  | Timed_out
  | Cached  (* reused from a results store, work skipped *)

type metrics = {
  m_blocks : int;  (* superblocks executed *)
  m_stmts : int;  (* statements executed (instruction count) *)
  m_stmts_executed : int;  (* pre-decoded statements dispatched *)
  m_fp_ops : int;  (* shadowed floating-point operations *)
  m_trace_nodes : int;  (* concrete trace nodes built for this job *)
  m_traces_materialized : int;  (* trace nodes actually allocated *)
  m_spots : int;  (* spots observed *)
  m_causes : int;  (* erroneous expressions above threshold *)
  m_compensations : int;
  m_err_max : float;  (* max output-spot error, bits *)
  m_escalations : int;  (* tiered: 1 if pass 2 ran, else 0 *)
  m_slice_stmts : int;  (* tiered: statements in the escalated slice *)
}

(* Regime-inference artifacts, attached to a job when the caller asked
   for branched-fix synthesis (`suite --regimes`, `POST
   /analyze?regimes=1`). The fleet carries and serializes them but never
   computes them — the regime library sits above the fleet. *)
type regime_summary = {
  rs_regimes : int;  (* 1 = no branch *)
  rs_thresholds : (string * float) list;  (* (variable, threshold) *)
  rs_error_table : string;  (* actual-vs-predicted table, rendered *)
  rs_search_points : int;  (* point evaluations the regime search spent *)
}

type payload = {
  p_metrics : metrics;
  p_summary : string;  (* one deterministic line, no timing *)
  p_report : string;  (* the full root-cause report *)
  p_regime : regime_summary option;
}

type spec = {
  sp_name : string;
  sp_group : string;
  sp_key : string;  (* content-hash cache key; "" disables caching *)
  sp_engine : string;  (* "full", "sanitize" or "tiered" *)
  sp_work : tick:(unit -> unit) -> payload;
}

type outcome = {
  o_name : string;
  o_group : string;
  o_key : string;
  o_engine : string;  (* copied from the spec *)
  o_status : status;
  o_wall_s : float;
  o_payload : payload option;  (* [Some] for [Done] and [Cached] *)
}

type progress = { pr_done : int; pr_total : int; pr_last : outcome }

(* ---------- observability hooks ---------- *)

(* An installed observer sees every job the engine runs — batch or pool —
   without the fleet depending on whoever is watching (lib/serve's
   metrics layer installs one). Observer exceptions are swallowed:
   observability must never change an outcome. *)
type observer = {
  ob_started : spec -> unit;
  ob_finished : outcome -> unit;
}

let the_observer : observer option Atomic.t = Atomic.make None
let set_observer (ob : observer) = Atomic.set the_observer (Some ob)
let clear_observer () = Atomic.set the_observer None

let notify_started sp =
  match Atomic.get the_observer with
  | Some ob -> ( try ob.ob_started sp with _ -> ())
  | None -> ()

let notify_finished o =
  match Atomic.get the_observer with
  | Some ob -> ( try ob.ob_finished o with _ -> ())
  | None -> ()

(* ---------- running one job ---------- *)

(* The deadline is enforced from the executors' tick. The executors
   already stride the callback — one call per ~thousand executed
   statements, with a guaranteed call on the first block — so every call
   compares the clock directly: an already-expired deadline fires
   deterministically even on tiny jobs. A domain cannot be killed, so a
   job that never re-enters the execution loop can only be stopped by
   [Exec]'s own step budget. *)
let make_tick ~start = function
  | None -> fun () -> ()
  | Some timeout ->
      let deadline = start +. timeout in
      fun () -> if Unix.gettimeofday () > deadline then raise Deadline_exceeded

let exec_one ?timeout (sp : spec) : outcome =
  notify_started sp;
  let start = Unix.gettimeofday () in
  let finish status payload =
    let o =
      {
        o_name = sp.sp_name;
        o_group = sp.sp_group;
        o_key = sp.sp_key;
        o_engine = sp.sp_engine;
        o_status = status;
        o_wall_s = Unix.gettimeofday () -. start;
        o_payload = payload;
      }
    in
    notify_finished o;
    o
  in
  match sp.sp_work ~tick:(make_tick ~start timeout) with
  | p -> finish Done (Some p)
  | exception Deadline_exceeded -> finish Timed_out None
  | exception e -> finish (Failed (Printexc.to_string e)) None

(* ---------- the pool ---------- *)

let run ?(jobs = 1) ?timeout ?cache ?on_progress (specs : spec list) :
    outcome list =
  let arr = Array.of_list specs in
  let n = Array.length arr in
  let results : outcome option array = Array.make n None in
  let next = Atomic.make 0 in
  let lock = Mutex.create () in
  let completed = ref 0 in
  let record i (o : outcome) =
    Mutex.lock lock;
    results.(i) <- Some o;
    incr completed;
    (match on_progress with
    | Some f -> (
        (* a throwing progress callback must not kill a worker *)
        try f { pr_done = !completed; pr_total = n; pr_last = o }
        with _ -> ())
    | None -> ());
    Mutex.unlock lock
  in
  let run_one i =
    let sp = arr.(i) in
    let cached =
      match cache with
      | Some lookup when sp.sp_key <> "" -> lookup sp.sp_key
      | _ -> None
    in
    match cached with
    | Some (prev : outcome) when prev.o_payload <> None ->
        let o =
          {
            prev with
            o_name = sp.sp_name;
            o_group = sp.sp_group;
            o_key = sp.sp_key;
            o_engine = sp.sp_engine;
            o_status = Cached;
            o_wall_s = 0.0;
          }
        in
        notify_finished o;
        record i o
    | _ -> record i (exec_one ?timeout sp)
  in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        run_one i;
        loop ()
      end
    in
    loop ()
  in
  let helpers =
    List.init (max 0 (min jobs n - 1)) (fun _ -> Domain.spawn worker)
  in
  worker ();
  List.iter Domain.join helpers;
  Array.to_list results
  |> List.map (function
       | Some o -> o
       | None -> assert false (* every index was claimed exactly once *))

(* ---------- the persistent pool (submit-one-job API) ---------- *)

(* [run] spawns domains per batch; a server cannot afford that per
   request, so [Pool] keeps the workers alive. A bounded queue feeds
   [jobs] domains; [submit] refuses (returns [None]) rather than queueing
   unboundedly when [queue] tickets are already waiting, which the caller
   turns into backpressure (HTTP 503); [drain] stops intake, finishes
   every queued and in-flight job, and joins the workers. Jobs already
   running or queued at drain time always complete — that is the graceful
   shutdown contract the server relies on. *)
module Pool = struct
  type ticket = {
    tk_spec : spec;
    tk_timeout : float option;
    mutable tk_outcome : outcome option;
  }

  type t = {
    mu : Mutex.t;
    cond : Condition.t;
    pending : ticket Queue.t;
    queue_max : int;
    mutable running : int;
    mutable stopping : bool;
    mutable workers : unit Domain.t list;
  }

  let rec worker_loop (t : t) =
    Mutex.lock t.mu;
    while Queue.is_empty t.pending && not t.stopping do
      Condition.wait t.cond t.mu
    done;
    if Queue.is_empty t.pending then Mutex.unlock t.mu (* stopping: exit *)
    else begin
      let tk = Queue.pop t.pending in
      t.running <- t.running + 1;
      Mutex.unlock t.mu;
      let o = exec_one ?timeout:tk.tk_timeout tk.tk_spec in
      Mutex.lock t.mu;
      t.running <- t.running - 1;
      tk.tk_outcome <- Some o;
      Condition.broadcast t.cond;
      Mutex.unlock t.mu;
      worker_loop t
    end

  let create ?(queue = 64) ~jobs () : t =
    let t =
      {
        mu = Mutex.create ();
        cond = Condition.create ();
        pending = Queue.create ();
        queue_max = max 0 queue;
        running = 0;
        stopping = false;
        workers = [];
      }
    in
    t.workers <-
      List.init (max 1 jobs) (fun _ -> Domain.spawn (fun () -> worker_loop t));
    t

  (* [None] means the queue is full (or the pool is draining): the job was
     not accepted and will never run. *)
  let submit (t : t) ?timeout (sp : spec) : ticket option =
    Mutex.lock t.mu;
    if t.stopping || Queue.length t.pending >= t.queue_max then begin
      Mutex.unlock t.mu;
      None
    end
    else begin
      let tk = { tk_spec = sp; tk_timeout = timeout; tk_outcome = None } in
      Queue.push tk t.pending;
      Condition.broadcast t.cond;
      Mutex.unlock t.mu;
      Some tk
    end

  let await (t : t) (tk : ticket) : outcome =
    Mutex.lock t.mu;
    let rec wait () =
      match tk.tk_outcome with
      | Some o ->
          Mutex.unlock t.mu;
          o
      | None ->
          Condition.wait t.cond t.mu;
          wait ()
    in
    wait ()

  let queue_depth (t : t) =
    Mutex.lock t.mu;
    let n = Queue.length t.pending in
    Mutex.unlock t.mu;
    n

  let in_flight (t : t) =
    Mutex.lock t.mu;
    let n = t.running in
    Mutex.unlock t.mu;
    n

  let drain (t : t) =
    Mutex.lock t.mu;
    t.stopping <- true;
    Condition.broadcast t.cond;
    Mutex.unlock t.mu;
    List.iter Domain.join t.workers;
    t.workers <- []
end

(* ---------- the standard benchmark job ---------- *)

let scale_tag = function Fpcore.Suite.Linear -> "lin" | Fpcore.Suite.Log -> "log"

(* The cache key hashes everything that determines a job's result:
   benchmark source and sampling ranges, iteration count, sampling seed,
   and the full analysis configuration. Re-runs skip a job iff nothing
   it depends on changed. *)
let job_key ?(cfg = Core.Config.default) (j : Fpcore.Suite.job) : string =
  let b = j.Fpcore.Suite.job_bench in
  let ranges =
    List.map
      (fun (v, lo, hi, sc) -> Printf.sprintf "%s:%h:%h:%s" v lo hi (scale_tag sc))
      b.Fpcore.Suite.ranges
  in
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          ([ b.Fpcore.Suite.src ]
          @ ranges
          @ [
              string_of_int j.Fpcore.Suite.job_iterations;
              string_of_int j.Fpcore.Suite.job_seed;
              Core.Config.fingerprint cfg;
            ])))

let group_name (b : Fpcore.Suite.bench) =
  match b.Fpcore.Suite.group with
  | `Straight -> "straight-line"
  | `Loop -> "looping"

let max_output_err (r : Core.Analysis.result) =
  List.fold_left
    (fun m (s : Core.Exec.spot_info) -> Float.max m s.Core.Exec.s_err_max)
    0.0
    (Core.Analysis.output_spots r)

(* The standard payload of an analysis job: metrics, the deterministic
   summary line, and the full report. [nodes0] and [mat0] are the
   domain's trace-node counters (logical creations and actual
   materializations) captured before the analysis ran, so
   [m_trace_nodes] / [m_traces_materialized] are the deltas this job
   created; their gap is the lazy-trace saving. Shared by [bench_spec]
   and by ad-hoc job builders (the serve subsystem) so a source analyzed
   over HTTP yields the same record as the batch path. *)
let payload_for ~name ~group ~nodes0 ~mat0 (r : Core.Analysis.result) :
    payload =
  let st = r.Core.Analysis.raw.Core.Exec.r_stats in
  let err_max = max_output_err r in
  let causes = List.length (Core.Analysis.erroneous_expressions r) in
  let metrics =
    {
      m_blocks = st.Core.Exec.blocks_run;
      m_stmts = st.Core.Exec.stmts_run;
      m_stmts_executed = st.Core.Exec.stmts_executed;
      m_fp_ops = st.Core.Exec.fp_ops;
      m_trace_nodes = Core.Trace.created_in_domain () - nodes0;
      m_traces_materialized = Core.Trace.materialized_in_domain () - mat0;
      m_spots = Hashtbl.length r.Core.Analysis.raw.Core.Exec.r_spots;
      m_causes = causes;
      m_compensations = st.Core.Exec.compensations;
      m_err_max = err_max;
      m_escalations = 0;
      m_slice_stmts = 0;
    }
  in
  let summary =
    Printf.sprintf "%-24s %13s  max output error %5.1f bits, %d root cause%s"
      name group err_max causes
      (if causes = 1 then "" else "s")
  in
  {
    p_metrics = metrics;
    p_summary = summary;
    p_report = Core.Analysis.report_string r;
    p_regime = None;
  }

(* The sanitizer's payload, shaped like the full engine's so the store,
   summary table and serve layer need no second schema. The fields keep
   their meaning where one exists ([m_causes] = findings that fired,
   [m_err_max] = worst output-check error) and go to zero where the
   sanitizer has no analogue (trace nodes, compensations). *)
let san_payload_for ~name ~group (r : Sanitize.Sexec.result) : payload =
  let st = r.Sanitize.Sexec.sx_stats in
  let rep = Sanitize.Report.build r in
  let err_max =
    List.fold_left
      (fun m (f : Sanitize.Sexec.finding) ->
        match f.Sanitize.Sexec.f_kind with
        | Sanitize.Sexec.Check_output -> Float.max m f.Sanitize.Sexec.f_bits_max
        | _ -> m)
      0.0 rep.Sanitize.Report.findings
  in
  let causes = List.length rep.Sanitize.Report.findings in
  let metrics =
    {
      m_blocks = st.Sanitize.Sexec.blocks_run;
      m_stmts = st.Sanitize.Sexec.stmts_run;
      m_stmts_executed = st.Sanitize.Sexec.stmts_executed;
      m_fp_ops = st.Sanitize.Sexec.shadow_ops;
      m_trace_nodes = 0;
      m_traces_materialized = 0;
      m_spots = rep.Sanitize.Report.total_points;
      m_causes = causes;
      m_compensations = 0;
      m_err_max = err_max;
      m_escalations = 0;
      m_slice_stmts = 0;
    }
  in
  let summary =
    Printf.sprintf "%-24s %13s  max output error %5.1f bits, %d finding%s"
      name group err_max causes
      (if causes = 1 then "" else "s")
  in
  {
    p_metrics = metrics;
    p_summary = summary;
    p_report = Sanitize.Report.to_string rep;
    p_regime = None;
  }

(* The tiered engine's payload: pass 2's metrics and report when the
   program escalated (so a fully escalated job's record matches the full
   engine's, plus the escalation counters); pass 1's run stats and the
   clean-program report when it did not. *)
let tiered_payload_for ~name ~group ~nodes0 ~mat0 (r : Tiered.result) :
    payload =
  match r.Tiered.t_full with
  | Some full ->
      let p = payload_for ~name ~group ~nodes0 ~mat0 full in
      {
        p with
        p_metrics =
          {
            p.p_metrics with
            m_escalations = 1;
            m_slice_stmts = r.Tiered.t_slice_stmts;
          };
        p_summary =
          Printf.sprintf "%s [slice %d stmts]" p.p_summary
            r.Tiered.t_slice_stmts;
      }
  | None ->
      let st = r.Tiered.t_san.Sanitize.Sexec.sx_stats in
      let metrics =
        {
          m_blocks = st.Sanitize.Sexec.blocks_run;
          m_stmts = st.Sanitize.Sexec.stmts_run;
          m_stmts_executed = st.Sanitize.Sexec.stmts_executed;
          m_fp_ops = st.Sanitize.Sexec.shadow_ops;
          m_trace_nodes = 0;
          m_traces_materialized = 0;
          m_spots = 0;
          m_causes = 0;
          m_compensations = 0;
          m_err_max = 0.0;
          m_escalations = 0;
          m_slice_stmts = 0;
        }
      in
      let summary =
        Printf.sprintf
          "%-24s %13s  max output error %5.1f bits, 0 root causes [not \
           escalated]"
          name group 0.0
      in
      {
        p_metrics = metrics;
        p_summary = summary;
        p_report = Tiered.report_string r;
        p_regime = None;
      }

let bench_spec ?(cfg = Core.Config.default) ?(max_steps = 200_000_000)
    (j : Fpcore.Suite.job) : spec =
  let b = j.Fpcore.Suite.job_bench in
  let iters = j.Fpcore.Suite.job_iterations in
  let work ~tick =
    let core = Fpcore.Suite.core_of b in
    let inputs =
      Fpcore.Suite.inputs_for ~seed:j.Fpcore.Suite.job_seed b ~n:iters
    in
    let prog =
      Fpcore.Compile.compile ~n_inputs:iters ~name:b.Fpcore.Suite.name core
    in
    match cfg.Core.Config.engine with
    | Core.Config.Full ->
        let nodes0 = Core.Trace.created_in_domain () in
        let mat0 = Core.Trace.materialized_in_domain () in
        let r = Core.Analysis.analyze ~cfg ~max_steps ~inputs ~tick prog in
        payload_for ~name:b.Fpcore.Suite.name ~group:(group_name b) ~nodes0
          ~mat0 r
    | Core.Config.Sanitize ->
        let r = Sanitize.Sexec.run ~max_steps ~inputs ~tick cfg prog in
        san_payload_for ~name:b.Fpcore.Suite.name ~group:(group_name b) r
    | Core.Config.Tiered ->
        let nodes0 = Core.Trace.created_in_domain () in
        let mat0 = Core.Trace.materialized_in_domain () in
        let r = Tiered.analyze ~cfg ~max_steps ~inputs ~tick prog in
        tiered_payload_for ~name:b.Fpcore.Suite.name ~group:(group_name b)
          ~nodes0 ~mat0 r
  in
  {
    sp_name = b.Fpcore.Suite.name;
    sp_group = group_name b;
    sp_key = job_key ~cfg j;
    sp_engine = Core.Config.engine_name cfg.Core.Config.engine;
    sp_work = work;
  }
