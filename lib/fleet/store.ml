(* The fleet's results store: one JSON object per line (JSONL), plus the
   human summary table. The JSONL file doubles as the result cache — a
   re-run loads it, and jobs whose content-hash key matches a stored
   successful result are skipped.

   Nothing order- or time-dependent goes into the comparable fields: a
   record's [summary], [report], and [metrics] depend only on the job
   itself, so stores written by `-j 1` and `-j 4` runs differ at most in
   [wall_s]. *)

let status_to_string = function
  | Engine.Done -> "ok"
  | Engine.Failed _ -> "failed"
  | Engine.Timed_out -> "timeout"
  | Engine.Cached -> "cached"

let metrics_to_json (m : Engine.metrics) : Json.t =
  Json.Obj
    [
      ("blocks", Json.Num (float_of_int m.Engine.m_blocks));
      ("stmts", Json.Num (float_of_int m.Engine.m_stmts));
      ("stmts_executed", Json.Num (float_of_int m.Engine.m_stmts_executed));
      ("fp_ops", Json.Num (float_of_int m.Engine.m_fp_ops));
      ("trace_nodes", Json.Num (float_of_int m.Engine.m_trace_nodes));
      ( "traces_materialized",
        Json.Num (float_of_int m.Engine.m_traces_materialized) );
      ("spots", Json.Num (float_of_int m.Engine.m_spots));
      ("causes", Json.Num (float_of_int m.Engine.m_causes));
      ("compensations", Json.Num (float_of_int m.Engine.m_compensations));
      ("err_max_bits", Json.Num m.Engine.m_err_max);
      ("escalations", Json.Num (float_of_int m.Engine.m_escalations));
      ("slice_stmts", Json.Num (float_of_int m.Engine.m_slice_stmts));
    ]

let metrics_of_json (v : Json.t) : Engine.metrics =
  {
    Engine.m_blocks = Json.get_int "blocks" v;
    m_stmts = Json.get_int "stmts" v;
    (* absent in stores written before the compiled executor: default 0 *)
    m_stmts_executed = Json.get_int "stmts_executed" v;
    m_fp_ops = Json.get_int "fp_ops" v;
    m_trace_nodes = Json.get_int "trace_nodes" v;
    m_traces_materialized = Json.get_int "traces_materialized" v;
    m_spots = Json.get_int "spots" v;
    m_causes = Json.get_int "causes" v;
    m_compensations = Json.get_int "compensations" v;
    m_err_max = Json.get_num "err_max_bits" v;
    (* absent in stores written before the tiered engine: default 0 *)
    m_escalations = Json.get_int "escalations" v;
    m_slice_stmts = Json.get_int "slice_stmts" v;
  }

let outcome_to_json (o : Engine.outcome) : Json.t =
  Json.Obj
    ([
       ("name", Json.Str o.Engine.o_name);
       ("group", Json.Str o.Engine.o_group);
       ("key", Json.Str o.Engine.o_key);
       ("engine", Json.Str o.Engine.o_engine);
       ("status", Json.Str (status_to_string o.Engine.o_status));
       ("wall_s", Json.Num o.Engine.o_wall_s);
     ]
    @ (match o.Engine.o_status with
      | Engine.Failed msg -> [ ("error", Json.Str msg) ]
      | _ -> [])
    @
    match o.Engine.o_payload with
    | None -> []
    | Some p -> (
        [
          ("metrics", metrics_to_json p.Engine.p_metrics);
          ("summary", Json.Str p.Engine.p_summary);
          ("report", Json.Str p.Engine.p_report);
        ]
        (* regime fields are additive: absent in records written without
           --regimes, so pre-existing stores stay byte-identical *)
        @
        match p.Engine.p_regime with
        | None -> []
        | Some rs ->
            [
              ("regimes", Json.Num (float_of_int rs.Engine.rs_regimes));
              ( "thresholds",
                Json.Arr
                  (List.map
                     (fun (var, value) ->
                       Json.Obj
                         [ ("var", Json.Str var); ("value", Json.Num value) ])
                     rs.Engine.rs_thresholds) );
              ("error_table", Json.Str rs.Engine.rs_error_table);
              ( "regime_search_points",
                Json.Num (float_of_int rs.Engine.rs_search_points) );
            ]))

let outcome_of_json (v : Json.t) : Engine.outcome =
  let status =
    match Json.get_str "status" v with
    | "ok" -> Engine.Done
    | "failed" -> Engine.Failed (Json.get_str "error" v)
    | "timeout" -> Engine.Timed_out
    | "cached" -> Engine.Cached
    | s -> failwith ("Store.outcome_of_json: unknown status " ^ s)
  in
  let payload =
    match Json.member "metrics" v with
    | None -> None
    | Some m ->
        let regime =
          match Json.member "regimes" v with
          | None -> None
          | Some _ ->
              Some
                {
                  Engine.rs_regimes = Json.get_int "regimes" v;
                  rs_thresholds =
                    (match Json.member "thresholds" v with
                    | Some (Json.Arr ts) ->
                        List.map
                          (fun t ->
                            (Json.get_str "var" t, Json.get_num "value" t))
                          ts
                    | _ -> []);
                  rs_error_table = Json.get_str "error_table" v;
                  rs_search_points =
                    (match Json.member "regime_search_points" v with
                    | Some (Json.Num n) -> int_of_float n
                    | _ -> 0);
                }
        in
        Some
          {
            Engine.p_metrics = metrics_of_json m;
            p_summary = Json.get_str "summary" v;
            p_report = Json.get_str "report" v;
            p_regime = regime;
          }
  in
  {
    Engine.o_name = Json.get_str "name" v;
    o_group = Json.get_str "group" v;
    o_key = Json.get_str "key" v;
    (* stores written before the sanitizer existed carry no engine field;
       everything in them came from the full engine *)
    o_engine =
      (match Json.member "engine" v with Some (Json.Str s) -> s | _ -> "full");
    o_status = status;
    o_wall_s = Json.get_num "wall_s" v;
    o_payload = payload;
  }

(* ---------- files ---------- *)

let save (path : string) (outcomes : Engine.outcome list) : unit =
  let oc = open_out path in
  List.iter
    (fun o ->
      output_string oc (Json.to_string (outcome_to_json o));
      output_char oc '\n')
    outcomes;
  close_out oc

(* A writer killed mid-record (SIGKILL, power loss) leaves a truncated
   final line. Loading skips such a *trailing* malformed line with a
   warning and a process-wide counter instead of raising — losing the
   torn tail is exactly what the cache semantics want — while corruption
   anywhere else still raises, since that means more than a torn tail. *)
let corrupt_tail_counter = Atomic.make 0
let corrupt_tail_total () = Atomic.get corrupt_tail_counter

(* Raises [Json.Parse_error] or [Failure] with the offending line number
   on a malformed store (except for a trailing truncated line, which is
   skipped). Returns the parsed outcomes and how many trailing lines were
   skipped (0 or 1). *)
let load_lenient (path : string) : Engine.outcome list * int =
  let ic = open_in path in
  let lines =
    let rec go acc =
      match input_line ic with
      | exception End_of_file -> List.rev acc
      | line -> go (line :: acc)
    in
    let ls = go [] in
    close_in ic;
    Array.of_list ls
  in
  let last_nonempty = ref (-1) in
  Array.iteri (fun i l -> if String.trim l <> "" then last_nonempty := i) lines;
  let skipped = ref 0 in
  let acc = ref [] in
  Array.iteri
    (fun i line ->
      if String.trim line <> "" then
        match outcome_of_json (Json.of_string line) with
        | o -> acc := o :: !acc
        | exception (Json.Parse_error msg | Failure msg) ->
            if i = !last_nonempty then begin
              Printf.eprintf
                "warning: %s:%d: skipping truncated trailing record (%s)\n%!"
                path (i + 1) msg;
              Atomic.incr corrupt_tail_counter;
              incr skipped
            end
            else
              raise
                (Json.Parse_error (Printf.sprintf "%s:%d: %s" path (i + 1) msg)))
    lines;
  (List.rev !acc, !skipped)

let load (path : string) : Engine.outcome list = fst (load_lenient path)

(* A cache over a previous store: only successful results with a
   nonempty key are reusable. Missing file = empty cache. *)
let cache_of_file (path : string) : string -> Engine.outcome option =
  if not (Sys.file_exists path) then fun _ -> None
  else begin
    let tbl = Hashtbl.create 97 in
    List.iter
      (fun (o : Engine.outcome) ->
        match o.Engine.o_status with
        | (Engine.Done | Engine.Cached) when o.Engine.o_key <> "" ->
            Hashtbl.replace tbl o.Engine.o_key o
        | _ -> ())
      (load path);
    fun key -> Hashtbl.find_opt tbl key
  end

(* ---------- the human summary ---------- *)

let summary_table (outcomes : Engine.outcome list) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%-26s %-14s %-8s %9s %10s %7s\n" "benchmark" "group"
       "status" "wall(s)" "err(bits)" "causes");
  List.iter
    (fun (o : Engine.outcome) ->
      let err, causes =
        match o.Engine.o_payload with
        | Some p ->
            ( Printf.sprintf "%10.1f" p.Engine.p_metrics.Engine.m_err_max,
              Printf.sprintf "%7d" p.Engine.p_metrics.Engine.m_causes )
        | None -> (Printf.sprintf "%10s" "-", Printf.sprintf "%7s" "-")
      in
      Buffer.add_string buf
        (Printf.sprintf "%-26s %-14s %-8s %9.2f %s %s\n" o.Engine.o_name
           o.Engine.o_group
           (status_to_string o.Engine.o_status)
           o.Engine.o_wall_s err causes))
    outcomes;
  let count pred = List.length (List.filter pred outcomes) in
  let ok = count (fun o -> o.Engine.o_status = Engine.Done) in
  let cached = count (fun o -> o.Engine.o_status = Engine.Cached) in
  let timeout = count (fun o -> o.Engine.o_status = Engine.Timed_out) in
  let failed =
    count (fun o ->
        match o.Engine.o_status with Engine.Failed _ -> true | _ -> false)
  in
  let wall =
    List.fold_left (fun acc o -> acc +. o.Engine.o_wall_s) 0.0 outcomes
  in
  Buffer.add_string buf
    (Printf.sprintf
       "%d jobs: %d ok, %d cached, %d failed, %d timeout; total wall %.2fs\n"
       (List.length outcomes) ok cached failed timeout wall);
  (* per-engine record counts, deterministic order: full first *)
  let engines =
    List.sort_uniq compare (List.map (fun o -> o.Engine.o_engine) outcomes)
  in
  let engines =
    List.filter (fun e -> e = "full") engines
    @ List.filter (fun e -> e <> "full") engines
  in
  if engines <> [] then
    Buffer.add_string buf
      (Printf.sprintf "engines: %s\n"
         (String.concat ", "
            (List.map
               (fun e ->
                 Printf.sprintf "%s %d" e
                   (count (fun o -> o.Engine.o_engine = e)))
               engines)));
  Buffer.contents buf
