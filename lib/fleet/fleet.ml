(* fpgrind.fleet — public face of the batch-analysis engine.

   [Fleet.run] drives a list of job specs across a Domain worker pool
   with per-job deadlines and exception capture; [Fleet.bench_spec]
   builds the standard FPBench analysis job; [Fleet.Store] persists
   outcomes as JSONL and renders the summary table; [Fleet.Json] is the
   dependency-free JSON used by the store. *)

include Engine
module Json = Json
module Store = Store
