(* Analysis configuration. Defaults follow the paper: 1000-bit shadow
   precision, equivalence-class depth 5, and every subsystem enabled. The
   per-component switches exist for the section 8.2 ablations. *)

(* Which analysis engine runs the program: the paper's full
   instrumentation, the NSan-style dual-precision sanitizer, or the
   tiered two-pass combination (sanitizer triage, then full analysis
   restricted to the flagged slices). *)
type engine = Full | Sanitize | Tiered

let engine_name = function
  | Full -> "full"
  | Sanitize -> "sanitize"
  | Tiered -> "tiered"

let engine_of_name = function
  | "full" -> Some Full
  | "sanitize" -> Some Sanitize
  | "tiered" -> Some Tiered
  | _ -> None

type t = {
  precision : int;  (* shadow real precision in bits *)
  error_threshold : float;  (* bits of local error that taint an op *)
  equiv_depth : int;  (* exact value-equivalence tracking depth *)
  max_trace_depth : int;  (* concrete trace nodes kept per value *)
  enable_reals : bool;  (* higher-precision shadow execution *)
  enable_influences : bool;  (* spots-and-influences system *)
  enable_expressions : bool;  (* concrete/symbolic expression building *)
  type_inference : bool;  (* superblock static type inference *)
  classic_antiunify : bool;
      (* most-specific generalization (no internal-node pruning), the
         paper's section 4.4 completeness flag *)
  detect_compensation : bool;  (* compensating-term detection *)
  report_all_spots : bool;  (* include spots with no observed error *)
  engine : engine;  (* full analysis or the dual-precision sanitizer *)
}

let default =
  {
    precision = 1000;
    error_threshold = 5.0;
    equiv_depth = 5;
    max_trace_depth = 24;
    enable_reals = true;
    enable_influences = true;
    enable_expressions = true;
    type_inference = true;
    classic_antiunify = false;
    detect_compensation = true;
    report_all_spots = false;
    engine = Full;
  }

(* a cheaper configuration for unit tests *)
let fast = { default with precision = 128 }

(* Canonical rendering of every field, in declaration order. Batch
   drivers hash this into result-cache keys, so two configs collide iff
   they analyze identically; a new field must be appended here to keep
   stale cache entries from matching. *)
let fingerprint (t : t) : string =
  Printf.sprintf
    "prec=%d;thr=%h;eqd=%d;mtd=%d;re=%b;infl=%b;expr=%b;ti=%b;ca=%b;comp=%b;all=%b;eng=%s"
    t.precision t.error_threshold t.equiv_depth t.max_trace_depth
    t.enable_reals t.enable_influences t.enable_expressions t.type_inference
    t.classic_antiunify t.detect_compensation t.report_all_spots
    (engine_name t.engine)
