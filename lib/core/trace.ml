(* Concrete expression traces (paper section 4.4).

   Every shadowed value carries a trace node describing the computation
   that produced it: a leaf (an input value with no float-op provenance, or
   an immediate constant) or an operation applied to child traces. Nodes
   are immutable and shared between copies of a value, mirroring the
   reference-counted trace sharing of section 6.2 (OCaml's GC plays the
   role of the reference counts).

   [value] is the client double, used for display; [key] is a hash of the
   *exact* shadow value, used for the runtime-value equivalence inference
   of anti-unification. The distinction matters: at x = 1e16 the client
   values of "x + 1" and "x" coincide, but their exact values do not, and
   equating them would collapse the root cause (- (+ x 1) x) to (- x x).

   Depth is capped: past [max_depth] a child is summarized by a leaf
   carrying its value, corresponding to Herbgrind freeing deep concrete
   trace nodes once they can no longer affect aggregation (6.3/6.4). *)

type node = {
  op : string;  (* "" for leaves *)
  args : node array;
  value : float;  (* the client double computed at this node *)
  key : int;  (* hash of the exact (shadow real) value *)
  depth : int;  (* 1 for leaves *)
  size : int;  (* tree-expanded node count; bounds aggregation work *)
  id : int;
}

(* Node ids must stay unique when several analyses run in parallel
   domains (fpgrind.fleet), so the id source is atomic. The per-domain
   creation count feeds per-job metrics: a fleet worker runs one job at a
   time, so the delta across a job is exactly that job's node count, with
   no interference from jobs on other domains. *)
let counter = Atomic.make 0

type counts = { mutable created : int; mutable materialized : int }

let counts_key = Domain.DLS.new_key (fun () -> { created = 0; materialized = 0 })

let next_id () =
  let c = Domain.DLS.get counts_key in
  c.created <- c.created + 1;
  c.materialized <- c.materialized + 1;
  Atomic.fetch_and_add counter 1 + 1

let created_in_domain () = (Domain.DLS.get counts_key).created
let materialized_in_domain () = (Domain.DLS.get counts_key).materialized

(* Account for a node the executor decided not to build (the lazy-trace
   path: no consumer can ever reach it). The logical creation count —
   the per-job [m_trace_nodes] metric — stays exactly what an eager
   executor would have reported; only the materialized count differs. *)
let phantom () =
  let c = Domain.DLS.get counts_key in
  c.created <- c.created + 1

let float_key v = Hashtbl.hash (Int64.bits_of_float v)

let leaf ?key value =
  let key = match key with Some k -> k | None -> float_key value in
  { op = ""; args = [||]; value; key; depth = 1; size = 1; id = next_id () }

let is_leaf n = n.op = ""

(* replace a subtree by a value-only leaf *)
let truncate n = leaf ~key:n.key n.value

(* Nodes share children (a DAG), but aggregation walks them as trees, so
   both the depth and the tree-expanded size must stay bounded; otherwise
   a loop-carried accumulator (s = s + x) makes every walk exponential.
   Oversized children are summarized by leaves, deepest first — the same
   freeing of distant concrete trace nodes as the paper's section 6.3. *)
let max_tree_size = 768

let node ~max_depth ~key op args value =
  let args =
    Array.map (fun a -> if a.depth >= max_depth then truncate a else a) args
  in
  let args =
    let total = Array.fold_left (fun s a -> s + a.size) 1 args in
    if total <= max_tree_size then args
    else begin
      (* truncate the largest children until the node fits *)
      let order =
        Array.init (Array.length args) (fun i -> i)
        |> Array.to_list
        |> List.sort (fun i j -> compare args.(j).size args.(i).size)
      in
      let args = Array.copy args in
      let total = ref total in
      List.iter
        (fun i ->
          if !total > max_tree_size && not (is_leaf args.(i)) then begin
            total := !total - args.(i).size + 1;
            args.(i) <- truncate args.(i)
          end)
        order;
      args
    end
  in
  let depth = 1 + Array.fold_left (fun d a -> max d a.depth) 0 args in
  let size = Array.fold_left (fun s a -> s + a.size) 1 args in
  { op; args; value; key; depth; size; id = next_id () }

let rec op_count n =
  if is_leaf n then 0
  else 1 + Array.fold_left (fun acc a -> acc + op_count a) 0 n.args

let rec to_string n =
  if is_leaf n then Printf.sprintf "%.17g" n.value
  else
    Printf.sprintf "(%s %s)" n.op
      (String.concat " " (Array.to_list (Array.map to_string n.args)))
