(* The instrumented VEX executor: the analogue of running the client
   binary under Valgrind with the Herbgrind tool loaded. Client semantics
   are shared with the fast interpreter through [Vex.Eval]; this module
   adds the three shadow executions of paper section 4 (reals, influences,
   expressions), the spot bookkeeping, libm wrapping, bit-trick
   recognition, compensation detection, and the type-inference fast
   paths.

   The executor runs pre-decoded superblocks ([Vex.Compile]): statement
   ids, source locations, jump targets, fast-path/off-slice/full dispatch
   and the lazy-trace reachability verdict are all resolved once per
   program (and cached process-wide), so the per-statement loop is an
   array walk over decoded operations. Per-block temporaries and their
   shadow slots live in arenas allocated once at [create] and bulk-reset
   on block entry. Concrete trace nodes are materialized only when the
   compiled program can reach a trace consumer; otherwise every creation
   site keeps the logical node count with [Trace.phantom]. *)

module B = Bignum.Bigfloat
module IntSet = Shadow.IntSet

type op_info = {
  o_id : int;
  o_loc : Vex.Ir.loc;
  o_name : string;
  o_agg : Antiunify.agg;
  mutable o_count : int;
  mutable o_local_err_sum : float;
  mutable o_local_err_max : float;
  mutable o_out_err_sum : float;
  mutable o_out_err_max : float;
}

type spot_kind = Spot_output | Spot_branch | Spot_convert

type spot_info = {
  s_id : int;
  s_loc : Vex.Ir.loc;
  s_kind : spot_kind;
  mutable s_total : int;
  mutable s_incorrect : int;  (* for branches/conversions *)
  mutable s_err_sum : float;  (* for outputs *)
  mutable s_err_max : float;
  mutable s_infl : IntSet.t;
}

type stats = {
  mutable blocks_run : int;
  mutable stmts_run : int;
  mutable stmts_executed : int;
  mutable stmts_instrumented : int;
  mutable fp_ops : int;
  mutable compensations : int;
}

(* per-block scratch, allocated once at [create] and reused on every
   execution of the block (the stepping loop runs one block at a time,
   so reuse cannot race) *)
type frame = {
  temps : Vex.Value.t array;
  tshadow : Shadow.slot array;
}

type state = {
  prog : Vex.Ir.prog;
  cfg : Config.t;
  compiled : Vex.Compile.t;
  (* the lazy-trace materialization verdict for this run: expressions are
     enabled and the compiled program contains a trace consumer *)
  traces : bool;
  mem : Bytes.t;
  (* exclusive upper bound of client memory traffic this run; the
     scratch pool re-zeroes only [0, mem_hw) on reuse *)
  mutable mem_hw : int;
  thread : Bytes.t;
  (* shadow storage: byte offset -> (slot, byte size) *)
  mem_shadow : Shadow.t Vex.Shadowtbl.t;
  thread_shadow : Shadow.t Vex.Shadowtbl.t;
  ops : (int, op_info) Hashtbl.t;
  spots : (int, spot_info) Hashtbl.t;
  inputs : float array;  (* values returned by the __arg builtin *)
  mutable outputs : Vex.Machine.output list;
  stats : stats;
  max_steps : int;
  frames : frame array;  (* per-block scratch, reused across executions *)
  temp_inits : Vex.Value.t array array;  (* pristine temps per block *)
  (* deadline hook, called by the executor itself every [tick_stride]
     raw statements rather than by the driver per superblock *)
  tick : (unit -> unit) option;
  mutable stmts_since_tick : int;
}

exception Client_error of string

(* A per-domain pool of one client-memory buffer: a fresh zeroed 1 MiB
   [Bytes.make] per execution is measurable across a suite run, so
   [run] parks its buffer here and [create] re-zeroes only the prefix
   the previous run touched ([mem_hw] bounds every load and store) —
   reads above the watermark still see the zeros machine semantics
   promise. *)
let scratch_pool : (Bytes.t * int) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let acquire_mem mem_size : Bytes.t =
  let pool = Domain.DLS.get scratch_pool in
  match !pool with
  | Some (b, hw) when Bytes.length b = mem_size ->
      pool := None;
      Bytes.fill b 0 (min hw mem_size) '\000';
      b
  | _ -> Bytes.make mem_size '\000'

let release_mem (mem : Bytes.t) (mem_hw : int) : unit =
  let pool = Domain.DLS.get scratch_pool in
  pool := Some (mem, mem_hw)

(* raw statements between wall-clock checks; small enough that a
   deadline overshoots by microseconds, large enough that the check is
   invisible in the profile *)
let tick_stride = 1024

let create ?(mem_size = Vex.Machine.default_mem_size) ?(max_steps = max_int)
    ?(inputs = [||]) ?restrict ?tick (cfg : Config.t) prog =
  let restrict =
    match restrict with
    | None -> None
    | Some f ->
        Some
          (Array.mapi
             (fun bi (b : Vex.Ir.block) ->
               Array.init (Array.length b.Vex.Ir.stmts) (fun si ->
                   f (Vex.Ir.stmt_id ~block:bi ~stmt:si)))
             prog.Vex.Ir.blocks)
  in
  let compiled =
    Vex.Compile.get ~type_inference:cfg.Config.type_inference ?restrict prog
  in
  {
    prog;
    cfg;
    compiled;
    traces =
      cfg.Config.enable_expressions
      && compiled.Vex.Compile.c_traces_reachable;
    mem = acquire_mem mem_size;
    mem_hw = 0;
    thread = Bytes.make Vex.Machine.default_thread_size '\000';
    mem_shadow = Vex.Shadowtbl.create 1024;
    thread_shadow = Vex.Shadowtbl.create 64;
    ops = Hashtbl.create 256;
    spots = Hashtbl.create 64;
    inputs;
    outputs = [];
    stats =
      {
        blocks_run = 0;
        stmts_run = 0;
        stmts_executed = 0;
        stmts_instrumented = 0;
        fp_ops = 0;
        compensations = 0;
      };
    max_steps;
    frames =
      Array.map
        (fun (b : Vex.Ir.block) ->
          {
            temps = Array.map Vex.Machine.init_value b.Vex.Ir.temp_tys;
            tshadow = Array.make (Array.length b.Vex.Ir.temp_tys) Shadow.SNone;
          })
        prog.Vex.Ir.blocks;
    temp_inits =
      Array.map
        (fun (b : Vex.Ir.block) ->
          Array.map Vex.Machine.init_value b.Vex.Ir.temp_tys)
        prog.Vex.Ir.blocks;
    tick;
    (* start at the stride so the first block entry checks the deadline
       immediately: a caller with an already-expired budget must not get
       a whole stride of free work *)
    stmts_since_tick = tick_stride;
  }

(* ---------- spot and op tables ---------- *)

let op_entry st id loc name =
  match Hashtbl.find_opt st.ops id with
  | Some o -> o
  | None ->
      let o =
        {
          o_id = id;
          o_loc = loc;
          o_name = name;
          o_agg = Antiunify.create ~equiv_depth:st.cfg.Config.equiv_depth;
          o_count = 0;
          o_local_err_sum = 0.0;
          o_local_err_max = 0.0;
          o_out_err_sum = 0.0;
          o_out_err_max = 0.0;
        }
      in
      Hashtbl.replace st.ops id o;
      o

let spot_entry st id loc kind =
  match Hashtbl.find_opt st.spots id with
  | Some s -> s
  | None ->
      let s =
        {
          s_id = id;
          s_loc = loc;
          s_kind = kind;
          s_total = 0;
          s_incorrect = 0;
          s_err_sum = 0.0;
          s_err_max = 0.0;
          s_infl = IntSet.empty;
        }
      in
      Hashtbl.replace st.spots id s;
      s

(* ---------- shadow storage ----------

   the aliasing discipline (4-byte-granularity entries, overlapping
   writes kill old shadows) lives in [Vex.Shadowtbl], shared with the
   sanitizer's double-double shadows *)

let clear_shadow_range = Vex.Shadowtbl.clear_range
let write_shadow = Vex.Shadowtbl.write
let read_shadow = Vex.Shadowtbl.read

(* ---------- error metrics ---------- *)

let out_error st (client : float) (real : B.t) ~single =
  if not st.cfg.Config.enable_reals then 0.0
  else begin
    let rf = B.to_float real in
    if single then Ieee.Single.bits_of_error client (Ieee.Single.of_double rf)
    else Ieee.bits_of_error client rf
  end

(* ---------- the float operation core ----------

   [do_op] implements one shadowed floating-point operation: computes the
   exact result, the local error (paper 4.3), influence taint with
   compensation detection (5.4), the concrete trace node, and folds the
   trace into the op's aggregation (6.3). *)

let arg_shadow st ~single (v : float) (sl : Shadow.slot) : Shadow.t =
  match sl with
  | Shadow.SVal s -> s
  | Shadow.SNone | Shadow.SBool _ | Shadow.SVec _ ->
      Shadow.fresh_leaf ~single ~traces:st.traces v

let do_op st ~stmt_id ~loc ~name ~single ~(client : float)
    ~(client_fn : float array -> float) ~(real_fn : B.t array -> B.t)
    (args : (float * Shadow.slot) array) : Shadow.slot =
  st.stats.fp_ops <- st.stats.fp_ops + 1;
  let cfg = st.cfg in
  let shadows = Array.map (fun (v, sl) -> arg_shadow st ~single v sl) args in
  let real =
    if cfg.Config.enable_reals then
      real_fn (Array.map (fun s -> s.Shadow.real) shadows)
    else B.of_float client
  in
  (* local error: round the exact inputs to floats, run the op in client
     arithmetic, compare with the rounded exact result *)
  let local_err =
    if not cfg.Config.enable_reals then 0.0
    else begin
      let round v =
        let f = B.to_float v in
        if single then Ieee.Single.of_double f else f
      in
      let rounded_args = Array.map (fun s -> round s.Shadow.real) shadows in
      let r_f = client_fn rounded_args in
      let r_r = round (if cfg.Config.enable_reals then real else B.of_float client) in
      if single then Ieee.Single.bits_of_error r_f r_r
      else Ieee.bits_of_error r_f r_r
    end
  in
  (* influences *)
  let infl =
    if not cfg.Config.enable_influences then IntSet.empty
    else begin
      let union_all =
        Array.fold_left
          (fun acc s -> IntSet.union acc s.Shadow.infl)
          IntSet.empty shadows
      in
      let compensating_passthrough () =
        (* an add/sub that returns one argument exactly in the reals, where
           the output is more accurate than the passed-through argument *)
        if
          (not cfg.Config.detect_compensation)
          || (name <> "+" && name <> "-")
          || Array.length shadows <> 2
          || not cfg.Config.enable_reals
        then None
        else begin
          let check i =
            let s = shadows.(i) in
            if B.equal real s.Shadow.real then begin
              let arg_err =
                out_error st (Shadow.client_value s) s.Shadow.real ~single
              in
              let out_err = out_error st client real ~single in
              if out_err < arg_err then Some s else None
            end
            else None
          in
          match check 0 with Some s -> Some s | None -> check 1
        end
      in
      match compensating_passthrough () with
      | Some passthrough ->
          (* Influence from the compensating term is dropped (paper 5.4).
             When the compensated result is itself accurate, the
             passed-through argument's taint is dropped too: its error has
             been repaired, so improving the tainting operation can no
             longer reduce output error. This is what keeps Triangle's 225
             compensated computations out of the report (section 7). *)
          st.stats.compensations <- st.stats.compensations + 1;
          if out_error st client real ~single <= cfg.Config.error_threshold
          then IntSet.empty
          else passthrough.Shadow.infl
      | None ->
          if local_err > cfg.Config.error_threshold then
            IntSet.add stmt_id union_all
          else union_all
    end
  in
  (* trace; the node key hashes the exact result for equivalence
     inference. With expressions off the eager executor built a bare
     value leaf here; that leaf had no consumer, so it is phantom-counted
     instead. *)
  let trace =
    if cfg.Config.enable_expressions then
      Some
        (Trace.node ~max_depth:cfg.Config.max_trace_depth ~key:(B.hash real)
           name
           (Array.map Shadow.trace_of shadows)
           client)
    else begin
      Trace.phantom ();
      None
    end
  in
  (* aggregate *)
  if cfg.Config.enable_expressions then begin
    let o = op_entry st stmt_id loc name in
    (match trace with Some tr -> Antiunify.add o.o_agg tr | None -> ());
    o.o_count <- o.o_count + 1;
    o.o_local_err_sum <- o.o_local_err_sum +. local_err;
    if local_err > o.o_local_err_max then o.o_local_err_max <- local_err;
    let oe = out_error st client real ~single in
    o.o_out_err_sum <- o.o_out_err_sum +. oe;
    if oe > o.o_out_err_max then o.o_out_err_max <- oe
  end
  else if cfg.Config.enable_reals then begin
    (* still track error statistics even without expressions *)
    let o = op_entry st stmt_id loc name in
    o.o_count <- o.o_count + 1;
    o.o_local_err_sum <- o.o_local_err_sum +. local_err;
    if local_err > o.o_local_err_max then o.o_local_err_max <- local_err
  end;
  Shadow.SVal { Shadow.real; value = client; trace; infl; single }

(* comparison of two shadowed floats in the reals *)
let do_cmp st ~(client : bool) (cmp : B.t -> B.t -> bool)
    (args : (float * Shadow.slot) array) : Shadow.slot =
  if not st.cfg.Config.enable_reals then Shadow.SNone
  else begin
    let shadows =
      Array.map (fun (v, sl) -> arg_shadow st ~single:false v sl) args
    in
    let shadow_b = cmp shadows.(0).Shadow.real shadows.(1).Shadow.real in
    let binfl =
      if st.cfg.Config.enable_influences then
        IntSet.union shadows.(0).Shadow.infl shadows.(1).Shadow.infl
      else IntSet.empty
    in
    Shadow.SBool { Shadow.client_b = client; shadow_b; binfl }
  end

(* ---------- per-statement interpretation ---------- *)

let prec st = st.cfg.Config.precision

let check_mem st addr size =
  if addr < 0 || addr + size > Bytes.length st.mem then
    raise (Client_error (Printf.sprintf "memory access out of bounds: %d" addr))
  else if addr + size > st.mem_hw then st.mem_hw <- addr + size

(* evaluate an expression returning both the client value and its shadow *)
let rec eval st fr ~loc ~stmt_id (e : Vex.Ir.expr) : Vex.Value.t * Shadow.slot =
  match e with
  | Vex.Ir.RdTmp t -> (fr.temps.(t), fr.tshadow.(t))
  | Vex.Ir.Const c -> (Vex.Value.of_const c, Shadow.SNone)
  | Vex.Ir.LabelAddr l ->
      (* compiled expressions pre-resolve labels; kept for raw input *)
      (Vex.Value.VI64 (Int64.of_int (Vex.Ir.block_index st.prog l)), Shadow.SNone)
  | Vex.Ir.Get (off, ty) ->
      let v = Vex.Value.read_bytes st.thread off ty in
      let sh = load_shadow st st.thread_shadow off ty in
      (v, sh)
  | Vex.Ir.Load (ty, a) ->
      let av, _ = eval st fr ~loc ~stmt_id a in
      let addr = Int64.to_int (Vex.Value.as_i64 av) in
      check_mem st addr (Vex.Ir.ty_size ty);
      let v = Vex.Value.read_bytes st.mem addr ty in
      let sh = load_shadow st st.mem_shadow addr ty in
      (v, sh)
  | Vex.Ir.Unop (op, a) ->
      let av, ash = eval st fr ~loc ~stmt_id a in
      let v = Vex.Eval.eval_unop op av in
      (v, shadow_unop st ~loc ~stmt_id op av ash v)
  | Vex.Ir.Binop (op, a, b) ->
      let av, ash = eval st fr ~loc ~stmt_id a in
      let bv, bsh = eval st fr ~loc ~stmt_id b in
      let v = Vex.Eval.eval_binop op av bv in
      (v, shadow_binop st ~loc ~stmt_id op (av, ash) (bv, bsh) v)
  | Vex.Ir.ITE (g, t, e2) ->
      let gv, gsh = eval st fr ~loc ~stmt_id g in
      let taken = Vex.Value.as_bool gv in
      (* an ITE guarded by a float comparison is a branch spot *)
      (match gsh with
      | Shadow.SBool sb -> record_branch st ~loc ~stmt_id sb
      | Shadow.SNone | Shadow.SVal _ | Shadow.SVec _ -> ());
      if taken then eval st fr ~loc ~stmt_id t else eval st fr ~loc ~stmt_id e2

and load_shadow _st tbl off (ty : Vex.Ir.ty) : Shadow.slot =
  match ty with
  | Vex.Ir.F64 | Vex.Ir.I64 -> begin
      match read_shadow tbl off 8 with
      | Some s -> Shadow.SVal s
      | None -> Shadow.SNone
    end
  | Vex.Ir.F32 | Vex.Ir.I32 -> begin
      match read_shadow tbl off 4 with
      | Some s -> Shadow.SVal s
      | None -> Shadow.SNone
    end
  | Vex.Ir.V128 -> begin
      match (read_shadow tbl off 8, read_shadow tbl (off + 8) 8) with
      | None, None -> begin
          (* maybe four single lanes *)
          let lanes =
            Array.init 4 (fun i ->
                match read_shadow tbl (off + (4 * i)) 4 with
                | Some s -> Shadow.SVal s
                | None -> Shadow.SNone)
          in
          if Array.exists (fun s -> s <> Shadow.SNone) lanes then
            Shadow.SVec lanes
          else Shadow.SNone
        end
      | lo, hi ->
          Shadow.SVec
            [|
              (match lo with Some s -> Shadow.SVal s | None -> Shadow.SNone);
              (match hi with Some s -> Shadow.SVal s | None -> Shadow.SNone);
            |]
    end
  | Vex.Ir.I1 | Vex.Ir.I8 | Vex.Ir.I16 -> Shadow.SNone

and store_shadow _st tbl off (v : Vex.Value.t) (sh : Shadow.slot) =
  match (v, sh) with
  | Vex.Value.VV128 _, Shadow.SVec lanes ->
      if Array.length lanes = 2 then begin
        let put i sl =
          write_shadow tbl (off + (8 * i)) 8
            (match sl with Shadow.SVal s -> Some s | _ -> None)
        in
        Array.iteri put lanes
      end
      else begin
        let put i sl =
          write_shadow tbl (off + (4 * i)) 4
            (match sl with Shadow.SVal s -> Some s | _ -> None)
        in
        Array.iteri put lanes
      end
  | Vex.Value.VV128 _, _ -> clear_shadow_range tbl off 16
  | v, Shadow.SVal s ->
      let size =
        match Vex.Value.ty_of v with
        | Vex.Ir.F32 | Vex.Ir.I32 -> 4
        | _ -> 8
      in
      write_shadow tbl off size (Some s)
  | v, _ ->
      clear_shadow_range tbl off (Vex.Ir.ty_size (Vex.Value.ty_of v))

and record_branch st ~loc ~stmt_id (sb : Shadow.sbool) =
  let sp = spot_entry st stmt_id loc Spot_branch in
  sp.s_total <- sp.s_total + 1;
  if sb.Shadow.client_b <> sb.Shadow.shadow_b then begin
    sp.s_incorrect <- sp.s_incorrect + 1;
    if st.cfg.Config.enable_influences then
      sp.s_infl <- IntSet.union sp.s_infl sb.Shadow.binfl
  end

and record_conversion st ~loc ~stmt_id ~(agree : bool) (infl : IntSet.t) =
  let sp = spot_entry st stmt_id loc Spot_convert in
  sp.s_total <- sp.s_total + 1;
  if not agree then begin
    sp.s_incorrect <- sp.s_incorrect + 1;
    if st.cfg.Config.enable_influences then
      sp.s_infl <- IntSet.union sp.s_infl infl
  end

and shadow_unop st ~loc ~stmt_id (op : Vex.Ir.unop) (av : Vex.Value.t)
    (ash : Shadow.slot) (result : Vex.Value.t) : Shadow.slot =
  let p = prec st in
  match op with
  (* float compute ops *)
  | Vex.Ir.SqrtF64 ->
      do_op st ~stmt_id ~loc ~name:"sqrt" ~single:false
        ~client:(Vex.Value.as_f64 result)
        ~client_fn:(fun a -> Float.sqrt a.(0))
        ~real_fn:(fun a -> B.sqrt ~prec:p a.(0))
        [| (Vex.Value.as_f64 av, ash) |]
  | Vex.Ir.SqrtF32 ->
      do_op st ~stmt_id ~loc ~name:"sqrt" ~single:true
        ~client:(Vex.Value.as_f32 result)
        ~client_fn:(fun a -> Ieee.Single.sqrt a.(0))
        ~real_fn:(fun a -> B.sqrt ~prec:p a.(0))
        [| (Vex.Value.as_f32 av, ash) |]
  | Vex.Ir.NegF64 | Vex.Ir.NegF32 -> begin
      match ash with
      | Shadow.SVal s ->
          let real = B.neg s.Shadow.real in
          if st.cfg.Config.enable_expressions then begin
            let client =
              match result with
              | Vex.Value.VF64 f | Vex.Value.VF32 f -> f
              | _ -> 0.0
            in
            let trace =
              Some
                (Trace.node ~max_depth:st.cfg.Config.max_trace_depth
                   ~key:(B.hash real) "neg"
                   [| Shadow.trace_of s |]
                   client)
            in
            Shadow.SVal { s with Shadow.real; value = client; trace }
          end
          else
            (* passthrough: the trace — and the value the eager trace
               node carried — ride along unchanged *)
            Shadow.SVal { s with Shadow.real }
      | _ -> Shadow.SNone
    end
  | Vex.Ir.AbsF64 | Vex.Ir.AbsF32 -> begin
      match ash with
      | Shadow.SVal s ->
          let real = B.abs s.Shadow.real in
          if st.cfg.Config.enable_expressions then begin
            let client =
              match result with
              | Vex.Value.VF64 f | Vex.Value.VF32 f -> f
              | _ -> 0.0
            in
            let trace =
              Some
                (Trace.node ~max_depth:st.cfg.Config.max_trace_depth
                   ~key:(B.hash real) "fabs"
                   [| Shadow.trace_of s |]
                   client)
            in
            Shadow.SVal { s with Shadow.real; value = client; trace }
          end
          else Shadow.SVal { s with Shadow.real }
      | _ -> Shadow.SNone
    end
  (* precision conversions: same value, new grid; no trace node (6.1) *)
  | Vex.Ir.F32toF64 -> begin
      match ash with
      | Shadow.SVal s -> Shadow.SVal { s with Shadow.single = false }
      | _ -> Shadow.SNone
    end
  | Vex.Ir.F64toF32 -> begin
      match ash with
      | Shadow.SVal s -> Shadow.SVal { s with Shadow.single = true }
      | _ -> Shadow.SNone
    end
  (* int -> float: exact provenance *)
  | Vex.Ir.I64toF64 ->
      let i = Vex.Value.as_i64 av in
      let real = B.of_bigint (Bignum.Bigint.of_int (Int64.to_int i)) in
      let client = Vex.Value.as_f64 result in
      let trace =
        if st.traces then Some (Trace.leaf ~key:(B.hash real) client)
        else begin
          Trace.phantom ();
          None
        end
      in
      Shadow.SVal
        {
          Shadow.real;
          value = client;
          trace;
          infl = IntSet.empty;
          single = false;
        }
  | Vex.Ir.I64toF32 ->
      let i = Vex.Value.as_i64 av in
      let real = B.of_bigint (Bignum.Bigint.of_int (Int64.to_int i)) in
      let client = Vex.Value.as_f32 result in
      let trace =
        if st.traces then Some (Trace.leaf ~key:(B.hash real) client)
        else begin
          Trace.phantom ();
          None
        end
      in
      Shadow.SVal
        {
          Shadow.real;
          value = client;
          trace;
          infl = IntSet.empty;
          single = true;
        }
  (* float -> int: a conversion spot *)
  | Vex.Ir.F64toI64tz | Vex.Ir.F32toI64tz | Vex.Ir.F64toI64rn -> begin
      (match ash with
      | Shadow.SVal s when st.cfg.Config.enable_reals ->
          let shadow_int =
            let r =
              match op with
              | Vex.Ir.F64toI64rn -> B.round_to_int s.Shadow.real
              | _ -> B.trunc s.Shadow.real
            in
            match B.to_bigint r with
            | Some bi -> Bignum.Bigint.to_int_opt bi
            | None -> None
          in
          let client_int = Int64.to_int (Vex.Value.as_i64 result) in
          let agree =
            match shadow_int with Some i -> i = client_int | None -> false
          in
          record_conversion st ~loc ~stmt_id ~agree s.Shadow.infl
      | _ -> ());
      Shadow.SNone
    end
  (* bit reinterpretation: the shadow rides along *)
  | Vex.Ir.ReinterpF64asI64 | Vex.Ir.ReinterpI64asF64 | Vex.Ir.ReinterpF32asI32
  | Vex.Ir.ReinterpI32asF32 ->
      ash
  (* vector lane extraction *)
  | Vex.Ir.V128to64 -> begin
      match ash with
      | Shadow.SVec lanes when Array.length lanes = 2 -> lanes.(0)
      | _ -> Shadow.SNone
    end
  | Vex.Ir.V128HIto64 -> begin
      match ash with
      | Shadow.SVec lanes when Array.length lanes = 2 -> lanes.(1)
      | _ -> Shadow.SNone
    end
  | Vex.Ir.Sqrt64Fx2 -> begin
      let a0, a1 = Vex.Value.v128_f64_lanes (Vex.Value.as_v128 av) in
      let r0, r1 = Vex.Value.v128_f64_lanes (Vex.Value.as_v128 result) in
      let lane_shadow i arg_v res_v =
        let arg_sl =
          match ash with
          | Shadow.SVec lanes when Array.length lanes = 2 -> lanes.(i)
          | _ -> Shadow.SNone
        in
        do_op st ~stmt_id ~loc ~name:"sqrt" ~single:false ~client:res_v
          ~client_fn:(fun a -> Float.sqrt a.(0))
          ~real_fn:(fun a -> B.sqrt ~prec:p a.(0))
          [| (arg_v, arg_sl) |]
      in
      Shadow.SVec [| lane_shadow 0 a0 r0; lane_shadow 1 a1 r1 |]
    end
  (* pure integer ops: no shadow *)
  | Vex.Ir.Not1 | Vex.Ir.Neg64 | Vex.Ir.Not64 | Vex.Ir.I32toI64s
  | Vex.Ir.I32toI64u | Vex.Ir.I64toI32 ->
      (* Not1 must preserve comparison shadows so negated guards track *)
      (match (op, ash) with
      | Vex.Ir.Not1, Shadow.SBool sb ->
          Shadow.SBool
            {
              sb with
              Shadow.client_b = not sb.Shadow.client_b;
              shadow_b = not sb.Shadow.shadow_b;
            }
      | _ -> Shadow.SNone)

and shadow_binop st ~loc ~stmt_id (op : Vex.Ir.binop) (a : Vex.Value.t * Shadow.slot)
    (b : Vex.Value.t * Shadow.slot) (result : Vex.Value.t) : Shadow.slot =
  let p = prec st in
  let av, ash = a and bv, bsh = b in
  let f64_op name client_fn real_fn =
    do_op st ~stmt_id ~loc ~name ~single:false
      ~client:(Vex.Value.as_f64 result) ~client_fn ~real_fn
      [| (Vex.Value.as_f64 av, ash); (Vex.Value.as_f64 bv, bsh) |]
  in
  let f32_op name client_fn real_fn =
    do_op st ~stmt_id ~loc ~name ~single:true
      ~client:(Vex.Value.as_f32 result) ~client_fn ~real_fn
      [| (Vex.Value.as_f32 av, ash); (Vex.Value.as_f32 bv, bsh) |]
  in
  match op with
  | Vex.Ir.AddF64 ->
      f64_op "+" (fun x -> x.(0) +. x.(1)) (fun x -> B.add ~prec:p x.(0) x.(1))
  | Vex.Ir.SubF64 ->
      f64_op "-" (fun x -> x.(0) -. x.(1)) (fun x -> B.sub ~prec:p x.(0) x.(1))
  | Vex.Ir.MulF64 ->
      f64_op "*" (fun x -> x.(0) *. x.(1)) (fun x -> B.mul ~prec:p x.(0) x.(1))
  | Vex.Ir.DivF64 ->
      f64_op "/" (fun x -> x.(0) /. x.(1)) (fun x -> B.div ~prec:p x.(0) x.(1))
  | Vex.Ir.MinF64 ->
      f64_op "fmin" (fun x -> Float.min x.(0) x.(1)) (fun x -> B.min2 x.(0) x.(1))
  | Vex.Ir.MaxF64 ->
      f64_op "fmax" (fun x -> Float.max x.(0) x.(1)) (fun x -> B.max2 x.(0) x.(1))
  | Vex.Ir.AddF32 ->
      f32_op "+"
        (fun x -> Ieee.Single.add x.(0) x.(1))
        (fun x -> B.add ~prec:p x.(0) x.(1))
  | Vex.Ir.SubF32 ->
      f32_op "-"
        (fun x -> Ieee.Single.sub x.(0) x.(1))
        (fun x -> B.sub ~prec:p x.(0) x.(1))
  | Vex.Ir.MulF32 ->
      f32_op "*"
        (fun x -> Ieee.Single.mul x.(0) x.(1))
        (fun x -> B.mul ~prec:p x.(0) x.(1))
  | Vex.Ir.DivF32 ->
      f32_op "/"
        (fun x -> Ieee.Single.div x.(0) x.(1))
        (fun x -> B.div ~prec:p x.(0) x.(1))
  | Vex.Ir.CmpEQF64 | Vex.Ir.CmpEQF32 ->
      do_cmp st ~client:(Vex.Value.as_bool result) B.equal
        [| (float_of_value av, ash); (float_of_value bv, bsh) |]
  | Vex.Ir.CmpNEF64 ->
      do_cmp st ~client:(Vex.Value.as_bool result)
        (fun x y -> not (B.equal x y))
        [| (float_of_value av, ash); (float_of_value bv, bsh) |]
  | Vex.Ir.CmpLTF64 | Vex.Ir.CmpLTF32 ->
      do_cmp st ~client:(Vex.Value.as_bool result) B.lt
        [| (float_of_value av, ash); (float_of_value bv, bsh) |]
  | Vex.Ir.CmpLEF64 | Vex.Ir.CmpLEF32 ->
      do_cmp st ~client:(Vex.Value.as_bool result) B.le
        [| (float_of_value av, ash); (float_of_value bv, bsh) |]
  (* gcc bit tricks: XOR with the sign mask is negation, AND with the abs
     mask is fabs (paper 5.4) *)
  | Vex.Ir.Xor64 -> begin
      match (ash, bsh, av, bv) with
      | Shadow.SVal s, Shadow.SNone, _, Vex.Value.VI64 m
        when Int64.equal m Ieee.Bits.sign_flip_mask64 ->
          bit_trick_neg st s result
      | Shadow.SNone, Shadow.SVal s, Vex.Value.VI64 m, _
        when Int64.equal m Ieee.Bits.sign_flip_mask64 ->
          bit_trick_neg st s result
      | _ -> Shadow.SNone
    end
  | Vex.Ir.And64 -> begin
      match (ash, bsh, av, bv) with
      | Shadow.SVal s, Shadow.SNone, _, Vex.Value.VI64 m
        when Int64.equal m Ieee.Bits.abs_mask64 ->
          bit_trick_abs st s result
      | Shadow.SNone, Shadow.SVal s, Vex.Value.VI64 m, _
        when Int64.equal m Ieee.Bits.abs_mask64 ->
          bit_trick_abs st s result
      | _ -> Shadow.SNone
    end
  (* SIMD packed float ops: one shadow op per lane, same pc *)
  | Vex.Ir.Add64Fx2 -> simd2 st ~loc ~stmt_id "+" ( +. )
        (fun x y -> B.add ~prec:p x y) (av, ash) (bv, bsh) result
  | Vex.Ir.Sub64Fx2 -> simd2 st ~loc ~stmt_id "-" ( -. )
        (fun x y -> B.sub ~prec:p x y) (av, ash) (bv, bsh) result
  | Vex.Ir.Mul64Fx2 -> simd2 st ~loc ~stmt_id "*" ( *. )
        (fun x y -> B.mul ~prec:p x y) (av, ash) (bv, bsh) result
  | Vex.Ir.Div64Fx2 -> simd2 st ~loc ~stmt_id "/" ( /. )
        (fun x y -> B.div ~prec:p x y) (av, ash) (bv, bsh) result
  | Vex.Ir.Add32Fx4 -> simd4 st ~loc ~stmt_id "+" Ieee.Single.add
        (fun x y -> B.add ~prec:p x y) (av, ash) (bv, bsh) result
  | Vex.Ir.Sub32Fx4 -> simd4 st ~loc ~stmt_id "-" Ieee.Single.sub
        (fun x y -> B.sub ~prec:p x y) (av, ash) (bv, bsh) result
  | Vex.Ir.Mul32Fx4 -> simd4 st ~loc ~stmt_id "*" Ieee.Single.mul
        (fun x y -> B.mul ~prec:p x y) (av, ash) (bv, bsh) result
  | Vex.Ir.Div32Fx4 -> simd4 st ~loc ~stmt_id "/" Ieee.Single.div
        (fun x y -> B.div ~prec:p x y) (av, ash) (bv, bsh) result
  | Vex.Ir.I64HLtoV128 ->
      (* Binop(hi, lo): lanes are [lo; hi] *)
      Shadow.SVec [| bsh; ash |]
  | Vex.Ir.XorV128 | Vex.Ir.AndV128 | Vex.Ir.OrV128 -> Shadow.SNone
  (* integer ops carry no shadow *)
  | Vex.Ir.Add64 | Vex.Ir.Sub64 | Vex.Ir.Mul64 | Vex.Ir.DivS64 | Vex.Ir.ModS64
  | Vex.Ir.Or64 | Vex.Ir.Shl64 | Vex.Ir.Shr64 | Vex.Ir.Sar64 | Vex.Ir.CmpEQ64
  | Vex.Ir.CmpNE64 | Vex.Ir.CmpLT64S | Vex.Ir.CmpLE64S ->
      Shadow.SNone

and float_of_value = function
  | Vex.Value.VF64 f | Vex.Value.VF32 f -> f
  | v -> Vex.Value.type_error "expected float" v

and bit_trick_neg st (s : Shadow.t) (result : Vex.Value.t) : Shadow.slot =
  let real = B.neg s.Shadow.real in
  if st.cfg.Config.enable_expressions then begin
    let client =
      match result with
      | Vex.Value.VI64 bits -> Int64.float_of_bits bits
      | Vex.Value.VF64 f -> f
      | _ -> 0.0
    in
    let trace =
      Some
        (Trace.node ~max_depth:st.cfg.Config.max_trace_depth ~key:(B.hash real)
           "neg"
           [| Shadow.trace_of s |]
           client)
    in
    Shadow.SVal { s with Shadow.real; value = client; trace }
  end
  else Shadow.SVal { s with Shadow.real }

and bit_trick_abs st (s : Shadow.t) (result : Vex.Value.t) : Shadow.slot =
  let real = B.abs s.Shadow.real in
  if st.cfg.Config.enable_expressions then begin
    let client =
      match result with
      | Vex.Value.VI64 bits -> Int64.float_of_bits bits
      | Vex.Value.VF64 f -> f
      | _ -> 0.0
    in
    let trace =
      Some
        (Trace.node ~max_depth:st.cfg.Config.max_trace_depth ~key:(B.hash real)
           "fabs"
           [| Shadow.trace_of s |]
           client)
    in
    Shadow.SVal { s with Shadow.real; value = client; trace }
  end
  else Shadow.SVal { s with Shadow.real }

and simd2 st ~loc ~stmt_id name ffn rfn (av, ash) (bv, bsh) result : Shadow.slot =
  let a0, a1 = Vex.Value.v128_f64_lanes (Vex.Value.as_v128 av) in
  let b0, b1 = Vex.Value.v128_f64_lanes (Vex.Value.as_v128 bv) in
  let r0, r1 = Vex.Value.v128_f64_lanes (Vex.Value.as_v128 result) in
  let lane i a b r =
    let asl = lane_slot ash 2 i and bsl = lane_slot bsh 2 i in
    do_op st ~stmt_id ~loc ~name ~single:false ~client:r
      ~client_fn:(fun x -> ffn x.(0) x.(1))
      ~real_fn:(fun x -> rfn x.(0) x.(1))
      [| (a, asl); (b, bsl) |]
  in
  Shadow.SVec [| lane 0 a0 b0 r0; lane 1 a1 b1 r1 |]

and simd4 st ~loc ~stmt_id name ffn rfn (av, ash) (bv, bsh) result : Shadow.slot =
  let a0, a1, a2, a3 = Vex.Value.v128_f32_lanes (Vex.Value.as_v128 av) in
  let b0, b1, b2, b3 = Vex.Value.v128_f32_lanes (Vex.Value.as_v128 bv) in
  let r0, r1, r2, r3 = Vex.Value.v128_f32_lanes (Vex.Value.as_v128 result) in
  let lane i a b r =
    let asl = lane_slot ash 4 i and bsl = lane_slot bsh 4 i in
    do_op st ~stmt_id ~loc ~name ~single:true ~client:r
      ~client_fn:(fun x -> ffn x.(0) x.(1))
      ~real_fn:(fun x -> rfn x.(0) x.(1))
      [| (a, asl); (b, bsl) |]
  in
  Shadow.SVec
    [| lane 0 a0 b0 r0; lane 1 a1 b1 r1; lane 2 a2 b2 r2; lane 3 a3 b3 r3 |]

and lane_slot (sl : Shadow.slot) n i : Shadow.slot =
  match sl with
  | Shadow.SVec lanes when Array.length lanes = n -> lanes.(i)
  | _ -> Shadow.SNone

(* ---------- statement and block loop ---------- *)

exception Exit_to of int

let run_block st (bidx : int) : int =
  let cb = st.compiled.Vex.Compile.cblocks.(bidx) in
  (* self-ticked deadline: check the wall clock at block granularity,
     but only once every [tick_stride] executed raw statements *)
  (match st.tick with
  | Some tick ->
      if st.stmts_since_tick >= tick_stride then begin
        tick ();
        st.stmts_since_tick <- 0
      end;
      st.stmts_since_tick <- st.stmts_since_tick + cb.Vex.Compile.cb_n_raw
  | None -> ());
  let fr = st.frames.(bidx) in
  let nt = Array.length fr.temps in
  Array.blit st.temp_inits.(bidx) 0 fr.temps 0 nt;
  Array.fill fr.tshadow 0 nt Shadow.SNone;
  (* the fast path shares the uninstrumented evaluator through a minimal
     machine-state view *)
  let rec fast_eval (e : Vex.Ir.expr) : Vex.Value.t =
    match e with
    | Vex.Ir.RdTmp t -> fr.temps.(t)
    | Vex.Ir.Const c -> Vex.Value.of_const c
    | Vex.Ir.LabelAddr l ->
        Vex.Value.VI64 (Int64.of_int (Vex.Ir.block_index st.prog l))
    | Vex.Ir.Get (off, ty) -> Vex.Value.read_bytes st.thread off ty
    | Vex.Ir.Load (ty, a) ->
        let addr = Int64.to_int (Vex.Value.as_i64 (fast_eval a)) in
        check_mem st addr (Vex.Ir.ty_size ty);
        Vex.Value.read_bytes st.mem addr ty
    | Vex.Ir.Unop (op, a) -> Vex.Eval.eval_unop op (fast_eval a)
    | Vex.Ir.Binop (op, a, b) ->
        Vex.Eval.eval_binop op (fast_eval a) (fast_eval b)
    | Vex.Ir.ITE (g, t, e2) ->
        if Vex.Value.as_bool (fast_eval g) then fast_eval t else fast_eval e2
  in
  let stmts = cb.Vex.Compile.cb_stmts in
  let n = Array.length stmts in
  let rec go i =
    if i >= n then begin
      st.stats.stmts_run <- st.stats.stmts_run + cb.Vex.Compile.cb_tail_w;
      match cb.Vex.Compile.cb_next with
      | Vex.Compile.CGoto t -> t
      | Vex.Compile.CIndirect e -> Int64.to_int (Vex.Value.as_i64 (fast_eval e))
      | Vex.Compile.CHalt -> -1
    end
    else begin
      let c = stmts.(i) in
      st.stats.stmts_run <- st.stats.stmts_run + c.Vex.Compile.cs_run_w;
      st.stats.stmts_executed <- st.stats.stmts_executed + 1;
      (match c.Vex.Compile.cs_path with
      (* fast paths allowed by type inference *)
      | Vex.Compile.PFast -> begin
          match c.Vex.Compile.cs_op with
          | Vex.Compile.CWrTmp (t, e) -> fr.temps.(t) <- fast_eval e
          | Vex.Compile.CExit (g, target) ->
              if Vex.Value.as_bool (fast_eval g) then raise (Exit_to target)
          | Vex.Compile.CPut (off, e) ->
              let v = fast_eval e in
              clear_shadow_range st.thread_shadow off
                (Vex.Ir.ty_size (Vex.Value.ty_of v));
              Vex.Value.write_bytes st.thread off v
          | Vex.Compile.CStore (a, v) ->
              let addr = Int64.to_int (Vex.Value.as_i64 (fast_eval a)) in
              let value = fast_eval v in
              check_mem st addr (Vex.Ir.ty_size (Vex.Value.ty_of value));
              clear_shadow_range st.mem_shadow addr
                (Vex.Ir.ty_size (Vex.Value.ty_of value));
              Vex.Value.write_bytes st.mem addr value
          | Vex.Compile.CDirtyArg _ | Vex.Compile.CDirty _
          | Vex.Compile.COut _ ->
              assert false (* never classified fast *)
        end
      (* tiered pass 2, off the escalated slice: machine semantics only.
         Temp/thread/memory shadows are cleared rather than written, so
         an on-slice reader can never observe a stale real here — the
         slice closure guarantees every producer feeding an on-slice
         statement is itself on-slice. Outputs are still pushed (client
         transparency); no spot or op entries are created. *)
      | Vex.Compile.POff -> begin
          match c.Vex.Compile.cs_op with
          | Vex.Compile.CWrTmp (t, e) ->
              fr.temps.(t) <- fast_eval e;
              fr.tshadow.(t) <- Shadow.SNone
          | Vex.Compile.CPut (off, e) ->
              let v = fast_eval e in
              clear_shadow_range st.thread_shadow off
                (Vex.Ir.ty_size (Vex.Value.ty_of v));
              Vex.Value.write_bytes st.thread off v
          | Vex.Compile.CStore (a, ve) ->
              let addr = Int64.to_int (Vex.Value.as_i64 (fast_eval a)) in
              let v = fast_eval ve in
              check_mem st addr (Vex.Ir.ty_size (Vex.Value.ty_of v));
              clear_shadow_range st.mem_shadow addr
                (Vex.Ir.ty_size (Vex.Value.ty_of v));
              Vex.Value.write_bytes st.mem addr v
          | Vex.Compile.CDirtyArg (t, args) ->
              let k =
                if Array.length args = 1 then
                  Vex.Value.as_f64 (fast_eval args.(0))
                else 0.0
              in
              fr.temps.(t) <- Vex.Value.VF64 (Vex.Machine.nth_input st.inputs k);
              fr.tshadow.(t) <- Shadow.SNone
          | Vex.Compile.CDirty (t, name, args) ->
              let fargs =
                Array.map (fun a -> Vex.Value.as_f64 (fast_eval a)) args
              in
              fr.temps.(t) <- Vex.Value.VF64 (Vex.Eval.libm_apply name fargs);
              fr.tshadow.(t) <- Shadow.SNone
          | Vex.Compile.CExit (g, target) ->
              if Vex.Value.as_bool (fast_eval g) then raise (Exit_to target)
          | Vex.Compile.COut (kind, e) -> (
              let v = fast_eval e in
              match kind with
              | Vex.Ir.OutMark -> ()
              | Vex.Ir.OutFloat | Vex.Ir.OutInt ->
                  st.outputs <-
                    {
                      Vex.Machine.stmt_id = c.Vex.Compile.cs_id;
                      loc = c.Vex.Compile.cs_loc;
                      kind;
                      value = v;
                    }
                    :: st.outputs)
        end
      | Vex.Compile.PFull -> begin
          st.stats.stmts_instrumented <- st.stats.stmts_instrumented + 1;
          let loc = c.Vex.Compile.cs_loc in
          let stmt_id = c.Vex.Compile.cs_id in
          match c.Vex.Compile.cs_op with
          | Vex.Compile.CWrTmp (t, e) ->
              let v, sh = eval st fr ~loc ~stmt_id e in
              fr.temps.(t) <- v;
              fr.tshadow.(t) <- sh
          | Vex.Compile.CPut (off, e) ->
              let v, sh = eval st fr ~loc ~stmt_id e in
              store_shadow st st.thread_shadow off v sh;
              Vex.Value.write_bytes st.thread off v
          | Vex.Compile.CStore (a, ve) ->
              let av, _ = eval st fr ~loc ~stmt_id a in
              let addr = Int64.to_int (Vex.Value.as_i64 av) in
              let v, sh = eval st fr ~loc ~stmt_id ve in
              check_mem st addr (Vex.Ir.ty_size (Vex.Value.ty_of v));
              store_shadow st st.mem_shadow addr v sh;
              Vex.Value.write_bytes st.mem addr v
          | Vex.Compile.CDirtyArg (t, args) ->
              (* a harness input: a fresh shadow leaf with no provenance *)
              let evaluated =
                Array.map (fun a -> eval st fr ~loc ~stmt_id a) args
              in
              let k =
                if Array.length evaluated = 1 then
                  Vex.Value.as_f64 (fst evaluated.(0))
                else 0.0
              in
              let client = Vex.Machine.nth_input st.inputs k in
              fr.temps.(t) <- Vex.Value.VF64 client;
              fr.tshadow.(t) <-
                Shadow.SVal (Shadow.fresh_leaf ~traces:st.traces client)
          | Vex.Compile.CDirty (t, name, args) ->
              let evaluated =
                Array.map (fun a -> eval st fr ~loc ~stmt_id a) args
              in
              let fargs =
                Array.map (fun (v, _) -> Vex.Value.as_f64 v) evaluated
              in
              let client = Vex.Eval.libm_apply name fargs in
              let arg_pairs =
                Array.map (fun (v, sh) -> (Vex.Value.as_f64 v, sh)) evaluated
              in
              let sh =
                do_op st ~stmt_id ~loc ~name ~single:false ~client
                  ~client_fn:(fun a -> Vex.Eval.libm_apply name a)
                  ~real_fn:(fun a ->
                    Vex.Eval.libm_apply_real ~prec:(prec st) name a)
                  arg_pairs
              in
              fr.temps.(t) <- Vex.Value.VF64 client;
              fr.tshadow.(t) <- sh
          | Vex.Compile.CExit (g, target) ->
              let gv, gsh = eval st fr ~loc ~stmt_id g in
              (match gsh with
              | Shadow.SBool sb -> record_branch st ~loc ~stmt_id sb
              | Shadow.SNone | Shadow.SVal _ | Shadow.SVec _ -> ());
              if Vex.Value.as_bool gv then raise (Exit_to target)
          | Vex.Compile.COut (kind, e) ->
              let v, sh = eval st fr ~loc ~stmt_id e in
              (match kind with
              | Vex.Ir.OutMark -> () (* user spot mark: not a program output *)
              | Vex.Ir.OutFloat | Vex.Ir.OutInt ->
                  st.outputs <-
                    { Vex.Machine.stmt_id; loc; kind; value = v } :: st.outputs);
              let sp = spot_entry st stmt_id loc Spot_output in
              sp.s_total <- sp.s_total + 1;
              (match (v, sh) with
              | (Vex.Value.VF64 f | Vex.Value.VF32 f), Shadow.SVal s ->
                  (* a NaN output is conservatively reported at full error,
                     even when the shadow real is NaN too (the paper's
                     Gram-Schmidt division-by-zero finding, section 7) *)
                  let err =
                    if Float.is_nan f && st.cfg.Config.enable_reals then 64.0
                    else out_error st f s.Shadow.real ~single:s.Shadow.single
                  in
                  sp.s_err_sum <- sp.s_err_sum +. err;
                  if err > sp.s_err_max then sp.s_err_max <- err;
                  if
                    err > st.cfg.Config.error_threshold
                    && st.cfg.Config.enable_influences
                  then sp.s_infl <- IntSet.union sp.s_infl s.Shadow.infl
              | _ -> ())
        end);
      go (i + 1)
    end
  in
  try go 0 with Exit_to target -> target

type result = {
  r_ops : (int, op_info) Hashtbl.t;
  r_spots : (int, spot_info) Hashtbl.t;
  r_outputs : Vex.Machine.output list;
  r_stats : stats;
}

let run ?mem_size ?max_steps ?inputs ?restrict ?tick (cfg : Config.t)
    (prog : Vex.Ir.prog) : result =
  let st = create ?mem_size ?max_steps ?inputs ?restrict ?tick cfg prog in
  Fun.protect
    ~finally:(fun () -> release_mem st.mem st.mem_hw)
    (fun () ->
      let error msg = Client_error msg in
      st.stats.blocks_run <-
        Vex.Machine.drive ~max_steps:st.max_steps ~error st.prog
          ~run_block:(run_block st);
      {
        r_ops = st.ops;
        r_spots = st.spots;
        r_outputs = List.rev st.outputs;
        r_stats = st.stats;
      })
