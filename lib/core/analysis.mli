(** The public entry point of the Herbgrind reproduction.

    [analyze] runs a VEX program under the full shadow analysis — real
    execution, influences, expression traces (paper section 4) — and
    produces the root-cause report. All knobs live in {!Config.t}. *)

type result = {
  raw : Exec.result;  (** the op and spot tables, outputs, and run stats *)
  report : Report.t;  (** the rendered root-cause report *)
  cfg : Config.t;  (** the configuration the analysis ran with *)
}

val analyze :
  ?cfg:Config.t ->
  ?mem_size:int ->
  ?max_steps:int ->
  ?inputs:float array ->
  ?restrict:(int -> bool) ->
  ?tick:(unit -> unit) ->
  Vex.Ir.prog ->
  result
(** Run [prog] under the analysis. [inputs] backs the [__arg] builtin
    (program inputs with no floating-point provenance); [max_steps] bounds
    the number of superblocks executed; [restrict] limits instrumentation
    to a dependency-closed statement set (the tiered engine's pass 2, see
    {!Exec.run}); [tick] is called at block granularity, strided to
    about once per 1024 executed raw statements (see {!Exec.run}), so
    callers can abort long runs by raising from it. *)

val report_string : result -> string
(** The report in the paper's format: one entry per erroneous spot, with
    instance counts and the influencing FPCore expressions. *)

val erroneous_expressions :
  result -> (Antiunify.sym * string * Exec.op_info) list
(** Symbolic expressions of all operations whose maximum local error
    exceeded the threshold, most erroneous first, with their FPCore
    rendering. These are the candidate root causes. *)

val all_expressions : result -> (Antiunify.sym * string * Exec.op_info) list
(** Every recovered expression regardless of error (for section 8.1-style
    recovery checks). *)

val output_floats : result -> float list
(** The client program's floating-point outputs, in order. *)

val branch_spots : result -> Exec.spot_info list
(** All conditional-branch spots (total and incorrect instance counts). *)

val output_spots : result -> Exec.spot_info list
(** All program-output spots (error statistics and influences). *)
