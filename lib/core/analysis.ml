(* The public entry point of the Herbgrind reproduction: run a VEX program
   under the full shadow analysis and produce a root-cause report. *)

type result = {
  raw : Exec.result;
  report : Report.t;
  cfg : Config.t;
}

let analyze ?(cfg = Config.default) ?mem_size ?max_steps ?inputs ?restrict
    ?tick (prog : Vex.Ir.prog) : result =
  let raw = Exec.run ?mem_size ?max_steps ?inputs ?restrict ?tick cfg prog in
  let report = Report.build ~cfg raw in
  { raw; report; cfg }

let report_string (r : result) = Report.to_string r.report

(* All symbolic expressions recovered for operations that produced local
   error above the threshold, most erroneous first. Useful for tests and
   for feeding the rewriter. *)
let erroneous_expressions (r : result) :
    (Antiunify.sym * string * Exec.op_info) list =
  Hashtbl.fold
    (fun _ (o : Exec.op_info) acc ->
      if o.Exec.o_local_err_max > r.cfg.Config.error_threshold then begin
        let expr =
          Antiunify.finalize ~classic:r.cfg.Config.classic_antiunify
            o.Exec.o_agg
        in
        (expr, Antiunify.to_fpcore expr, o) :: acc
      end
      else acc)
    r.raw.Exec.r_ops []
  |> List.sort (fun (_, _, a) (_, _, b) ->
         compare b.Exec.o_local_err_max a.Exec.o_local_err_max)

(* All recovered expressions regardless of error, for section 8.1-style
   recovery checks. *)
let all_expressions (r : result) : (Antiunify.sym * string * Exec.op_info) list
    =
  Hashtbl.fold
    (fun _ (o : Exec.op_info) acc ->
      let expr =
        Antiunify.finalize ~classic:r.cfg.Config.classic_antiunify o.Exec.o_agg
      in
      (expr, Antiunify.to_fpcore expr, o) :: acc)
    r.raw.Exec.r_ops []

let output_floats (r : result) : float list =
  List.filter_map
    (fun (o : Vex.Machine.output) ->
      match o.Vex.Machine.value with
      | Vex.Value.VF64 f | Vex.Value.VF32 f -> Some f
      | Vex.Value.VI64 _ | Vex.Value.VI32 _ | Vex.Value.VBool _
      | Vex.Value.VV128 _ ->
          None)
    r.raw.Exec.r_outputs

let branch_spots (r : result) : Exec.spot_info list =
  Hashtbl.fold
    (fun _ (s : Exec.spot_info) acc ->
      match s.Exec.s_kind with
      | Exec.Spot_branch -> s :: acc
      | Exec.Spot_output | Exec.Spot_convert -> acc)
    r.raw.Exec.r_spots []

let output_spots (r : result) : Exec.spot_info list =
  Hashtbl.fold
    (fun _ (s : Exec.spot_info) acc ->
      match s.Exec.s_kind with
      | Exec.Spot_output -> s :: acc
      | Exec.Spot_branch | Exec.Spot_convert -> acc)
    r.raw.Exec.r_spots []
