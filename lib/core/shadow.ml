(* Shadow values (paper sections 4 and 5.1-5.2).

   A shadowed float carries three analyses at once: the exact real value
   (Bigfloat, standing in for MPFR), the concrete trace of the computation
   that produced it, and the influence set of high-local-error operations
   it depends on. Shadows are immutable and freely shared between copies
   in temporaries, thread state, and memory (section 6.2); OCaml's GC
   replaces the reference counting of the C implementation.

   [value] is the client double computed where the shadow was created
   (trace-node semantics: passthrough rewrites such as precision moves
   keep the creating site's value). It lives directly in the shadow so
   the trace can stay unmaterialized: when the executor's reachability
   pre-pass proves no consumer can see a trace, [trace] is [None] and
   only the logical node count is kept (see {!Trace.phantom}).

   Shadow *locations* describe what a VEX temporary or storage slot
   holds: nothing, one scalar shadow, a float-comparison boolean, or the
   lanes of a SIMD vector. *)

module IntSet = Set.Make (Int)

type t = {
  real : Bignum.Bigfloat.t;
  value : float;
  trace : Trace.node option;
  infl : IntSet.t;
  single : bool;  (* true when this value lives on the binary32 grid *)
}

(* the shadow of a boolean produced by a float comparison: tracks whether
   the real-number comparison agrees with the client's *)
type sbool = { client_b : bool; shadow_b : bool; binfl : IntSet.t }

type slot =
  | SNone
  | SVal of t
  | SBool of sbool
  | SVec of slot array  (* 2 (F64) or 4 (F32) lanes, each SNone/SVal *)

(* lazily shadow a client value that has no recorded provenance; trace keys
   always hash the exact value so equivalence inference is consistent
   between leaves and computed nodes. [traces] is the executor's
   materialization verdict: when false the leaf is phantom-counted. *)
let fresh_leaf ?(single = false) ~traces (v : float) : t =
  let real = Bignum.Bigfloat.of_float v in
  let trace =
    if traces then Some (Trace.leaf ~key:(Bignum.Bigfloat.hash real) v)
    else begin
      Trace.phantom ();
      None
    end
  in
  { real; value = v; trace; infl = IntSet.empty; single }

let client_value (s : t) : float = s.value

(* the materialized trace of [s]; reconstructs a value leaf in the
   (unreachable by the executors' reachability rule) case where a
   consumer meets an unmaterialized shadow *)
let trace_of (s : t) : Trace.node =
  match s.trace with Some t -> t | None -> Trace.leaf s.value
