(** Concrete expression traces (paper section 4.4).

    Each shadowed value carries a trace describing the computation that
    produced it: a leaf (an input with no float-op provenance, or an
    immediate), or an operation over child traces. Nodes are immutable
    and shared between value copies (6.2); the GC replaces the original's
    reference counting.

    [value] is the client double (for display); [key] hashes the *exact*
    shadow value and drives the runtime-value equivalence inference of
    {!Antiunify} — keying on client doubles would equate [x+1] with [x]
    at x = 1e16 and collapse the root cause.

    Both depth and tree-expanded size are bounded: traces share children
    as a DAG but aggregation walks them as trees, so an unbounded
    loop-carried accumulator would make every walk exponential (the
    paper's 6.3 freeing of distant concrete nodes). *)

type node = private {
  op : string;  (** [""] for leaves *)
  args : node array;
  value : float;  (** the client double computed at this node *)
  key : int;  (** hash of the exact (shadow real) value *)
  depth : int;  (** 1 for leaves *)
  size : int;  (** tree-expanded node count *)
  id : int;  (** unique node identity *)
}

val created_in_domain : unit -> int
(** Nodes logically created on the calling domain since it started —
    materialized nodes plus {!phantom} bumps. A batch worker running one
    job at a time can difference this around the job to get a per-job
    trace-node count that is independent of other domains. *)

val materialized_in_domain : unit -> int
(** Nodes actually allocated on the calling domain. Equals
    {!created_in_domain} under eager tracing; lower when the executors'
    lazy-trace reachability rule proves nodes unreachable. *)

val phantom : unit -> unit
(** Record a node that was deliberately not built (lazy traces): bumps
    the logical creation count only, keeping [m_trace_nodes] identical
    to an eager run. *)

val max_tree_size : int
(** Bound on a node's tree-expanded size; larger children are summarized
    by value leaves, deepest first. *)

val float_key : float -> int
(** Key for a leaf whose exact value is the double itself. *)

val leaf : ?key:int -> float -> node
val is_leaf : node -> bool

val truncate : node -> node
(** Replace a subtree by a value-only leaf (same key). *)

val node : max_depth:int -> key:int -> string -> node array -> float -> node
(** Build an operation node, truncating children that exceed [max_depth]
    or push the node past {!max_tree_size}. *)

val op_count : node -> int
(** Number of operation nodes in the (truncated) tree. *)

val to_string : node -> string
