(** Shadow values (paper sections 4 and 5.1-5.2).

    A shadowed float carries the three analyses at once: the exact real
    value (standing in for MPFR), the concrete trace of the computation
    that produced it, and the influence set of high-local-error
    operations it depends on. Shadows are immutable and freely shared
    between copies in temporaries, thread state and memory (6.2).

    The trace is optional: when the executor's compile-time reachability
    pre-pass proves no consumer can ever see a trace, shadows carry
    [None] and only the logical node count is kept ({!Trace.phantom});
    [value] preserves the client double the trace node would have
    displayed. *)

module IntSet : Set.S with type elt = int

type t = {
  real : Bignum.Bigfloat.t;  (** the exact value *)
  value : float;  (** the client double computed where this was created *)
  trace : Trace.node option;  (** how it was computed; [None] = phantom *)
  infl : IntSet.t;  (** stmt ids of tainting operations *)
  single : bool;  (** lives on the binary32 grid *)
}

(** The shadow of a boolean produced by a float comparison: whether the
    real-number comparison agrees with the client's. *)
type sbool = { client_b : bool; shadow_b : bool; binfl : IntSet.t }

(** What a VEX temporary or storage slot holds. *)
type slot =
  | SNone  (** nothing shadowed *)
  | SVal of t  (** one scalar shadow (possibly riding in an integer) *)
  | SBool of sbool
  | SVec of slot array  (** SIMD lanes, 2 (F64) or 4 (F32) *)

val fresh_leaf : ?single:bool -> traces:bool -> float -> t
(** Lazily shadow a client value with no recorded provenance (paper 6.1).
    The trace key hashes the exact value, consistent with computed
    nodes. [traces] is the executor's materialization verdict: when
    false the leaf is phantom-counted and [trace] is [None]. *)

val client_value : t -> float
(** The client double this shadow accompanies. *)

val trace_of : t -> Trace.node
(** The materialized trace of a shadow, rebuilding a value leaf if it
    was never materialized (defensive: the reachability rule keeps
    consumers and unmaterialized shadows apart). *)
