(** The instrumented VEX executor: the analogue of running the client
    binary under Valgrind with the Herbgrind tool loaded.

    Client semantics are shared with the fast interpreter through
    {!Vex.Eval}; this module adds the three shadow executions of paper
    section 4 (reals, influences, expressions), spot bookkeeping, libm
    wrapping, bit-trick recognition, compensation detection, and the
    type-inference fast paths. Programs execute as pre-decoded
    superblocks ({!Vex.Compile}, cached process-wide); per-block
    temporaries and shadow slots are arena-allocated and bulk-reset, and
    concrete trace nodes are materialized only when the compiled program
    can reach a trace consumer. Use {!Analysis.analyze} unless you need
    the raw tables. *)

(** Per-operation (pc) aggregate: location, running anti-unification of
    its concrete traces, and error statistics. *)
type op_info = {
  o_id : int;  (** the statement id (pc) *)
  o_loc : Vex.Ir.loc;
  o_name : string;  (** operator, e.g. "+", "sqrt", "exp" *)
  o_agg : Antiunify.agg;
  mutable o_count : int;
  mutable o_local_err_sum : float;
  mutable o_local_err_max : float;
  mutable o_out_err_sum : float;
  mutable o_out_err_max : float;
}

type spot_kind =
  | Spot_output  (** a program output *)
  | Spot_branch  (** a conditional guarded by a float comparison *)
  | Spot_convert  (** a float-to-integer conversion *)

(** Per-spot record: instance counts, divergence counts, error statistics
    and the influence set of candidate root causes. *)
type spot_info = {
  s_id : int;
  s_loc : Vex.Ir.loc;
  s_kind : spot_kind;
  mutable s_total : int;
  mutable s_incorrect : int;  (** for branches and conversions *)
  mutable s_err_sum : float;  (** for outputs *)
  mutable s_err_max : float;
  mutable s_infl : Shadow.IntSet.t;
}

type stats = {
  mutable blocks_run : int;
  mutable stmts_run : int;  (** raw statements, IMarks included *)
  mutable stmts_executed : int;
      (** pre-decoded statements dispatched (IMarks are elided at
          compile time, so this is the real dispatch count) *)
  mutable stmts_instrumented : int;  (** statements taking the full path *)
  mutable fp_ops : int;  (** shadowed floating-point operations *)
  mutable compensations : int;  (** compensating ops detected (5.4) *)
}

type result = {
  r_ops : (int, op_info) Hashtbl.t;
  r_spots : (int, spot_info) Hashtbl.t;
  r_outputs : Vex.Machine.output list;
  r_stats : stats;
}

exception Client_error of string

val run :
  ?mem_size:int ->
  ?max_steps:int ->
  ?inputs:float array ->
  ?restrict:(int -> bool) ->
  ?tick:(unit -> unit) ->
  Config.t ->
  Vex.Ir.prog ->
  result
(** Run the program under full instrumentation, following the client's
    control flow (divergences are recorded as spots, paper 4.2).

    [restrict] (the tiered engine's pass 2) limits instrumentation to
    the statement ids it accepts: everything else runs machine-only with
    its shadows cleared, creating no spot or op entries. For the
    restricted run to report identically to an unrestricted one at the
    accepted spots, the accepted set must be closed under backward data
    dependencies ({!Vex.Slice}).

    [tick] is the deadline hook: the executor calls it at block
    granularity, at most once per 1024 executed raw statements (and
    immediately on the first block, so an already-expired budget gets no
    free work); batch drivers enforce wall-clock deadlines by raising
    from the callback (the exception propagates out of [run]
    untouched). *)
