(** Analysis configuration.

    Defaults follow the paper: 1000-bit shadow precision, local-error
    threshold of 5 bits, value-equivalence depth 5, every subsystem
    enabled. The component switches exist for the section 8.2 ablations
    and figure 10 sweeps. *)

(** Which analysis engine runs the program. *)
type engine =
  | Full  (** the paper's full instrumentation (reals/influences/traces) *)
  | Sanitize  (** the NSan-style dual-precision shadow sanitizer *)
  | Tiered
      (** two-pass: sanitizer triage, then the full engine restricted to
          the backward slices of the flagged spots *)

val engine_name : engine -> string
(** ["full"] / ["sanitize"] / ["tiered"] — the canonical wire and store
    spelling. *)

val engine_of_name : string -> engine option
(** Inverse of {!engine_name}. *)

type t = {
  precision : int;  (** shadow real precision in bits (paper default 1000) *)
  error_threshold : float;
      (** bits of local error above which an operation taints its output *)
  equiv_depth : int;
      (** depth to which exact value-equivalence is tracked during
          anti-unification (paper default 5, section 6.4) *)
  max_trace_depth : int;
      (** concrete trace depth kept per value before truncation (6.3) *)
  enable_reals : bool;  (** the higher-precision shadow execution (4.2) *)
  enable_influences : bool;  (** the spots-and-influences system (4.3) *)
  enable_expressions : bool;  (** concrete/symbolic expression building (4.4) *)
  type_inference : bool;  (** superblock static type inference (5.3) *)
  classic_antiunify : bool;
      (** classical most-specific generalization: no internal-node pruning
          (the section 4.4 completeness flag) *)
  detect_compensation : bool;  (** compensating-term detection (5.4) *)
  report_all_spots : bool;  (** include error-free spots in the report *)
  engine : engine;
      (** which engine {!Analysis.analyze} and the batch drivers run;
          the sanitizer only reads [error_threshold] of the other
          knobs *)
}

val default : t
(** The paper's configuration. *)

val fast : t
(** [default] at 128-bit precision, for tests. *)

val fingerprint : t -> string
(** Canonical string covering every field, for content-hash cache keys:
    equal fingerprints iff the configurations analyze identically. *)
