(* The campaign checkpoint. What makes resume byte-identical is that the
   checkpoint records the *PRNG stream index* — every campaign task at
   stream index [i] derives its randomness from (seed, i) alone
   (SplitMix64 [Fuzz.Rng.make_indexed] for fuzz programs, the suite's
   xorshift64* stream for soundiness contexts), so "resume at s_next"
   replays exactly the suffix an uninterrupted run would have produced.
   The fingerprint pins everything else a finding depends on; resuming
   under a different config is refused rather than silently diverging.

   Writes are atomic (temp file + rename in the same directory), so a
   SIGKILL mid-checkpoint leaves the previous checkpoint intact. *)

type t = {
  s_seed : int;
  s_iters : int;  (* target stream length *)
  s_next : int;  (* next stream index to run; iters = completed *)
  s_soundness_every : int;  (* every Nth index is a soundiness task *)
  s_fingerprint : string;  (* config fingerprint; resume guard *)
  s_passed : int;
  s_skipped : int;
  s_divergent : int;
  s_errors : int;
  s_soundness_checks : int;
  s_soundness_violations : int;
  s_regime_checks : int;  (* regime-slice tasks completed *)
  s_regime_findings : int;  (* regime tasks that produced a finding *)
}

let fresh ~seed ~iters ~soundness_every ~fingerprint =
  {
    s_seed = seed;
    s_iters = iters;
    s_next = 0;
    s_soundness_every = soundness_every;
    s_fingerprint = fingerprint;
    s_passed = 0;
    s_skipped = 0;
    s_divergent = 0;
    s_errors = 0;
    s_soundness_checks = 0;
    s_soundness_violations = 0;
    s_regime_checks = 0;
    s_regime_findings = 0;
  }

let findings (t : t) : int =
  t.s_divergent + t.s_errors + t.s_soundness_violations + t.s_regime_findings
let complete (t : t) : bool = t.s_next >= t.s_iters

let to_json (t : t) : Json.t =
  let num i = Json.Num (float_of_int i) in
  Json.Obj
    [
      ("seed", num t.s_seed);
      ("iters", num t.s_iters);
      ("next", num t.s_next);
      ("soundness_every", num t.s_soundness_every);
      ("fingerprint", Json.Str t.s_fingerprint);
      ("passed", num t.s_passed);
      ("skipped", num t.s_skipped);
      ("divergent", num t.s_divergent);
      ("errors", num t.s_errors);
      ("soundness_checks", num t.s_soundness_checks);
      ("soundness_violations", num t.s_soundness_violations);
      ("regime_checks", num t.s_regime_checks);
      ("regime_findings", num t.s_regime_findings);
    ]

let of_json (j : Json.t) : t =
  {
    s_seed = Json.get_int "seed" j;
    s_iters = Json.get_int "iters" j;
    s_next = Json.get_int "next" j;
    s_soundness_every = Json.get_int "soundness_every" j;
    s_fingerprint = Json.get_str "fingerprint" j;
    s_passed = Json.get_int "passed" j;
    s_skipped = Json.get_int "skipped" j;
    s_divergent = Json.get_int "divergent" j;
    s_errors = Json.get_int "errors" j;
    s_soundness_checks = Json.get_int "soundness_checks" j;
    s_soundness_violations = Json.get_int "soundness_violations" j;
    (* default 0: state files from before the regime slice stay loadable *)
    s_regime_checks = Json.get_int ~default:0 "regime_checks" j;
    s_regime_findings = Json.get_int ~default:0 "regime_findings" j;
  }

let save ~(path : string) (t : t) : unit =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir "campaign-state" ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc (Json.to_string (to_json t));
     output_char oc '\n';
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let load ~(path : string) : (t, string) result =
  if not (Sys.file_exists path) then Error "no such state file"
  else
    let ic = open_in_bin path in
    let src =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Json.of_string (String.trim src) with
    | j -> Ok (of_json j)
    | exception Json.Parse_error msg -> Error ("corrupt state file: " ^ msg)
