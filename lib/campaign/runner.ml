(* The campaign loop: a long-running, resumable mix of differential
   fuzzing, engine-consistency checks, and the soundiness oracle.

   The stream is indexed 0..iters-1. When [soundness_every] is N > 0,
   every Nth index (i ≡ N-1 mod N) is a soundiness task over the
   benchmark suite — the k-th soundiness task checks bench (k mod 82)
   with a per-index derived seed; when [regimes_every] is M > 0, every
   Mth index is a regime-inference task over the straight-line suite
   (soundiness wins when both land on one index); and every other index
   is a fuzz program, generated from (seed, i) exactly as `fpgrind
   fuzz` would.
   Each index is therefore a pure function of (seed, i, config): the
   loop runs strictly in index order, findings append in index order,
   and the checkpoint records the next index to run — which is all it
   takes for an interrupted+resumed campaign to produce a findings feed
   byte-identical to an uninterrupted one.

   Signals: the caller passes [should_stop]; the loop polls it between
   stream indices, finishes the item in flight, appends its findings,
   checkpoints, and returns [Interrupted]. Nothing is lost and nothing
   is half-written (checkpoints are atomic, findings are line-buffered
   appends). *)

module Oracle = Fuzz.Oracle
module Fcampaign = Fuzz.Campaign
module Suite = Fpcore.Suite

type config = {
  cfg_seed : int;
  cfg_iters : int;
  cfg_soundness_every : int;  (* 0 disables the soundiness slice *)
  cfg_regimes_every : int;  (* 0 disables the regime slice *)
  cfg_checkpoint_every : int;
  cfg_state_path : string;
  cfg_findings_path : string;
  cfg_checks : Oracle.checks;
  cfg_soundness_points : int;
  cfg_soundness_depth : int;
  cfg_shrink : bool;  (* minimize divergent programs via the shrinker *)
}

let default_config ~state_path ~findings_path =
  {
    cfg_seed = 42;
    cfg_iters = 2000;
    cfg_soundness_every = 0;
    cfg_regimes_every = 0;
    cfg_checkpoint_every = 50;
    cfg_state_path = state_path;
    cfg_findings_path = findings_path;
    cfg_checks =
      { Oracle.default_checks with Oracle.c_consistency = true; c_tiered = true };
    cfg_soundness_points = 16;
    cfg_soundness_depth = 2;
    cfg_shrink = true;
  }

(* Everything a finding depends on besides (seed, index). A resume under
   a different fingerprint would *silently* change the replayed suffix,
   so it is refused instead. *)
let fingerprint (c : config) : string =
  let ck = c.cfg_checks in
  Printf.sprintf
    "seed=%d iters=%d every=%d regimes=%d an=%b ab=%b vec=%b ml=%b k=%b \
     san=%b cons=%b tier=%b steps=%d cfg=%s pts=%d depth=%d shrink=%b"
    c.cfg_seed c.cfg_iters c.cfg_soundness_every c.cfg_regimes_every
    ck.Oracle.c_analysis ck.Oracle.c_ablations ck.Oracle.c_vectorize
    ck.Oracle.c_mathlib ck.Oracle.c_kernel ck.Oracle.c_sanitize
    ck.Oracle.c_consistency ck.Oracle.c_tiered ck.Oracle.c_max_steps
    (Core.Config.fingerprint ck.Oracle.c_cfg)
    c.cfg_soundness_points c.cfg_soundness_depth c.cfg_shrink

let is_soundness (c : config) (i : int) : bool =
  c.cfg_soundness_every > 0 && (i + 1) mod c.cfg_soundness_every = 0

(* The periodic regime slice (ROADMAP item 1 follow-up). When both
   slices land on the same index the soundiness check wins — the two
   predicates must partition deterministically or resume would replay a
   different stream. *)
let is_regime (c : config) (i : int) : bool =
  c.cfg_regimes_every > 0
  && (i + 1) mod c.cfg_regimes_every = 0
  && not (is_soundness c i)

(* Seed for the k-th soundiness task's point contexts: distinct per
   index, deterministic, and unrelated to the fuzz SplitMix64 stream. *)
let soundness_seed (c : config) (i : int) : int =
  (c.cfg_seed * 1_000_003) + i

(* ---------- one stream index ---------- *)

let run_soundness (c : config) (i : int) : Findings.finding option =
  let k = ((i + 1) / c.cfg_soundness_every) - 1 in
  let benches = Suite.all in
  let bench = List.nth benches (k mod List.length benches) in
  let report =
    Rewrite.Soundness.check_bench ~depth:c.cfg_soundness_depth
      ~points:c.cfg_soundness_points ~seed:(soundness_seed c i) bench
  in
  if report.Rewrite.Soundness.r_sound then None
  else begin
    (* Would the regime pipeline retire this overfit? Its validation
       gate rejects fixes that only win in-sample, so a [true] here
       marks the finding as fixed by `improve --regimes`. *)
    let regime_candidate =
      match
        Regime.infer ~depth:c.cfg_soundness_depth
          ~points:c.cfg_soundness_points ~seed:(soundness_seed c i) bench
      with
      | r -> Some r.Regime.re_soundness.Rewrite.Soundness.r_sound
      | exception _ -> None
    in
    Some
      {
        Findings.f_index = i;
        f_seed = c.cfg_seed;
        f_kind = "soundiness";
        f_subject = bench.Suite.name;
        f_detail =
          Printf.sprintf "improve regressed %.2f bits on resampled points"
            report.Rewrite.Soundness.r_regression;
        f_table = Rewrite.Soundness.table report;
        f_repro = "";
        f_regime_candidate = regime_candidate;
      }
  end

(* One regime task: run the full inference pipeline on the k-th
   straight-line bench (rotating) with a per-index derived seed, and
   report a finding whenever it has something to say — a branched or
   single fix that beats the original on the disjoint resample context,
   or a fix its own soundness gate rejects. [regime_candidate] carries
   the gate's verdict, same field the soundiness findings use. *)
let run_regime (c : config) (i : int) : Findings.finding option =
  let k = ((i + 1) / c.cfg_regimes_every) - 1 in
  let benches =
    List.filter (fun b -> b.Suite.group = `Straight) Suite.all
  in
  let bench = List.nth benches (k mod List.length benches) in
  let r =
    Regime.infer ~depth:c.cfg_soundness_depth ~points:c.cfg_soundness_points
      ~seed:(soundness_seed c i) bench
  in
  let sound = r.Regime.re_soundness.Rewrite.Soundness.r_sound in
  if r.Regime.re_selected = "original" && sound then None
  else begin
    let after =
      match r.Regime.re_selected with
      | "branched" -> r.Regime.re_act_branched
      | "single" -> r.Regime.re_act_single
      | _ -> r.Regime.re_act_before
    in
    Some
      {
        Findings.f_index = i;
        f_seed = c.cfg_seed;
        f_kind = "regime";
        f_subject = bench.Suite.name;
        f_detail =
          Printf.sprintf "%s fix, %d regimes: %.2f -> %.2f bits on resample%s"
            r.Regime.re_selected
            (Regime.selected_regimes r.Regime.re_selected r.Regime.re_regimes)
            r.Regime.re_act_before after
            (if sound then "" else " (UNSOUND)");
        f_table = Regime.table r;
        f_repro = "";
        f_regime_candidate = Some sound;
      }
  end

let run_fuzz (c : config) (i : int) : Findings.finding option * Fcampaign.status
    =
  (* run_one applies [checks_for] itself, so the every-8th deep legs
     match `fpgrind fuzz` exactly *)
  let entry = Fcampaign.run_one ~checks:c.cfg_checks ~seed:c.cfg_seed i in
  match entry.Fcampaign.e_status with
  | Fcampaign.Passed | Fcampaign.Skipped _ -> (None, entry.Fcampaign.e_status)
  | Fcampaign.Error msg ->
      ( Some
          {
            Findings.f_index = i;
            f_seed = c.cfg_seed;
            f_kind = "error";
            f_subject = entry.Fcampaign.e_digest;
            f_detail = msg;
            f_table = "";
            f_repro = "";
            f_regime_candidate = None;
          },
        entry.Fcampaign.e_status )
  | Fcampaign.Divergent d0 ->
      let repro =
        if not c.cfg_shrink then ""
        else
          match
            Fcampaign.shrink_entry ~checks:c.cfg_checks ~seed:c.cfg_seed i
          with
          | Some (small, inputs, d) ->
              Fcampaign.repro_contents ~seed:c.cfg_seed ~index:i ~d ~inputs
                (Fuzz.Printer.program small)
          | None -> ""
      in
      ( Some
          {
            Findings.f_index = i;
            f_seed = c.cfg_seed;
            f_kind = "divergence";
            f_subject = entry.Fcampaign.e_digest;
            f_detail =
              Printf.sprintf "%s: %s" d0.Oracle.d_oracle d0.Oracle.d_detail;
            f_table = "";
            f_repro = repro;
            f_regime_candidate = None;
          },
        entry.Fcampaign.e_status )

(* ---------- the loop ---------- *)

type outcome =
  | Completed of State.t
  | Interrupted of State.t  (* checkpointed; run again to resume *)

exception Resume_mismatch of string

(* Load-or-create the state for this config. A state file from a
   different config (or a different seed) must not be silently
   continued — the replayed suffix would not match. *)
let initial_state (c : config) : State.t =
  let fp = fingerprint c in
  if Sys.file_exists c.cfg_state_path then
    match State.load ~path:c.cfg_state_path with
    | Error msg -> raise (Resume_mismatch msg)
    | Ok st ->
        if st.State.s_fingerprint <> fp then
          raise
            (Resume_mismatch
               (Printf.sprintf
                  "state file %s was written by a different campaign config \
                   (fingerprint %S, expected %S)"
                  c.cfg_state_path st.State.s_fingerprint fp))
        else st
  else
    State.fresh ~seed:c.cfg_seed ~iters:c.cfg_iters
      ~soundness_every:c.cfg_soundness_every ~fingerprint:fp

let run ?(should_stop = fun () -> false) ?(on_progress = fun (_ : State.t) -> ())
    (c : config) : outcome =
  let st = ref (initial_state c) in
  let checkpoint () =
    State.save ~path:c.cfg_state_path !st;
    on_progress !st
  in
  if (!st).State.s_next = 0 then checkpoint ();
  let interrupted = ref false in
  while (not !interrupted) && not (State.complete !st) do
    if should_stop () then interrupted := true
    else begin
      let i = (!st).State.s_next in
      let s = !st in
      let s =
        if is_soundness c i then begin
          match run_soundness c i with
          | None ->
              {
                s with
                State.s_soundness_checks = s.State.s_soundness_checks + 1;
              }
          | Some f ->
              Findings.append ~path:c.cfg_findings_path [ f ];
              {
                s with
                State.s_soundness_checks = s.State.s_soundness_checks + 1;
                s_soundness_violations = s.State.s_soundness_violations + 1;
              }
        end
        else if is_regime c i then begin
          match run_regime c i with
          | None ->
              { s with State.s_regime_checks = s.State.s_regime_checks + 1 }
          | Some f ->
              Findings.append ~path:c.cfg_findings_path [ f ];
              {
                s with
                State.s_regime_checks = s.State.s_regime_checks + 1;
                s_regime_findings = s.State.s_regime_findings + 1;
              }
        end
        else begin
          match run_fuzz c i with
          | None, Fcampaign.Passed ->
              { s with State.s_passed = s.State.s_passed + 1 }
          | None, _ -> { s with State.s_skipped = s.State.s_skipped + 1 }
          | Some f, status ->
              Findings.append ~path:c.cfg_findings_path [ f ];
              (match status with
              | Fcampaign.Divergent _ ->
                  { s with State.s_divergent = s.State.s_divergent + 1 }
              | _ -> { s with State.s_errors = s.State.s_errors + 1 })
        end
      in
      st := { s with State.s_next = i + 1 };
      if (i + 1) mod c.cfg_checkpoint_every = 0 then checkpoint ()
    end
  done;
  checkpoint ();
  if !interrupted then Interrupted !st else Completed !st

let summary_line (st : State.t) : string =
  Printf.sprintf
    "campaign seed %d: %d/%d done — %d passed, %d skipped, %d divergent, %d \
     errors, %d soundiness checks (%d violations), %d regime checks (%d \
     findings), %d findings"
    st.State.s_seed st.State.s_next st.State.s_iters st.State.s_passed
    st.State.s_skipped st.State.s_divergent st.State.s_errors
    st.State.s_soundness_checks st.State.s_soundness_violations
    st.State.s_regime_checks st.State.s_regime_findings
    (State.findings st)
