(* The campaign findings feed: one JSON object per line, append-only.
   Append-only is the contract that makes resume byte-identity checkable
   — a finding for stream index [i] is a pure function of (seed, i,
   config), findings are appended in index order, so the merged feed of
   an interrupted+resumed run is byte-identical to an uninterrupted one.
   The server tails this file for `GET /findings`. *)

type finding = {
  f_index : int;  (* campaign stream index that produced it *)
  f_seed : int;
  f_kind : string;  (* "divergence" | "error" | "soundiness" | "regime" *)
  f_subject : string;  (* program digest, or benchmark name *)
  f_detail : string;  (* oracle leg + detail, or regression summary *)
  f_table : string;  (* actual-vs-predicted error table; "" when n/a *)
  f_repro : string;  (* minimized reproducer source; "" when n/a *)
  f_regime_candidate : bool option;
      (* soundiness: Some true when regime inference retires the overfit
         (its validation-gated fix is sound on resample); regime: the
         shipped fix's own soundness verdict *)
}

let to_json (f : finding) : Json.t =
  Json.Obj
    ([
       ("index", Json.Num (float_of_int f.f_index));
       ("seed", Json.Num (float_of_int f.f_seed));
       ("kind", Json.Str f.f_kind);
       ("subject", Json.Str f.f_subject);
       ("detail", Json.Str f.f_detail);
     ]
    @ (if f.f_table = "" then [] else [ ("table", Json.Str f.f_table) ])
    @ (if f.f_repro = "" then [] else [ ("repro", Json.Str f.f_repro) ])
    @
    match f.f_regime_candidate with
    | None -> []
    | Some b -> [ ("regime_candidate", Json.Bool b) ])

let to_line (f : finding) : string = Json.to_string (to_json f)

let of_json (j : Json.t) : finding =
  {
    f_index = Json.get_int "index" j;
    f_seed = Json.get_int "seed" j;
    f_kind = Json.get_str "kind" j;
    f_subject = Json.get_str "subject" j;
    f_detail = Json.get_str "detail" j;
    f_table = Json.get_str "table" j;
    f_repro = Json.get_str "repro" j;
    f_regime_candidate =
      (match Json.member "regime_candidate" j with
      | Some (Json.Bool b) -> Some b
      | _ -> None);
  }

let of_line (line : string) : finding option =
  match Json.of_string line with
  | j -> Some (of_json j)
  | exception Json.Parse_error _ -> None

(* One finding is one write+flush: the feed is live for `GET /findings`
   while the campaign runs, and a crash can at worst tear the final
   line, which the lenient reader (and Store.load_lenient's discipline)
   skips. *)
let append ~(path : string) (fs : finding list) : unit =
  if fs <> [] then begin
    let oc =
      open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path
    in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        List.iter
          (fun f ->
            output_string oc (to_line f);
            output_char oc '\n')
          fs;
        flush oc)
  end

let load (path : string) : finding list =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go acc =
          match input_line ic with
          | line -> go (match of_line line with Some f -> f :: acc | None -> acc)
          | exception End_of_file -> List.rev acc
        in
        go [])
  end
