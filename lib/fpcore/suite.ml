(* The FPBench benchmark suite (Damouche et al. 2016), vendored as FPCore
   source. The paper's section 8 evaluation uses 59 straight-line and 13
   looping FPBench expressions; this reproduction vendors a comparable set
   drawn from the same suite families: the FPBench/Herbie application
   benchmarks (doppler, turbine, kepler, jet, rigidBody, ...), the
   Hamming/NMSE accuracy problems, and the control/integration loop
   benchmarks. Each entry carries sampling ranges for its inputs, standing
   in for the suite's :pre preconditions. *)

type scale = Linear | Log

type bench = {
  name : string;
  group : [ `Straight | `Loop ];
  src : string;
  ranges : (string * float * float * scale) list;
}

let b name group ranges src = { name; group; src; ranges }

(* ---------- straight-line: application benchmarks ---------- *)

let straight_line =
  [
    b "intro-example" `Straight
      [ ("x", 1.0, 1e9, Log) ]
      "(FPCore (x) (- (sqrt (+ x 1)) (sqrt x)))";
    b "x_by_xy" `Straight
      [ ("x", 1.0, 4.0, Linear); ("y", 1.0, 4.0, Linear) ]
      "(FPCore (x y) (/ x (+ x y)))";
    b "hypot-naive" `Straight
      [ ("x", 1.0, 100.0, Linear); ("y", 1.0, 100.0, Linear) ]
      "(FPCore (x y) (sqrt (+ (* x x) (* y y))))";
    b "logexp" `Straight
      [ ("x", -8.0, 8.0, Linear) ]
      "(FPCore (x) (log (+ 1 (exp x))))";
    b "carbon-gas" `Straight
      [ ("v", 0.1, 0.5, Linear) ]
      "(FPCore (v) (let ((p 35000000.0) (a 0.401) (b 0.0000427) (t 300.0) \
       (n 1000.0) (k 0.000000000000000000000013806503)) (- (* (+ p (* (* a \
       (/ n v)) (/ n v))) (- v (* n b))) (* (* k n) t))))";
    b "doppler1" `Straight
      [ ("u", -100.0, 100.0, Linear); ("v", 20.0, 20000.0, Linear);
        ("t", -30.0, 50.0, Linear) ]
      "(FPCore (u v t) (let ((t1 (+ 331.4 (* 0.6 t)))) (/ (* (- t1) v) (* \
       (+ t1 u) (+ t1 u)))))";
    b "doppler2" `Straight
      [ ("u", -125.0, 125.0, Linear); ("v", 15.0, 25000.0, Linear);
        ("t", -40.0, 60.0, Linear) ]
      "(FPCore (u v t) (let ((t1 (+ 331.4 (* 0.6 t)))) (/ (* (- t1) v) (* \
       (+ t1 u) (+ t1 u)))))";
    b "doppler3" `Straight
      [ ("u", -30.0, 120.0, Linear); ("v", 320.0, 20300.0, Linear);
        ("t", -50.0, 30.0, Linear) ]
      "(FPCore (u v t) (let ((t1 (+ 331.4 (* 0.6 t)))) (/ (* (- t1) v) (* \
       (+ t1 u) (+ t1 u)))))";
    b "jet-engine" `Straight
      [ ("x1", -5.0, 5.0, Linear); ("x2", -20.0, 5.0, Linear) ]
      "(FPCore (x1 x2) (let ((t (- (* (* 3 x1) x1) (+ (* 2 x2) x1)))) (+ x1 \
       (+ (* (* (* (* 2 x1) (/ t (+ (* x1 x1) 1))) (/ t (+ (* x1 x1) 1))) \
       (- (* x1 x1) 3)) (* (* (* x1 x1) (* 4 (/ t (+ (* x1 x1) 1)))) 6)))))";
    b "predator-prey" `Straight
      [ ("x", 0.1, 0.3, Linear) ]
      "(FPCore (x) (let ((r 4.0) (k 1.11)) (/ (* (* r x) x) (+ 1 (* (/ x k) \
       (/ x k))))))";
    b "rigid-body1" `Straight
      [ ("x1", -15.0, 15.0, Linear); ("x2", -15.0, 15.0, Linear);
        ("x3", -15.0, 15.0, Linear) ]
      "(FPCore (x1 x2 x3) (- (- (- (* (- x1) x2) (* (* 2 x2) x3)) x1) x3))";
    b "rigid-body2" `Straight
      [ ("x1", -15.0, 15.0, Linear); ("x2", -15.0, 15.0, Linear);
        ("x3", -15.0, 15.0, Linear) ]
      "(FPCore (x1 x2 x3) (- (+ (- (* (* (* 2 x1) x2) x3) (* (* 3 x3) x3)) \
       (* (* (* x2 x1) x2) x3)) x2))";
    b "sine-taylor" `Straight
      [ ("x", -1.57079632679, 1.57079632679, Linear) ]
      "(FPCore (x) (+ (- (- x (/ (* (* x x) x) 6)) (- 0 (/ (* (* (* (* x x) \
       x) x) x) 120))) (- 0 (/ (* (* (* (* (* (* x x) x) x) x) x) x) 5040))))";
    b "sine-order3" `Straight
      [ ("x", -2.0, 2.0, Linear) ]
      "(FPCore (x) (- (* 0.954929658551372 x) (* 0.12900613773279798 (* (* \
       x x) x))))";
    b "sqroot-taylor" `Straight
      [ ("x", 0.0, 1.0, Linear) ]
      "(FPCore (x) (- (+ (- (+ 1 (* 0.5 x)) (* (* 0.125 x) x)) (* (* (* \
       0.0625 x) x) x)) (* (* (* (* 0.0390625 x) x) x) x)))";
    b "turbine1" `Straight
      [ ("v", -4.5, -0.3, Linear); ("w", 0.4, 0.9, Linear);
        ("r", 3.8, 7.8, Linear) ]
      "(FPCore (v w r) (- (- (+ 3 (/ 2 (* r r))) (/ (* (* 0.125 (- 3 (* 2 \
       v))) (* (* w w) (* r r))) (- 1 v))) 4.5))";
    b "turbine2" `Straight
      [ ("v", -4.5, -0.3, Linear); ("w", 0.4, 0.9, Linear);
        ("r", 3.8, 7.8, Linear) ]
      "(FPCore (v w r) (- (- (* 6 v) (/ (* (* 0.5 v) (* (* w w) (* r r))) \
       (- 1 v))) 2.5))";
    b "turbine3" `Straight
      [ ("v", -4.5, -0.3, Linear); ("w", 0.4, 0.9, Linear);
        ("r", 3.8, 7.8, Linear) ]
      "(FPCore (v w r) (- (- (- 3 (/ 2 (* r r))) (/ (* (* 0.125 (+ 1 (* 2 \
       v))) (* (* w w) (* r r))) (- 1 v))) 0.5))";
    b "verhulst" `Straight
      [ ("x", 0.1, 0.3, Linear) ]
      "(FPCore (x) (let ((r 4.0) (k 1.11)) (/ (* r x) (+ 1 (/ x k)))))";
    b "kepler0" `Straight
      [ ("x1", 4.0, 6.36, Linear); ("x2", 4.0, 6.36, Linear);
        ("x3", 4.0, 6.36, Linear); ("x4", 4.0, 6.36, Linear);
        ("x5", 4.0, 6.36, Linear); ("x6", 4.0, 6.36, Linear) ]
      "(FPCore (x1 x2 x3 x4 x5 x6) (+ (- (+ (* x2 x5) (* x3 x6)) (* x2 x3)) \
       (- (* x5 x6) (* x1 (+ (- (- (+ x1 x2) x3) x4) (- x5 x6))))))";
    b "kepler1" `Straight
      [ ("x1", 4.0, 6.36, Linear); ("x2", 4.0, 6.36, Linear);
        ("x3", 4.0, 6.36, Linear); ("x4", 4.0, 6.36, Linear) ]
      "(FPCore (x1 x2 x3 x4) (- (- (- (- (+ (* (* x1 x4) (+ (- (- x1 x2) \
       x3) x4)) (* x2 (- (+ (- x1 x2) x3) x4))) (* x3 x4)) (* (* x2 x3) \
       x4)) (* x1 x3)) x1))";
    b "kepler2" `Straight
      [ ("x1", 4.0, 6.36, Linear); ("x2", 4.0, 6.36, Linear);
        ("x3", 4.0, 6.36, Linear); ("x4", 4.0, 6.36, Linear);
        ("x5", 4.0, 6.36, Linear); ("x6", 4.0, 6.36, Linear) ]
      "(FPCore (x1 x2 x3 x4 x5 x6) (- (- (- (- (+ (* (* x1 x4) (+ (+ (- (- \
       x1 x2) x3) x4) (- x5 x6))) (* (* x2 x5) (+ (- (+ (+ x1 x2) x3) x4) \
       (- x6 x5)))) (* (* x3 x6) (+ (- (+ (- x1 x2) x3) x4) (+ x5 x6)))) (* \
       (* x2 x3) x4)) (* (* x1 x3) x5)) (* (* x1 x2) x6)))";
    b "himmilbeau" `Straight
      [ ("x1", -5.0, 5.0, Linear); ("x2", -5.0, 5.0, Linear) ]
      "(FPCore (x1 x2) (let ((a (- (+ (* x1 x1) x2) 11)) (b (- (+ x1 (* x2 \
       x2)) 7))) (+ (* a a) (* b b))))";
    b "delta4" `Straight
      [ ("x1", 4.0, 6.36, Linear); ("x2", 4.0, 6.36, Linear);
        ("x3", 4.0, 6.36, Linear); ("x4", 4.0, 6.36, Linear);
        ("x5", 4.0, 6.36, Linear); ("x6", 4.0, 6.36, Linear) ]
      "(FPCore (x1 x2 x3 x4 x5 x6) (+ (+ (+ (+ (+ (* (- x2) x3) (* (- x1) \
       x4)) (* x2 x5)) (* x3 x6)) (* (- x5) x6)) (* x1 (+ (+ (+ (- (- x1) \
       x2) x3) (- x4 x5)) x6))))";
    b "quadratic-p" `Straight
      [ ("a", 1.0, 10.0, Linear); ("b", 100.0, 1000.0, Linear);
        ("c", 0.001, 1.0, Linear) ]
      "(FPCore (a b c) (/ (+ (- b) (sqrt (- (* b b) (* (* 4 a) c)))) (* 2 a)))";
    b "quadratic-m" `Straight
      [ ("a", 1.0, 10.0, Linear); ("b", 100.0, 1000.0, Linear);
        ("c", 0.001, 1.0, Linear) ]
      "(FPCore (a b c) (/ (- (- b) (sqrt (- (* b b) (* (* 4 a) c)))) (* 2 a)))";
    b "nonlin1" `Straight
      [ ("x", 1.00001, 2.0, Linear) ]
      "(FPCore (x) (/ (- x 1) (- (* x x) 1)))";
    b "nonlin2" `Straight
      [ ("x", 1.001, 10.0, Linear); ("y", 1.001, 10.0, Linear) ]
      "(FPCore (x y) (/ (- (* x y) 1) (- (* (* x y) (* x y)) 1)))";
    b "exp1x" `Straight
      [ ("x", 0.01, 0.5, Linear) ]
      "(FPCore (x) (/ (- (exp x) 1) x))";
    b "exp1x-small" `Straight
      [ ("x", 1e-12, 1e-6, Log) ]
      "(FPCore (x) (/ (- (exp x) 1) x))";
    (* ---------- Hamming / NMSE accuracy problems ---------- *)
    b "nmse-3-1" `Straight
      [ ("x", 1.0, 1e12, Log) ]
      "(FPCore (x) (- (sqrt (+ x 1)) (sqrt x)))";
    b "nmse-3-3" `Straight
      [ ("x", 0.1, 10.0, Linear); ("eps", 1e-10, 1e-6, Log) ]
      "(FPCore (x eps) (- (sin (+ x eps)) (sin x)))";
    b "nmse-3-4" `Straight
      [ ("x", 1e-8, 0.01, Log) ]
      "(FPCore (x) (/ (- 1 (cos x)) (sin x)))";
    b "nmse-3-5" `Straight
      [ ("n", 1000.0, 1e8, Log) ]
      "(FPCore (n) (- (atan (+ n 1)) (atan n)))";
    b "nmse-3-6" `Straight
      [ ("x", 100.0, 1e10, Log) ]
      "(FPCore (x) (- (/ 1 (sqrt x)) (/ 1 (sqrt (+ x 1)))))";
    b "nmse-p331" `Straight
      [ ("x", 100.0, 1e10, Log) ]
      "(FPCore (x) (- (/ 1 (+ x 1)) (/ 1 x)))";
    b "nmse-p333" `Straight
      [ ("x", 100.0, 1e7, Log) ]
      "(FPCore (x) (+ (- (/ 1 (+ x 1)) (/ 2 x)) (/ 1 (- x 1))))";
    b "nmse-p336" `Straight
      [ ("x", 100.0, 1e10, Log) ]
      "(FPCore (x) (- (log (+ x 1)) (log x)))";
    b "nmse-p337" `Straight
      [ ("x", 1e-8, 0.001, Log) ]
      "(FPCore (x) (+ (- (exp x) 2) (exp (- x))))";
    b "nmse-ex38" `Straight
      [ ("n", 1000.0, 1e8, Log) ]
      "(FPCore (n) (- (- (* (+ n 1) (log (+ n 1))) (* n (log n))) 1))";
    b "nmse-ex39" `Straight
      [ ("x", 1e-8, 0.001, Log) ]
      "(FPCore (x) (- (/ 1 x) (/ 1 (tan x))))";
    b "nmse-ex310" `Straight
      [ ("x", 1e-10, 0.001, Log) ]
      "(FPCore (x) (/ (log (- 1 x)) (log (+ 1 x))))";
    b "nmse-p341" `Straight
      [ ("x", 1e-8, 0.01, Log) ]
      "(FPCore (x) (/ (- 1 (cos x)) (* x x)))";
    b "nmse-s311" `Straight
      [ ("x", 1e-8, 0.001, Log) ]
      "(FPCore (x) (/ (exp x) (- (exp x) 1)))";
    b "nmse-p345" `Straight
      [ ("x", 0.01, 1.5, Linear) ]
      "(FPCore (x) (/ (- x (sin x)) (- x (tan x))))";
    b "cos-naive" `Straight
      [ ("x", 1e-9, 1e-5, Log) ]
      "(FPCore (x) (- 1 (cos x)))";
    b "expm1-naive" `Straight
      [ ("x", 1e-12, 1e-7, Log) ]
      "(FPCore (x) (- (exp x) 1))";
    b "log1p-naive" `Straight
      [ ("x", 1e-12, 1e-7, Log) ]
      "(FPCore (x) (log (+ 1 x)))";
    b "tan-diff" `Straight
      [ ("x", 0.1, 1.0, Linear); ("eps", 1e-10, 1e-7, Log) ]
      "(FPCore (x eps) (- (tan (+ x eps)) (tan x)))";
    b "asin-edge" `Straight
      [ ("x", 0.9999, 0.99999999, Linear) ]
      "(FPCore (x) (asin x))";
    b "atanh-like" `Straight
      [ ("x", 1e-8, 0.001, Log) ]
      "(FPCore (x) (* 0.5 (log (/ (+ 1 x) (- 1 x)))))";
    b "midpoint-naive" `Straight
      [ ("a", 1e8, 1e9, Linear); ("b", 1e8, 1e9, Linear) ]
      "(FPCore (a b) (/ (+ a b) 2))";
    b "variance-naive" `Straight
      [ ("x", 1e6, 1e7, Linear); ("y", 1e6, 1e7, Linear) ]
      "(FPCore (x y) (let ((m (/ (+ x y) 2))) (/ (+ (* (- x m) (- x m)) (* \
       (- y m) (- y m))) 2)))";
    b "sum3" `Straight
      [ ("x0", -10.0, 10.0, Linear); ("x1", -10.0, 10.0, Linear);
        ("x2", -10.0, 10.0, Linear) ]
      "(FPCore (x0 x1 x2) (let ((p0 (+ (- x0 x1) x2)) (p1 (+ (- x1 x2) x0)) \
       (p2 (+ (- x2 x0) x1))) (+ (+ p0 p1) p2)))";
    b "triangle-area" `Straight
      [ ("a", 9.0, 9.5, Linear); ("b", 4.71, 4.89, Linear);
        ("c", 4.71, 4.89, Linear) ]
      "(FPCore (a b c) (let ((s (/ (+ (+ a b) c) 2))) (sqrt (* (* (* s (- s \
       a)) (- s b)) (- s c)))))";
    b "poly-cancel" `Straight
      [ ("x", 0.999, 1.001, Linear) ]
      "(FPCore (x) (+ (- (* x x) (* 2 x)) 1))";
    b "cav10" `Straight
      [ ("x", 0.0, 10.0, Linear) ]
      "(FPCore (x) (if (>= (- (* x x) x) 0) (/ x 10) (* x x)))";
    b "cubic-discriminant" `Straight
      [ ("p", 0.1, 1.0, Linear); ("q", 1e-6, 1e-4, Log) ]
      "(FPCore (p q) (- (* q q) (* (* (* p p) p) 4)))";
    b "one-minus-sqrt" `Straight
      [ ("x", 1e-12, 1e-6, Log) ]
      "(FPCore (x) (- 1 (sqrt (- 1 x))))";
    b "sin-x-minus-x" `Straight
      [ ("x", 1e-6, 0.01, Log) ]
      "(FPCore (x) (- x (sin x)))";
    b "cos-sin-sum" `Straight
      [ ("x", 0.0, 6.28318, Linear) ]
      "(FPCore (x) (+ (* (sin x) (sin x)) (* (cos x) (cos x))))";
    b "sum8" `Straight
      [ ("x0", -100.0, 100.0, Linear); ("x1", -100.0, 100.0, Linear);
        ("x2", -100.0, 100.0, Linear); ("x3", -100.0, 100.0, Linear);
        ("x4", -100.0, 100.0, Linear); ("x5", -100.0, 100.0, Linear);
        ("x6", -100.0, 100.0, Linear); ("x7", -100.0, 100.0, Linear) ]
      "(FPCore (x0 x1 x2 x3 x4 x5 x6 x7) (+ (+ (+ (+ (+ (+ (+ x0 x1) x2) \
       x3) x4) x5) x6) x7))";
    b "azimuth" `Straight
      [ ("lat1", 0.0, 0.4, Linear); ("lat2", 0.5, 1.0, Linear);
        ("dlon", 0.0, 3.14159, Linear) ]
      "(FPCore (lat1 lat2 dlon) (atan2 (* (cos lat2) (sin dlon)) (- (* \
       (cos lat1) (sin lat2)) (* (* (sin lat1) (cos lat2)) (cos dlon)))))";
    b "sphere-coord" `Straight
      [ ("r", 0.0, 10.0, Linear); ("theta", -3.14159, 3.14159, Linear);
        ("phi", -1.5707, 1.5707, Linear) ]
      "(FPCore (r theta phi) (+ (* (* r (sin theta)) (cos phi)) (* r (cos \
       theta))))";
    b "cone-slant" `Straight
      [ ("h", 1e6, 1e8, Linear); ("r", 0.001, 1.0, Linear) ]
      "(FPCore (h r) (- (sqrt (+ (* h h) (* r r))) h))";
    b "tanh-naive" `Straight
      [ ("x", 1e-9, 1e-5, Log) ]
      "(FPCore (x) (/ (- (exp (* 2 x)) 1) (+ (exp (* 2 x)) 1)))";
    b "compound-interest" `Straight
      [ ("rate", 1e-8, 1e-5, Log) ]
      "(FPCore (rate) (- (pow (+ 1 rate) 365) 1))";
    (* unrolled 3-vector Gram-Schmidt in 2D: the kind of benchmark that
       produced the paper's largest (67-op) recovered expressions *)
    b "gram-schmidt-unrolled" `Straight
      [ ("ax", 1.0, 10.0, Linear); ("ay", 1.0, 10.0, Linear);
        ("bx", 1.0, 10.0, Linear); ("by", 1.0, 10.0, Linear);
        ("cx", 1.0, 10.0, Linear); ("cy", 1.0, 10.0, Linear) ]
      "(FPCore (ax ay bx by cx cy) (let* ((na (sqrt (+ (* ax ax) (* ay \
       ay)))) (qax (/ ax na)) (qay (/ ay na)) (rb (+ (* qax bx) (* qay \
       by))) (ubx (- bx (* rb qax))) (uby (- by (* rb qay))) (nb (sqrt (+ \
       (* ubx ubx) (* uby uby)))) (qbx (/ ubx nb)) (qby (/ uby nb)) (rc1 \
       (+ (* qax cx) (* qay cy))) (rc2 (+ (* qbx cx) (* qby cy))) (ucx (- \
       (- cx (* rc1 qax)) (* rc2 qbx))) (ucy (- (- cy (* rc1 qay)) (* rc2 \
       qby)))) (sqrt (+ (* ucx ucx) (* ucy ucy)))))";
    b "poly-horner-deep" `Straight
      [ ("x", 0.99, 1.01, Linear) ]
      "(FPCore (x) (+ (- (+ (- (+ (- (+ (- (+ (- (* (* (* (* (* (* (* (* \
       (* x x) x) x) x) x) x) x) x) x) (* 10 (* (* (* (* (* (* (* (* x x) \
       x) x) x) x) x) x) x))) (* 45 (* (* (* (* (* (* (* x x) x) x) x) x) \
       x) x))) (* 120 (* (* (* (* (* (* x x) x) x) x) x) x))) (* 210 (* (* \
       (* (* (* x x) x) x) x) x))) (* 252 (* (* (* (* x x) x) x) x))) (* \
       210 (* (* (* x x) x) x))) (* 120 (* (* x x) x))) (* 45 (* x x))) (* \
       10 x)) 1))";
    (* The canonical multi-regime benchmark: the quadratic root with [b]
       spanning zero. For b > 0 the subtraction -b + sqrt(b^2-4ac)
       cancels catastrophically and the citardauq form 2c/(-b - sqrt(D))
       is accurate; for b < 0 it is the other way around. No single
       rewrite fixes both halves — a branch at b ~ 0 does. *)
    b "quadratic-full" `Straight
      [ ("a", 0.001, 0.01, Linear); ("b", -1000.0, 1000.0, Linear);
        ("c", 0.001, 0.01, Linear) ]
      "(FPCore (a b c) (/ (+ (- b) (sqrt (- (* b b) (* (* 4 a) c)))) (* 2 a)))";
    (* the mirrored root: cancellation flips to b < 0 *)
    b "quadratic-full-m" `Straight
      [ ("a", 0.001, 0.01, Linear); ("b", -1000.0, 1000.0, Linear);
        ("c", 0.001, 0.01, Linear) ]
      "(FPCore (a b c) (/ (- (- b) (sqrt (- (* b b) (* (* 4 a) c)))) (* 2 a)))";
    (* thin-lens image distance -(2 far near)/(far - near): the
       denominator cancels as far -> near, the paper's root-cause shape *)
    b "thin-lens" `Straight
      [ ("far", 1.0, 100.0, Linear); ("near", 1.0, 100.0, Linear) ]
      "(FPCore (far near) (- (/ (* (* 2 far) near) (- far near))))";
  ]

(* ---------- looping benchmarks ---------- *)

let looping =
  [
    b "step-counter" `Loop []
      "(FPCore () (while (< t 1.0) ((t 0.0 (+ t 0.1)) (n 0.0 (+ n 1.0))) n))";
    b "harmonic-sum" `Loop []
      "(FPCore () (while (< i 1000.0) ((i 1.0 (+ i 1.0)) (s 0.0 (+ s (/ 1.0 \
       i)))) s))";
    b "logistic-map" `Loop
      [ ("x0", 0.1, 0.9, Linear) ]
      "(FPCore (x0) (while (< i 75.0) ((i 0.0 (+ i 1.0)) (x x0 (* (* 3.75 \
       x) (- 1 x)))) x))";
    b "euler-oscillator" `Loop
      [ ("x0", 0.5, 1.5, Linear) ]
      "(FPCore (x0) (while (< t 10.0) ((t 0.0 (+ t 0.01)) (x x0 (+ x (* \
       0.01 v))) (v 0.0 (- v (* 0.01 x)))) (+ (* x x) (* v v))))";
    b "pid-controller" `Loop
      [ ("setpoint", 0.5, 5.0, Linear) ]
      "(FPCore (setpoint) (while (< t 20.0) ((t 0.0 (+ t 0.2)) (m 0.0 (+ m \
       (* 0.2 (+ (* 0.6 (- setpoint m)) (+ (* 0.1 i) (* 0.05 (/ (- (- \
       setpoint m) e) 0.2))))))) (i 0.0 (+ i (* 0.2 (- setpoint m)))) (e \
       0.0 (- setpoint m))) m))";
    b "lead-lag" `Loop
      [ ("yd", 1.0, 10.0, Linear) ]
      "(FPCore (yd) (while (< t 20.0) ((t 0.0 (+ t 0.1)) (yc 0.0 (+ (* \
       0.499 yc) (* 0.05 xc))) (xc 0.0 (+ (* 0.98 xc) (* 0.02 (- yd yc))))) \
       yc))";
    b "newton-sqrt" `Loop
      [ ("a", 0.5, 100.0, Linear) ]
      "(FPCore (a) (while (> (fabs (- (* x x) a)) 0.000000000001) ((x (/ a \
       2) (* 0.5 (+ x (/ a x))))) x))";
    b "trapeze-integral" `Loop
      [ ("u", 1.11, 2.22, Linear) ]
      "(FPCore (u) (while (< x 5.0) ((x 0.25 (+ x 0.25)) (acc 0.0 (let ((fx \
       (/ 0.7 (- (* x x) (+ x u)))) (fx1 (/ 0.7 (- (* (+ x 0.25) (+ x \
       0.25)) (+ (+ x 0.25) u))))) (+ acc (* 0.125 (+ fx fx1)))))) acc))";
    b "arclength" `Loop []
      "(FPCore () (while (< i 100.0) ((i 1.0 (+ i 1.0)) (x 0.0 (+ x \
       0.0314159265358979)) (s 0.0 (+ s (* 0.0314159265358979 (sqrt (+ 1 \
       (* (* 2 (cos (* 2 (+ x 0.0314159265358979)))) (* 2 (cos (* 2 (+ x \
       0.0314159265358979))))))))))) s))";
    b "pendulum" `Loop
      [ ("theta0", 0.1, 1.0, Linear) ]
      "(FPCore (theta0) (while (< t 5.0) ((t 0.0 (+ t 0.01)) (theta theta0 \
       (+ theta (* 0.01 w))) (w 0.0 (- w (* 0.01 (* 9.80665 (sin \
       theta)))))) theta))";
    b "rump-polynomial-iter" `Loop
      [ ("x", 0.9, 1.1, Linear) ]
      "(FPCore (x) (while (< i 30.0) ((i 0.0 (+ i 1.0)) (y x (- (* y (+ 1 \
       (* 0.001 (- 1 y)))) 0.0000001))) y))";
    b "rk4-decay" `Loop
      [ ("y0", 0.5, 5.0, Linear) ]
      "(FPCore (y0) (while (< t 4.0) ((t 0.0 (+ t 0.1)) (y y0 (let* ((k1 \
       (* -1.2 y)) (k2 (* -1.2 (+ y (* 0.05 k1)))) (k3 (* -1.2 (+ y (* \
       0.05 k2)))) (k4 (* -1.2 (+ y (* 0.1 k3))))) (+ y (* \
       0.016666666666666666 (+ (+ k1 (* 2 k2)) (+ (* 2 k3) k4))))))) y))";
    b "geometric-series" `Loop
      [ ("r", 0.9, 0.99, Linear) ]
      "(FPCore (r) (while (> term 0.0000000001) ((term 1.0 (* term r)) (s \
       0.0 (+ s term))) s))";
  ]

let all = straight_line @ looping

(* ---------- job enumeration for batch drivers ---------- *)

(* A job is a benchmark plus everything that determines its analysis
   inputs: the iteration count and the sampling seed. Batch engines
   (fpgrind.fleet) consume these; the enumeration order is the canonical
   suite order, which batch runs must preserve in their output. *)
type job = { job_bench : bench; job_iterations : int; job_seed : int }

let enumerate ?(iterations = 8) ?(seed = 1) ?(names = []) ?group () :
    job list =
  let selected =
    match names with
    | [] -> all
    | names ->
        (* preserve the caller's order and fail fast on unknown names *)
        List.map
          (fun n ->
            match List.find_opt (fun b -> b.name = n) all with
            | Some b -> b
            | None -> invalid_arg ("Suite.enumerate: unknown benchmark " ^ n))
          names
  in
  let selected =
    match group with
    | None -> selected
    | Some g -> List.filter (fun b -> b.group = g) selected
  in
  List.map
    (fun b -> { job_bench = b; job_iterations = iterations; job_seed = seed })
    selected

let find name =
  match List.find_opt (fun b -> b.name = name) all with
  | Some b -> b
  | None -> invalid_arg ("Suite.find: unknown benchmark " ^ name)

let core_of (bench : bench) : Ast.core = Parse.parse_core bench.src

(* ---------- deterministic input sampling ---------- *)

(* xorshift64*: reproducible across runs, no dependence on Random *)
let next_rand (state : int64 ref) : float =
  let x = !state in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  state := x;
  let bits = Int64.shift_right_logical (Int64.mul x 0x2545F4914F6CDD1DL) 11 in
  Int64.to_float bits /. 9007199254740992.0 (* 2^53 *)

let sample_range state (lo, hi, scale) =
  let u = next_rand state in
  match scale with
  | Linear -> lo +. (u *. (hi -. lo))
  | Log ->
      (* log-uniform; requires 0 < lo < hi *)
      let llo = Float.log lo and lhi = Float.log hi in
      Float.exp (llo +. (u *. (lhi -. llo)))

(* flattened input tuples for [n] iterations of the benchmark harness *)
let inputs_for ?(seed = 42) (bench : bench) ~(n : int) : float array =
  let state = ref (Int64.of_int ((seed * 2654435761) + 1)) in
  (* warm up the generator *)
  for _ = 1 to 8 do
    ignore (next_rand state)
  done;
  let nvars = List.length bench.ranges in
  if nvars = 0 then [||]
  else
    Array.init (n * nvars) (fun i ->
        let var = i mod nvars in
        let _, lo, hi, scale = List.nth bench.ranges var in
        sample_range state (lo, hi, scale))

(* ---------- external-corpus ingestion ---------- *)

(* Arbitrary user corpora — directories of `.fpcore` files and
   Herbie-style JSON datafiles — become first-class suite benches. The
   contract is *structured failure*: a malformed core, an unparsable
   datafile entry, and a duplicate name each yield a [load_error]
   record the caller turns into a `failed` fleet outcome; nothing
   raises out of the loaders. *)

type load_error = { le_file : string; le_name : string; le_reason : string }
type loaded = { l_benches : bench list; l_failures : load_error list }

let no_benches failure = { l_benches = []; l_failures = [ failure ] }

let merge_loaded (ls : loaded list) : loaded =
  {
    l_benches = List.concat_map (fun l -> l.l_benches) ls;
    l_failures = List.concat_map (fun l -> l.l_failures) ls;
  }

let default_lo = -10.0
let default_hi = 10.0

(* Constant-fold a precondition operand: numbers, named constants, and
   closed arithmetic like (- 1) all reduce; anything containing a
   variable does not. *)
let const_value (e : Ast.expr) : float option =
  match Eval.eval_f [] e with v -> Some v | exception _ -> None

(* Extract per-variable sampling ranges from a `:pre` conjunction. The
   recognized grammar (DESIGN.md §14) is conjunctions of comparison
   chains over one variable and constants — (<= lo x), (<= x hi),
   (<= lo x hi), and their </>/>= duals. Anything else is ignored: a
   precondition we cannot read narrows nothing, it just leaves the
   default range in place. Ranges are log-scaled when strictly positive
   and at least three decades wide, matching the vendored suite's
   convention for wide positive domains. *)
let ranges_of_pre (args : string list) (pre : Ast.expr option) :
    (string * float * float * scale) list =
  let lo_tbl = Hashtbl.create 8 and hi_tbl = Hashtbl.create 8 in
  let tighten tbl better x v =
    match Hashtbl.find_opt tbl x with
    | Some v' when not (better v v') -> ()
    | _ -> Hashtbl.replace tbl x v
  in
  (* a op b, op in {<,<=,>,>=}: whichever side is a closed constant
     bounds the variable on the other side *)
  let bound op a b =
    match (a, b, op) with
    | _, Ast.Var x, ("<" | "<=") -> (
        match const_value a with
        | Some v -> tighten lo_tbl ( > ) x v (* keep the tightest: max lo *)
        | None -> ())
    | Ast.Var x, _, ("<" | "<=") -> (
        match const_value b with
        | Some v -> tighten hi_tbl ( < ) x v (* min hi *)
        | None -> ())
    | _, Ast.Var x, (">" | ">=") -> (
        match const_value a with
        | Some v -> tighten hi_tbl ( < ) x v
        | None -> ())
    | Ast.Var x, _, (">" | ">=") -> (
        match const_value b with
        | Some v -> tighten lo_tbl ( > ) x v
        | None -> ())
    | _ -> ()
  in
  let rec walk (e : Ast.expr) =
    match e with
    | Ast.AndE es -> List.iter walk es
    | Ast.Cmp (op, operands)
      when op = "<" || op = "<=" || op = ">" || op = ">=" ->
        let rec pairs = function
          | a :: (b :: _ as rest) ->
              bound op a b;
              pairs rest
          | _ -> ()
        in
        pairs operands
    | _ -> ()
  in
  Option.iter walk pre;
  List.map
    (fun x ->
      let lo = Option.value (Hashtbl.find_opt lo_tbl x) ~default:default_lo in
      let hi = Option.value (Hashtbl.find_opt hi_tbl x) ~default:default_hi in
      let lo, hi =
        if Float.is_finite lo && Float.is_finite hi && lo < hi then (lo, hi)
        else (default_lo, default_hi)
      in
      let scale = if lo > 0.0 && hi /. lo >= 1000.0 then Log else Linear in
      (x, lo, hi, scale))
    args

(* Bench names feed file paths, JSONL records, and URLs; keep them to a
   tame character set. *)
let sanitize_name (s : string) : string =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
      | _ -> '-')
    s

let bench_of_core ~(file : string) ~(index : int) (sx : Sexp.t) :
    (bench, load_error) result =
  let fallback_name =
    Printf.sprintf "%s#%d" (Filename.basename file) (index + 1)
  in
  match Parse.core_of_sexp sx with
  | core ->
      let base =
        sanitize_name (Filename.remove_extension (Filename.basename file))
      in
      let name =
        match core.Ast.name with
        | Some n when n <> "" -> sanitize_name n
        | _ ->
            if index = 0 then base
            else Printf.sprintf "%s-%d" base (index + 1)
      in
      let group = if Ast.has_loop core.Ast.body then `Loop else `Straight in
      Ok
        {
          name;
          group;
          src = Sexp.to_string sx;
          ranges = ranges_of_pre core.Ast.args core.Ast.pre;
        }
  | exception Parse.Error msg ->
      Error
        { le_file = file; le_name = fallback_name; le_reason = "parse error: " ^ msg }
  | exception Sexp.Parse_error msg ->
      Error
        { le_file = file; le_name = fallback_name; le_reason = "parse error: " ^ msg }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_fpcore_file (path : string) : loaded =
  let base = Filename.basename path in
  match read_file path with
  | exception e ->
      no_benches
        {
          le_file = path;
          le_name = base;
          le_reason = "read error: " ^ Printexc.to_string e;
        }
  | src -> (
      match Sexp.parse_many src with
      | exception Sexp.Parse_error msg ->
          no_benches
            { le_file = path; le_name = base; le_reason = "parse error: " ^ msg }
      | [] ->
          no_benches
            { le_file = path; le_name = base; le_reason = "no FPCore forms" }
      | sxs ->
          let benches, failures =
            List.partition_map
              (fun (i, sx) ->
                match bench_of_core ~file:path ~index:i sx with
                | Ok b -> Left b
                | Error e -> Right e)
              (List.mapi (fun i sx -> (i, sx)) sxs)
          in
          { l_benches = benches; l_failures = failures })

(* Herbie-style datafile: a JSON report whose tests array carries the
   FPCore input of each benchmark run (Herbie's datafile.rkt writes the
   source under "input"; some emitters use "core"). Both a bare array
   and {"tests": [...]} are accepted; each entry fails independently. *)
let load_datafile (path : string) : loaded =
  let base = Filename.basename path in
  match read_file path with
  | exception e ->
      no_benches
        {
          le_file = path;
          le_name = base;
          le_reason = "read error: " ^ Printexc.to_string e;
        }
  | src -> (
      match Json.of_string src with
      | exception Json.Parse_error msg ->
          no_benches
            {
              le_file = path;
              le_name = base;
              le_reason = "datafile parse error: " ^ msg;
            }
      | j -> (
          let tests =
            match j with
            | Json.Arr ts -> Some ts
            | Json.Obj _ -> (
                match Json.member "tests" j with
                | Some (Json.Arr ts) -> Some ts
                | _ -> None)
            | _ -> None
          in
          match tests with
          | None ->
              no_benches
                {
                  le_file = path;
                  le_name = base;
                  le_reason = "datafile has no tests array";
                }
          | Some ts ->
              let one i t =
                let entry_name =
                  match Json.member "name" t with
                  | Some (Json.Str n) when n <> "" -> Some (sanitize_name n)
                  | _ -> None
                in
                let fallback =
                  Option.value entry_name
                    ~default:(Printf.sprintf "%s#%d" base (i + 1))
                in
                let core_src =
                  match (Json.member "input" t, Json.member "core" t) with
                  | Some (Json.Str s), _ | _, Some (Json.Str s) -> Some s
                  | _ -> None
                in
                match core_src with
                | None ->
                    Either.Right
                      {
                        le_file = path;
                        le_name = fallback;
                        le_reason = "test entry has no input/core field";
                      }
                | Some s -> (
                    match bench_of_core ~file:path ~index:i (Sexp.parse s) with
                    | Ok b ->
                        let name = Option.value entry_name ~default:b.name in
                        Either.Left { b with name }
                    | Error e -> Either.Right { e with le_name = fallback }
                    | exception Sexp.Parse_error msg ->
                        Either.Right
                          {
                            le_file = path;
                            le_name = fallback;
                            le_reason = "parse error: " ^ msg;
                          })
              in
              let benches, failures =
                List.partition_map
                  (fun (i, t) -> one i t)
                  (List.mapi (fun i t -> (i, t)) ts)
              in
              { l_benches = benches; l_failures = failures }))

(* Duplicate names would collide in the JSONL store and the cache; the
   first occurrence (in deterministic load order) wins, later ones
   become structured failures. *)
let dedup_loaded (l : loaded) : loaded =
  let seen = Hashtbl.create 32 in
  let benches, dup_failures =
    List.fold_left
      (fun (bs, fs) b ->
        if Hashtbl.mem seen b.name then
          ( bs,
            {
              le_file = b.name;
              le_name = b.name;
              le_reason = "duplicate benchmark name";
            }
            :: fs )
        else begin
          Hashtbl.replace seen b.name true;
          (b :: bs, fs)
        end)
      ([], []) l.l_benches
  in
  {
    l_benches = List.rev benches;
    l_failures = l.l_failures @ List.rev dup_failures;
  }

(* Enumerate a directory of corpora: `.fpcore` files parse as FPCore
   form streams, `.json` files as Herbie datafiles; anything else is
   skipped. File order is sorted, so the loaded set is deterministic. *)
let load_dir (dir : string) : loaded =
  match Sys.readdir dir with
  | exception Sys_error msg ->
      no_benches
        { le_file = dir; le_name = Filename.basename dir; le_reason = msg }
  | entries ->
      let entries = List.sort compare (Array.to_list entries) in
      let per_file =
        List.filter_map
          (fun f ->
            let path = Filename.concat dir f in
            if Sys.is_directory path then None
            else if Filename.check_suffix f ".fpcore" then
              Some (load_fpcore_file path)
            else if Filename.check_suffix f ".json" then
              Some (load_datafile path)
            else None)
          entries
      in
      dedup_loaded (merge_loaded per_file)

(* Dispatch on what the path is: a directory of corpora, a datafile, or
   a single FPCore file. *)
let load_path (path : string) : loaded =
  if (try Sys.is_directory path with Sys_error _ -> false) then load_dir path
  else if Filename.check_suffix path ".json" then
    dedup_loaded (load_datafile path)
  else dedup_loaded (load_fpcore_file path)

(* Loaded benches become ordinary suite jobs, so fleet/serve/fuzz run
   external corpora through cache and store unchanged. *)
let jobs_of_loaded ?(iterations = 8) ?(seed = 1) (l : loaded) : job list =
  List.map
    (fun b -> { job_bench = b; job_iterations = iterations; job_seed = seed })
    l.l_benches
