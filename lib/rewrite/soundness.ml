(* The soundiness oracle over [Rewrite.Improve] — Herbie's
   `soundiness.rkt` discipline. The improver scores candidates on a
   *search* point context; an improvement that merely overfits those
   points is unsound advice. So every accepted rewrite is re-validated
   on a *fresh* point context, sampled from the same input ranges but
   with a seed derived disjointly from the search seed, and the oracle
   asserts [mean_error_bits] is non-increasing on the fresh points.

   The per-improvement report is the `error-table.rkt` pattern: for
   each expression (original and improved) we show *predicted* error —
   what the improver measured on its search context — next to *actual*
   error on the resampled context, so a violation is immediately
   legible as a predicted/actual divergence rather than a bare flag. *)

module Ast = Fpcore.Ast
module Suite = Fpcore.Suite

(* The resample context must be disjoint from the search context for
   every seed: mixing with an odd constant and flipping high bits keeps
   the two xorshift streams unrelated even when seeds collide across
   campaign slices. *)
let resample_seed (seed : int) : int =
  (seed * 0x9E3779B9) lxor 0x5DEECE66D lxor (seed lsr 3)

type row = {
  w_label : string;  (* "original" | "improved" *)
  w_predicted : float;  (* mean error bits on the search context *)
  w_actual : float;  (* mean error bits on the resample context *)
  w_valid : int;  (* in-domain resample points *)
  w_domain_errors : int;  (* resample points where evaluation raised *)
}

type report = {
  r_name : string;
  r_seed : int;
  r_points : int;  (* points per context *)
  r_original : string;  (* FPCore rendering *)
  r_improved : string;
  r_rows : row list;  (* original first, improved second *)
  r_regression : float;  (* actual_after - actual_before, bits *)
  r_sound : bool;
}

(* ---------- rendering ---------- *)

let rec render_expr (e : Ast.expr) : string =
  match e with
  | Ast.Num v ->
      if Float.is_integer v && Float.abs v < 1e15 then
        Printf.sprintf "%.0f" v
      else Printf.sprintf "%.17g" v
  | Ast.Var x -> x
  | Ast.Const c -> c
  | Ast.Op (f, args) ->
      Printf.sprintf "(%s %s)" f (String.concat " " (List.map render_expr args))
  | Ast.If (c, t, f) ->
      Printf.sprintf "(if %s %s %s)" (render_expr c) (render_expr t)
        (render_expr f)
  | Ast.Cmp (op, args) ->
      Printf.sprintf "(%s %s)" op (String.concat " " (List.map render_expr args))
  | Ast.AndE args ->
      Printf.sprintf "(and %s)" (String.concat " " (List.map render_expr args))
  | Ast.OrE args ->
      Printf.sprintf "(or %s)" (String.concat " " (List.map render_expr args))
  | Ast.NotE a -> Printf.sprintf "(not %s)" (render_expr a)
  | Ast.Let (binds, body) | Ast.LetStar (binds, body) ->
      Printf.sprintf "(let (%s) %s)"
        (String.concat " "
           (List.map
              (fun (x, e) -> Printf.sprintf "(%s %s)" x (render_expr e))
              binds))
        (render_expr body)
  | Ast.While (cond, binds, body) | Ast.WhileStar (cond, binds, body) ->
      Printf.sprintf "(while %s (%s) %s)" (render_expr cond)
        (String.concat " "
           (List.map
              (fun (x, i, u) ->
                Printf.sprintf "(%s %s %s)" x (render_expr i) (render_expr u))
              binds))
        (render_expr body)

(* ---------- point contexts ---------- *)

(* Sample [n] named-assignment points for a benchmark. This reuses the
   suite's xorshift64* stream ([Suite.inputs_for]) so a context is a
   pure function of (bench, seed, n) — the campaign checkpoint needs
   exactly that to replay byte-identically. *)
let samples_of_bench ?(seed = 42) ~(n : int) (bench : Suite.bench) :
    Improve.sample list =
  let vars = List.map (fun (v, _, _, _) -> v) bench.Suite.ranges in
  let nvars = List.length vars in
  if nvars = 0 then []
  else
    let flat = Suite.inputs_for ~seed bench ~n in
    List.init n (fun i ->
        List.mapi (fun j x -> (x, flat.((i * nvars) + j))) vars)

(* ---------- the oracle ---------- *)

let report_of ?(prec = 256) ~name ~seed ~points
    ~(resample : Improve.sample list) (res : Improve.result) : report =
  let actual_before, valid_b, derr_b =
    Improve.error_bits_stats ~prec res.Improve.original resample
  in
  let actual_after, valid_a, derr_a =
    Improve.error_bits_stats ~prec res.Improve.improved resample
  in
  let regression = actual_after -. actual_before in
  (* Non-increasing up to both contexts being out of domain: a pair of
     infinite means (no in-domain resample points for either side) says
     nothing and counts as sound. NaN cannot occur: means are finite,
     0.0, or infinity by construction. *)
  let sound =
    if actual_after = infinity && actual_before = infinity then true
    else actual_after <= actual_before
  in
  {
    r_name = name;
    r_seed = seed;
    r_points = points;
    r_original = render_expr res.Improve.original;
    r_improved = render_expr res.Improve.improved;
    r_rows =
      [
        {
          w_label = "original";
          w_predicted = res.Improve.error_before;
          w_actual = actual_before;
          w_valid = valid_b;
          w_domain_errors = derr_b;
        };
        {
          w_label = "improved";
          w_predicted = res.Improve.error_after;
          w_actual = actual_after;
          w_valid = valid_a;
          w_domain_errors = derr_a;
        };
      ];
    r_regression = (if sound then 0.0 else regression);
    r_sound = sound;
  }

(* Run the improver on a search context and validate the result on a
   disjoint resample context. [seed] seeds the search context; the
   resample context uses [resample_seed seed]. *)
let check_bench ?(beam = 8) ?(depth = 3) ?(prec = 256) ?(points = 24)
    ?(seed = 42) (bench : Suite.bench) : report =
  let core = Suite.core_of bench in
  let search = samples_of_bench ~seed ~n:points bench in
  let resample = samples_of_bench ~seed:(resample_seed seed) ~n:points bench in
  let res = Improve.improve ~beam ~depth ~prec core.Ast.body search in
  report_of ~prec ~name:bench.Suite.name ~seed ~points ~resample res

(* ---------- the error table ---------- *)

let fmt_bits f =
  if f = infinity then "inf"
  else if f = neg_infinity then "-inf"
  else Printf.sprintf "%.2f" f

(* error-table.rkt style: one row per expression, predicted next to
   actual, with the resample-context domain split. *)
let table (r : report) : string =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "soundiness %s (seed %d, %d+%d points): %s\n" r.r_name
    r.r_seed r.r_points r.r_points
    (if r.r_sound then "sound"
     else Printf.sprintf "UNSOUND (+%.2f bits on resample)" r.r_regression);
  Printf.bprintf buf "  %-10s %14s %14s %8s %8s\n" "expr" "predicted" "actual"
    "valid" "dom-err";
  List.iter
    (fun w ->
      Printf.bprintf buf "  %-10s %14s %14s %8d %8d\n" w.w_label
        (fmt_bits w.w_predicted) (fmt_bits w.w_actual) w.w_valid
        w.w_domain_errors)
    r.r_rows;
  Printf.bprintf buf "  original: %s\n" r.r_original;
  Printf.bprintf buf "  improved: %s" r.r_improved;
  Buffer.contents buf
