(* The rewrite rule database: accuracy-improving transformations and
   algebraic simplifications, in the style of Herbie's rule set. All rules
   are real-arithmetic identities; whether a rewrite *improves* floating
   point accuracy is decided empirically by [Improve]'s error evaluation,
   never assumed. *)

type rule = { name : string; lhs : Pattern.pat; rhs : Pattern.pat }

let r name lhs rhs =
  { name; lhs = Pattern.of_string lhs; rhs = Pattern.of_string rhs }

let accuracy_rules =
  [
    (* cancellation removers *)
    r "sqrt-diff" "(- (sqrt ?a) (sqrt ?b))"
      "(/ (- ?a ?b) (+ (sqrt ?a) (sqrt ?b)))";
    r "sqrt-diff-flip" "(- ?x (sqrt ?b))"
      "(/ (- (* ?x ?x) ?b) (+ ?x (sqrt ?b)))";
    r "sqrt-diff-flip2" "(- (sqrt ?a) ?x)"
      "(/ (- ?a (* ?x ?x)) (+ (sqrt ?a) ?x))";
    r "inv-diff" "(- (/ 1 ?a) (/ 1 ?b))" "(/ (- ?b ?a) (* ?a ?b))";
    r "log-diff" "(- (log ?a) (log ?b))" "(log (/ ?a ?b))";
    r "expm1-intro" "(- (exp ?x) 1)" "(expm1 ?x)";
    r "log1p-intro" "(log (+ 1 ?x))" "(log1p ?x)";
    r "log1p-intro2" "(log (+ ?x 1))" "(log1p ?x)";
    r "cos-to-sin" "(- 1 (cos ?x))"
      "(* 2 (* (sin (/ ?x 2)) (sin (/ ?x 2))))";
    r "diff-of-squares" "(- (* ?a ?a) (* ?b ?b))" "(* (- ?a ?b) (+ ?a ?b))";
    (* x+ * x- = c/a turns the cancelling quadratic root into a division *)
    r "quadratic-flip"
      "(/ (+ (- ?b) (sqrt (- (* ?b ?b) (* (* 4 ?a) ?c)))) (* 2 ?a))"
      "(/ (* 2 ?c) (- (- ?b) (sqrt (- (* ?b ?b) (* (* 4 ?a) ?c)))))";
    (* the mirrored root: x- cancels when b < 0, and flips the same way *)
    r "quadratic-flip-m"
      "(/ (- (- ?b) (sqrt (- (* ?b ?b) (* (* 4 ?a) ?c)))) (* 2 ?a))"
      "(/ (* 2 ?c) (+ (- ?b) (sqrt (- (* ?b ?b) (* (* 4 ?a) ?c)))))";
    (* fused-multiply-add introduction *)
    r "fma-intro" "(+ (* ?a ?b) ?c)" "(fma ?a ?b ?c)";
    r "fms-intro" "(- (* ?a ?b) ?c)" "(fma ?a ?b (- ?c))";
    (* trigonometric differences: product forms avoid the cancellation *)
    r "sin-diff" "(- (sin ?a) (sin ?b))"
      "(* 2 (* (cos (/ (+ ?a ?b) 2)) (sin (/ (- ?a ?b) 2))))";
    r "cos-diff" "(- (cos ?a) (cos ?b))"
      "(* -2 (* (sin (/ (+ ?a ?b) 2)) (sin (/ (- ?a ?b) 2))))";
    r "tan-half" "(/ (- 1 (cos ?x)) (sin ?x))" "(tan (/ ?x 2))";
    r "atan-diff" "(- (atan ?a) (atan ?b))"
      "(atan (/ (- ?a ?b) (+ 1 (* ?a ?b))))";
    r "hypot-intro" "(sqrt (+ (* ?a ?a) (* ?b ?b)))" "(hypot ?a ?b)";
    r "exp-sum-to-cosh" "(+ (exp ?x) (exp (- ?x)))" "(* 2 (cosh ?x))";
    r "log-div" "(log (/ ?a ?b))" "(- (log ?a) (log ?b))";
    r "log-div-rev" "(- (log ?a) (log ?b))" "(log (/ ?a ?b))";
  ]

let simplify_rules =
  [
    r "add-sub-cancel" "(- (+ ?a ?b) ?a)" "?b";
    r "add-sub-cancel2" "(- (+ ?a ?b) ?b)" "?a";
    r "sub-add-cancel" "(+ (- ?a ?b) ?b)" "?a";
    r "sub-self" "(- ?a ?a)" "0";
    r "div-self" "(/ ?a ?a)" "1";
    r "mul-one" "(* ?a 1)" "?a";
    r "one-mul" "(* 1 ?a)" "?a";
    r "add-zero" "(+ ?a 0)" "?a";
    r "zero-add" "(+ 0 ?a)" "?a";
    r "sub-zero" "(- ?a 0)" "?a";
    r "div-one" "(/ ?a 1)" "?a";
    r "sqrt-square" "(sqrt (* ?a ?a))" "(fabs ?a)";
    r "neg-neg" "(- (- ?a))" "?a";
    r "sub-neg" "(- ?a (- ?b))" "(+ ?a ?b)";
    r "mul-comm-const" "(* ?a 2)" "(* 2 ?a)";
    r "distribute-out" "(+ (* ?a ?b) (* ?a ?c))" "(* ?a (+ ?b ?c))";
  ]

let all = accuracy_rules @ simplify_rules
