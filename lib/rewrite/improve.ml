(* The accuracy improver: a beam search over rewrite rules, scoring each
   candidate by measured bits of error on sample inputs (float evaluation
   against the high-precision real evaluation). This is the reproduction's
   stand-in for Herbie (Panchekha et al. 2015), used to close the loop on
   Herbgrind's reports: the report's FPCore expression goes in, a
   more-accurate equivalent comes out (paper section 3.1). *)

module Ast = Fpcore.Ast

type sample = (string * float) list
(* one assignment of input variables *)

(* Mean measured error over the samples, with the domain errors counted
   separately: a sample where evaluation raises (sqrt of a negative, a
   log of zero under some candidate rewrite) says nothing about rounding
   error, so it must not enter the mean — scoring it as a flat 64 bits
   used to let one out-of-domain sample poison an otherwise-accurate
   candidate. A candidate with no in-domain samples at all scores
   [infinity] (it computes nothing, so it must never win the beam). *)
let error_bits_stats ?(prec = 256) (e : Ast.expr) (samples : sample list) :
    float * int * int =
  let total, valid, domain_errors =
    List.fold_left
      (fun (total, valid, domain_errors) env ->
        match
          let f = Fpcore.Eval.eval_f env e in
          let renv =
            List.map (fun (x, v) -> (x, Bignum.Bigfloat.of_float v)) env
          in
          let r = Fpcore.Eval.eval_r ~prec renv e in
          (f, r)
        with
        | f, r ->
            let err = Ieee.bits_of_error f (Bignum.Bigfloat.to_float r) in
            (total +. err, valid + 1, domain_errors)
        | exception _ -> (total, valid, domain_errors + 1))
      (0.0, 0, 0) samples
  in
  let mean =
    if valid > 0 then total /. float_of_int valid
    else if domain_errors > 0 then infinity
    else 0.0
  in
  (mean, valid, domain_errors)

let mean_error_bits ?prec (e : Ast.expr) (samples : sample list) : float =
  let mean, _, _ = error_bits_stats ?prec e samples in
  mean

(* Candidate score over the FULL point context. The bare mean silently
   drops every point where a candidate leaves the domain, so a rewrite
   that only survives on a handful of points used to be scored on that
   handful alone — single-representative-point scoring in the extreme,
   and the root of the depth-2 overfits the soundiness oracle found.
   Points the *original* already loses say nothing about the rewrite and
   stay excluded; a domain exit the candidate *introduces* counts as a
   worst-case 64 bits, so shrinking the domain can never look like an
   accuracy win. *)
let score_on_context ?(prec = 256) ~(baseline_domain_errors : int)
    (e : Ast.expr) (samples : sample list) : float =
  let mean, valid, domain_errors = error_bits_stats ~prec e samples in
  let extra = max 0 (domain_errors - baseline_domain_errors) in
  if valid = 0 || extra = 0 then mean
  else
    ((mean *. float_of_int valid) +. (64.0 *. float_of_int extra))
    /. float_of_int (valid + extra)

(* fold operations whose arguments are all literal constants *)
let rec constant_fold (e : Ast.expr) : Ast.expr =
  match e with
  | Ast.Op (f, args) -> begin
      let args = List.map constant_fold args in
      let nums =
        List.filter_map (function Ast.Num v -> Some v | _ -> None) args
      in
      if List.length nums = List.length args && args <> [] then begin
        match Fpcore.Eval.apply_f f nums with
        | v when Float.is_finite v -> Ast.Num v
        | _ | (exception _) -> Ast.Op (f, args)
      end
      else Ast.Op (f, args)
    end
  | Ast.Num _ | Ast.Var _ | Ast.Const _ -> e
  | _ -> e

(* all single-step rewrites of [e] (at any position, any rule) *)
let rewrites (rules : Rules.rule list) (e : Ast.expr) : Ast.expr list =
  let at_root e =
    List.filter_map
      (fun (r : Rules.rule) ->
        match Pattern.matches r.Rules.lhs e [] with
        | Some env -> begin
            match Pattern.instantiate r.Rules.rhs env with
            | e' -> Some e'
            | exception Invalid_argument _ -> None
          end
        | None -> None)
      rules
  in
  let rec go (e : Ast.expr) : Ast.expr list =
    let here = at_root e in
    let deeper =
      match e with
      | Ast.Op (f, args) ->
          List.concat
            (List.mapi
               (fun i _ ->
                 let arg = List.nth args i in
                 List.map
                   (fun arg' ->
                     Ast.Op (f, List.mapi (fun j a -> if j = i then arg' else a) args))
                   (go arg))
               args)
      | Ast.Num _ | Ast.Var _ | Ast.Const _ -> []
      | Ast.If _ | Ast.Let _ | Ast.LetStar _ | Ast.While _ | Ast.WhileStar _
      | Ast.Cmp _ | Ast.AndE _ | Ast.OrE _ | Ast.NotE _ ->
          []
    in
    here @ deeper
  in
  go e

type result = {
  original : Ast.expr;
  improved : Ast.expr;
  error_before : float;
  error_after : float;
  steps : string list;  (* placeholder: names not tracked through beam *)
}

let rec expr_size (e : Ast.expr) : int =
  match e with
  | Ast.Num _ | Ast.Var _ | Ast.Const _ -> 1
  | Ast.Op (_, args) -> 1 + List.fold_left (fun a e -> a + expr_size e) 0 args
  | _ -> 1000

(* The beam search, returning the global top-[keep] scored candidates
   (best first, the original always in the pool). [improve] takes the
   head; the regime search branches over the whole set, because the
   best expression *per input region* is rarely the best overall. *)
let improve_candidates ?(beam = 8) ?(depth = 4) ?(prec = 256) ?(keep = 6)
    (e : Ast.expr) (samples : sample list) : (float * Ast.expr) list =
  let _, _, base_derr = error_bits_stats ~prec e samples in
  let score e' =
    score_on_context ~prec ~baseline_domain_errors:base_derr e' samples
  in
  let e0_err = mean_error_bits ~prec e samples in
  let seen = Hashtbl.create 64 in
  let key e = Marshal.to_string e [] in
  Hashtbl.replace seen (key e) ();
  let better (a, ea) (b, eb) =
    match compare a b with
    | 0 -> compare (expr_size ea) (expr_size eb)
    | c -> c
  in
  let top = ref [ (e0_err, e) ] in
  let insert c =
    top := List.filteri (fun i _ -> i < keep) (List.sort better (c :: !top))
  in
  let frontier = ref [ (e0_err, e) ] in
  for _ = 1 to depth do
    let candidates =
      List.concat_map
        (fun (_, e) ->
          List.filter_map
            (fun e' ->
              let k = key e' in
              if Hashtbl.mem seen k then None
              else begin
                Hashtbl.replace seen k ();
                Some (score e', e')
              end)
            (List.map constant_fold (rewrites Rules.all e)))
        !frontier
    in
    List.iter insert candidates;
    frontier := List.filteri (fun i _ -> i < beam) (List.sort better candidates)
  done;
  !top

let improve ?(beam = 8) ?(depth = 4) ?(prec = 256) (e : Ast.expr)
    (samples : sample list) : result =
  let e0_err = mean_error_bits ~prec e samples in
  match improve_candidates ~beam ~depth ~prec ~keep:1 e samples with
  | (err_after, improved) :: _ ->
      {
        original = e;
        improved;
        error_before = e0_err;
        error_after = err_after;
        steps = [];
      }
  | [] -> assert false

(* ---------- bridging from the analysis's symbolic expressions ---------- *)

let var_name i =
  if i < Array.length Core.Antiunify.var_names then
    Core.Antiunify.var_names.(i)
  else Printf.sprintf "v%d" i

let rec of_sym (s : Core.Antiunify.sym) : Ast.expr =
  match s with
  | Core.Antiunify.Svar i -> Ast.Var (var_name i)
  | Core.Antiunify.Sconst c -> Ast.Num c
  | Core.Antiunify.Sop ("neg", [| a |]) -> Ast.Op ("-", [ of_sym a ])
  | Core.Antiunify.Sop (f, args) ->
      Ast.Op (f, Array.to_list (Array.map of_sym args))

(* Improve an expression recovered by the analysis. The symbolic
   expression's variables are renamed canonically first (matching the
   FPCore rendering the user sees in reports). *)
let improve_sym ?beam ?depth ?prec (s : Core.Antiunify.sym)
    (samples : float array list) : result =
  let s', _ = Core.Antiunify.rename s in
  let e = of_sym s' in
  let vars = List.sort_uniq compare (Ast.free_vars_expr [] e) in
  let samples =
    List.map
      (fun tuple -> List.mapi (fun i x -> (x, tuple.(i))) vars)
      samples
  in
  improve ?beam ?depth ?prec e samples
