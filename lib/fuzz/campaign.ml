(* Campaign driver: seeded batches of generate -> oracle, optionally in
   parallel over the Fleet pool, plus corpus reproducer files.

   Determinism contract (mirrors Fleet's): program [i] of a campaign is
   generated from [Rng.make_indexed ~seed i], an RNG stream keyed only by
   (seed, i); which oracle checks run for [i] depends only on [i]; and
   results are keyed by index. So the transcript — sources, digests and
   verdicts — is a pure function of (seed, iters, config), whatever
   [--jobs] is. Work is sharded into fixed-size chunks; each chunk is one
   Fleet job whose report serializes its entries one per line, parsed
   back and reassembled in index order. *)

type status =
  | Passed
  | Skipped of string (* step budget exhausted: harness limit, not a bug *)
  | Divergent of Oracle.divergence
  | Error of string

type entry = { e_index : int; e_digest : string; e_status : status }

type transcript = { t_seed : int; t_iters : int; t_entries : entry list }

let chunk_size = 25

(* every 8th program gets the expensive legs (ablations, vectorize,
   mathlib) on top of the default reference/machine/analysis/kernel *)
let checks_for ~(base : Oracle.checks) (i : int) : Oracle.checks =
  if i mod 8 = 0 then
    {
      base with
      Oracle.c_ablations = true;
      c_vectorize = true;
      c_mathlib = true;
    }
  else base

let generate ?config ~seed (i : int) : Minic.Ast.program * float array =
  Gen.program ?config (Rng.make_indexed ~seed i)

let digest_of (ast : Minic.Ast.program) : string =
  Digest.to_hex (Digest.string (Printer.program ast))

let run_one ?config ?(checks = Oracle.default_checks) ?tick ~seed (i : int) :
    entry =
  let ast, inputs = generate ?config ~seed i in
  let digest = digest_of ast in
  let status =
    match Oracle.run ~checks:(checks_for ~base:checks i) ?tick ~inputs ast with
    | Oracle.Pass -> Passed
    | Oracle.Skip why -> Skipped why
    | Oracle.Fail d -> Divergent d
    | exception exn -> Error (Printexc.to_string exn)
  in
  { e_index = i; e_digest = digest; e_status = status }

(* ---------- chunk (de)serialization through Fleet payloads ---------- *)

let sanitize (s : string) : string =
  String.map (fun c -> if c = '\n' || c = '\r' then ' ' else c) s

let entry_to_line (e : entry) : string =
  match e.e_status with
  | Passed -> Printf.sprintf "%d %s ok" e.e_index e.e_digest
  | Skipped why ->
      Printf.sprintf "%d %s skip %s" e.e_index e.e_digest (sanitize why)
  | Divergent d ->
      Printf.sprintf "%d %s div %s %s" e.e_index e.e_digest
        (sanitize d.Oracle.d_oracle)
        (sanitize d.Oracle.d_detail)
  | Error msg -> Printf.sprintf "%d %s err %s" e.e_index e.e_digest (sanitize msg)

let entry_of_line (line : string) : entry =
  let field_end s from =
    match String.index_from_opt s from ' ' with
    | Some i -> i
    | None -> String.length s
  in
  let i1 = field_end line 0 in
  let i2 = field_end line (i1 + 1) in
  let i3 = field_end line (i2 + 1) in
  let idx = int_of_string (String.sub line 0 i1) in
  let digest = String.sub line (i1 + 1) (i2 - i1 - 1) in
  let tag = String.sub line (i2 + 1) (i3 - i2 - 1) in
  let rest =
    if i3 >= String.length line then ""
    else String.sub line (i3 + 1) (String.length line - i3 - 1)
  in
  let status =
    match tag with
    | "ok" -> Passed
    | "skip" -> Skipped rest
    | "err" -> Error rest
    | "div" ->
        let j = field_end rest 0 in
        let oracle = String.sub rest 0 j in
        let detail =
          if j >= String.length rest then ""
          else String.sub rest (j + 1) (String.length rest - j - 1)
        in
        Divergent { Oracle.d_oracle = oracle; d_detail = detail }
    | t -> Error ("bad transcript tag " ^ t)
  in
  { e_index = idx; e_digest = digest; e_status = status }

(* ---------- the campaign ---------- *)

let run ?config ?(checks = Oracle.default_checks) ?(jobs = 1) ?timeout
    ?on_progress ~seed ~iters () : transcript =
  let n_chunks = (iters + chunk_size - 1) / chunk_size in
  let specs =
    List.init n_chunks (fun c ->
        let lo = c * chunk_size in
        let hi = min iters (lo + chunk_size) in
        {
          Fleet.sp_name = Printf.sprintf "fuzz[%d..%d)" lo hi;
          sp_group = "fuzz";
          sp_key = "";
          (* no caching: generation is cheaper than hashing a campaign key *)
          sp_engine = "full";
          sp_work =
            (fun ~tick ->
              let entries =
                List.init (hi - lo) (fun k ->
                    tick ();
                    run_one ?config ~checks ~tick ~seed (lo + k))
              in
              let divergences =
                List.length
                  (List.filter
                     (fun e ->
                       match e.e_status with
                       | Passed | Skipped _ -> false
                       | Divergent _ | Error _ -> true)
                     entries)
              in
              {
                Fleet.p_metrics =
                  {
                    Fleet.m_blocks = hi - lo;
                    m_stmts = 0;
                    m_stmts_executed = 0;
                    m_fp_ops = 0;
                    m_trace_nodes = 0;
                    m_traces_materialized = 0;
                    m_spots = 0;
                    m_causes = divergences;
                    m_compensations = 0;
                    m_err_max = 0.0;
                    m_escalations = 0;
                    m_slice_stmts = 0;
                  };
                p_summary =
                  Printf.sprintf "%d programs, %d divergent" (hi - lo)
                    divergences;
                p_report =
                  String.concat "\n" (List.map entry_to_line entries);
                p_regime = None;
              });
        })
  in
  let outcomes = Fleet.run ~jobs ?timeout ?on_progress specs in
  let entries =
    List.concat
      (List.mapi
         (fun c (o : Fleet.outcome) ->
           let lo = c * chunk_size in
           let hi = min iters (lo + chunk_size) in
           match (o.Fleet.o_status, o.Fleet.o_payload) with
           | (Fleet.Done | Fleet.Cached), Some p ->
               String.split_on_char '\n' p.Fleet.p_report
               |> List.filter (fun l -> l <> "")
               |> List.map entry_of_line
           | Fleet.Timed_out, _ ->
               List.init (hi - lo) (fun k ->
                   { e_index = lo + k; e_digest = "-"; e_status = Error "timed out" })
           | Fleet.Failed msg, _ ->
               List.init (hi - lo) (fun k ->
                   { e_index = lo + k; e_digest = "-"; e_status = Error msg })
           | _, None ->
               List.init (hi - lo) (fun k ->
                   { e_index = lo + k; e_digest = "-"; e_status = Error "no payload" }))
         outcomes)
  in
  let entries = List.sort (fun a b -> compare a.e_index b.e_index) entries in
  { t_seed = seed; t_iters = iters; t_entries = entries }

let divergent (t : transcript) : entry list =
  List.filter
    (fun e -> match e.e_status with Divergent _ -> true | _ -> false)
    t.t_entries

let skipped (t : transcript) : entry list =
  List.filter
    (fun e -> match e.e_status with Skipped _ -> true | _ -> false)
    t.t_entries

(* divergences and harness errors; skips are benign *)
let failed (t : transcript) : entry list =
  List.filter
    (fun e ->
      match e.e_status with
      | Passed | Skipped _ -> false
      | Divergent _ | Error _ -> true)
    t.t_entries

(* ---------- shrinking a divergent entry ---------- *)

(* Re-derive program [i], confirm the divergence, and shrink while the
   same oracle keeps failing. Returns the shrunken AST, its inputs and
   the (post-shrink) divergence. *)
let shrink_entry ?config ?(checks = Oracle.default_checks) ?max_attempts ~seed
    (i : int) : (Minic.Ast.program * float array * Oracle.divergence) option =
  let ast, inputs = generate ?config ~seed i in
  let checks = checks_for ~base:checks i in
  match Oracle.run ~checks ~inputs ast with
  | Oracle.Pass | Oracle.Skip _ | (exception _) -> None
  | Oracle.Fail d0 ->
      let still_fails c =
        match Oracle.run ~checks ~inputs c with
        | Oracle.Fail d -> d.Oracle.d_oracle = d0.Oracle.d_oracle
        | Oracle.Pass | Oracle.Skip _ -> false
        | exception _ -> false
      in
      let small, _stats = Shrink.shrink ?max_attempts ~still_fails ast in
      let d =
        match Oracle.run ~checks ~inputs small with
        | Oracle.Fail d -> d
        | Oracle.Pass | Oracle.Skip _ | (exception _) -> d0
      in
      Some (small, inputs, d)

(* ---------- corpus files ---------- *)

(* A reproducer is a self-contained MiniC file: the inputs ride along in
   a header comment as hex double bits, so replay is bit-exact. *)
let repro_contents ~seed ~index ~(d : Oracle.divergence)
    ~(inputs : float array) (src : string) : string =
  let b = Buffer.create 512 in
  Buffer.add_string b "// fpgrind fuzz reproducer\n";
  Buffer.add_string b
    (Printf.sprintf "// seed: %d index: %d oracle: %s\n" seed index
       (sanitize d.Oracle.d_oracle));
  Buffer.add_string b
    (Printf.sprintf "// detail: %s\n" (sanitize d.Oracle.d_detail));
  Buffer.add_string b
    ("// inputs:"
    ^ String.concat ""
        (Array.to_list
           (Array.map
              (fun f -> Printf.sprintf " %016Lx" (Int64.bits_of_float f))
              inputs))
    ^ "\n");
  Buffer.add_string b src;
  Buffer.contents b

let save_repro ~dir ~seed ~index ~(d : Oracle.divergence)
    ~(inputs : float array) (src : string) : string =
  let path =
    Filename.concat dir
      (Printf.sprintf "seed%d_i%d_%s.mc" seed index
         (String.map
            (fun c ->
              if (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '-'
              then c
              else '_')
            d.Oracle.d_oracle))
  in
  let oc = open_out path in
  output_string oc (repro_contents ~seed ~index ~d ~inputs src);
  close_out oc;
  path

(* parse the "// inputs: <hex> <hex> ..." header of a reproducer *)
let inputs_of_source (src : string) : float array =
  let lines = String.split_on_char '\n' src in
  let prefix = "// inputs:" in
  let rec find = function
    | [] -> [||]
    | l :: rest ->
        if String.length l >= String.length prefix
           && String.sub l 0 (String.length prefix) = prefix
        then
          String.sub l (String.length prefix)
            (String.length l - String.length prefix)
          |> String.split_on_char ' '
          |> List.filter (fun s -> s <> "")
          |> List.map (fun s -> Int64.float_of_bits (Int64.of_string ("0x" ^ s)))
          |> Array.of_list
        else find rest
  in
  find lines

let read_file (path : string) : string =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let replay_file ?(checks = Oracle.default_checks) ?tick (path : string) :
    Oracle.result =
  let src = read_file path in
  let inputs = inputs_of_source src in
  Oracle.run_source ~checks ?tick ~inputs src

(* replay every .mc file in [dir], sorted for a stable order *)
let replay_dir ?checks ?tick (dir : string) : (string * Oracle.result) list =
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".mc")
    |> List.sort compare
  in
  List.map
    (fun f ->
      let path = Filename.concat dir f in
      (f, replay_file ?checks ?tick path))
    files
