(* Render a [Minic.Ast] program back to MiniC source text.

   The generator and shrinker work on the AST; the pipeline under test
   consumes source, so every generated or shrunken program goes through
   [Minic.parse] again — the printer parenthesizes aggressively so the
   round trip is semantics-preserving by construction. Float literals are
   printed from their recorded spelling ([Float_lit] keeps it), which the
   generator produces with %.17g so the value survives the round trip
   bit-for-bit. *)

open Minic.Ast

let buf_add = Buffer.add_string

let rec pp_expr b (e : expr) =
  match e.desc with
  | Int_lit i ->
      if Int64.compare i 0L >= 0 then buf_add b (Int64.to_string i)
      else begin
        (* negative literal: print as negation of the absolute value so the
           lexer (which has no signed literals) reads it back *)
        buf_add b "(-";
        buf_add b (Int64.to_string (Int64.neg i));
        buf_add b ")"
      end
  | Float_lit (_, s) ->
      if String.length s > 0 && s.[0] = '-' then begin
        (* the lexer has no signed literals: print exactly as the parser
           will reconstruct it (negation of the absolute value), so
           print -> parse -> print is a fixpoint *)
        buf_add b "(-(";
        buf_add b (String.sub s 1 (String.length s - 1));
        buf_add b "))"
      end
      else begin
        buf_add b "(";
        buf_add b s;
        buf_add b ")"
      end
  | Var name -> buf_add b name
  | Index (a, i) ->
      pp_expr b a;
      buf_add b "[";
      pp_expr b i;
      buf_add b "]"
  | Call (name, args) ->
      buf_add b name;
      buf_add b "(";
      List.iteri
        (fun k a ->
          if k > 0 then buf_add b ", ";
          pp_expr b a)
        args;
      buf_add b ")"
  | Unary (Neg, a) ->
      buf_add b "(-";
      pp_expr b a;
      buf_add b ")"
  | Unary (Not, a) ->
      buf_add b "(!";
      pp_expr b a;
      buf_add b ")"
  | Binary (op, x, y) ->
      let sym =
        match op with
        | Add -> "+"
        | Sub -> "-"
        | Mul -> "*"
        | Div -> "/"
        | Mod -> "%"
        | Lt -> "<"
        | Le -> "<="
        | Gt -> ">"
        | Ge -> ">="
        | Eq -> "=="
        | Ne -> "!="
        | And -> "&&"
        | Or -> "||"
      in
      buf_add b "(";
      pp_expr b x;
      buf_add b " ";
      buf_add b sym;
      buf_add b " ";
      pp_expr b y;
      buf_add b ")"
  | Cast (t, a) ->
      buf_add b "((";
      buf_add b (ty_to_string t);
      buf_add b ") ";
      pp_expr b a;
      buf_add b ")"

let rec pp_stmt b indent (s : stmt) =
  let pad = String.make indent ' ' in
  match s.sdesc with
  | Decl (Tarray (base, n), name, None) ->
      buf_add b
        (Printf.sprintf "%s%s %s[%d];\n" pad (ty_to_string base) name n)
  | Decl (t, name, None) ->
      buf_add b (Printf.sprintf "%s%s %s;\n" pad (ty_to_string t) name)
  | Decl (t, name, Some e) ->
      buf_add b (Printf.sprintf "%s%s %s = " pad (ty_to_string t) name);
      pp_expr b e;
      buf_add b ";\n"
  | Assign (name, e) ->
      buf_add b (Printf.sprintf "%s%s = " pad name);
      pp_expr b e;
      buf_add b ";\n"
  | Store (name, idx, e) ->
      buf_add b (Printf.sprintf "%s%s[" pad name);
      pp_expr b idx;
      buf_add b "] = ";
      pp_expr b e;
      buf_add b ";\n"
  | If (c, then_, else_) ->
      buf_add b (pad ^ "if (");
      pp_expr b c;
      buf_add b ") {\n";
      List.iter (pp_stmt b (indent + 2)) then_;
      if else_ = [] then buf_add b (pad ^ "}\n")
      else begin
        buf_add b (pad ^ "} else {\n");
        List.iter (pp_stmt b (indent + 2)) else_;
        buf_add b (pad ^ "}\n")
      end
  | While (c, body) ->
      buf_add b (pad ^ "while (");
      pp_expr b c;
      buf_add b ") {\n";
      List.iter (pp_stmt b (indent + 2)) body;
      buf_add b (pad ^ "}\n")
  | For (init, cond, step, body) ->
      buf_add b (pad ^ "for (");
      (match init with Some st -> pp_simple b st | None -> ());
      buf_add b "; ";
      (match cond with Some c -> pp_expr b c | None -> ());
      buf_add b "; ";
      (match step with Some st -> pp_simple b st | None -> ());
      buf_add b ") {\n";
      List.iter (pp_stmt b (indent + 2)) body;
      buf_add b (pad ^ "}\n")
  | Return None -> buf_add b (pad ^ "return;\n")
  | Return (Some e) ->
      buf_add b (pad ^ "return ");
      pp_expr b e;
      buf_add b ";\n"
  | Expr e ->
      buf_add b pad;
      pp_expr b e;
      buf_add b ";\n"
  | Print e ->
      buf_add b (pad ^ "print(");
      pp_expr b e;
      buf_add b ");\n"
  | Mark e ->
      buf_add b (pad ^ "__mark(");
      pp_expr b e;
      buf_add b ");\n"
  | Break -> buf_add b (pad ^ "break;\n")
  | Continue -> buf_add b (pad ^ "continue;\n")

(* a statement in for-header position (no semicolon, no newline) *)
and pp_simple b (s : stmt) =
  match s.sdesc with
  | Decl (t, name, Some e) ->
      buf_add b (Printf.sprintf "%s %s = " (ty_to_string t) name);
      pp_expr b e
  | Decl (t, name, None) ->
      buf_add b (Printf.sprintf "%s %s" (ty_to_string t) name)
  | Assign (name, e) ->
      buf_add b (Printf.sprintf "%s = " name);
      pp_expr b e
  | _ -> invalid_arg "Printer.pp_simple: not a simple statement"

let pp_func b (f : func) =
  buf_add b
    (match f.ret with
    | None -> "void "
    | Some t -> ty_to_string t ^ " ");
  buf_add b f.fname;
  buf_add b "(";
  List.iteri
    (fun k (t, n) ->
      if k > 0 then buf_add b ", ";
      match t with
      | Tptr base -> buf_add b (Printf.sprintf "%s %s[]" (ty_to_string base) n)
      | _ -> buf_add b (Printf.sprintf "%s %s" (ty_to_string t) n))
    f.params;
  buf_add b ") {\n";
  List.iter (pp_stmt b 2) f.body;
  buf_add b "}\n\n"

let pp_global b (g : global) =
  match (g.gty, g.ginit) with
  | Tarray (base, n), None ->
      buf_add b (Printf.sprintf "%s %s[%d];\n" (ty_to_string base) g.gname n)
  | t, None -> buf_add b (Printf.sprintf "%s %s;\n" (ty_to_string t) g.gname)
  | t, Some e ->
      buf_add b (Printf.sprintf "%s %s = " (ty_to_string t) g.gname);
      pp_expr b e;
      buf_add b ";\n"

let program (p : program) : string =
  let b = Buffer.create 1024 in
  List.iter (pp_global b) p.globals;
  if p.globals <> [] then buf_add b "\n";
  List.iter (pp_func b) p.funcs;
  Buffer.contents b

let expr_to_string (e : expr) : string =
  let b = Buffer.create 64 in
  pp_expr b e;
  Buffer.contents b
