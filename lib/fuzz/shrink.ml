(* Greedy divergence shrinking.

   Given a program the oracle rejects, repeatedly try one-step
   reductions — drop a statement, splice a branch or loop body inline,
   replace an expression by a subexpression, pull constants toward
   0 / 1 / half — and restart from the first candidate that still fails
   the caller's predicate. Candidates that no longer compile are simply
   rejected by the predicate (the campaign's predicate requires the
   divergence to keep the same oracle name, so an ill-typed candidate,
   whose oracle is "compile", cannot hijack a runtime divergence).

   The result is a local minimum: no single reduction keeps it failing. *)

open Minic.Ast

(* ---------- expression reductions ---------- *)

let e (desc : expr_desc) (pos : pos) : expr = { desc; pos }

let float_lit (f : float) ~(single : bool) (pos : pos) : expr =
  let s = Printf.sprintf "%.17g" f in
  let s =
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'n' || c = 'i') s
    then s
    else s ^ ".0"
  in
  e (Float_lit (f, (if single then s ^ "f" else s))) pos

let is_single_lit (s : string) =
  String.length s > 0 && s.[String.length s - 1] = 'f'

(* one-step reductions of an expression, biggest first *)
let rec shrink_expr (x : expr) : expr list =
  let sub = subterms x in
  let smaller =
    match x.desc with
    | Int_lit i ->
        List.filter_map
          (fun c -> if Int64.equal c i then None else Some (e (Int_lit c) x.pos))
          [ 0L; 1L; Int64.div i 2L ]
    | Float_lit (f, s) ->
        let single = is_single_lit s in
        List.filter_map
          (fun c ->
            let c = if single then Ieee.Single.of_double c else c in
            if Int64.equal (Int64.bits_of_float c) (Int64.bits_of_float f) then
              None
            else Some (float_lit c ~single x.pos))
          [ 0.0; 1.0; f /. 2.0; Float.trunc f ]
    | Index (a, i) ->
        (* try index 0, and shrink within the index *)
        (match i.desc with
        | Int_lit 0L -> []
        | _ -> [ e (Index (a, e (Int_lit 0L) i.pos)) x.pos ])
        @ List.map (fun i' -> e (Index (a, i')) x.pos) (shrink_expr i)
    | Var _ -> []
    | Call (name, args) ->
        List.concat
          (List.mapi
             (fun k a ->
               List.map
                 (fun a' ->
                   e (Call (name, List.mapi (fun j b -> if j = k then a' else b) args))
                     x.pos)
                 (shrink_expr a))
             args)
    | Unary (op, a) -> List.map (fun a' -> e (Unary (op, a')) x.pos) (shrink_expr a)
    | Binary (op, a, b) ->
        List.map (fun a' -> e (Binary (op, a', b)) x.pos) (shrink_expr a)
        @ List.map (fun b' -> e (Binary (op, a, b')) x.pos) (shrink_expr b)
    | Cast (t, a) -> List.map (fun a' -> e (Cast (t, a')) x.pos) (shrink_expr a)
  in
  sub @ smaller

(* direct subexpressions usable in place of the whole (type may differ;
   the recompile gate filters those out) *)
and subterms (x : expr) : expr list =
  match x.desc with
  | Int_lit _ | Float_lit _ | Var _ -> []
  | Index (_, i) -> [ i ]
  | Call (_, args) -> args
  | Unary (_, a) | Cast (_, a) -> [ a ]
  | Binary (_, a, b) -> [ a; b ]

(* ---------- statement reductions ---------- *)

(* replacements for one statement (a replacement is a statement list, so
   dropping is [] and splicing a branch body is its statements) *)
let rec stmt_replacements (s : stmt) : stmt list list =
  let expr_variants (mk : expr -> stmt_desc) (x : expr) : stmt list list =
    List.map (fun x' -> [ { s with sdesc = mk x' } ]) (shrink_expr x)
  in
  match s.sdesc with
  | Decl (t, n, Some x) ->
      (* never drop the initializer: an uninitialized slot reads leftover
         frame memory, which the reference interpreter cannot model *)
      expr_variants (fun x' -> Decl (t, n, Some x')) x
  | Decl (_, _, None) -> []
  | Assign (n, x) -> [ [] ] @ expr_variants (fun x' -> Assign (n, x')) x
  | Store (n, i, x) ->
      [ [] ]
      @ expr_variants (fun i' -> Store (n, i', x)) i
      @ expr_variants (fun x' -> Store (n, i, x')) x
  | If (c, then_, else_) ->
      [ []; then_; else_ ]
      @ expr_variants (fun c' -> If (c', then_, else_)) c
      @ List.map (fun t' -> [ { s with sdesc = If (c, t', else_) } ]) (block_reductions then_)
      @ List.map (fun e' -> [ { s with sdesc = If (c, then_, e') } ]) (block_reductions else_)
  | While (c, body) ->
      [ []; body (* one unrolled iteration *) ]
      @ expr_variants (fun c' -> While (c', body)) c
      @ List.map (fun b' -> [ { s with sdesc = While (c, b') } ]) (block_reductions body)
  | For (init, cond, step, body) ->
      [ [] ]
      @ (match cond with
        | Some c ->
            List.map
              (fun c' -> [ { s with sdesc = For (init, Some c', step, body) } ])
              (shrink_expr c)
        | None -> [])
      @ List.map
          (fun b' -> [ { s with sdesc = For (init, cond, step, b') } ])
          (block_reductions body)
  | Return (Some x) -> expr_variants (fun x' -> Return (Some x')) x
  | Return None -> []
  | Expr x -> [ [] ] @ expr_variants (fun x' -> Expr x') x
  | Print x -> [ [] ] @ expr_variants (fun x' -> Print x') x
  | Mark x -> [ [] ] @ expr_variants (fun x' -> Mark x') x
  | Break | Continue -> [ [] ]

(* all blocks obtainable by replacing exactly one statement *)
and block_reductions (stmts : stmt list) : stmt list list =
  List.concat
    (List.mapi
       (fun i si ->
         List.map
           (fun repl ->
             List.concat
               (List.mapi (fun j sj -> if j = i then repl else [ sj ]) stmts))
           (stmt_replacements si))
       stmts)

(* ---------- program reductions ---------- *)

let candidates (p : program) : program list =
  (* drop a whole global (if unreferenced this just compiles smaller) *)
  let drop_globals =
    List.mapi
      (fun i _ ->
        { p with globals = List.filteri (fun j _ -> j <> i) p.globals })
      p.globals
  in
  (* drop a whole non-main function *)
  let drop_funcs =
    List.filter_map
      (fun (f : func) ->
        if f.fname = "main" then None
        else
          Some
            { p with funcs = List.filter (fun (g : func) -> g.fname <> f.fname) p.funcs })
      p.funcs
  in
  (* reduce one statement inside one function *)
  let reduce_bodies =
    List.concat_map
      (fun (f : func) ->
        List.map
          (fun body' ->
            {
              p with
              funcs =
                List.map
                  (fun (g : func) -> if g.fname = f.fname then { g with body = body' } else g)
                  p.funcs;
            })
          (block_reductions f.body))
      p.funcs
  in
  drop_funcs @ drop_globals @ reduce_bodies

type stats = { attempts : int; rounds : int }

(* Greedily shrink [p] while [still_fails] holds, bounded by
   [max_attempts] predicate evaluations. *)
let shrink ?(max_attempts = 4000) ~(still_fails : program -> bool)
    (p : program) : program * stats =
  let attempts = ref 0 in
  let rounds = ref 0 in
  let rec go p =
    incr rounds;
    let rec try_candidates = function
      | [] -> p (* local minimum *)
      | c :: rest ->
          if !attempts >= max_attempts then p
          else begin
            incr attempts;
            if still_fails c then go c else try_candidates rest
          end
    in
    try_candidates (candidates p)
  in
  let result = go p in
  (result, { attempts = !attempts; rounds = !rounds })
