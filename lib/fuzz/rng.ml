(* A splittable SplitMix64 PRNG.

   The fuzzer's determinism contract ("same --seed reproduces the
   identical campaign, including under --jobs N") needs a generator that
   can be forked per program index without any shared mutable stream:
   campaign program [i] draws from [make_indexed ~seed i] only, so the
   schedule of a parallel run cannot perturb what any program looks like.
   No dependency on [Stdlib.Random] or QCheck anywhere in the library. *)

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

(* the SplitMix64 finalizer: a bijective avalanche mix *)
let mix (z : int64) : int64 =
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next (t : t) : int64 =
  t.state <- Int64.add t.state golden;
  mix t.state

let make (seed : int) : t = { state = mix (Int64.of_int seed) }

(* Derive an independent stream: the child is keyed by one draw from the
   parent, so sibling splits never overlap. *)
let split (t : t) : t = { state = mix (next t) }

(* An index-keyed stream for campaign program [i]: depends only on
   (seed, i), never on how many draws other programs made. *)
let make_indexed ~seed (i : int) : t =
  { state = mix (Int64.add (mix (Int64.of_int seed)) (Int64.of_int (i + 1))) }

let bool (t : t) : bool = Int64.logand (next t) 1L = 1L

(* uniform in [0, n); modulo bias is irrelevant at fuzzing scale *)
let int (t : t) (n : int) : int =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int n))

(* uniform in [lo, hi] inclusive *)
let range (t : t) (lo : int) (hi : int) : int = lo + int t (hi - lo + 1)

let int64 (t : t) : int64 = next t

(* uniform in [0, 1) with 53 random bits *)
let float (t : t) : float =
  Int64.to_float (Int64.shift_right_logical (next t) 11) *. 0x1p-53

(* Pick from a weighted menu. Weights are positive ints. *)
let choose (t : t) (menu : (int * 'a) list) : 'a =
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 menu in
  let k = int t total in
  let rec go k = function
    | [] -> invalid_arg "Rng.choose: empty menu"
    | (w, x) :: rest -> if k < w then x else go (k - w) rest
  in
  go k menu

let pick (t : t) (xs : 'a list) : 'a =
  match xs with
  | [] -> invalid_arg "Rng.pick: empty list"
  | _ -> List.nth xs (int t (List.length xs))
