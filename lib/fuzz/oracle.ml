(* The N-way differential oracle.

   Each generated program is executed along several legs and every leg
   must produce bit-identical client outputs:

   - reference: the independent AST evaluator ([Interp]);
   - machine:   compile + uninstrumented VEX machine ([Vex.Machine]);
   - analysis:  the fully instrumented [Core.Analysis.analyze]
                (Herbgrind's transparency claim, paper section 3);
   - ablations: analysis with subsystems disabled — turning a subsystem
                off must never change client behaviour either;
   - vectorize: compile with auto-vectorization on;
   - mathlib:   compile with libm wrapping off (transcendentals run as
                traced MiniC code); numerically different from libm by
                design, so this leg only checks machine-vs-analysis
                transparency within the mode;
   - kernel:    a metamorphic check that Bigfloat at 53-bit precision
                reproduces native double arithmetic bit-for-bit on the
                kernel ops + - * / sqrt fma (subnormal results are
                skipped: Bigfloat's unbounded exponent does not
                double-round into the subnormal range the way hardware
                does; see DESIGN.md);
   - sanitize:  the NSan-style dual-precision sanitizer engine
                ([Sanitize.Sexec]) — its client outputs must also be
                bit-identical to the machine's (same transparency claim,
                second engine);
   - consistency: the two engines' verdicts about *where* the error is
                must agree: an output the full analysis scores far above
                the threshold must not look clean to the sanitizer (and
                vice versa, modulo a slack for the precision gap), and a
                comparison/cast flip the sanitizer is certain about must
                be an incorrect spot in the full analysis too;
   - tiered:    the tiered engine's one-directional contract: every
                spot the tiered engine reports must be bit-identical —
                raw counters, error sums by bits, influence sets, and
                the rendered report entry — to the full engine's record
                for that spot, and its client outputs must match the
                full engine's. Spots the tiered engine misses (triage
                below dd resolution) are legitimate. *)

type divergence = { d_oracle : string; d_detail : string }

(* [Skip] means a leg ran out of step budget: a harness limit (the
   program legitimately runs long, e.g. transcendental mathlib loops
   inside generated while-loops), not a semantic divergence. *)
type result = Pass | Skip of string | Fail of divergence

type checks = {
  c_analysis : bool;
  c_ablations : bool;
  c_vectorize : bool;
  c_mathlib : bool;
  c_kernel : bool;
  c_sanitize : bool;  (* sanitizer-engine transparency *)
  c_consistency : bool;  (* sanitizer vs full-analysis verdict agreement *)
  c_tiered : bool;  (* tiered engine vs full-analysis bit-identity *)
  c_cfg : Core.Config.t;
  c_max_steps : int;
}

let default_checks =
  {
    c_analysis = true;
    c_ablations = false;
    c_vectorize = false;
    c_mathlib = false;
    c_kernel = true;
    c_sanitize = true;
    c_consistency = false;
    c_tiered = false;
    c_cfg = Core.Config.fast;
    c_max_steps = 2_000_000;
  }

(* everything on: what the campaign uses on a slice of its programs *)
let deep_checks =
  {
    default_checks with
    c_ablations = true;
    c_vectorize = true;
    c_mathlib = true;
    c_consistency = true;
    c_tiered = true;
  }

(* ---------- canonical outputs ---------- *)

(* canonical output: int, or float by bits (so NaN payloads, -0.0 and
   every rounding decision are all significant) *)
type obs = I of int64 | F of int64

let obs_to_string = function
  | I i -> Printf.sprintf "int %Ld" i
  | F b -> Printf.sprintf "float %.17g [bits %016Lx]" (Int64.float_of_bits b) b

let obs_of_interp (o : Interp.output) : obs =
  match o with
  | Interp.OInt i -> I i
  | Interp.OFloat f -> F (Int64.bits_of_float f)

let obs_of_machine (o : Vex.Machine.output) : obs =
  match (o.Vex.Machine.kind, o.Vex.Machine.value) with
  | Vex.Ir.OutInt, v -> I (Vex.Value.as_i64 v)
  | (Vex.Ir.OutFloat | Vex.Ir.OutMark), v ->
      F (Int64.bits_of_float (Vex.Value.as_f64 v))

let diff_obs ~left ~right (a : obs list) (b : obs list) : string option =
  if List.length a <> List.length b then
    Some
      (Printf.sprintf "%s printed %d values, %s printed %d" left
         (List.length a) right (List.length b))
  else
    let rec go i = function
      | [], [] -> None
      | x :: xs, y :: ys ->
          if x = y then go (i + 1) (xs, ys)
          else
            Some
              (Printf.sprintf "output %d: %s=%s, %s=%s" i left
                 (obs_to_string x) right (obs_to_string y))
      | _ -> assert false
    in
    go 0 (a, b)

(* ---------- legs ---------- *)

(* a leg yields outputs, a budget exhaustion (harness limit, not a
   bug: the whole program is then skipped), or an error string (which
   never matches another leg's outputs, so any crash surfaces as a
   divergence) *)
type leg_result = Obs of obs list | Out_of_budget of string | Err of string

let is_budget_msg msg =
  (* both Vex.Machine and Core.Exec word it this way *)
  let needle = "step budget" in
  let n = String.length needle and m = String.length msg in
  let rec go i = i + n <= m && (String.sub msg i n = needle || go (i + 1)) in
  go 0

let leg (name : string) (f : unit -> obs list) : leg_result =
  match f () with
  | obs -> Obs obs
  | exception Interp.Budget -> Out_of_budget name
  | exception Interp.Runtime msg -> Err (name ^ ": " ^ msg)
  | exception Vex.Machine.Client_error msg ->
      if is_budget_msg msg then Out_of_budget name else Err (name ^ ": " ^ msg)
  | exception Core.Exec.Client_error msg ->
      if is_budget_msg msg then Out_of_budget name else Err (name ^ ": " ^ msg)
  | exception Sanitize.Sexec.Client_error msg ->
      if is_budget_msg msg then Out_of_budget name else Err (name ^ ": " ^ msg)
  | exception Division_by_zero -> Err (name ^ ": division by zero")
  | exception Minic.Compile_error msg -> Err (name ^ ": " ^ msg)

let compare_legs (lname : string) (l : leg_result) (rname : string)
    (r : leg_result) : result =
  match (l, r) with
  | Obs a, Obs b -> begin
      match diff_obs ~left:lname ~right:rname a b with
      | None -> Pass
      | Some d -> Fail { d_oracle = rname; d_detail = d }
    end
  | Out_of_budget n, _ | _, Out_of_budget n ->
      Skip (n ^ ": step budget exceeded")
  | Err e, _ -> Fail { d_oracle = lname; d_detail = e }
  | _, Err e -> Fail { d_oracle = rname; d_detail = e }

(* ---------- the kernel (metamorphic Bigfloat) oracle ---------- *)

let min_normal = 0x1p-1022

let kernel_apply_exact (name : string) (args : float array) :
    Bignum.Bigfloat.t =
  let module B = Bignum.Bigfloat in
  let a = Array.map B.of_float args in
  match (name, a) with
  | "add", [| x; y |] -> B.add ~prec:53 x y
  | "sub", [| x; y |] -> B.sub ~prec:53 x y
  | "mul", [| x; y |] -> B.mul ~prec:53 x y
  | "div", [| x; y |] -> B.div ~prec:53 x y
  | "sqrt", [| x |] -> B.sqrt ~prec:53 x
  | "fma", [| x; y; z |] -> Bignum.Bigfloat_math.fma ~prec:53 x y z
  | _ -> invalid_arg ("kernel_apply_exact: " ^ name)

(* Check one executed kernel op; return a mismatch description if the
   53-bit Bigfloat result does not reproduce the native double. *)
let kernel_check (name : string) (args : float array) (r : float) :
    string option =
  if not (Array.for_all Float.is_finite args) then None
  else if not (Float.is_finite r) then None (* overflow/NaN: out of scope *)
  else if r <> 0.0 && Float.abs r < min_normal then
    None (* subnormal double rounding: legitimately different *)
  else
    match kernel_apply_exact name args with
    | exception exn ->
        Some
          (Printf.sprintf "%s raised %s on %s" name (Printexc.to_string exn)
             (String.concat " "
                (Array.to_list (Array.map (Printf.sprintf "%h") args))))
    | br ->
        let rf = Bignum.Bigfloat.to_float br in
        if Int64.bits_of_float rf = Int64.bits_of_float r then None
        else
          Some
            (Printf.sprintf "%s(%s): native %h [%016Lx], bigfloat %h [%016Lx]"
               name
               (String.concat ", "
                  (Array.to_list (Array.map (Printf.sprintf "%h") args)))
               r
               (Int64.bits_of_float r)
               rf
               (Int64.bits_of_float rf))

(* ---------- the engine-consistency oracle ---------- *)

(* Calls the dd kernel evaluates natively; any other Dirty call makes
   the sanitizer's shadow fall back to double-precision libm, so its
   error magnitudes are not comparable to the full engine's and the
   consistency check would only measure that precision gap. *)
let dd_native = [ "__arg"; "sqrt"; "fabs"; "fma"; "fmin"; "fmax" ]

let has_passthrough_libm (prog : Vex.Ir.prog) : bool =
  Array.exists
    (fun (b : Vex.Ir.block) ->
      Array.exists
        (function
          | Vex.Ir.Dirty (_, name, _) -> not (List.mem name dd_native)
          | _ -> false)
        b.Vex.Ir.stmts)
    prog.Vex.Ir.blocks

(* The two engines measure against different references (an N-bit
   Bigfloat vs a ~106-bit double-double), so measured bits legitimately
   differ by a few ulps of the measurement itself. Only a gross
   disagreement — one engine far above the threshold while the other
   sees a clean output — is a divergence. *)
let consistency_slack = 15.0

let consistency_check ~(checks : checks) ~tick ~inputs (prog : Vex.Ir.prog) :
    result =
  if has_passthrough_libm prog then Pass
  else begin
    let cfg = checks.c_cfg in
    match
      let a =
        Core.Analysis.analyze ~cfg ~max_steps:checks.c_max_steps ~inputs ~tick
          prog
      in
      let s =
        Sanitize.Sexec.run ~max_steps:checks.c_max_steps ~inputs ~tick cfg prog
      in
      (a, s)
    with
    | exception
        ( Core.Exec.Client_error msg
        | Sanitize.Sexec.Client_error msg
        | Vex.Machine.Client_error msg ) ->
        if is_budget_msg msg then Skip "consistency: step budget exceeded"
        else Fail { d_oracle = "consistency"; d_detail = msg }
    | a, s ->
        let spots = a.Core.Analysis.raw.Core.Exec.r_spots in
        let thr = cfg.Core.Config.error_threshold in
        (* a float->int cast re-seeds the sanitizer's shadow from the
           integer (NSan semantics: the error is reported *at the cast*,
           then the int is the int), while the full engine carries its
           real through the round-trip — so once a cast has executed,
           downstream outputs are only comparable in the direction
           "sanitizer sees error the full engine doesn't" *)
        let cast_reseed =
          Hashtbl.fold
            (fun _ (f : Sanitize.Sexec.finding) acc ->
              acc || f.Sanitize.Sexec.f_kind = Sanitize.Sexec.Check_cast)
            s.Sanitize.Sexec.sx_findings false
        in
        let bad = ref None in
        Hashtbl.iter
          (fun id (f : Sanitize.Sexec.finding) ->
            if !bad = None then
              match f.Sanitize.Sexec.f_kind with
              | Sanitize.Sexec.Check_output ->
                  (* both engines observe every executed output, so a
                     missing full-engine spot means it measured no error *)
                  let full_err =
                    match Hashtbl.find_opt spots id with
                    | Some sp -> sp.Core.Exec.s_err_max
                    | None -> 0.0
                  in
                  let san_err = f.Sanitize.Sexec.f_bits_max in
                  (* a site that ever printed a nan or an infinity: the
                     verdict there hinges entirely on whether the
                     reference resolves the overflow or invalid, and the
                     two references legitimately differ. A Bigfloat
                     cannot represent nan (sqrt of a negative drops
                     provenance, so a full-engine 0.0 means "untracked",
                     not "clean"), and an exact 1e300-scale cancellation
                     is resolved by the dd's sparse hi + lo pair but
                     collapses in any fixed-precision real narrower than
                     the double exponent range — nothing to compare *)
                  let nonfinite = f.Sanitize.Sexec.f_nonfinite_hits > 0 in
                  if
                    (not nonfinite)
                    && ((full_err > thr +. consistency_slack && san_err <= thr
                       && not cast_reseed)
                       || (san_err > thr +. consistency_slack
                         && full_err <= thr))
                  then
                    bad :=
                      Some
                        (Printf.sprintf
                           "output at %s: full engine measured %.1f bits, \
                            sanitizer %.1f (threshold %.1f, slack %.1f)"
                           (Vex.Ir.loc_to_string f.Sanitize.Sexec.f_loc)
                           full_err san_err thr consistency_slack)
              | Sanitize.Sexec.Check_cmp | Sanitize.Sexec.Check_cast ->
                  (* one-directional: a flip the sanitizer is *certain*
                     about (every hit above dd resolution) must be an
                     incorrect spot in the full engine too; the reverse
                     can fail legitimately when the flip margin sits
                     between dd and Bigfloat resolution *)
                  if
                    f.Sanitize.Sexec.f_hits > 0
                    && f.Sanitize.Sexec.f_uncertain = 0
                  then begin
                    match Hashtbl.find_opt spots id with
                    | Some sp when sp.Core.Exec.s_incorrect = 0 ->
                        bad :=
                          Some
                            (Printf.sprintf
                               "%s at %s: sanitizer saw %d certain flip(s), \
                                full engine saw none"
                               (Sanitize.Sexec.check_kind_name
                                  f.Sanitize.Sexec.f_kind)
                               (Vex.Ir.loc_to_string f.Sanitize.Sexec.f_loc)
                               f.Sanitize.Sexec.f_hits)
                    | _ ->
                        (* no spot at all: the engines shadowed different
                           operands there (e.g. a constant the full engine
                           tracks exactly); nothing to compare *)
                        ()
                  end
              | Sanitize.Sexec.Check_store ->
                  (* the full engine has no per-store check to compare *)
                  ())
          s.Sanitize.Sexec.sx_findings;
        (match !bad with
        | None -> Pass
        | Some d -> Fail { d_oracle = "consistency"; d_detail = d })
  end

(* ---------- the tiered-consistency oracle ---------- *)

(* The tiered engine's contract is one-directional and exact: every spot
   it reports must be bit-identical to the full engine's record for that
   spot — raw counters, error sums compared by bits, influence sets, and
   the rendered report entry (which folds in the influencing ops'
   aggregates and anti-unified expressions). Client outputs must match
   the full engine's too. A spot the tiered engine *misses* is
   legitimate: the dd triage can sit below Bigfloat resolution. Unlike
   the magnitude-based consistency check, nothing here depends on the
   sanitizer's libm fallback, so passthrough-libm programs are fair
   game. *)
let tiered_check ~(checks : checks) ~tick ~inputs (prog : Vex.Ir.prog) :
    result =
  let cfg = checks.c_cfg in
  match
    let t =
      Tiered.analyze
        ~cfg:{ cfg with Core.Config.engine = Core.Config.Tiered }
        ~max_steps:checks.c_max_steps ~inputs ~tick prog
    in
    let full =
      Core.Analysis.analyze ~cfg ~max_steps:checks.c_max_steps ~inputs ~tick
        prog
    in
    (t, full)
  with
  | exception
      ( Core.Exec.Client_error msg
      | Sanitize.Sexec.Client_error msg
      | Vex.Machine.Client_error msg ) ->
      if is_budget_msg msg then Skip "tiered: step budget exceeded"
      else Fail { d_oracle = "tiered"; d_detail = msg }
  | t, full -> begin
      let fail d = Fail { d_oracle = "tiered"; d_detail = d } in
      let t_obs = List.map obs_of_machine (Tiered.outputs t) in
      let f_obs =
        List.map obs_of_machine full.Core.Analysis.raw.Core.Exec.r_outputs
      in
      match diff_obs ~left:"tiered" ~right:"full" t_obs f_obs with
      | Some d -> fail d
      | None -> (
          match t.Tiered.t_full with
          | None -> Pass (* not escalated: nothing reported, nothing owed *)
          | Some pass2 ->
              let fspots = full.Core.Analysis.raw.Core.Exec.r_spots in
              let bad = ref None in
              Hashtbl.iter
                (fun id (ts : Core.Exec.spot_info) ->
                  if !bad = None then
                    match Hashtbl.find_opt fspots id with
                    | None ->
                        bad :=
                          Some
                            (Printf.sprintf
                               "tiered spot at %s has no full-engine record"
                               (Vex.Ir.loc_to_string ts.Core.Exec.s_loc))
                    | Some fs ->
                        let b = Int64.bits_of_float in
                        if
                          ts.Core.Exec.s_total <> fs.Core.Exec.s_total
                          || ts.Core.Exec.s_incorrect
                             <> fs.Core.Exec.s_incorrect
                          || b ts.Core.Exec.s_err_sum
                             <> b fs.Core.Exec.s_err_sum
                          || b ts.Core.Exec.s_err_max
                             <> b fs.Core.Exec.s_err_max
                          || not
                               (Core.Shadow.IntSet.equal ts.Core.Exec.s_infl
                                  fs.Core.Exec.s_infl)
                        then
                          bad :=
                            Some
                              (Printf.sprintf
                                 "spot at %s: tiered %d/%d err %h/%h (%d \
                                  infl), full %d/%d err %h/%h (%d infl)"
                                 (Vex.Ir.loc_to_string ts.Core.Exec.s_loc)
                                 ts.Core.Exec.s_total ts.Core.Exec.s_incorrect
                                 ts.Core.Exec.s_err_sum ts.Core.Exec.s_err_max
                                 (Core.Shadow.IntSet.cardinal
                                    ts.Core.Exec.s_infl)
                                 fs.Core.Exec.s_total fs.Core.Exec.s_incorrect
                                 fs.Core.Exec.s_err_sum fs.Core.Exec.s_err_max
                                 (Core.Shadow.IntSet.cardinal
                                    fs.Core.Exec.s_infl)))
                pass2.Core.Analysis.raw.Core.Exec.r_spots;
              (* rendered report entries: byte-identical per spot *)
              if !bad = None then begin
                let full_entries = Hashtbl.create 7 in
                List.iter
                  (fun (e : Core.Report.entry) ->
                    Hashtbl.replace full_entries
                      e.Core.Report.e_spot.Core.Exec.s_id e)
                  full.Core.Analysis.report.Core.Report.entries;
                List.iter
                  (fun (e : Core.Report.entry) ->
                    if !bad = None then
                      let id = e.Core.Report.e_spot.Core.Exec.s_id in
                      match Hashtbl.find_opt full_entries id with
                      | None ->
                          bad :=
                            Some
                              (Printf.sprintf
                                 "tiered report entry at %s absent from the \
                                  full report"
                                 (Vex.Ir.loc_to_string
                                    e.Core.Report.e_spot.Core.Exec.s_loc))
                      | Some fe ->
                          let te_s = Core.Report.entry_to_string e in
                          let fe_s = Core.Report.entry_to_string fe in
                          if te_s <> fe_s then
                            bad :=
                              Some
                                (Printf.sprintf
                                   "report entry at %s differs\n  tiered: \
                                    %s\n  full:   %s"
                                   (Vex.Ir.loc_to_string
                                      e.Core.Report.e_spot.Core.Exec.s_loc)
                                   (String.trim te_s) (String.trim fe_s)))
                  pass2.Core.Analysis.report.Core.Report.entries
              end;
              (match !bad with None -> Pass | Some d -> fail d))
    end

(* ---------- the oracle proper ---------- *)

let run ?(checks = default_checks) ?tick ~(inputs : float array)
    (ast : Minic.Ast.program) : result =
  let tick = match tick with Some f -> f | None -> fun () -> () in
  let src = Printer.program ast in
  let file = "fuzz.mc" in
  (* reference leg, with the kernel hook recording as it goes *)
  let kernel_bad = ref None in
  let hook name args r =
    if !kernel_bad = None then
      match kernel_check name args r with
      | Some d -> kernel_bad := Some d
      | None -> ()
  in
  let reference =
    leg "reference" (fun () ->
        let hook = if checks.c_kernel then Some hook else None in
        List.map obs_of_interp (Interp.run ?hook ~inputs ast))
  in
  tick ();
  match Minic.compile ~file src with
  | exception Minic.Compile_error e -> Fail { d_oracle = "compile"; d_detail = e }
  | prog -> begin
      let machine =
        leg "machine" (fun () ->
            let st =
              Vex.Machine.run ~max_steps:checks.c_max_steps ~inputs prog
            in
            List.map obs_of_machine (Vex.Machine.outputs st))
      in
      tick ();
      let analysis_leg name cfg p =
        leg name (fun () ->
            let r =
              Core.Analysis.analyze ~cfg ~max_steps:checks.c_max_steps ~inputs
                ~tick p
            in
            List.map obs_of_machine r.Core.Analysis.raw.Core.Exec.r_outputs)
      in
      let ( let* ) r k = match r with Pass -> k () | Skip _ | Fail _ -> r in
      let* () = compare_legs "reference" reference "machine" machine in
      let* () =
        match !kernel_bad with
        | Some d when checks.c_kernel ->
            Fail { d_oracle = "kernel"; d_detail = d }
        | _ -> Pass
      in
      let* () =
        if not checks.c_analysis then Pass
        else begin
          let a = analysis_leg "analysis" checks.c_cfg prog in
          compare_legs "machine" machine "analysis" a
        end
      in
      let* () =
        if not checks.c_ablations then Pass
        else begin
          let ablations =
            [
              ("analysis-no-reals", { checks.c_cfg with Core.Config.enable_reals = false });
              ( "analysis-no-expressions",
                { checks.c_cfg with Core.Config.enable_expressions = false } );
              ( "analysis-no-influences",
                { checks.c_cfg with Core.Config.enable_influences = false } );
              ( "analysis-no-type-inference",
                { checks.c_cfg with Core.Config.type_inference = false } );
            ]
          in
          List.fold_left
            (fun acc (name, cfg) ->
              match acc with
              | Skip _ | Fail _ -> acc
              | Pass -> (
                  let a = analysis_leg name cfg prog in
                  match compare_legs "machine" machine "analysis" a with
                  | Pass -> Pass
                  | Skip s -> Skip s
                  | Fail d -> Fail { d with d_oracle = name }))
            Pass ablations
        end
      in
      let* () =
        if not checks.c_sanitize then Pass
        else begin
          let s =
            leg "sanitize" (fun () ->
                let r =
                  Sanitize.Sexec.run ~max_steps:checks.c_max_steps ~inputs
                    ~tick checks.c_cfg prog
                in
                List.map obs_of_machine (Sanitize.Sexec.outputs r))
          in
          compare_legs "machine" machine "sanitize" s
        end
      in
      let* () =
        if not checks.c_consistency then Pass
        else consistency_check ~checks ~tick ~inputs prog
      in
      let* () =
        if not checks.c_tiered then Pass
        else tiered_check ~checks ~tick ~inputs prog
      in
      let* () =
        if not checks.c_vectorize then Pass
        else begin
          let v =
            leg "vectorize" (fun () ->
                let p = Minic.compile ~vectorize:true ~file src in
                let st =
                  Vex.Machine.run ~max_steps:checks.c_max_steps ~inputs p
                in
                List.map obs_of_machine (Vex.Machine.outputs st))
          in
          compare_legs "machine" machine "vectorize" v
        end
      in
      let* () =
        if not checks.c_mathlib then Pass
        else begin
          (* mathlib results differ numerically from libm by design, so
             this leg checks transparency *within* the mode only *)
          match Minic.compile ~wrap_libm:false ~file src with
          | exception Minic.Compile_error e ->
              Fail { d_oracle = "mathlib"; d_detail = e }
          | p ->
              let m =
                leg "mathlib-machine" (fun () ->
                    let st =
                      Vex.Machine.run ~max_steps:checks.c_max_steps ~inputs p
                    in
                    List.map obs_of_machine (Vex.Machine.outputs st))
              in
              let a = analysis_leg "mathlib-analysis" checks.c_cfg p in
              compare_legs "mathlib-machine" m "mathlib-analysis" a
        end
      in
      Pass
    end

(* parse and run: the corpus-replay entry point *)
let run_source ?checks ?tick ~inputs (src : string) : result =
  match Minic.parse ~file:"corpus.mc" src with
  | exception Minic.Compile_error msg ->
      Fail { d_oracle = "parse"; d_detail = msg }
  | ast -> run ?checks ?tick ~inputs ast
