(* The N-way differential oracle.

   Each generated program is executed along several legs and every leg
   must produce bit-identical client outputs:

   - reference: the independent AST evaluator ([Interp]);
   - machine:   compile + uninstrumented VEX machine ([Vex.Machine]);
   - analysis:  the fully instrumented [Core.Analysis.analyze]
                (Herbgrind's transparency claim, paper section 3);
   - ablations: analysis with subsystems disabled — turning a subsystem
                off must never change client behaviour either;
   - vectorize: compile with auto-vectorization on;
   - mathlib:   compile with libm wrapping off (transcendentals run as
                traced MiniC code); numerically different from libm by
                design, so this leg only checks machine-vs-analysis
                transparency within the mode;
   - kernel:    a metamorphic check that Bigfloat at 53-bit precision
                reproduces native double arithmetic bit-for-bit on the
                kernel ops + - * / sqrt fma (subnormal results are
                skipped: Bigfloat's unbounded exponent does not
                double-round into the subnormal range the way hardware
                does; see DESIGN.md). *)

type divergence = { d_oracle : string; d_detail : string }

(* [Skip] means a leg ran out of step budget: a harness limit (the
   program legitimately runs long, e.g. transcendental mathlib loops
   inside generated while-loops), not a semantic divergence. *)
type result = Pass | Skip of string | Fail of divergence

type checks = {
  c_analysis : bool;
  c_ablations : bool;
  c_vectorize : bool;
  c_mathlib : bool;
  c_kernel : bool;
  c_cfg : Core.Config.t;
  c_max_steps : int;
}

let default_checks =
  {
    c_analysis = true;
    c_ablations = false;
    c_vectorize = false;
    c_mathlib = false;
    c_kernel = true;
    c_cfg = Core.Config.fast;
    c_max_steps = 2_000_000;
  }

(* everything on: what the campaign uses on a slice of its programs *)
let deep_checks =
  { default_checks with c_ablations = true; c_vectorize = true; c_mathlib = true }

(* ---------- canonical outputs ---------- *)

(* canonical output: int, or float by bits (so NaN payloads, -0.0 and
   every rounding decision are all significant) *)
type obs = I of int64 | F of int64

let obs_to_string = function
  | I i -> Printf.sprintf "int %Ld" i
  | F b -> Printf.sprintf "float %.17g [bits %016Lx]" (Int64.float_of_bits b) b

let obs_of_interp (o : Interp.output) : obs =
  match o with
  | Interp.OInt i -> I i
  | Interp.OFloat f -> F (Int64.bits_of_float f)

let obs_of_machine (o : Vex.Machine.output) : obs =
  match (o.Vex.Machine.kind, o.Vex.Machine.value) with
  | Vex.Ir.OutInt, v -> I (Vex.Value.as_i64 v)
  | (Vex.Ir.OutFloat | Vex.Ir.OutMark), v ->
      F (Int64.bits_of_float (Vex.Value.as_f64 v))

let diff_obs ~left ~right (a : obs list) (b : obs list) : string option =
  if List.length a <> List.length b then
    Some
      (Printf.sprintf "%s printed %d values, %s printed %d" left
         (List.length a) right (List.length b))
  else
    let rec go i = function
      | [], [] -> None
      | x :: xs, y :: ys ->
          if x = y then go (i + 1) (xs, ys)
          else
            Some
              (Printf.sprintf "output %d: %s=%s, %s=%s" i left
                 (obs_to_string x) right (obs_to_string y))
      | _ -> assert false
    in
    go 0 (a, b)

(* ---------- legs ---------- *)

(* a leg yields outputs, a budget exhaustion (harness limit, not a
   bug: the whole program is then skipped), or an error string (which
   never matches another leg's outputs, so any crash surfaces as a
   divergence) *)
type leg_result = Obs of obs list | Out_of_budget of string | Err of string

let is_budget_msg msg =
  (* both Vex.Machine and Core.Exec word it this way *)
  let needle = "step budget" in
  let n = String.length needle and m = String.length msg in
  let rec go i = i + n <= m && (String.sub msg i n = needle || go (i + 1)) in
  go 0

let leg (name : string) (f : unit -> obs list) : leg_result =
  match f () with
  | obs -> Obs obs
  | exception Interp.Budget -> Out_of_budget name
  | exception Interp.Runtime msg -> Err (name ^ ": " ^ msg)
  | exception Vex.Machine.Client_error msg ->
      if is_budget_msg msg then Out_of_budget name else Err (name ^ ": " ^ msg)
  | exception Core.Exec.Client_error msg ->
      if is_budget_msg msg then Out_of_budget name else Err (name ^ ": " ^ msg)
  | exception Division_by_zero -> Err (name ^ ": division by zero")
  | exception Minic.Compile_error msg -> Err (name ^ ": " ^ msg)

let compare_legs (lname : string) (l : leg_result) (rname : string)
    (r : leg_result) : result =
  match (l, r) with
  | Obs a, Obs b -> begin
      match diff_obs ~left:lname ~right:rname a b with
      | None -> Pass
      | Some d -> Fail { d_oracle = rname; d_detail = d }
    end
  | Out_of_budget n, _ | _, Out_of_budget n ->
      Skip (n ^ ": step budget exceeded")
  | Err e, _ -> Fail { d_oracle = lname; d_detail = e }
  | _, Err e -> Fail { d_oracle = rname; d_detail = e }

(* ---------- the kernel (metamorphic Bigfloat) oracle ---------- *)

let min_normal = 0x1p-1022

let kernel_apply_exact (name : string) (args : float array) :
    Bignum.Bigfloat.t =
  let module B = Bignum.Bigfloat in
  let a = Array.map B.of_float args in
  match (name, a) with
  | "add", [| x; y |] -> B.add ~prec:53 x y
  | "sub", [| x; y |] -> B.sub ~prec:53 x y
  | "mul", [| x; y |] -> B.mul ~prec:53 x y
  | "div", [| x; y |] -> B.div ~prec:53 x y
  | "sqrt", [| x |] -> B.sqrt ~prec:53 x
  | "fma", [| x; y; z |] -> Bignum.Bigfloat_math.fma ~prec:53 x y z
  | _ -> invalid_arg ("kernel_apply_exact: " ^ name)

(* Check one executed kernel op; return a mismatch description if the
   53-bit Bigfloat result does not reproduce the native double. *)
let kernel_check (name : string) (args : float array) (r : float) :
    string option =
  if not (Array.for_all Float.is_finite args) then None
  else if not (Float.is_finite r) then None (* overflow/NaN: out of scope *)
  else if r <> 0.0 && Float.abs r < min_normal then
    None (* subnormal double rounding: legitimately different *)
  else
    match kernel_apply_exact name args with
    | exception exn ->
        Some
          (Printf.sprintf "%s raised %s on %s" name (Printexc.to_string exn)
             (String.concat " "
                (Array.to_list (Array.map (Printf.sprintf "%h") args))))
    | br ->
        let rf = Bignum.Bigfloat.to_float br in
        if Int64.bits_of_float rf = Int64.bits_of_float r then None
        else
          Some
            (Printf.sprintf "%s(%s): native %h [%016Lx], bigfloat %h [%016Lx]"
               name
               (String.concat ", "
                  (Array.to_list (Array.map (Printf.sprintf "%h") args)))
               r
               (Int64.bits_of_float r)
               rf
               (Int64.bits_of_float rf))

(* ---------- the oracle proper ---------- *)

let run ?(checks = default_checks) ?tick ~(inputs : float array)
    (ast : Minic.Ast.program) : result =
  let tick = match tick with Some f -> f | None -> fun () -> () in
  let src = Printer.program ast in
  let file = "fuzz.mc" in
  (* reference leg, with the kernel hook recording as it goes *)
  let kernel_bad = ref None in
  let hook name args r =
    if !kernel_bad = None then
      match kernel_check name args r with
      | Some d -> kernel_bad := Some d
      | None -> ()
  in
  let reference =
    leg "reference" (fun () ->
        let hook = if checks.c_kernel then Some hook else None in
        List.map obs_of_interp (Interp.run ?hook ~inputs ast))
  in
  tick ();
  match Minic.compile ~file src with
  | exception Minic.Compile_error e -> Fail { d_oracle = "compile"; d_detail = e }
  | prog -> begin
      let machine =
        leg "machine" (fun () ->
            let st =
              Vex.Machine.run ~max_steps:checks.c_max_steps ~inputs prog
            in
            List.map obs_of_machine (Vex.Machine.outputs st))
      in
      tick ();
      let analysis_leg name cfg p =
        leg name (fun () ->
            let r =
              Core.Analysis.analyze ~cfg ~max_steps:checks.c_max_steps ~inputs
                ~tick p
            in
            List.map obs_of_machine r.Core.Analysis.raw.Core.Exec.r_outputs)
      in
      let ( let* ) r k = match r with Pass -> k () | Skip _ | Fail _ -> r in
      let* () = compare_legs "reference" reference "machine" machine in
      let* () =
        match !kernel_bad with
        | Some d when checks.c_kernel ->
            Fail { d_oracle = "kernel"; d_detail = d }
        | _ -> Pass
      in
      let* () =
        if not checks.c_analysis then Pass
        else begin
          let a = analysis_leg "analysis" checks.c_cfg prog in
          compare_legs "machine" machine "analysis" a
        end
      in
      let* () =
        if not checks.c_ablations then Pass
        else begin
          let ablations =
            [
              ("analysis-no-reals", { checks.c_cfg with Core.Config.enable_reals = false });
              ( "analysis-no-expressions",
                { checks.c_cfg with Core.Config.enable_expressions = false } );
              ( "analysis-no-influences",
                { checks.c_cfg with Core.Config.enable_influences = false } );
              ( "analysis-no-type-inference",
                { checks.c_cfg with Core.Config.type_inference = false } );
            ]
          in
          List.fold_left
            (fun acc (name, cfg) ->
              match acc with
              | Skip _ | Fail _ -> acc
              | Pass -> (
                  let a = analysis_leg name cfg prog in
                  match compare_legs "machine" machine "analysis" a with
                  | Pass -> Pass
                  | Skip s -> Skip s
                  | Fail d -> Fail { d with d_oracle = name }))
            Pass ablations
        end
      in
      let* () =
        if not checks.c_vectorize then Pass
        else begin
          let v =
            leg "vectorize" (fun () ->
                let p = Minic.compile ~vectorize:true ~file src in
                let st =
                  Vex.Machine.run ~max_steps:checks.c_max_steps ~inputs p
                in
                List.map obs_of_machine (Vex.Machine.outputs st))
          in
          compare_legs "machine" machine "vectorize" v
        end
      in
      let* () =
        if not checks.c_mathlib then Pass
        else begin
          (* mathlib results differ numerically from libm by design, so
             this leg checks transparency *within* the mode only *)
          match Minic.compile ~wrap_libm:false ~file src with
          | exception Minic.Compile_error e ->
              Fail { d_oracle = "mathlib"; d_detail = e }
          | p ->
              let m =
                leg "mathlib-machine" (fun () ->
                    let st =
                      Vex.Machine.run ~max_steps:checks.c_max_steps ~inputs p
                    in
                    List.map obs_of_machine (Vex.Machine.outputs st))
              in
              let a = analysis_leg "mathlib-analysis" checks.c_cfg p in
              compare_legs "mathlib-machine" m "mathlib-analysis" a
        end
      in
      Pass
    end

(* parse and run: the corpus-replay entry point *)
let run_source ?checks ?tick ~inputs (src : string) : result =
  match Minic.parse ~file:"corpus.mc" src with
  | exception Minic.Compile_error msg ->
      Fail { d_oracle = "parse"; d_detail = msg }
  | ast -> run ?checks ?tick ~inputs ast
