(* A typed, seeded MiniC program generator.

   Programs are built directly as [Minic.Ast] values and are well-typed by
   construction: the generator tracks the variable environment and only
   produces expressions of the type a context demands, mirroring the
   typechecker's promotion rules. Termination and definedness are also by
   construction:

   - every scalar declaration is initialized (the VEX stack reuses frame
     memory, so an uninitialized local read would see leftover bytes that
     no reference evaluator should have to model);
   - loops are bounded counter loops; the counter is "protected" (never
     assigned in the body) and [continue] is never emitted;
   - integer division/modulus denominators are nonzero literals or the
     shape [e*e + 1], which is nonzero for every int64 [e] (squares mod 8
     are 0, 1 or 4, so [e*e] can never be -1);
   - array indices are wrapped as [((e % n + n) % n)];
   - local arrays live only in [main] (whose frame is fresh), so their
     zero-initialized reads are well-defined;
   - helper functions only call earlier helpers (no recursion) and always
     end in [return].

   All randomness flows through one [Rng.t], so a seed fully determines
   the program. *)

open Minic.Ast

type config = {
  max_top_stmts : int;  (* statement budget for main *)
  max_block_stmts : int;  (* budget for nested blocks *)
  max_expr_depth : int;
  max_helpers : int;
  max_arrays : int;
  max_loop_iters : int;
  allow_control : bool;  (* if/while/for/break *)
  allow_arrays : bool;
  allow_casts : bool;
  allow_calls : bool;  (* helper functions *)
  allow_libm : bool;  (* transcendental library calls *)
  allow_single : bool;  (* binary32 locals, literals and arithmetic *)
  allow_int_arith : bool;
  n_inputs : int;  (* size of the __arg input vector *)
}

let default =
  {
    max_top_stmts = 14;
    max_block_stmts = 5;
    max_expr_depth = 5;
    max_helpers = 3;
    max_arrays = 2;
    max_loop_iters = 6;
    allow_control = true;
    allow_arrays = true;
    allow_casts = true;
    allow_calls = true;
    allow_libm = true;
    allow_single = true;
    allow_int_arith = true;
    n_inputs = 8;
  }

(* the surface the old hand-rolled differential fuzzer covered:
   straight-line double expressions only *)
let straightline =
  {
    default with
    max_top_stmts = 6;
    max_helpers = 0;
    max_arrays = 0;
    allow_control = false;
    allow_arrays = false;
    allow_casts = false;
    allow_calls = false;
    allow_libm = false;
    allow_single = false;
    allow_int_arith = false;
  }

(* ---------- generator state ---------- *)

type helper = { h_name : string; h_ret : ty; h_params : ty list }

type genv = {
  cfg : config;
  rng : Rng.t;
  mutable vars : (string * ty) list;  (* scalars in scope *)
  mutable arrays : (string * ty * int) list;  (* name, elem ty, length *)
  mutable protected : string list;  (* loop counters: read-only *)
  mutable helpers : helper list;  (* callable from the current point *)
  mutable fresh : int;
  mutable in_loop : bool;
}

let no_pos = { line = 0 }
let e (desc : expr_desc) : expr = { desc; pos = no_pos }
let s (sdesc : stmt_desc) : stmt = { sdesc; spos = no_pos }

let fresh_name g prefix =
  g.fresh <- g.fresh + 1;
  Printf.sprintf "%s%d" prefix g.fresh

let scalar_tys g =
  (Tdouble, 6)
  :: (if g.cfg.allow_int_arith then [ (Tint, 3) ] else [])
  @ if g.cfg.allow_single then [ (Tfloat, 2) ] else []

let pick_scalar_ty g = Rng.choose g.rng (List.map (fun (t, w) -> (w, t)) (scalar_tys g))

let vars_of_ty g t = List.filter (fun (_, vt) -> vt = t) g.vars
let assignable g = List.filter (fun (n, _) -> not (List.mem n g.protected)) g.vars

(* ---------- literals ---------- *)

let float_lit_of (f : float) : expr =
  (* spelling chosen so the lexer reads back the exact double: %.17g
     round-trips, and a '.0' is forced when the rendering looks integral *)
  let s0 = Printf.sprintf "%.17g" f in
  let s0 =
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'n' || c = 'i') s0
    then s0
    else s0 ^ ".0"
  in
  e (Float_lit (f, s0))

let single_lit_of (f : float) : expr =
  let f = Ieee.Single.of_double f in
  let s0 = Printf.sprintf "%.17g" f in
  let s0 =
    if String.exists (fun c -> c = '.' || c = 'e') s0 then s0 else s0 ^ ".0"
  in
  e (Float_lit (f, s0 ^ "f"))

let interesting_doubles =
  [|
    0.0; 1.0; -1.0; 0.5; 2.0; 0.1; 3.0; 10.0; 1e-8; 1e8; 1e16; 1e-16;
    6755399441055744.0; 3.141592653589793; 0.3333333333333333; 1e300; 1e-300;
  |]

let gen_double_const g =
  match Rng.int g.rng 4 with
  | 0 -> interesting_doubles.(Rng.int g.rng (Array.length interesting_doubles))
  | 1 -> (Rng.float g.rng *. 200.0) -. 100.0
  | 2 ->
      (* exponent-scaled: m * 2^e *)
      let m = (Rng.float g.rng *. 2.0) -. 1.0 in
      let ex = Rng.range g.rng (-40) 40 in
      Float.ldexp m ex
  | _ -> float_of_int (Rng.range g.rng (-20) 20)

let gen_int_const g : int64 =
  match Rng.int g.rng 4 with
  | 0 -> Int64.of_int (Rng.range g.rng 0 8)
  | 1 -> Int64.of_int (Rng.range g.rng (-64) 64)
  | 2 -> Int64.shift_left 1L (Rng.int g.rng 20)
  | _ -> Int64.of_int (Rng.range g.rng (-100000) 100000)

(* the libm surface the generator exercises (all unary/binary/ternary
   calls return double); sqrt and fabs compile to inline hardware ops,
   the rest to Dirty library calls *)
let libm_unary =
  [ "sqrt"; "fabs"; "exp"; "log"; "sin"; "cos"; "tan"; "atan"; "floor";
    "ceil"; "trunc"; "round"; "cbrt"; "expm1"; "log1p"; "sinh"; "tanh" ]

let libm_binary = [ "pow"; "atan2"; "fmin"; "fmax"; "hypot"; "fmod"; "copysign"; "fdim" ]

(* ---------- expressions ---------- *)

let rec gen_expr g (want : ty) (depth : int) : expr =
  match want with
  | Tdouble -> gen_double g depth
  | Tint -> gen_int g depth
  | Tfloat -> gen_single g depth
  | Tarray _ | Tptr _ -> invalid_arg "Gen.gen_expr: non-scalar"

and gen_double g depth : expr =
  if depth <= 0 then gen_double_leaf g
  else
    let vars = vars_of_ty g Tdouble in
    let menu =
      [
        (2, `Leaf);
        (8, `Binop);
        (1, `Neg);
        (2, `Sqrt_fabs);
        (1, `Minmax);
        (2, `Arg);
      ]
      @ (if g.cfg.allow_libm then [ (2, `Libm) ] else [])
      @ (if g.cfg.allow_casts then [ (1, `Cast) ] else [])
      @ (if g.arrays <> [] && List.exists (fun (_, t, _) -> t = Tdouble) g.arrays
         then [ (2, `Index) ]
         else [])
      @ (if g.helpers <> [] then [ (2, `Call) ] else [])
      @ if vars <> [] then [ (6, `Var) ] else []
    in
    match Rng.choose g.rng menu with
    | `Leaf -> gen_double_leaf g
    | `Var -> e (Var (fst (Rng.pick g.rng vars)))
    | `Binop ->
        let op = Rng.choose g.rng [ (3, Add); (3, Sub); (3, Mul); (2, Div) ] in
        (* mixed-type operands exercise the usual arithmetic conversions *)
        let sub g =
          if g.cfg.allow_casts && Rng.int g.rng 8 = 0 then
            gen_expr g (pick_scalar_ty g) (depth - 1)
          else gen_double g (depth - 1)
        in
        e (Binary (op, sub g, gen_double g (depth - 1)))
    | `Neg -> e (Unary (Neg, gen_double g (depth - 1)))
    | `Sqrt_fabs ->
        let f = if Rng.bool g.rng then "sqrt" else "fabs" in
        e (Call (f, [ gen_double g (depth - 1) ]))
    | `Minmax ->
        let f = if Rng.bool g.rng then "fmin" else "fmax" in
        e (Call (f, [ gen_double g (depth - 1); gen_double g (depth - 1) ]))
    | `Arg -> e (Call ("__arg", [ gen_int g (min 1 (depth - 1)) ]))
    | `Libm -> begin
        match Rng.int g.rng 3 with
        | 0 ->
            let f = Rng.pick g.rng libm_unary in
            e (Call (f, [ gen_double g (depth - 1) ]))
        | 1 ->
            let f = Rng.pick g.rng libm_binary in
            e (Call (f, [ gen_double g (depth - 1); gen_double g (depth - 1) ]))
        | _ ->
            e
              (Call
                 ( "fma",
                   [
                     gen_double g (depth - 1);
                     gen_double g (depth - 1);
                     gen_double g (depth - 1);
                   ] ))
      end
    | `Cast ->
        let from = if g.cfg.allow_single && Rng.bool g.rng then Tfloat else Tint in
        e (Cast (Tdouble, gen_expr g from (depth - 1)))
    | `Index -> gen_array_read g Tdouble (depth - 1)
    | `Call -> gen_helper_call g Tdouble (depth - 1)

and gen_double_leaf g : expr =
  let vars = vars_of_ty g Tdouble in
  if vars <> [] && Rng.int g.rng 3 > 0 then e (Var (fst (Rng.pick g.rng vars)))
  else float_lit_of (gen_double_const g)

and gen_single g depth : expr =
  if depth <= 0 then gen_single_leaf g
  else
    let vars = vars_of_ty g Tfloat in
    let menu =
      [ (2, `Leaf); (6, `Binop); (1, `Neg); (2, `Cast) ]
      @ (if g.arrays <> [] && List.exists (fun (_, t, _) -> t = Tfloat) g.arrays
         then [ (2, `Index) ]
         else [])
      @ if vars <> [] then [ (5, `Var) ] else []
    in
    match Rng.choose g.rng menu with
    | `Leaf -> gen_single_leaf g
    | `Var -> e (Var (fst (Rng.pick g.rng vars)))
    | `Binop ->
        let op = Rng.choose g.rng [ (3, Add); (3, Sub); (3, Mul); (2, Div) ] in
        e (Binary (op, gen_single g (depth - 1), gen_single g (depth - 1)))
    | `Neg -> e (Unary (Neg, gen_single g (depth - 1)))
    | `Cast ->
        let from = if Rng.bool g.rng then Tdouble else Tint in
        e (Cast (Tfloat, gen_expr g from (depth - 1)))
    | `Index -> gen_array_read g Tfloat (depth - 1)

and gen_single_leaf g : expr =
  let vars = vars_of_ty g Tfloat in
  if vars <> [] && Rng.int g.rng 3 > 0 then e (Var (fst (Rng.pick g.rng vars)))
  else single_lit_of ((Rng.float g.rng *. 64.0) -. 32.0)

and gen_int g depth : expr =
  if depth <= 0 then gen_int_leaf g
  else
    let vars = vars_of_ty g Tint in
    let menu =
      [ (2, `Leaf); (5, `Binop); (2, `DivMod); (3, `Cmp); (1, `Neg); (1, `Logic) ]
      @ (if g.cfg.allow_casts then [ (2, `Cast) ] else [])
      @ (if g.arrays <> [] && List.exists (fun (_, t, _) -> t = Tint) g.arrays
         then [ (1, `Index) ]
         else [])
      @ if vars <> [] then [ (5, `Var) ] else []
    in
    match Rng.choose g.rng menu with
    | `Leaf -> gen_int_leaf g
    | `Var -> e (Var (fst (Rng.pick g.rng vars)))
    | `Binop ->
        let op = Rng.choose g.rng [ (3, Add); (3, Sub); (2, Mul) ] in
        e (Binary (op, gen_int g (depth - 1), gen_int g (depth - 1)))
    | `DivMod ->
        let op = if Rng.bool g.rng then Div else Mod in
        let denom =
          if Rng.int g.rng 3 = 0 then begin
            (* e*e + 1: provably nonzero for every int64 e *)
            let x = gen_int g (min 1 (depth - 1)) in
            e (Binary (Add, e (Binary (Mul, x, x)), e (Int_lit 1L)))
          end
          else e (Int_lit (Int64.of_int (Rng.pick g.rng [ 2; 3; 4; 5; 7; 8; 16; -3 ])))
        in
        e (Binary (op, gen_int g (depth - 1), denom))
    | `Cmp -> gen_cond ~value:true g (depth - 1)
    | `Neg -> e (Unary (Neg, gen_int g (depth - 1)))
    | `Logic -> gen_cond ~value:true g (depth - 1)
    | `Cast ->
        let from = if g.cfg.allow_single && Rng.bool g.rng then Tfloat else Tdouble in
        e (Cast (Tint, gen_expr g from (depth - 1)))
    | `Index -> gen_array_read g Tint (depth - 1)

and gen_int_leaf g : expr =
  let vars = vars_of_ty g Tint in
  if vars <> [] && Rng.int g.rng 3 > 0 then e (Var (fst (Rng.pick g.rng vars)))
  else
    let i = gen_int_const g in
    if Int64.compare i 0L < 0 then e (Unary (Neg, e (Int_lit (Int64.neg i))))
    else e (Int_lit i)

(* A condition. In condition position (if/while tests, &&/|| operands) a
   bare scalar is legal (truth-tested against zero); where the result is
   used as an int-typed *expression* ([?value:true]) only comparisons,
   &&/||, and ! qualify — a bare double there would be ill-typed. *)
and gen_cond ?(value = false) g depth : expr =
  if depth <= 0 then gen_int_leaf g
  else
    match Rng.int g.rng 6 with
    | 0 | 1 | 2 ->
        let op = Rng.pick g.rng [ Lt; Le; Gt; Ge; Eq; Ne ] in
        let t = pick_scalar_ty g in
        e (Binary (op, gen_expr g t (depth - 1), gen_expr g t (depth - 1)))
    | 3 ->
        let op = if Rng.bool g.rng then And else Or in
        e (Binary (op, gen_cond g (depth - 1), gen_cond g (depth - 1)))
    | 4 -> e (Unary (Not, gen_cond g (depth - 1)))
    | _ when value ->
        let op = Rng.pick g.rng [ Lt; Le; Gt; Ge; Eq; Ne ] in
        let t = pick_scalar_ty g in
        e (Binary (op, gen_expr g t (depth - 1), gen_expr g t (depth - 1)))
    | _ ->
        (* scalar truth test *)
        gen_expr g (pick_scalar_ty g) (depth - 1)

(* a[((e % n + n) % n)] — in bounds for any int e *)
and wrap_index g (n : int) (depth : int) : expr =
  let base = gen_int g depth in
  let nl () = e (Int_lit (Int64.of_int n)) in
  e (Binary (Mod, e (Binary (Add, e (Binary (Mod, base, nl ())), nl ())), nl ()))

and gen_array_read g (elt : ty) depth : expr =
  let candidates = List.filter (fun (_, t, _) -> t = elt) g.arrays in
  let name, _, n = Rng.pick g.rng candidates in
  e (Index (e (Var name), wrap_index g n depth))

and gen_helper_call g (want : ty) depth : expr =
  let fits = List.filter (fun h -> h.h_ret = want) g.helpers in
  match fits with
  | [] ->
      (* no helper of that type: fall back to a cast-free leaf *)
      gen_expr g want 0
  | _ ->
      let h = Rng.pick g.rng fits in
      e (Call (h.h_name, List.map (fun t -> gen_expr g t (min depth 2)) h.h_params))

(* ---------- statements ---------- *)

let depth g = 1 + Rng.int g.rng g.cfg.max_expr_depth

let gen_decl g : stmt =
  let t = pick_scalar_ty g in
  (* initializer of a possibly different scalar type exercises the
     implicit conversion on declaration *)
  let it = if g.cfg.allow_casts && Rng.int g.rng 6 = 0 then pick_scalar_ty g else t in
  let name = fresh_name g "v" in
  let init = gen_expr g it (depth g) in
  g.vars <- (name, t) :: g.vars;
  s (Decl (t, name, Some init))

let gen_assign g : stmt option =
  match assignable g with
  | [] -> None
  | vs ->
      let name, t = Rng.pick g.rng vs in
      let it = if g.cfg.allow_casts && Rng.int g.rng 6 = 0 then pick_scalar_ty g else t in
      Some (s (Assign (name, gen_expr g it (depth g))))

let gen_store g : stmt option =
  match g.arrays with
  | [] -> None
  | arrs ->
      let name, elt, n = Rng.pick g.rng arrs in
      let it = if g.cfg.allow_casts && Rng.int g.rng 6 = 0 then pick_scalar_ty g else elt in
      Some (s (Store (name, wrap_index g n 1, gen_expr g it (depth g))))

let gen_print g : stmt =
  s (Print (gen_expr g (pick_scalar_ty g) (depth g)))

(* generate [budget] statements into the current scope *)
let rec gen_block g (budget : int) : stmt list =
  if budget <= 0 then []
  else begin
    let st = gen_stmt g budget in
    match st with
    | None -> gen_block g (budget - 1)
    | Some (stmts, cost) -> stmts @ gen_block g (budget - cost)
  end

and gen_stmt g budget : (stmt list * int) option =
  let menu =
    [ (5, `Decl); (4, `Assign); (3, `Print); (1, `Mark) ]
    @ (if g.arrays <> [] then [ (3, `Store) ] else [])
    @ (if g.cfg.allow_control && budget >= 2 then [ (3, `If) ] else [])
    @ (if g.cfg.allow_control && budget >= 3 then [ (2, `While); (2, `For) ] else [])
    @ if g.cfg.allow_control && g.in_loop then [ (1, `Break) ] else []
  in
  match Rng.choose g.rng menu with
  | `Decl -> Some ([ gen_decl g ], 1)
  | `Assign -> Option.map (fun st -> ([ st ], 1)) (gen_assign g)
  | `Store -> Option.map (fun st -> ([ st ], 1)) (gen_store g)
  | `Print -> Some ([ gen_print g ], 1)
  | `Mark -> Some ([ s (Mark (gen_double g (depth g))) ], 1)
  | `Break ->
      (* guarded break: unconditional would make the tail dead weight *)
      Some ([ s (If (gen_cond g 2, [ s Break ], [])) ], 1)
  | `If ->
      let c = gen_cond g (depth g) in
      let saved = g.vars in
      let then_ = gen_block g (min g.cfg.max_block_stmts (budget - 1)) in
      g.vars <- saved;
      let else_ =
        if Rng.bool g.rng then begin
          let b = gen_block g (min g.cfg.max_block_stmts (budget - 1)) in
          g.vars <- saved;
          b
        end
        else []
      in
      Some ([ s (If (c, then_, else_)) ], 2)
  | `While ->
      let counter = fresh_name g "c" in
      let iters = 1 + Rng.int g.rng g.cfg.max_loop_iters in
      let decl = s (Decl (Tint, counter, Some (e (Int_lit 0L)))) in
      g.vars <- (counter, Tint) :: g.vars;
      g.protected <- counter :: g.protected;
      let cond0 =
        e (Binary (Lt, e (Var counter), e (Int_lit (Int64.of_int iters))))
      in
      let cond =
        if Rng.int g.rng 4 = 0 then e (Binary (And, cond0, gen_cond g 2)) else cond0
      in
      let saved = g.vars in
      let was_in_loop = g.in_loop in
      g.in_loop <- true;
      let body = gen_block g (min g.cfg.max_block_stmts (budget - 2)) in
      g.in_loop <- was_in_loop;
      g.vars <- saved;
      let bump =
        s (Assign (counter, e (Binary (Add, e (Var counter), e (Int_lit 1L)))))
      in
      g.protected <- List.filter (fun n -> n <> counter) g.protected;
      Some ([ decl; s (While (cond, body @ [ bump ])) ], 3)
  | `For ->
      let counter = fresh_name g "i" in
      let iters = 1 + Rng.int g.rng g.cfg.max_loop_iters in
      let init = s (Decl (Tint, counter, Some (e (Int_lit 0L)))) in
      let cond = e (Binary (Lt, e (Var counter), e (Int_lit (Int64.of_int iters)))) in
      let step =
        s (Assign (counter, e (Binary (Add, e (Var counter), e (Int_lit 1L)))))
      in
      let saved = g.vars in
      g.vars <- (counter, Tint) :: g.vars;
      g.protected <- counter :: g.protected;
      let was_in_loop = g.in_loop in
      g.in_loop <- true;
      let body = gen_block g (min g.cfg.max_block_stmts (budget - 2)) in
      g.in_loop <- was_in_loop;
      g.vars <- saved;
      g.protected <- List.filter (fun n -> n <> counter) g.protected;
      Some ([ s (For (Some init, Some cond, Some step, body)) ], 3)

(* ---------- helpers (the multi-function surface) ---------- *)

let gen_helper g (idx : int) : func * helper =
  let name = Printf.sprintf "h%d" idx in
  let ret = pick_scalar_ty g in
  let nparams = Rng.range g.rng 1 3 in
  let params =
    List.init nparams (fun i -> (pick_scalar_ty g, Printf.sprintf "p%d" i))
  in
  (* a private scope: helper bodies see only their params (and earlier
     helpers for calls), never main's locals or arrays *)
  let saved_vars = g.vars and saved_arrays = g.arrays in
  g.vars <- List.map (fun (t, n) -> (n, t)) params;
  g.arrays <- [];
  let budget = Rng.range g.rng 1 4 in
  let body = gen_block g budget in
  let final = s (Return (Some (gen_expr g ret (depth g)))) in
  g.vars <- saved_vars;
  g.arrays <- saved_arrays;
  ( { fname = name; ret = Some ret; params; body = body @ [ final ]; fpos = no_pos },
    { h_name = name; h_ret = ret; h_params = List.map fst params } )

(* ---------- whole programs ---------- *)

let gen_inputs g n =
  Array.init n (fun _ ->
      match Rng.int g.rng 5 with
      | 0 -> float_of_int (Rng.range g.rng (-10) 10)
      | 1 -> (Rng.float g.rng *. 20.0) -. 10.0
      | 2 -> Float.ldexp ((Rng.float g.rng *. 2.0) -. 1.0) (Rng.range g.rng (-30) 30)
      | 3 -> interesting_doubles.(Rng.int g.rng (Array.length interesting_doubles))
      | _ -> Rng.float g.rng)

let program ?(config = default) (rng : Rng.t) : program * float array =
  let g =
    {
      cfg = config;
      rng;
      vars = [];
      arrays = [];
      protected = [];
      helpers = [];
      fresh = 0;
      in_loop = false;
    }
  in
  let inputs = gen_inputs g (max 1 config.n_inputs) in
  (* globals: scalars with literal initializers, plus arrays *)
  let n_globals = if config.allow_arrays then Rng.int g.rng 3 else 0 in
  let globals =
    List.init n_globals (fun i ->
        if Rng.bool g.rng && List.length g.arrays < config.max_arrays then begin
          let elt = pick_scalar_ty g in
          let n = Rng.range g.rng 2 6 in
          let name = Printf.sprintf "ga%d" i in
          g.arrays <- (name, elt, n) :: g.arrays;
          { gty = Tarray (elt, n); gname = name; ginit = None; gpos = no_pos }
        end
        else begin
          let t = pick_scalar_ty g in
          let name = Printf.sprintf "gv%d" i in
          let init =
            match t with
            | Tint -> e (Int_lit (Int64.of_int (Rng.range g.rng 0 9)))
            | Tfloat -> single_lit_of (Rng.float g.rng *. 4.0)
            | _ -> float_lit_of (gen_double_const g)
          in
          g.vars <- (name, t) :: g.vars;
          { gty = t; gname = name; ginit = Some init; gpos = no_pos }
        end)
  in
  (* helper functions *)
  let n_helpers = if config.allow_calls then Rng.int g.rng (config.max_helpers + 1) else 0 in
  let helpers =
    List.init n_helpers (fun i ->
        let f, h = gen_helper g i in
        g.helpers <- g.helpers @ [ h ];
        f)
  in
  (* main: seed a few input-backed locals, local arrays, then the body *)
  let n_seed = Rng.range g.rng 1 3 in
  let seeds =
    List.init n_seed (fun i ->
        let name = fresh_name g "x" in
        g.vars <- (name, Tdouble) :: g.vars;
        s (Decl (Tdouble, name, Some (e (Call ("__arg", [ e (Int_lit (Int64.of_int i)) ]))))))
  in
  let local_arrays =
    if config.allow_arrays && List.length g.arrays < config.max_arrays
       && Rng.bool g.rng
    then begin
      let elt = pick_scalar_ty g in
      let n = Rng.range g.rng 2 6 in
      let name = fresh_name g "a" in
      g.arrays <- (name, elt, n) :: g.arrays;
      [ s (Decl (Tarray (elt, n), name, None)) ]
    end
    else []
  in
  let body = gen_block g (2 + Rng.int g.rng config.max_top_stmts) in
  (* guarantee observable output: print the double locals still in scope *)
  let finale =
    match vars_of_ty g Tdouble with
    | [] -> [ gen_print g ]
    | dvars ->
        List.filteri (fun i _ -> i < 2) dvars
        |> List.map (fun (n, _) -> s (Print (e (Var n))))
  in
  let main =
    {
      fname = "main";
      ret = Some Tint;
      params = [];
      body = seeds @ local_arrays @ body @ finale @ [ s (Return (Some (e (Int_lit 0L)))) ];
      fpos = no_pos;
    }
  in
  ({ globals; funcs = helpers @ [ main ]; source_file = "fuzz.mc" }, inputs)
