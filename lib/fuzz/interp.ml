(* A reference evaluator for MiniC, independent of the VEX pipeline.

   This is the ground-truth leg of the differential oracle: it evaluates
   the *parsed AST* directly, sharing no code with Normalize/Codegen/
   Machine, yet is written to be bit-exact with what that pipeline
   produces. The semantics it mirrors (from Codegen + Vex.Eval):

   - int is 64-bit wrapping; DivS64/ModS64 raise on a zero divisor;
   - double ops are native OCaml float ops; float (binary32) ops go
     through [Ieee.Single] on an f32-exact double representation;
   - conversions: int->double = [Int64.to_float]; int->float double-
     rounds through double; double->int truncates via [Int64.of_float];
     float->double is the identity on the representation;
   - [&&]/[||] are EAGER (codegen evaluates both operands and combines
     with ITE), truthiness is [<> 0] (so a NaN is truthy, since
     CmpNEF64 x 0.0 holds for NaN);
   - negation of float values flips the sign bit (the XOR bit trick),
     which agrees with [-.] for every input including NaN;
   - library calls convert all arguments to double and return double,
     dispatching through [Vex.Eval.libm_apply] (plus inline sqrt/fabs,
     which evaluate identically); [__arg k] reads the input vector with
     wraparound;
   - a function that falls off its end returns zero of its return type;
   - condition evaluation order is left-to-right depth-first, matching
     Normalize's call hoisting, and a [while] condition is fully
     re-evaluated at every test (equivalent to hoist + replay as long as
     the program has no [continue], which the generator never emits).

   Uninitialized *scalar* declarations evaluate to zero here; that is
   only guaranteed to match the machine in [main] (fresh frame over
   zeroed memory). The generator always initializes scalars in helper
   functions for exactly this reason. *)

open Minic.Ast

exception Runtime of string
(** division by zero or an unsupported construct *)

exception Budget
(** the step budget ran out: a harness limit, not a program semantics *)

type value = VInt of int64 | VDouble of float | VSingle of float

type arr =
  | AInt of int64 array
  | ADouble of float array
  | ASingle of float array

type output = OInt of int64 | OFloat of float

(* invoked on every executed double-precision kernel operation
   (op name, operands, native result); the metamorphic 53-bit Bigfloat
   oracle hooks in here *)
type kernel_hook = string -> float array -> float -> unit

type binding = Scalar of value ref | Array of arr

type frame = { mutable locals : (string * binding) list }

type state = {
  prog : program;
  funcs : (string * func) list;
  globals : frame;
  inputs : float array;
  mutable outputs : output list; (* reversed *)
  mutable budget : int;
  hook : kernel_hook option;
}

exception Return_exn of value option
exception Break_exn
exception Continue_exn

let value_ty = function VInt _ -> Tint | VDouble _ -> Tdouble | VSingle _ -> Tfloat

let as_double = function
  | VInt i -> Int64.to_float i
  | VDouble f | VSingle f -> f

let single_neg (f : float) : float =
  Int32.float_of_bits (Int32.logxor (Int32.bits_of_float f) 0x80000000l)

(* the Codegen.convert table *)
let convert (v : value) (to_ty : ty) : value =
  match (v, to_ty) with
  | VInt _, Tint | VDouble _, Tdouble | VSingle _, Tfloat -> v
  | VInt i, Tdouble -> VDouble (Int64.to_float i)
  | VInt i, Tfloat -> VSingle (Ieee.Single.of_double (Int64.to_float i))
  | VDouble f, Tint -> VInt (Int64.of_float f)
  | VSingle f, Tint -> VInt (Int64.of_float f)
  | VSingle f, Tdouble -> VDouble f
  | VDouble f, Tfloat -> VSingle (Ieee.Single.of_double f)
  | _ -> raise (Runtime "invalid conversion")

let promote (a : value) (b : value) : ty =
  match (value_ty a, value_ty b) with
  | Tdouble, _ | _, Tdouble -> Tdouble
  | Tfloat, _ | _, Tfloat -> Tfloat
  | _ -> Tint

let truthy = function
  | VInt i -> not (Int64.equal i 0L)
  | VDouble f -> f <> 0.0
  | VSingle f -> not (f = 0.0)

let lookup (st : state) (fr : frame) (name : string) : binding =
  match List.assoc_opt name fr.locals with
  | Some b -> b
  | None -> (
      match List.assoc_opt name st.globals.locals with
      | Some b -> b
      | None -> raise (Runtime ("unbound variable " ^ name)))

let zero_of = function
  | Tint -> VInt 0L
  | Tdouble -> VDouble 0.0
  | Tfloat -> VSingle 0.0
  | Tarray _ | Tptr _ -> raise (Runtime "zero of non-scalar")

let make_array (elt : ty) (n : int) : arr =
  match elt with
  | Tint -> AInt (Array.make n 0L)
  | Tdouble -> ADouble (Array.make n 0.0)
  | Tfloat -> ASingle (Array.make n 0.0)
  | Tarray _ | Tptr _ -> raise (Runtime "nested arrays unsupported")

let arr_get (a : arr) (i : int) : value =
  match a with
  | AInt xs -> VInt xs.(i)
  | ADouble xs -> VDouble xs.(i)
  | ASingle xs -> VSingle xs.(i)

let arr_set (a : arr) (i : int) (v : value) : unit =
  match (a, convert v (match a with AInt _ -> Tint | ADouble _ -> Tdouble | ASingle _ -> Tfloat)) with
  | AInt xs, VInt x -> xs.(i) <- x
  | ADouble xs, VDouble x -> xs.(i) <- x
  | ASingle xs, VSingle x -> xs.(i) <- x
  | _ -> assert false

let arr_len = function
  | AInt xs -> Array.length xs
  | ADouble xs -> Array.length xs
  | ASingle xs -> Array.length xs

let hook_binop st name x y r =
  match st.hook with None -> () | Some h -> h name [| x; y |] r

(* ---------- expressions ---------- *)

let rec eval_expr (st : state) (fr : frame) (e : expr) : value =
  match e.desc with
  | Int_lit i -> VInt i
  | Float_lit (f, s) ->
      if String.length s > 0 && s.[String.length s - 1] = 'f' then
        (* the lexer does NOT round 'f'-suffixed literals to binary32; the
           raw double value flows into F32-typed operations, so we must
           carry it unrounded too *)
        VSingle f
      else VDouble f
  | Var name -> begin
      match lookup st fr name with
      | Scalar r -> !r
      | Array _ -> raise (Runtime ("array " ^ name ^ " used as a scalar"))
    end
  | Index (a, i) -> begin
      let arr =
        match a.desc with
        | Var name -> begin
            match lookup st fr name with
            | Array arr -> arr
            | Scalar _ -> raise (Runtime ("indexing scalar " ^ name))
          end
        | _ -> raise (Runtime "indexing a non-variable")
      in
      let idx =
        match eval_expr st fr i with
        | VInt i -> Int64.to_int i
        | _ -> raise (Runtime "non-int index")
      in
      if idx < 0 || idx >= arr_len arr then
        raise (Runtime (Printf.sprintf "index %d out of bounds" idx));
      arr_get arr idx
    end
  | Call (name, args) -> eval_call st fr e.pos name args
  | Unary (Neg, a) -> begin
      match eval_expr st fr a with
      | VInt i -> VInt (Int64.neg i)
      | VDouble f -> VDouble (-.f)
      | VSingle f -> VSingle (single_neg f)
    end
  | Unary (Not, a) -> VInt (if truthy (eval_expr st fr a) then 0L else 1L)
  | Binary ((Add | Sub | Mul | Div | Mod) as op, a, b) -> begin
      let va = eval_expr st fr a in
      let vb = eval_expr st fr b in
      let t = promote va vb in
      let va = convert va t and vb = convert vb t in
      match (t, va, vb) with
      | Tint, VInt x, VInt y -> begin
          match op with
          | Add -> VInt (Int64.add x y)
          | Sub -> VInt (Int64.sub x y)
          | Mul -> VInt (Int64.mul x y)
          | Div ->
              if Int64.equal y 0L then raise (Runtime "division by zero")
              else VInt (Int64.div x y)
          | Mod ->
              if Int64.equal y 0L then raise (Runtime "division by zero")
              else VInt (Int64.rem x y)
          | _ -> assert false
        end
      | Tdouble, VDouble x, VDouble y ->
          let r, name =
            match op with
            | Add -> (x +. y, "add")
            | Sub -> (x -. y, "sub")
            | Mul -> (x *. y, "mul")
            | Div -> (x /. y, "div")
            | Mod -> raise (Runtime "% on double")
            | _ -> assert false
          in
          hook_binop st name x y r;
          VDouble r
      | Tfloat, VSingle x, VSingle y ->
          let r =
            match op with
            | Add -> Ieee.Single.add x y
            | Sub -> Ieee.Single.sub x y
            | Mul -> Ieee.Single.mul x y
            | Div -> Ieee.Single.div x y
            | Mod -> raise (Runtime "% on float")
            | _ -> assert false
          in
          VSingle r
      | _ -> assert false
    end
  | Binary ((Lt | Le | Gt | Ge | Eq | Ne) as op, a, b) -> begin
      let va = eval_expr st fr a in
      let vb = eval_expr st fr b in
      let t = promote va vb in
      let va = convert va t and vb = convert vb t in
      let r =
        match (t, va, vb) with
        | Tint, VInt x, VInt y -> begin
            match op with
            | Lt -> Int64.compare x y < 0
            | Le -> Int64.compare x y <= 0
            | Gt -> Int64.compare y x < 0
            | Ge -> Int64.compare y x <= 0
            | Eq -> Int64.equal x y
            | Ne -> not (Int64.equal x y)
            | _ -> assert false
          end
        | (Tdouble | Tfloat), (VDouble x | VSingle x), (VDouble y | VSingle y)
          -> begin
            (* IEEE comparisons on the double representation: exact for
               f32 operands too, and NaN-correct *)
            match op with
            | Lt -> x < y
            | Le -> x <= y
            | Gt -> y < x
            | Ge -> y <= x
            | Eq -> x = y
            | Ne -> x <> y
            | _ -> assert false
          end
        | _ -> assert false
      in
      VInt (if r then 1L else 0L)
  end
  | Binary (And, a, b) ->
      (* eager, like the generated code: both sides always evaluate *)
      let va = truthy (eval_expr st fr a) in
      let vb = truthy (eval_expr st fr b) in
      VInt (if va && vb then 1L else 0L)
  | Binary (Or, a, b) ->
      let va = truthy (eval_expr st fr a) in
      let vb = truthy (eval_expr st fr b) in
      VInt (if va || vb then 1L else 0L)
  | Cast (t, a) -> convert (eval_expr st fr a) t

and eval_call st fr pos name args : value =
  if Vex.Eval.libm_known name then begin
    let fargs =
      Array.of_list (List.map (fun a -> as_double (eval_expr st fr a)) args)
    in
    if name = "__arg" then begin
      let n = Array.length st.inputs in
      if n = 0 then VDouble 0.0
      else begin
        let i = int_of_float fargs.(0) in
        VDouble st.inputs.(((i mod n) + n) mod n)
      end
    end
    else begin
      let r = Vex.Eval.libm_apply name fargs in
      (match st.hook with
      | Some h when name = "sqrt" || name = "fma" -> h name fargs r
      | _ -> ());
      VDouble r
    end
  end
  else begin
    match List.assoc_opt name st.funcs with
    | None -> raise (Runtime (Printf.sprintf "line %d: unknown function %s" pos.line name))
    | Some f ->
        let vargs = List.map (eval_expr st fr) args in
        let callee =
          {
            locals =
              List.map2
                (fun (pt, pn) v -> (pn, Scalar (ref (convert v pt))))
                f.params vargs;
          }
        in
        let ret =
          match exec_block st callee f.body with
          | exception Return_exn v -> v
          | () -> None (* fell off the end *)
        in
        let rt = match f.ret with Some t -> t | None -> Tint in
        (match ret with
        | Some v -> convert v rt
        | None -> zero_of rt)
  end

(* ---------- statements ---------- *)

and exec_block st (fr : frame) (stmts : stmt list) : unit =
  let saved = fr.locals in
  (* restore on any exit, including Break/Continue/Return unwinding *)
  Fun.protect
    ~finally:(fun () -> fr.locals <- saved)
    (fun () -> List.iter (exec_stmt st fr) stmts)

and exec_stmt st (fr : frame) (s : stmt) : unit =
  st.budget <- st.budget - 1;
  if st.budget <= 0 then raise Budget;
  match s.sdesc with
  | Decl (Tarray (elt, n), name, None) ->
      fr.locals <- (name, Array (make_array elt n)) :: fr.locals
  | Decl ((Tarray _ | Tptr _), _, _) -> raise (Runtime "bad array declaration")
  | Decl (t, name, init) ->
      let v =
        match init with
        | Some e -> convert (eval_expr st fr e) t
        | None -> zero_of t (* sound only where frame memory is fresh *)
      in
      fr.locals <- (name, Scalar (ref v)) :: fr.locals
  | Assign (name, e) -> begin
      match lookup st fr name with
      | Scalar r ->
          let t = value_ty !r in
          r := convert (eval_expr st fr e) t
      | Array _ -> raise (Runtime ("assignment to array " ^ name))
    end
  | Store (name, idx, e) -> begin
      match lookup st fr name with
      | Array arr ->
          let i =
            match eval_expr st fr idx with
            | VInt i -> Int64.to_int i
            | _ -> raise (Runtime "non-int index")
          in
          if i < 0 || i >= arr_len arr then
            raise (Runtime (Printf.sprintf "store index %d out of bounds" i));
          arr_set arr i (eval_expr st fr e)
      | Scalar _ -> raise (Runtime ("indexed store to scalar " ^ name))
    end
  | If (c, then_, else_) ->
      if truthy (eval_expr st fr c) then exec_block st fr then_
      else exec_block st fr else_
  | While (c, body) -> begin
      try
        while truthy (eval_expr st fr c) do
          st.budget <- st.budget - 1;
          if st.budget <= 0 then raise Budget;
          try exec_block st fr body with Continue_exn -> ()
        done
      with Break_exn -> ()
    end
  | For (init, cond, step, body) ->
      let saved = fr.locals in
      (match init with Some st' -> exec_stmt st fr st' | None -> ());
      let test () =
        match cond with Some c -> truthy (eval_expr st fr c) | None -> true
      in
      (try
         while test () do
           st.budget <- st.budget - 1;
           if st.budget <= 0 then raise Budget;
           (try exec_block st fr body with Continue_exn -> ());
           match step with Some st' -> exec_stmt st fr st' | None -> ()
         done
       with Break_exn -> ());
      fr.locals <- saved
  | Return None -> raise (Return_exn None)
  | Return (Some e) -> raise (Return_exn (Some (eval_expr st fr e)))
  | Expr e -> ignore (eval_expr st fr e)
  | Print e -> begin
      let out =
        match eval_expr st fr e with
        | VInt i -> OInt i
        | VDouble f -> OFloat f
        | VSingle f -> OFloat f (* F32toF64 is the identity here *)
      in
      st.outputs <- out :: st.outputs
    end
  | Mark e ->
      (* evaluated for effect parity, not recorded (Machine does the same) *)
      ignore (eval_expr st fr e)
  | Break -> raise Break_exn
  | Continue -> raise Continue_exn

(* ---------- programs ---------- *)

let default_budget = 2_000_000

let run ?(budget = default_budget) ?hook ?(inputs = [||]) (p : program) :
    output list =
  let st =
    {
      prog = p;
      funcs = List.map (fun f -> (f.fname, f)) p.funcs;
      globals = { locals = [] };
      inputs;
      outputs = [];
      budget;
      hook;
    }
  in
  ignore st.prog;
  (* globals initialize in declaration order; arrays to zeros *)
  List.iter
    (fun g ->
      match g.gty with
      | Tarray (elt, n) ->
          st.globals.locals <-
            st.globals.locals @ [ (g.gname, Array (make_array elt n)) ]
      | t ->
          let v =
            match g.ginit with
            | Some e -> convert (eval_expr st st.globals e) t
            | None -> zero_of t
          in
          st.globals.locals <- st.globals.locals @ [ (g.gname, Scalar (ref v)) ])
    p.globals;
  let main =
    match List.assoc_opt "main" st.funcs with
    | Some f -> f
    | None -> raise (Runtime "no main function")
  in
  let fr = { locals = [] } in
  (try ignore (exec_block st fr main.body) with Return_exn _ -> ());
  List.rev st.outputs
