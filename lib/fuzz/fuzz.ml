(* fpgrind.fuzz — public face of the differential-fuzzing subsystem.

   [Fuzz.Gen] builds random well-typed MiniC programs from a splittable
   seeded PRNG ([Fuzz.Rng]); [Fuzz.Printer] renders them back to source;
   [Fuzz.Interp] is the independent reference evaluator; [Fuzz.Oracle]
   runs the N-way differential and metamorphic checks; [Fuzz.Shrink]
   minimizes counterexamples; [Fuzz.Campaign] drives seeded (optionally
   Fleet-parallel) batches and the corpus reproducer files. *)

module Rng = Rng
module Printer = Printer
module Gen = Gen
module Interp = Interp
module Oracle = Oracle
module Shrink = Shrink
module Campaign = Campaign
