module N = Natural
module B = Bigfloat

let guard = 32

(* ---------- cached constants ---------- *)

(* atan(1/k) scaled by 2^wp, by the Gregory series in integer arithmetic:
   sum_i (-1)^i / ((2i+1) k^(2i+1)). Error below one unit of the scaling. *)
let atan_inv_scaled ~wp k =
  let k2 = k * k in
  if k2 >= 1 lsl 31 then invalid_arg "atan_inv_scaled: k too large";
  let term = ref (fst (N.divmod_int (N.shift_left N.one wp) k)) in
  let acc = ref N.zero in
  let i = ref 0 in
  let negate = ref false in
  while not (N.is_zero !term) do
    let t, _ = N.divmod_int !term (2 * !i + 1) in
    acc := (if !negate then N.sub !acc t else N.add !acc t);
    term := fst (N.divmod_int !term k2);
    negate := not !negate;
    incr i
  done;
  !acc

(* The constant cache is shared process-wide state reachable from every
   shadow-real execution, so it must survive concurrent domains
   (fpgrind.fleet runs analyses in parallel). A mutex guards the table;
   holding it across [compute] also means a constant is computed once
   rather than racing duplicates. Values are immutable, so readers never
   see a partial entry. *)
let const_cache : (string * int, B.t) Hashtbl.t = Hashtbl.create 16
let const_cache_lock = Mutex.create ()

let cached name prec compute =
  (* Compute at the next power-of-two precision at least [prec] so repeated
     nearby precisions share one entry. *)
  let bucket =
    let p = ref 64 in
    while !p < prec do
      p := !p * 2
    done;
    !p
  in
  let key = (name, bucket) in
  Mutex.lock const_cache_lock;
  let v =
    match Hashtbl.find_opt const_cache key with
    | Some v -> v
    | None -> (
        match compute bucket with
        | v ->
            Hashtbl.add const_cache key v;
            v
        | exception e ->
            Mutex.unlock const_cache_lock;
            raise e)
  in
  Mutex.unlock const_cache_lock;
  B.round ~prec v

(* Machin: pi = 16 atan(1/5) - 4 atan(1/239). *)
let pi ~prec =
  cached "pi" (prec + guard) (fun wp ->
      let a = atan_inv_scaled ~wp:(wp + 8) 5 in
      let b = atan_inv_scaled ~wp:(wp + 8) 239 in
      let scaled = N.sub (N.mul_int a 16) (N.mul_int b 4) in
      B.round ~prec:wp (B.make ~neg:false ~mant:scaled ~exp:(-(wp + 8))))

(* ln 2 = sum_{i>=1} 1 / (i 2^i), in integer arithmetic scaled by 2^wp. *)
let ln2 ~prec =
  cached "ln2" (prec + guard) (fun wp ->
      let wpx = wp + 16 in
      let acc = ref N.zero in
      for i = 1 to wpx do
        let t, _ = N.divmod_int (N.shift_left N.one (wpx - i)) i in
        acc := N.add !acc t
      done;
      B.round ~prec:wp (B.make ~neg:false ~mant:!acc ~exp:(-wpx)))

(* ---------- series helpers ---------- *)

(* magnitude: position of the leading bit (value in [2^(m-1), 2^m));
   min_int for zero, max_int for specials *)
let magnitude t =
  match t with
  | B.Fin f -> f.B.exp + N.bit_length f.B.mant
  | B.Zero _ -> min_int
  | B.Nan | B.Inf _ -> max_int

(* exp(r) for |r| <= 0.4, Taylor at precision wp. *)
let exp_series ~wp r =
  let acc = ref B.one and term = ref B.one and i = ref 1 in
  let continue = ref true in
  while !continue do
    term := B.div_int ~prec:wp (B.mul ~prec:wp !term r) !i;
    if B.is_zero !term || magnitude !term < magnitude !acc - wp - 4 then
      continue := false
    else begin
      acc := B.add ~prec:wp !acc !term;
      incr i
    end
  done;
  !acc

let exp ~prec x =
  match x with
  | B.Nan -> B.Nan
  | B.Inf false -> B.Inf false
  | B.Inf true -> B.zero
  | B.Zero _ -> B.one
  | B.Fin _ ->
      let wp = prec + guard in
      if magnitude x < -(prec + 8) then
        (* 1 + x already rounds correctly at this precision *)
        B.add ~prec B.one x
      else begin
        let xf = B.to_float x in
        let kf = Float.round (xf /. 0.6931471805599453) in
        if Float.abs kf > 1e9 then
          (if kf > 0.0 then B.Inf false else B.zero)
        else begin
          let k = int_of_float kf in
          let kbits = if k = 0 then 0 else 64 in
          let l2 = ln2 ~prec:(wp + kbits) in
          let r =
            B.sub ~prec:(wp + kbits) x (B.mul ~prec:(wp + kbits) (B.of_int k) l2)
          in
          let s = exp_series ~wp r in
          B.round ~prec (B.mul_2exp s k)
        end
      end

(* 2 atanh(z) = 2 (z + z^3/3 + z^5/5 + ...) at precision wp. *)
let atanh2_series ~wp z =
  let z2 = B.mul ~prec:wp z z in
  let acc = ref z and term = ref z and i = ref 1 in
  let continue = ref true in
  while !continue do
    term := B.mul ~prec:wp !term z2;
    let t = B.div_int ~prec:wp !term (2 * !i + 1) in
    if B.is_zero t || magnitude t < magnitude !acc - wp - 4 then
      continue := false
    else begin
      acc := B.add ~prec:wp !acc t;
      incr i
    end
  done;
  B.mul_2exp !acc 1

let log ~prec x =
  match x with
  | B.Nan -> B.Nan
  | B.Inf false -> B.Inf false
  | B.Inf true -> B.Nan
  | B.Zero _ -> B.Inf true
  | B.Fin f when f.B.neg -> B.Nan
  | B.Fin _ ->
      if B.equal x B.one then B.zero
      else begin
        let wp = prec + guard in
        (* Near 1, avoid the e*ln2 split entirely (cancellation). *)
        let near_one =
          B.gt x (B.of_decimal_string ~prec:64 "0.70")
          && B.lt x (B.of_decimal_string ~prec:64 "1.5")
        in
        if near_one then begin
          (* When x = 1 + eps the leading term of 2 atanh((x-1)/(x+1)) has
             magnitude eps, so ask for enough working precision. *)
          let d = B.sub ~prec:wp x B.one in
          let extra = max 0 (-magnitude d) + 8 in
          let wp = wp + extra in
          let z =
            B.div ~prec:wp (B.sub ~prec:wp x B.one) (B.add ~prec:wp x B.one)
          in
          B.round ~prec (atanh2_series ~wp z)
        end
        else begin
          let b = magnitude x in
          (* m in [1, 2) *)
          let m = B.mul_2exp x (1 - b) in
          let z =
            B.div ~prec:wp (B.sub ~prec:wp m B.one) (B.add ~prec:wp m B.one)
          in
          let lnm = atanh2_series ~wp z in
          let l2 = ln2 ~prec:wp in
          B.round ~prec
            (B.add ~prec:wp (B.mul ~prec:wp (B.of_int (b - 1)) l2) lnm)
        end
      end

let log1p ~prec x =
  match x with
  | B.Nan -> B.Nan
  | B.Inf false -> B.Inf false
  | B.Inf true -> B.Nan
  | B.Zero _ -> x
  | B.Fin _ ->
      if B.le x B.minus_one then
        if B.equal x B.minus_one then B.Inf true else B.Nan
      else if magnitude x < -2 then begin
        (* ln(1+x) = 2 atanh(x / (x+2)): no cancellation for small x *)
        let wp = prec + guard in
        let z = B.div ~prec:wp x (B.add ~prec:wp x B.two) in
        B.round ~prec (atanh2_series ~wp z)
      end
      else begin
        let wp = prec + guard in
        log ~prec (B.add ~prec:wp B.one x)
      end

let expm1 ~prec x =
  match x with
  | B.Nan -> B.Nan
  | B.Inf false -> B.Inf false
  | B.Inf true -> B.minus_one
  | B.Zero _ -> x
  | B.Fin _ ->
      if magnitude x < -1 then begin
        (* Taylor sum_{i>=1} x^i / i!, no cancellation *)
        let wp = prec + guard + max 0 (-magnitude x) in
        let acc = ref x and term = ref x and i = ref 2 in
        let continue = ref true in
        while !continue do
          term := B.div_int ~prec:wp (B.mul ~prec:wp !term x) !i;
          if B.is_zero !term || magnitude !term < magnitude !acc - wp - 4 then
            continue := false
          else begin
            acc := B.add ~prec:wp !acc !term;
            incr i
          end
        done;
        B.round ~prec !acc
      end
      else begin
        let wp = prec + guard in
        B.sub ~prec (exp ~prec:wp x) B.one
      end

let log2 ~prec x =
  let wp = prec + guard in
  let l = log ~prec:wp x in
  match l with
  | B.Nan | B.Inf _ -> l
  | B.Zero _ | B.Fin _ -> B.div ~prec l (ln2 ~prec:wp)

let log10 ~prec x =
  let wp = prec + guard in
  let l = log ~prec:wp x in
  match l with
  | B.Nan | B.Inf _ -> l
  | _ -> B.div ~prec l (log ~prec:wp (B.of_int 10))

let exp2 ~prec x =
  match x with
  | B.Fin _ when B.is_integer x -> begin
      match B.to_bigint x with
      | Some bi -> begin
          match Bigint.to_int_opt bi with
          | Some k when abs k < 1 lsl 30 -> B.mul_2exp B.one k
          | _ -> if B.is_negative x then B.zero else B.Inf false
        end
      | None -> assert false
    end
  | _ ->
      let wp = prec + guard in
      exp ~prec (B.mul ~prec:wp x (ln2 ~prec:wp))

(* sin(r) and cos(r) Taylor series for |r| <= pi/4 + small slack. *)
let sin_series ~wp r =
  let r2 = B.mul ~prec:wp r r in
  let acc = ref r and term = ref r and k = ref 1 in
  let continue = ref true in
  while !continue do
    term :=
      B.neg
        (B.div_int ~prec:wp
           (B.mul ~prec:wp !term r2)
           ((2 * !k) * ((2 * !k) + 1)));
    if B.is_zero !term || magnitude !term < magnitude !acc - wp - 4 then
      continue := false
    else begin
      acc := B.add ~prec:wp !acc !term;
      incr k
    end
  done;
  !acc

let cos_series ~wp r =
  let r2 = B.mul ~prec:wp r r in
  let acc = ref B.one and term = ref B.one and k = ref 1 in
  let continue = ref true in
  while !continue do
    term :=
      B.neg
        (B.div_int ~prec:wp
           (B.mul ~prec:wp !term r2)
           (((2 * !k) - 1) * (2 * !k)));
    if B.is_zero !term || magnitude !term < magnitude !acc - wp - 4 then
      continue := false
    else begin
      acc := B.add ~prec:wp !acc !term;
      incr k
    end
  done;
  !acc

(* Reduce x modulo pi/2: returns (quadrant mod 4, remainder) with
   |remainder| <= pi/4 (up to rounding), both at precision wp. Uses a Ziv
   retry so the remainder keeps wp significant bits even near multiples of
   pi/2. *)
let trig_reduce ~wp x =
  let xmag = max 0 (magnitude x) in
  if xmag > 8192 then None
  else begin
    let p0 = wp + xmag + guard in
    let rec attempt extra tries =
      let p = wp + xmag + extra in
      let halfpi = B.mul_2exp (pi ~prec:p) (-1) in
      let q = B.round_to_int (B.div ~prec:p x halfpi) in
      let r = B.sub ~prec:p x (B.mul ~prec:p q halfpi) in
      if
        tries < 3
        && (not (B.is_zero r))
        && magnitude r < magnitude x - xmag - extra + (2 * guard)
        && not (B.is_zero q)
      then attempt (extra + max 64 (2 * extra)) (tries + 1)
      else begin
        let qmod =
          match B.to_bigint q with
          | Some bi -> begin
              let m =
                Bigint.divmod bi (Bigint.of_int 4) |> snd |> Bigint.to_int_opt
              in
              match m with Some v -> ((v mod 4) + 4) mod 4 | None -> 0
            end
          | None -> 0
        in
        Some (qmod, r)
      end
    in
    (* The first Ziv attempt's outcome is often decidable from a float
       approximation of |x| alone, letting us skip a full multi-precision
       divide/multiply/subtract round.  Both shortcuts below reproduce the
       loop's behaviour exactly; anything unprovable falls through to the
       plain recursion.

       Case A, |x| <= 0.78: the attempt-0 quotient x/halfpi is correctly
       rounded, and |x|/(pi/2) <= 0.78*(1+2^-52)/1.5707... < 0.497, so it
       rounds to the integer q = 0.  Then r = round_p0(x), which is x
       itself whenever x carries at most p0 significant bits, and q = 0
       forbids a retry: attempt 0 returns (0, x).

       Case B, |x| >= 0.79 (including to_float overflow to infinity):
       the quotient is >= 0.79*(1-2^-52)/1.5708/(1+2^-p) > 0.502, so
       q <> 0.  Here magnitude x >= 0, hence xmag = magnitude x and the
       retry threshold at extra = guard is 2*guard - guard = guard = 32;
       any nonzero remainder has |r| <~ pi/4 and magnitude <= 1 < 32, so
       attempt 0 retries iff r <> 0.  And r <> 0 is guaranteed when x has
       fewer significant bits than pi at precision p0: r = 0 would need
       x = q * halfpi_p0 exactly, whose canonical mantissa (q' * pi_mant
       for the odd part q' of q, both odd) is at least as wide as
       pi_p0's.  In that case attempt 0 always retries, so we start the
       recursion directly at its successor (extra = 3*guard, tries = 1). *)
    let ax = Float.abs (B.to_float x) in
    if ax <= 0.78 && B.precision_of x <= p0 then Some (0, x)
    else if
      ax >= 0.79 && B.precision_of x < B.precision_of (pi ~prec:p0)
    then attempt (guard + max 64 (2 * guard)) 1
    else attempt guard 0
  end

let sin ~prec x =
  match x with
  | B.Nan | B.Inf _ -> B.Nan
  | B.Zero _ -> x
  | B.Fin _ -> begin
      let wp = prec + guard in
      match trig_reduce ~wp x with
      | None -> B.of_float (Stdlib.sin (B.to_float x))
      | Some (q, r) ->
          let v =
            match q with
            | 0 -> sin_series ~wp r
            | 1 -> cos_series ~wp r
            | 2 -> B.neg (sin_series ~wp r)
            | _ -> B.neg (cos_series ~wp r)
          in
          B.round ~prec v
    end

let cos ~prec x =
  match x with
  | B.Nan | B.Inf _ -> B.Nan
  | B.Zero _ -> B.one
  | B.Fin _ -> begin
      let wp = prec + guard in
      match trig_reduce ~wp x with
      | None -> B.of_float (Stdlib.cos (B.to_float x))
      | Some (q, r) ->
          let v =
            match q with
            | 0 -> cos_series ~wp r
            | 1 -> B.neg (sin_series ~wp r)
            | 2 -> B.neg (cos_series ~wp r)
            | _ -> sin_series ~wp r
          in
          B.round ~prec v
    end

let tan ~prec x =
  match x with
  | B.Nan | B.Inf _ -> B.Nan
  | B.Zero _ -> x
  | B.Fin _ -> begin
      let wp = prec + guard in
      match trig_reduce ~wp x with
      | None -> B.of_float (Stdlib.tan (B.to_float x))
      | Some (q, r) ->
          let s = sin_series ~wp r and c = cos_series ~wp r in
          let v =
            if q = 0 || q = 2 then B.div ~prec:wp s c
            else B.neg (B.div ~prec:wp c s)
          in
          B.round ~prec v
    end

(* atan for finite x via 8 angle-halving reductions then the Gregory
   series. *)
let atan ~prec x =
  match x with
  | B.Nan -> B.Nan
  | B.Inf n ->
      let h = B.mul_2exp (pi ~prec) (-1) in
      if n then B.neg h else h
  | B.Zero _ -> x
  | B.Fin f ->
      let wp = prec + guard in
      let ax = B.abs x in
      let big = B.gt ax B.one in
      let y = if big then B.div ~prec:wp B.one ax else ax in
      (* halve the angle 8 times: y <- y / (1 + sqrt(1+y^2)) *)
      let reductions = if magnitude y < -8 then 0 else 8 in
      let z = ref y in
      for _ = 1 to reductions do
        let s =
          B.sqrt ~prec:wp (B.add ~prec:wp B.one (B.mul ~prec:wp !z !z))
        in
        z := B.div ~prec:wp !z (B.add ~prec:wp B.one s)
      done;
      (* Gregory series *)
      let z2 = B.mul ~prec:wp !z !z in
      let acc = ref !z and term = ref !z and i = ref 1 in
      let continue = ref true in
      while !continue do
        term := B.neg (B.mul ~prec:wp !term z2);
        let t = B.div_int ~prec:wp !term ((2 * !i) + 1) in
        if B.is_zero t || magnitude t < magnitude !acc - wp - 4 then
          continue := false
        else begin
          acc := B.add ~prec:wp !acc t;
          incr i
        end
      done;
      let angle = B.mul_2exp !acc reductions in
      let angle =
        if big then
          B.sub ~prec:wp (B.mul_2exp (pi ~prec:wp) (-1)) angle
        else angle
      in
      B.round ~prec (if f.B.neg then B.neg angle else angle)

let atan2 ~prec y x =
  match (y, x) with
  | B.Nan, _ | _, B.Nan -> B.Nan
  | B.Zero ny, B.Zero nx ->
      (* C99: atan2(+-0, +0) = +-0; atan2(+-0, -0) = +-pi *)
      if nx then
        let p = pi ~prec in
        if ny then B.neg p else p
      else B.Zero ny
  | B.Zero ny, _ when not (B.is_negative x) -> B.Zero ny
  | B.Zero ny, _ ->
      let p = pi ~prec in
      if ny then B.neg p else p
  | _, B.Zero _ ->
      let h = B.mul_2exp (pi ~prec) (-1) in
      if B.is_negative y then B.neg h else h
  | B.Inf ny, B.Inf nx ->
      let wp = prec + guard in
      let q = B.mul_2exp (pi ~prec:wp) (-2) in
      let v = if nx then B.mul ~prec:wp (B.of_int 3) q else q in
      B.round ~prec (if ny then B.neg v else v)
  | B.Inf ny, _ ->
      let h = B.mul_2exp (pi ~prec) (-1) in
      if ny then B.neg h else h
  | _, B.Inf nx ->
      if nx then begin
        let p = pi ~prec in
        if B.is_negative y then B.neg p else p
      end
      else B.Zero (B.is_negative y)
  | B.Fin _, B.Fin fx ->
      let wp = prec + guard in
      let base = atan ~prec:wp (B.div ~prec:wp y x) in
      if not fx.B.neg then B.round ~prec base
      else begin
        let p = pi ~prec:wp in
        let v =
          if B.is_negative y then B.sub ~prec:wp base p
          else B.add ~prec:wp base p
        in
        B.round ~prec v
      end

let asin ~prec x =
  match x with
  | B.Nan | B.Inf _ -> B.Nan
  | B.Zero _ -> x
  | B.Fin f ->
      let ax = B.abs x in
      if B.gt ax B.one then B.Nan
      else if B.equal ax B.one then begin
        let h = B.mul_2exp (pi ~prec) (-1) in
        if f.B.neg then B.neg h else h
      end
      else begin
        let wp = prec + guard in
        let c =
          B.sqrt ~prec:wp (B.sub ~prec:wp B.one (B.mul ~prec:wp x x))
        in
        atan2 ~prec x c
      end

let acos ~prec x =
  match x with
  | B.Nan | B.Inf _ -> B.Nan
  | B.Zero _ -> B.mul_2exp (pi ~prec) (-1)
  | B.Fin f ->
      let ax = B.abs x in
      if B.gt ax B.one then B.Nan
      else if B.equal ax B.one then
        if f.B.neg then pi ~prec else B.zero
      else begin
        let wp = prec + guard in
        let s =
          B.sqrt ~prec:wp (B.sub ~prec:wp B.one (B.mul ~prec:wp x x))
        in
        atan2 ~prec s x
      end

let sinh ~prec x =
  match x with
  | B.Nan | B.Inf _ | B.Zero _ -> x
  | B.Fin f ->
      if magnitude x < -1 then begin
        (* Taylor: x + x^3/3! + ... avoids exp cancellation near zero *)
        let wp = prec + guard in
        let x2 = B.mul ~prec:wp x x in
        let acc = ref x and term = ref x and k = ref 1 in
        let continue = ref true in
        while !continue do
          term :=
            B.div_int ~prec:wp
              (B.mul ~prec:wp !term x2)
              ((2 * !k) * ((2 * !k) + 1));
          if B.is_zero !term || magnitude !term < magnitude !acc - wp - 4 then
            continue := false
          else begin
            acc := B.add ~prec:wp !acc !term;
            incr k
          end
        done;
        B.round ~prec !acc
      end
      else begin
        let wp = prec + guard in
        let e = exp ~prec:wp x and en = exp ~prec:wp (B.neg x) in
        ignore f;
        B.round ~prec (B.mul_2exp (B.sub ~prec:wp e en) (-1))
      end

let cosh ~prec x =
  match x with
  | B.Nan -> B.Nan
  | B.Inf _ -> B.Inf false
  | B.Zero _ -> B.one
  | B.Fin _ ->
      let wp = prec + guard in
      let e = exp ~prec:wp x and en = exp ~prec:wp (B.neg x) in
      B.round ~prec (B.mul_2exp (B.add ~prec:wp e en) (-1))

let tanh ~prec x =
  match x with
  | B.Nan | B.Zero _ -> x
  | B.Inf n -> if n then B.minus_one else B.one
  | B.Fin _ ->
      let wp = prec + guard in
      B.round ~prec (B.div ~prec:wp (sinh ~prec:wp x) (cosh ~prec:wp x))

(* x^k for an int k by repeated squaring, rounding each step at wp. *)
let pow_int_bf ~wp x k =
  let rec go acc b e =
    if e = 0 then acc
    else begin
      let acc = if e land 1 = 1 then B.mul ~prec:wp acc b else acc in
      go acc (B.mul ~prec:wp b b) (e lsr 1)
    end
  in
  if k >= 0 then go B.one x k
  else B.div ~prec:wp B.one (go B.one x (-k))

let pow ~prec x y =
  match (x, y) with
  | _, B.Zero _ -> B.one (* pow(x, 0) = 1 even for nan per C99 *)
  | _, _ when B.equal x B.one -> B.one (* pow(1, y) = 1 even for nan *)
  | B.Nan, _ | _, B.Nan -> B.Nan
  | _, B.Inf ny -> begin
      let ax = B.abs x in
      match B.cmp ax B.one with
      | Some 0 -> B.one
      | Some c ->
          if (c > 0) = not ny then B.Inf false else B.zero
      | None -> B.Nan
    end
  | B.Inf nx, _ ->
      let y_odd_int =
        B.is_integer y
        && (match B.to_bigint y with
           | Some bi -> (match Bigint.to_int_opt bi with
               | Some i -> i land 1 = 1
               | None -> false)
           | None -> false)
      in
      if B.is_negative y then B.Zero (nx && y_odd_int)
      else if nx && y_odd_int then B.Inf true
      else B.Inf false
  | B.Zero nz, _ ->
      let y_odd_int =
        B.is_integer y
        && (match B.to_bigint y with
           | Some bi -> (match Bigint.to_int_opt bi with
               | Some i -> i land 1 = 1
               | None -> false)
           | None -> false)
      in
      if B.is_negative y then B.Inf (nz && y_odd_int)
      else B.Zero (nz && y_odd_int)
  | B.Fin fx, B.Fin _ ->
      let wp = prec + guard in
      let int_exp =
        if B.is_integer y then
          match B.to_bigint y with
          | Some bi -> Bigint.to_int_opt bi
          | None -> None
        else None
      in
      begin
        match int_exp with
        | Some k when abs k <= 1 lsl 22 ->
            B.round ~prec (pow_int_bf ~wp:(wp + 16) x k)
        | _ ->
            if fx.B.neg then B.Nan
            else begin
              (* relative error of exp(y ln x) scales with |y ln x| *)
              let est = Float.abs (B.to_float y *. Stdlib.log (B.to_float x)) in
              let extra =
                if Float.is_nan est || est < 2.0 then 8
                else min 1024 (8 + int_of_float (Float.log2 est))
              in
              let wp2 = wp + extra in
              exp ~prec (B.mul ~prec:wp2 y (log ~prec:wp2 x))
            end
      end

let cbrt ~prec x =
  match x with
  | B.Nan | B.Inf _ | B.Zero _ -> x
  | B.Fin f ->
      let wp = prec + guard in
      let ax = B.abs x in
      let r = exp ~prec:wp (B.div ~prec:wp (log ~prec:wp ax) (B.of_int 3)) in
      (* one Newton step sharpens the exp/log route: r <- (2r + a/r^2)/3 *)
      let r =
        B.div ~prec:wp
          (B.add ~prec:wp (B.mul ~prec:wp B.two r)
             (B.div ~prec:wp ax (B.mul ~prec:wp r r)))
          (B.of_int 3)
      in
      B.round ~prec (if f.B.neg then B.neg r else r)

let hypot ~prec x y =
  match (x, y) with
  | B.Nan, _ | _, B.Nan ->
      if B.is_inf x || B.is_inf y then B.Inf false else B.Nan
  | B.Inf _, _ | _, B.Inf _ -> B.Inf false
  | _ ->
      let wp = prec + guard in
      B.sqrt ~prec
        (B.add ~prec:wp (B.mul ~prec:wp x x) (B.mul ~prec:wp y y))

let fma ~prec x y z =
  let p = B.mul ~prec:(max_int / 16) x y in
  B.add ~prec p z

let fmod x y =
  match (x, y) with
  | B.Nan, _ | _, B.Nan | B.Inf _, _ | _, B.Zero _ -> B.Nan
  | B.Zero _, _ -> x
  | B.Fin _, B.Inf _ -> x
  | B.Fin fx, B.Fin fy ->
      (* exact: align mantissas at a common exponent and take the integer
         remainder *)
      let e = min fx.B.exp fy.B.exp in
      let xm = N.shift_left fx.B.mant (fx.B.exp - e) in
      let ym = N.shift_left fy.B.mant (fy.B.exp - e) in
      let _, r = N.divmod xm ym in
      if N.is_zero r then B.Zero fx.B.neg
      else B.make ~neg:fx.B.neg ~mant:r ~exp:e

let copysign x s =
  let n = B.is_negative s in
  if B.is_negative x = n then x else B.neg x

let fdim ~prec x y =
  match (x, y) with
  | B.Nan, _ | _, B.Nan -> B.Nan
  | _ -> if B.gt x y then B.sub ~prec x y else B.zero
