(** Arbitrary-precision natural numbers.

    Values are immutable. The representation uses base-[2^31] limbs stored
    little-endian in an [int array] with no leading zero limbs, so every
    mathematical natural has exactly one representation. All operations are
    exact. This module is the foundation of the {!Bigfloat} shadow
    arithmetic that replaces MPFR in this reproduction. *)

type t

val zero : t
val one : t
val two : t

val of_int : int -> t
(** [of_int n] converts a non-negative [int]. Raises [Invalid_argument] on
    negative input. *)

val to_int_opt : t -> int option
(** [to_int_opt n] is [Some i] when [n] fits in a non-negative OCaml [int]. *)

val is_zero : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

val add : t -> t -> t
val sub : t -> t -> t
(** [sub a b] requires [a >= b]; raises [Invalid_argument] otherwise. *)

val mul : t -> t -> t
val mul_int : t -> int -> t
(** [mul_int a k] multiplies by a small non-negative int. *)

val divmod : t -> t -> t * t
(** [divmod a b] is [(q, r)] with [a = q*b + r] and [0 <= r < b]. Raises
    [Division_by_zero] when [b] is zero. *)

val divmod_int : t -> int -> t * int
(** [divmod_int a k] divides by a small positive int. *)

val divshift_int : t -> int -> int -> t * int
(** [divshift_int a s k] is [divmod_int (shift_left a s) k] in one pass,
    without materializing the shifted dividend. *)

val shift_left : t -> int -> t
val shift_right : t -> int -> t

val add_shifted : t -> int -> t -> t
(** [add_shifted a s b] is [a*2^s + b] ([s >= 0]), fusing the alignment
    shift of floating-point addition into the add: one pass, one
    allocation. *)

val sub_shifted : t -> int -> t -> t
(** [sub_shifted a s b] is [a*2^s - b]; requires [a*2^s >= b] and
    [s >= 0], raising [Invalid_argument] otherwise. *)

val bit_length : t -> int
(** [bit_length n] is the position of the highest set bit plus one; 0 for
    zero. *)

val testbit : t -> int -> bool
(** [testbit n i] is bit [i] (little-endian) of [n]. *)

val any_bit_below : t -> int -> bool
(** [any_bit_below n i] is true when some bit strictly below position [i]
    is set. O(1) on odd values. *)

val mul_round : prec:int -> t -> t -> (t * int) option
(** [mul_round ~prec a b] computes [a*b] rounded to nearest at [prec]
    significant bits via a short product, returning [Some (mant, shift)]
    with [round(a*b) = mant * 2^shift]. Requires both operands odd
    (ties are then impossible and the sticky bit is always set, exactly
    the contract of {!Bigfloat}'s canonical mantissas); returns [None]
    when the operands are small, even, or the short product cannot
    prove the rounding — callers fall back to the exact product. The
    returned rounding is always identical to rounding the exact
    product. *)

val is_even : t -> bool

val trailing_zeros : t -> int
(** Number of low zero bits; raises [Invalid_argument] on zero. *)

val isqrt : t -> t
(** [isqrt n] is the integer square root, the largest [s] with [s*s <= n]. *)

val pow_int : t -> int -> t
(** [pow_int b e] is [b] raised to the non-negative power [e]. *)

val of_string : string -> t
(** Parse a decimal string of digits. *)

val to_string : t -> string
(** Render in decimal. *)

val to_float : t -> float
(** Nearest [float] (round to nearest even); may be [infinity]. *)

val pp : Format.formatter -> t -> unit
